// Reproduces Figure 7(a): computation overhead (word multiplications) of the
// benchmark workloads with and without the (M_j A_j)_n R_j transformation.
#include <cstdio>

#include "bench_util.h"
#include "metaop/mult_count.h"
#include "workloads/ckks_workloads.h"
#include "workloads/tfhe_workloads.h"

namespace {

using namespace alchemist;

void report(const char* name, const metaop::OpGraph& g, double paper_change) {
  const auto c = metaop::count(g);
  std::printf("%-24s %14llu %14llu %+8.1f%%  (paper: %+.1f%%)\n", name,
              static_cast<unsigned long long>(c.origin),
              static_cast<unsigned long long>(c.meta),
              100.0 * c.relative_change(), paper_change);
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 7(a) - Multiplications w/o and w/ (M_j A_j)_n R_j");
  std::printf("%-24s %14s %14s %9s\n", "Workload", "origin", "Meta-OP", "change");

  report("TFHE-PBS", workloads::build_pbs(workloads::TfheWl::set_i()), -3.4);
  report("Cmult L=24", workloads::build_cmult(workloads::CkksWl::paper(24)), -23.3);
  report("BSP L=44 (+hoisting)",
         workloads::build_bootstrapping(workloads::CkksWl::paper(44), true), -37.1);

  bench::print_footnote(
      "shape check: TFHE saves least (NTT-dominated, +11% per butterfly), the "
      "deep CKKS workloads save most (Bconv/DecompPolyMult dominated). "
      "Absolute percentages differ from the paper because the exact op "
      "schedule of their compiler is not public; see EXPERIMENTS.md.");
  return 0;
}
