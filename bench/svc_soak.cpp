// Deterministic soak of the resilient simulation service (src/svc).
//
// One run per worker count pushes a fixed, seeded mix of >200 jobs through
// the JobRunner with everything hostile turned on at once:
//
//   * queue capacity below the submission burst  -> deterministic shedding
//     (workers start paused, so the burst hits a full queue);
//   * tight deterministic step budgets            -> DeadlineExpired with a
//     checkpoint captured, later resumed to completion and checked
//     bit-identical against an uninterrupted reference run;
//   * injected transient faults + retry budgets   -> retried / failed jobs;
//   * cooperative cancellation of queued jobs;
//   * a poison workload class (fault rate 1.0)    -> circuit breaker opens,
//     subsequent submissions fast-fail with CircuitOpen.
//
// The soak asserts, for every worker count, that each job handle lands in
// exactly one terminal state, that the svc.* terminal-state counters
// partition svc.submitted, and that the handle tally equals the counters.
// Exit status is non-zero on any violation, so this doubles as a ctest.
//
// Modes:
//   --quick            one worker count (4) instead of {1,2,4,8}
//   --smoke            overhead gates: the same deterministic job set runs
//                      (a) with and without JobSpec::profile, (b) with and
//                      without JobSpec::mem_profile (memory.v1 attribution;
//                      every attributed byte must equal the run's
//                      sim.hbm.bytes) and (c) with and without distributed
//                      tracing (TraceSink + EventLog at phase detail);
//                      results must be bit-identical in every comparison and
//                      each instrumented wall-clock (best of 3) within 10%
//                      of the plain one
//   --metrics-out F    write the final run's svc.* registry (latency
//                      histograms included) as a metrics.v1 JSON report;
//                      traced runs graft their spans in as a spans.v1 section
//   --trace-out F      write the traced run's spans as a standalone spans.v1
//                      document (CI feeds this to tools/check_trace_spans.py)
//   --overload         adversarial multi-tenant isolation scenarios (bursty
//                      flood, slow-job poisoning, quota probing, overload
//                      degrade ladder, tenancy-defaults identity); all
//                      admission verdicts deterministic
//   --fairness-out F   write the --overload per-tenant stats as a fairness.v1
//                      JSON report (CI gates it with tools/check_fairness.py)
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "obs/log.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "sim/alchemist_sim.h"
#include "sim/event_sim.h"
#include "svc/job_runner.h"
#include "workloads/ckks_workloads.h"

namespace {

using namespace alchemist;
using GraphPtr = std::shared_ptr<const metaop::OpGraph>;

constexpr std::size_t kJobs = 260;       // submission burst (wave 1)
constexpr std::size_t kQueueCap = 224;   // < kJobs: the tail is shed
constexpr std::size_t kPoisonJobs = 8;   // wave 2: breaker exercise
constexpr std::size_t kBreakerThreshold = 4;
constexpr u64 kSeed = 0x50a1'c0deull;

#define SOAK_CHECK(cond, msg)                                      \
  do {                                                             \
    if (!(cond)) {                                                 \
      std::fprintf(stderr, "svc_soak FAILED: %s (line %d)\n", msg, \
                   __LINE__);                                      \
      return false;                                                \
    }                                                              \
  } while (0)

struct SoakStats {
  u64 submitted = 0, completed = 0, retried_ok = 0, failed = 0, cancelled = 0,
      expired = 0, shed = 0, circuit_open = 0, retries = 0, resumed = 0;
  double wall_ms = 0.0, p99_ms = 0.0, throughput = 0.0;
  obs::Registry reg;  // final snapshot (latency histograms for reporting)
};

// Per-class latency quantiles from the svc.latency.total_us{class=} histograms.
void print_class_latency(const obs::Registry& reg) {
  const std::string prefix = std::string(svc::metrics::kLatencyTotalUs) + "{class=";
  for (const auto& [key, hist] : reg.histograms()) {
    if (key.rfind(prefix, 0) != 0 || hist.count() == 0) continue;
    std::printf("  %-40s p50/p95/p99 = %8.2f / %8.2f / %8.2f ms  (n=%llu)\n",
                key.c_str(), hist.percentile(50.0) / 1000.0,
                hist.percentile(95.0) / 1000.0, hist.percentile(99.0) / 1000.0,
                static_cast<unsigned long long>(hist.count()));
  }
}

// Uninterrupted reference runs, indexed [graph][engine]; resumed jobs are
// fault-free, so their results must be bit-identical to these.
std::vector<std::array<sim::SimResult, 2>> make_references(
    const std::vector<GraphPtr>& graphs, const arch::ArchConfig& cfg) {
  std::vector<std::array<sim::SimResult, 2>> refs;
  refs.reserve(graphs.size());
  for (const GraphPtr& g : graphs) {
    refs.push_back({sim::simulate_alchemist(*g, cfg),
                    sim::simulate_alchemist_events(*g, cfg)});
  }
  return refs;
}

bool run_soak(std::size_t workers, const std::vector<GraphPtr>& graphs,
              const std::vector<std::array<sim::SimResult, 2>>& refs,
              SoakStats& out, obs::TraceSink* trace = nullptr,
              obs::EventLog* log = nullptr) {
  if (trace != nullptr) trace->clear();
  if (log != nullptr) log->clear();
  svc::RunnerOptions opts;
  opts.workers = workers;
  opts.queue_capacity = kQueueCap;
  opts.breaker_threshold = kBreakerThreshold;
  opts.breaker_cooldown = std::chrono::seconds(600);  // stays open for the run
  opts.backoff.base_us = 50;
  opts.backoff.cap_us = 1000;
  opts.start_paused = true;  // deterministic queue pressure + cancellation
  opts.trace = trace;
  opts.log = log;
  svc::JobRunner runner(opts);

  // Wave 1: seeded mixed burst against parked workers.
  Rng rng(kSeed);
  std::vector<svc::JobPtr> handles;
  std::vector<bool> budgeted(kJobs, false);
  std::vector<std::size_t> graph_of(kJobs, 0), engine_of(kJobs, 0);
  handles.reserve(kJobs);
  for (std::size_t i = 0; i < kJobs; ++i) {
    svc::JobSpec spec;
    spec.name = "soak-" + std::to_string(i);
    graph_of[i] = rng.uniform(graphs.size());
    engine_of[i] = rng.uniform(2);
    spec.graph = graphs[graph_of[i]];
    spec.engine = engine_of[i] == 0 ? svc::Engine::Level : svc::Engine::Event;
    spec.checkpoint_interval = 2;
    const u64 r = rng.uniform(100);
    if (r < 20) {
      // Tight deterministic deadline; fault-free so a resumed run can be
      // compared bit-for-bit against the uninterrupted reference.
      budgeted[i] = true;
      spec.max_steps = 1 + rng.uniform(2);
    } else if (r < 50) {
      spec.fault_enabled = true;
      spec.fault.seed = rng.next();
      const double rate = 1e-9 * static_cast<double>(1 + rng.uniform(20));
      spec.fault.compute_fault_rate = spec.fault.sram_fault_rate =
          spec.fault.hbm_fault_rate = rate;
      spec.max_attempts = 3;
    }
    handles.push_back(runner.submit(std::move(spec)));
  }
  // Cancel a slice of the queued jobs before anything runs.
  for (std::size_t i = 7; i < kJobs; i += 29) handles[i]->cancel();

  const auto t0 = std::chrono::steady_clock::now();
  runner.set_paused(false);
  runner.drain();
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();

  // Wave 2: a workload class that always corrupts its output. Draining after
  // each submission makes the failure order deterministic: the breaker trips
  // after kBreakerThreshold failures and the rest are rejected CircuitOpen.
  std::vector<svc::JobPtr> poison;
  for (std::size_t i = 0; i < kPoisonJobs; ++i) {
    svc::JobSpec spec;
    spec.name = "poison-" + std::to_string(i);
    spec.workload_class = "poison";
    spec.graph = graphs[0];
    spec.fault_enabled = true;
    spec.fault.seed = kSeed + i;
    spec.fault.compute_fault_rate = 1.0;
    poison.push_back(runner.submit(std::move(spec)));
    runner.drain();
  }
  for (std::size_t i = 0; i < kPoisonJobs; ++i) {
    const svc::JobState expect = i < kBreakerThreshold
                                     ? svc::JobState::Failed
                                     : svc::JobState::CircuitOpen;
    SOAK_CHECK(poison[i]->state() == expect, "poison job state mismatch");
  }

  // Wave 3: resume every deadline-expired job from its checkpoint and verify
  // the completed result is bit-identical to the uninterrupted reference.
  std::vector<std::pair<std::size_t, svc::JobPtr>> resumes;
  for (std::size_t i = 0; i < kJobs; ++i) {
    if (handles[i]->state() != svc::JobState::DeadlineExpired) continue;
    SOAK_CHECK(budgeted[i], "non-budgeted job expired");
    const sim::Checkpoint cp = handles[i]->checkpoint();
    SOAK_CHECK(cp.valid(), "expired job has no checkpoint");
    svc::JobSpec spec;
    spec.name = handles[i]->spec().name + "-resume";
    spec.workload_class = "resume";  // wave-1 failures may have opened class breakers
    spec.graph = graphs[graph_of[i]];
    spec.engine = engine_of[i] == 0 ? svc::Engine::Level : svc::Engine::Event;
    spec.resume_from = cp;
    // Continue the interrupted job's trace: both halves of the run share one
    // trace id, with the resume's root span parented under the original.
    spec.trace = handles[i]->trace_context();
    resumes.emplace_back(i, runner.submit(std::move(spec)));
  }
  runner.drain();
  for (const auto& [i, job] : resumes) {
    SOAK_CHECK(job->state() == svc::JobState::Completed, "resume did not complete");
    const sim::SimResult& ref = refs[graph_of[i]][engine_of[i]];
    const sim::SimResult got = job->result();
    SOAK_CHECK(got.cycles == ref.cycles, "resumed cycles differ from reference");
    SOAK_CHECK(got.time_us == ref.time_us, "resumed time differs from reference");
    SOAK_CHECK(got.registry.counters() == ref.registry.counters(),
               "resumed registry differs from reference");
  }

  // Global invariants: every handle terminal, in a defined state, and the
  // svc.* terminal counters partition svc.submitted exactly.
  const obs::Registry reg = runner.snapshot();
  out.submitted = reg.counter(svc::metrics::kSubmitted);
  out.completed = reg.counter(svc::metrics::kCompleted);
  out.retried_ok = reg.counter(svc::metrics::kCompleted, {{"retried", "true"}});
  out.failed = reg.counter(svc::metrics::kFailed);
  out.cancelled = reg.counter(svc::metrics::kCancelled);
  out.expired = reg.counter(svc::metrics::kDeadlineExpired);
  out.shed = reg.counter(svc::metrics::kRejected, {{"reason", "queue_full"}}) +
             reg.counter(svc::metrics::kRejected, {{"reason", "shutdown"}});
  out.circuit_open = reg.counter(svc::metrics::kRejected, {{"reason", "circuit_open"}});
  out.retries = reg.counter(svc::metrics::kRetries);
  out.resumed = reg.counter(svc::metrics::kResumed);
  out.p99_ms = reg.gauge(svc::metrics::kLatencyUs, {{"p", "99"}}) / 1000.0;
  out.throughput = static_cast<double>(kJobs - out.shed) * 1000.0 / out.wall_ms;
  out.reg = reg;

  const u64 total_handles = kJobs + kPoisonJobs + resumes.size();
  SOAK_CHECK(out.submitted == total_handles, "submitted != handles");
  SOAK_CHECK(out.completed + out.failed + out.cancelled + out.expired + out.shed +
                     out.circuit_open == out.submitted,
             "terminal-state counters do not partition submitted");
  SOAK_CHECK(out.shed == kJobs - kQueueCap, "unexpected shed count");
  SOAK_CHECK(out.resumed == resumes.size(), "svc.resumed mismatch");

  std::map<svc::JobState, u64> tally;
  auto count = [&](const std::vector<svc::JobPtr>& v) {
    for (const svc::JobPtr& h : v) {
      SOAK_CHECK(h->terminal(), "job not terminal at end of soak");
      ++tally[h->state()];
    }
    return true;
  };
  if (!count(handles) || !count(poison)) return false;
  for (const auto& [i, job] : resumes) {
    (void)i;
    ++tally[job->state()];
  }
  SOAK_CHECK(tally[svc::JobState::Completed] == out.completed, "completed tally");
  SOAK_CHECK(tally[svc::JobState::Failed] == out.failed, "failed tally");
  SOAK_CHECK(tally[svc::JobState::Cancelled] == out.cancelled, "cancelled tally");
  SOAK_CHECK(tally[svc::JobState::DeadlineExpired] == out.expired, "expired tally");
  SOAK_CHECK(tally[svc::JobState::Shed] == out.shed, "shed tally");
  SOAK_CHECK(tally[svc::JobState::CircuitOpen] == out.circuit_open, "breaker tally");
  return true;
}

// Instrumentation-overhead gates: a deterministic fault-free job set through
// a 4-worker runner, once plain, once with JobSpec::profile, and once under
// distributed tracing (TraceSink + EventLog, phase detail). Each instrumented
// configuration must reproduce the plain simulated outcome bit for bit and
// land within kMaxOverhead of the plain wall-clock (best of kReps each).
bool run_smoke(const std::string& trace_out) {
  constexpr std::size_t kSmokeJobs = 16;
  constexpr int kReps = 5;
  constexpr double kMaxOverhead = 0.10;

  // Heavyweight jobs — the overhead gate is about instrumenting realistic
  // runs, not amortizing fixed per-job cost over microsecond-long toy graphs.
  std::vector<GraphPtr> graphs;
  graphs.push_back(std::make_shared<metaop::OpGraph>(
      workloads::build_bootstrapping(workloads::CkksWl::paper(44), true)));
  graphs.push_back(std::make_shared<metaop::OpGraph>(
      workloads::build_helr_iteration(workloads::CkksWl::paper(30))));

  // The bootstrap graphs emit ~90k phase spans per run; size the ring so the
  // --trace-out document keeps every span (parents included) for the checker.
  obs::TraceSink sink(1 << 17);
  obs::EventLog log;
  svc::TraceSummary slowest{};
  auto run = [&](bool profile, bool mem, bool traced,
                 std::vector<sim::SimResult>& results,
                 obs::Registry* reg_out) {
    svc::RunnerOptions opts;
    opts.workers = 4;
    opts.queue_capacity = kSmokeJobs;
    if (traced) {
      sink.clear();
      log.clear();
      opts.trace = &sink;
      opts.log = &log;
      opts.trace_detail = obs::TraceDetail::Phases;
    }
    svc::JobRunner runner(opts);
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<svc::JobPtr> handles;
    handles.reserve(kSmokeJobs);
    for (std::size_t i = 0; i < kSmokeJobs; ++i) {
      svc::JobSpec spec;
      spec.name = "smoke-" + std::to_string(i);
      spec.graph = graphs[i % graphs.size()];
      spec.engine = (i % 2 == 0) ? svc::Engine::Level : svc::Engine::Event;
      spec.profile = profile;
      spec.mem_profile = mem;
      handles.push_back(runner.submit(std::move(spec)));
    }
    runner.drain();
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
    results.clear();
    for (const svc::JobPtr& h : handles) {
      if (h->state() != svc::JobState::Completed) return -1.0;
      results.push_back(h->result());
      if (traced) {
        const svc::TraceSummary s = h->trace_summary();
        if (s.total_us > slowest.total_us) slowest = s;
      }
    }
    if (reg_out != nullptr) *reg_out = runner.snapshot();
    return wall_ms;
  };

  double wall_off = 1e300, wall_profiled = 1e300, wall_mem = 1e300,
         wall_traced = 1e300;
  std::vector<sim::SimResult> base, profiled, memed, traced, scratch;
  obs::Registry last_reg, mem_reg;
  for (int rep = 0; rep < kReps; ++rep) {
    const double ms = run(false, false, false, scratch, nullptr);
    if (ms < 0) { std::fprintf(stderr, "smoke: plain job failed\n"); return false; }
    wall_off = std::min(wall_off, ms);
    if (rep == 0) base = scratch;
  }
  for (int rep = 0; rep < kReps; ++rep) {
    const double ms = run(true, false, false, scratch, &last_reg);
    if (ms < 0) { std::fprintf(stderr, "smoke: profiled job failed\n"); return false; }
    wall_profiled = std::min(wall_profiled, ms);
    if (rep == 0) profiled = scratch;
  }
  for (int rep = 0; rep < kReps; ++rep) {
    const double ms = run(false, true, false, scratch, &mem_reg);
    if (ms < 0) { std::fprintf(stderr, "smoke: mem-profiled job failed\n"); return false; }
    wall_mem = std::min(wall_mem, ms);
    if (rep == 0) memed = scratch;
  }
  for (int rep = 0; rep < kReps; ++rep) {
    const double ms = run(false, false, true, scratch, nullptr);
    if (ms < 0) { std::fprintf(stderr, "smoke: traced job failed\n"); return false; }
    wall_traced = std::min(wall_traced, ms);
    if (rep == 0) traced = scratch;
  }
  std::printf("svc_soak --smoke: per-class latency of the last profiled run:\n");
  print_class_latency(last_reg);

  auto identical = [&](const std::vector<sim::SimResult>& other,
                       const char* what) {
    for (std::size_t i = 0; i < base.size(); ++i) {
      const sim::SimResult& a = base[i];
      const sim::SimResult& b = other[i];
      if (a.cycles != b.cycles || a.time_us != b.time_us ||
          a.registry.counters() != b.registry.counters()) {
        std::fprintf(stderr, "smoke: %s result of job %zu not bit-identical\n",
                     what, i);
        return false;
      }
    }
    return true;
  };
  if (!identical(profiled, "profiled") || !identical(memed, "mem-profiled") ||
      !identical(traced, "traced")) {
    return false;
  }
  // memory.v1 checks: the profile is present exactly when requested, every
  // streamed byte is attributed (conservation against sim.hbm.bytes), and the
  // folded sim.mem.bytes counter in the runner snapshot agrees with the sum
  // over the completed jobs.
  u64 mem_bytes_sum = 0;
  for (std::size_t i = 0; i < base.size(); ++i) {
    const sim::SimResult& a = base[i];
    const sim::SimResult& b = memed[i];
    if (a.mem_profile.enabled() || !b.mem_profile.enabled()) {
      std::fprintf(stderr, "smoke: memory profile presence wrong for job %zu\n", i);
      return false;
    }
    if (b.mem_profile.attributed_total() != b.mem_profile.total_bytes ||
        b.mem_profile.total_bytes !=
            b.registry.counter(sim::metrics::kHbmBytes)) {
      std::fprintf(stderr,
                   "smoke: job %zu memory attribution does not conserve "
                   "sim.hbm.bytes\n",
                   i);
      return false;
    }
    mem_bytes_sum += b.mem_profile.total_bytes;
  }
  if (mem_reg.counter(sim::metrics::kMemBytes) != mem_bytes_sum) {
    std::fprintf(stderr, "smoke: folded sim.mem.bytes disagrees with job sum\n");
    return false;
  }
  for (std::size_t i = 0; i < base.size(); ++i) {
    const sim::SimResult& a = base[i];
    const sim::SimResult& b = profiled[i];
    if (a.profile.enabled() || !b.profile.enabled()) {
      std::fprintf(stderr, "smoke: profile presence wrong for job %zu\n", i);
      return false;
    }
    for (const obs::UnitCycles& u : b.profile.units) {
      if (u.total() != b.profile.total_cycles) {
        std::fprintf(stderr, "smoke: unit buckets of job %zu do not sum to total\n", i);
        return false;
      }
    }
  }
  bool ok = true;
  for (const auto& [label, wall] :
       {std::pair<const char*, double>{"profiler", wall_profiled},
        {"mem-profiler", wall_mem},
        {"tracing", wall_traced}}) {
    const double overhead = (wall - wall_off) / wall_off;
    std::printf("svc_soak --smoke: wall %0.2f ms off / %0.2f ms %s -> overhead "
                "%+.1f%% (gate <%.0f%%), results bit-identical\n",
                wall_off, wall, label, 100.0 * overhead, 100.0 * kMaxOverhead);
    if (overhead >= kMaxOverhead) {
      std::fprintf(stderr, "svc_soak FAILED: %s overhead %.1f%% exceeds gate\n",
                   label, 100.0 * overhead);
      ok = false;
    }
  }
  std::printf("svc_soak --smoke: %llu spans, %llu log events; slowest trace "
              "0x%016llx queue %.2f ms run %.2f ms sim %.2f ms\n",
              static_cast<unsigned long long>(sink.recorded()),
              static_cast<unsigned long long>(log.recorded()),
              static_cast<unsigned long long>(slowest.trace_id),
              slowest.queue_us / 1000.0, slowest.run_us / 1000.0,
              slowest.sim_us / 1000.0);
  if (!trace_out.empty()) {
    if (!obs::write_spans_file(trace_out, sink, "svc_soak")) {
      std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
      return false;
    }
    std::printf("trace: %s (spans.v1)\n", trace_out.c_str());
  }
  return ok;
}

// ---------------------------------------------------------------------------
// Adversarial multi-tenant overload soak (--overload).
//
// Deterministic isolation scenarios: every admission verdict is decided
// against parked workers with non-replenishing (rate 0) token buckets, so the
// admitted/rejected split is bit-reproducible; only the latency percentiles
// are wall-clock, and those gate in CI via tools/check_fairness.py against
// the solo baseline, never in-binary.
//
//   solo         the well-behaved tenant alone: the p99 baseline
//   bursty       adversary floods 10x its rate quota; victim shares the pool
//   slowjob      adversary holds heavyweight jobs under a concurrency cap
//   quota_probe  adversary hammers past its burst budget probing for leaks
//   degrade      overload ladder: degradable jobs run Reduced, then shed
//   identity     tenancy defaults leave untenanted runs bit-identical
// ---------------------------------------------------------------------------

constexpr const char* kVictim = "victim";
constexpr const char* kAdversary = "adversary";

struct TenantStats {
  u64 submitted = 0, admitted = 0, completed = 0, quota_exceeded = 0, shed = 0,
      degraded = 0;
  u64 quota = 0;  // expected admitted under the scenario's contract (0 = n/a)
  double p50_us = 0, p95_us = 0, p99_us = 0;
};

TenantStats tenant_stats(const obs::Registry& reg, const std::string& t) {
  TenantStats s;
  s.submitted = reg.counter(svc::metrics::kTenantSubmitted, {{"tenant", t}});
  s.admitted = reg.counter(svc::metrics::kTenantAdmitted, {{"tenant", t}});
  s.completed = reg.counter(svc::metrics::kTenantTerminal,
                            {{"state", "completed"}, {"tenant", t}});
  s.quota_exceeded =
      reg.counter(svc::metrics::kTenantRejected,
                  {{"reason", "quota_rate"}, {"tenant", t}}) +
      reg.counter(svc::metrics::kTenantRejected,
                  {{"reason", "quota_concurrency"}, {"tenant", t}});
  for (const char* reason : {"queue_full", "tenant_queue_full", "shutdown", "overload"}) {
    s.shed += reg.counter(svc::metrics::kTenantRejected,
                          {{"reason", reason}, {"tenant", t}});
  }
  s.degraded = reg.counter(svc::metrics::kTenantDegraded, {{"tenant", t}});
  const obs::Histogram& h =
      reg.histogram(svc::metrics::kLatencyTotalUs, {{"tenant", t}});
  if (h.count() > 0) {
    s.p50_us = h.percentile(50.0);
    s.p95_us = h.percentile(95.0);
    s.p99_us = h.percentile(99.0);
  }
  return s;
}

svc::JobSpec tenant_job(const char* tenant, const GraphPtr& g, std::size_t i,
                        bool degradable = false) {
  svc::JobSpec spec;
  spec.name = std::string(tenant) + "-" + std::to_string(i);
  spec.workload_class = tenant;
  spec.tenant = tenant;
  spec.graph = g;
  spec.engine = (i % 2 == 0) ? svc::Engine::Level : svc::Engine::Event;
  spec.degradable = degradable;
  return spec;
}

bool all_completed(const std::vector<svc::JobPtr>& handles, const char* what) {
  for (const svc::JobPtr& h : handles) {
    SOAK_CHECK(h->state() == svc::JobState::Completed, what);
  }
  return true;
}

// The well-behaved tenant alone: same 24-job load it submits in every
// contended scenario, no adversary. Its p99 is the isolation baseline.
bool scenario_solo(const std::vector<GraphPtr>& graphs, TenantStats& victim) {
  svc::RunnerOptions opts;
  opts.workers = 2;
  opts.start_paused = true;
  svc::TenantPolicy vp;
  vp.weight = 3;
  opts.tenants.policies[kVictim] = vp;
  svc::JobRunner runner(opts);
  std::vector<svc::JobPtr> handles;
  for (std::size_t i = 0; i < 24; ++i) {
    handles.push_back(runner.submit(tenant_job(kVictim, graphs[i % graphs.size()], i)));
  }
  runner.set_paused(false);
  runner.drain();
  if (!all_completed(handles, "solo: victim job not completed")) return false;
  victim = tenant_stats(runner.snapshot(), kVictim);
  SOAK_CHECK(victim.admitted == 24 && victim.completed == 24, "solo accounting");
  return true;
}

// Bursty adversary: floods 240 submissions against a 24-token burst budget
// (10x its quota). The budget caps what it can occupy; DRR weight 3:1 keeps
// the victim's queue share. All verdicts land against parked workers.
bool scenario_bursty(const std::vector<GraphPtr>& graphs, TenantStats& victim,
                     TenantStats& adversary) {
  svc::RunnerOptions opts;
  opts.workers = 2;
  opts.start_paused = true;
  svc::TenantPolicy vp;
  vp.weight = 3;
  opts.tenants.policies[kVictim] = vp;
  svc::TenantPolicy ap;
  ap.burst = 24;        // quota: at most 24 jobs of this burst admitted
  ap.rate_per_sec = 0;  // non-replenishing -> deterministic verdicts
  ap.weight = 1;
  opts.tenants.policies[kAdversary] = ap;
  svc::JobRunner runner(opts);
  std::vector<svc::JobPtr> vjobs, ajobs;
  for (std::size_t i = 0, v = 0; i < 240; ++i) {
    ajobs.push_back(runner.submit(tenant_job(kAdversary, graphs[i % graphs.size()], i)));
    if (i % 10 == 0) {
      vjobs.push_back(runner.submit(tenant_job(kVictim, graphs[v % graphs.size()], v)));
      ++v;
    }
  }
  runner.set_paused(false);
  runner.drain();
  if (!all_completed(vjobs, "bursty: victim job not completed")) return false;
  const obs::Registry reg = runner.snapshot();
  victim = tenant_stats(reg, kVictim);
  adversary = tenant_stats(reg, kAdversary);
  adversary.quota = 24;
  SOAK_CHECK(victim.submitted == 24 && victim.admitted == 24, "bursty victim admission");
  SOAK_CHECK(adversary.submitted == 240, "bursty adversary submitted");
  SOAK_CHECK(adversary.admitted == adversary.quota, "bursty adversary quota not enforced");
  SOAK_CHECK(adversary.quota_exceeded == 216, "bursty adversary rejections");
  SOAK_CHECK(adversary.completed == adversary.admitted, "bursty adversary completions");
  // Typed verdict: quota rejections are QuotaExceeded, not Shed.
  u64 quota_handles = 0;
  for (const svc::JobPtr& h : ajobs) {
    if (h->state() == svc::JobState::QuotaExceeded) ++quota_handles;
  }
  SOAK_CHECK(quota_handles == adversary.quota_exceeded, "bursty QuotaExceeded tally");
  return true;
}

// Slow-job poisoning: the adversary parks heavyweight jobs; a concurrency
// quota (max_in_flight 4) bounds how much of the pool it can hold at once,
// and the slot frees on terminal, so the next wave admits 4 again.
bool scenario_slowjob(const std::vector<GraphPtr>& graphs, TenantStats& victim,
                      TenantStats& adversary) {
  svc::RunnerOptions opts;
  opts.workers = 4;
  opts.start_paused = true;
  svc::TenantPolicy vp;
  vp.weight = 3;
  opts.tenants.policies[kVictim] = vp;
  svc::TenantPolicy ap;
  ap.max_in_flight = 4;
  ap.weight = 1;
  opts.tenants.policies[kAdversary] = ap;
  svc::JobRunner runner(opts);
  const GraphPtr& heavy = graphs.back();  // keyswitch: the heaviest of the mix
  std::vector<svc::JobPtr> vjobs, ajobs;
  for (int phase = 0; phase < 2; ++phase) {
    for (std::size_t i = 0; i < 10; ++i) {
      ajobs.push_back(runner.submit(
          tenant_job(kAdversary, heavy, static_cast<std::size_t>(phase) * 10 + i)));
    }
    for (std::size_t i = 0; i < 8; ++i) {
      vjobs.push_back(runner.submit(
          tenant_job(kVictim, graphs[i % graphs.size()],
                     static_cast<std::size_t>(phase) * 8 + i)));
    }
    runner.set_paused(false);
    runner.drain();
    runner.set_paused(true);  // park again for the next deterministic wave
  }
  runner.set_paused(false);
  if (!all_completed(vjobs, "slowjob: victim job not completed")) return false;
  const obs::Registry reg = runner.snapshot();
  victim = tenant_stats(reg, kVictim);
  adversary = tenant_stats(reg, kAdversary);
  adversary.quota = 8;  // 4 in-flight slots x 2 waves
  SOAK_CHECK(victim.completed == 16, "slowjob victim completions");
  SOAK_CHECK(adversary.admitted == 8, "slowjob concurrency quota not enforced");
  SOAK_CHECK(adversary.quota_exceeded == 12, "slowjob concurrency rejections");
  return true;
}

// Quota probing: rapid-fire submissions hunting for a token leak. Refunds on
// rollback paths must not mint tokens: exactly `burst` jobs get through.
bool scenario_quota_probe(const std::vector<GraphPtr>& graphs,
                          TenantStats& victim, TenantStats& adversary) {
  svc::RunnerOptions opts;
  opts.workers = 2;
  opts.start_paused = true;
  opts.tenants.policies[kVictim] = svc::TenantPolicy{};
  svc::TenantPolicy ap;
  ap.burst = 8;
  ap.rate_per_sec = 0;
  opts.tenants.policies[kAdversary] = ap;
  svc::JobRunner runner(opts);
  std::vector<svc::JobPtr> vjobs, ajobs;
  for (std::size_t i = 0; i < 8; ++i) {
    vjobs.push_back(runner.submit(tenant_job(kVictim, graphs[i % graphs.size()], i)));
  }
  for (std::size_t i = 0; i < 100; ++i) {
    ajobs.push_back(runner.submit(tenant_job(kAdversary, graphs[i % graphs.size()], i)));
  }
  for (std::size_t i = 8; i < 16; ++i) {
    vjobs.push_back(runner.submit(tenant_job(kVictim, graphs[i % graphs.size()], i)));
  }
  runner.set_paused(false);
  runner.drain();
  if (!all_completed(vjobs, "quota_probe: victim job not completed")) return false;
  const obs::Registry reg = runner.snapshot();
  victim = tenant_stats(reg, kVictim);
  adversary = tenant_stats(reg, kAdversary);
  adversary.quota = 8;
  SOAK_CHECK(adversary.admitted == 8, "quota_probe burst budget not enforced");
  SOAK_CHECK(adversary.quota_exceeded == 92, "quota_probe rejections");
  SOAK_CHECK(adversary.submitted ==
                 adversary.admitted + adversary.quota_exceeded,
             "quota_probe admission does not partition submissions");
  for (std::size_t i = 8; i < ajobs.size(); ++i) {
    SOAK_CHECK(ajobs[i]->state() == svc::JobState::QuotaExceeded,
               "quota_probe verdict not QuotaExceeded");
  }
  SOAK_CHECK(victim.completed == 16, "quota_probe victim completions");
  return true;
}

// Overload ladder. Part 1: target 0 + interval 0 + huge shed factor means the
// second dequeue escalates to Degrade — with one worker the first job runs
// full-fidelity and every later degradable job runs Reduced, bit-identically.
// Part 2: shed factor 0 escalates straight to Shed; arrivals during the
// standing backlog are typed-shed "overload", queued work still drains
// (never dropped), and once the queue is empty admission recovers.
bool scenario_degrade(const std::vector<GraphPtr>& graphs,
                      const std::vector<std::array<sim::SimResult, 2>>& refs,
                      TenantStats& victim, u64& degraded_out) {
  svc::RunnerOptions opts;
  opts.workers = 1;
  opts.start_paused = true;
  opts.overload.enabled = true;
  opts.overload.target = std::chrono::microseconds(0);
  opts.overload.interval = std::chrono::microseconds(0);
  opts.overload.shed_factor = 1e18;  // never reach Shed in part 1
  opts.tenants.policies[kVictim] = svc::TenantPolicy{};
  svc::JobRunner runner(opts);
  std::vector<svc::JobPtr> handles;
  constexpr std::size_t kDegradeJobs = 12;
  for (std::size_t i = 0; i < kDegradeJobs; ++i) {
    handles.push_back(runner.submit(
        tenant_job(kVictim, graphs[i % graphs.size()], i, /*degradable=*/true)));
  }
  runner.set_paused(false);
  runner.drain();
  if (!all_completed(handles, "degrade: job not completed")) return false;
  SOAK_CHECK(!handles[0]->degraded(), "degrade: first job should run full-fidelity");
  for (std::size_t i = 1; i < kDegradeJobs; ++i) {
    SOAK_CHECK(handles[i]->degraded(), "degrade: job not degraded");
    SOAK_CHECK(handles[i]->trace_summary().degraded, "degrade: summary flag unset");
    SOAK_CHECK(handles[i]->attempts() == 1, "degrade: retry budget not trimmed");
  }
  // Reduced detail must not change the simulated outcome.
  for (std::size_t i = 0; i < kDegradeJobs; ++i) {
    const sim::SimResult& ref = refs[i % graphs.size()][i % 2 == 0 ? 0 : 1];
    const sim::SimResult got = handles[i]->result();
    SOAK_CHECK(got.cycles == ref.cycles && got.time_us == ref.time_us,
               "degrade: degraded result not bit-identical");
    SOAK_CHECK(got.registry.counters() == ref.registry.counters(),
               "degrade: degraded registry not bit-identical");
  }
  const obs::Registry reg = runner.snapshot();
  victim = tenant_stats(reg, kVictim);
  degraded_out = reg.counter(svc::metrics::kDegraded);
  SOAK_CHECK(degraded_out == kDegradeJobs - 1, "degrade: svc.degraded count");
  SOAK_CHECK(victim.degraded == kDegradeJobs - 1, "degrade: tenant degraded count");

  // Part 2: escalate to Shed while the backlog stands, verify arrivals shed,
  // then verify admission recovers once the queue drains.
  //
  // The storm must hit a *standing* backlog, so each queued job is pinned to
  // a guaranteed minimum runtime: permanent fault corruption forces three
  // attempts with two jitter-free 50ms backoff sleeps in between
  // (sleep_for's lower bound is hard), giving >= 100ms per job. Waiting for
  // job 2 and re-parking the worker therefore freezes the runner with the
  // ladder at Shed (at least two above-target dequeue sojourns observed) and
  // jobs still queued, with ~100ms of margin against scheduler hiccups.
  svc::RunnerOptions sopts;
  sopts.workers = 1;
  sopts.start_paused = true;
  sopts.breaker_threshold = 0;  // six straight Failed must not trip a breaker
  sopts.backoff.base_us = 50'000;
  sopts.backoff.multiplier = 1.0;
  sopts.backoff.cap_us = 50'000;
  sopts.backoff.jitter = 0.0;
  sopts.overload.enabled = true;
  sopts.overload.target = std::chrono::microseconds(0);
  sopts.overload.interval = std::chrono::microseconds(0);
  sopts.overload.shed_factor = 0.0;  // any standing delay sheds
  svc::JobRunner shedder(sopts);
  std::vector<svc::JobPtr> queued;
  for (std::size_t i = 0; i < 6; ++i) {
    svc::JobSpec spec = tenant_job(kVictim, graphs[0], i);
    spec.fault_enabled = true;
    spec.fault.compute_fault_rate = 1.0;  // every attempt corrupts
    spec.max_attempts = 3;
    queued.push_back(shedder.submit(std::move(spec)));
  }
  shedder.set_paused(false);
  queued[2]->wait();
  shedder.set_paused(true);
  SOAK_CHECK(shedder.overload_level() == svc::OverloadController::Level::Shed,
             "degrade: ladder did not reach shed");
  // Arrivals that find the standing backlog at Shed are typed-shed.
  for (std::size_t i = 0; i < 3; ++i) {
    const svc::JobPtr h = shedder.submit(tenant_job(kVictim, graphs[0], 100 + i));
    SOAK_CHECK(h->state() == svc::JobState::Shed, "degrade: arrival not shed");
  }
  shedder.set_paused(false);
  shedder.drain();
  // Queued work is never dropped by the ladder: every job ran its full retry
  // budget to the deterministic Failed verdict rather than being discarded.
  for (const svc::JobPtr& h : queued) {
    SOAK_CHECK(h->state() == svc::JobState::Failed,
               "degrade: queued job dropped under shed");
    SOAK_CHECK(h->attempts() == 3, "degrade: queued job lost its retry budget");
  }
  const obs::Registry sreg = shedder.snapshot();
  SOAK_CHECK(sreg.counter(svc::metrics::kRejected, {{"reason", "overload"}}) == 3,
             "degrade: overload shed counter");
  // Shed never outlives the backlog: the first post-drain arrival finds an
  // empty queue — a zero standing delay — which resets the ladder, so it is
  // admitted rather than locked out forever.
  const svc::JobPtr recovered =
      shedder.submit(tenant_job(kVictim, graphs[0], 200));
  SOAK_CHECK(recovered->state() != svc::JobState::Shed,
             "degrade: post-drain arrival shed");
  recovered->wait();
  SOAK_CHECK(recovered->state() == svc::JobState::Completed,
             "degrade: post-drain arrival not completed");
  SOAK_CHECK(shedder.overload_level() == svc::OverloadController::Level::Normal,
             "degrade: ladder did not recover after drain");
  return true;
}

// Tenancy defaults must be invisible: the same untenanted job set through a
// runner with a populated policy table (and overload off) produces the same
// results and byte-identical svc.* counters as the plain pre-PR setup.
bool scenario_identity(const std::vector<GraphPtr>& graphs) {
  auto run = [&](bool tenancy, std::vector<sim::SimResult>& results,
                 std::map<std::string, u64>& counters) {
    svc::RunnerOptions opts;
    opts.workers = 2;
    opts.start_paused = true;
    if (tenancy) {
      svc::TenantPolicy vp;
      vp.weight = 3;
      vp.burst = 100;
      opts.tenants.policies[kVictim] = vp;
      opts.tenants.policies[kAdversary] = svc::TenantPolicy{};
    }
    svc::JobRunner runner(opts);
    std::vector<svc::JobPtr> handles;
    for (std::size_t i = 0; i < 8; ++i) {
      svc::JobSpec spec;
      spec.name = "identity-" + std::to_string(i);
      spec.graph = graphs[i % graphs.size()];
      spec.engine = (i % 2 == 0) ? svc::Engine::Level : svc::Engine::Event;
      handles.push_back(runner.submit(std::move(spec)));  // no tenant
    }
    runner.set_paused(false);
    runner.drain();
    results.clear();
    for (const svc::JobPtr& h : handles) {
      if (h->state() != svc::JobState::Completed) return false;
      results.push_back(h->result());
    }
    counters = runner.snapshot().counters();
    return true;
  };
  std::vector<sim::SimResult> plain, tenanted;
  std::map<std::string, u64> plain_counters, tenanted_counters;
  SOAK_CHECK(run(false, plain, plain_counters), "identity: plain run failed");
  SOAK_CHECK(run(true, tenanted, tenanted_counters), "identity: tenanted run failed");
  for (std::size_t i = 0; i < plain.size(); ++i) {
    SOAK_CHECK(plain[i].cycles == tenanted[i].cycles &&
                   plain[i].time_us == tenanted[i].time_us,
               "identity: results differ with tenancy defaults");
    SOAK_CHECK(plain[i].registry.counters() == tenanted[i].registry.counters(),
               "identity: registries differ with tenancy defaults");
  }
  SOAK_CHECK(plain_counters == tenanted_counters,
             "identity: svc.* counters differ with tenancy defaults");
  return true;
}

void json_tenant(std::ostringstream& out, const char* indent,
                 const std::string& name, const TenantStats& s, bool last) {
  out << indent << "\"" << name << "\": {"
      << "\"submitted\": " << s.submitted << ", \"admitted\": " << s.admitted
      << ", \"completed\": " << s.completed
      << ", \"quota_exceeded\": " << s.quota_exceeded
      << ", \"shed\": " << s.shed << ", \"degraded\": " << s.degraded
      << ", \"quota\": " << s.quota << ", \"p50_us\": " << s.p50_us
      << ", \"p95_us\": " << s.p95_us << ", \"p99_us\": " << s.p99_us << "}"
      << (last ? "\n" : ",\n");
}

bool run_overload(const std::vector<GraphPtr>& graphs,
                  const std::vector<std::array<sim::SimResult, 2>>& refs,
                  const std::string& fairness_out) {
  TenantStats solo{}, bursty_v{}, bursty_a{}, slow_v{}, slow_a{}, probe_v{},
      probe_a{}, degrade_v{};
  u64 degraded = 0;
  if (!scenario_solo(graphs, solo)) return false;
  if (!scenario_bursty(graphs, bursty_v, bursty_a)) return false;
  if (!scenario_slowjob(graphs, slow_v, slow_a)) return false;
  if (!scenario_quota_probe(graphs, probe_v, probe_a)) return false;
  if (!scenario_degrade(graphs, refs, degrade_v, degraded)) return false;
  if (!scenario_identity(graphs)) return false;

  std::printf("svc_soak --overload: deterministic isolation scenarios\n");
  std::printf("| scenario    | tenant    | submitted | admitted | completed | quota-rej | p99 (ms) |\n");
  std::printf("|-------------|-----------|-----------|----------|-----------|-----------|----------|\n");
  auto row = [](const char* sc, const char* t, const TenantStats& s) {
    std::printf("| %-11s | %-9s | %9llu | %8llu | %9llu | %9llu | %8.2f |\n", sc, t,
                static_cast<unsigned long long>(s.submitted),
                static_cast<unsigned long long>(s.admitted),
                static_cast<unsigned long long>(s.completed),
                static_cast<unsigned long long>(s.quota_exceeded),
                s.p99_us / 1000.0);
  };
  row("solo", kVictim, solo);
  row("bursty", kVictim, bursty_v);
  row("bursty", kAdversary, bursty_a);
  row("slowjob", kVictim, slow_v);
  row("slowjob", kAdversary, slow_a);
  row("quota_probe", kVictim, probe_v);
  row("quota_probe", kAdversary, probe_a);
  row("degrade", kVictim, degrade_v);
  std::printf("svc_soak --overload: %llu degraded completions under the ladder\n",
              static_cast<unsigned long long>(degraded));

  if (!fairness_out.empty()) {
    std::ostringstream out;
    out << "{\n  \"schema\": \"fairness.v1\",\n  \"tool\": \"svc_soak\",\n"
        << "  \"scenarios\": {\n";
    auto scenario = [&](const char* name, const TenantStats* v,
                        const TenantStats* a, bool last) {
      out << "    \"" << name << "\": {\"tenants\": {\n";
      if (a == nullptr) {
        json_tenant(out, "      ", kVictim, *v, true);
      } else {
        json_tenant(out, "      ", kVictim, *v, false);
        json_tenant(out, "      ", kAdversary, *a, true);
      }
      out << "    }}" << (last ? "\n" : ",\n");
    };
    scenario("solo", &solo, nullptr, false);
    scenario("bursty", &bursty_v, &bursty_a, false);
    scenario("slowjob", &slow_v, &slow_a, false);
    scenario("quota_probe", &probe_v, &probe_a, false);
    scenario("degrade", &degrade_v, nullptr, true);
    out << "  }\n}\n";
    std::FILE* f = std::fopen(fairness_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", fairness_out.c_str());
      return false;
    }
    const std::string doc = out.str();
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    std::printf("fairness: %s (fairness.v1)\n", fairness_out.c_str());
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::size_t> worker_counts = {1, 2, 4, 8};
  bool smoke = false;
  bool overload = false;
  std::string metrics_out, trace_out, fairness_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") worker_counts = {4};
    else if (arg == "--smoke") smoke = true;
    else if (arg == "--overload") overload = true;
    else if (arg == "--metrics-out" && i + 1 < argc) metrics_out = argv[++i];
    else if (arg == "--trace-out" && i + 1 < argc) trace_out = argv[++i];
    else if (arg == "--fairness-out" && i + 1 < argc) fairness_out = argv[++i];
    else {
      std::fprintf(stderr,
                   "usage: svc_soak [--quick] [--smoke] [--overload] "
                   "[--metrics-out F] [--trace-out F] [--fairness-out F]\n");
      return 2;
    }
  }

  const workloads::CkksWl w = workloads::CkksWl::paper(16);
  std::vector<GraphPtr> graphs;
  graphs.push_back(std::make_shared<metaop::OpGraph>(workloads::build_pmult(w)));
  graphs.push_back(std::make_shared<metaop::OpGraph>(workloads::build_hadd(w)));
  graphs.push_back(std::make_shared<metaop::OpGraph>(workloads::build_rotation(w)));
  graphs.push_back(std::make_shared<metaop::OpGraph>(workloads::build_keyswitch(w)));

  if (smoke) {
    if (!run_smoke(trace_out)) return 1;
    std::printf("svc_soak OK\n");
    return 0;
  }

  const auto refs = make_references(graphs, arch::ArchConfig::alchemist());

  if (overload) {
    if (!run_overload(graphs, refs, fairness_out)) return 1;
    std::printf("svc_soak OK\n");
    return 0;
  }

  // Every full soak runs traced: the hostile mix (shed storms, breaker trips,
  // checkpoint/resume) is exactly what the span tree has to survive. The sink
  // is cleared per run, so it ends holding the last worker count's spans.
  obs::TraceSink trace_sink;
  obs::EventLog event_log;

  std::printf("svc_soak: %zu jobs/run (+%zu poison, + resumes), queue %zu, seed 0x%llx\n",
              kJobs, kPoisonJobs, kQueueCap,
              static_cast<unsigned long long>(kSeed));
  std::printf("| workers | throughput (jobs/s) | p99 (ms) | completed | retried-ok | failed | cancelled | expired | shed | breaker |\n");
  std::printf("|---------|---------------------|----------|-----------|------------|--------|-----------|---------|------|---------|\n");

  SoakStats first{}, last{};
  bool first_set = false;
  for (std::size_t workers : worker_counts) {
    SoakStats s;
    if (!run_soak(workers, graphs, refs, s, &trace_sink, &event_log)) return 1;
    last = s;
    std::printf("| %7zu | %19.0f | %8.2f | %9llu | %10llu | %6llu | %9llu | %7llu | %4llu | %7llu |\n",
                workers, s.throughput, s.p99_ms,
                static_cast<unsigned long long>(s.completed),
                static_cast<unsigned long long>(s.retried_ok),
                static_cast<unsigned long long>(s.failed),
                static_cast<unsigned long long>(s.cancelled),
                static_cast<unsigned long long>(s.expired),
                static_cast<unsigned long long>(s.shed),
                static_cast<unsigned long long>(s.circuit_open));
    // Job outcomes are independent of scheduling: the terminal-state split
    // must be identical for every worker count.
    if (!first_set) {
      first = s;
      first_set = true;
    } else if (s.completed != first.completed || s.failed != first.failed ||
               s.cancelled != first.cancelled || s.expired != first.expired ||
               s.shed != first.shed || s.circuit_open != first.circuit_open) {
      std::fprintf(stderr, "svc_soak FAILED: terminal split varies with worker count\n");
      return 1;
    }
  }
  std::printf("per-class end-to-end latency (last run):\n");
  print_class_latency(last.reg);
  std::printf("flight recorder (last run): %llu spans (%llu dropped), "
              "%llu log events\n",
              static_cast<unsigned long long>(trace_sink.recorded()),
              static_cast<unsigned long long>(trace_sink.dropped()),
              static_cast<unsigned long long>(event_log.recorded()));
  if (!metrics_out.empty()) {
    obs::MetricsReport report("svc_soak");
    report.add("svc_soak_mix", "JobRunner", last.reg);
    report.attach_spans(trace_sink);
    if (!report.write_file(metrics_out)) {
      std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
      return 1;
    }
    std::printf("metrics: %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    if (!obs::write_spans_file(trace_out, trace_sink, "svc_soak")) {
      std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
      return 1;
    }
    std::printf("trace: %s (spans.v1)\n", trace_out.c_str());
  }
  std::printf("svc_soak OK\n");
  return 0;
}
