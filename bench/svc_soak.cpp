// Deterministic soak of the resilient simulation service (src/svc).
//
// One run per worker count pushes a fixed, seeded mix of >200 jobs through
// the JobRunner with everything hostile turned on at once:
//
//   * queue capacity below the submission burst  -> deterministic shedding
//     (workers start paused, so the burst hits a full queue);
//   * tight deterministic step budgets            -> DeadlineExpired with a
//     checkpoint captured, later resumed to completion and checked
//     bit-identical against an uninterrupted reference run;
//   * injected transient faults + retry budgets   -> retried / failed jobs;
//   * cooperative cancellation of queued jobs;
//   * a poison workload class (fault rate 1.0)    -> circuit breaker opens,
//     subsequent submissions fast-fail with CircuitOpen.
//
// The soak asserts, for every worker count, that each job handle lands in
// exactly one terminal state, that the svc.* terminal-state counters
// partition svc.submitted, and that the handle tally equals the counters.
// Exit status is non-zero on any violation, so this doubles as a ctest.
//
// Modes:
//   --quick            one worker count (4) instead of {1,2,4,8}
//   --smoke            overhead gates: the same deterministic job set runs
//                      (a) with and without JobSpec::profile and (b) with and
//                      without distributed tracing (TraceSink + EventLog at
//                      phase detail); results must be bit-identical in both
//                      comparisons and each instrumented wall-clock (best of
//                      3) within 10% of the plain one
//   --metrics-out F    write the final run's svc.* registry (latency
//                      histograms included) as a metrics.v1 JSON report;
//                      traced runs graft their spans in as a spans.v1 section
//   --trace-out F      write the traced run's spans as a standalone spans.v1
//                      document (CI feeds this to tools/check_trace_spans.py)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "obs/log.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "sim/alchemist_sim.h"
#include "sim/event_sim.h"
#include "svc/job_runner.h"
#include "workloads/ckks_workloads.h"

namespace {

using namespace alchemist;
using GraphPtr = std::shared_ptr<const metaop::OpGraph>;

constexpr std::size_t kJobs = 260;       // submission burst (wave 1)
constexpr std::size_t kQueueCap = 224;   // < kJobs: the tail is shed
constexpr std::size_t kPoisonJobs = 8;   // wave 2: breaker exercise
constexpr std::size_t kBreakerThreshold = 4;
constexpr u64 kSeed = 0x50a1'c0deull;

#define SOAK_CHECK(cond, msg)                                      \
  do {                                                             \
    if (!(cond)) {                                                 \
      std::fprintf(stderr, "svc_soak FAILED: %s (line %d)\n", msg, \
                   __LINE__);                                      \
      return false;                                                \
    }                                                              \
  } while (0)

struct SoakStats {
  u64 submitted = 0, completed = 0, retried_ok = 0, failed = 0, cancelled = 0,
      expired = 0, shed = 0, circuit_open = 0, retries = 0, resumed = 0;
  double wall_ms = 0.0, p99_ms = 0.0, throughput = 0.0;
  obs::Registry reg;  // final snapshot (latency histograms for reporting)
};

// Per-class latency quantiles from the svc.latency.total_us{class=} histograms.
void print_class_latency(const obs::Registry& reg) {
  const std::string prefix = std::string(svc::metrics::kLatencyTotalUs) + "{class=";
  for (const auto& [key, hist] : reg.histograms()) {
    if (key.rfind(prefix, 0) != 0 || hist.count() == 0) continue;
    std::printf("  %-40s p50/p95/p99 = %8.2f / %8.2f / %8.2f ms  (n=%llu)\n",
                key.c_str(), hist.percentile(50.0) / 1000.0,
                hist.percentile(95.0) / 1000.0, hist.percentile(99.0) / 1000.0,
                static_cast<unsigned long long>(hist.count()));
  }
}

// Uninterrupted reference runs, indexed [graph][engine]; resumed jobs are
// fault-free, so their results must be bit-identical to these.
std::vector<std::array<sim::SimResult, 2>> make_references(
    const std::vector<GraphPtr>& graphs, const arch::ArchConfig& cfg) {
  std::vector<std::array<sim::SimResult, 2>> refs;
  refs.reserve(graphs.size());
  for (const GraphPtr& g : graphs) {
    refs.push_back({sim::simulate_alchemist(*g, cfg),
                    sim::simulate_alchemist_events(*g, cfg)});
  }
  return refs;
}

bool run_soak(std::size_t workers, const std::vector<GraphPtr>& graphs,
              const std::vector<std::array<sim::SimResult, 2>>& refs,
              SoakStats& out, obs::TraceSink* trace = nullptr,
              obs::EventLog* log = nullptr) {
  if (trace != nullptr) trace->clear();
  if (log != nullptr) log->clear();
  svc::RunnerOptions opts;
  opts.workers = workers;
  opts.queue_capacity = kQueueCap;
  opts.breaker_threshold = kBreakerThreshold;
  opts.breaker_cooldown = std::chrono::seconds(600);  // stays open for the run
  opts.backoff.base_us = 50;
  opts.backoff.cap_us = 1000;
  opts.start_paused = true;  // deterministic queue pressure + cancellation
  opts.trace = trace;
  opts.log = log;
  svc::JobRunner runner(opts);

  // Wave 1: seeded mixed burst against parked workers.
  Rng rng(kSeed);
  std::vector<svc::JobPtr> handles;
  std::vector<bool> budgeted(kJobs, false);
  std::vector<std::size_t> graph_of(kJobs, 0), engine_of(kJobs, 0);
  handles.reserve(kJobs);
  for (std::size_t i = 0; i < kJobs; ++i) {
    svc::JobSpec spec;
    spec.name = "soak-" + std::to_string(i);
    graph_of[i] = rng.uniform(graphs.size());
    engine_of[i] = rng.uniform(2);
    spec.graph = graphs[graph_of[i]];
    spec.engine = engine_of[i] == 0 ? svc::Engine::Level : svc::Engine::Event;
    spec.checkpoint_interval = 2;
    const u64 r = rng.uniform(100);
    if (r < 20) {
      // Tight deterministic deadline; fault-free so a resumed run can be
      // compared bit-for-bit against the uninterrupted reference.
      budgeted[i] = true;
      spec.max_steps = 1 + rng.uniform(2);
    } else if (r < 50) {
      spec.fault_enabled = true;
      spec.fault.seed = rng.next();
      const double rate = 1e-9 * static_cast<double>(1 + rng.uniform(20));
      spec.fault.compute_fault_rate = spec.fault.sram_fault_rate =
          spec.fault.hbm_fault_rate = rate;
      spec.max_attempts = 3;
    }
    handles.push_back(runner.submit(std::move(spec)));
  }
  // Cancel a slice of the queued jobs before anything runs.
  for (std::size_t i = 7; i < kJobs; i += 29) handles[i]->cancel();

  const auto t0 = std::chrono::steady_clock::now();
  runner.set_paused(false);
  runner.drain();
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();

  // Wave 2: a workload class that always corrupts its output. Draining after
  // each submission makes the failure order deterministic: the breaker trips
  // after kBreakerThreshold failures and the rest are rejected CircuitOpen.
  std::vector<svc::JobPtr> poison;
  for (std::size_t i = 0; i < kPoisonJobs; ++i) {
    svc::JobSpec spec;
    spec.name = "poison-" + std::to_string(i);
    spec.workload_class = "poison";
    spec.graph = graphs[0];
    spec.fault_enabled = true;
    spec.fault.seed = kSeed + i;
    spec.fault.compute_fault_rate = 1.0;
    poison.push_back(runner.submit(std::move(spec)));
    runner.drain();
  }
  for (std::size_t i = 0; i < kPoisonJobs; ++i) {
    const svc::JobState expect = i < kBreakerThreshold
                                     ? svc::JobState::Failed
                                     : svc::JobState::CircuitOpen;
    SOAK_CHECK(poison[i]->state() == expect, "poison job state mismatch");
  }

  // Wave 3: resume every deadline-expired job from its checkpoint and verify
  // the completed result is bit-identical to the uninterrupted reference.
  std::vector<std::pair<std::size_t, svc::JobPtr>> resumes;
  for (std::size_t i = 0; i < kJobs; ++i) {
    if (handles[i]->state() != svc::JobState::DeadlineExpired) continue;
    SOAK_CHECK(budgeted[i], "non-budgeted job expired");
    const sim::Checkpoint cp = handles[i]->checkpoint();
    SOAK_CHECK(cp.valid(), "expired job has no checkpoint");
    svc::JobSpec spec;
    spec.name = handles[i]->spec().name + "-resume";
    spec.workload_class = "resume";  // wave-1 failures may have opened class breakers
    spec.graph = graphs[graph_of[i]];
    spec.engine = engine_of[i] == 0 ? svc::Engine::Level : svc::Engine::Event;
    spec.resume_from = cp;
    // Continue the interrupted job's trace: both halves of the run share one
    // trace id, with the resume's root span parented under the original.
    spec.trace = handles[i]->trace_context();
    resumes.emplace_back(i, runner.submit(std::move(spec)));
  }
  runner.drain();
  for (const auto& [i, job] : resumes) {
    SOAK_CHECK(job->state() == svc::JobState::Completed, "resume did not complete");
    const sim::SimResult& ref = refs[graph_of[i]][engine_of[i]];
    const sim::SimResult got = job->result();
    SOAK_CHECK(got.cycles == ref.cycles, "resumed cycles differ from reference");
    SOAK_CHECK(got.time_us == ref.time_us, "resumed time differs from reference");
    SOAK_CHECK(got.registry.counters() == ref.registry.counters(),
               "resumed registry differs from reference");
  }

  // Global invariants: every handle terminal, in a defined state, and the
  // svc.* terminal counters partition svc.submitted exactly.
  const obs::Registry reg = runner.snapshot();
  out.submitted = reg.counter(svc::metrics::kSubmitted);
  out.completed = reg.counter(svc::metrics::kCompleted);
  out.retried_ok = reg.counter(svc::metrics::kCompleted, {{"retried", "true"}});
  out.failed = reg.counter(svc::metrics::kFailed);
  out.cancelled = reg.counter(svc::metrics::kCancelled);
  out.expired = reg.counter(svc::metrics::kDeadlineExpired);
  out.shed = reg.counter(svc::metrics::kRejected, {{"reason", "queue_full"}}) +
             reg.counter(svc::metrics::kRejected, {{"reason", "shutdown"}});
  out.circuit_open = reg.counter(svc::metrics::kRejected, {{"reason", "circuit_open"}});
  out.retries = reg.counter(svc::metrics::kRetries);
  out.resumed = reg.counter(svc::metrics::kResumed);
  out.p99_ms = reg.gauge(svc::metrics::kLatencyUs, {{"p", "99"}}) / 1000.0;
  out.throughput = static_cast<double>(kJobs - out.shed) * 1000.0 / out.wall_ms;
  out.reg = reg;

  const u64 total_handles = kJobs + kPoisonJobs + resumes.size();
  SOAK_CHECK(out.submitted == total_handles, "submitted != handles");
  SOAK_CHECK(out.completed + out.failed + out.cancelled + out.expired + out.shed +
                     out.circuit_open == out.submitted,
             "terminal-state counters do not partition submitted");
  SOAK_CHECK(out.shed == kJobs - kQueueCap, "unexpected shed count");
  SOAK_CHECK(out.resumed == resumes.size(), "svc.resumed mismatch");

  std::map<svc::JobState, u64> tally;
  auto count = [&](const std::vector<svc::JobPtr>& v) {
    for (const svc::JobPtr& h : v) {
      SOAK_CHECK(h->terminal(), "job not terminal at end of soak");
      ++tally[h->state()];
    }
    return true;
  };
  if (!count(handles) || !count(poison)) return false;
  for (const auto& [i, job] : resumes) {
    (void)i;
    ++tally[job->state()];
  }
  SOAK_CHECK(tally[svc::JobState::Completed] == out.completed, "completed tally");
  SOAK_CHECK(tally[svc::JobState::Failed] == out.failed, "failed tally");
  SOAK_CHECK(tally[svc::JobState::Cancelled] == out.cancelled, "cancelled tally");
  SOAK_CHECK(tally[svc::JobState::DeadlineExpired] == out.expired, "expired tally");
  SOAK_CHECK(tally[svc::JobState::Shed] == out.shed, "shed tally");
  SOAK_CHECK(tally[svc::JobState::CircuitOpen] == out.circuit_open, "breaker tally");
  return true;
}

// Instrumentation-overhead gates: a deterministic fault-free job set through
// a 4-worker runner, once plain, once with JobSpec::profile, and once under
// distributed tracing (TraceSink + EventLog, phase detail). Each instrumented
// configuration must reproduce the plain simulated outcome bit for bit and
// land within kMaxOverhead of the plain wall-clock (best of kReps each).
bool run_smoke(const std::string& trace_out) {
  constexpr std::size_t kSmokeJobs = 16;
  constexpr int kReps = 5;
  constexpr double kMaxOverhead = 0.10;

  // Heavyweight jobs — the overhead gate is about instrumenting realistic
  // runs, not amortizing fixed per-job cost over microsecond-long toy graphs.
  std::vector<GraphPtr> graphs;
  graphs.push_back(std::make_shared<metaop::OpGraph>(
      workloads::build_bootstrapping(workloads::CkksWl::paper(44), true)));
  graphs.push_back(std::make_shared<metaop::OpGraph>(
      workloads::build_helr_iteration(workloads::CkksWl::paper(30))));

  // The bootstrap graphs emit ~90k phase spans per run; size the ring so the
  // --trace-out document keeps every span (parents included) for the checker.
  obs::TraceSink sink(1 << 17);
  obs::EventLog log;
  svc::TraceSummary slowest{};
  auto run = [&](bool profile, bool traced, std::vector<sim::SimResult>& results,
                 obs::Registry* reg_out) {
    svc::RunnerOptions opts;
    opts.workers = 4;
    opts.queue_capacity = kSmokeJobs;
    if (traced) {
      sink.clear();
      log.clear();
      opts.trace = &sink;
      opts.log = &log;
      opts.trace_detail = obs::TraceDetail::Phases;
    }
    svc::JobRunner runner(opts);
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<svc::JobPtr> handles;
    handles.reserve(kSmokeJobs);
    for (std::size_t i = 0; i < kSmokeJobs; ++i) {
      svc::JobSpec spec;
      spec.name = "smoke-" + std::to_string(i);
      spec.graph = graphs[i % graphs.size()];
      spec.engine = (i % 2 == 0) ? svc::Engine::Level : svc::Engine::Event;
      spec.profile = profile;
      handles.push_back(runner.submit(std::move(spec)));
    }
    runner.drain();
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
    results.clear();
    for (const svc::JobPtr& h : handles) {
      if (h->state() != svc::JobState::Completed) return -1.0;
      results.push_back(h->result());
      if (traced) {
        const svc::TraceSummary s = h->trace_summary();
        if (s.total_us > slowest.total_us) slowest = s;
      }
    }
    if (reg_out != nullptr) *reg_out = runner.snapshot();
    return wall_ms;
  };

  double wall_off = 1e300, wall_profiled = 1e300, wall_traced = 1e300;
  std::vector<sim::SimResult> base, profiled, traced, scratch;
  obs::Registry last_reg;
  for (int rep = 0; rep < kReps; ++rep) {
    const double ms = run(false, false, scratch, nullptr);
    if (ms < 0) { std::fprintf(stderr, "smoke: plain job failed\n"); return false; }
    wall_off = std::min(wall_off, ms);
    if (rep == 0) base = scratch;
  }
  for (int rep = 0; rep < kReps; ++rep) {
    const double ms = run(true, false, scratch, &last_reg);
    if (ms < 0) { std::fprintf(stderr, "smoke: profiled job failed\n"); return false; }
    wall_profiled = std::min(wall_profiled, ms);
    if (rep == 0) profiled = scratch;
  }
  for (int rep = 0; rep < kReps; ++rep) {
    const double ms = run(false, true, scratch, nullptr);
    if (ms < 0) { std::fprintf(stderr, "smoke: traced job failed\n"); return false; }
    wall_traced = std::min(wall_traced, ms);
    if (rep == 0) traced = scratch;
  }
  std::printf("svc_soak --smoke: per-class latency of the last profiled run:\n");
  print_class_latency(last_reg);

  auto identical = [&](const std::vector<sim::SimResult>& other,
                       const char* what) {
    for (std::size_t i = 0; i < base.size(); ++i) {
      const sim::SimResult& a = base[i];
      const sim::SimResult& b = other[i];
      if (a.cycles != b.cycles || a.time_us != b.time_us ||
          a.registry.counters() != b.registry.counters()) {
        std::fprintf(stderr, "smoke: %s result of job %zu not bit-identical\n",
                     what, i);
        return false;
      }
    }
    return true;
  };
  if (!identical(profiled, "profiled") || !identical(traced, "traced")) {
    return false;
  }
  for (std::size_t i = 0; i < base.size(); ++i) {
    const sim::SimResult& a = base[i];
    const sim::SimResult& b = profiled[i];
    if (a.profile.enabled() || !b.profile.enabled()) {
      std::fprintf(stderr, "smoke: profile presence wrong for job %zu\n", i);
      return false;
    }
    for (const obs::UnitCycles& u : b.profile.units) {
      if (u.total() != b.profile.total_cycles) {
        std::fprintf(stderr, "smoke: unit buckets of job %zu do not sum to total\n", i);
        return false;
      }
    }
  }
  bool ok = true;
  for (const auto& [label, wall] :
       {std::pair<const char*, double>{"profiler", wall_profiled},
        {"tracing", wall_traced}}) {
    const double overhead = (wall - wall_off) / wall_off;
    std::printf("svc_soak --smoke: wall %0.2f ms off / %0.2f ms %s -> overhead "
                "%+.1f%% (gate <%.0f%%), results bit-identical\n",
                wall_off, wall, label, 100.0 * overhead, 100.0 * kMaxOverhead);
    if (overhead >= kMaxOverhead) {
      std::fprintf(stderr, "svc_soak FAILED: %s overhead %.1f%% exceeds gate\n",
                   label, 100.0 * overhead);
      ok = false;
    }
  }
  std::printf("svc_soak --smoke: %llu spans, %llu log events; slowest trace "
              "0x%016llx queue %.2f ms run %.2f ms sim %.2f ms\n",
              static_cast<unsigned long long>(sink.recorded()),
              static_cast<unsigned long long>(log.recorded()),
              static_cast<unsigned long long>(slowest.trace_id),
              slowest.queue_us / 1000.0, slowest.run_us / 1000.0,
              slowest.sim_us / 1000.0);
  if (!trace_out.empty()) {
    if (!obs::write_spans_file(trace_out, sink, "svc_soak")) {
      std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
      return false;
    }
    std::printf("trace: %s (spans.v1)\n", trace_out.c_str());
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::size_t> worker_counts = {1, 2, 4, 8};
  bool smoke = false;
  std::string metrics_out, trace_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") worker_counts = {4};
    else if (arg == "--smoke") smoke = true;
    else if (arg == "--metrics-out" && i + 1 < argc) metrics_out = argv[++i];
    else if (arg == "--trace-out" && i + 1 < argc) trace_out = argv[++i];
    else {
      std::fprintf(stderr,
                   "usage: svc_soak [--quick] [--smoke] [--metrics-out F] "
                   "[--trace-out F]\n");
      return 2;
    }
  }

  const workloads::CkksWl w = workloads::CkksWl::paper(16);
  std::vector<GraphPtr> graphs;
  graphs.push_back(std::make_shared<metaop::OpGraph>(workloads::build_pmult(w)));
  graphs.push_back(std::make_shared<metaop::OpGraph>(workloads::build_hadd(w)));
  graphs.push_back(std::make_shared<metaop::OpGraph>(workloads::build_rotation(w)));
  graphs.push_back(std::make_shared<metaop::OpGraph>(workloads::build_keyswitch(w)));

  if (smoke) {
    if (!run_smoke(trace_out)) return 1;
    std::printf("svc_soak OK\n");
    return 0;
  }

  const auto refs = make_references(graphs, arch::ArchConfig::alchemist());

  // Every full soak runs traced: the hostile mix (shed storms, breaker trips,
  // checkpoint/resume) is exactly what the span tree has to survive. The sink
  // is cleared per run, so it ends holding the last worker count's spans.
  obs::TraceSink trace_sink;
  obs::EventLog event_log;

  std::printf("svc_soak: %zu jobs/run (+%zu poison, + resumes), queue %zu, seed 0x%llx\n",
              kJobs, kPoisonJobs, kQueueCap,
              static_cast<unsigned long long>(kSeed));
  std::printf("| workers | throughput (jobs/s) | p99 (ms) | completed | retried-ok | failed | cancelled | expired | shed | breaker |\n");
  std::printf("|---------|---------------------|----------|-----------|------------|--------|-----------|---------|------|---------|\n");

  SoakStats first{}, last{};
  bool first_set = false;
  for (std::size_t workers : worker_counts) {
    SoakStats s;
    if (!run_soak(workers, graphs, refs, s, &trace_sink, &event_log)) return 1;
    last = s;
    std::printf("| %7zu | %19.0f | %8.2f | %9llu | %10llu | %6llu | %9llu | %7llu | %4llu | %7llu |\n",
                workers, s.throughput, s.p99_ms,
                static_cast<unsigned long long>(s.completed),
                static_cast<unsigned long long>(s.retried_ok),
                static_cast<unsigned long long>(s.failed),
                static_cast<unsigned long long>(s.cancelled),
                static_cast<unsigned long long>(s.expired),
                static_cast<unsigned long long>(s.shed),
                static_cast<unsigned long long>(s.circuit_open));
    // Job outcomes are independent of scheduling: the terminal-state split
    // must be identical for every worker count.
    if (!first_set) {
      first = s;
      first_set = true;
    } else if (s.completed != first.completed || s.failed != first.failed ||
               s.cancelled != first.cancelled || s.expired != first.expired ||
               s.shed != first.shed || s.circuit_open != first.circuit_open) {
      std::fprintf(stderr, "svc_soak FAILED: terminal split varies with worker count\n");
      return 1;
    }
  }
  std::printf("per-class end-to-end latency (last run):\n");
  print_class_latency(last.reg);
  std::printf("flight recorder (last run): %llu spans (%llu dropped), "
              "%llu log events\n",
              static_cast<unsigned long long>(trace_sink.recorded()),
              static_cast<unsigned long long>(trace_sink.dropped()),
              static_cast<unsigned long long>(event_log.recorded()));
  if (!metrics_out.empty()) {
    obs::MetricsReport report("svc_soak");
    report.add("svc_soak_mix", "JobRunner", last.reg);
    report.attach_spans(trace_sink);
    if (!report.write_file(metrics_out)) {
      std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
      return 1;
    }
    std::printf("metrics: %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    if (!obs::write_spans_file(trace_out, trace_sink, "svc_soak")) {
      std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
      return 1;
    }
    std::printf("trace: %s (spans.v1)\n", trace_out.c_str());
  }
  std::printf("svc_soak OK\n");
  return 0;
}
