// Microbenchmarks of the modular-arithmetic substrate (google-benchmark).
// These measured rates calibrate the CPU baseline of Table 7.
#include <benchmark/benchmark.h>

#include "common/modarith.h"
#include "common/rng.h"

namespace {

using namespace alchemist;

constexpr u64 kPrime = (u64{1} << 61) - 1;

void BM_MulModNaive(benchmark::State& state) {
  Rng rng(1);
  u64 x = rng.uniform(kPrime) | 1;
  for (auto _ : state) {
    x = mul_mod(x, x + 1, kPrime);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_MulModNaive);

void BM_MulModBarrett(benchmark::State& state) {
  Modulus mod(kPrime);
  Rng rng(2);
  u64 x = rng.uniform(kPrime) | 1;
  for (auto _ : state) {
    x = mod.mul(x, x + 1);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_MulModBarrett);

void BM_MulModShoup(benchmark::State& state) {
  Rng rng(3);
  MulModShoup shoup(rng.uniform(kPrime), kPrime);
  u64 x = rng.uniform(kPrime);
  for (auto _ : state) {
    x = shoup.mul(x + 1);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_MulModShoup);

void BM_AddMod(benchmark::State& state) {
  Rng rng(4);
  u64 x = rng.uniform(kPrime), y = rng.uniform(kPrime);
  for (auto _ : state) {
    x = add_mod(x, y, kPrime);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_AddMod);

void BM_PowMod(benchmark::State& state) {
  Rng rng(5);
  const u64 base = rng.uniform(kPrime);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pow_mod(base, kPrime - 2, kPrime));
  }
}
BENCHMARK(BM_PowMod);

}  // namespace

BENCHMARK_MAIN();
