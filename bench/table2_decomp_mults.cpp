// Reproduces Table 2: multiplication count of DecompPolyMult, original
// (eager reduction) vs the (M_j A_j)_dnum R_j transformation.
#include <cstdio>

#include "bench_util.h"
#include "metaop/lowering.h"
#include "metaop/mult_count.h"

int main() {
  using namespace alchemist;
  bench::print_header(
      "Table 2 - Transformation of DecompPolyMult (#word-mults per coefficient)");
  std::printf("%-6s %-18s %-22s %-10s\n", "dnum", "origin 3*dnum*N",
              "(MA)_dnum R: (dnum+2)*N", "reduction");
  const std::size_t n = 65536;
  for (std::size_t dnum = 1; dnum <= 8; ++dnum) {
    const auto c = metaop::decomp_mults(n, dnum, 1);
    std::printf("%-6zu %-18llu %-22llu %.2fx\n", dnum,
                static_cast<unsigned long long>(c.origin),
                static_cast<unsigned long long>(c.meta),
                static_cast<double>(c.origin) / static_cast<double>(c.meta));
    // The lowering must agree with the closed form.
    if (metaop::lower_decomp_poly_mult(n, dnum, 1).mult_count() != c.meta) {
      std::printf("MISMATCH between lowering and Table 2 formula!\n");
      return 1;
    }
  }
  bench::print_footnote(
      "paper: up to 3x fewer multiplications; the ratio approaches 3 as dnum grows");
  return 0;
}
