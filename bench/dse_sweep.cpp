// Ablation for §5.4: design space exploration.
//
// Sweeps the number of computing units and the scratchpad size on the hoisted
// bootstrapping workload, reporting runtime, area, performance per area and
// memory stalls — showing why 128 units with 512 KB scratchpads (64 + 2 MB
// total SRAM) is the chosen configuration.
#include <cstdio>

#include "arch/area_model.h"
#include "bench_util.h"
#include "sim/alchemist_sim.h"
#include "workloads/ckks_workloads.h"
#include "workloads/tfhe_workloads.h"

int main() {
  using namespace alchemist;
  workloads::CkksWl w = workloads::CkksWl::paper(44);
  w.hbm_stream_fraction = 0.05;
  const auto boot = workloads::build_bootstrapping(w, true);

  bench::print_header("Ablation (Sec. 5.4) - units sweep on bootstrapping");
  std::printf("%-8s %-12s %-12s %-14s %-10s\n", "units", "time (ms)",
              "area (mm^2)", "perf/area", "util");
  double best_ppa = 0;
  std::size_t best_units = 0;
  for (std::size_t units : {32, 64, 128, 256, 512}) {
    arch::ArchConfig cfg = arch::ArchConfig::alchemist();
    cfg.num_units = units;
    const auto r = sim::simulate_alchemist(boot, cfg);
    const double area = arch::area_model(cfg).total_mm2;
    const double ppa = 1e6 / r.time_us / area;
    std::printf("%-8zu %-12.3f %-12.1f %-14.4f %-10.2f%s\n", units,
                r.time_us / 1e3, area, ppa, r.utilization,
                units == 128 ? "  <- paper config" : "");
    if (ppa > best_ppa) {
      best_ppa = ppa;
      best_units = units;
    }
  }
  std::printf("Best perf/area at %zu units.\n", best_units);

  bench::print_header(
      "Ablation (Sec. 5.4) - units sweep on TFHE-PBS (N=1024, batch=4)");
  std::printf("%-8s %-12s %-10s\n", "units", "time (us)", "util");
  workloads::TfheWl pbs_wl = workloads::TfheWl::set_i();
  pbs_wl.batch = 4;
  pbs_wl.hbm_stream_fraction = 0.0;
  const auto pbs = workloads::build_pbs(pbs_wl);
  for (std::size_t units : {32, 64, 128, 256, 512}) {
    arch::ArchConfig cfg = arch::ArchConfig::alchemist();
    cfg.num_units = units;
    const auto r = sim::simulate_alchemist(pbs, cfg);
    std::printf("%-8zu %-12.1f %-10.2f%s\n", units, r.time_us, r.utilization,
                units == 128 ? "  <- last config that stays full on N=2^10" : "");
  }
  std::printf("Cross-scheme constraint: beyond 128 units the short logic-FHE\n"
              "polynomials cannot fill the machine - the paper's 128-unit choice.\n");

  bench::print_header("Ablation (Sec. 5.4) - on-chip SRAM: key residency");
  std::printf("%-14s %-18s %-12s %-10s\n", "SRAM (MB)", "stream fraction",
              "time (ms)", "stall kcyc");
  // Working set: the evaluation keys touched by the workload (~130 MB per key
  // at L=44). SRAM below the working set streams the difference from HBM.
  const double working_set_mb = 130.0;
  for (double sram_mb : {16.0, 32.0, 66.0, 128.0, 180.0}) {
    workloads::CkksWl ws = workloads::CkksWl::paper(44);
    ws.hbm_stream_fraction =
        sram_mb >= working_set_mb ? 0.0 : 1.0 - sram_mb / working_set_mb;
    const auto g = workloads::build_bootstrapping(ws, true);
    const auto r = sim::simulate_alchemist(g, arch::ArchConfig::alchemist());
    std::printf("%-14.0f %-18.2f %-12.3f %-10llu\n", sram_mb,
                ws.hbm_stream_fraction, r.time_us / 1e3,
                static_cast<unsigned long long>(r.mem_stall_cycles / 1000));
  }
  bench::print_footnote(
      "66 MB (paper config) keeps streaming within the 1 TB/s budget: stalls "
      "vanish well before SHARP's 180 MB");
  return 0;
}
