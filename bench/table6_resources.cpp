// Reproduces Table 6: resource usage of FHE accelerators (published specs).
#include <cstdio>

#include "arch/baselines.h"
#include "bench_util.h"

int main() {
  using namespace alchemist;
  bench::print_header("Table 6 - Resource usage in FHE accelerators");
  std::printf("%-12s %-8s %-14s %-12s %-12s %-8s %-16s\n", "Design", "(AC,LC)",
              "Off-chip BW", "On-chip MB", "On-chip BW", "Freq", "Area(14nm)mm^2");
  for (const auto& s : arch::table6_specs()) {
    char caps[8];
    std::snprintf(caps, sizeof(caps), "(%c,%c)", s.arithmetic_fhe ? 'Y' : '-',
                  s.logic_fhe ? 'Y' : '-');
    char onbw[16];
    if (s.onchip_bw_tb_s > 0) {
      std::snprintf(onbw, sizeof(onbw), "%.0f TB/s", s.onchip_bw_tb_s);
    } else {
      std::snprintf(onbw, sizeof(onbw), "/");
    }
    std::printf("%-12s %-8s %-11.0f GB/s %-12.0f %-12s %-5.1f GHz %-16.1f\n",
                s.name.c_str(), caps, s.offchip_bw_gb_s, s.onchip_mem_mb, onbw,
                s.freq_ghz, s.area_14nm_mm2);
  }
  const auto alch = arch::spec_by_name("Alchemist");
  const auto sharp = arch::spec_by_name("SHARP");
  const auto clake = arch::spec_by_name("CraterLake");
  std::printf("\nSRAM vs SHARP:      -%.0f%%   (paper: >60%% reduction)\n",
              100.0 * (1.0 - alch.onchip_mem_mb / sharp.onchip_mem_mb));
  std::printf("SRAM vs CraterLake: -%.0f%%\n",
              100.0 * (1.0 - alch.onchip_mem_mb / clake.onchip_mem_mb));
  std::printf("Area vs SHARP(14nm): -%.0f%%  (paper: >50%% reduction)\n",
              100.0 * (1.0 - alch.area_14nm_mm2 / sharp.area_14nm_mm2));
  bench::print_footnote("only Alchemist supports both scheme families");
  return 0;
}
