// Reproduces Figure 7(b): per-class and overall utilization rates of
// Alchemist vs SHARP and CraterLake on bootstrapping / HELR / MNIST.
//
// The Alchemist rows also run with the per-unit UnitProfiler attached and
// cross-check the utilization.v1 view against the simulator's own numbers:
// the profiler's occupancy (busy+reduction cycles over units x total cycles)
// must agree with SimResult.utilization within rounding, and every unit's
// five buckets must sum exactly to the total cycle count. Any mismatch makes
// the harness exit nonzero, so the two accounting paths cannot drift apart
// silently.
#include <cmath>
#include <cstdio>

#include "arch/baselines.h"
#include "arch/config.h"
#include "bench_util.h"
#include "sim/alchemist_sim.h"
#include "sim/baseline_sim.h"
#include "sim/unit_profiler.h"
#include "workloads/ckks_workloads.h"

namespace {

using namespace alchemist;

// |profiler occupancy - simulator utilization|: both are ratios of the same
// busy-core-cycle total, so the only slack is per-unit ceil() integerization.
constexpr double kOccupancyTolerance = 0.02;

workloads::CkksWl resident(std::size_t level) {
  workloads::CkksWl w = workloads::CkksWl::paper(level);
  w.hbm_stream_fraction = 0.05;
  return w;
}

void print_util(const char* who, const sim::SimResult& r) {
  std::printf("  %-18s NTT=%.2f Bconv=%.2f DecompPM=%.2f | overall=%.2f\n", who,
              r.util_by_class[0], r.util_by_class[1], r.util_by_class[2],
              r.utilization);
}

// Returns false (after printing why) when the profile disagrees with the
// simulator's aggregate accounting.
bool check_profile(const char* name, const sim::SimResult& r) {
  const obs::UtilizationProfile& p = r.profile;
  if (!p.enabled()) {
    std::printf("  FAIL %s: profiler attached but profile empty\n", name);
    return false;
  }
  for (std::size_t u = 0; u < p.units.size(); ++u) {
    if (p.units[u].total() != p.total_cycles) {
      std::printf("  FAIL %s: unit %zu buckets sum to %llu, expected %llu\n",
                  name, u, static_cast<unsigned long long>(p.units[u].total()),
                  static_cast<unsigned long long>(p.total_cycles));
      return false;
    }
  }
  const double occ = p.occupancy();
  if (std::fabs(occ - r.utilization) > kOccupancyTolerance) {
    std::printf("  FAIL %s: profile occupancy %.4f vs sim utilization %.4f\n",
                name, occ, r.utilization);
    return false;
  }
  const obs::UnitCycles agg = p.aggregate();
  const double denom = static_cast<double>(p.total_cycles) *
                       static_cast<double>(p.units.size());
  std::printf(
      "  profile(v1)        busy=%.2f red=%.2f scratch=%.2f dep=%.2f idle=%.2f"
      " | occ=%.2f (ok)\n",
      static_cast<double>(agg.busy) / denom,
      static_cast<double>(agg.reduction) / denom,
      static_cast<double>(agg.stall_scratchpad) / denom,
      static_cast<double>(agg.stall_dependency) / denom,
      static_cast<double>(agg.idle) / denom, occ);
  return true;
}

}  // namespace

int main() {
  const auto cfg = arch::ArchConfig::alchemist();
  bench::print_header("Figure 7(b) - Utilization rates");

  struct Case {
    const char* name;
    metaop::OpGraph graph;
  };
  Case cases[] = {
      {"Bootstrapping(L=44,+)", workloads::build_bootstrapping(resident(44), true)},
      {"HELR-1024 iteration", workloads::build_helr_iteration(resident(30))},
      {"LoLa-MNIST", workloads::build_lola_mnist(false)},
  };

  bool ok = true;
  for (auto& c : cases) {
    std::printf("%s\n", c.name);
    sim::UnitProfiler prof;
    const sim::SimResult r =
        sim::simulate_alchemist(c.graph, cfg, nullptr, nullptr, nullptr, &prof);
    print_util("Alchemist", r);
    ok = check_profile(c.name, r) && ok;
    print_util("SHARP (model)", sim::simulate_modular(c.graph, arch::spec_by_name("SHARP")));
    print_util("CraterLake (mdl)",
               sim::simulate_modular(c.graph, arch::spec_by_name("CraterLake")));
  }
  if (!ok) {
    std::printf("\nutilization.v1 cross-check FAILED\n");
    return 1;
  }

  std::printf(
      "\nPaper reference: Alchemist 0.85/0.89/0.87 per class, ~0.86 overall;\n"
      "SHARP 0.70/0.26/0.64 -> 0.55 (boot), 0.52 (HELR); CraterLake 0.42 "
      "(boot), 0.38 (MNIST).\n");
  return 0;
}
