// Reproduces Figure 7(b): per-class and overall utilization rates of
// Alchemist vs SHARP and CraterLake on bootstrapping / HELR / MNIST.
#include <cstdio>

#include "arch/baselines.h"
#include "arch/config.h"
#include "bench_util.h"
#include "sim/alchemist_sim.h"
#include "sim/baseline_sim.h"
#include "workloads/ckks_workloads.h"

namespace {

using namespace alchemist;

workloads::CkksWl resident(std::size_t level) {
  workloads::CkksWl w = workloads::CkksWl::paper(level);
  w.hbm_stream_fraction = 0.05;
  return w;
}

void print_util(const char* who, const sim::SimResult& r) {
  std::printf("  %-18s NTT=%.2f Bconv=%.2f DecompPM=%.2f | overall=%.2f\n", who,
              r.util_by_class[0], r.util_by_class[1], r.util_by_class[2],
              r.utilization);
}

}  // namespace

int main() {
  const auto cfg = arch::ArchConfig::alchemist();
  bench::print_header("Figure 7(b) - Utilization rates");

  struct Case {
    const char* name;
    metaop::OpGraph graph;
  };
  Case cases[] = {
      {"Bootstrapping(L=44,+)", workloads::build_bootstrapping(resident(44), true)},
      {"HELR-1024 iteration", workloads::build_helr_iteration(resident(30))},
      {"LoLa-MNIST", workloads::build_lola_mnist(false)},
  };

  for (auto& c : cases) {
    std::printf("%s\n", c.name);
    print_util("Alchemist", sim::simulate_alchemist(c.graph, cfg));
    print_util("SHARP (model)", sim::simulate_modular(c.graph, arch::spec_by_name("SHARP")));
    print_util("CraterLake (mdl)",
               sim::simulate_modular(c.graph, arch::spec_by_name("CraterLake")));
  }

  std::printf(
      "\nPaper reference: Alchemist 0.85/0.89/0.87 per class, ~0.86 overall;\n"
      "SHARP 0.70/0.26/0.64 -> 0.55 (boot), 0.52 (HELR); CraterLake 0.42 "
      "(boot), 0.38 (MNIST).\n");
  return 0;
}
