// Robustness sweep: yield and slowdown versus transient fault rate, and
// graceful degradation versus permanently-masked computing units.
//
// Three tables (fixed seed 0xfa117, so every row is exactly reproducible):
//   1. fault-rate sweep under each mitigation policy on the keyswitch
//      workload — slowdown vs the fault-free run, Meta-OP yield (fraction of
//      ops whose output survives uncorrupted), retries charged;
//   2. the same sweep on hoisted bootstrapping (the long workload, where the
//      exponential retry window matters);
//   3. masked-unit sweep: 0..64 of 128 units failed, slot layouts
//      re-partitioned over the survivors — cycles grow monotonically with
//      the mask while the schedule stays valid.
#include <cstdio>

#include "bench_util.h"
#include "fault/fault_model.h"
#include "sim/alchemist_sim.h"
#include "workloads/ckks_workloads.h"

namespace {

using namespace alchemist;

struct Row {
  std::uint64_t cycles = 0;
  double slowdown = 1.0;
  double yield = 1.0;
  std::uint64_t injected = 0;
  std::uint64_t retries = 0;
  std::uint64_t corrupted = 0;
};

Row run(const metaop::OpGraph& graph, double rate, fault::Policy policy,
        std::uint64_t baseline_cycles, bench::ObsArgs* obs = nullptr) {
  arch::ArchConfig cfg = arch::ArchConfig::alchemist();
  fault::FaultConfig fc;
  fc.compute_fault_rate = fc.sram_fault_rate = fc.hbm_fault_rate = rate;
  fc.policy = policy;
  fault::FaultModel model(fc, cfg.num_units);
  const auto r = sim::simulate_alchemist(graph, cfg, nullptr, &model);
  if (obs) obs->add(r);
  Row row;
  row.cycles = r.cycles;
  row.slowdown = baseline_cycles > 0
                     ? static_cast<double>(r.cycles) / static_cast<double>(baseline_cycles)
                     : 1.0;
  row.injected = r.registry.counter(fault::metrics::kInjected);
  row.retries = r.registry.counter(fault::metrics::kRetries);
  row.corrupted = r.registry.counter(fault::metrics::kCorruptedOps);
  const std::uint64_t ops = r.registry.counter(sim::metrics::kOps);
  row.yield = ops > 0 ? 1.0 - static_cast<double>(row.corrupted) / static_cast<double>(ops)
                      : 1.0;
  return row;
}

void rate_sweep(const char* title, const metaop::OpGraph& graph, bench::ObsArgs& obs) {
  bench::print_header(title);
  const auto base = sim::simulate_alchemist(graph, arch::ArchConfig::alchemist());
  std::printf("fault-free baseline: %llu cycles (%zu ops)\n\n",
              static_cast<unsigned long long>(base.cycles), graph.ops.size());
  std::printf("%-12s %-14s %-12s %-10s %-9s %-9s %-9s\n", "policy", "rate",
              "cycles", "slowdown", "yield", "injected", "retries");
  for (fault::Policy policy :
       {fault::Policy::None, fault::Policy::DetectRetry, fault::Policy::Dmr}) {
    for (double rate : {0.0, 1e-10, 1e-9, 1e-8, 1e-7}) {
      const Row row = run(graph, rate, policy, base.cycles, &obs);
      std::printf("%-12s %-14g %-12llu %-10.3f %-9.4f %-9llu %-9llu\n",
                  fault::to_string(policy), rate,
                  static_cast<unsigned long long>(row.cycles), row.slowdown, row.yield,
                  static_cast<unsigned long long>(row.injected),
                  static_cast<unsigned long long>(row.retries));
    }
  }
  bench::print_footnote(
      "`none` keeps the fault-free schedule but loses yield; detect-retry and "
      "dmr buy the yield back with cycles (dmr also halves effective cores)");
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsArgs obs(argc, argv, "fault_sweep");

  workloads::CkksWl w = workloads::CkksWl::paper(44);
  const auto ks = workloads::build_keyswitch(w);
  rate_sweep("Robustness - fault-rate sweep on keyswitch (L=44, seed 0xfa117)", ks, obs);

  workloads::CkksWl wb = workloads::CkksWl::paper(44);
  wb.hbm_stream_fraction = 0.05;
  const auto boot = workloads::build_bootstrapping(wb, true);
  rate_sweep("Robustness - fault-rate sweep on hoisted bootstrapping", boot, obs);

  bench::print_header("Robustness - graceful degradation vs masked units (keyswitch)");
  const auto base = sim::simulate_alchemist(ks, arch::ArchConfig::alchemist());
  std::printf("%-10s %-10s %-12s %-10s %-10s\n", "masked", "healthy", "cycles",
              "slowdown", "padding");
  for (std::size_t masked : {0, 8, 16, 32, 64}) {
    arch::ArchConfig cfg = arch::ArchConfig::alchemist();
    fault::FaultConfig fc;
    fc.masked_units.clear();
    for (std::size_t u = 0; u < masked; ++u) fc.masked_units.push_back(u);
    fault::FaultModel model(fc, cfg.num_units);
    const auto r = sim::simulate_alchemist(ks, cfg, nullptr, &model);
    obs.add(r);
    std::printf("%-10zu %-10zu %-12llu %-10.3f %-10.3f\n", masked,
                model.healthy_units(), static_cast<unsigned long long>(r.cycles),
                static_cast<double>(r.cycles) / static_cast<double>(base.cycles),
                model.slot_padding_factor(1u << 16));
    }
  bench::print_footnote(
      "the slot layout re-stripes N=2^16 over the healthy units; cycles are "
      "monotone in the mask and the schedule stays valid down to 64 survivors");
  return 0;
}
