// Measured software counterpart of the paper's lazy reduction (Tables 2-3):
// eager (reduce every product) vs lazy (accumulate in 128-bit, reduce once)
// for the DecompPolyMult and Bconv accumulation patterns. The paper's #Mults
// ratio predicts the trend; the wall-clock ratio below measures it on this
// machine's Barrett implementation.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "common/primes.h"
#include "common/rng.h"
#include "poly/lazy_kernels.h"
#include "metaop/mult_count.h"

namespace {

using namespace alchemist;

template <typename F>
double time_us(F&& f, int iters) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) f();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(stop - start).count() / iters;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation - lazy reduction, measured (software Barrett, this machine)");

  const u64 q = max_ntt_prime(36, 1024);  // the paper's 36-bit word
  const Modulus mod(q);
  Rng rng(7);

  std::printf("DecompPolyMult pattern (dot product of length dnum, per slot):\n");
  std::printf("%-8s %-12s %-12s %-10s %-18s\n", "dnum", "eager us", "lazy us",
              "speedup", "paper #Mults ratio");
  for (std::size_t dnum : {2, 3, 4, 8}) {
    const std::size_t slots = 4096;
    std::vector<std::vector<u64>> a(slots), b(slots);
    for (auto& v : a) v = rng.uniform_vector(dnum, q);
    for (auto& v : b) v = rng.uniform_vector(dnum, q);
    volatile u64 sink = 0;
    const double t_eager = time_us(
        [&] {
          u64 acc = 0;
          for (std::size_t s = 0; s < slots; ++s) acc ^= dot_mod_eager(a[s], b[s], mod);
          sink = acc;
        },
        20);
    const double t_lazy = time_us(
        [&] {
          u64 acc = 0;
          for (std::size_t s = 0; s < slots; ++s) acc ^= dot_mod_lazy(a[s], b[s], mod);
          sink = acc;
        },
        20);
    const auto counts = metaop::decomp_mults(1, dnum, 1);
    std::printf("%-8zu %-12.1f %-12.1f %-10.2f %.2fx\n", dnum, t_eager, t_lazy,
                t_eager / t_lazy,
                static_cast<double>(counts.origin) / counts.meta);
    (void)sink;
  }

  std::printf("\nBconv pattern (L channels combined into one output channel):\n");
  std::printf("%-8s %-12s %-12s %-10s %-18s\n", "L", "eager us", "lazy us",
              "speedup", "paper #Mults ratio");
  for (std::size_t l : {4, 11, 22, 44}) {
    const std::size_t n = 4096;
    std::vector<std::vector<u64>> x(l);
    for (auto& ch : x) ch = rng.uniform_vector(n, q);
    std::vector<u64> w = rng.uniform_vector(l, q);
    std::vector<u64> out(n);
    const double t_eager = time_us(
        [&] {
          weighted_sum_eager(std::span<const std::vector<u64>>(x),
                             std::span<const u64>(w), mod, out);
        },
        20);
    const double t_lazy = time_us(
        [&] {
          weighted_sum_lazy(std::span<const std::vector<u64>>(x),
                            std::span<const u64>(w), mod, out);
        },
        20);
    const auto counts = metaop::bconv_mults(1, l, 1);
    std::printf("%-8zu %-12.1f %-12.1f %-10.2f %.2fx\n", l, t_eager, t_lazy,
                t_eager / t_lazy,
                static_cast<double>(counts.origin) / counts.meta);
  }

  bench::print_footnote(
      "the production BConv (src/poly/rns.cpp) runs the lazy path; the "
      "exactness tests pin it bit-for-bit against Eq. (1)");
  return 0;
}
