// Microbenchmarks of the software TFHE library: external product, blind
// rotation and the full programmable bootstrap at the real parameter set I.
#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.h"
#include "tfhe/bootstrap.h"

namespace {

using namespace alchemist;
using namespace alchemist::tfhe;

struct Env {
  TfheParams params;
  LweKey lwe_key;
  TrlweKey trlwe_key;
  BootstrapContext ctx;
  LweSample bit_ct;
  TrlweSample acc;
  TgswNtt tgsw_one;
  TorusPoly tv;

  explicit Env(const TfheParams& p) : params(p) {
    Rng rng(11);
    lwe_key = lwe_keygen(params.n_lwe, rng);
    trlwe_key = trlwe_keygen(params, rng);
    ctx = make_bootstrap_context(params, lwe_key, trlwe_key, rng);
    bit_ct = encrypt_bit(true, lwe_key, params.lwe_sigma, rng);
    TorusPoly msg(params.degree);
    msg[0] = torus_from_message(1, 8);
    acc = trlwe_encrypt(params, trlwe_key, msg, rng);
    tgsw_one = tgsw_encrypt(params, trlwe_key, 1, rng);
    tv = make_constant_test_poly(params.degree, u64{1} << 61);
  }
};

Env& env() {
  static Env instance{TfheParams::set_i()};
  return instance;
}

void BM_TfheExternalProduct(benchmark::State& state) {
  Env& e = env();
  for (auto _ : state) {
    benchmark::DoNotOptimize(external_product(e.tgsw_one, e.acc));
  }
}
BENCHMARK(BM_TfheExternalProduct);

void BM_TfheCmux(benchmark::State& state) {
  Env& e = env();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cmux(e.tgsw_one, e.acc, e.acc));
  }
}
BENCHMARK(BM_TfheCmux);

void BM_TfheKeyswitch(benchmark::State& state) {
  Env& e = env();
  const LweSample extracted = sample_extract(e.acc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(keyswitch(extracted, e.ctx.ksk));
  }
}
BENCHMARK(BM_TfheKeyswitch);

void BM_TfhePbs(benchmark::State& state) {
  Env& e = env();
  for (auto _ : state) {
    benchmark::DoNotOptimize(programmable_bootstrap(e.bit_ct, e.tv, e.ctx));
  }
}
BENCHMARK(BM_TfhePbs)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_TfheGateNand(benchmark::State& state) {
  Env& e = env();
  for (auto _ : state) {
    benchmark::DoNotOptimize(gate_nand(e.bit_ct, e.bit_ct, e.ctx));
  }
}
BENCHMARK(BM_TfheGateNand)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

BENCHMARK_MAIN();
