// Microbenchmarks of the NTT substrate: single-step vs 4-step, and the RNS
// base conversion — the software counterparts of the accelerator's three
// operator classes.
#include <benchmark/benchmark.h>

#include "common/primes.h"
#include "common/rng.h"
#include "poly/four_step_ntt.h"
#include "poly/ntt.h"
#include "poly/rns.h"

namespace {

using namespace alchemist;

void BM_NttForward(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const u64 q = max_ntt_prime(50, n);
  const NttTable& table = get_ntt_table(q, n);
  Rng rng(n);
  std::vector<u64> a = rng.uniform_vector(n, q);
  for (auto _ : state) {
    table.forward(a);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_NttForward)->Arg(1024)->Arg(4096)->Arg(16384)->Arg(65536);

void BM_NttInverse(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const u64 q = max_ntt_prime(50, n);
  const NttTable& table = get_ntt_table(q, n);
  Rng rng(n);
  std::vector<u64> a = rng.uniform_vector(n, q);
  for (auto _ : state) {
    table.inverse(a);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_NttInverse)->Arg(4096)->Arg(65536);

void BM_FourStepForward(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const u64 q = max_ntt_prime(50, n);
  FourStepNtt ntt(q, n);
  Rng rng(n);
  std::vector<u64> a = rng.uniform_vector(n, q);
  for (auto _ : state) {
    ntt.forward(a);
    benchmark::DoNotOptimize(a.data());
  }
}
BENCHMARK(BM_FourStepForward)->Arg(1024)->Arg(4096);

void BM_BconvApply(benchmark::State& state) {
  const std::size_t n = 4096;
  const std::size_t l = static_cast<std::size_t>(state.range(0));
  const auto source = generate_ntt_primes(40, n, l);
  const auto target = generate_ntt_primes(41, n, 2);
  BConv conv(source, target);
  RnsPoly x(n, source);
  Rng rng(l);
  for (std::size_t c = 0; c < l; ++c) {
    auto ch = x.channel(c);
    for (auto& v : ch) v = rng.uniform(source[c]);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.apply(x));
  }
}
BENCHMARK(BM_BconvApply)->Arg(2)->Arg(4)->Arg(11);

}  // namespace

BENCHMARK_MAIN();
