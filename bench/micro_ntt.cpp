// Microbenchmarks of the NTT substrate: single-step vs 4-step, the RNS base
// conversion, and the parallel lazy-reduction substrate — eager vs Harvey
// lazy butterflies, and 1..N-thread scaling of the pooled multi-limb paths.
//
// Modes:
//   (default)                google-benchmark wall-clock suite; per-ISA
//                            NTT variants are registered for every SIMD
//                            level this host supports
//   --threads N              set the substrate pool width first (any mode)
//   --isa NAME               force the SIMD dispatch (scalar|avx2|avx512|
//                            native); exits 2 if unknown or unsupported
//   --metrics-out FILE       skip the benchmark loops; run a fixed, seeded
//                            workload per supported ISA and emit
//                            alchemist.metrics.v1. The substrate.* chunk/
//                            fan-out/dispatch counters are exact for a given
//                            --threads value, so CI gates them with
//                            tools/check_bench_baseline.py; wall-clock rows
//                            are named *wall_ns and excluded via --ignore,
//                            and the avx2/avx512 runs are host-dependent so
//                            the gate treats them as --optional.
//   --smoke                  1-vs-2-thread + lazy-vs-eager + per-ISA
//                            bit-identity assertions; exit non-zero on
//                            mismatch.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/primes.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/thread_pool.h"
#include "obs/report.h"
#include "obs/substrate_metrics.h"
#include "poly/four_step_ntt.h"
#include "poly/ntt.h"
#include "poly/rns.h"

namespace {

using namespace alchemist;

void BM_NttForward(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const u64 q = max_ntt_prime(50, n);
  const NttTable& table = get_ntt_table(q, n);
  Rng rng(n);
  std::vector<u64> a = rng.uniform_vector(n, q);
  for (auto _ : state) {
    table.forward(a);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_NttForward)->Arg(1024)->Arg(4096)->Arg(16384)->Arg(65536);

// Eager reference butterflies (canonical [0, q) at every stage) on the same
// inputs as BM_NttForward — the ratio is the lazy-reduction win.
void BM_NttForwardEager(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const u64 q = max_ntt_prime(50, n);
  const NttTable& table = get_ntt_table(q, n);
  Rng rng(n);
  std::vector<u64> a = rng.uniform_vector(n, q);
  for (auto _ : state) {
    table.forward_eager(a);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_NttForwardEager)->Arg(1024)->Arg(4096)->Arg(16384)->Arg(65536);

void BM_NttInverse(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const u64 q = max_ntt_prime(50, n);
  const NttTable& table = get_ntt_table(q, n);
  Rng rng(n);
  std::vector<u64> a = rng.uniform_vector(n, q);
  for (auto _ : state) {
    table.inverse(a);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_NttInverse)->Arg(4096)->Arg(65536);

void BM_NttInverseEager(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const u64 q = max_ntt_prime(50, n);
  const NttTable& table = get_ntt_table(q, n);
  Rng rng(n);
  std::vector<u64> a = rng.uniform_vector(n, q);
  for (auto _ : state) {
    table.inverse_eager(a);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_NttInverseEager)->Arg(4096)->Arg(65536);

// Forced-ISA forward/inverse at the paper's workhorse size. Registered from
// main() for each variant this host supports, so one run prints the
// scalar-lazy vs AVX2 vs AVX-512 column of the Performance table (compare
// against BM_NttForwardEager for the eager baseline).
void BM_NttForwardIsa(benchmark::State& state, simd::Isa isa) {
  const std::size_t n = 16384;
  const u64 q = max_ntt_prime(50, n);
  const NttTable& table = get_ntt_table(q, n);
  Rng rng(n);
  std::vector<u64> a = rng.uniform_vector(n, q);
  for (auto _ : state) {
    table.forward(a, isa);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}

void BM_NttInverseIsa(benchmark::State& state, simd::Isa isa) {
  const std::size_t n = 16384;
  const u64 q = max_ntt_prime(50, n);
  const NttTable& table = get_ntt_table(q, n);
  Rng rng(n);
  std::vector<u64> a = rng.uniform_vector(n, q);
  for (auto _ : state) {
    table.inverse(a, isa);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}

void register_isa_benchmarks() {
  for (simd::Isa isa : {simd::Isa::Scalar, simd::Isa::Avx2, simd::Isa::Avx512}) {
    if (!simd::isa_supported(isa)) continue;
    const std::string suffix = std::string("/isa:") + simd::isa_name(isa);
    benchmark::RegisterBenchmark(("BM_NttForwardIsa" + suffix).c_str(),
                                 BM_NttForwardIsa, isa);
    benchmark::RegisterBenchmark(("BM_NttInverseIsa" + suffix).c_str(),
                                 BM_NttInverseIsa, isa);
  }
}

void BM_FourStepForward(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const u64 q = max_ntt_prime(50, n);
  FourStepNtt ntt(q, n);
  Rng rng(n);
  std::vector<u64> a = rng.uniform_vector(n, q);
  for (auto _ : state) {
    ntt.forward(a);
    benchmark::DoNotOptimize(a.data());
  }
}
BENCHMARK(BM_FourStepForward)->Arg(1024)->Arg(4096);

void BM_BconvApply(benchmark::State& state) {
  const std::size_t n = 4096;
  const std::size_t l = static_cast<std::size_t>(state.range(0));
  const auto source = generate_ntt_primes(40, n, l);
  const auto target = generate_ntt_primes(41, n, 2);
  BConv conv(source, target);
  RnsPoly x(n, source);
  Rng rng(l);
  for (std::size_t c = 0; c < l; ++c) {
    auto ch = x.channel(c);
    for (auto& v : ch) v = rng.uniform(source[c]);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.apply(x));
  }
}
BENCHMARK(BM_BconvApply)->Arg(2)->Arg(4)->Arg(11);

RnsPoly seeded_poly(std::size_t n, const std::vector<u64>& moduli, u64 seed) {
  RnsPoly p(n, moduli);
  Rng rng(seed);
  for (std::size_t c = 0; c < p.num_channels(); ++c) {
    auto ch = p.channel(c);
    for (auto& v : ch) v = rng.uniform(moduli[c]);
  }
  return p;
}

// Thread-scaling view of the paper's dominant kernel: a full multi-limb
// forward NTT (8 limbs fan out across RNS channels on the pool). Arg is the
// pool width; compare rows to read off scaling.
void BM_RnsForwardNttThreads(benchmark::State& state) {
  ThreadPool::set_threads(static_cast<std::size_t>(state.range(0)));
  const std::size_t n = 1 << 14;
  const auto moduli = generate_ntt_primes(50, n, 8);
  RnsPoly x = seeded_poly(n, moduli, 42);
  for (auto _ : state) {
    x.to_ntt();
    benchmark::DoNotOptimize(x.channel(0).data());
    state.PauseTiming();
    x.to_coeff();
    state.ResumeTiming();
  }
  ThreadPool::set_threads(1);
}
BENCHMARK(BM_RnsForwardNttThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// ---------------------------------------------------------------------------
// Deterministic harness for --metrics-out / --smoke.

constexpr std::size_t kMetricsN = 1 << 14;
constexpr std::size_t kMetricsLimbs = 8;
constexpr std::size_t kMetricsReps = 4;

// Fixed seeded workload: kMetricsReps forward+inverse multi-limb NTTs plus
// one BConv. Returns the result poly (for equivalence checks) and fills
// `reg` with the substrate counter deltas plus wall-clock rows.
RnsPoly run_fixed_workload(obs::Registry* reg) {
  const auto moduli = generate_ntt_primes(50, kMetricsN, kMetricsLimbs);
  const auto special = generate_ntt_primes(51, kMetricsN, 2);
  RnsPoly x = seeded_poly(kMetricsN, moduli, 7);
  const BConv conv(moduli, special);

  std::uint64_t dispatch_before[simd::kNumKerns][simd::kNumIsas];
  for (std::size_t k = 0; k < simd::kNumKerns; ++k) {
    for (std::size_t i = 0; i < simd::kNumIsas; ++i) {
      dispatch_before[k][i] = simd::dispatch_count(static_cast<simd::Kern>(k),
                                                   static_cast<simd::Isa>(i));
    }
  }
  const SubstrateStats before = ThreadPool::instance().stats();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t rep = 0; rep < kMetricsReps; ++rep) {
    x.to_ntt();
    x.to_coeff();
  }
  RnsPoly converted = conv.apply(x);
  const auto t1 = std::chrono::steady_clock::now();
  const SubstrateStats after = ThreadPool::instance().stats();

  if (reg != nullptr) {
    // Deterministic for a fixed pool width: chunk counts depend only on
    // (n, grain, width).
    reg->add("micro_ntt.n", kMetricsN);
    reg->add("micro_ntt.limbs", kMetricsLimbs);
    reg->add("micro_ntt.reps", kMetricsReps);
    reg->add("substrate.threads", after.threads);
    reg->add("substrate.parallel_for", after.parallel_fors - before.parallel_fors);
    reg->add("substrate.inline_runs", after.inline_runs - before.inline_runs);
    reg->add("substrate.tasks", after.tasks - before.tasks);
    // Per-(kernel, isa) dispatch deltas: exact for a fixed workload and
    // forced ISA (reps x limbs transforms + the BConv weighted sums).
    for (std::size_t k = 0; k < simd::kNumKerns; ++k) {
      for (std::size_t i = 0; i < simd::kNumIsas; ++i) {
        const auto kern = static_cast<simd::Kern>(k);
        const auto isa = static_cast<simd::Isa>(i);
        const std::uint64_t delta =
            simd::dispatch_count(kern, isa) - dispatch_before[k][i];
        if (delta == 0) continue;
        reg->add("substrate.isa_dispatch", delta,
                 {{"kernel", simd::kern_name(kern)}, {"isa", simd::isa_name(isa)}});
      }
    }
    // Wall-clock rows: machine-dependent, gated out with --ignore wall_ns.
    reg->add("micro_ntt.wall_ns",
             static_cast<std::uint64_t>(
                 std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()));
    // stats() reports only kernels with nonzero totals; diff by name.
    for (const auto& [kernel, ns] : after.kernel_ns) {
      std::uint64_t prior = 0;
      for (const auto& [bk, bns] : before.kernel_ns) {
        if (bk == kernel) prior = bns;
      }
      if (ns != prior) {
        reg->add("substrate.kernel_wall_ns", ns - prior, {{"kernel", kernel}});
      }
    }
  }
  x.append_channels(converted);
  return x;
}

int run_metrics_mode(const std::string& path, std::size_t threads) {
  ThreadPool::set_threads(threads);
  obs::MetricsReport report("micro_ntt");
  // Warm the NTT table cache (twiddle tables + Shoup quotients for all ten
  // moduli) outside the measured runs: the first ISA in the loop below would
  // otherwise absorb the one-time construction cost in its wall-clock rows,
  // skewing the per-ISA comparison.
  run_fixed_workload(nullptr);
  // One run per SIMD level: the forced-scalar run keeps its historical name
  // (its counters are host-independent); avx2/avx512 runs exist only where
  // CPUID allows them, so the baseline gate lists them under --optional.
  for (simd::Isa isa : {simd::Isa::Scalar, simd::Isa::Avx2, simd::Isa::Avx512}) {
    if (!simd::isa_supported(isa)) continue;
    simd::set_isa(isa);
    obs::Registry reg;
    run_fixed_workload(&reg);
    std::string run = "ntt_substrate_t" + std::to_string(threads);
    if (isa != simd::Isa::Scalar) run += std::string("_") + simd::isa_name(isa);
    report.add(run, "host", std::move(reg));
  }
  simd::set_isa(simd::best_supported_isa());
  if (!report.write_file(path)) {
    std::fprintf(stderr, "FAILED to write metrics to %s\n", path.c_str());
    return 1;
  }
  std::fprintf(stderr, "metrics written to %s (threads=%zu, isa<=%s)\n", path.c_str(),
               threads, simd::isa_name(simd::best_supported_isa()));
  return 0;
}

int run_smoke_mode() {
  // Lazy butterflies (runtime-dispatched SIMD) vs the eager reference.
  const u64 q = max_ntt_prime(50, 4096);
  const NttTable& table = get_ntt_table(q, 4096);
  Rng rng(11);
  std::vector<u64> lazy = rng.uniform_vector(4096, q);
  std::vector<u64> eager = lazy;
  table.forward(lazy);
  table.forward_eager(eager);
  if (lazy != eager) {
    std::fprintf(stderr, "SMOKE FAIL: lazy forward NTT != eager reference\n");
    return 1;
  }
  table.inverse(lazy);
  table.inverse_eager(eager);
  if (lazy != eager) {
    std::fprintf(stderr, "SMOKE FAIL: lazy inverse NTT != eager reference\n");
    return 1;
  }
  // Every compiled+supported SIMD variant, forced, vs the eager reference.
  for (simd::Isa isa : {simd::Isa::Scalar, simd::Isa::Avx2, simd::Isa::Avx512}) {
    if (!simd::isa_supported(isa)) continue;
    std::vector<u64> forced = rng.uniform_vector(4096, q);
    std::vector<u64> ref = forced;
    table.forward(forced, isa);
    table.forward_eager(ref);
    if (forced != ref) {
      std::fprintf(stderr, "SMOKE FAIL: %s forward NTT != eager reference\n",
                   simd::isa_name(isa));
      return 1;
    }
    table.inverse(forced, isa);
    table.inverse_eager(ref);
    if (forced != ref) {
      std::fprintf(stderr, "SMOKE FAIL: %s inverse NTT != eager reference\n",
                   simd::isa_name(isa));
      return 1;
    }
  }
  // Pooled path vs sequential, bit for bit.
  ThreadPool::set_threads(1);
  const RnsPoly seq = run_fixed_workload(nullptr);
  ThreadPool::set_threads(2);
  const RnsPoly par = run_fixed_workload(nullptr);
  if (!(seq == par)) {
    std::fprintf(stderr, "SMOKE FAIL: 2-thread result != sequential result\n");
    return 1;
  }
  std::fprintf(stderr,
               "SMOKE OK: lazy==eager, per-ISA==eager (<=%s), 2-thread==sequential "
               "(bit-identical)\n",
               simd::isa_name(simd::best_supported_isa()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_path;
  bool smoke = false;
  std::size_t threads = 0;
  // Strip substrate flags before google-benchmark sees argv.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--isa" && i + 1 < argc) {
      const char* value = argv[++i];
      try {
        alchemist::simd::set_isa(alchemist::simd::parse_isa(value));
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "invalid --isa value '%s': %s\n", value, e.what());
        return 2;
      }
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;

  if (threads > 0) alchemist::ThreadPool::set_threads(threads);
  if (smoke) return run_smoke_mode();
  if (!metrics_path.empty()) {
    // Default to 2 threads so the committed baseline's chunk counters are
    // reproducible on any machine.
    return run_metrics_mode(metrics_path, threads > 0 ? threads : 2);
  }

  register_isa_benchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
