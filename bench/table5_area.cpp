// Reproduces Table 5: area breakdown of Alchemist (14nm, published component
// densities) and the average-power figure.
#include <cstdio>

#include "arch/area_model.h"
#include "bench_util.h"

int main() {
  using namespace alchemist;
  const auto cfg = arch::ArchConfig::alchemist();
  const auto a = arch::area_model(cfg);

  bench::print_header("Table 5 - Area breakdown of Alchemist (mm^2, 14nm)");
  std::printf("%-48s %-12s %-10s\n", "Component", "model", "paper");
  std::printf("%-48s %-12.3f %-10s\n", "1x Core", a.core_mm2, "0.043");
  std::printf("%-48s %-12.3f %-10s\n", "1x Core Cluster (16x CORE)",
              a.core_cluster_mm2, "0.688");
  std::printf("%-48s %-12.3f %-10s\n", "1x Local SRAM (512 KB)", a.local_sram_mm2,
              "0.427");
  std::printf("%-48s %-12.3f %-10s\n", "1x Computing Unit", a.computing_unit_mm2,
              "1.118");
  std::printf("%-48s %-12.3f %-10s\n", "128x Computing Unit", a.all_units_mm2,
              "143.104");
  std::printf("%-48s %-12.3f %-10s\n", "Register file for transpose",
              a.transpose_rf_mm2, "6.380");
  std::printf("%-48s %-12.3f %-10s\n", "Shared memory (2 MB)", a.shared_mem_mm2,
              "1.801");
  std::printf("%-48s %-12.3f %-10s\n", "Memory interface (2x HBM2 PHY)",
              a.hbm_phy_mm2, "29.801");
  std::printf("%-48s %-12.3f %-10s\n", "Total", a.total_mm2, "181.086");
  std::printf("%-48s %-12.2f %-10s\n", "Average power (W)",
              arch::average_power_watts(cfg), "77.9");

  bench::print_footnote("1 GHz, 36-bit word, 64+2 MB on-chip SRAM, 1 TB/s HBM2");
  return 0;
}
