// Microbenchmarks of the advanced FHE machinery: polynomial evaluation,
// linear transforms, functional bootstrapping, BFV multiplication and the
// cross-scheme bridge.
#include <benchmark/benchmark.h>

#include <memory>

#include "bfv/bfv.h"
#include "bridge/scheme_switch.h"
#include "ckks/bootstrap.h"
#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/keygen.h"
#include "ckks/linear_transform.h"
#include "ckks/poly_eval.h"
#include "common/rng.h"
#include "tfhe/integer.h"

namespace {

using namespace alchemist;
using namespace alchemist::ckks;

struct DeepEnv {
  ContextPtr ctx;
  std::unique_ptr<CkksEncoder> encoder;
  std::unique_ptr<KeyGenerator> keygen;
  std::unique_ptr<Encryptor> encryptor;
  std::unique_ptr<Evaluator> evaluator;
  RelinKeys rk;
  GaloisKeys gk;
  std::unique_ptr<PolyEvaluator> poly;
  std::unique_ptr<LinearTransform> lt;
  Ciphertext ct;

  DeepEnv() {
    ctx = std::make_shared<CkksContext>(CkksParams::toy(1024, 10, 2));
    encoder = std::make_unique<CkksEncoder>(ctx);
    keygen = std::make_unique<KeyGenerator>(ctx, 13);
    encryptor = std::make_unique<Encryptor>(ctx, keygen->make_public_key());
    evaluator = std::make_unique<Evaluator>(ctx);
    rk = keygen->make_relin_keys();
    poly = std::make_unique<PolyEvaluator>(ctx, *encoder, *evaluator, rk);

    Rng rng(1);
    const std::size_t slots = ctx->params().slots();
    LinearTransform::Matrix m(slots, std::vector<std::complex<double>>(slots, {0, 0}));
    for (std::size_t k = 0; k < slots; ++k) {
      m[k][k] = 1.0;
      m[k][(k + 1) % slots] = 0.5;
      m[k][(k + 3) % slots] = -0.25;
    }
    lt = std::make_unique<LinearTransform>(ctx, m);
    gk = keygen->make_galois_keys(lt->required_rotations(true));

    std::vector<double> z(slots);
    for (double& v : z) v = rng.uniform_real() - 0.5;
    ct = encryptor->encrypt(
        encoder->encode(std::span<const double>(z), 10, ctx->params().scale()));
  }
};

DeepEnv& env() {
  static DeepEnv e;
  return e;
}

void BM_PolyEvalDegree7(benchmark::State& state) {
  DeepEnv& e = env();
  const std::vector<double> coeffs = {0.5, 0.25, 0.1, -0.05, 0.02, 0.01, -0.005, 0.001};
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.poly->evaluate(e.ct, std::span<const double>(coeffs)));
  }
}
BENCHMARK(BM_PolyEvalDegree7)->Unit(benchmark::kMillisecond);

void BM_PolyEvalChebyshev31(benchmark::State& state) {
  DeepEnv& e = env();
  const auto cheb = chebyshev_fit([](double t) { return std::sin(t); }, -4, 4, 31);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        e.poly->evaluate_chebyshev_stable(e.ct, std::span<const double>(cheb), -4, 4));
  }
}
BENCHMARK(BM_PolyEvalChebyshev31)->Unit(benchmark::kMillisecond);

void BM_LinearTransformBsgs(benchmark::State& state) {
  DeepEnv& e = env();
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.lt->apply(*e.evaluator, *e.encoder, e.ct, e.gk,
                                         e.ctx->params().scale()));
  }
}
BENCHMARK(BM_LinearTransformBsgs)->Unit(benchmark::kMillisecond);

void BM_CkksBootstrap(benchmark::State& state) {
  // Separate, smaller context: bootstrapping-grade parameters.
  static auto setup = [] {
    struct Boot {
      ContextPtr ctx;
      std::unique_ptr<CkksEncoder> encoder;
      std::unique_ptr<KeyGenerator> keygen;
      std::unique_ptr<Encryptor> encryptor;
      std::unique_ptr<Evaluator> evaluator;
      RelinKeys rk;
      GaloisKeys gk;
      std::unique_ptr<Bootstrapper> boot;
      Ciphertext low;
    };
    auto b = std::make_unique<Boot>();
    CkksParams params = CkksParams::toy(128, 20, 4);
    params.prime_bits = 45;
    params.log_scale = 45;
    params.secret_hamming_weight = 32;
    b->ctx = std::make_shared<CkksContext>(params);
    b->encoder = std::make_unique<CkksEncoder>(b->ctx);
    b->keygen = std::make_unique<KeyGenerator>(b->ctx, 31);
    b->encryptor = std::make_unique<Encryptor>(b->ctx, b->keygen->make_public_key());
    b->evaluator = std::make_unique<Evaluator>(b->ctx);
    b->rk = b->keygen->make_relin_keys();
    b->gk = b->keygen->make_galois_keys(Bootstrapper::required_rotations(*b->ctx), true);
    BootstrapConfig config;
    config.i_bound = 9.0;
    config.sine_degree = 140;
    b->boot = std::make_unique<Bootstrapper>(b->ctx, *b->encoder, *b->evaluator,
                                             b->rk, b->gk, config);
    std::vector<double> z = {0.5, -0.25};
    const Ciphertext fresh = b->encryptor->encrypt(
        b->encoder->encode(std::span<const double>(z), 20, params.scale()));
    b->low = b->evaluator->mod_drop(fresh, 1);
    return b;
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(setup->boot->bootstrap(setup->low));
  }
}
BENCHMARK(BM_CkksBootstrap)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_BfvMultiply(benchmark::State& state) {
  using namespace alchemist::bfv;
  static auto ctx = std::make_shared<BfvContext>(BfvParams::toy(1024));
  static BfvEncoder encoder(ctx);
  static BfvKeyGenerator keygen(ctx, 7);
  static BfvEncryptor encryptor(ctx, keygen.make_public_key());
  static BfvEvaluator evaluator(ctx);
  static const BfvRelinKey rk = keygen.make_relin_key();
  static Rng rng(3);
  static const BfvCiphertext ca =
      encryptor.encrypt(encoder.encode(rng.uniform_vector(1024, ctx->t())));
  static const BfvCiphertext cb =
      encryptor.encrypt(encoder.encode(rng.uniform_vector(1024, ctx->t())));
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.multiply(ca, cb, rk));
  }
}
BENCHMARK(BM_BfvMultiply)->Unit(benchmark::kMillisecond);

void BM_BridgeSwitchToTfhe(benchmark::State& state) {
  static auto setup = [] {
    struct Br {
      ckks::ContextPtr ctx;
      std::unique_ptr<CkksEncoder> encoder;
      std::unique_ptr<KeyGenerator> keygen;
      std::unique_ptr<Encryptor> encryptor;
      std::unique_ptr<Evaluator> evaluator;
      tfhe::KeySwitchKey key;
      Ciphertext low;
    };
    auto b = std::make_unique<Br>();
    CkksParams p = CkksParams::toy(1024, 3, 1);
    p.first_prime_bits = 48;
    p.log_scale = 45;
    p.prime_bits = 45;
    b->ctx = std::make_shared<CkksContext>(p);
    b->encoder = std::make_unique<CkksEncoder>(b->ctx);
    b->keygen = std::make_unique<KeyGenerator>(b->ctx, 12);
    b->encryptor = std::make_unique<Encryptor>(b->ctx, b->keygen->make_public_key());
    b->evaluator = std::make_unique<Evaluator>(b->ctx);
    Rng rng(4);
    const tfhe::TfheParams tparams = tfhe::TfheParams::toy();
    const tfhe::LweKey tkey = tfhe::lwe_keygen(tparams.n_lwe, rng);
    b->key = bridge::make_bridge_key(*b->ctx, b->keygen->secret_key(), tkey, tparams, rng);
    const Ciphertext fresh = b->encryptor->encrypt(
        b->encoder->encode_constant(0.5, 3, p.scale()));
    b->low = b->evaluator->mod_drop(fresh, 1);
    return b;
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bridge::switch_to_tfhe(*setup->ctx, setup->low, 0, setup->key));
  }
}
BENCHMARK(BM_BridgeSwitchToTfhe);

void BM_EncIntAdd8(benchmark::State& state) {
  using namespace alchemist::tfhe;
  static Rng rng(5);
  static const TfheParams params = TfheParams::toy();
  static const LweKey key = lwe_keygen(params.n_lwe, rng);
  static const TrlweKey tkey = trlwe_keygen(params, rng);
  static const BootstrapContext ctx = make_bootstrap_context(params, key, tkey, rng);
  static const EncInt a = encrypt_int(123, 8, key, params.lwe_sigma, rng);
  static const EncInt b = encrypt_int(45, 8, key, params.lwe_sigma, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(add(a, b, ctx));
  }
}
BENCHMARK(BM_EncIntAdd8)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
