// Reproduces Figure 6(a): CKKS application performance — LoLa-MNIST
// (encrypted & unencrypted weights), fully-packed bootstrapping and
// 1024-batch HELR — Alchemist vs modeled SHARP/CraterLake and the paper's
// published reference points (F1, BTS, ARK, CraterLake+, SHARP).
//
// Observability: `--trace-out boot.json` records the bootstrapping run as a
// Chrome trace (open at https://ui.perfetto.dev); `--metrics-out m.json`
// dumps every run's counter registry (schema alchemist.metrics.v1).
#include <cstdio>

#include "arch/area_model.h"
#include "arch/energy_model.h"
#include "arch/baselines.h"
#include "arch/config.h"
#include "bench_util.h"
#include "sim/alchemist_sim.h"
#include "sim/baseline_sim.h"
#include "workloads/ckks_workloads.h"

namespace {

using namespace alchemist;

workloads::CkksWl resident(std::size_t level) {
  workloads::CkksWl w = workloads::CkksWl::paper(level);
  w.hbm_stream_fraction = 0.05;  // application steady state
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsArgs obs(argc, argv, "fig6a_ckks_apps");
  auto cfg = arch::ArchConfig::alchemist();
  cfg.telemetry = obs.trace_requested();
  bench::print_header("Figure 6(a) - CKKS applications");

  // --- Shallow: LoLa-MNIST ---
  {
    const auto plain = workloads::build_lola_mnist(false);
    const auto enc = workloads::build_lola_mnist(true);
    const auto r_plain = sim::simulate_alchemist(plain, cfg);
    const auto r_enc = sim::simulate_alchemist(enc, cfg);
    std::printf("LoLa-MNIST (unencrypted weights): %8.3f ms   (paper: >3x vs F1's 0.247 ms)\n",
                r_plain.time_us / 1e3);
    std::printf("LoLa-MNIST (encrypted weights):   %8.3f ms   (paper: 0.11 ms)\n",
                r_enc.time_us / 1e3);
    obs.add(r_plain);
    obs.add(r_enc);
  }

  // --- Deep: bootstrapping and HELR-1024 ---
  const auto boot = workloads::build_bootstrapping(resident(44), true);
  const auto helr = workloads::build_helr_iteration(resident(30));
  // The bootstrapping run is the one recorded as a Perfetto timeline.
  const auto r_boot = sim::simulate_alchemist(boot, cfg, &obs.timeline());
  const auto r_helr = sim::simulate_alchemist(helr, cfg);
  obs.add(r_boot);
  obs.add(r_helr);
  const auto s_boot = sim::simulate_modular(boot, arch::spec_by_name("SHARP"));
  const auto s_helr = sim::simulate_modular(helr, arch::spec_by_name("SHARP"));
  const auto c_boot = sim::simulate_modular(boot, arch::spec_by_name("CraterLake"));
  const auto c_helr = sim::simulate_modular(helr, arch::spec_by_name("CraterLake"));
  for (const auto* r : {&s_boot, &s_helr, &c_boot, &c_helr}) obs.add(*r);

  const auto e_boot = arch::energy_model(cfg, r_boot);
  const auto e_helr = arch::energy_model(cfg, r_helr);
  std::printf("\nEnergy (Alchemist model): bootstrap %.2f mJ (%.1f W avg), "
              "HELR iter %.3f mJ\n",
              e_boot.total_joules * 1e3, e_boot.average_watts,
              e_helr.total_joules * 1e3);
  std::printf("\n%-26s %-12s %-12s %-12s\n", "Workload", "Alchemist", "SHARP(model)",
              "CLake(model)");
  std::printf("%-26s %-9.3f ms %-9.3f ms %-9.3f ms\n", "Bootstrapping (L=44,+)",
              r_boot.time_us / 1e3, s_boot.time_us / 1e3, c_boot.time_us / 1e3);
  std::printf("%-26s %-9.3f ms %-9.3f ms %-9.3f ms\n", "HELR-1024 (per iter)",
              r_helr.time_us / 1e3, s_helr.time_us / 1e3, c_helr.time_us / 1e3);

  const double sp_sharp = 0.5 * (s_boot.time_us / r_boot.time_us +
                                 s_helr.time_us / r_helr.time_us);
  const double sp_clake = 0.5 * (c_boot.time_us / r_boot.time_us +
                                 c_helr.time_us / r_helr.time_us);
  std::printf("\nAverage speedup vs SHARP model:      %.2fx  (paper: 2.0x)\n", sp_sharp);
  std::printf("Average speedup vs CraterLake model: %.2fx  (paper: 3.7x)\n", sp_clake);
  std::printf("Paper reference speedups: 18.4x vs BTS, 6.1x vs ARK\n");

  // Performance per area (14nm-scaled).
  const double alch_area = arch::area_model(cfg).total_mm2;
  const double ppa_sharp = sp_sharp * arch::spec_by_name("SHARP").area_14nm_mm2 / alch_area;
  const double ppa_clake = sp_clake * arch::spec_by_name("CraterLake").area_14nm_mm2 / alch_area;
  std::printf("\nPerf/area vs SHARP model:      %.2fx  (paper: 3.79x)\n", ppa_sharp);
  std::printf("Perf/area vs CraterLake model: %.2fx  (paper: 9.4x)\n", ppa_clake);
  std::printf("Paper reference perf/area: 76.1x vs BTS, 28.4x vs ARK (avg 29.4x)\n");

  bench::print_footnote(
      "BTS/ARK are published reference points (no public FU-level spec to model)");
  return 0;
}
