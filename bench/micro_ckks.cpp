// Microbenchmarks of the software CKKS library — the measured single-thread
// CPU costs behind Table 7's CPU column (at reduced, test-scale parameters).
#include <benchmark/benchmark.h>

#include <memory>

#include "ckks/encoder.h"
#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/keygen.h"
#include "common/rng.h"

namespace {

using namespace alchemist;
using namespace alchemist::ckks;

struct Env {
  ContextPtr ctx;
  std::unique_ptr<CkksEncoder> encoder;
  std::unique_ptr<KeyGenerator> keygen;
  std::unique_ptr<Encryptor> encryptor;
  std::unique_ptr<Evaluator> evaluator;
  RelinKeys rk;
  GaloisKeys gk;
  Ciphertext ct;
  Plaintext pt;

  explicit Env(std::size_t n) {
    ctx = std::make_shared<CkksContext>(CkksParams::toy(n, 4, 2));
    encoder = std::make_unique<CkksEncoder>(ctx);
    keygen = std::make_unique<KeyGenerator>(ctx, 7);
    encryptor = std::make_unique<Encryptor>(ctx, keygen->make_public_key());
    evaluator = std::make_unique<Evaluator>(ctx);
    rk = keygen->make_relin_keys();
    gk = keygen->make_galois_keys({1});
    Rng rng(1);
    std::vector<double> values(ctx->params().slots());
    for (double& v : values) v = rng.uniform_real();
    pt = encoder->encode(std::span<const double>(values), 4, ctx->params().scale());
    ct = encryptor->encrypt(pt);
  }
};

Env& env(std::size_t n) {
  static std::map<std::size_t, std::unique_ptr<Env>> cache;
  auto it = cache.find(n);
  if (it == cache.end()) it = cache.emplace(n, std::make_unique<Env>(n)).first;
  return *it->second;
}

void BM_CkksEncode(benchmark::State& state) {
  Env& e = env(static_cast<std::size_t>(state.range(0)));
  Rng rng(2);
  std::vector<double> values(e.ctx->params().slots());
  for (double& v : values) v = rng.uniform_real();
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.encoder->encode(std::span<const double>(values), 4,
                                               e.ctx->params().scale()));
  }
}
BENCHMARK(BM_CkksEncode)->Arg(1024)->Arg(4096);

void BM_CkksEncrypt(benchmark::State& state) {
  Env& e = env(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.encryptor->encrypt(e.pt));
  }
}
BENCHMARK(BM_CkksEncrypt)->Arg(2048);

void BM_CkksHadd(benchmark::State& state) {
  Env& e = env(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.evaluator->add(e.ct, e.ct));
  }
}
BENCHMARK(BM_CkksHadd)->Arg(2048)->Arg(8192);

void BM_CkksPmult(benchmark::State& state) {
  Env& e = env(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.evaluator->mul_plain(e.ct, e.pt));
  }
}
BENCHMARK(BM_CkksPmult)->Arg(2048)->Arg(8192);

void BM_CkksCmultRelinRescale(benchmark::State& state) {
  Env& e = env(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        e.evaluator->rescale(e.evaluator->multiply(e.ct, e.ct, e.rk)));
  }
}
BENCHMARK(BM_CkksCmultRelinRescale)->Arg(2048)->Arg(8192);

void BM_CkksRotation(benchmark::State& state) {
  Env& e = env(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.evaluator->rotate(e.ct, 1, e.gk));
  }
}
BENCHMARK(BM_CkksRotation)->Arg(2048)->Arg(8192);

}  // namespace

BENCHMARK_MAIN();
