// Reproduces Table 3: multiplication count of Modup (RNS base conversion),
// original vs the (M_j A_j)_L R_j transformation.
#include <cstdio>

#include "bench_util.h"
#include "metaop/lowering.h"
#include "metaop/mult_count.h"

int main() {
  using namespace alchemist;
  bench::print_header(
      "Table 3 - Transformation of Modup (#word-mults, N = 65536)");
  std::printf("%-5s %-5s %-20s %-24s %-10s\n", "L", "K", "origin (3KL+3L)N",
              "(MA)_L R: (KL+3L+2K)N", "reduction");
  const std::size_t n = 65536;
  for (std::size_t l : {4, 8, 11, 22, 44}) {
    for (std::size_t k : {1, 4, 11}) {
      const auto c = metaop::bconv_mults(n, l, k);
      std::printf("%-5zu %-5zu %-20llu %-24llu %.2fx\n", l, k,
                  static_cast<unsigned long long>(c.origin),
                  static_cast<unsigned long long>(c.meta),
                  static_cast<double>(c.origin) / static_cast<double>(c.meta));
      if (metaop::lower_bconv(n, l, k).mult_count() != c.meta) {
        std::printf("MISMATCH between lowering and Table 3 formula!\n");
        return 1;
      }
    }
  }
  bench::print_footnote(
      "lazy reduction defers the K per-channel reductions to the accumulated sums");
  return 0;
}
