// Chaos soak of the TCP job protocol (src/net): every byte between client
// and server flows through the seed-driven ChaosProxy, which kills, corrupts
// and delays connections at exact byte offsets, while the retrying
// net::Client resubmits through its idempotency keys. The harness then
// asserts the three robustness claims of the protocol:
//
//   1. exactly-once: every job reaches exactly one terminal state, and the
//      runner charges admission once per key — svc.submitted equals the
//      number of distinct idempotency keys no matter how many wire attempts
//      the chaos forced, and the terminal-state counters partition it;
//   2. bit-identity: the SimResult registry a job delivers through a faulted
//      wire is byte-for-byte the registry the same workload delivers on a
//      clean wire (the wire can lose frames, never truth);
//   3. lifecycle: torn-submit reconnects re-attach to the live job and join
//      its original trace (net.reattach span), duplicate submissions of a
//      terminal key replay the cache (net.replay span), and a final drain
//      leaves no admitted job unaccounted.
//
// Usage:
//   net_soak [--smoke] [--jobs N] [--seed S] [--trace-out F]
//
//   --smoke       CI-sized run (fewer jobs, same assertions). Exit 0 only
//                 when every invariant holds — runs under ctest and the
//                 thread-sanitizer CI job.
//   --jobs N      chaos jobs (default 48; --smoke 12)
//   --seed S      chaos plan seed (default 0xa1c4e157)
//   --trace-out F write the run's spans as a spans.v1 document; CI feeds it
//                 to tools/check_trace_spans.py --require-reattach.
#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "net/chaos.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/socket.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "svc/job_runner.h"
#include "workloads/ckks_workloads.h"

namespace {

using namespace alchemist;
using namespace std::chrono_literals;

struct Args {
  bool smoke = false;
  std::size_t jobs = 48;
  std::uint64_t seed = 0xa1c4'e157ull;
  std::string trace_out;
};

bool fail(const char* what) {
  std::fprintf(stderr, "net_soak: FAIL: %s\n", what);
  return false;
}

net::WorkloadCatalog make_catalog() {
  const auto w = workloads::CkksWl::paper(16);
  net::WorkloadCatalog cat;
  cat["pmult"] =
      std::make_shared<const metaop::OpGraph>(workloads::build_pmult(w));
  cat["hadd"] =
      std::make_shared<const metaop::OpGraph>(workloads::build_hadd(w));
  cat["rotation"] =
      std::make_shared<const metaop::OpGraph>(workloads::build_rotation(w));
  cat["keyswitch"] =
      std::make_shared<const metaop::OpGraph>(workloads::build_keyswitch(w));
  return cat;
}

const char* workload_of(std::size_t i) {
  static const char* kNames[] = {"pmult", "hadd", "rotation", "keyswitch"};
  return kNames[i % 4];
}

net::ClientOptions client_options(int port, std::size_t attempts) {
  net::ClientOptions copts;
  copts.port = port;
  copts.tick = 5ms;
  copts.response_timeout = 30s;
  copts.max_attempts = attempts;
  copts.backoff.base_us = 500;
  copts.backoff.cap_us = 20'000;
  return copts;
}

// Minimal raw-frame conversation for the deterministic torn-submit scenario:
// the retrying Client hides connection death on purpose, so the reattach
// handshake is driven by hand here.
struct RawConn {
  net::ScopedFd fd;
  net::FrameParser parser;

  explicit RawConn(int port) : fd(net::connect_loopback(port)) {
    if (fd.valid()) net::set_recv_timeout(fd.get(), 20'000us);
  }

  bool send(net::FrameType type, std::span<const std::uint8_t> payload) {
    const auto frame = net::encode_frame(type, payload);
    return net::send_all(fd.get(), frame.data(), frame.size());
  }

  bool recv_frame(net::Frame& out, std::chrono::milliseconds timeout = 10s) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    std::array<std::uint8_t, 4096> buf;
    while (std::chrono::steady_clock::now() < deadline) {
      if (parser.next(out) == net::FrameError::None) return true;
      if (parser.failed()) return false;
      std::size_t got = 0;
      const auto rs = net::recv_some(fd.get(), buf.data(), buf.size(), got);
      if (rs == net::RecvStatus::Data) {
        parser.feed(std::span<const std::uint8_t>(buf.data(), got));
      } else if (rs != net::RecvStatus::TimedOut) {
        return parser.next(out) == net::FrameError::None;
      }
    }
    return false;
  }

  bool handshake() {
    net::HelloPayload hello;
    hello.client = "net_soak-raw";
    if (!send(net::FrameType::Hello, net::encode(hello))) return false;
    net::Frame f;
    return recv_frame(f) && f.type == net::FrameType::HelloAck;
  }
};

// Torn submit, reconnect, re-attach, terminal — exactly once, one trace.
bool run_reattach_scenario(svc::JobRunner& runner, net::Server& server) {
  runner.set_paused(true);
  net::SubmitPayload sub;
  sub.client_job_id = "reattach-0";
  sub.tenant = "soak";
  sub.workload = "keyswitch";

  std::uint64_t first_trace = 0;
  {
    RawConn conn(server.port());
    if (!conn.fd.valid() || !conn.handshake()) {
      return fail("reattach: first connection failed");
    }
    if (!conn.send(net::FrameType::Submit, net::encode(sub))) {
      return fail("reattach: submit failed");
    }
    net::Frame f;
    if (!conn.recv_frame(f) || f.type != net::FrameType::Status) {
      return fail("reattach: no submit ack");
    }
    first_trace = net::decode_status(f.payload).trace_id;
  }  // connection torn with the job still queued

  RawConn conn(server.port());
  if (!conn.fd.valid() || !conn.handshake()) {
    return fail("reattach: reconnect failed");
  }
  if (!conn.send(net::FrameType::Submit, net::encode(sub))) {
    return fail("reattach: resubmit failed");
  }
  net::Frame f;
  if (!conn.recv_frame(f) || f.type != net::FrameType::Status) {
    return fail("reattach: no resubmit ack");
  }
  const auto st = net::decode_status(f.payload);
  if (!st.attached) return fail("reattach: resubmission did not re-attach");
  if (st.trace_id != first_trace) {
    return fail("reattach: reconnect left the original trace");
  }

  runner.set_paused(false);
  for (;;) {
    if (!conn.recv_frame(f)) return fail("reattach: no terminal result");
    if (f.type != net::FrameType::Result) continue;
    const auto rp = net::decode_result(f.payload);
    if (static_cast<svc::JobState>(rp.state) != svc::JobState::Completed) {
      return fail("reattach: job did not complete");
    }
    if (rp.trace_id != first_trace) {
      return fail("reattach: result left the original trace");
    }
    if (rp.replayed) return fail("reattach: live job misreported as replay");
    return true;
  }
}

bool run(const Args& args) {
  obs::TraceSink sink(1 << 16);
  obs::EventLog log;

  svc::RunnerOptions ropts;
  ropts.workers = 4;
  ropts.queue_capacity = 256;
  ropts.trace = &sink;
  ropts.trace_detail = obs::TraceDetail::Lifecycle;
  ropts.log = &log;
  svc::JobRunner runner(ropts);

  net::ServerOptions sopts;
  sopts.name = "net_soak";
  sopts.tick = 5ms;
  sopts.trace = &sink;
  sopts.log = &log;
  net::Server server(runner, make_catalog(), sopts);
  if (!server.start()) {
    std::fprintf(stderr, "net_soak: server: %s\n", server.error().c_str());
    return false;
  }

  // ---- clean-wire references: one run per catalog workload ---------------
  net::Client direct(client_options(server.port(), 8));
  std::map<std::string, std::map<std::string, std::uint64_t>> reference;
  for (std::size_t i = 0; i < 4; ++i) {
    net::SubmitPayload sub;
    sub.client_job_id = std::string("ref-") + workload_of(i);
    sub.tenant = "soak";
    sub.workload = workload_of(i);
    const auto out = direct.run(sub);
    if (!out.delivered || !out.has_result ||
        static_cast<svc::JobState>(out.state) != svc::JobState::Completed) {
      return fail("clean-wire reference job did not complete");
    }
    reference[sub.workload] = out.result.registry.counters();
  }

  // ---- chaos pass --------------------------------------------------------
  net::ChaosOptions copts;
  copts.target_port = server.port();
  copts.seed = args.seed;
  copts.kill_prob = 0.3;
  copts.corrupt_prob = 0.3;
  copts.delay_prob = 0.15;
  copts.delay = 5ms;
  copts.max_offset = 400;
  // Bound total injected faults so the per-job retry budget always wins.
  copts.max_faults = args.jobs * 2;
  net::ChaosProxy proxy(copts);
  if (!proxy.start()) {
    std::fprintf(stderr, "net_soak: proxy: %s\n", proxy.error().c_str());
    return false;
  }

  net::Client chaotic(client_options(proxy.port(), 64));
  std::size_t retried_wire = 0, delivered = 0;
  for (std::size_t i = 0; i < args.jobs; ++i) {
    net::SubmitPayload sub;
    sub.client_job_id = "soak-" + std::to_string(i);
    sub.tenant = "soak";
    sub.workload = workload_of(i);
    const auto out = chaotic.run(sub);
    if (!out.delivered) {
      std::fprintf(stderr, "net_soak: %s: %s\n", sub.client_job_id.c_str(),
                   out.error.c_str());
      return fail("chaos job exhausted its retry budget");
    }
    if (static_cast<svc::JobState>(out.state) != svc::JobState::Completed) {
      return fail("chaos job reached a non-Completed terminal");
    }
    if (!out.has_result) return fail("chaos terminal carried no result");
    if (out.result.registry.counters() != reference[sub.workload]) {
      std::fprintf(stderr, "net_soak: %s diverged from the clean-wire run\n",
                   sub.client_job_id.c_str());
      return fail("faulted result not bit-identical to the reference");
    }
    ++delivered;
    if (out.connections > 1) ++retried_wire;
  }

  // ---- duplicate of a terminal key: cached replay, no second run ---------
  {
    net::SubmitPayload sub;
    sub.client_job_id = "soak-0";
    sub.tenant = "soak";
    sub.workload = workload_of(0);
    const auto out = direct.run(sub);
    if (!out.delivered || !out.replayed) {
      return fail("duplicate of a terminal key did not replay from cache");
    }
    if (out.result.registry.counters() != reference[sub.workload]) {
      return fail("replayed result not bit-identical");
    }
  }

  // ---- torn submit -> reconnect -> re-attach -----------------------------
  if (!run_reattach_scenario(runner, server)) return false;

  // ---- drain + invariants ------------------------------------------------
  server.drain("soak complete");
  runner.drain();

  const std::size_t keys = 4 + args.jobs + 1;  // refs + soak + reattach
  const auto reg = runner.snapshot();
  const auto submitted = reg.counter(svc::metrics::kSubmitted);
  const auto admitted = reg.counter(svc::metrics::kAdmitted);
  const auto terminal = reg.counter(svc::metrics::kCompleted) +
                        reg.counter(svc::metrics::kFailed) +
                        reg.counter(svc::metrics::kCancelled) +
                        reg.counter(svc::metrics::kDeadlineExpired) +
                        reg.total_over_tags("svc.rejected");
  if (submitted != keys) {
    std::fprintf(stderr, "net_soak: svc.submitted=%llu, distinct keys=%zu\n",
                 static_cast<unsigned long long>(submitted), keys);
    return fail("admission charged more/less than once per idempotency key");
  }
  if (reg.counter(svc::metrics::kCompleted) != keys) {
    return fail("not every key completed exactly once");
  }
  if (terminal != submitted) {
    return fail("terminal states do not partition svc.submitted");
  }
  if (admitted != submitted) {
    return fail("admission charge/release did not balance");
  }
  if (reg.gauge(svc::metrics::kTenantInFlight, {{"tenant", "_other"}}) != 0) {
    return fail("tenant in-flight gauge nonzero after drain");
  }

  const auto net_reg = server.snapshot();
  const auto net_submitted = net_reg.counter(net::metrics::kSubmitted);
  const auto net_attached = net_reg.counter(net::metrics::kAttached);
  const auto net_replayed = net_reg.counter(net::metrics::kReplayed);
  if (net_submitted != keys) {
    return fail("net.submitted disagrees with the distinct key count");
  }
  if (net_attached < 1) return fail("reattach scenario left no net.attached");
  if (net_replayed < 1) return fail("replay scenario left no net.replayed");

  server.stop();
  proxy.stop();

  std::printf(
      "net_soak: %zu chaos jobs -> %zu completed, %zu over retried wires\n"
      "net_soak: proxy %llu conns: %llu kills, %llu corruptions, %llu delays\n"
      "net_soak: server %llu wire submits -> %llu fresh, %llu reattach, "
      "%llu replays; %llu results\n"
      "net_soak: exactly-once OK (svc.submitted == %zu keys), bit-identity "
      "OK, partition OK\n",
      args.jobs, delivered, retried_wire,
      static_cast<unsigned long long>(proxy.connections()),
      static_cast<unsigned long long>(proxy.kills()),
      static_cast<unsigned long long>(proxy.corruptions()),
      static_cast<unsigned long long>(proxy.delays()),
      static_cast<unsigned long long>(net_submitted + net_attached +
                                      net_replayed),
      static_cast<unsigned long long>(net_submitted),
      static_cast<unsigned long long>(net_attached),
      static_cast<unsigned long long>(net_replayed),
      static_cast<unsigned long long>(net_reg.counter(net::metrics::kResults)),
      keys);

  if (!args.trace_out.empty()) {
    if (!obs::write_spans_file(args.trace_out, sink, "net_soak")) {
      return fail("cannot write --trace-out document");
    }
    std::printf("trace: %s (spans.v1)\n", args.trace_out.c_str());
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--smoke") {
      args.smoke = true;
      args.jobs = 12;
    } else if (arg == "--jobs") {
      args.jobs = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--seed") {
      args.seed = static_cast<std::uint64_t>(std::strtoull(next(), nullptr, 0));
    } else if (arg == "--trace-out") {
      args.trace_out = next();
    } else {
      std::fprintf(stderr,
                   "usage: net_soak [--smoke] [--jobs N] [--seed S] "
                   "[--trace-out F]\n");
      return 2;
    }
  }
  return run(args) ? 0 : 1;
}
