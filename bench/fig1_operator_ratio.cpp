// Reproduces Figure 1: operator ratio (NTT / Bconv / DecompPolyMult) per
// workload and overall hardware utilization of Alchemist vs the modular
// baselines on the same workloads.
#include <cstdio>

#include "arch/baselines.h"
#include "arch/config.h"
#include "bench_util.h"
#include "metaop/mult_count.h"
#include "sim/alchemist_sim.h"
#include "sim/baseline_sim.h"
#include "workloads/bfv_workloads.h"
#include "workloads/ckks_workloads.h"
#include "workloads/tfhe_workloads.h"

namespace {

using namespace alchemist;

workloads::CkksWl resident(std::size_t level) {
  workloads::CkksWl w = workloads::CkksWl::paper(level);
  w.hbm_stream_fraction = 0.05;  // application steady state: keys reused
  return w;
}

void report(const char* name, const metaop::OpGraph& g, bool ckks) {
  const auto mults = metaop::class_mults(g, /*meta=*/true);
  const double total =
      static_cast<double>(mults[0] + mults[1] + mults[2] + mults[3]);
  const auto alch = sim::simulate_alchemist(g, arch::ArchConfig::alchemist());
  double sharp_util = 0, clake_util = 0, matcha_util = 0, strix_util = 0;
  if (ckks) {
    sharp_util = sim::simulate_modular(g, arch::spec_by_name("SHARP")).utilization;
    clake_util =
        sim::simulate_modular(g, arch::spec_by_name("CraterLake")).utilization;
  } else {
    matcha_util = sim::simulate_modular(g, arch::spec_by_name("Matcha")).utilization;
    strix_util = sim::simulate_modular(g, arch::spec_by_name("Strix")).utilization;
  }
  std::printf("%-14s | %5.1f%% %6.1f%% %6.1f%% %5.1f%% | %5.2f ", name,
              100.0 * mults[0] / total, 100.0 * mults[1] / total,
              100.0 * mults[2] / total, 100.0 * mults[3] / total,
              alch.utilization);
  if (ckks) {
    std::printf("%9.2f %9.2f %8s %8s\n", sharp_util, clake_util, "-", "-");
  } else {
    std::printf("%9s %9s %8.2f %8.2f\n", "-", "-", matcha_util, strix_util);
  }
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 1 - Operator ratio per workload and overall HW utilization");
  std::printf("%-14s | %-28s | %-5s %-9s %-9s %-8s %-8s\n", "Workload",
              "NTT  Bconv  DecompPM  Elem", "Alch", "SHARP", "CLake", "Matcha",
              "Strix");

  report("TFHE-PBS", workloads::build_pbs(workloads::TfheWl::set_i()), false);
  for (std::size_t level : {8, 16, 24}) {
    char name[32];
    std::snprintf(name, sizeof(name), "Cmult-L=%zu", level);
    report(name, workloads::build_cmult(resident(level)), true);
  }
  for (std::size_t level : {24, 34, 44}) {
    char name[32];
    std::snprintf(name, sizeof(name), "BSP-L=%zu", level);
    report(name, workloads::build_bootstrapping(resident(level), false), true);
  }
  report("BSP-L=44+", workloads::build_bootstrapping(resident(44), true), true);
  // Extension beyond the paper's figure: BFV maps onto the same classes.
  workloads::BfvWl bfv;
  bfv.hbm_stream_fraction = 0.05;
  report("BFV-Cmult*", workloads::build_bfv_cmult(bfv), true);

  bench::print_footnote(
      "paper: no prior ASIC keeps utilization high across all columns; "
      "Alchemist stays ~0.85 while modular designs drop below ~0.55. "
      "(* = our extension: BFV, the paper's other arithmetic scheme)");
  return 0;
}
