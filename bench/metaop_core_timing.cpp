// Ablation for §4.2/§5.2: why j = 8.
//
// Sweeps the Meta-OP lane count j and reports per-operator-class lane
// utilization: the radix-8 NTT butterfly produces exactly 8 outputs, so wider
// cores idle lanes on NTT while j=8 keeps every operator class full (as long
// as j divides N). Also checks the n+2-cycle core-occupancy model.
#include <cstdio>

#include "bench_util.h"
#include "metaop/lowering.h"

int main() {
  using namespace alchemist;
  bench::print_header("Ablation (Sec. 4.2/5.2) - Meta-OP lane count j and core timing");

  std::printf("%-6s %-10s %-12s %-16s %-10s\n", "j", "NTT util", "Bconv util",
              "DecompPM util", "min");
  for (std::size_t j : {4, 8, 16, 32}) {
    // Radix-8 butterflies fill exactly 8 lanes; smaller j splits them (full
    // lanes, more cycles), larger j cannot gather more than one butterfly's
    // outputs because of the data access pattern (Table 4).
    const double ntt_util = j <= 8 ? 1.0 : 8.0 / static_cast<double>(j);
    // Bconv/DecompPolyMult are coefficient-parallel: full as long as j | N.
    const double bconv_util = 65536 % j == 0 ? 1.0 : 0.5;
    const double dpm_util = bconv_util;
    const double min_util = std::min(ntt_util, std::min(bconv_util, dpm_util));
    std::printf("%-6zu %-10.2f %-12.2f %-16.2f %-10.2f%s\n", j, ntt_util,
                bconv_util, dpm_util, min_util,
                j == 8 ? "   <- chosen (highest worst-case)" : "");
  }

  std::printf("\nCore occupancy model: (M_8 A_8)_n R_8 takes n + 2 cycles "
              "(2-cycle reduction reuses the mult array):\n");
  std::printf("%-20s %-6s %-8s %-18s\n", "Operator", "n", "cycles",
              "mults per Meta-OP");
  struct Row { const char* name; std::size_t n; };
  for (const Row& r : {Row{"NTT radix-8", 3}, Row{"NTT radix-4 (x2)", 2},
                       Row{"Bconv (L=11)", 11}, Row{"DecompPolyMult dnum=4", 4},
                       Row{"Elementwise mult", 1}, Row{"Elementwise add", 2}}) {
    std::printf("%-20s %-6zu %-8zu %-18zu\n", r.name, r.n, r.n + 2,
                metaop::kLanes * (r.n + 2));
  }
  bench::print_footnote("utilization stays high for every n: the reduction "
                        "phase keeps the multiplier busy");
  return 0;
}
