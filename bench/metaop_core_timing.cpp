// Ablation for §4.2/§5.2: why j = 8.
//
// Sweeps the Meta-OP lane count j and reports per-operator-class lane
// utilization: the radix-8 NTT butterfly produces exactly 8 outputs, so wider
// cores idle lanes on NTT while j=8 keeps every operator class full (as long
// as j divides N). Also checks the n+2-cycle core-occupancy model.
#include <cstdio>

#include "bench_util.h"
#include "metaop/lowering.h"
#include "sim/alchemist_sim.h"
#include "sim/event_sim.h"
#include "workloads/ckks_workloads.h"
#include "workloads/tfhe_workloads.h"

namespace {

// Deterministic simulator smoke: a handful of canonical workloads through
// both simulators. These are the counters CI diffs against the committed
// BENCH_sim.json baseline (tools/check_bench_baseline.py, 5% tolerance), so
// keep the set small, fast and fixed.
void sim_smoke(alchemist::bench::ObsArgs& obs) {
  using namespace alchemist;
  const auto cfg = arch::ArchConfig::alchemist();

  workloads::CkksWl fresh = workloads::CkksWl::paper(44);
  workloads::CkksWl resident = workloads::CkksWl::paper(44);
  resident.hbm_stream_fraction = 0.05;
  workloads::CkksWl mid = workloads::CkksWl::paper(24);
  mid.hbm_stream_fraction = 0.05;

  struct Run {
    const char* label;
    sim::SimResult result;
  };
  Run runs[] = {
      {"keyswitch/fresh", sim::simulate_alchemist(workloads::build_keyswitch(fresh), cfg)},
      {"keyswitch/resident",
       sim::simulate_alchemist(workloads::build_keyswitch(resident), cfg)},
      {"cmult/L24", sim::simulate_alchemist(workloads::build_cmult(mid), cfg)},
      {"cmult/L24(event)",
       sim::simulate_alchemist_events(workloads::build_cmult(mid), cfg)},
      {"pbs/set-i", sim::simulate_alchemist(
                        workloads::build_pbs(workloads::TfheWl::set_i()), cfg)},
  };

  std::printf("\nSimulator smoke (baseline counters for CI):\n");
  std::printf("%-22s %-18s %12s %10s %12s\n", "run", "accelerator", "cycles",
              "util", "stall");
  for (Run& r : runs) {
    std::printf("%-22s %-18s %12llu %10.3f %12llu\n", r.label,
                r.result.accelerator.c_str(),
                static_cast<unsigned long long>(r.result.cycles),
                r.result.utilization,
                static_cast<unsigned long long>(r.result.mem_stall_cycles));
    obs.add(r.label, r.result.accelerator, r.result.registry);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace alchemist;
  bench::ObsArgs obs(argc, argv, "metaop_core_timing");
  bench::print_header("Ablation (Sec. 4.2/5.2) - Meta-OP lane count j and core timing");

  std::printf("%-6s %-10s %-12s %-16s %-10s\n", "j", "NTT util", "Bconv util",
              "DecompPM util", "min");
  for (std::size_t j : {4, 8, 16, 32}) {
    // Radix-8 butterflies fill exactly 8 lanes; smaller j splits them (full
    // lanes, more cycles), larger j cannot gather more than one butterfly's
    // outputs because of the data access pattern (Table 4).
    const double ntt_util = j <= 8 ? 1.0 : 8.0 / static_cast<double>(j);
    // Bconv/DecompPolyMult are coefficient-parallel: full as long as j | N.
    const double bconv_util = 65536 % j == 0 ? 1.0 : 0.5;
    const double dpm_util = bconv_util;
    const double min_util = std::min(ntt_util, std::min(bconv_util, dpm_util));
    std::printf("%-6zu %-10.2f %-12.2f %-16.2f %-10.2f%s\n", j, ntt_util,
                bconv_util, dpm_util, min_util,
                j == 8 ? "   <- chosen (highest worst-case)" : "");
  }

  std::printf("\nCore occupancy model: (M_8 A_8)_n R_8 takes n + 2 cycles "
              "(2-cycle reduction reuses the mult array):\n");
  std::printf("%-20s %-6s %-8s %-18s\n", "Operator", "n", "cycles",
              "mults per Meta-OP");
  struct Row { const char* name; std::size_t n; };
  for (const Row& r : {Row{"NTT radix-8", 3}, Row{"NTT radix-4 (x2)", 2},
                       Row{"Bconv (L=11)", 11}, Row{"DecompPolyMult dnum=4", 4},
                       Row{"Elementwise mult", 1}, Row{"Elementwise add", 2}}) {
    std::printf("%-20s %-6zu %-8zu %-18zu\n", r.name, r.n, r.n + 2,
                metaop::kLanes * (r.n + 2));
  }
  bench::print_footnote("utilization stays high for every n: the reduction "
                        "phase keeps the multiplier busy");

  sim_smoke(obs);
  return 0;
}
