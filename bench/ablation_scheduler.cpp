// Ablation for §5.4's time-sharing scheduling and cross-validation of the
// two simulator implementations (analytical ASAP-level vs discrete-event).
#include <cstdio>

#include "arch/config.h"
#include "bench_util.h"
#include "sim/alchemist_sim.h"
#include "sim/event_sim.h"
#include "workloads/ckks_workloads.h"
#include "workloads/tfhe_workloads.h"

int main() {
  using namespace alchemist;
  const auto cfg = arch::ArchConfig::alchemist();

  bench::print_header("Ablation - analytical vs discrete-event simulator");
  std::printf("%-28s %12s %12s %8s\n", "Workload", "level (cyc)", "event (cyc)",
              "ratio");
  workloads::CkksWl w = workloads::CkksWl::paper(44);
  w.hbm_stream_fraction = 0.05;
  struct Case {
    const char* name;
    metaop::OpGraph graph;
  };
  Case cases[] = {
      {"Keyswitch (L=44)", workloads::build_keyswitch(w)},
      {"Cmult (L=44)", workloads::build_cmult(w)},
      {"Rotation (L=44)", workloads::build_rotation(w)},
      {"TFHE PBS (set I)", workloads::build_pbs(workloads::TfheWl::set_i())},
      {"HELR iteration", workloads::build_helr_iteration(w)},
  };
  for (auto& c : cases) {
    const auto level = sim::simulate_alchemist(c.graph, cfg);
    const auto event = sim::simulate_alchemist_events(c.graph, cfg);
    std::printf("%-28s %12llu %12llu %8.3f\n", c.name,
                static_cast<unsigned long long>(level.cycles),
                static_cast<unsigned long long>(event.cycles),
                static_cast<double>(event.cycles) / level.cycles);
  }
  bench::print_footnote("two independent models agree within ~10%");

  bench::print_header("Ablation (Sec. 5.4) - time-sharing scheduling");
  // HBM-bound CKKS keyswitches co-scheduled with compute-bound TFHE PBS:
  // only a unified accelerator can overlap the two schemes.
  workloads::CkksWl fresh = workloads::CkksWl::paper(44);  // streams full keys
  const auto ks = workloads::build_keyswitch(fresh);
  workloads::TfheWl tw = workloads::TfheWl::set_i();
  tw.hbm_stream_fraction = 0.0;
  const auto pbs = workloads::build_pbs(tw);

  const double t_ks = sim::simulate_alchemist_events(ks, cfg).time_us;
  const double t_pbs = sim::simulate_alchemist_events(pbs, cfg).time_us;
  const double t_shared =
      sim::simulate_alchemist_events(sim::merge_graphs({ks, pbs}, "shared"), cfg)
          .time_us;
  std::printf("CKKS keyswitch alone (HBM-bound):   %10.1f us\n", t_ks);
  std::printf("TFHE PBS alone (compute-bound):     %10.1f us\n", t_pbs);
  std::printf("back-to-back:                       %10.1f us\n", t_ks + t_pbs);
  std::printf("time-shared (interleaved streams):  %10.1f us  (%.0f%% saved)\n",
              t_shared, 100.0 * (1.0 - t_shared / (t_ks + t_pbs)));

  // Same-scheme batching: four keyswitches time-shared.
  const auto batch4 =
      sim::merge_graphs({ks, ks, ks, ks}, "4x keyswitch");
  const double t_batch = sim::simulate_alchemist_events(batch4, cfg).time_us;
  std::printf("\n4x keyswitch sequential: %10.1f us\n", 4 * t_ks);
  std::printf("4x keyswitch time-shared:%10.1f us  (%.0f%% saved)\n", t_batch,
              100.0 * (1.0 - t_batch / (4 * t_ks)));
  bench::print_footnote(
      "cross-scheme co-scheduling overlaps one scheme's key streaming with "
      "the other's compute - impossible on single-scheme ASICs");
  return 0;
}
