// Reproduces Figure 6(b): TFHE programmable-bootstrapping throughput on the
// two parameter sets of §6.2.2 — Alchemist vs modeled Matcha/Strix, with the
// paper's Concrete (CPU) and NuFHE (GPU) speedup references, plus our own
// measured software PBS as the CPU point.
#include <chrono>
#include <cstdio>

#include "arch/area_model.h"
#include "arch/baselines.h"
#include "arch/config.h"
#include "bench_util.h"
#include "common/rng.h"
#include "sim/alchemist_sim.h"
#include "sim/baseline_sim.h"
#include "tfhe/bootstrap.h"
#include "workloads/tfhe_workloads.h"

namespace {

using namespace alchemist;

// Measure one software PBS on this machine (single thread) — our "Concrete"
// stand-in: the same role the paper's CPU baseline plays.
double measure_cpu_pbs_us() {
  Rng rng(42);
  const tfhe::TfheParams params = tfhe::TfheParams::set_i();
  const tfhe::LweKey lwe_key = tfhe::lwe_keygen(params.n_lwe, rng);
  const tfhe::TrlweKey trlwe_key = tfhe::trlwe_keygen(params, rng);
  const tfhe::BootstrapContext ctx =
      tfhe::make_bootstrap_context(params, lwe_key, trlwe_key, rng);
  const tfhe::LweSample in = tfhe::encrypt_bit(true, lwe_key, params.lwe_sigma, rng);
  const tfhe::TorusPoly tv =
      tfhe::make_constant_test_poly(params.degree, u64{1} << 61);
  const auto start = std::chrono::steady_clock::now();
  const int iters = 3;
  for (int i = 0; i < iters; ++i) {
    (void)tfhe::programmable_bootstrap(in, tv, ctx);
  }
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(stop - start).count() / iters;
}

void report(const char* name, workloads::TfheWl w) {
  const auto cfg = arch::ArchConfig::alchemist();
  // Per-accelerator key residency: cached fraction = on-chip MB / BK MB.
  auto stream_fraction = [&](double onchip_mb) {
    const double bk_mb = w.bk_bytes() / 1e6;
    return bk_mb <= onchip_mb ? 0.0 : 1.0 - onchip_mb / bk_mb;
  };

  workloads::TfheWl wa = w;
  wa.hbm_stream_fraction = stream_fraction(66.0 * 0.5);  // half the SRAM for BK
  const auto alch = sim::simulate_alchemist(workloads::build_pbs(wa), cfg);

  workloads::TfheWl wm = w;
  wm.hbm_stream_fraction = stream_fraction(arch::spec_by_name("Matcha").onchip_mem_mb);
  const auto matcha =
      sim::simulate_modular(workloads::build_pbs(wm), arch::spec_by_name("Matcha"));

  workloads::TfheWl ws = w;
  ws.hbm_stream_fraction = stream_fraction(arch::spec_by_name("Strix").onchip_mem_mb);
  const auto strix =
      sim::simulate_modular(workloads::build_pbs(ws), arch::spec_by_name("Strix"));

  const double batch = static_cast<double>(w.batch);
  const double alch_tput = batch * 1e6 / alch.time_us;
  const double matcha_tput = batch * 1e6 / matcha.time_us;
  const double strix_tput = batch * 1e6 / strix.time_us;
  std::printf("%-22s %10s %12s %12s   speedup: %.1fx / %.1fx\n", name,
              bench::format_rate(alch_tput).c_str(),
              bench::format_rate(matcha_tput).c_str(),
              bench::format_rate(strix_tput).c_str(), alch_tput / matcha_tput,
              alch_tput / strix_tput);
}

}  // namespace

int main() {
  bench::print_header("Figure 6(b) - TFHE programmable bootstrapping throughput");
  std::printf("%-22s %10s %12s %12s\n", "Params (PBS/s)", "Alchemist",
              "Matcha(mdl)", "Strix(mdl)");
  report("Set I  (N=1024,l=3)", workloads::TfheWl::set_i());
  report("Set II (N=2048,l=2)", workloads::TfheWl::set_ii());

  const double cpu_us = measure_cpu_pbs_us();
  std::printf("\nSoftware PBS on this CPU (set I): %.1f ms -> %.1f PBS/s\n",
              cpu_us / 1e3, 1e6 / cpu_us);
  {
    workloads::TfheWl w = workloads::TfheWl::set_i();
    w.hbm_stream_fraction = 0.0;
    const auto alch = sim::simulate_alchemist(workloads::build_pbs(w),
                                              arch::ArchConfig::alchemist());
    const double alch_tput = w.batch * 1e6 / alch.time_us;
    std::printf("Alchemist vs this CPU: %.0fx   (paper: ~1600x vs Concrete, "
                "105x vs NuFHE)\n", alch_tput / (1e6 / cpu_us));
  }
  std::printf("Paper: 7.0x average speedup vs the TFHE ASICs at comparable "
              "perf/area.\n");
  return 0;
}
