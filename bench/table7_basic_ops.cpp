// Reproduces Table 7: throughput of basic CKKS operators (N=65536, L=44,
// dnum=4) on Alchemist (cycle simulator) vs a single-thread CPU (cost model
// calibrated on this machine). GPU [20] and Poseidon [15] columns carry the
// paper's published numbers for reference.
#include <cstdio>
#include <string>

#include "arch/config.h"
#include "bench_util.h"
#include "sim/alchemist_sim.h"
#include "sim/cpu_model.h"
#include "workloads/ckks_workloads.h"

int main() {
  using namespace alchemist;
  const auto cfg = arch::ArchConfig::alchemist();
  const workloads::CkksWl w = workloads::CkksWl::paper(44);  // fresh-key stream

  struct Row {
    const char* name;
    metaop::OpGraph graph;
    double paper_cpu, paper_gpu, paper_poseidon, paper_alchemist, paper_speedup;
  };
  Row rows[] = {
      {"Pmult", workloads::build_pmult(w), 38.14, 7407, 14647, 946970, 24829},
      {"Hadd", workloads::build_hadd(w), 35.56, 4807, 13310, 710227, 19973},
      {"Keyswitch", workloads::build_keyswitch(w), 0.4, 0, 312, 7246, 18115},
      {"Cmult", workloads::build_cmult(w), 0.38, 57, 273, 7143, 18785},
      {"Rotation", workloads::build_rotation(w), 0.39, 61, 302, 7179, 18377},
  };

  bench::print_header(
      "Table 7 - Basic operator throughput (ops/s), N=65536 L=44 dnum=4");
  std::printf("%-10s | %-12s %-12s | %-12s %-12s | %-10s %-10s\n", "Op",
              "CPU(model)", "CPU(paper)", "Alch(sim)", "Alch(paper)",
              "speedup", "paper");
  for (auto& row : rows) {
    const auto r = sim::simulate_alchemist(row.graph, cfg);
    double cpu_us = sim::cpu_time_us(row.graph);
    if (cpu_us <= 0) {
      // Hadd has no multiplies: charge the measured per-coefficient add cost
      // (approximately one third of a modmul on this substrate).
      cpu_us = 2.0 * 44 * 65536 * sim::cpu_ns_per_modmul() * 1e-3;
    }
    const double cpu_rate = 1e6 / cpu_us;
    const double alch_rate = 1e6 / r.time_us;
    std::printf("%-10s | %-12s %-12s | %-12s %-12s | %-10s %-10s\n", row.name,
                bench::format_rate(cpu_rate).c_str(),
                bench::format_rate(row.paper_cpu).c_str(),
                bench::format_rate(alch_rate).c_str(),
                bench::format_rate(row.paper_alchemist).c_str(),
                (bench::format_rate(alch_rate / cpu_rate) + "x").c_str(),
                (bench::format_rate(row.paper_speedup) + "x").c_str());
  }
  std::printf("\nReference columns from the paper: GPU [20] Pmult 7407/s, "
              "Hadd 4807/s, Cmult 57/s; Poseidon [15] Keyswitch 312/s.\n");
  bench::print_footnote(
      "Keyswitch/Cmult/Rotation are HBM-bound streaming ~130 MB of fresh evk "
      "at 1 TB/s; Pmult/Hadd are compute-bound (exact wave arithmetic)");
  return 0;
}
