// Encrypted logistic-regression training (the HELR workload of Fig. 6a),
// functional at reduced parameters.
//
// The client packs z_i = y_i * x_i (HELR's trick: the gradient of the
// logistic loss only needs y*x), encrypts the batch, and the server runs
// gradient-descent iterations entirely under encryption:
//   m_i     = w . z_i                       (encrypted dot product)
//   s_i     = sigmoid(-m_i) ~ poly degree 3 (PolyEvaluator)
//   grad_k  = mean_i(s_i * z_{i,k})         (rotate-and-add reduction)
//   w_k    += lr * grad_k
// The decrypted model is compared against the same iterations in cleartext.
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "arch/config.h"
#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/keygen.h"
#include "ckks/poly_eval.h"
#include "common/rng.h"
#include "sim/alchemist_sim.h"
#include "workloads/ckks_workloads.h"

namespace {

using namespace alchemist;
using namespace alchemist::ckks;

// HELR's degree-3 least-squares sigmoid approximation on [-8, 8].
constexpr double kSig0 = 0.5, kSig1 = -1.20096 / 8.0, kSig3 = 0.81562 / 512.0;

double sigmoid_poly(double t) { return kSig0 + kSig1 * t + kSig3 * t * t * t; }

}  // namespace

int main() {
  // --- synthetic, linearly separable dataset ---
  const std::size_t samples = 256;
  Rng rng(2024);
  std::vector<double> x1(samples), x2(samples), y(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    const bool positive = i % 2 == 0;
    x1[i] = (positive ? 0.6 : -0.6) + 0.4 * (2 * rng.uniform_real() - 1);
    x2[i] = (positive ? 0.4 : -0.4) + 0.4 * (2 * rng.uniform_real() - 1);
    y[i] = positive ? 1.0 : -1.0;
  }
  // z = y * (1, x1, x2): intercept plus two features.
  std::vector<std::vector<double>> z = {y, {}, {}};
  z[1].resize(samples);
  z[2].resize(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    z[1][i] = y[i] * x1[i];
    z[2][i] = y[i] * x2[i];
  }

  // --- CKKS setup ---
  const CkksParams params = CkksParams::toy(2048, 18, 3);
  auto ctx = std::make_shared<CkksContext>(params);
  CkksEncoder encoder(ctx);
  KeyGenerator keygen(ctx, 17);
  Encryptor encryptor(ctx, keygen.make_public_key());
  Decryptor decryptor(ctx, keygen.secret_key());
  Evaluator evaluator(ctx);
  const RelinKeys relin = keygen.make_relin_keys();
  std::vector<int> rotations;
  for (std::size_t s = 1; s < params.slots(); s <<= 1) rotations.push_back(static_cast<int>(s));
  const GaloisKeys galois = keygen.make_galois_keys(rotations);
  PolyEvaluator poly(ctx, encoder, evaluator, relin);

  const double scale = params.scale();
  const std::size_t top = params.num_levels;
  std::vector<Ciphertext> enc_z;
  for (const auto& feature : z) {
    enc_z.push_back(encryptor.encrypt(
        encoder.encode(std::span<const double>(feature), top, scale)));
  }
  // Encrypted model, initialized to zero (broadcast ciphertexts).
  std::vector<Ciphertext> w;
  for (int k = 0; k < 3; ++k) {
    w.push_back(encryptor.encrypt(encoder.encode_constant(0.0, top, scale)));
  }
  std::vector<double> w_clear = {0.0, 0.0, 0.0};

  const double lr = 1.0;
  const double inv_n = 1.0 / static_cast<double>(samples);
  const std::vector<double> sig_coeffs = {kSig0, kSig1, 0.0, kSig3};

  std::printf("HELR-style encrypted training: %zu samples, 2 features + bias\n",
              samples);
  const int iterations = 2;
  for (int iter = 0; iter < iterations; ++iter) {
    // m = w . z (encrypted; all three terms).
    Ciphertext m = evaluator.mul_aligned(w[0], enc_z[0], relin);
    for (int k = 1; k < 3; ++k) {
      m = evaluator.add_aligned(m, evaluator.mul_aligned(w[k], enc_z[k], relin));
    }
    // s = sigmoid(-m): evaluate the odd-degree polynomial at -m.
    Ciphertext neg_m = evaluator.negate(m);
    Ciphertext s = poly.evaluate(neg_m, std::span<const double>(sig_coeffs));
    // grad_k = mean(s * z_k); rotate-and-add puts the batch sum in every slot.
    for (int k = 0; k < 3; ++k) {
      Ciphertext g = evaluator.mul_aligned(s, enc_z[static_cast<std::size_t>(k)], relin);
      for (std::size_t step = 1; step < params.slots(); step <<= 1) {
        g = evaluator.add(g, evaluator.rotate(g, static_cast<int>(step), galois));
      }
      g = evaluator.rescale(
          evaluator.mul_scalar(g, lr * inv_n, encoder, g.scale));
      w[static_cast<std::size_t>(k)] =
          evaluator.add_aligned(w[static_cast<std::size_t>(k)], g);
    }

    // Cleartext reference with identical updates.
    std::vector<double> grad = {0, 0, 0};
    for (std::size_t i = 0; i < samples; ++i) {
      const double mi =
          w_clear[0] * z[0][i] + w_clear[1] * z[1][i] + w_clear[2] * z[2][i];
      const double si = sigmoid_poly(-mi);
      for (int k = 0; k < 3; ++k) grad[static_cast<std::size_t>(k)] += si * z[static_cast<std::size_t>(k)][i];
    }
    for (int k = 0; k < 3; ++k) w_clear[static_cast<std::size_t>(k)] += lr * inv_n * grad[static_cast<std::size_t>(k)];

    std::printf("  iter %d: encrypted w = (", iter + 1);
    for (int k = 0; k < 3; ++k) {
      const auto dec = decryptor.decrypt(w[static_cast<std::size_t>(k)], encoder);
      std::printf("%s%.4f", k ? ", " : "", dec[0].real());
    }
    std::printf(")  cleartext w = (%.4f, %.4f, %.4f)\n", w_clear[0], w_clear[1],
                w_clear[2]);
  }

  // Accuracy of the decrypted model.
  std::vector<double> w_final(3);
  for (int k = 0; k < 3; ++k) {
    w_final[static_cast<std::size_t>(k)] =
        decryptor.decrypt(w[static_cast<std::size_t>(k)], encoder)[0].real();
  }
  int correct = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    const double score = w_final[0] + w_final[1] * x1[i] + w_final[2] * x2[i];
    correct += (score > 0) == (y[i] > 0) ? 1 : 0;
  }
  std::printf("accuracy of decrypted model: %d/%zu (%.1f%%)\n", correct, samples,
              100.0 * correct / samples);

  // Paper-scale cost of one iteration on the accelerator.
  workloads::CkksWl wl = workloads::CkksWl::paper(30);
  wl.hbm_stream_fraction = 0.05;
  const auto r = sim::simulate_alchemist(workloads::build_helr_iteration(wl),
                                         arch::ArchConfig::alchemist());
  std::printf("\nAlchemist cycle-sim, one HELR-1024 iteration at paper scale: "
              "%.3f ms (util %.2f)\n",
              r.time_us / 1e3, r.utilization);
  return 0;
}
