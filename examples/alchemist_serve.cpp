// Serving front end for the resilient simulation service (src/svc).
//
//   alchemist_serve [--workers N] [--jobs N] [--fault-rate R]
//                   [--deadline-ms D] [--queue N] [--seed S] [--threads N]
//                   [--introspect-port P] [--loop-seconds S] [--tenants N]
//
// Submits a mixed list of CKKS simulation jobs (both engines, a slice of
// them under an injected transient-fault model with a bounded retry budget,
// optionally under a wall-clock deadline) to a JobRunner with N workers and
// a bounded queue, waits for the pool to drain, and prints the report a
// serving deployment would scrape from the svc.* metrics: terminal-state
// partition, throughput, p50/p99 latency, and yield.
//
// --introspect-port starts the live introspection window (svc/introspect.h):
// /healthz, /metrics (Prometheus exposition of svc.latency.* histograms,
// svc.* counters and substrate.* activity), /statusz (JSON), /buildz (build
// provenance) and — when tracing is on — /tracez (recent + slowest spans)
// and /logz (flight-recorder tail). --loop-seconds keeps resubmitting the
// job list for at least S seconds so an external scraper has a running
// service to poll — CI's smoke job curls the endpoints mid-soak.
//
// Tracing (--trace-out, --timeline-out, or any --introspect-port) threads a
// TraceContext through every job: queue/attempt/backoff spans from the
// runner, per-level (or per-op, --trace-detail ops) spans from the engines,
// fan-out spans from the compute pool. --trace-out writes the spans.v1
// document; --timeline-out writes a Chrome trace with the span tracks merged
// in and per-job flow arrows (open in Perfetto).
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/simd.h"
#include "common/thread_pool.h"
#include "net/server.h"
#include "obs/log.h"
#include "obs/substrate_metrics.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "svc/introspect.h"
#include "svc/job_runner.h"
#include "workloads/ckks_workloads.h"

namespace {

using namespace alchemist;

// SIGINT/SIGTERM request a graceful drain: the handler only sets the flag
// (async-signal-safe); the main loop notices, stops accepting, checkpoints
// in-flight jobs, flushes metrics/trace output and exits 0.
volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

int usage() {
  std::fprintf(stderr,
               "usage: alchemist_serve [--workers N] [--jobs N] [--fault-rate R]\n"
               "       [--deadline-ms D] [--queue N] [--seed S] [--threads N]\n"
               "       [--isa scalar|avx2|avx512|native]\n"
               "       [--introspect-port P] [--port P] [--loop-seconds S]\n"
               "       [--tenants N] [--trace-out PATH] [--timeline-out PATH]\n"
               "       [--trace-detail lifecycle|phases|ops]\n"
               "  --tenants N  spread the jobs round-robin over N tenants\n"
               "               (tenant-0..tenant-N-1) with unlimited policies:\n"
               "               per-tenant fair-queue lanes + svc.tenant.*\n"
               "               metrics with no admission rejections\n"
               "  --threads N  width of the shared compute pool the kernels of\n"
               "               every job fan out on (default: ALCHEMIST_THREADS\n"
               "               or hardware concurrency; 1 = sequential)\n"
               "  --isa I      force the SIMD dispatch of the NTT/accumulator\n"
               "               kernels (default: ALCHEMIST_ISA or best CPUID-\n"
               "               supported); the selection and per-kernel dispatch\n"
               "               counts surface as substrate.isa* in /metrics\n"
               "  --introspect-port P  serve /healthz /metrics /statusz /buildz\n"
               "               /tracez /logz on 127.0.0.1:P (0 = ephemeral; the\n"
               "               resolved port is printed)\n"
               "  --port P     serve the framed TCP job protocol (src/net) on\n"
               "               127.0.0.1:P (0 = ephemeral; resolved port is\n"
               "               printed); workloads pmult/hadd/rotation/keyswitch;\n"
               "               runs until SIGINT/SIGTERM (graceful drain) or\n"
               "               --loop-seconds expires\n"
               "  --loop-seconds S  resubmit the job list for at least S\n"
               "               seconds (soak mode for live scraping)\n"
               "  --mem-profile  run every job (batch and remote) with the\n"
               "               memory profiler attached: completed jobs fold\n"
               "               sim.mem.* series into /metrics and a memory\n"
               "               section into /statusz; results stay\n"
               "               bit-identical\n"
               "  --trace-out PATH  write the spans.v1 trace document\n"
               "  --timeline-out PATH  write a Chrome trace (Perfetto) with\n"
               "               job lifecycle slices, span tracks and per-job\n"
               "               queue->run flow arrows\n"
               "  --trace-detail  span volume from the simulator engines:\n"
               "               lifecycle (none), phases (per level; default),\n"
               "               ops (every scheduled meta-op)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t workers = 4, jobs = 32, queue = 64, tenants = 0;
  double fault_rate = 2e-9, deadline_ms = 0.0, loop_seconds = 0.0;
  int introspect_port = -1, net_port = -1;
  u64 seed = 0xa1c4'e5ull;
  bool mem_profile = false;
  std::string trace_out, timeline_out;
  obs::TraceDetail trace_detail = obs::TraceDetail::Phases;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--workers") workers = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--jobs") jobs = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--queue") queue = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--tenants") tenants = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--fault-rate") fault_rate = std::atof(next());
    else if (arg == "--deadline-ms") deadline_ms = std::atof(next());
    else if (arg == "--seed") seed = static_cast<u64>(std::strtoull(next(), nullptr, 0));
    else if (arg == "--introspect-port") introspect_port = std::atoi(next());
    else if (arg == "--port") net_port = std::atoi(next());
    else if (arg == "--loop-seconds") loop_seconds = std::atof(next());
    else if (arg == "--mem-profile") mem_profile = true;
    else if (arg == "--trace-out") trace_out = next();
    else if (arg == "--timeline-out") timeline_out = next();
    else if (arg == "--trace-detail") {
      const std::string d = next();
      if (d == "lifecycle") trace_detail = obs::TraceDetail::Lifecycle;
      else if (d == "phases") trace_detail = obs::TraceDetail::Phases;
      else if (d == "ops") trace_detail = obs::TraceDetail::Ops;
      else return usage();
    }
    else if (arg == "--threads") {
      const long long t = std::atoll(next());
      if (t <= 0) return usage();
      ThreadPool::set_threads(static_cast<std::size_t>(t));
    }
    else if (arg == "--isa") {
      const char* value = next();
      try {
        simd::set_isa(simd::parse_isa(value));
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "invalid --isa value \"%s\": %s\n", value, e.what());
        return 2;
      }
    }
    else return usage();
  }
  if (workers == 0 || jobs == 0 || queue == 0) return usage();

  // A small mixed workload menu; shared_ptr so hundreds of jobs share graphs.
  const workloads::CkksWl w = workloads::CkksWl::paper(24);
  std::vector<std::shared_ptr<const metaop::OpGraph>> graphs;
  graphs.push_back(std::make_shared<metaop::OpGraph>(workloads::build_pmult(w)));
  graphs.push_back(std::make_shared<metaop::OpGraph>(workloads::build_hadd(w)));
  graphs.push_back(std::make_shared<metaop::OpGraph>(workloads::build_rotation(w)));
  graphs.push_back(std::make_shared<metaop::OpGraph>(workloads::build_keyswitch(w)));

  // Tracing + flight recorder: on whenever an output file or the live
  // introspection window wants them.
  const bool tracing =
      !trace_out.empty() || !timeline_out.empty() || introspect_port >= 0;
  obs::TraceSink trace_sink;
  obs::EventLog event_log;
  obs::Timeline timeline(!timeline_out.empty());

  svc::RunnerOptions opts;
  opts.workers = workers;
  opts.queue_capacity = queue;
  // Tenancy smoke mode: per-tenant lanes + svc.tenant.* metrics, but the
  // zero-initialized (unlimited) policy so no job is ever quota-rejected.
  for (std::size_t t = 0; t < tenants; ++t) {
    opts.tenants.policies["tenant-" + std::to_string(t)] = svc::TenantPolicy{};
  }
  if (tracing) {
    opts.trace = &trace_sink;
    opts.trace_detail = trace_detail;
    opts.log = &event_log;
    if (timeline.enabled()) opts.timeline = &timeline;
  }
  svc::JobRunner runner(opts);

  // Live introspection window: /metrics merges the runner's svc.* snapshot
  // (latency histograms included) with the shared pool's substrate.* view;
  // /tracez and /logz serve the span ring and the flight recorder live.
  std::unique_ptr<svc::IntrospectionServer> introspect;
  if (introspect_port >= 0) {
    svc::IntrospectionOptions iopts;
    iopts.trace = &trace_sink;
    iopts.log = &event_log;
    introspect = std::make_unique<svc::IntrospectionServer>(
        introspect_port,
        [&runner] {
          obs::Registry reg = runner.snapshot();
          reg.merge(obs::substrate_registry());
          return reg;
        },
        [&runner] { return runner.status_json(); }, iopts);
    if (!introspect->ok()) {
      std::fprintf(stderr, "introspection server failed: %s\n",
                   introspect->error().c_str());
      return 1;
    }
    std::printf(
        "introspection on http://127.0.0.1:%d "
        "(/healthz /metrics /statusz /buildz /tracez /logz)\n",
        introspect->port());
    std::fflush(stdout);
  }

  // Framed TCP job server (src/net): remote clients name catalog workloads
  // and submit with idempotency keys; resubmission after a torn connection is
  // exactly-once (re-attach or cached replay).
  std::unique_ptr<net::Server> net_server;
  if (net_port >= 0) {
    net::WorkloadCatalog catalog;
    catalog["pmult"] = graphs[0];
    catalog["hadd"] = graphs[1];
    catalog["rotation"] = graphs[2];
    catalog["keyswitch"] = graphs[3];
    net::ServerOptions nopts;
    nopts.port = net_port;
    nopts.mem_profile = mem_profile;
    if (tracing) {
      nopts.trace = &trace_sink;
      nopts.log = &event_log;
    }
    net_server =
        std::make_unique<net::Server>(runner, std::move(catalog), nopts);
    if (!net_server->start()) {
      std::fprintf(stderr, "job server failed: %s\n",
                   net_server->error().c_str());
      return 1;
    }
    std::printf("job server on 127.0.0.1:%d (protocol v%u, "
                "workloads pmult/hadd/rotation/keyswitch)\n",
                net_server->port(),
                static_cast<unsigned>(net::kProtocolVersion));
    std::fflush(stdout);
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<svc::JobPtr> handles;
  handles.reserve(jobs);
  std::size_t submitted_jobs = 0;
  const auto submit_batch = [&] {
    for (std::size_t i = 0; i < jobs; ++i, ++submitted_jobs) {
      svc::JobSpec spec;
      spec.name = "job-" + std::to_string(submitted_jobs);
      spec.graph = graphs[i % graphs.size()];
      spec.engine = (i % 2 == 0) ? svc::Engine::Level : svc::Engine::Event;
      spec.mem_profile = mem_profile;
      if (tenants > 0) spec.tenant = "tenant-" + std::to_string(i % tenants);
      if (fault_rate > 0 && i % 3 == 0) {
        spec.fault_enabled = true;
        spec.fault.seed = seed + submitted_jobs;
        spec.fault.compute_fault_rate = spec.fault.sram_fault_rate =
            spec.fault.hbm_fault_rate = fault_rate;
        spec.max_attempts = 3;
      }
      if (deadline_ms > 0) {
        spec.deadline =
            std::chrono::microseconds(static_cast<long long>(deadline_ms * 1000.0));
      }
      handles.push_back(runner.submit(std::move(spec)));
    }
  };
  submit_batch();
  runner.drain();
  while (g_stop == 0 && loop_seconds > 0 &&
         std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                 .count() < loop_seconds) {
    submit_batch();
    runner.drain();
  }
  // With the job server up and no bounded soak, keep serving until a signal
  // (or until --loop-seconds elapses when one was given).
  while (net_server != nullptr && g_stop == 0 &&
         (loop_seconds <= 0 ||
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                  .count() < loop_seconds)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // Graceful drain, signal-initiated or natural end of the soak: stop
  // accepting (remote clients get a typed Draining frame), checkpoint and
  // terminate in-flight jobs, then fall through to flush metrics/trace and
  // exit 0. Remote retries land on the next instance via their idempotency
  // keys.
  const bool signalled = g_stop != 0;
  if (net_server != nullptr) net_server->drain("server draining");
  if (signalled) {
    std::printf("signal received: draining (checkpointing in-flight jobs)\n");
    runner.shutdown();  // cancels in-flight work; checkpoints land on handles
  } else {
    runner.drain();
  }
  if (net_server != nullptr) net_server->stop();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
          .count();

  const obs::Registry reg = runner.snapshot();
  const u64 submitted = reg.counter(svc::metrics::kSubmitted);
  const u64 completed = reg.counter(svc::metrics::kCompleted);
  const u64 retried_ok = reg.counter(svc::metrics::kCompleted, {{"retried", "true"}});
  const u64 failed = reg.counter(svc::metrics::kFailed);
  const u64 cancelled = reg.counter(svc::metrics::kCancelled);
  const u64 expired = reg.counter(svc::metrics::kDeadlineExpired);
  const u64 rejected = reg.total_over_tags("svc.rejected{");
  const u64 retries = reg.counter(svc::metrics::kRetries);

  std::printf("alchemist_serve: %zu jobs, %zu workers, queue capacity %zu\n",
              submitted_jobs, workers, queue);
  std::printf("  completed          %llu  (%llu after retry, %llu sim retries)\n",
              static_cast<unsigned long long>(completed),
              static_cast<unsigned long long>(retried_ok),
              static_cast<unsigned long long>(retries));
  std::printf("  failed             %llu\n", static_cast<unsigned long long>(failed));
  std::printf("  cancelled          %llu\n", static_cast<unsigned long long>(cancelled));
  std::printf("  deadline-expired   %llu\n", static_cast<unsigned long long>(expired));
  std::printf("  shed / breaker     %llu\n", static_cast<unsigned long long>(rejected));
  std::printf("  wall               %.2f ms\n", wall_ms);
  std::printf("  throughput         %.0f jobs/s\n",
              static_cast<double>(submitted) * 1000.0 / wall_ms);
  std::printf("  latency p50/p99    %.2f / %.2f ms\n",
              reg.gauge(svc::metrics::kLatencyUs, {{"p", "50"}}) / 1000.0,
              reg.gauge(svc::metrics::kLatencyUs, {{"p", "99"}}) / 1000.0);
  for (const auto& [key, hist] : reg.histograms()) {
    if (key.rfind(std::string(svc::metrics::kLatencyTotalUs) + "{class=", 0) == 0 &&
        hist.count() > 0) {
      std::printf("  %-32s p50/p95/p99  %.2f / %.2f / %.2f ms  (n=%llu)\n",
                  key.c_str(), hist.percentile(50.0) / 1000.0,
                  hist.percentile(95.0) / 1000.0, hist.percentile(99.0) / 1000.0,
                  static_cast<unsigned long long>(hist.count()));
    }
  }
  std::printf("  yield              %.1f %%\n",
              100.0 * static_cast<double>(completed) / static_cast<double>(submitted));
  if (mem_profile) {
    std::printf("  memory             %llu HBM bytes (%llu key bytes, "
                "%llu re-fetched), scratch peak %.0f / %.0f bytes\n",
                static_cast<unsigned long long>(
                    reg.counter(sim::metrics::kMemBytes)),
                static_cast<unsigned long long>(
                    reg.counter(sim::metrics::kMemKeyBytes)),
                static_cast<unsigned long long>(
                    reg.counter(sim::metrics::kMemKeyRefetchBytes)),
                reg.gauge(sim::metrics::kMemScratchPeak),
                reg.gauge(sim::metrics::kMemScratchCapacity));
  }
  if (net_server != nullptr) {
    const obs::Registry net_reg = net_server->snapshot();
    std::printf("  net                %llu conns, %llu submits, %llu attached, "
                "%llu replayed, %llu results\n",
                static_cast<unsigned long long>(
                    net_reg.counter(net::metrics::kAccepted)),
                static_cast<unsigned long long>(
                    net_reg.counter(net::metrics::kSubmitted)),
                static_cast<unsigned long long>(
                    net_reg.counter(net::metrics::kAttached)),
                static_cast<unsigned long long>(
                    net_reg.counter(net::metrics::kReplayed)),
                static_cast<unsigned long long>(
                    net_reg.counter(net::metrics::kResults)));
  }
  if (signalled) {
    std::size_t checkpointed = 0;
    for (const svc::JobPtr& h : handles) {
      if (h->checkpoint().valid()) ++checkpointed;
    }
    std::printf("  drained            %zu in-flight job(s) left a checkpoint\n",
                checkpointed);
  }
  for (std::size_t t = 0; t < tenants; ++t) {
    const std::string name = "tenant-" + std::to_string(t);
    const auto& hist =
        reg.histogram(svc::metrics::kLatencyTotalUs, {{"tenant", name}});
    std::printf("  %-18s submitted %llu, completed %llu, p50/p99 %.2f / %.2f ms\n",
                name.c_str(),
                static_cast<unsigned long long>(reg.counter(
                    svc::metrics::kTenantSubmitted, {{"tenant", name}})),
                static_cast<unsigned long long>(
                    reg.counter(svc::metrics::kTenantTerminal,
                                {{"state", "completed"}, {"tenant", name}})),
                hist.percentile(50.0) / 1000.0, hist.percentile(99.0) / 1000.0);
  }

  if (tracing) {
    // Flight-recorder digest: span/log volume plus the slowest job's
    // per-stage TraceSummary, so the trace id to chase is in the output.
    std::printf("  spans              %llu recorded, %llu dropped; "
                "%llu log events\n",
                static_cast<unsigned long long>(trace_sink.recorded()),
                static_cast<unsigned long long>(trace_sink.dropped()),
                static_cast<unsigned long long>(event_log.recorded()));
    const svc::Job* slowest = nullptr;
    svc::TraceSummary slow{};
    for (const svc::JobPtr& h : handles) {
      const svc::TraceSummary s = h->trace_summary();
      if (slowest == nullptr || s.total_us > slow.total_us) {
        slowest = h.get();
        slow = s;
      }
    }
    if (slowest != nullptr) {
      std::printf("  slowest trace      0x%016llx  queue %.2f ms, run %.2f ms "
                  "(backoff %.2f, sim %.2f), %zu attempt(s), %llu ckpt bytes\n",
                  static_cast<unsigned long long>(slow.trace_id),
                  slow.queue_us / 1000.0, slow.run_us / 1000.0,
                  slow.backoff_us / 1000.0, slow.sim_us / 1000.0, slow.attempts,
                  static_cast<unsigned long long>(slow.checkpoint_bytes));
    }
  }
  if (!trace_out.empty()) {
    if (!obs::write_spans_file(trace_out, trace_sink, "alchemist_serve")) {
      std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
      return 1;
    }
    std::printf("  trace              %s (spans.v1)\n", trace_out.c_str());
  }
  if (!timeline_out.empty()) {
    obs::merge_spans_into_timeline(trace_sink.snapshot(), timeline);
    std::ofstream f(timeline_out);
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", timeline_out.c_str());
      return 1;
    }
    timeline.write_chrome_trace(f);
    std::printf("  timeline           %s (chrome trace + span tracks + flows)\n",
                timeline_out.c_str());
  }

  // The terminal-state counters must partition svc.submitted, and every
  // handle must have reached a terminal state once drain() returned.
  if (completed + failed + cancelled + expired + rejected != submitted) {
    std::fprintf(stderr, "terminal-state counters do not partition submitted\n");
    return 1;
  }
  for (const svc::JobPtr& h : handles) {
    if (!h->terminal()) {
      std::fprintf(stderr, "job %s not terminal after drain\n", h->spec().name.c_str());
      return 1;
    }
  }
  return 0;
}
