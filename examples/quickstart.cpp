// Quickstart: encrypted arithmetic with the CKKS library.
//
// Encodes two real vectors, encrypts them, computes (a + b) and (a * b)
// homomorphically (with relinearization and rescaling), rotates a ciphertext,
// and decrypts — printing expected vs decrypted values.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "ckks/encoder.h"
#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/keygen.h"

int main() {
  using namespace alchemist::ckks;

  // Small parameter set: N = 2048 (1024 slots), 4 levels, dnum = 2.
  const CkksParams params = CkksParams::toy(2048, 4, 2);
  auto ctx = std::make_shared<CkksContext>(params);

  CkksEncoder encoder(ctx);
  KeyGenerator keygen(ctx, /*seed=*/42);
  Encryptor encryptor(ctx, keygen.make_public_key());
  Decryptor decryptor(ctx, keygen.secret_key());
  Evaluator evaluator(ctx);
  const RelinKeys relin = keygen.make_relin_keys();
  const GaloisKeys galois = keygen.make_galois_keys({1});

  std::printf("CKKS quickstart: N=%zu, %zu slots, L=%zu, scale=2^%d\n",
              params.n, params.slots(), params.num_levels, params.log_scale);

  // Two messages.
  std::vector<double> a = {1.5, -2.25, 3.0, 0.5};
  std::vector<double> b = {0.5, 4.0, -1.0, 2.0};
  const double scale = params.scale();
  const Ciphertext ct_a =
      encryptor.encrypt(encoder.encode(std::span<const double>(a), 4, scale));
  const Ciphertext ct_b =
      encryptor.encrypt(encoder.encode(std::span<const double>(b), 4, scale));

  // Homomorphic add.
  const auto sum = decryptor.decrypt(evaluator.add(ct_a, ct_b), encoder);
  // Homomorphic multiply + relinearize + rescale.
  const auto prod = decryptor.decrypt(
      evaluator.rescale(evaluator.multiply(ct_a, ct_b, relin)), encoder);
  // Rotate left by one slot.
  const auto rot = decryptor.decrypt(evaluator.rotate(ct_a, 1, galois), encoder);

  std::printf("\n%-8s %-10s %-22s %-22s %-14s\n", "slot", "a+b", "decrypted(a+b)",
              "decrypted(a*b)", "rot(a,1)");
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::printf("%-8zu %-10.3f %-22.6f %-22.6f %-14.3f\n", i, a[i] + b[i],
                sum[i].real(), prod[i].real(), rot[i].real());
  }
  std::printf("\nexpected products: ");
  for (std::size_t i = 0; i < a.size(); ++i) std::printf("%.3f ", a[i] * b[i]);
  std::printf("\nexpected rotation: %s\n",
              "a shifted left by one (slot i holds a[i+1])");
  return 0;
}
