// Command-line front end to the Alchemist simulator.
//
//   alchemist_cli <workload> [options]
//
// Workloads: pmult hadd keyswitch cmult rotation rescale
//            bootstrap bootstrap-hoisted helr mnist mnist-enc
//            pbs-i pbs-ii bfv-cmult
// Options:
//   --accelerator <Alchemist|SHARP|CraterLake|Matcha|Strix>   (default Alchemist)
//   --units <n>            computing units (Alchemist only, default 128)
//   --hbm <GB/s>           off-chip bandwidth (Alchemist only, default 1000)
//   --stream-fraction <f>  fraction of key traffic streamed from HBM (default 1.0)
//   --level <L>            CKKS level (default 44)
//   --batch <B>            TFHE PBS batch (default 16)
//   --event                use the discrete-event simulator
//   --profile              attach the per-unit UnitProfiler and print the
//                          utilization.v1 cycle-bucket breakdown (busy /
//                          reduction / scratchpad stall / dependency stall /
//                          idle); with --trace-out, per-unit counter tracks
//                          ride along in the trace; Alchemist only
//   --mem-profile          attach the MemProfiler and print the memory.v1
//                          summary (HBM bytes attributed by operand class,
//                          key-fetch ledger, scratchpad high-water mark);
//                          with --trace-out, HBM-bandwidth and scratchpad
//                          counter tracks ride along; Alchemist only
//   --trace-out <path>     write a Chrome trace_event JSON of the run
//                          (open at https://ui.perfetto.dev); Alchemist only
//   --metrics-out <path>   write the run's counter registry as JSON
//                          (schema alchemist.metrics.v1)
//   --threads <n>          width of the shared compute pool functional
//                          kernels fan out on (default ALCHEMIST_THREADS or
//                          hardware concurrency; 1 = sequential)
//   --isa <i>              force the SIMD dispatch of the NTT/accumulator
//                          kernels: scalar | avx2 | avx512 | native
//                          (default ALCHEMIST_ISA or best CPUID-supported;
//                          unsupported values exit 2)
// Fault modeling (Alchemist only; see src/fault/fault_model.h):
//   --fault-seed <s>       RNG seed for transient fault sampling (default 0xfa117)
//   --fault-rate <r>       transient fault rate applied to all three domains
//                          (compute per core-cycle, SRAM per word access,
//                          HBM per byte streamed; default 0 = no faults)
//   --fault-policy <p>     none | detect-retry | dmr  (default none)
//   --mask-units <list>    comma-separated permanently-failed unit ids, e.g.
//                          "0,5,17"; slot layouts re-partition over the rest
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/simd.h"
#include "common/thread_pool.h"
#include "obs/report.h"
#include "obs/timeline.h"

#include "arch/baselines.h"
#include "arch/config.h"
#include "arch/energy_model.h"
#include "fault/fault_model.h"
#include "sim/alchemist_sim.h"
#include "sim/baseline_sim.h"
#include "sim/event_sim.h"
#include "sim/unit_profiler.h"
#include "workloads/bfv_workloads.h"
#include "workloads/ckks_workloads.h"
#include "workloads/tfhe_workloads.h"

namespace {

using namespace alchemist;

int usage() {
  std::fprintf(stderr,
               "usage: alchemist_cli <workload> [--accelerator A] [--units N]\n"
               "       [--hbm GB/s] [--stream-fraction f] [--level L]\n"
               "       [--batch B] [--event] [--profile] [--mem-profile]\n"
               "       [--trace-out T.json] [--metrics-out M.json]\n"
               "       [--fault-seed S] [--fault-rate R] [--fault-policy none|detect-retry|dmr]\n"
               "       [--mask-units i,j,...] [--threads N] [--isa scalar|avx2|avx512|native]\n"
               "workloads: pmult hadd keyswitch cmult rotation rescale bootstrap\n"
               "           bootstrap-hoisted helr mnist mnist-enc pbs-i pbs-ii bfv-cmult\n");
  return 2;
}

// Strict numeric parsing: the whole token must be a positive decimal integer.
std::size_t parse_count(const char* flag, const char* s) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0' || std::strchr(s, '-') != nullptr ||
      v == 0) {
    std::fprintf(stderr, "invalid %s value \"%s\": expected a positive integer\n",
                 flag, s);
    std::exit(2);
  }
  return static_cast<std::size_t>(v);
}

double parse_real(const char* flag, const char* s, double lo, double hi) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || !(v >= lo && v <= hi)) {
    std::fprintf(stderr, "invalid %s value \"%s\": expected a number in [%g, %g]\n",
                 flag, s, lo, hi);
    std::exit(2);
  }
  return v;
}

u64 parse_seed(const char* flag, const char* s) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 0);
  if (errno != 0 || end == s || *end != '\0' || std::strchr(s, '-') != nullptr) {
    std::fprintf(stderr, "invalid %s value \"%s\": expected an unsigned integer\n",
                 flag, s);
    std::exit(2);
  }
  return static_cast<u64>(v);
}

std::vector<std::size_t> parse_unit_list(const char* s) {
  std::vector<std::size_t> units;
  const std::string list = s;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    std::size_t next = list.find(',', pos);
    if (next == std::string::npos) next = list.size();
    const std::string item = list.substr(pos, next - pos);
    if (item.empty() || item.find_first_not_of("0123456789") != std::string::npos) {
      std::fprintf(stderr,
                   "invalid --mask-units entry \"%s\": expected comma-separated "
                   "non-negative unit ids like \"0,5,17\"\n",
                   item.c_str());
      std::exit(2);
    }
    units.push_back(
        static_cast<std::size_t>(std::strtoull(item.c_str(), nullptr, 10)));
    pos = next + 1;
  }
  return units;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string workload = argv[1];

  std::string accelerator = "Alchemist";
  std::string trace_out, metrics_out;
  std::size_t units = 128, batch = 16, level = 44;
  double hbm = 1000.0, stream_fraction = 1.0;
  bool use_event = false;
  bool profile = false;
  bool mem_profile = false;
  fault::FaultConfig fault_cfg;
  bool fault_requested = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--accelerator") accelerator = next();
    else if (arg == "--units") units = parse_count("--units", next());
    else if (arg == "--hbm") hbm = parse_real("--hbm", next(), 1e-3, 1e9);
    else if (arg == "--stream-fraction") stream_fraction = parse_real("--stream-fraction", next(), 0.0, 1.0);
    else if (arg == "--level") level = parse_count("--level", next());
    else if (arg == "--batch") batch = parse_count("--batch", next());
    else if (arg == "--event") use_event = true;
    else if (arg == "--profile") profile = true;
    else if (arg == "--mem-profile") mem_profile = true;
    else if (arg == "--trace-out") trace_out = next();
    else if (arg == "--metrics-out") metrics_out = next();
    else if (arg == "--threads") ThreadPool::set_threads(parse_count("--threads", next()));
    else if (arg == "--isa") {
      const char* value = next();
      try {
        simd::set_isa(simd::parse_isa(value));
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "invalid --isa value \"%s\": %s\n", value, e.what());
        return 2;
      }
    }
    else if (arg == "--fault-seed") {
      fault_cfg.seed = parse_seed("--fault-seed", next());
      fault_requested = true;
    } else if (arg == "--fault-rate") {
      const double rate = parse_real("--fault-rate", next(), 0.0, 1.0);
      fault_cfg.compute_fault_rate = fault_cfg.sram_fault_rate =
          fault_cfg.hbm_fault_rate = rate;
      fault_requested = true;
    } else if (arg == "--fault-policy") {
      const char* policy = next();
      try {
        fault_cfg.policy = fault::policy_from_string(policy);
      } catch (const std::exception&) {
        std::fprintf(stderr,
                     "unknown fault policy \"%s\": expected none, detect-retry or dmr\n",
                     policy);
        return 2;
      }
      fault_requested = true;
    } else if (arg == "--mask-units") {
      fault_cfg.masked_units = parse_unit_list(next());
      fault_requested = true;
    }
    else return usage();
  }

  // Build the requested op graph.
  workloads::CkksWl cw = workloads::CkksWl::paper(level);
  cw.hbm_stream_fraction = stream_fraction;
  workloads::TfheWl ti = workloads::TfheWl::set_i();
  workloads::TfheWl tii = workloads::TfheWl::set_ii();
  ti.batch = tii.batch = batch;
  ti.hbm_stream_fraction = tii.hbm_stream_fraction = stream_fraction;
  workloads::BfvWl bw;
  bw.hbm_stream_fraction = stream_fraction;

  metaop::OpGraph graph;
  double ops_in_graph = 1.0;
  if (workload == "pmult") graph = workloads::build_pmult(cw);
  else if (workload == "hadd") graph = workloads::build_hadd(cw);
  else if (workload == "keyswitch") graph = workloads::build_keyswitch(cw);
  else if (workload == "cmult") graph = workloads::build_cmult(cw);
  else if (workload == "rotation") graph = workloads::build_rotation(cw);
  else if (workload == "rescale") graph = workloads::build_rescale(cw);
  else if (workload == "bootstrap") graph = workloads::build_bootstrapping(cw, false);
  else if (workload == "bootstrap-hoisted") graph = workloads::build_bootstrapping(cw, true);
  else if (workload == "helr") graph = workloads::build_helr_iteration(cw);
  else if (workload == "mnist") graph = workloads::build_lola_mnist(false);
  else if (workload == "mnist-enc") graph = workloads::build_lola_mnist(true);
  else if (workload == "pbs-i") { graph = workloads::build_pbs(ti); ops_in_graph = static_cast<double>(batch); }
  else if (workload == "pbs-ii") { graph = workloads::build_pbs(tii); ops_in_graph = static_cast<double>(batch); }
  else if (workload == "bfv-cmult") graph = workloads::build_bfv_cmult(bw);
  else return usage();

  // Simulate.
  sim::SimResult result;
  obs::Timeline timeline;
  if (accelerator == "Alchemist") {
    arch::ArchConfig cfg = arch::ArchConfig::alchemist();
    cfg.num_units = units;
    cfg.hbm_bw_gb_s = hbm;
    cfg.telemetry = !trace_out.empty();
    std::unique_ptr<fault::FaultModel> fault_model;
    try {
      fault_model = std::make_unique<fault::FaultModel>(fault_cfg, cfg.num_units);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad fault configuration: %s\n", e.what());
      return 2;
    }
    fault::FaultModel* fault = fault_requested ? fault_model.get() : nullptr;
    sim::UnitProfiler prof;
    sim::UnitProfiler* profiler = profile ? &prof : nullptr;
    sim::MemProfiler mem_prof;
    sim::MemProfiler* mem = mem_profile ? &mem_prof : nullptr;
    result = use_event ? sim::simulate_alchemist_events(graph, cfg, &timeline, fault,
                                                        nullptr, profiler, mem)
                       : sim::simulate_alchemist(graph, cfg, &timeline, fault,
                                                 nullptr, profiler, mem);
    const auto energy = arch::energy_model(cfg, result);
    std::printf("workload:      %s (%zu ops)\n", graph.name.c_str(), graph.ops.size());
    std::printf("accelerator:   Alchemist, %zu units, %.0f GB/s HBM%s\n", units, hbm,
                use_event ? " (event-driven model)" : "");
    if (fault && fault->enabled()) {
      std::printf("fault model:   policy=%s rate=%g seed=0x%llx masked=%zu/%zu units\n",
                  fault::to_string(fault_cfg.policy), fault_cfg.compute_fault_rate,
                  static_cast<unsigned long long>(fault_cfg.seed),
                  fault->masked_count(), cfg.num_units);
    }
    std::printf("cycles:        %llu\n", static_cast<unsigned long long>(result.cycles));
    std::printf("time:          %.3f us  (%.1f ops/s)\n", result.time_us,
                ops_in_graph * 1e6 / result.time_us);
    std::printf("utilization:   %.3f\n", result.utilization);
    std::printf("mem stalls:    %llu cycles, transpose: %llu cycles\n",
                static_cast<unsigned long long>(result.mem_stall_cycles),
                static_cast<unsigned long long>(result.transpose_cycles));
    std::printf("word mults:    %llu\n",
                static_cast<unsigned long long>(result.total_mults));
    std::printf("energy:        %.3f mJ (%.1f W average)\n",
                energy.total_joules * 1e3, energy.average_watts);
    if (profile && result.profile.enabled()) {
      const obs::UnitCycles agg = result.profile.aggregate();
      const double denom = static_cast<double>(result.profile.total_cycles) *
                           static_cast<double>(result.profile.units.size());
      auto pct = [&](u64 c) { return 100.0 * static_cast<double>(c) / denom; };
      std::printf("profile:       utilization.v1, %zu units x %llu cycles\n",
                  result.profile.units.size(),
                  static_cast<unsigned long long>(result.profile.total_cycles));
      std::printf("  busy             %6.2f %%\n", pct(agg.busy));
      std::printf("  reduction        %6.2f %%\n", pct(agg.reduction));
      std::printf("  stall:scratchpad %6.2f %%\n", pct(agg.stall_scratchpad));
      std::printf("  stall:dependency %6.2f %%\n", pct(agg.stall_dependency));
      std::printf("  idle             %6.2f %%\n", pct(agg.idle));
      std::printf("  occupancy        %6.3f  (sim utilization %.3f)\n",
                  result.profile.occupancy(), result.utilization);
      for (const auto& [cls, cycles] : agg.class_occupied) {
        std::printf("  class %-10s %6.2f %% of occupied core time\n", cls.c_str(),
                    100.0 * static_cast<double>(cycles) /
                        static_cast<double>(agg.occupied() ? agg.occupied() : 1));
      }
    }
    if (mem_profile && result.mem_profile.enabled()) {
      const obs::MemoryProfile& m = result.mem_profile;
      const double hbm_peak = cfg.hbm_bytes_per_cycle() *
                              static_cast<double>(m.total_cycles);
      std::printf("memory:        memory.v1, %llu HBM bytes (%.1f %% of peak over the run)\n",
                  static_cast<unsigned long long>(m.total_bytes),
                  hbm_peak > 0 ? 100.0 * static_cast<double>(m.total_bytes) / hbm_peak
                               : 0.0);
      for (const auto& [operand, classes] : m.attributed) {
        u64 operand_bytes = 0;
        for (const auto& [cls, bytes] : classes) operand_bytes += bytes;
        std::printf("  %-14s %12llu bytes (%5.1f %%)\n", operand.c_str(),
                    static_cast<unsigned long long>(operand_bytes),
                    m.total_bytes > 0
                        ? 100.0 * static_cast<double>(operand_bytes) /
                              static_cast<double>(m.total_bytes)
                        : 0.0);
      }
      std::printf("  keys:          %zu tracked, %llu bytes fetched, %llu re-fetched\n",
                  m.keys.size(),
                  static_cast<unsigned long long>(m.key_fetch_bytes()),
                  static_cast<unsigned long long>(m.key_refetch_bytes()));
      std::printf("  scratchpad:    peak %llu / %llu bytes, %llu evictions\n",
                  static_cast<unsigned long long>(m.scratch_peak_bytes),
                  static_cast<unsigned long long>(m.scratch_capacity_bytes),
                  static_cast<unsigned long long>(m.evictions));
    }
  } else {
    const arch::AcceleratorSpec spec = arch::spec_by_name(accelerator);
    result = sim::simulate_modular(graph, spec);
    std::printf("workload:      %s (%zu ops)\n", graph.name.c_str(), graph.ops.size());
    std::printf("accelerator:   %s (modular FU model)\n", spec.name.c_str());
    std::printf("cycles:        %llu\n", static_cast<unsigned long long>(result.cycles));
    std::printf("time:          %.3f us  (%.1f ops/s)\n", result.time_us,
                ops_in_graph * 1e6 / result.time_us);
    std::printf("utilization:   %.3f\n", result.utilization);
  }

  // Observability artifacts.
  if (!trace_out.empty()) {
    if (accelerator != "Alchemist") {
      std::fprintf(stderr, "--trace-out is only supported for the Alchemist simulators\n");
      return 2;
    }
    std::ofstream out(trace_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
      return 1;
    }
    timeline.write_chrome_trace(out);
    std::printf("trace:         %s (open in https://ui.perfetto.dev)\n", trace_out.c_str());
  }
  if (!metrics_out.empty()) {
    obs::MetricsReport report("alchemist_cli");
    report.add(result);
    if (!report.write_file(metrics_out)) {
      std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
      return 1;
    }
    std::printf("metrics:       %s\n", metrics_out.c_str());
  }
  return 0;
}
