// Architecture exploration with the cycle simulator.
//
// Demonstrates the simulator's public API: build a workload graph, sweep
// configurations (units, frequency, bandwidth), and read back cycles,
// utilization and stall breakdowns — the workflow behind §5.4's DSE.
#include <cstdio>

#include "arch/area_model.h"
#include "arch/config.h"
#include "sim/alchemist_sim.h"
#include "sim/cpu_model.h"
#include "workloads/ckks_workloads.h"
#include "workloads/tfhe_workloads.h"

int main() {
  using namespace alchemist;

  workloads::CkksWl w = workloads::CkksWl::paper(44);
  w.hbm_stream_fraction = 0.05;
  const auto boot = workloads::build_bootstrapping(w, /*hoisting=*/true);
  const auto pbs = workloads::build_pbs(workloads::TfheWl::set_i());

  std::printf("Workload: %s (%zu ops), %s (%zu ops)\n\n", boot.name.c_str(),
              boot.ops.size(), pbs.name.c_str(), pbs.ops.size());

  std::printf("--- Sweep: computing units (bootstrapping) ---\n");
  std::printf("%-8s %-10s %-10s %-12s %-12s\n", "units", "ms", "util",
              "area mm^2", "perf/area");
  for (std::size_t units : {64, 128, 256}) {
    arch::ArchConfig cfg = arch::ArchConfig::alchemist();
    cfg.num_units = units;
    const auto r = sim::simulate_alchemist(boot, cfg);
    const double area = arch::area_model(cfg).total_mm2;
    std::printf("%-8zu %-10.2f %-10.2f %-12.1f %-12.4f\n", units, r.time_us / 1e3,
                r.utilization, area, 1e3 / r.time_us / area);
  }

  std::printf("\n--- Sweep: HBM bandwidth (bootstrapping, fresh keys) ---\n");
  std::printf("%-12s %-10s %-14s\n", "GB/s", "ms", "stall kcycles");
  workloads::CkksWl fresh = workloads::CkksWl::paper(44);
  const auto boot_fresh = workloads::build_bootstrapping(fresh, true);
  for (double bw : {250.0, 500.0, 1000.0, 2000.0}) {
    arch::ArchConfig cfg = arch::ArchConfig::alchemist();
    cfg.hbm_bw_gb_s = bw;
    const auto r = sim::simulate_alchemist(boot_fresh, cfg);
    std::printf("%-12.0f %-10.2f %-14llu\n", bw, r.time_us / 1e3,
                static_cast<unsigned long long>(r.mem_stall_cycles / 1000));
  }

  std::printf("\n--- Cross-scheme check: one config, both schemes ---\n");
  const auto cfg = arch::ArchConfig::alchemist();
  for (const auto* g : {&boot, &pbs}) {
    const auto r = sim::simulate_alchemist(*g, cfg);
    std::printf("%-24s %10.1f us   util %.2f   transpose %llu kcyc\n",
                g->name.c_str(), r.time_us, r.utilization,
                static_cast<unsigned long long>(r.transpose_cycles / 1000));
  }

  std::printf("\n--- CPU reference (cost model) ---\n");
  std::printf("bootstrapping on one CPU thread: ~%.1f s (model; %.2f ns/mult)\n",
              sim::cpu_time_us(boot) / 1e6, sim::cpu_ns_per_modmul());
  return 0;
}
