// Exact encrypted tallying with BFV — the paper's *other* arithmetic scheme.
//
// A private election: each ballot is a one-hot vector over the candidates,
// encrypted under BFV. The tallying server homomorphically accumulates all
// ballots and additionally computes an encrypted weighted score — all
// arithmetic is *exact* modular integer math (no CKKS-style approximation),
// which is what BFV exists for.
#include <cstdio>
#include <memory>
#include <vector>

#include "bfv/bfv.h"
#include "common/rng.h"

int main() {
  using namespace alchemist;
  using namespace alchemist::bfv;

  auto ctx = std::make_shared<BfvContext>(BfvParams::toy(1024));
  BfvEncoder encoder(ctx);
  BfvKeyGenerator keygen(ctx, 11);
  BfvEncryptor encryptor(ctx, keygen.make_public_key());
  BfvDecryptor decryptor(ctx, keygen.secret_key());
  BfvEvaluator evaluator(ctx);
  const BfvRelinKey rk = keygen.make_relin_key();

  std::printf("BFV private election: N=%zu slots, t=%llu, q=2^%d-ish (q mod t = %llu)\n",
              ctx->degree(), static_cast<unsigned long long>(ctx->t()),
              ctx->params().q_bits,
              static_cast<unsigned long long>(ctx->q() % ctx->t()));

  const std::size_t candidates = 5;
  const std::size_t voters = 200;
  Rng rng(3);

  // Cast and encrypt ballots; tally homomorphically.
  std::vector<u64> true_tally(candidates, 0);
  BfvCiphertext tally =
      encryptor.encrypt(encoder.encode(std::vector<u64>(candidates, 0)));
  for (std::size_t v = 0; v < voters; ++v) {
    const std::size_t choice = rng.uniform(candidates);
    ++true_tally[choice];
    std::vector<u64> ballot(candidates, 0);
    ballot[choice] = 1;
    tally = evaluator.add(tally, encryptor.encrypt(encoder.encode(ballot)));
  }

  const auto counts = encoder.decode(decryptor.decrypt(tally));
  std::printf("\n%-12s %-10s %-10s\n", "candidate", "decrypted", "expected");
  for (std::size_t c = 0; c < candidates; ++c) {
    std::printf("%-12zu %-10llu %-10llu %s\n", c,
                static_cast<unsigned long long>(counts[c]),
                static_cast<unsigned long long>(true_tally[c]),
                counts[c] == true_tally[c] ? "ok" : "WRONG");
  }

  // Weighted score under encryption: sum_c weight_c * count_c, exact.
  // (E.g. ranked voting where later preferences carry fewer points.)
  const std::vector<u64> weights = {5, 4, 3, 2, 1};
  BfvCiphertext weighted = evaluator.mul_plain(tally, encoder.encode(weights));
  // Squaring the tally (a genuine ciphertext x ciphertext multiply) gives
  // count^2 per slot — e.g. for computing the variance of the distribution.
  BfvCiphertext squares = evaluator.multiply(tally, tally, rk);

  const auto wscore = encoder.decode(decryptor.decrypt(weighted));
  const auto sq = encoder.decode(decryptor.decrypt(squares));
  std::printf("\nweighted points per candidate (exact): ");
  bool all_ok = true;
  for (std::size_t c = 0; c < candidates; ++c) {
    std::printf("%llu ", static_cast<unsigned long long>(wscore[c]));
    all_ok &= wscore[c] == weights[c] * true_tally[c];
    all_ok &= sq[c] == true_tally[c] * true_tally[c];
  }
  std::printf("\nsquared counts (ciphertext x ciphertext): ");
  for (std::size_t c = 0; c < candidates; ++c) {
    std::printf("%llu ", static_cast<unsigned long long>(sq[c]));
  }
  std::printf("\nall homomorphic results exact: %s\n", all_ok ? "yes" : "NO");
  return 0;
}
