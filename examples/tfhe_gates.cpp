// Encrypted boolean computation with TFHE gate bootstrapping.
//
// Builds a 4-bit ripple-carry adder from homomorphic XOR/AND/OR gates (every
// gate runs a programmable bootstrap) and verifies all sums. Uses fast toy
// parameters for the exhaustive sweep, then times one NAND at the real
// 128-bit-security parameter set I.
#include <chrono>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "tfhe/bootstrap.h"

namespace {

using namespace alchemist;
using namespace alchemist::tfhe;

struct EncryptedBits {
  LweSample sum;
  LweSample carry;
};

// One full adder: sum = a ^ b ^ cin, cout = (a & b) | (cin & (a ^ b)).
EncryptedBits full_adder(const LweSample& a, const LweSample& b,
                         const LweSample& cin, const BootstrapContext& ctx) {
  const LweSample axb = gate_xor(a, b, ctx);
  EncryptedBits out{gate_xor(axb, cin, ctx),
                    gate_or(gate_and(a, b, ctx), gate_and(cin, axb, ctx), ctx)};
  return out;
}

}  // namespace

int main() {
  Rng rng(2024);
  const TfheParams params = TfheParams::toy();
  const LweKey lwe_key = lwe_keygen(params.n_lwe, rng);
  const TrlweKey trlwe_key = trlwe_keygen(params, rng);
  const BootstrapContext ctx = make_bootstrap_context(params, lwe_key, trlwe_key, rng);

  std::printf("TFHE 4-bit encrypted adder (toy parameters, %zu gates per add)\n",
              static_cast<std::size_t>(4 * 5));

  int checked = 0, correct = 0;
  for (unsigned x = 0; x < 16; x += 3) {
    for (unsigned y = 0; y < 16; y += 5) {
      // Encrypt the operands bit by bit.
      std::vector<LweSample> xa, yb;
      for (int bit = 0; bit < 4; ++bit) {
        xa.push_back(encrypt_bit((x >> bit) & 1, lwe_key, params.lwe_sigma, rng));
        yb.push_back(encrypt_bit((y >> bit) & 1, lwe_key, params.lwe_sigma, rng));
      }
      // Ripple-carry addition under encryption.
      LweSample carry = lwe_trivial(params.n_lwe, torus_from_double(-0.125));
      unsigned result = 0;
      for (int bit = 0; bit < 4; ++bit) {
        const EncryptedBits fa = full_adder(xa[static_cast<std::size_t>(bit)],
                                            yb[static_cast<std::size_t>(bit)],
                                            carry, ctx);
        if (decrypt_bit(fa.sum, lwe_key)) result |= 1u << bit;
        carry = fa.carry;
      }
      if (decrypt_bit(carry, lwe_key)) result |= 1u << 4;

      const unsigned expected = x + y;
      ++checked;
      correct += result == expected ? 1 : 0;
      std::printf("  %2u + %2u = %2u  %s\n", x, y, result,
                  result == expected ? "ok" : "WRONG");
    }
  }
  std::printf("adder results: %d/%d correct\n\n", correct, checked);

  // One gate at the real 128-bit parameter set.
  std::printf("Timing one NAND at parameter set I (n=630, N=1024, l=3)...\n");
  Rng rng2(7);
  const TfheParams real = TfheParams::set_i();
  const LweKey lk = lwe_keygen(real.n_lwe, rng2);
  const TrlweKey tk = trlwe_keygen(real, rng2);
  const BootstrapContext rctx = make_bootstrap_context(real, lk, tk, rng2);
  const LweSample a = encrypt_bit(true, lk, real.lwe_sigma, rng2);
  const LweSample b = encrypt_bit(false, lk, real.lwe_sigma, rng2);
  const auto start = std::chrono::steady_clock::now();
  const LweSample nand = gate_nand(a, b, rctx);
  const auto stop = std::chrono::steady_clock::now();
  std::printf("  NAND(true, false) = %s in %.1f ms (software, single thread)\n",
              decrypt_bit(nand, lk) ? "true" : "false",
              std::chrono::duration<double, std::milli>(stop - start).count());
  std::printf("  (the Alchemist simulator bootstraps ~100k/s of these — see "
              "bench/fig6b_tfhe_pbs)\n");
  return 0;
}
