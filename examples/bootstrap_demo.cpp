// CKKS bootstrapping demo: exhaust a ciphertext's multiplicative budget, then
// refresh it and keep computing — the full ModRaise -> CoeffToSlot -> EvalMod
// -> SlotToCoeff pipeline, functional at reduced degree (N=128, 20 levels).
//
// The paper's evaluation (Fig. 6a) runs this workload at N=2^16, L=44 on the
// cycle simulator; this example shows the *cryptography* actually working.
#include <chrono>
#include <cstdio>
#include <memory>

#include "arch/config.h"
#include "ckks/bootstrap.h"
#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/keygen.h"
#include "sim/alchemist_sim.h"
#include "workloads/ckks_workloads.h"

int main() {
  using namespace alchemist;
  using namespace alchemist::ckks;

  CkksParams params = CkksParams::toy(128, 20, 4);
  params.prime_bits = 45;
  params.log_scale = 45;
  params.secret_hamming_weight = 32;  // sparse secret bounds the ModRaise I
  auto ctx = std::make_shared<CkksContext>(params);
  CkksEncoder encoder(ctx);
  KeyGenerator keygen(ctx, 31);
  Encryptor encryptor(ctx, keygen.make_public_key());
  Decryptor decryptor(ctx, keygen.secret_key());
  Evaluator evaluator(ctx);
  const RelinKeys relin = keygen.make_relin_keys();

  std::printf("building bootstrapping keys (Galois rotations + conjugation)...\n");
  const GaloisKeys galois = keygen.make_galois_keys(
      Bootstrapper::required_rotations(*ctx), /*include_conjugate=*/true);
  BootstrapConfig config;
  config.i_bound = 9.0;
  config.sine_degree = 140;
  const Bootstrapper boot(ctx, encoder, evaluator, relin, galois, config);
  std::printf("pipeline depth: %zu of %zu levels\n\n", boot.depth(),
              params.num_levels);

  // A message, squared once at the top of the chain...
  std::vector<double> z = {0.6, -0.8, 0.25, 0.9, -0.35};
  Ciphertext ct = encryptor.encrypt(encoder.encode(
      std::span<const double>(z), params.num_levels, params.scale()));
  ct = evaluator.rescale(evaluator.multiply(ct, ct, relin));

  // ...then deliberately dropped to level 1: multiplication is now impossible.
  ct = evaluator.mod_drop(ct, 1);
  std::printf("ciphertext at level %zu: out of multiplicative budget\n", ct.level);

  const auto start = std::chrono::steady_clock::now();
  Ciphertext refreshed = boot.bootstrap(ct);
  const auto stop = std::chrono::steady_clock::now();
  std::printf("bootstrapped to level %zu in %.0f ms (software, single thread)\n",
              refreshed.level,
              std::chrono::duration<double, std::milli>(stop - start).count());

  // Now we can keep computing: square again.
  refreshed = evaluator.rescale(evaluator.multiply(refreshed, refreshed, relin));
  const auto dec = decryptor.decrypt(refreshed, encoder);
  std::printf("\n%-8s %-12s %-12s %-10s\n", "slot", "z^4", "decrypted", "|err|");
  for (std::size_t i = 0; i < z.size(); ++i) {
    const double expected = z[i] * z[i] * z[i] * z[i];
    std::printf("%-8zu %-12.6f %-12.6f %-10.2e\n", i, expected, dec[i].real(),
                std::abs(dec[i].real() - expected));
  }

  // The accelerator-side cost of the same pipeline at paper scale.
  workloads::CkksWl w = workloads::CkksWl::paper(44);
  w.hbm_stream_fraction = 0.05;
  const auto r = sim::simulate_alchemist(workloads::build_bootstrapping(w, true),
                                         arch::ArchConfig::alchemist());
  std::printf("\nAlchemist cycle-sim, fully-packed bootstrap at N=2^16, L=44: "
              "%.2f ms (util %.2f)\n",
              r.time_us / 1e3, r.utilization);
  return 0;
}
