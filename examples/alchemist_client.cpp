// Remote submitter for the framed TCP job protocol (src/net).
//
//   alchemist_client --port P [--jobs N] [--workload NAME] [--tenant T]
//                    [--engine level|event] [--prefix ID] [--retries N]
//
// Connects to an alchemist_serve --port instance, submits N jobs naming a
// server-resident workload, and waits for each terminal Result. Every job
// carries an idempotency key (--prefix plus index); the client's retry loop
// (deterministic exponential backoff) resubmits the same key after any
// transport failure, so a job is charged and run exactly once even across
// torn connections or a server drain window.
//
// Exit status: 0 when every job delivered a Completed result, 1 otherwise.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "net/client.h"
#include "svc/job.h"

namespace {

using namespace alchemist;

int usage() {
  std::fprintf(stderr,
               "usage: alchemist_client --port P [--jobs N] [--workload NAME]\n"
               "       [--tenant T] [--engine level|event] [--prefix ID]\n"
               "       [--retries N]\n"
               "  --port P       job server port (required)\n"
               "  --jobs N       jobs to submit (default 4)\n"
               "  --workload W   catalog name: pmult|hadd|rotation|keyswitch\n"
               "                 (default keyswitch)\n"
               "  --tenant T     admission identity (default untenanted)\n"
               "  --prefix ID    idempotency-key prefix (default \"cli\");\n"
               "                 rerunning with the same prefix against the\n"
               "                 same server replays cached results\n"
               "  --retries N    transport attempts per job (default 16)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  int port = -1;
  std::size_t jobs = 4, retries = 16;
  std::string workload = "keyswitch", tenant, prefix = "cli";
  std::uint8_t engine = net::kEngineLevel;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") port = std::atoi(next());
    else if (arg == "--jobs") jobs = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--workload") workload = next();
    else if (arg == "--tenant") tenant = next();
    else if (arg == "--prefix") prefix = next();
    else if (arg == "--retries") retries = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--engine") {
      const std::string e = next();
      if (e == "level") engine = net::kEngineLevel;
      else if (e == "event") engine = net::kEngineEvent;
      else return usage();
    }
    else return usage();
  }
  if (port < 0 || jobs == 0) return usage();

  net::ClientOptions copts;
  copts.port = port;
  copts.max_attempts = retries;
  net::Client client(copts);

  std::size_t completed = 0, replayed = 0;
  for (std::size_t i = 0; i < jobs; ++i) {
    net::SubmitPayload sub;
    sub.client_job_id = prefix + "-" + std::to_string(i);
    sub.tenant = tenant;
    sub.workload = workload;
    sub.engine = engine;
    const net::RunOutcome out = client.run(sub);
    if (!out.delivered) {
      std::fprintf(stderr, "%s: no terminal state (%s, code %u)\n",
                   sub.client_job_id.c_str(), out.error.c_str(),
                   static_cast<unsigned>(out.last_error_code));
      continue;
    }
    const auto state = static_cast<svc::JobState>(out.state);
    if (state == svc::JobState::Completed) ++completed;
    if (out.replayed) ++replayed;
    std::printf("%-12s %-16s trace 0x%016llx  %s%s%s",
                sub.client_job_id.c_str(), svc::to_string(state),
                static_cast<unsigned long long>(out.trace_id),
                out.replayed ? "[replayed] " : "",
                out.attached ? "[reattached] " : "",
                out.connections > 1 ? "[retried] " : "");
    if (out.has_result) {
      std::printf(" cycles %llu, sim %.2f us",
                  static_cast<unsigned long long>(out.result.cycles),
                  out.result.time_us);
    } else if (!out.error.empty()) {
      std::printf(" (%s)", out.error.c_str());
    }
    std::printf("\n");
  }
  std::printf("alchemist_client: %zu/%zu completed (%zu replayed)\n",
              completed, jobs, replayed);
  return completed == jobs ? 0 : 1;
}
