// Encrypted neural-network inference in the LoLa-MNIST style (Fig. 6a).
//
// Runs a small conv -> square -> dense -> square -> dense network on an
// encrypted synthetic digit image using the functional CKKS library (reduced
// parameters so it completes in seconds), then costs the full-scale workload
// on the Alchemist cycle simulator. Weights are synthetic: FHE performance is
// data-independent, so the schedule — not the values — is what matters.
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "arch/config.h"
#include "ckks/encoder.h"
#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/keygen.h"
#include "common/rng.h"
#include "sim/alchemist_sim.h"
#include "workloads/ckks_workloads.h"

namespace {

using namespace alchemist;
using namespace alchemist::ckks;

// 8x8 synthetic "digit": a bright diagonal stroke.
std::vector<double> make_image() {
  std::vector<double> img(64, 0.0);
  for (int i = 0; i < 8; ++i) {
    img[static_cast<std::size_t>(i * 8 + i)] = 1.0;
    if (i > 0) img[static_cast<std::size_t>(i * 8 + i - 1)] = 0.5;
  }
  return img;
}

}  // namespace

int main() {
  const CkksParams params = CkksParams::toy(2048, 4, 2);
  auto ctx = std::make_shared<CkksContext>(params);
  CkksEncoder encoder(ctx);
  KeyGenerator keygen(ctx, 9);
  Encryptor encryptor(ctx, keygen.make_public_key());
  Decryptor decryptor(ctx, keygen.secret_key());
  Evaluator evaluator(ctx);
  const RelinKeys relin = keygen.make_relin_keys();
  // The dense layers rotate by powers of two for their accumulation trees.
  const GaloisKeys galois = keygen.make_galois_keys({1, 2, 4, 8, 16, 32});

  std::printf("LoLa-style encrypted inference (functional, N=%zu)\n", params.n);

  // --- Client: encrypt the image ---
  const std::vector<double> image = make_image();
  const double scale = params.scale();
  Ciphertext x =
      encryptor.encrypt(encoder.encode(std::span<const double>(image), 4, scale));

  // --- Server: homomorphic network with plaintext weights ---
  Rng rng(7);
  auto random_weights = [&](std::size_t count) {
    std::vector<double> w(count);
    for (double& v : w) v = 0.25 * (2.0 * rng.uniform_real() - 1.0);
    return w;
  };

  // Layer 1: "convolution" as a weighted sum of 3 shifted copies.
  std::printf("  layer 1: conv (3 shifted taps) ...\n");
  Ciphertext acc = evaluator.mul_plain(
      x, encoder.encode(std::span<const double>(random_weights(64)), 4, scale));
  for (int tap : {1, 8}) {
    const Ciphertext shifted = evaluator.rotate(x, tap, galois);
    acc = evaluator.add(acc, evaluator.mul_plain(
        shifted, encoder.encode(std::span<const double>(random_weights(64)), 4, scale)));
  }
  acc = evaluator.rescale(acc);  // level 3

  // Square activation.
  std::printf("  layer 2: square activation ...\n");
  acc = evaluator.rescale(evaluator.multiply(acc, acc, relin));  // level 2

  // Dense layer: weighted sum across slots via a rotate-and-add tree.
  std::printf("  layer 3: dense (rotate-and-add tree) ...\n");
  acc = evaluator.mul_plain(
      acc, encoder.encode(std::span<const double>(random_weights(64)), 2, acc.scale));
  acc = evaluator.rescale(acc);  // level 1
  for (int step : {32, 16, 8, 4, 2, 1}) {
    acc = evaluator.add(acc, evaluator.rotate(acc, step, galois));
  }

  const auto logits = decryptor.decrypt(acc, encoder);
  std::printf("  encrypted score (slot 0): %.6f\n", logits[0].real());

  // --- Cross-check against cleartext evaluation of the same network ---
  // (Re-run with the same Rng seed to regenerate identical weights.)
  Rng check_rng(7);
  auto check_weights = [&](std::size_t count) {
    std::vector<double> w(count);
    for (double& v : w) v = 0.25 * (2.0 * check_rng.uniform_real() - 1.0);
    return w;
  };
  const std::size_t slots = params.slots();
  std::vector<double> clear(slots, 0.0);
  for (std::size_t i = 0; i < image.size(); ++i) clear[i] = image[i];
  std::vector<double> layer(slots, 0.0);
  const auto w0 = check_weights(64);
  for (std::size_t i = 0; i < slots; ++i) layer[i] = clear[i] * (i < 64 ? w0[i] : 0.0);
  for (int tap : {1, 8}) {
    const auto wt = check_weights(64);
    for (std::size_t i = 0; i < slots; ++i) {
      const double shifted = clear[(i + static_cast<std::size_t>(tap)) % slots];
      layer[i] += shifted * (i < 64 ? wt[i] : 0.0);
    }
  }
  for (double& v : layer) v = v * v;
  const auto wd = check_weights(64);
  for (std::size_t i = 0; i < slots; ++i) layer[i] *= i < 64 ? wd[i] : 0.0;
  for (int step : {32, 16, 8, 4, 2, 1}) {
    std::vector<double> rotated(slots);
    for (std::size_t i = 0; i < slots; ++i) {
      rotated[i] = layer[i] + layer[(i + static_cast<std::size_t>(step)) % slots];
    }
    layer.swap(rotated);
  }
  std::printf("  cleartext score (slot 0): %.6f  (|err| = %.2e)\n", layer[0],
              std::abs(layer[0] - logits[0].real()));

  // --- Accelerator: full-scale LoLa-MNIST latency on the cycle simulator ---
  const auto g_plain = workloads::build_lola_mnist(false);
  const auto g_enc = workloads::build_lola_mnist(true);
  const auto cfg = arch::ArchConfig::alchemist();
  const auto r_plain = sim::simulate_alchemist(g_plain, cfg);
  const auto r_enc = sim::simulate_alchemist(g_enc, cfg);
  std::printf("\nAlchemist latency (cycle sim, full LoLa-MNIST):\n");
  std::printf("  unencrypted weights: %.3f ms (paper: >3x faster than F1's 0.247 ms)\n",
              r_plain.time_us / 1e3);
  std::printf("  encrypted weights:   %.3f ms (paper: 0.11 ms)\n",
              r_enc.time_us / 1e3);
  return 0;
}
