// Cross-scheme FHE pipeline — the workload class that motivates Alchemist.
//
// A private credit-scoring service: the *linear* part (weighted feature sum)
// runs under arithmetic FHE (CKKS, SIMD-efficient), and the *non-linear* part
// (threshold comparison) runs under logic FHE (TFHE programmable
// bootstrapping), which CKKS cannot express efficiently.
//
// The switch between schemes is a real ciphertext bridge (src/bridge,
// Pegasus-style [6]): the level-1 CKKS ciphertext is reinterpreted as LWE
// samples per coefficient, modulus-switched to the torus and keyswitched to
// the TFHE key — no decryption anywhere. Both phases are then costed on the
// same unified Alchemist simulator.
#include <cstdio>
#include <memory>

#include "arch/config.h"
#include "bridge/scheme_switch.h"
#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/keygen.h"
#include "common/rng.h"
#include "sim/alchemist_sim.h"
#include "tfhe/bootstrap.h"
#include "workloads/ckks_workloads.h"
#include "workloads/tfhe_workloads.h"

int main() {
  using namespace alchemist;

  // ---------- Phase 1: arithmetic FHE (CKKS) — weighted feature sum ----------
  // Delta/q0 = 2^-3: the bridged torus value is score/8, well inside the PBS
  // noise margin.
  ckks::CkksParams cparams = ckks::CkksParams::toy(1024, 3, 1);
  cparams.first_prime_bits = 48;
  cparams.log_scale = 45;
  cparams.prime_bits = 45;
  auto ctx = std::make_shared<ckks::CkksContext>(cparams);
  ckks::CkksEncoder encoder(ctx);
  ckks::KeyGenerator keygen(ctx, 5);
  ckks::Encryptor encryptor(ctx, keygen.make_public_key());
  ckks::Decryptor decryptor(ctx, keygen.secret_key());
  ckks::Evaluator evaluator(ctx);
  std::vector<int> rot_steps;
  for (std::size_t st = 1; st < cparams.slots(); st <<= 1) {
    rot_steps.push_back(static_cast<int>(st));
  }
  const ckks::GaloisKeys galois = keygen.make_galois_keys(rot_steps);

  const std::vector<double> features = {0.8, 0.2, 0.5, 0.9, 0.1, 0.7, 0.3, 0.6};
  const std::vector<double> weights = {0.30, -0.10, 0.25, 0.20,
                                       -0.05, 0.15, 0.05, 0.20};
  const double scale = cparams.scale();
  ckks::Ciphertext enc_features = encryptor.encrypt(
      encoder.encode(std::span<const double>(features), 3, scale));

  // score = sum_i w_i * x_i via Pmult + a rotate-and-add tree over *all*
  // slots (the zero padding contributes nothing), leaving the total sum in
  // every slot — which makes coefficient 0 equal to the score, the form the
  // bridge extracts.
  ckks::Ciphertext score = evaluator.rescale(evaluator.mul_plain(
      enc_features, encoder.encode(std::span<const double>(weights), 3, scale)));
  for (int step : rot_steps) {
    score = evaluator.add(score, evaluator.rotate(score, step, galois));
  }
  double expected = 0;
  for (std::size_t i = 0; i < features.size(); ++i) expected += features[i] * weights[i];
  std::printf("CKKS phase: encrypted weighted sum (cleartext check: %.4f)\n", expected);

  const double threshold = 0.5;
  // Subtract the threshold and fold the margin into coefficient 0, then drop
  // to level 1 — the bridgeable form.
  score = evaluator.add_scalar(score, -threshold, encoder);
  ckks::Ciphertext bridge_ready = evaluator.mod_drop(score, 1);

  // ---------- Scheme switch: CKKS -> TFHE without decryption ----------
  Rng rng(99);
  const tfhe::TfheParams tparams = tfhe::TfheParams::toy();
  const tfhe::LweKey lwe_key = tfhe::lwe_keygen(tparams.n_lwe, rng);
  const tfhe::TrlweKey trlwe_key = tfhe::trlwe_keygen(tparams, rng);
  const tfhe::BootstrapContext bctx =
      tfhe::make_bootstrap_context(tparams, lwe_key, trlwe_key, rng);
  const tfhe::KeySwitchKey bridge_key =
      bridge::make_bridge_key(*ctx, keygen.secret_key(), lwe_key, tparams, rng);

  // Slot 0's value lives at coefficient 0 after the rotate-and-add tree put
  // the full sum into every slot... extract coefficient 0.
  const tfhe::LweSample bridged =
      bridge::switch_to_tfhe(*ctx, bridge_ready, 0, bridge_key);
  std::printf("bridge: level-1 CKKS coefficient -> torus LWE under the TFHE key\n");

  // ---------- Phase 2: logic FHE (TFHE) — encrypted comparison ----------
  const tfhe::TorusPoly sign_tv =
      tfhe::make_constant_test_poly(tparams.degree, u64{1} << 61);
  const tfhe::LweSample decision = tfhe::programmable_bootstrap(bridged, sign_tv, bctx);
  const bool approved = tfhe::decrypt_bit(decision, lwe_key);
  std::printf("TFHE phase: encrypted comparison score > %.2f  ->  %s\n", threshold,
              approved ? "APPROVED" : "DECLINED");
  std::printf("  (cleartext check: %s)\n",
              expected > threshold ? "APPROVED" : "DECLINED");

  // ---------- Unified accelerator: both phases on one chip ----------
  const auto cfg = arch::ArchConfig::alchemist();
  workloads::CkksWl cw = workloads::CkksWl::paper(24);
  cw.hbm_stream_fraction = 0.05;
  const auto ckks_phase = sim::simulate_alchemist(workloads::build_rotation(cw), cfg);
  const auto tfhe_phase = sim::simulate_alchemist(
      workloads::build_pbs(workloads::TfheWl::set_i()), cfg);
  std::printf("\nAlchemist runs both phases on the same silicon:\n");
  std::printf("  CKKS rotation (N=2^16, L=24): %8.1f us  util %.2f\n",
              ckks_phase.time_us, ckks_phase.utilization);
  std::printf("  TFHE PBS batch (x16):         %8.1f us  util %.2f\n",
              tfhe_phase.time_us, tfhe_phase.utilization);
  std::printf("  -> no idle scheme-specific hardware in either phase; prior\n"
              "     accelerators support only one of the two columns (Table 6).\n");
  return 0;
}
