#include "obs/log.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "obs/json.h"

namespace alchemist::obs {

namespace {

std::string hex_id(std::uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

}  // namespace

Severity parse_severity(const std::string& s, Severity fallback) {
  if (s == "debug") return Severity::Debug;
  if (s == "info") return Severity::Info;
  if (s == "warn" || s == "warning") return Severity::Warn;
  if (s == "error") return Severity::Error;
  return fallback;
}

std::vector<LogEvent> EventLog::tail(std::size_t n, Severity min_sev) const {
  const std::vector<LogEvent> all = snapshot();
  std::vector<LogEvent> out;
  // Walk newest-first collecting matches, then restore oldest-first order.
  for (auto it = all.rbegin(); it != all.rend() && out.size() < n; ++it) {
    if (it->severity >= min_sev) out.push_back(*it);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string log_event_json(const LogEvent& ev) {
  std::ostringstream out;
  out << "{\"ts_us\":" << json_number(ev.ts_us) << ",\"sev\":\""
      << to_string(ev.severity)
      << "\",\"component\":" << json_string(ev.component)
      << ",\"msg\":" << json_string(ev.message);
  if (ev.trace_id != 0) {
    out << ",\"trace\":\"" << hex_id(ev.trace_id) << "\",\"span\":\""
        << hex_id(ev.span_id) << '"';
  }
  out << ",\"fields\":{";
  bool first = true;
  for (const auto& [k, v] : ev.fields) {
    if (!first) out << ',';
    first = false;
    out << json_string(k) << ':' << json_string(v);
  }
  out << "},\"num\":{";
  first = true;
  for (const auto& [k, v] : ev.num_fields) {
    if (!first) out << ',';
    first = false;
    out << json_string(k) << ':' << json_number(v);
  }
  out << "}}";
  return out.str();
}

void write_log_jsonl(std::ostream& out, const std::vector<LogEvent>& events) {
  for (const LogEvent& ev : events) out << log_event_json(ev) << '\n';
}

std::string log_jsonl(const std::vector<LogEvent>& events) {
  std::ostringstream out;
  write_log_jsonl(out, events);
  return out.str();
}

}  // namespace alchemist::obs
