// Distributed-trace substrate: per-job causality for the serving stack.
//
// The metrics layer answers aggregate questions; this header answers "where
// did job #4712 spend its 83 ms?". A TraceContext (trace id, span id, parent
// span) is minted per submitted job and threaded through every layer that
// touches the job: the JobRunner (queue wait, per-attempt run, retry backoff),
// both simulator engines (per-phase and per-op spans via sim::SimControl) and
// the process-wide ThreadPool (fan-out spans adopt the submitting span's
// context through the ambient thread-local below).
//
// Determinism contract:
//   * Ids are minted, never random: trace ids from a seed + submission
//     sequence, span ids from (trace, parent, name, ordinal). Two runs of the
//     same job mix produce the same ids, and the span *tree* (ids, parents,
//     names) is identical for any worker count — only timestamps and track
//     assignments vary. tests/test_svc.cpp pins this across 1-8 workers.
//   * Simulator spans are stamped in machine cycles (SpanClock::Cycles), the
//     engines' native deterministic unit; host-side spans are stamped in wall
//     microseconds from the sink's clock, which tests may replace with a
//     virtual clock (set_clock) for fully reproducible traces.
//   * Recording never changes what it observes: SimResults are bit-identical
//     with tracing on or off, and with no sink attached (or an invalid
//     context) every instrumentation site reduces to a pointer test — the
//     zero-allocation no-op path.
//
// The sink is a bounded MPMC ring: overload drops the oldest spans (counted,
// never blocking the serving path). Exports: a `spans.v1` JSON document
// (standalone or embedded per-run in the metrics report), the /tracez live
// view (recent spans + slowest-N per workload class), and a merge into the
// Chrome-trace Timeline for Perfetto.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace alchemist::obs {

class Timeline;  // obs/timeline.h

// ----------------------------------------------------------- id minting ----

inline std::uint64_t trace_fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

inline std::uint64_t trace_mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58'476d'1ce4'e5b9ull;
  x ^= x >> 27;
  x *= 0x94d0'49bb'1331'11ebull;
  x ^= x >> 31;
  return x;
}

// Nonzero trace id from a seed (zero means "not traced" everywhere).
inline std::uint64_t mint_trace_id(std::uint64_t seed) {
  const std::uint64_t x = trace_mix64(seed + 0x9e37'79b9'7f4a'7c15ull);
  return x != 0 ? x : 1;
}

// Deterministic span id: same (trace, parent, name, ordinal) -> same id.
inline std::uint64_t mint_span_id(std::uint64_t trace_id, std::uint64_t parent,
                                  std::string_view name, std::uint64_t ordinal) {
  const std::uint64_t x =
      trace_mix64(trace_id ^ (parent * 0x9e37'79b9'7f4a'7c15ull) ^
                  trace_fnv1a(name) ^ (ordinal + 1) * 0xd1b5'4a32'd192'ed03ull);
  return x != 0 ? x : 1;
}

// -------------------------------------------------------------- context ----

// Propagated per-job context: which trace this work belongs to and which span
// is the current parent. An all-zero context means "not traced" and every
// instrumentation site short-circuits on it.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;     // the current (innermost) span
  std::uint64_t parent_span = 0; // its parent; 0 = root
  bool valid() const { return trace_id != 0; }
};

// Child context under `parent`: same trace, deterministically minted span id.
inline TraceContext child_context(const TraceContext& parent,
                                  std::string_view name, std::uint64_t ordinal) {
  TraceContext c;
  c.trace_id = parent.trace_id;
  c.parent_span = parent.span_id;
  c.span_id = mint_span_id(parent.trace_id, parent.span_id, name, ordinal);
  return c;
}

// ---------------------------------------------------------------- spans ----

// Which clock a span's ts/dur are in. Simulator spans use deterministic
// machine cycles; host-side spans use the sink clock's wall microseconds.
enum class SpanClock : std::uint8_t { WallUs, Cycles };
inline const char* to_string(SpanClock c) {
  return c == SpanClock::Cycles ? "cycles" : "us";
}

// How much detail the simulator engines emit. Lifecycle = the run span only;
// Phases adds scheduler steps (ASAP levels, checkpoint markers); Ops adds one
// span per high-level operation.
enum class TraceDetail : std::uint8_t { Lifecycle, Phases, Ops };

struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span = 0;  // 0 = root of its trace
  std::string name;               // "job", "queue", "attempt", "level", "ntt"
  std::string kind;               // owning layer: "svc", "sim", "pool"
  std::string track;              // display/overlap lane, e.g. "svc/worker0"
  SpanClock clock = SpanClock::WallUs;
  double ts = 0;
  double dur = 0;
  std::vector<std::pair<std::string, std::string>> attrs;
  std::vector<std::pair<std::string, double>> num_attrs;
};

// Bounded, thread-safe ring of finished spans. record() is the only hot call:
// one mutex acquisition, no allocation beyond the moved-in record; overflow
// overwrites the oldest span and bumps dropped(). High-volume producers (the
// simulator engines at Phases/Ops detail) buffer locally and use
// record_batch() — one lock per batch instead of per span, which keeps the
// traced svc_soak overhead gate comfortable under worker contention.
class TraceSink {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit TraceSink(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity),
        epoch_(std::chrono::steady_clock::now()) {}

  std::size_t capacity() const { return capacity_; }

  // Wall microseconds since sink construction, or the virtual clock when one
  // is installed (deterministic replay in tests).
  double now_us() const {
    std::lock_guard<std::mutex> lk(mu_);
    if (clock_) return clock_();
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }
  void set_clock(std::function<double()> now_us_fn) {
    std::lock_guard<std::mutex> lk(mu_);
    clock_ = std::move(now_us_fn);
  }

  void record(SpanRecord s) {
    std::lock_guard<std::mutex> lk(mu_);
    push_locked(std::move(s));
  }

  // Drains `batch` into the ring under one lock; the caller's vector is
  // cleared but keeps its capacity for reuse.
  void record_batch(std::vector<SpanRecord>& batch) {
    if (batch.empty()) return;
    {
      std::lock_guard<std::mutex> lk(mu_);
      for (SpanRecord& s : batch) push_locked(std::move(s));
    }
    batch.clear();
  }

  std::uint64_t recorded() const {
    std::lock_guard<std::mutex> lk(mu_);
    return recorded_;
  }
  std::uint64_t dropped() const {
    std::lock_guard<std::mutex> lk(mu_);
    return dropped_;
  }

  // Point-in-time copy, oldest first.
  std::vector<SpanRecord> snapshot() const {
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<SpanRecord> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(head_ + i) % ring_.size()]);
    }
    return out;
  }

  void clear() {
    std::lock_guard<std::mutex> lk(mu_);
    ring_.clear();
    head_ = 0;
    recorded_ = dropped_ = 0;
  }

 private:
  void push_locked(SpanRecord&& s) {
    ++recorded_;
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(s));
    } else {
      ring_[head_] = std::move(s);
      head_ = (head_ + 1) % capacity_;
      ++dropped_;
    }
  }

  const std::size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::function<double()> clock_;
  std::vector<SpanRecord> ring_;
  std::size_t head_ = 0;  // oldest element once the ring is full
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
};

// ------------------------------------------------- ambient propagation -----

// Thread-local current context: set by the layer that owns the thread's work
// (a JobRunner worker around the simulate call, a test harness) and adopted
// by layers below it that have no explicit plumbing — the ThreadPool stamps
// each top-level parallel_for fan-out as a child span of the ambient context.
// The ordinal counter makes fan-out span ids deterministic: the owning thread
// executes its fan-outs sequentially, so the k-th fan-out under one scope
// always mints the same id.
struct AmbientTrace {
  TraceSink* sink = nullptr;
  TraceContext ctx{};
  std::uint64_t next_ordinal = 0;
  bool active() const { return sink != nullptr && ctx.valid(); }
};

inline AmbientTrace& ambient_trace() {
  thread_local AmbientTrace t_ambient;
  return t_ambient;
}

class ScopedTraceContext {
 public:
  ScopedTraceContext(TraceSink* sink, const TraceContext& ctx)
      : saved_(ambient_trace()) {
    ambient_trace() = AmbientTrace{sink, ctx, 0};
  }
  ~ScopedTraceContext() { ambient_trace() = saved_; }
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  AmbientTrace saved_;
};

// ----------------------------------------------------------- exporters -----
// (implemented in trace.cpp)

inline constexpr const char* kSpansSchema = "spans.v1";

// Standalone spans.v1 JSON document:
//   { "schema": "spans.v1", "tool": ..., "recorded": N, "dropped": N,
//     "spans": [ {"trace":"0x..","span":"0x..","parent":"0x..", ...} ] }
// Spans are sorted by (trace, clock, ts, span) so documents diff cleanly.
void write_spans_json(std::ostream& out, const std::vector<SpanRecord>& spans,
                      std::uint64_t recorded, std::uint64_t dropped,
                      const std::string& tool);
std::string spans_json(const std::vector<SpanRecord>& spans,
                       std::uint64_t recorded, std::uint64_t dropped,
                       const std::string& tool);
bool write_spans_file(const std::string& path, const TraceSink& sink,
                      const std::string& tool);

// /tracez live view: the most recent `recent_n` spans plus the slowest
// `slowest_n` root job spans per workload class (from the "class" attr).
std::string tracez_json(const TraceSink& sink, std::size_t recent_n,
                        std::size_t slowest_n,
                        const std::string& class_filter = "");

// Merge spans into a Chrome-trace Timeline: one named track per SpanRecord
// track (tids from `tid_base` up), slices for every span, and per-trace flow
// arrows linking the queue span to each run attempt. Cycle-clock simulator
// tracks keep their native unit (1 displayed us = 1 cycle, like the
// simulator's own timeline export).
void merge_spans_into_timeline(const std::vector<SpanRecord>& spans,
                               Timeline& timeline,
                               std::uint32_t tid_base = 1000);

}  // namespace alchemist::obs
