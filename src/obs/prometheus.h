// Prometheus text exposition (format 0.0.4) for a metric Registry.
//
// Canonical registry keys `domain.metric{k1=v1,...}` map onto Prometheus
// families: the dotted name mangles to `domain_metric` (Prometheus names
// admit only [a-zA-Z0-9_:]) and the tags become labels. Counters render as
// `counter` families, gauges as `gauge`, and obs::Histogram entries as full
// `histogram` families with cumulative `_bucket{le="..."}` rows, `_sum` and
// `_count`. Derived percentile gauges (`svc.latency.run_us.p95` →
// `svc_latency_run_us_p95`) keep their own family names so they never
// collide with the histogram family they summarize.
//
// This is what the alchemist_serve introspection endpoint serves at
// /metrics; tools/check_prom_exposition.py validates the grammar in CI.
#pragma once

#include <string>

#include "obs/registry.h"

namespace alchemist::obs {

// Mangle a dotted metric name into a valid Prometheus family name.
std::string prometheus_name(std::string_view name);

// Full exposition page for every counter, gauge, and histogram in `reg`.
std::string prometheus_exposition(const Registry& reg);

}  // namespace alchemist::obs
