#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "obs/json.h"
#include "obs/timeline.h"

namespace alchemist::obs {

namespace {

std::string hex_id(std::uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

void write_kv_maps(std::ostream& out, const SpanRecord& s) {
  out << "\"attrs\":{";
  bool first = true;
  for (const auto& [k, v] : s.attrs) {
    if (!first) out << ',';
    first = false;
    out << json_string(k) << ':' << json_string(v);
  }
  out << "},\"num\":{";
  first = true;
  for (const auto& [k, v] : s.num_attrs) {
    if (!first) out << ',';
    first = false;
    out << json_string(k) << ':' << json_number(v);
  }
  out << '}';
}

void write_span(std::ostream& out, const SpanRecord& s) {
  out << "{\"trace\":\"" << hex_id(s.trace_id) << "\",\"span\":\""
      << hex_id(s.span_id) << "\",\"parent\":\"" << hex_id(s.parent_span)
      << "\",\"name\":" << json_string(s.name)
      << ",\"kind\":" << json_string(s.kind)
      << ",\"track\":" << json_string(s.track) << ",\"clock\":\""
      << to_string(s.clock) << "\",\"ts\":" << json_number(s.ts)
      << ",\"dur\":" << json_number(s.dur) << ',';
  write_kv_maps(out, s);
  out << '}';
}

// Canonical export order so the same logical trace always serialises the
// same way regardless of which worker thread recorded which span first.
std::vector<const SpanRecord*> canonical_order(
    const std::vector<SpanRecord>& spans) {
  std::vector<const SpanRecord*> sorted;
  sorted.reserve(spans.size());
  for (const SpanRecord& s : spans) sorted.push_back(&s);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const SpanRecord* a, const SpanRecord* b) {
                     if (a->trace_id != b->trace_id)
                       return a->trace_id < b->trace_id;
                     if (a->clock != b->clock) return a->clock < b->clock;
                     if (a->ts != b->ts) return a->ts < b->ts;
                     return a->span_id < b->span_id;
                   });
  return sorted;
}

}  // namespace

void write_spans_json(std::ostream& out, const std::vector<SpanRecord>& spans,
                      std::uint64_t recorded, std::uint64_t dropped,
                      const std::string& tool) {
  out << "{\"schema\":\"" << kSpansSchema
      << "\",\"tool\":" << json_string(tool)
      << ",\"recorded\":" << json_number(recorded)
      << ",\"dropped\":" << json_number(dropped)
      << ",\"count\":" << json_number(static_cast<std::uint64_t>(spans.size()))
      << ",\"spans\":[\n";
  bool first = true;
  for (const SpanRecord* s : canonical_order(spans)) {
    if (!first) out << ",\n";
    first = false;
    write_span(out, *s);
  }
  out << "\n]}\n";
}

std::string spans_json(const std::vector<SpanRecord>& spans,
                       std::uint64_t recorded, std::uint64_t dropped,
                       const std::string& tool) {
  std::ostringstream out;
  write_spans_json(out, spans, recorded, dropped, tool);
  return out.str();
}

bool write_spans_file(const std::string& path, const TraceSink& sink,
                      const std::string& tool) {
  std::ofstream out(path);
  if (!out) return false;
  write_spans_json(out, sink.snapshot(), sink.recorded(), sink.dropped(), tool);
  return out.good();
}

std::string tracez_json(const TraceSink& sink, std::size_t recent_n,
                        std::size_t slowest_n,
                        const std::string& class_filter) {
  const std::vector<SpanRecord> spans = sink.snapshot();

  auto span_class = [](const SpanRecord& s) -> std::string {
    for (const auto& [k, v] : s.attrs) {
      if (k == "class") return v;
    }
    return "";
  };

  std::ostringstream out;
  out << "{\"recorded\":" << json_number(sink.recorded())
      << ",\"dropped\":" << json_number(sink.dropped())
      << ",\"capacity\":"
      << json_number(static_cast<std::uint64_t>(sink.capacity()));

  // Recent spans: newest first (the snapshot is oldest-first).
  out << ",\"recent\":[";
  bool first = true;
  std::size_t emitted = 0;
  for (auto it = spans.rbegin(); it != spans.rend() && emitted < recent_n;
       ++it) {
    if (!class_filter.empty() && span_class(*it) != class_filter) continue;
    if (!first) out << ',';
    first = false;
    write_span(out, *it);
    ++emitted;
  }
  out << ']';

  // Slowest root job spans (no parent) grouped by workload class.
  std::map<std::string, std::vector<const SpanRecord*>> by_class;
  for (const SpanRecord& s : spans) {
    if (s.parent_span != 0) continue;
    const std::string cls = span_class(s);
    if (!class_filter.empty() && cls != class_filter) continue;
    by_class[cls.empty() ? "(unclassified)" : cls].push_back(&s);
  }
  out << ",\"slowest\":{";
  first = true;
  for (auto& [cls, roots] : by_class) {
    std::stable_sort(roots.begin(), roots.end(),
                     [](const SpanRecord* a, const SpanRecord* b) {
                       return a->dur > b->dur;
                     });
    if (roots.size() > slowest_n) roots.resize(slowest_n);
    if (!first) out << ',';
    first = false;
    out << json_string(cls) << ":[";
    bool first_root = true;
    for (const SpanRecord* s : roots) {
      if (!first_root) out << ',';
      first_root = false;
      write_span(out, *s);
    }
    out << ']';
  }
  out << "}}";
  return out.str();
}

void merge_spans_into_timeline(const std::vector<SpanRecord>& spans,
                               Timeline& timeline, std::uint32_t tid_base) {
  if (!timeline.enabled()) return;

  // Stable track -> tid assignment in canonical span order.
  std::map<std::string, std::uint32_t> track_tids;
  const std::vector<const SpanRecord*> sorted = canonical_order(spans);
  for (const SpanRecord* s : sorted) {
    const std::string track = s->track.empty() ? s->kind : s->track;
    auto [it, inserted] = track_tids.emplace(
        track, tid_base + static_cast<std::uint32_t>(track_tids.size()));
    if (inserted) {
      timeline.set_track_name(it->second, "span/" + track);
    }
    TraceEvent ev;
    ev.name = s->name;
    ev.cat = s->kind;
    ev.tid = it->second;
    ev.ts = s->ts;
    ev.dur = s->dur;
    ev.str_args.emplace_back("trace", hex_id(s->trace_id));
    ev.str_args.emplace_back("span", hex_id(s->span_id));
    ev.str_args.emplace_back("parent", hex_id(s->parent_span));
    ev.str_args.emplace_back("clock", to_string(s->clock));
    for (const auto& [k, v] : s->attrs) ev.str_args.emplace_back(k, v);
    for (const auto& [k, v] : s->num_attrs) ev.num_args.emplace_back(k, v);
    timeline.record(ev);
  }

  // Per-trace flow arrows: queue span end -> each attempt start, in wall-us
  // clock only (cycle-domain spans live on their own time base).
  std::map<std::uint64_t, const SpanRecord*> queue_spans;
  for (const SpanRecord* s : sorted) {
    if (s->name == "queue" && s->clock == SpanClock::WallUs) {
      queue_spans.emplace(s->trace_id, s);
    }
  }
  for (const SpanRecord* s : sorted) {
    if (s->name != "attempt" || s->clock != SpanClock::WallUs) continue;
    const auto it = queue_spans.find(s->trace_id);
    if (it == queue_spans.end()) continue;
    const SpanRecord* q = it->second;
    const std::string q_track = q->track.empty() ? q->kind : q->track;
    const std::string a_track = s->track.empty() ? s->kind : s->track;
    timeline.record_flow({"job", "svc.flow", s->trace_id,
                          track_tids.at(q_track), q->ts + q->dur * 0.5, 's'});
    timeline.record_flow({"job", "svc.flow", s->trace_id,
                          track_tids.at(a_track), s->ts + s->dur * 0.5, 'f'});
  }
}

}  // namespace alchemist::obs
