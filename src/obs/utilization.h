// Per-unit cycle attribution ("utilization.v1").
//
// The UnitProfiler in src/sim fills one UnitCycles record per computing unit,
// accounting *every* simulated cycle of that unit to exactly one bucket:
//
//   busy               lanes doing Meta-OP arithmetic (the n-cycle body)
//   reduction          the fixed 2-cycle modular-reduction tail of a Meta-OP
//   stall_scratchpad   cycles lost to the 4-step NTT global transpose
//   stall_dependency   cycles a unit waits inside a level for peers/deps
//   idle               cycles with no compute mapped (incl. trailing HBM wait)
//
// The invariant `busy + reduction + stall_scratchpad + stall_dependency +
// idle == total_cycles` holds exactly for every unit (tests pin it), so the
// profile is a partition of the simulated timeline, not an estimate. Each
// unit additionally attributes its occupied (busy+reduction) cycles to
// Meta-OP classes by label ("ntt", "bconv", ...).
//
// The profile lives beside the metric Registry (in SimResult.profile) rather
// than inside it: registries feed bit-identity checks and checkpoint frames,
// and the profiler must never perturb either. MetricsReport serializes it as
// the "utilization" section with schema "utilization.v1".
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace alchemist::obs {

inline constexpr const char* kUtilizationSchema = "utilization.v1";

struct UnitCycles {
  std::uint64_t busy = 0;
  std::uint64_t reduction = 0;
  std::uint64_t stall_scratchpad = 0;
  std::uint64_t stall_dependency = 0;
  std::uint64_t idle = 0;
  // Occupied (busy+reduction) cycles attributed to Meta-OP class labels.
  std::map<std::string, std::uint64_t> class_occupied;

  std::uint64_t total() const {
    return busy + reduction + stall_scratchpad + stall_dependency + idle;
  }
  std::uint64_t occupied() const { return busy + reduction; }
};

struct UtilizationProfile {
  std::uint64_t total_cycles = 0;
  std::vector<UnitCycles> units;

  bool enabled() const { return !units.empty(); }

  // Bucket sums across all units.
  UnitCycles aggregate() const;

  // Fraction of all unit-cycles spent occupied (busy+reduction); fault-free
  // this matches the sim.utilization gauge that fig7b_utilization prints.
  double occupancy() const;

  void clear() {
    total_cycles = 0;
    units.clear();
  }
};

}  // namespace alchemist::obs
