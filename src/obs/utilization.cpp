#include "obs/utilization.h"

namespace alchemist::obs {

UnitCycles UtilizationProfile::aggregate() const {
  UnitCycles sum;
  for (const UnitCycles& u : units) {
    sum.busy += u.busy;
    sum.reduction += u.reduction;
    sum.stall_scratchpad += u.stall_scratchpad;
    sum.stall_dependency += u.stall_dependency;
    sum.idle += u.idle;
    for (const auto& [cls, cycles] : u.class_occupied)
      sum.class_occupied[cls] += cycles;
  }
  return sum;
}

double UtilizationProfile::occupancy() const {
  if (units.empty() || total_cycles == 0) return 0.0;
  const UnitCycles sum = aggregate();
  const double denom =
      static_cast<double>(total_cycles) * static_cast<double>(units.size());
  return static_cast<double>(sum.occupied()) / denom;
}

}  // namespace alchemist::obs
