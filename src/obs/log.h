// Structured event log ("flight recorder") for the serving stack.
//
// A bounded ring of structured events — severity, logical component, message,
// key/value fields, and the trace/span ids of the job that caused the event —
// kept in memory so the last N interesting things the process did are always
// inspectable: `/logz` tails the ring over HTTP, and the whole buffer exports
// as JSON lines (one object per line) for offline triage.
//
// Design points, mirroring obs/trace.h:
//   * Bounded and non-blocking: overflow overwrites the oldest event and
//     bumps dropped(); the serving path never waits on the recorder.
//   * Deterministic timestamps on demand: events are stamped from the log's
//     clock, which tests replace with a virtual clock (set_clock) so that
//     recorded flight logs are bit-reproducible.
//   * Zero-allocation no-op path: call sites guard on a null EventLog* before
//     building the event, so a disabled recorder costs one pointer test.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace alchemist::obs {

enum class Severity : std::uint8_t { Debug = 0, Info = 1, Warn = 2, Error = 3 };

inline const char* to_string(Severity s) {
  switch (s) {
    case Severity::Debug: return "debug";
    case Severity::Info: return "info";
    case Severity::Warn: return "warn";
    case Severity::Error: return "error";
  }
  return "info";
}

// "debug"/"info"/"warn"/"error" (also accepts "warning"); defaults to
// `fallback` on anything unrecognised — used by the /logz?min= query filter.
Severity parse_severity(const std::string& s, Severity fallback = Severity::Debug);

struct LogEvent {
  double ts_us = 0;  // log clock microseconds (virtual clock when installed)
  Severity severity = Severity::Info;
  std::string component;  // "svc", "sim", "introspect", ...
  std::string message;
  std::uint64_t trace_id = 0;  // 0 when the event is not tied to a job
  std::uint64_t span_id = 0;
  std::vector<std::pair<std::string, std::string>> fields;
  std::vector<std::pair<std::string, double>> num_fields;
};

class EventLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit EventLog(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity),
        epoch_(std::chrono::steady_clock::now()) {}

  std::size_t capacity() const { return capacity_; }

  double now_us() const {
    std::lock_guard<std::mutex> lk(mu_);
    if (clock_) return clock_();
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }
  void set_clock(std::function<double()> now_us_fn) {
    std::lock_guard<std::mutex> lk(mu_);
    clock_ = std::move(now_us_fn);
  }

  // Stamps ev.ts_us from the log clock unless the caller already set one.
  void record(LogEvent ev) {
    std::lock_guard<std::mutex> lk(mu_);
    ++recorded_;
    if (ev.ts_us == 0) {
      ev.ts_us = clock_ ? clock_()
                        : std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - epoch_)
                              .count();
    }
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(ev));
    } else {
      ring_[head_] = std::move(ev);
      head_ = (head_ + 1) % capacity_;
      ++dropped_;
    }
  }

  std::uint64_t recorded() const {
    std::lock_guard<std::mutex> lk(mu_);
    return recorded_;
  }
  std::uint64_t dropped() const {
    std::lock_guard<std::mutex> lk(mu_);
    return dropped_;
  }

  // Point-in-time copy, oldest first.
  std::vector<LogEvent> snapshot() const {
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<LogEvent> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(head_ + i) % ring_.size()]);
    }
    return out;
  }

  // Newest `n` events at or above `min_sev`, oldest first.
  std::vector<LogEvent> tail(std::size_t n,
                             Severity min_sev = Severity::Debug) const;

  void clear() {
    std::lock_guard<std::mutex> lk(mu_);
    ring_.clear();
    head_ = 0;
    recorded_ = dropped_ = 0;
  }

 private:
  const std::size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::function<double()> clock_;
  std::vector<LogEvent> ring_;
  std::size_t head_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
};

// One JSON object per event, e.g.
//   {"ts_us":12.5,"sev":"info","component":"svc","msg":"job completed",
//    "trace":"0xabc...","span":"0xdef...","fields":{"class":"bootstrap"},
//    "num":{"attempts":2}}
std::string log_event_json(const LogEvent& ev);

// JSON lines (one event per line, oldest first), used by /logz and file dumps.
void write_log_jsonl(std::ostream& out, const std::vector<LogEvent>& events);
std::string log_jsonl(const std::vector<LogEvent>& events);

}  // namespace alchemist::obs
