// Minimal JSON emission helpers for the observability exporters.
//
// The obs layer writes two machine-readable artifacts — Chrome trace_event
// files and per-run metrics reports — and both need nothing more than
// correctly escaped strings and locale-independent number formatting. A full
// JSON library is deliberately avoided (no third-party deps in this repo).
#pragma once

#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace alchemist::obs {

// Escape a string for inclusion inside JSON double quotes.
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline std::string json_string(std::string_view s) {
  return "\"" + json_escape(s) + "\"";
}

inline std::string json_number(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

// Doubles print with enough digits to round-trip; non-finite values (which
// JSON cannot represent) emit `null` rather than invalid output. Emitters
// that care count the drops via the two-argument overload — the metrics
// report surfaces that tally as the `report.dropped_nonfinite` counter.
inline std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

inline std::string json_number(double v, std::uint64_t& dropped_nonfinite) {
  if (!std::isfinite(v)) ++dropped_nonfinite;
  return json_number(v);
}

}  // namespace alchemist::obs
