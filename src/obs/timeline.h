// Per-op event timeline recorder with Chrome trace_event export.
//
// Both simulators feed one record per scheduled operation (plus HBM-channel
// and transpose records) into a Timeline; the result loads directly in
// Perfetto / chrome://tracing. Timestamps and durations are in *machine
// cycles* (the simulators' native unit, deterministic integers); the viewer
// displays them as microseconds, so 1 displayed "us" = 1 cycle. Wall time in
// real microseconds is carried in each event's numeric args.
//
// Recording is zero-overhead when disabled: the simulators consult
// ArchConfig::telemetry before building any record, and a disabled Timeline
// drops records at the door. Tracks are Chrome "threads" (tid) inside one
// simulator "process" (pid); name them with set_track_name so Perfetto shows
// "unit-group/ntt", "hbm", "transpose", ... instead of bare ids.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace alchemist::obs {

struct TraceEvent {
  std::string name;  // op label, e.g. "NTT#12"
  std::string cat;   // category: op class, "hbm", "transpose", "stall"
  std::uint32_t tid = 0;
  double ts = 0;   // start, cycles
  double dur = 0;  // duration, cycles
  std::vector<std::pair<std::string, double>> num_args;
  std::vector<std::pair<std::string, std::string>> str_args;
};

// Sampled counter track ("C" phase): Perfetto renders each series as a
// stacked area chart on its own track. The UnitProfiler emits one of these
// per unit per level so occupancy is scrubbing-visible next to the op rows.
struct CounterEvent {
  std::string name;  // counter track label, e.g. "unit0-util"
  std::uint32_t tid = 0;
  double ts = 0;  // sample time, cycles
  std::vector<std::pair<std::string, double>> series;
};

// Flow arrow ("s"/"t"/"f" phases): Perfetto draws an arrow through the events
// sharing (cat, id), binding each to the slice enclosing (tid, ts). The
// serving layer uses one flow per job — id = trace id — to link the submit
// instant to the run slice on whichever worker picked the job up.
struct FlowEvent {
  std::string name;  // shared flow label, e.g. "job"
  std::string cat;   // shared flow category, e.g. "svc.flow"
  std::uint64_t id = 0;
  std::uint32_t tid = 0;
  double ts = 0;
  char phase = 's';  // 's' start, 't' step, 'f' finish
};

class Timeline {
 public:
  explicit Timeline(bool enabled = true) : enabled_(enabled) {}

  bool enabled() const { return enabled_; }

  void set_process_name(std::string name) { process_name_ = std::move(name); }
  void set_track_name(std::uint32_t tid, std::string name) {
    if (enabled_) track_names_[tid] = std::move(name);
  }

  void record(TraceEvent ev) {
    if (enabled_) events_.push_back(std::move(ev));
  }
  void record_counter(CounterEvent ev) {
    if (enabled_) counter_events_.push_back(std::move(ev));
  }
  void record_flow(FlowEvent ev) {
    if (enabled_) flow_events_.push_back(std::move(ev));
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  const std::vector<CounterEvent>& counter_events() const {
    return counter_events_;
  }
  const std::vector<FlowEvent>& flow_events() const { return flow_events_; }
  const std::map<std::uint32_t, std::string>& track_names() const {
    return track_names_;
  }
  void clear() {
    events_.clear();
    counter_events_.clear();
    flow_events_.clear();
    track_names_.clear();
  }

  // Chrome trace_event JSON object: metadata (process/thread names) followed
  // by complete ("X") and counter ("C") events sorted by (ts, tid). Loads in
  // Perfetto and chrome://tracing as-is.
  void write_chrome_trace(std::ostream& out) const;
  std::string chrome_trace_json() const;

 private:
  bool enabled_;
  std::string process_name_ = "alchemist-sim";
  std::map<std::uint32_t, std::string> track_names_;
  std::vector<TraceEvent> events_;
  std::vector<CounterEvent> counter_events_;
  std::vector<FlowEvent> flow_events_;
};

}  // namespace alchemist::obs
