#include "obs/registry.h"

#include <algorithm>

namespace alchemist::obs {

std::string metric_key(std::string_view name, TagList tags) {
  std::string key(name);
  if (tags.size() == 0) return key;
  std::vector<std::pair<std::string_view, std::string_view>> sorted(tags);
  std::sort(sorted.begin(), sorted.end());
  key += '{';
  bool first = true;
  for (const auto& [k, v] : sorted) {
    if (!first) key += ',';
    first = false;
    key += k;
    key += '=';
    key += v;
  }
  key += '}';
  return key;
}

void Registry::add(std::string_view name, std::uint64_t delta, TagList tags) {
  counters_[metric_key(name, tags)] += delta;
}

std::uint64_t Registry::counter(std::string_view name, TagList tags) const {
  return counter_by_key(metric_key(name, tags));
}

std::uint64_t Registry::counter_by_key(const std::string& key) const {
  const auto it = counters_.find(key);
  return it == counters_.end() ? 0 : it->second;
}

void Registry::set_gauge(std::string_view name, double value, TagList tags) {
  gauges_[metric_key(name, tags)] = value;
}

double Registry::gauge(std::string_view name, TagList tags) const {
  const auto it = gauges_.find(metric_key(name, tags));
  return it == gauges_.end() ? 0.0 : it->second;
}

void Registry::set_gauge_by_key(const std::string& key, double value) {
  gauges_[key] = value;
}

void Registry::observe(std::string_view name, double value, TagList tags) {
  histograms_[metric_key(name, tags)].record(value);
}

const Histogram& Registry::histogram(std::string_view name, TagList tags) const {
  static const Histogram kEmpty;
  const auto it = histograms_.find(metric_key(name, tags));
  return it == histograms_.end() ? kEmpty : it->second;
}

void Registry::merge(const Registry& other) {
  for (const auto& [key, value] : other.counters_) counters_[key] += value;
  for (const auto& [key, value] : other.gauges_) gauges_[key] = value;
  for (const auto& [key, value] : other.histograms_) histograms_[key].merge(value);
}

void Registry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::uint64_t Registry::total_over_tags(std::string_view prefix) const {
  std::uint64_t total = 0;
  for (auto it = counters_.lower_bound(std::string(prefix));
       it != counters_.end() && std::string_view(it->first).substr(0, prefix.size()) == prefix;
       ++it) {
    total += it->second;
  }
  return total;
}

}  // namespace alchemist::obs
