// Machine-readable per-run metrics report (schema "alchemist.metrics.v1").
//
// One report holds the named counters/gauges of any number of simulated runs
// and serializes to a stable JSON document:
//
//   {
//     "schema": "alchemist.metrics.v1",
//     "tool": "<producing binary>",
//     "runs": [
//       { "workload": "...", "accelerator": "...",
//         "counters": { "sim.cycles": 123, "sim.cycles{class=ntt}": 45, ... },
//         "gauges":   { "sim.utilization": 0.86, ... } }
//     ]
//   }
//
// Key ordering is the registries' canonical (sorted) order, so reports diff
// cleanly across runs — this is the format of the committed BENCH_sim.json
// baseline that CI compares against.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/registry.h"

namespace alchemist::obs {

inline constexpr const char* kMetricsSchema = "alchemist.metrics.v1";

struct RunMetrics {
  std::string workload;
  std::string accelerator;
  Registry registry;
};

class MetricsReport {
 public:
  explicit MetricsReport(std::string tool = "") : tool_(std::move(tool)) {}

  void add(std::string workload, std::string accelerator, Registry registry) {
    runs_.push_back(
        {std::move(workload), std::move(accelerator), std::move(registry)});
  }
  // Any type with .workload / .accelerator / .registry members (sim::SimResult
  // in practice; a template keeps obs below sim in the layering).
  template <typename R>
  void add(const R& result) {
    add(result.workload, result.accelerator, result.registry);
  }

  const std::vector<RunMetrics>& runs() const { return runs_; }
  bool empty() const { return runs_.empty(); }

  void write_json(std::ostream& out) const;
  std::string json() const;
  // Write to a file path; returns false (and leaves no file guarantees) on
  // I/O failure.
  bool write_file(const std::string& path) const;

 private:
  std::string tool_;
  std::vector<RunMetrics> runs_;
};

}  // namespace alchemist::obs
