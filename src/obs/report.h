// Machine-readable per-run metrics report (schema "alchemist.metrics.v1").
//
// One report holds the named counters/gauges of any number of simulated runs
// and serializes to a stable JSON document:
//
//   {
//     "schema": "alchemist.metrics.v1",
//     "tool": "<producing binary>",
//     "runs": [
//       { "workload": "...", "accelerator": "...",
//         "counters": { "sim.cycles": 123, "sim.cycles{class=ntt}": 45, ... },
//         "gauges":   { "sim.utilization": 0.86, ... },
//         "histograms": { "svc.latency.run_us{class=ckks}": {...} },
//         "utilization": { "schema": "utilization.v1", ... } }
//     ]
//   }
//
// "histograms", "utilization" and "memory" appear only when a run carries
// them, so
// pre-existing reports (and the committed BENCH_*.json baselines) are
// unchanged. Non-finite gauge values serialize as `null` and are tallied in
// a synthetic `report.dropped_nonfinite` counter for that run.
//
// Key ordering is the registries' canonical (sorted) order, so reports diff
// cleanly across runs — this is the format of the committed BENCH_sim.json
// baseline that CI compares against.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/memory.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "obs/utilization.h"

namespace alchemist::obs {

inline constexpr const char* kMetricsSchema = "alchemist.metrics.v1";

struct RunMetrics {
  std::string workload;
  std::string accelerator;
  Registry registry;
  UtilizationProfile profile;  // empty unless the run was profiled
  MemoryProfile memory;        // memory.v1 section; empty unless mem-profiled
  std::vector<SpanRecord> spans;  // spans.v1 section; empty unless traced
  std::uint64_t spans_recorded = 0;
  std::uint64_t spans_dropped = 0;
};

class MetricsReport {
 public:
  explicit MetricsReport(std::string tool = "") : tool_(std::move(tool)) {}

  void add(std::string workload, std::string accelerator, Registry registry,
           UtilizationProfile profile = {}, MemoryProfile memory = {}) {
    RunMetrics run;
    run.workload = std::move(workload);
    run.accelerator = std::move(accelerator);
    run.registry = std::move(registry);
    run.profile = std::move(profile);
    run.memory = std::move(memory);
    runs_.push_back(std::move(run));
  }
  // Any type with .workload / .accelerator / .registry members (sim::SimResult
  // in practice; a template keeps obs below sim in the layering). A .profile
  // member rides along as the utilization.v1 section and a .mem_profile
  // member as the memory.v1 section, when present.
  template <typename R>
  void add(const R& result) {
    RunMetrics run;
    run.workload = result.workload;
    run.accelerator = result.accelerator;
    run.registry = result.registry;
    if constexpr (requires { result.profile; }) run.profile = result.profile;
    if constexpr (requires { result.mem_profile; }) {
      run.memory = result.mem_profile;
    }
    runs_.push_back(std::move(run));
  }

  // Attach a trace-span section (spans.v1) to the most recently added run —
  // the serving layer records spans out-of-band in a TraceSink, so they are
  // grafted onto the run after the fact. No-op on an empty report.
  void attach_spans(std::vector<SpanRecord> spans, std::uint64_t recorded,
                    std::uint64_t dropped) {
    if (runs_.empty()) return;
    runs_.back().spans = std::move(spans);
    runs_.back().spans_recorded = recorded;
    runs_.back().spans_dropped = dropped;
  }
  void attach_spans(const TraceSink& sink) {
    attach_spans(sink.snapshot(), sink.recorded(), sink.dropped());
  }

  const std::vector<RunMetrics>& runs() const { return runs_; }
  bool empty() const { return runs_.empty(); }

  void write_json(std::ostream& out) const;
  std::string json() const;
  // Write to a file path; returns false (and leaves no file guarantees) on
  // I/O failure.
  bool write_file(const std::string& path) const;

 private:
  std::string tool_;
  std::vector<RunMetrics> runs_;
};

}  // namespace alchemist::obs
