// Fixed-bucket log-linear latency histogram.
//
// Values are clamped to non-negative integer "ticks" (the serving layer
// records microseconds) and land in one of kNumBuckets fixed buckets:
// ticks 0..7 get unit-width buckets, and every octave above that is split
// into kSubBuckets linear sub-buckets, so relative resolution stays ~12%
// across the full 64-bit range with no per-instance configuration.
//
// Because the bucket layout is a compile-time constant, any two histograms
// merge exactly (bucket-wise addition), and because the running sum is kept
// in integer ticks, recording the same multiset of values in any order — or
// from any interleaving of threads, each observing into its own instance
// merged later — produces a bit-identical snapshot. tests/test_obs.cpp pins
// boundary placement, merge associativity and order-independence.
//
// Histograms register in the obs::Registry next to counters and gauges
// (Registry::observe) and ride the same exports: the MetricsReport JSON
// gains a "histograms" section, and the Prometheus exposition renders them
// as cumulative `_bucket{le=...}` families (obs/prometheus.h).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace alchemist::obs {

class Histogram {
 public:
  // 8 linear sub-buckets per octave; 64-bit ticks need (64-3)*8 + 8 indexes.
  static constexpr std::size_t kSubBuckets = 8;
  static constexpr std::size_t kNumBuckets = 62 * kSubBuckets;

  // Bucket index of a tick value. Total order: every bucket covers
  // [bucket_lower(i), bucket_upper(i)) and the ranges tile [0, 2^64).
  static std::size_t bucket_index(std::uint64_t ticks);
  static std::uint64_t bucket_lower(std::size_t index);
  // Exclusive upper bound; the last bucket reports UINT64_MAX.
  static std::uint64_t bucket_upper(std::size_t index);

  // Record one observation. Negative and NaN values clamp to 0; values past
  // 2^63 saturate into the top buckets.
  void record(double value);

  // Bucket-wise addition; exact and associative.
  void merge(const Histogram& other);

  std::uint64_t count() const { return count_; }
  // Sum of the recorded tick values (integers, so order-independent).
  std::uint64_t sum_ticks() const { return sum_ticks_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_ticks_) / static_cast<double>(count_);
  }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  // Percentile in [0, 100], linearly interpolated inside the hit bucket and
  // clamped to the recorded [min, max] so edge percentiles never extrapolate
  // past observed values. Empty histograms report 0.
  double percentile(double p) const;

  const std::array<std::uint64_t, kNumBuckets>& buckets() const { return counts_; }

  void clear() { *this = Histogram(); }

  bool operator==(const Histogram& other) const {
    return count_ == other.count_ && sum_ticks_ == other.sum_ticks_ &&
           min_ == other.min_ && max_ == other.max_ && counts_ == other.counts_;
  }

 private:
  std::array<std::uint64_t, kNumBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ticks_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace alchemist::obs
