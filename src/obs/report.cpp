#include "obs/report.h"

#include <cmath>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "obs/json.h"

namespace alchemist::obs {

namespace {

void write_histogram(std::ostream& out, const Histogram& h) {
  out << "{ \"count\": " << json_number(h.count())
      << ", \"sum_ticks\": " << json_number(h.sum_ticks())
      << ", \"min\": " << json_number(h.min())
      << ", \"max\": " << json_number(h.max())
      << ", \"p50\": " << json_number(h.percentile(50))
      << ", \"p95\": " << json_number(h.percentile(95))
      << ", \"p99\": " << json_number(h.percentile(99)) << ", \"buckets\": [";
  bool first = true;
  for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    if (h.buckets()[i] == 0) continue;
    if (!first) out << ", ";
    first = false;
    out << "[" << json_number(Histogram::bucket_lower(i)) << ", "
        << json_number(h.buckets()[i]) << "]";
  }
  out << "] }";
}

void write_unit_cycles(std::ostream& out, const UnitCycles& u,
                       const char* indent) {
  out << "{ \"busy\": " << json_number(u.busy)
      << ", \"reduction\": " << json_number(u.reduction)
      << ", \"stall_scratchpad\": " << json_number(u.stall_scratchpad)
      << ", \"stall_dependency\": " << json_number(u.stall_dependency)
      << ", \"idle\": " << json_number(u.idle);
  if (!u.class_occupied.empty()) {
    out << ",\n" << indent << "  \"classes\": {";
    bool first = true;
    for (const auto& [cls, cycles] : u.class_occupied) {
      if (!first) out << ", ";
      first = false;
      out << json_string(cls) << ": " << json_number(cycles);
    }
    out << "} ";
  } else {
    out << " ";
  }
  out << "}";
}

void write_utilization(std::ostream& out, const UtilizationProfile& p) {
  out << "      \"utilization\": {\n";
  out << "        \"schema\": " << json_string(kUtilizationSchema) << ",\n";
  out << "        \"total_cycles\": " << json_number(p.total_cycles) << ",\n";
  out << "        \"num_units\": "
      << json_number(static_cast<std::uint64_t>(p.units.size())) << ",\n";
  out << "        \"occupancy\": " << json_number(p.occupancy()) << ",\n";
  out << "        \"aggregate\": ";
  write_unit_cycles(out, p.aggregate(), "        ");
  out << ",\n        \"units\": [";
  bool first = true;
  for (const UnitCycles& u : p.units) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "          ";
    write_unit_cycles(out, u, "          ");
  }
  out << (first ? "]\n" : "\n        ]\n");
  out << "      }";
}

void write_memory(std::ostream& out, const MemoryProfile& m) {
  out << "      \"memory\": {\n";
  out << "        \"schema\": " << json_string(kMemorySchema) << ",\n";
  out << "        \"total_cycles\": " << json_number(m.total_cycles) << ",\n";
  out << "        \"total_bytes\": " << json_number(m.total_bytes) << ",\n";
  out << "        \"attributed_total\": " << json_number(m.attributed_total())
      << ",\n";
  out << "        \"attributed\": {";
  bool first = true;
  for (const auto& [operand, classes] : m.attributed) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "          " << json_string(operand) << ": {";
    bool first_cls = true;
    for (const auto& [cls, bytes] : classes) {
      if (!first_cls) out << ", ";
      first_cls = false;
      out << json_string(cls) << ": " << json_number(bytes);
    }
    out << "}";
  }
  out << (first ? "},\n" : "\n        },\n");
  out << "        \"key_fetch_bytes\": " << json_number(m.key_fetch_bytes())
      << ",\n";
  out << "        \"key_refetch_bytes\": " << json_number(m.key_refetch_bytes())
      << ",\n";
  out << "        \"keys\": {";
  first = true;
  for (const auto& [id, k] : m.keys) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "          " << json_string(std::to_string(id))
        << ": { \"operand\": " << json_string(k.operand)
        << ", \"fetches\": " << json_number(k.fetches)
        << ", \"total_bytes\": " << json_number(k.total_bytes)
        << ", \"refetch_bytes\": " << json_number(k.refetch_bytes) << " }";
  }
  out << (first ? "},\n" : "\n        },\n");
  out << "        \"scratch_capacity_bytes\": "
      << json_number(m.scratch_capacity_bytes) << ",\n";
  out << "        \"scratch_peak_bytes\": " << json_number(m.scratch_peak_bytes)
      << ",\n";
  out << "        \"evictions\": " << json_number(m.evictions) << ",\n";
  out << "        \"bw_util\": [";
  first = true;
  for (double v : m.bw_util) {
    if (!first) out << ", ";
    first = false;
    out << json_number(v);
  }
  out << "],\n";
  out << "        \"occupancy_bytes\": [";
  first = true;
  for (std::uint64_t v : m.occupancy_bytes) {
    if (!first) out << ", ";
    first = false;
    out << json_number(v);
  }
  out << "]\n";
  out << "      }";
}

}  // namespace

void MetricsReport::write_json(std::ostream& out) const {
  out << "{\n  \"schema\": " << json_string(kMetricsSchema) << ",\n";
  out << "  \"tool\": " << json_string(tool_) << ",\n";
  out << "  \"runs\": [";
  bool first_run = true;
  for (const RunMetrics& run : runs_) {
    out << (first_run ? "\n" : ",\n");
    first_run = false;
    out << "    {\n      \"workload\": " << json_string(run.workload) << ",\n";
    out << "      \"accelerator\": " << json_string(run.accelerator) << ",\n";

    // Non-finite gauges serialize as null; tally them so the report itself
    // records that values were dropped.
    std::uint64_t dropped_nonfinite = 0;
    for (const auto& [key, value] : run.registry.gauges()) {
      if (!std::isfinite(value)) ++dropped_nonfinite;
    }
    std::map<std::string, std::uint64_t> counters = run.registry.counters();
    if (dropped_nonfinite > 0)
      counters["report.dropped_nonfinite"] += dropped_nonfinite;

    out << "      \"counters\": {";
    bool first = true;
    for (const auto& [key, value] : counters) {
      out << (first ? "\n" : ",\n");
      first = false;
      out << "        " << json_string(key) << ": " << json_number(value);
    }
    out << (first ? "},\n" : "\n      },\n");
    out << "      \"gauges\": {";
    first = true;
    for (const auto& [key, value] : run.registry.gauges()) {
      out << (first ? "\n" : ",\n");
      first = false;
      out << "        " << json_string(key) << ": " << json_number(value);
    }
    const bool has_spans = !run.spans.empty() || run.spans_recorded > 0;
    const bool has_mem = run.memory.enabled();
    const bool more =
        !run.registry.histograms().empty() || run.profile.enabled() ||
        has_mem || has_spans;
    out << (first ? "}" : "\n      }") << (more ? ",\n" : "\n");
    if (!run.registry.histograms().empty()) {
      out << "      \"histograms\": {";
      first = true;
      for (const auto& [key, hist] : run.registry.histograms()) {
        out << (first ? "\n" : ",\n");
        first = false;
        out << "        " << json_string(key) << ": ";
        write_histogram(out, hist);
      }
      out << (first ? "}" : "\n      }")
          << (run.profile.enabled() || has_mem || has_spans ? ",\n" : "\n");
    }
    if (run.profile.enabled()) {
      write_utilization(out, run.profile);
      out << (has_mem || has_spans ? ",\n" : "\n");
    }
    if (has_mem) {
      write_memory(out, run.memory);
      out << (has_spans ? ",\n" : "\n");
    }
    if (has_spans) {
      out << "      \"spans\": ";
      write_spans_json(out, run.spans, run.spans_recorded, run.spans_dropped,
                       tool_);
      // write_spans_json ends with a newline; nothing else to close here.
    }
    out << "    }";
  }
  out << (first_run ? "]\n" : "\n  ]\n") << "}\n";
}

std::string MetricsReport::json() const {
  std::ostringstream out;
  write_json(out);
  return out.str();
}

bool MetricsReport::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_json(out);
  return static_cast<bool>(out);
}

}  // namespace alchemist::obs
