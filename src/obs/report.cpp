#include "obs/report.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/json.h"

namespace alchemist::obs {

void MetricsReport::write_json(std::ostream& out) const {
  out << "{\n  \"schema\": " << json_string(kMetricsSchema) << ",\n";
  out << "  \"tool\": " << json_string(tool_) << ",\n";
  out << "  \"runs\": [";
  bool first_run = true;
  for (const RunMetrics& run : runs_) {
    out << (first_run ? "\n" : ",\n");
    first_run = false;
    out << "    {\n      \"workload\": " << json_string(run.workload) << ",\n";
    out << "      \"accelerator\": " << json_string(run.accelerator) << ",\n";
    out << "      \"counters\": {";
    bool first = true;
    for (const auto& [key, value] : run.registry.counters()) {
      out << (first ? "\n" : ",\n");
      first = false;
      out << "        " << json_string(key) << ": " << json_number(value);
    }
    out << (first ? "},\n" : "\n      },\n");
    out << "      \"gauges\": {";
    first = true;
    for (const auto& [key, value] : run.registry.gauges()) {
      out << (first ? "\n" : ",\n");
      first = false;
      out << "        " << json_string(key) << ": " << json_number(value);
    }
    out << (first ? "}\n" : "\n      }\n");
    out << "    }";
  }
  out << (first_run ? "]\n" : "\n  ]\n") << "}\n";
}

std::string MetricsReport::json() const {
  std::ostringstream out;
  write_json(out);
  return out.str();
}

bool MetricsReport::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_json(out);
  return static_cast<bool>(out);
}

}  // namespace alchemist::obs
