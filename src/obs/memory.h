// Memory-system attribution profile ("memory.v1").
//
// The MemProfiler in src/sim fills one MemoryProfile per run, breaking the
// single sim.hbm.bytes total down three ways:
//
//   attributed   bytes per (operand class x op class), e.g. how much of the
//                stream was evaluation-key material feeding DecompPolyMult.
//                The grand total equals sim.hbm.bytes EXACTLY — descriptor
//                bytes partition each op's hbm_bytes and any unattributed
//                remainder is accounted as ct_limb, so byte conservation is
//                an invariant, not an estimate (tools/check_mem_report.py
//                gates it in CI).
//   key ledger   per key_id: fetch count, total streamed bytes, and re-fetch
//                bytes (everything after the first fetch). The re-fetch sum
//                is the ARK-style inter-op key-reuse headroom a residency-
//                aware scheduler could reclaim.
//   timelines    an epoch-bucketed HBM bandwidth-utilization series and a
//                scratchpad-occupancy series with its working-set high-water
//                mark against the ArchConfig capacity.
//
// Like UtilizationProfile, the profile lives OUTSIDE the metric Registry
// (SimResult.mem_profile): registries feed bit-identity checks and
// checkpoint frames, and profiling must never perturb either. MetricsReport
// serializes it as the "memory" section with schema "memory.v1".
//
// Operand/op classes are string tags ("evk", "ntt", ...) rather than metaop
// enums so obs stays below metaop in the layering, mirroring
// UnitCycles::class_occupied.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace alchemist::obs {

inline constexpr const char* kMemorySchema = "memory.v1";

// Reuse ledger entry for one key_id.
struct KeyFetches {
  std::string operand;            // operand-class tag ("evk", "rotation_key")
  std::uint64_t fetches = 0;      // times the key streamed from HBM
  std::uint64_t total_bytes = 0;  // all streamed bytes of this key
  std::uint64_t refetch_bytes = 0;  // bytes after the first fetch (headroom)
};

struct MemoryProfile {
  bool active = false;  // a MemProfiler ran (even over an empty graph)
  std::uint64_t total_cycles = 0;
  std::uint64_t total_bytes = 0;  // == sim.hbm.bytes of the run

  // attributed[operand_tag][op_class_tag] -> bytes. Sums to total_bytes.
  std::map<std::string, std::map<std::string, std::uint64_t>> attributed;

  // Key-reuse ledger, keyed by the lowering's key_id.
  std::map<std::uint64_t, KeyFetches> keys;

  // Epoch timelines: kEpochs buckets spanning [0, total_cycles). bw_util is
  // the fraction of peak HBM bandwidth the modeled stream used during the
  // epoch; occupancy_bytes samples scratchpad residency at each epoch start.
  std::vector<double> bw_util;
  std::vector<std::uint64_t> occupancy_bytes;

  // Scratchpad model: configured capacity, residency high-water mark, and
  // evictions (one per residency interval that ends, i.e. once per fetched
  // working set — a re-fetch in the ledger implies a prior eviction here).
  std::uint64_t scratch_capacity_bytes = 0;
  std::uint64_t scratch_peak_bytes = 0;
  std::uint64_t evictions = 0;

  bool enabled() const { return active; }

  std::uint64_t attributed_total() const {
    std::uint64_t sum = 0;
    for (const auto& [op, classes] : attributed)
      for (const auto& [cls, bytes] : classes) sum += bytes;
    return sum;
  }
  // Ledger aggregates (all keys).
  std::uint64_t key_fetch_bytes() const {
    std::uint64_t sum = 0;
    for (const auto& [id, k] : keys) sum += k.total_bytes;
    return sum;
  }
  std::uint64_t key_refetch_bytes() const {
    std::uint64_t sum = 0;
    for (const auto& [id, k] : keys) sum += k.refetch_bytes;
    return sum;
  }

  void clear() { *this = MemoryProfile{}; }
};

}  // namespace alchemist::obs
