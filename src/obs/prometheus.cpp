#include "obs/prometheus.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <string_view>
#include <utility>
#include <vector>

namespace alchemist::obs {

namespace {

bool valid_name_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

// Split a canonical registry key into (name, sorted label pairs).
struct ParsedKey {
  std::string_view name;
  std::vector<std::pair<std::string_view, std::string_view>> labels;
};

ParsedKey parse_key(std::string_view key) {
  ParsedKey parsed;
  const std::size_t brace = key.find('{');
  if (brace == std::string_view::npos) {
    parsed.name = key;
    return parsed;
  }
  parsed.name = key.substr(0, brace);
  std::string_view tags = key.substr(brace + 1);
  if (!tags.empty() && tags.back() == '}') tags.remove_suffix(1);
  while (!tags.empty()) {
    const std::size_t comma = tags.find(',');
    const std::string_view tag = tags.substr(0, comma);
    const std::size_t eq = tag.find('=');
    if (eq != std::string_view::npos)
      parsed.labels.emplace_back(tag.substr(0, eq), tag.substr(eq + 1));
    if (comma == std::string_view::npos) break;
    tags.remove_prefix(comma + 1);
  }
  return parsed;
}

std::string escape_label_value(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

void append_labels(
    std::ostream& out,
    const std::vector<std::pair<std::string_view, std::string_view>>& labels,
    const char* extra_key = nullptr, const std::string* extra_value = nullptr) {
  if (labels.empty() && extra_key == nullptr) return;
  out << '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out << ',';
    first = false;
    out << prometheus_name(k) << "=\"" << escape_label_value(v) << '"';
  }
  if (extra_key != nullptr) {
    if (!first) out << ',';
    out << extra_key << "=\"" << *extra_value << '"';
  }
  out << '}';
}

std::string format_value(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string format_value(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

// Emit one `# TYPE` header per family. Registry iteration is sorted by
// canonical key, so all series of a family are contiguous.
void type_header(std::ostream& out, const std::string& family,
                 const char* type, std::string& last_family) {
  if (family == last_family) return;
  last_family = family;
  out << "# TYPE " << family << ' ' << type << '\n';
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) out += valid_name_char(c) ? c : '_';
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

std::string prometheus_exposition(const Registry& reg) {
  std::ostringstream out;
  std::string last_family;

  for (const auto& [key, value] : reg.counters()) {
    const ParsedKey parsed = parse_key(key);
    const std::string family = prometheus_name(parsed.name);
    type_header(out, family, "counter", last_family);
    out << family;
    append_labels(out, parsed.labels);
    out << ' ' << format_value(value) << '\n';
  }

  last_family.clear();
  for (const auto& [key, value] : reg.gauges()) {
    const ParsedKey parsed = parse_key(key);
    const std::string family = prometheus_name(parsed.name);
    type_header(out, family, "gauge", last_family);
    out << family;
    append_labels(out, parsed.labels);
    out << ' ' << format_value(value) << '\n';
  }

  last_family.clear();
  for (const auto& [key, hist] : reg.histograms()) {
    const ParsedKey parsed = parse_key(key);
    const std::string family = prometheus_name(parsed.name);
    type_header(out, family, "histogram", last_family);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      if (hist.buckets()[i] == 0) continue;
      cum += hist.buckets()[i];
      const std::string le =
          format_value(static_cast<double>(Histogram::bucket_upper(i)));
      out << family << "_bucket";
      append_labels(out, parsed.labels, "le", &le);
      out << ' ' << format_value(cum) << '\n';
    }
    const std::string inf = "+Inf";
    out << family << "_bucket";
    append_labels(out, parsed.labels, "le", &inf);
    out << ' ' << format_value(hist.count()) << '\n';
    out << family << "_sum";
    append_labels(out, parsed.labels);
    out << ' ' << format_value(hist.sum_ticks()) << '\n';
    out << family << "_count";
    append_labels(out, parsed.labels);
    out << ' ' << format_value(hist.count()) << '\n';
  }

  return out.str();
}

}  // namespace alchemist::obs
