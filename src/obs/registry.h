// Counter/gauge registry — the named-metric backbone of the simulators.
//
// Every quantity the simulators account for (cycles, stalls, multiplications,
// HBM traffic, per-class attribution) lives here as a named metric with
// optional key=value tags, e.g.
//
//   sim.cycles                      total wall cycles
//   sim.cycles{class=ntt}           wall cycles attributed to the NTT class
//   sim.stall{cause=hbm}            cycles lost to off-chip streaming
//   sim.mults{lazy=true}            word-mults under lazy reduction
//
// Counters are monotonically-accumulated integers; gauges are set-once (or
// overwritten) doubles for derived rates like utilization; histograms are
// fixed-bucket latency distributions (obs/histogram.h). Keys are stored in
// canonical form (tags sorted by key) so iteration — and therefore every JSON
// export — is deterministic.
//
// Naming rules (all metrics in this repo follow these):
//   * Names are dotted `domain.metric[.sub]` paths, lowercase, no spaces:
//     the domain prefix states which layer owns the metric —
//       sim.*         simulator cycle/op accounting (src/sim)
//       util.*        per-unit cycle attribution from the UnitProfiler
//       fault.*       fault-injection outcomes (src/fault)
//       svc.*         serving-layer admission/terminal counters (src/svc)
//       svc.latency.* serving-layer latency histograms and percentiles
//       substrate.*   host thread-pool / kernel substrate (src/common)
//       report.*      synthesized at export time (src/obs/report.cpp)
//   * Dimensions go in tags, never in the name: `sim.cycles{class=ntt}`,
//     not `sim.cycles.ntt`. Tag keys and values are lowercase.
//   * Units are a name suffix when not cycles: `_us`, `_ns`, `_bytes`
//     (e.g. `svc.latency.run_us`). Unsuffixed sim metrics are cycles/counts.
//   * Percentile gauges derived from a histogram reuse its name plus a
//     `.pNN` suffix (`svc.latency.total_us.p95`) so the Prometheus
//     exposition never collides with the histogram family itself.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/histogram.h"

namespace alchemist::obs {

// A tag list as written at the call site; canonicalized by metric_key().
using TagList =
    std::initializer_list<std::pair<std::string_view, std::string_view>>;

// Canonical key string: `name` or `name{k1=v1,k2=v2}` with tags sorted by key.
std::string metric_key(std::string_view name, TagList tags);

class Registry {
 public:
  // Counters: monotonically accumulating integers.
  void add(std::string_view name, std::uint64_t delta, TagList tags = {});
  std::uint64_t counter(std::string_view name, TagList tags = {}) const;

  // Gauges: last-write-wins doubles (rates, ratios, derived values).
  void set_gauge(std::string_view name, double value, TagList tags = {});
  double gauge(std::string_view name, TagList tags = {}) const;

  // Histograms: fixed-bucket latency distributions (see obs/histogram.h).
  void observe(std::string_view name, double value, TagList tags = {});
  const Histogram& histogram(std::string_view name, TagList tags = {}) const;

  // Canonical-key access for exporters and tests.
  std::uint64_t counter_by_key(const std::string& key) const;
  void set_gauge_by_key(const std::string& key, double value);
  const std::map<std::string, std::uint64_t>& counters() const { return counters_; }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }

  // Fold another registry into this one (counters add, gauges overwrite,
  // histograms merge bucket-wise) — used when aggregating multiple runs into
  // one report.
  void merge(const Registry& other);

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }
  void clear();

  // Sum of all counters whose canonical key starts with `prefix` — e.g.
  // total_over_tags("sim.cycles{class=") sums the per-class attribution.
  std::uint64_t total_over_tags(std::string_view prefix) const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace alchemist::obs
