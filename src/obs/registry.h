// Counter/gauge registry — the named-metric backbone of the simulators.
//
// Every quantity the simulators account for (cycles, stalls, multiplications,
// HBM traffic, per-class attribution) lives here as a named metric with
// optional key=value tags, e.g.
//
//   sim.cycles                      total wall cycles
//   sim.cycles{class=ntt}           wall cycles attributed to the NTT class
//   sim.stall{cause=hbm}            cycles lost to off-chip streaming
//   sim.mults{lazy=true}            word-mults under lazy reduction
//
// Counters are monotonically-accumulated integers; gauges are set-once (or
// overwritten) doubles for derived rates like utilization. Keys are stored in
// canonical form (tags sorted by key) so iteration — and therefore every JSON
// export — is deterministic.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace alchemist::obs {

// A tag list as written at the call site; canonicalized by metric_key().
using TagList =
    std::initializer_list<std::pair<std::string_view, std::string_view>>;

// Canonical key string: `name` or `name{k1=v1,k2=v2}` with tags sorted by key.
std::string metric_key(std::string_view name, TagList tags);

class Registry {
 public:
  // Counters: monotonically accumulating integers.
  void add(std::string_view name, std::uint64_t delta, TagList tags = {});
  std::uint64_t counter(std::string_view name, TagList tags = {}) const;

  // Gauges: last-write-wins doubles (rates, ratios, derived values).
  void set_gauge(std::string_view name, double value, TagList tags = {});
  double gauge(std::string_view name, TagList tags = {}) const;

  // Canonical-key access for exporters and tests.
  std::uint64_t counter_by_key(const std::string& key) const;
  const std::map<std::string, std::uint64_t>& counters() const { return counters_; }
  const std::map<std::string, double>& gauges() const { return gauges_; }

  // Fold another registry into this one (counters add, gauges overwrite) —
  // used when aggregating multiple runs into one report.
  void merge(const Registry& other);

  bool empty() const { return counters_.empty() && gauges_.empty(); }
  void clear();

  // Sum of all counters whose canonical key starts with `prefix` — e.g.
  // total_over_tags("sim.cycles{class=") sums the per-class attribution.
  std::uint64_t total_over_tags(std::string_view prefix) const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
};

}  // namespace alchemist::obs
