#include "obs/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace alchemist::obs {

std::size_t Histogram::bucket_index(std::uint64_t ticks) {
  if (ticks < kSubBuckets) return static_cast<std::size_t>(ticks);
  const int msb = 63 - std::countl_zero(ticks);
  const int shift = msb - 3;
  const std::size_t offset = static_cast<std::size_t>((ticks >> shift) & 7u);
  return static_cast<std::size_t>(msb - 2) * kSubBuckets + offset;
}

std::uint64_t Histogram::bucket_lower(std::size_t index) {
  if (index < kSubBuckets) return index;
  return (std::uint64_t{8} + index % kSubBuckets) << (index / kSubBuckets - 1);
}

std::uint64_t Histogram::bucket_upper(std::size_t index) {
  if (index + 1 < kNumBuckets) return bucket_lower(index + 1);
  return UINT64_MAX;
}

namespace {

// Largest double strictly below 2^64; converting anything bigger to
// uint64_t is undefined behaviour, so saturate first.
constexpr double kMaxTickDouble = 18446744073709549568.0;

std::uint64_t to_ticks(double value) {
  if (std::isnan(value) || value <= 0.0) return 0;
  if (value >= kMaxTickDouble) return UINT64_MAX;
  return static_cast<std::uint64_t>(value);
}

}  // namespace

void Histogram::record(double value) {
  const std::uint64_t ticks = to_ticks(value);
  counts_[bucket_index(ticks)] += 1;
  sum_ticks_ += ticks;
  const double v = static_cast<double>(ticks);
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  count_ += 1;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kNumBuckets; ++i) counts_[i] += other.counts_[i];
  sum_ticks_ += other.sum_ticks_;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double rank = (p / 100.0) * static_cast<double>(count_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    if (counts_[i] == 0) continue;
    const std::uint64_t next = cum + counts_[i];
    if (static_cast<double>(next) >= rank) {
      const double within =
          counts_[i] == 0 ? 0.0
                          : (rank - static_cast<double>(cum)) /
                                static_cast<double>(counts_[i]);
      const double lo = static_cast<double>(bucket_lower(i));
      const double hi = static_cast<double>(bucket_upper(i));
      const double v = lo + std::clamp(within, 0.0, 1.0) * (hi - lo);
      return std::clamp(v, min_, max_);
    }
    cum = next;
  }
  return max_;
}

}  // namespace alchemist::obs
