#include "obs/timeline.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "obs/json.h"

namespace alchemist::obs {

namespace {

void write_args(std::ostream& out, const TraceEvent& ev) {
  out << "\"args\":{";
  bool first = true;
  for (const auto& [k, v] : ev.num_args) {
    if (!first) out << ',';
    first = false;
    out << json_string(k) << ':' << json_number(v);
  }
  for (const auto& [k, v] : ev.str_args) {
    if (!first) out << ',';
    first = false;
    out << json_string(k) << ':' << json_string(v);
  }
  out << '}';
}

}  // namespace

void Timeline::write_chrome_trace(std::ostream& out) const {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&]() -> std::ostream& {
    if (!first) out << ",\n";
    first = false;
    return out;
  };

  // Metadata: one process, one named thread per track.
  sep() << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
           "\"args\":{\"name\":"
        << json_string(process_name_) << "}}";
  for (const auto& [tid, name] : track_names_) {
    sep() << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
          << ",\"args\":{\"name\":" << json_string(name) << "}}";
  }
  // Perfetto sorts threads by index when given one; keep track-id order.
  for (const auto& [tid, name] : track_names_) {
    sep() << "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
          << ",\"args\":{\"sort_index\":" << tid << "}}";
  }

  // Complete ("X") and counter ("C") events in one stream, deterministically
  // ordered by (ts, tid, name) so golden-trace diffs stay stable.
  struct Row {
    double ts;
    std::uint32_t tid;
    const std::string* name;
    const TraceEvent* x;
    const CounterEvent* c;
    const FlowEvent* f;
  };
  std::vector<Row> sorted;
  sorted.reserve(events_.size() + counter_events_.size() +
                 flow_events_.size());
  for (const TraceEvent& ev : events_)
    sorted.push_back({ev.ts, ev.tid, &ev.name, &ev, nullptr, nullptr});
  for (const CounterEvent& ev : counter_events_)
    sorted.push_back({ev.ts, ev.tid, &ev.name, nullptr, &ev, nullptr});
  for (const FlowEvent& ev : flow_events_)
    sorted.push_back({ev.ts, ev.tid, &ev.name, nullptr, nullptr, &ev});
  std::stable_sort(sorted.begin(), sorted.end(), [](const Row& a, const Row& b) {
    if (a.ts != b.ts) return a.ts < b.ts;
    if (a.tid != b.tid) return a.tid < b.tid;
    return *a.name < *b.name;
  });
  for (const Row& row : sorted) {
    if (row.f != nullptr) {
      const FlowEvent& ev = *row.f;
      char id_buf[24];
      std::snprintf(id_buf, sizeof(id_buf), "0x%016llx",
                    static_cast<unsigned long long>(ev.id));
      sep() << "{\"name\":" << json_string(ev.name)
            << ",\"cat\":" << json_string(ev.cat) << ",\"ph\":\"" << ev.phase
            << "\",\"id\":\"" << id_buf << "\",\"pid\":0,\"tid\":" << ev.tid
            << ",\"ts\":" << json_number(ev.ts);
      // Finish steps bind to the enclosing slice, not the next one.
      if (ev.phase == 'f') out << ",\"bp\":\"e\"";
      out << '}';
    } else if (row.x != nullptr) {
      const TraceEvent& ev = *row.x;
      sep() << "{\"name\":" << json_string(ev.name)
            << ",\"cat\":" << json_string(ev.cat)
            << ",\"ph\":\"X\",\"pid\":0,\"tid\":" << ev.tid
            << ",\"ts\":" << json_number(ev.ts)
            << ",\"dur\":" << json_number(ev.dur) << ',';
      write_args(out, ev);
      out << '}';
    } else {
      const CounterEvent& ev = *row.c;
      sep() << "{\"name\":" << json_string(ev.name)
            << ",\"cat\":\"util\",\"ph\":\"C\",\"pid\":0,\"tid\":" << ev.tid
            << ",\"ts\":" << json_number(ev.ts) << ",\"args\":{";
      bool first_arg = true;
      for (const auto& [k, v] : ev.series) {
        if (!first_arg) out << ',';
        first_arg = false;
        out << json_string(k) << ':' << json_number(v);
      }
      out << "}}";
    }
  }
  out << "\n]}\n";
}

std::string Timeline::chrome_trace_json() const {
  std::ostringstream out;
  write_chrome_trace(out);
  return out.str();
}

}  // namespace alchemist::obs
