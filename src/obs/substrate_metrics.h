// substrate.* metrics: the parallel lazy-reduction substrate's accounting
// (common/thread_pool.h) rendered as a PR-1 telemetry Registry, so pool
// activity rides the same export paths as sim.* and svc.* — MetricsReport
// JSON, bench baselines, and JobRunner snapshots.
//
//   substrate.threads            gauge: pool width incl. the calling thread
//   substrate.parallel_for       fan-outs that split across the pool
//   substrate.inline_runs        calls run sequentially (1 thread/small/nested)
//   substrate.tasks              chunks executed across all fan-outs
//   substrate.kernel_ns{kernel=} cumulative wall ns per kernel family
//   substrate.isa{isa=}          gauge: 1 on the process's active SIMD ISA
//   substrate.isa_dispatch{kernel=,isa=}  kernel dispatches per ISA variant
//
// kernel_ns (and anything else wall-clock) is machine-dependent: exclude it
// from baseline gates (check_bench_baseline.py --ignore 'wall_ns|kernel_ns').
// isa_dispatch rows for avx2/avx512 only exist on hosts whose CPUID allows
// them — baselines treat those runs as optional (--optional).
#pragma once

#include "common/simd.h"
#include "common/thread_pool.h"
#include "obs/registry.h"

namespace alchemist::obs {

inline Registry substrate_registry() {
  Registry reg;
  const SubstrateStats s = ThreadPool::instance().stats();
  reg.set_gauge("substrate.threads", static_cast<double>(s.threads));
  reg.add("substrate.parallel_for", s.parallel_fors);
  reg.add("substrate.inline_runs", s.inline_runs);
  reg.add("substrate.tasks", s.tasks);
  for (const auto& [kernel, ns] : s.kernel_ns) {
    reg.add("substrate.kernel_ns", ns, {{"kernel", kernel}});
  }
  reg.set_gauge("substrate.isa", 1.0, {{"isa", simd::isa_name(simd::active_isa())}});
  for (std::size_t k = 0; k < simd::kNumKerns; ++k) {
    for (std::size_t i = 0; i < simd::kNumIsas; ++i) {
      const auto kern = static_cast<simd::Kern>(k);
      const auto isa = static_cast<simd::Isa>(i);
      const std::uint64_t count = simd::dispatch_count(kern, isa);
      if (count == 0) continue;  // only variants that actually served traffic
      reg.add("substrate.isa_dispatch", count,
              {{"kernel", simd::kern_name(kern)}, {"isa", simd::isa_name(isa)}});
    }
  }
  return reg;
}

}  // namespace alchemist::obs
