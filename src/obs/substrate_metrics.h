// substrate.* metrics: the parallel lazy-reduction substrate's accounting
// (common/thread_pool.h) rendered as a PR-1 telemetry Registry, so pool
// activity rides the same export paths as sim.* and svc.* — MetricsReport
// JSON, bench baselines, and JobRunner snapshots.
//
//   substrate.threads            gauge: pool width incl. the calling thread
//   substrate.parallel_for       fan-outs that split across the pool
//   substrate.inline_runs        calls run sequentially (1 thread/small/nested)
//   substrate.tasks              chunks executed across all fan-outs
//   substrate.kernel_ns{kernel=} cumulative wall ns per kernel family
//
// kernel_ns (and anything else wall-clock) is machine-dependent: exclude it
// from baseline gates (check_bench_baseline.py --ignore 'wall_ns|kernel_ns').
#pragma once

#include "common/thread_pool.h"
#include "obs/registry.h"

namespace alchemist::obs {

inline Registry substrate_registry() {
  Registry reg;
  const SubstrateStats s = ThreadPool::instance().stats();
  reg.set_gauge("substrate.threads", static_cast<double>(s.threads));
  reg.add("substrate.parallel_for", s.parallel_fors);
  reg.add("substrate.inline_runs", s.inline_runs);
  reg.add("substrate.tasks", s.tasks);
  for (const auto& [kernel, ns] : s.kernel_ns) {
    reg.add("substrate.kernel_ns", ns, {{"kernel", kernel}});
  }
  return reg;
}

}  // namespace alchemist::obs
