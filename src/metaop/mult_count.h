// Multiplication-count analytics: Tables 2-3 and Fig. 7(a) of the paper.
//
// Counting convention (matching the paper): a modular multiplication with
// eager Barrett reduction costs 3 word multiplications (1 product + 2 for the
// reduction); under the Meta-OP's lazy reduction, the product costs 1 and a
// deferred reduction costs 2 per accumulated output. Pure additions cost no
// multiplications in either scheme.
#pragma once

#include <array>
#include <cstdint>

#include "metaop/op_graph.h"

namespace alchemist::metaop {

struct MultCounts {
  std::uint64_t origin = 0;  // modularized design, eager reduction
  std::uint64_t meta = 0;    // (M_8 A_8)_n R_8 with lazy reduction

  // Fractional change meta vs origin (negative = savings).
  double relative_change() const {
    return origin == 0 ? 0.0
                       : (static_cast<double>(meta) - static_cast<double>(origin)) /
                             static_cast<double>(origin);
  }
  MultCounts& operator+=(const MultCounts& other) {
    origin += other.origin;
    meta += other.meta;
    return *this;
  }
};

// N-point NTT over `channels` channels. Origin: 3 mults per radix-2
// butterfly; meta: radix-8 butterflies at 40 word-mults per 8 outputs
// (the +10% of §4.2).
MultCounts ntt_mults(std::size_t n, std::size_t channels);

// Bconv/Modup L -> K (Table 3): origin (3KL + 3L)N, meta (KL + 3L + 2K)N.
MultCounts bconv_mults(std::size_t n, std::size_t l_in, std::size_t k_out);

// DecompPolyMult (Table 2): origin 3*dnum*N, meta (dnum + 2)*N per channel.
MultCounts decomp_mults(std::size_t n, std::size_t dnum, std::size_t channels);

// Elementwise modular multiplication (same cost both ways: 3N per channel).
MultCounts elementwise_mults(std::size_t n, std::size_t channels);

MultCounts count(const HighOp& op);
MultCounts count(const OpGraph& graph);

// Per-operator-class multiplication shares (Fig. 1's "operator ratio").
// Index with static_cast<std::size_t>(OpClass).
std::array<std::uint64_t, 4> class_mults(const OpGraph& graph, bool meta);

}  // namespace alchemist::metaop
