// Lowering of high-level polynomial operators to Meta-OP streams (§4.2).
//
//   NTT            -> radix-8 butterflies as (M_8 A_8)_3 R_8 (plus radix-4 as
//                     (M_8 A_8)_2 R_8 covering two butterflies) — Fig. 4(c)
//   Bconv/Modup    -> per output channel, (M_8 A_8)_L R_8 — Fig. 4(b)
//   DecompPolyMult -> (M_8 A_8)_dnum R_8 — Fig. 4(a)
//   Elementwise    -> (M_8 A_8)_1 R_8
#pragma once

#include "metaop/metaop.h"
#include "metaop/op_graph.h"

namespace alchemist::metaop {

// Stage split of an N-point NTT into radix-8 and radix-4 passes.
struct NttStagePlan {
  std::size_t radix8_stages = 0;
  std::size_t radix4_stages = 0;
};
NttStagePlan plan_ntt_stages(std::size_t n);

// One N-point negacyclic NTT over `channels` RNS channels.
MetaOpStream lower_ntt(std::size_t n, std::size_t channels);

// Bconv from L source channels to K target channels (Eq. 1): the per-channel
// q̂^{-1} scaling plus the K accumulations of depth L.
MetaOpStream lower_bconv(std::size_t n, std::size_t l_in, std::size_t k_out);

// DecompPolyMult: accumulate dnum digit polynomials times evk polynomials,
// for `channels` output channels.
MetaOpStream lower_decomp_poly_mult(std::size_t n, std::size_t dnum,
                                    std::size_t channels);

// Elementwise modular multiply/add over channels * n coefficients.
MetaOpStream lower_elementwise(std::size_t n, std::size_t channels);

// Dispatch on the IR node kind.
MetaOpStream lower(const HighOp& op);

// Lower a whole graph (concatenation; scheduling is the simulator's job).
MetaOpStream lower(const OpGraph& graph);

}  // namespace alchemist::metaop
