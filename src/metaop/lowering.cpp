#include "metaop/lowering.h"

#include <stdexcept>

#include "common/modarith.h"

namespace alchemist::metaop {

const char* to_string(AccessPattern p) {
  switch (p) {
    case AccessPattern::Slots: return "slots";
    case AccessPattern::Channel: return "channel";
    case AccessPattern::DnumGroup: return "dnum_group";
  }
  return "?";
}

const char* to_string(OpClass c) {
  switch (c) {
    case OpClass::Ntt: return "NTT";
    case OpClass::Bconv: return "Bconv";
    case OpClass::DecompPolyMult: return "DecompPolyMult";
    case OpClass::Elementwise: return "Elementwise";
    case OpClass::kNumClasses: break;
  }
  return "?";
}

const char* class_tag(OpClass c) {
  switch (c) {
    case OpClass::Ntt: return "ntt";
    case OpClass::Bconv: return "bconv";
    case OpClass::DecompPolyMult: return "decomp_poly_mult";
    case OpClass::Elementwise: return "elementwise";
    case OpClass::kNumClasses: break;
  }
  return "?";
}

OpClass class_of(OpKind kind) {
  switch (kind) {
    case OpKind::Ntt:
    case OpKind::Intt: return OpClass::Ntt;
    case OpKind::Bconv: return OpClass::Bconv;
    case OpKind::DecompPolyMult: return OpClass::DecompPolyMult;
    case OpKind::PointwiseMult:
    case OpKind::PointwiseAdd:
    case OpKind::Automorphism: return OpClass::Elementwise;
  }
  return OpClass::Elementwise;
}

const char* operand_tag(OperandClass c) {
  switch (c) {
    case OperandClass::Evk: return "evk";
    case OperandClass::RotationKey: return "rotation_key";
    case OperandClass::CtLimb: return "ct_limb";
    case OperandClass::Twiddle: return "twiddle";
    case OperandClass::Plaintext: return "plaintext";
    case OperandClass::kNumClasses: break;
  }
  return "?";
}

const char* to_string(OpKind kind) {
  switch (kind) {
    case OpKind::Ntt: return "NTT";
    case OpKind::Intt: return "INTT";
    case OpKind::Bconv: return "Bconv";
    case OpKind::DecompPolyMult: return "DecompPolyMult";
    case OpKind::PointwiseMult: return "PointwiseMult";
    case OpKind::PointwiseAdd: return "PointwiseAdd";
    case OpKind::Automorphism: return "Automorphism";
  }
  return "?";
}

std::uint64_t MetaOpStream::core_cycles() const {
  std::uint64_t total = 0;
  for (const MetaOpBatch& b : batches) total += b.core_cycles();
  return total;
}

std::uint64_t MetaOpStream::mult_count() const {
  std::uint64_t total = 0;
  for (const MetaOpBatch& b : batches) total += b.mult_count();
  return total;
}

std::uint64_t MetaOpStream::meta_op_count() const {
  std::uint64_t total = 0;
  for (const MetaOpBatch& b : batches) total += b.count;
  return total;
}

void MetaOpStream::append(const MetaOpStream& other) {
  batches.insert(batches.end(), other.batches.begin(), other.batches.end());
}

void MetaOpStream::append(MetaOpBatch batch) { batches.push_back(batch); }

NttStagePlan plan_ntt_stages(std::size_t n) {
  if (!is_power_of_two(n) || n < 16) {
    throw std::invalid_argument("plan_ntt_stages: N must be a power of two >= 16");
  }
  std::size_t log_n = 0;
  while ((std::size_t{1} << log_n) < n) ++log_n;
  NttStagePlan plan;
  plan.radix8_stages = log_n / 3;
  switch (log_n % 3) {
    case 0: plan.radix4_stages = 0; break;
    case 2: plan.radix4_stages = 1; break;
    case 1:  // 3a + 1 = 3(a-1) + 4: trade one radix-8 for two radix-4 stages
      plan.radix8_stages -= 1;
      plan.radix4_stages = 2;
      break;
  }
  return plan;
}

MetaOpStream lower_ntt(std::size_t n, std::size_t channels) {
  const NttStagePlan plan = plan_ntt_stages(n);
  MetaOpStream out;
  const std::size_t per_stage = n / kLanes * channels;
  if (plan.radix8_stages > 0) {
    // Radix-8 butterfly: three product groups -> (M_8 A_8)_3 R_8 (Fig. 4c).
    out.append(MetaOpBatch{3, per_stage * plan.radix8_stages, AccessPattern::Slots,
                           OpClass::Ntt});
  }
  if (plan.radix4_stages > 0) {
    // Two radix-4 butterflies fill the 8 lanes with two product groups.
    out.append(MetaOpBatch{2, per_stage * plan.radix4_stages, AccessPattern::Slots,
                           OpClass::Ntt});
  }
  return out;
}

MetaOpStream lower_bconv(std::size_t n, std::size_t l_in, std::size_t k_out) {
  if (l_in == 0 || k_out == 0) throw std::invalid_argument("lower_bconv: L,K >= 1");
  MetaOpStream out;
  // Step 1 (Fig. 4b): x * q̂^{-1} per input channel — elementwise.
  out.append(MetaOpBatch{1, n / kLanes * l_in, AccessPattern::Channel, OpClass::Bconv});
  // Step 2: per target channel, accumulate the L scaled contributions with a
  // single lazy reduction: (M_8 A_8)_L R_8.
  out.append(MetaOpBatch{l_in, n / kLanes * k_out, AccessPattern::Channel,
                         OpClass::Bconv});
  return out;
}

MetaOpStream lower_decomp_poly_mult(std::size_t n, std::size_t dnum,
                                    std::size_t channels) {
  if (dnum == 0) throw std::invalid_argument("lower_decomp_poly_mult: dnum >= 1");
  MetaOpStream out;
  out.append(MetaOpBatch{dnum, n / kLanes * channels, AccessPattern::DnumGroup,
                         OpClass::DecompPolyMult});
  return out;
}

MetaOpStream lower_elementwise(std::size_t n, std::size_t channels) {
  MetaOpStream out;
  out.append(MetaOpBatch{1, n / kLanes * channels, AccessPattern::Slots,
                         OpClass::Elementwise});
  return out;
}

MetaOpStream lower(const HighOp& op) {
  switch (op.kind) {
    case OpKind::Ntt:
    case OpKind::Intt:
      return lower_ntt(op.n, op.channels);
    case OpKind::Bconv:
      return lower_bconv(op.n, op.param_a, op.param_b);
    case OpKind::DecompPolyMult:
      return lower_decomp_poly_mult(op.n, op.param_a, op.channels);
    case OpKind::PointwiseMult:
    case OpKind::Automorphism:
      return lower_elementwise(op.n, op.channels);
    case OpKind::PointwiseAdd: {
      // A modular add of two operands runs as (M_8 A_8)_2 R_8: both inputs
      // pass through the multiply-accumulate lanes (x1) before the reduction.
      MetaOpStream out;
      out.append(MetaOpBatch{2, op.n / kLanes * op.channels, AccessPattern::Slots,
                             OpClass::Elementwise});
      return out;
    }
  }
  throw std::logic_error("lower: unknown op kind");
}

MetaOpStream lower(const OpGraph& graph) {
  MetaOpStream out;
  for (const HighOp& op : graph.ops) out.append(lower(op));
  return out;
}

}  // namespace alchemist::metaop
