// High-level polynomial operator graph — the shared IR between the FHE
// workload generators (src/workloads), the Meta-OP lowering (src/metaop) and
// the cycle simulator (src/sim).
//
// Each node is one polynomial-level operator over a set of RNS channels.
// Dependencies form a DAG; the simulator schedules ready nodes onto hardware.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace alchemist::metaop {

enum class OpKind {
  Ntt,             // forward NTT: channels * N-point transforms
  Intt,            // inverse NTT
  Bconv,           // RNS base conversion: param_a = L inputs, param_b = K outputs
  DecompPolyMult,  // accumulate param_a = dnum digit polys times evk, over channels
  PointwiseMult,   // elementwise modular multiply, channels * N
  PointwiseAdd,    // elementwise modular add/sub
  Automorphism,    // Galois permutation (memory-bound)
};

const char* to_string(OpKind kind);

enum class OpClass;  // metaop/metaop.h
// Operator class an IR node is accounted under (Fig. 1 / Fig. 7b). This used
// to be re-derived privately by each simulator; it is the single shared
// mapping now.
OpClass class_of(OpKind kind);

// What an off-chip transfer carries. kNumClasses is a sentinel so per-operand
// accounting arrays (sim::MemProfiler, the memory.v1 report) size themselves
// from it, like OpClass/kNumOpClasses.
enum class OperandClass : std::uint8_t {
  Evk,          // relinearization / keyswitch evaluation key digits
  RotationKey,  // Galois rotation keys (keyed by rotation step)
  CtLimb,       // ciphertext limb traffic (spills, residuals)
  Twiddle,      // NTT twiddle-factor tables
  Plaintext,    // plaintext operands (LT diagonals, weights)
  kNumClasses,
};

inline constexpr std::size_t kNumOperandClasses =
    static_cast<std::size_t>(OperandClass::kNumClasses);

// Lowercase metric-tag form ("evk", "rotation_key", ...), used in obs counter
// keys like sim.mem.bytes{operand=evk}.
const char* operand_tag(OperandClass c);

// One attributed off-chip transfer of a HighOp. `key_id` identifies the key
// material a key-class transfer streams (0 = not key material) so the
// MemProfiler's reuse ledger can tell a re-fetch of the same key from a fetch
// of a different one. Descriptor bytes partition HighOp::hbm_bytes: the sum
// over `transfers` never exceeds it, and any remainder is unattributed limb
// traffic (accounted as ct_limb by the profiler so byte conservation holds
// for descriptor-free legacy graphs too).
struct TransferDesc {
  OperandClass operand_class = OperandClass::CtLimb;
  std::uint64_t key_id = 0;
  std::uint64_t bytes = 0;
};

struct HighOp {
  OpKind kind = OpKind::PointwiseAdd;
  std::size_t n = 0;         // polynomial length
  std::size_t channels = 1;  // RNS channels this op covers
  std::size_t param_a = 0;   // Bconv: L; DecompPolyMult: dnum
  std::size_t param_b = 0;   // Bconv: K
  std::vector<std::size_t> deps;  // indices into OpGraph::ops
  // Bytes that must come from off-chip (e.g. streaming evaluation keys).
  // Kept as the authoritative total the engines charge; `transfers` is the
  // attributed breakdown of the same bytes.
  std::uint64_t hbm_bytes = 0;
  std::vector<TransferDesc> transfers;

  // Sum of the attributed descriptor bytes (<= hbm_bytes by construction in
  // the workload lowerings; the profiler treats any excess as a lowering bug
  // and clamps to hbm_bytes).
  std::uint64_t transfer_bytes() const {
    std::uint64_t sum = 0;
    for (const TransferDesc& t : transfers) sum += t.bytes;
    return sum;
  }
};

struct OpGraph {
  std::string name;
  std::vector<HighOp> ops;

  // Append an op, returning its index (for dependency wiring).
  std::size_t add(HighOp op) {
    ops.push_back(std::move(op));
    return ops.size() - 1;
  }
};

}  // namespace alchemist::metaop
