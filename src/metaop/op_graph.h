// High-level polynomial operator graph — the shared IR between the FHE
// workload generators (src/workloads), the Meta-OP lowering (src/metaop) and
// the cycle simulator (src/sim).
//
// Each node is one polynomial-level operator over a set of RNS channels.
// Dependencies form a DAG; the simulator schedules ready nodes onto hardware.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace alchemist::metaop {

enum class OpKind {
  Ntt,             // forward NTT: channels * N-point transforms
  Intt,            // inverse NTT
  Bconv,           // RNS base conversion: param_a = L inputs, param_b = K outputs
  DecompPolyMult,  // accumulate param_a = dnum digit polys times evk, over channels
  PointwiseMult,   // elementwise modular multiply, channels * N
  PointwiseAdd,    // elementwise modular add/sub
  Automorphism,    // Galois permutation (memory-bound)
};

const char* to_string(OpKind kind);

enum class OpClass;  // metaop/metaop.h
// Operator class an IR node is accounted under (Fig. 1 / Fig. 7b). This used
// to be re-derived privately by each simulator; it is the single shared
// mapping now.
OpClass class_of(OpKind kind);

struct HighOp {
  OpKind kind = OpKind::PointwiseAdd;
  std::size_t n = 0;         // polynomial length
  std::size_t channels = 1;  // RNS channels this op covers
  std::size_t param_a = 0;   // Bconv: L; DecompPolyMult: dnum
  std::size_t param_b = 0;   // Bconv: K
  std::vector<std::size_t> deps;  // indices into OpGraph::ops
  // Bytes that must come from off-chip (e.g. streaming evaluation keys).
  std::uint64_t hbm_bytes = 0;
};

struct OpGraph {
  std::string name;
  std::vector<HighOp> ops;

  // Append an op, returning its index (for dependency wiring).
  std::size_t add(HighOp op) {
    ops.push_back(std::move(op));
    return ops.size() - 1;
  }
};

}  // namespace alchemist::metaop
