// Meta-OP: the paper's unified low-level operator (M_j A_j)_n R_j.
//
// One Meta-OP performs j parallel multiplications and j additions per cycle
// for n cycles (accumulating), then reduces the j accumulated sums. On the
// unified core (Fig. 5c/5d) the reduction reuses the multiplication array for
// 2 cycles, so a Meta-OP occupies one core for exactly n + 2 cycles. j is
// fixed to 8 by the design-space exploration in §4.2.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace alchemist::metaop {

inline constexpr std::size_t kLanes = 8;  // j

// The three data access patterns of Table 4.
enum class AccessPattern {
  Slots,      // (I)NTT: data indexed by slot within the unit's stripe
  Channel,    // Modup/Moddown: gather across RNS channels, same slot
  DnumGroup,  // DecompPolyMult: gather across decomposition groups
};

const char* to_string(AccessPattern p);

// Operator classes used for utilization and ratio accounting (Fig. 1, 7b).
// kNumClasses is a sentinel; per-class accounting arrays (SimResult, the obs
// counter tags) size themselves from it so adding a class cannot silently
// truncate attribution anywhere downstream.
enum class OpClass { Ntt, Bconv, DecompPolyMult, Elementwise, kNumClasses };

inline constexpr std::size_t kNumOpClasses =
    static_cast<std::size_t>(OpClass::kNumClasses);

const char* to_string(OpClass c);
// Lowercase metric-tag form ("ntt", "bconv", ...), used in obs counter keys
// like sim.cycles{class=ntt}.
const char* class_tag(OpClass c);

// A homogeneous batch of Meta-OPs: `count` ops, each (M_8 A_8)_n R_8.
struct MetaOpBatch {
  std::size_t n = 1;      // multiply-accumulate depth (dynamic parameter)
  std::size_t count = 0;  // number of Meta-OPs in the batch
  AccessPattern pattern = AccessPattern::Slots;
  OpClass op_class = OpClass::Elementwise;

  // Core-cycles for the whole batch on a single core: count * (n + 2).
  std::uint64_t core_cycles() const { return count * (n + 2); }
  // Multiplications actually executed: n per lane per cycle plus the 2-cycle
  // reduction (2 mults per lane, Barrett-style).
  std::uint64_t mult_count() const { return count * kLanes * (n + 2); }
  // Useful multiply-accumulate slots (the pink phase); the reduction cycles
  // reuse the multiplier, so the whole n+2 window keeps the array busy.
  std::uint64_t macs() const { return count * kLanes * n; }
};

// A stream of batches produced by lowering one high-level operator.
struct MetaOpStream {
  std::vector<MetaOpBatch> batches;

  std::uint64_t core_cycles() const;
  std::uint64_t mult_count() const;
  std::uint64_t meta_op_count() const;
  void append(const MetaOpStream& other);
  void append(MetaOpBatch batch);
};

}  // namespace alchemist::metaop
