#include "metaop/mult_count.h"

#include <stdexcept>

#include "metaop/lowering.h"

namespace alchemist::metaop {

MultCounts ntt_mults(std::size_t n, std::size_t channels) {
  const NttStagePlan plan = plan_ntt_stages(n);
  MultCounts out;
  const std::uint64_t units_per_stage = n / kLanes * channels;
  // Radix-8: 12 radix-2 butterflies x 3 = 36 eager vs 24 + 16 = 40 lazy.
  out.origin += units_per_stage * plan.radix8_stages * 36;
  out.meta += units_per_stage * plan.radix8_stages * 40;
  // Radix-4 (two butterflies per 8 lanes): 8 x 3 = 24 eager vs 16 + 16 = 32.
  out.origin += units_per_stage * plan.radix4_stages * 24;
  out.meta += units_per_stage * plan.radix4_stages * 32;
  return out;
}

MultCounts bconv_mults(std::size_t n, std::size_t l_in, std::size_t k_out) {
  if (l_in == 0 || k_out == 0) throw std::invalid_argument("bconv_mults: L,K >= 1");
  MultCounts out;
  out.origin = static_cast<std::uint64_t>(n) * (3 * k_out * l_in + 3 * l_in);
  out.meta = static_cast<std::uint64_t>(n) * (k_out * l_in + 3 * l_in + 2 * k_out);
  return out;
}

MultCounts decomp_mults(std::size_t n, std::size_t dnum, std::size_t channels) {
  if (dnum == 0) throw std::invalid_argument("decomp_mults: dnum >= 1");
  MultCounts out;
  out.origin = static_cast<std::uint64_t>(n) * channels * 3 * dnum;
  out.meta = static_cast<std::uint64_t>(n) * channels * (dnum + 2);
  return out;
}

MultCounts elementwise_mults(std::size_t n, std::size_t channels) {
  MultCounts out;
  out.origin = static_cast<std::uint64_t>(n) * channels * 3;
  out.meta = out.origin;
  return out;
}

MultCounts count(const HighOp& op) {
  switch (op.kind) {
    case OpKind::Ntt:
    case OpKind::Intt:
      return ntt_mults(op.n, op.channels);
    case OpKind::Bconv:
      return bconv_mults(op.n, op.param_a, op.param_b);
    case OpKind::DecompPolyMult:
      return decomp_mults(op.n, op.param_a, op.channels);
    case OpKind::PointwiseMult:
      return elementwise_mults(op.n, op.channels);
    case OpKind::PointwiseAdd:
    case OpKind::Automorphism:
      return {};  // no multiplications
  }
  throw std::logic_error("count: unknown op kind");
}

MultCounts count(const OpGraph& graph) {
  MultCounts total;
  for (const HighOp& op : graph.ops) total += count(op);
  return total;
}

std::array<std::uint64_t, 4> class_mults(const OpGraph& graph, bool meta) {
  std::array<std::uint64_t, 4> by_class = {0, 0, 0, 0};
  for (const HighOp& op : graph.ops) {
    const MultCounts c = count(op);
    const std::uint64_t value = meta ? c.meta : c.origin;
    OpClass cls = OpClass::Elementwise;
    switch (op.kind) {
      case OpKind::Ntt:
      case OpKind::Intt: cls = OpClass::Ntt; break;
      case OpKind::Bconv: cls = OpClass::Bconv; break;
      case OpKind::DecompPolyMult: cls = OpClass::DecompPolyMult; break;
      default: cls = OpClass::Elementwise; break;
    }
    by_class[static_cast<std::size_t>(cls)] += value;
  }
  return by_class;
}

}  // namespace alchemist::metaop
