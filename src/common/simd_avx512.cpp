// AVX-512 (8x u64 lane) variants of the lazy NTT butterflies and 128-bit
// accumulators. Compiled with -mavx512f -mavx512dq (see
// src/common/CMakeLists.txt); only reachable behind
// simd::isa_supported(Isa::Avx512), so every helper stays in the anonymous
// namespace — nothing here may be picked by the linker for non-AVX-512 hosts.
//
// vpmullq (DQ) gives the low 64 bits natively; the high 64 bits are still
// synthesized from vpmuludq partials (there is no 64-bit mulhi outside
// IFMA's 52-bit forms), exactly as in the AVX2 TU. Range folds use the
// unsigned min trick: min_epu64(x, x - bound) selects the folded value iff
// x >= bound.
//
// Short-stride stages (t = 4, 2, 1) batch 16 consecutive elements through
// vpermt2q two-source permutes with a matching twiddle permutation, so every
// stage of an N >= 16 transform runs 8-wide.
#include "common/simd.h"

#if ALCHEMIST_SIMD_AVX512

#include <immintrin.h>

namespace alchemist::simd::detail {

namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

inline __m512i loadu(const u64* p) { return _mm512_loadu_si512(p); }
inline void storeu(u64* p, __m512i v) { _mm512_storeu_si512(p, v); }

inline __m512i idx8(long long a, long long b, long long c, long long d,
                    long long e, long long f, long long g, long long h) {
  return _mm512_set_epi64(h, g, f, e, d, c, b, a);
}

// High 64 bits of a*b per lane; same exact-carry chain as the AVX2 TU.
inline __m512i mulhi64(__m512i a, __m512i b, __m512i a_hi, __m512i b_hi) {
  const __m512i lo32 = _mm512_set1_epi64(0xffffffffll);
  const __m512i lolo = _mm512_mul_epu32(a, b);
  const __m512i lohi = _mm512_mul_epu32(a, b_hi);
  const __m512i hilo = _mm512_mul_epu32(a_hi, b);
  const __m512i hihi = _mm512_mul_epu32(a_hi, b_hi);
  const __m512i mid = _mm512_add_epi64(hilo, _mm512_srli_epi64(lolo, 32));
  const __m512i mid2 = _mm512_add_epi64(lohi, _mm512_and_si512(mid, lo32));
  return _mm512_add_epi64(
      hihi, _mm512_add_epi64(_mm512_srli_epi64(mid, 32), _mm512_srli_epi64(mid2, 32)));
}

// x - bound if x >= bound, else x; requires x < 2*bound.
inline __m512i fold(__m512i x, __m512i bound) {
  return _mm512_min_epu64(x, _mm512_sub_epi64(x, bound));
}

struct Twiddle {
  __m512i op, quot, quot_hi;
};

inline Twiddle twiddle_vec(__m512i op, __m512i quot) {
  return {op, quot, _mm512_srli_epi64(quot, 32)};
}

inline Twiddle twiddle_broadcast(u64 op, u64 quot) {
  return twiddle_vec(_mm512_set1_epi64(static_cast<long long>(op)),
                     _mm512_set1_epi64(static_cast<long long>(quot)));
}

// Shoup lazy multiply per lane: op*x - mulhi(quot, x)*q, result in [0, 2q).
inline __m512i shoup_mul_lazy(__m512i x, const Twiddle& w, __m512i q) {
  const __m512i x_hi = _mm512_srli_epi64(x, 32);
  const __m512i hi = mulhi64(w.quot, x, w.quot_hi, x_hi);
  return _mm512_sub_epi64(_mm512_mullo_epi64(w.op, x), _mm512_mullo_epi64(hi, q));
}

inline void ct_butterfly(__m512i& u, __m512i& x, const Twiddle& w,
                         __m512i q, __m512i two_q) {
  u = fold(u, two_q);
  const __m512i v = shoup_mul_lazy(x, w, q);
  const __m512i lo = _mm512_add_epi64(u, v);
  const __m512i hi = _mm512_sub_epi64(_mm512_add_epi64(u, two_q), v);
  u = lo;
  x = hi;
}

inline void gs_butterfly(__m512i& u, __m512i& v, const Twiddle& w,
                         __m512i q, __m512i two_q) {
  const __m512i sum = fold(_mm512_add_epi64(u, v), two_q);
  const __m512i diff = _mm512_sub_epi64(_mm512_add_epi64(u, two_q), v);
  u = sum;
  v = shoup_mul_lazy(diff, w, q);
}

// Two-source permute index vectors for the short-stride stages. For 16
// consecutive elements loaded as (A, B), index k < 8 selects A lane k and
// index 8 + k selects B lane k. The `store_*` pair re-interleaves (U, V)
// back to memory order.
struct StageIdx {
  __m512i split_u, split_v, store_a, store_b;
};

inline StageIdx idx_t4() {
  // Blocks of 8: [u0..u3 v0..v3 | u4..u7 v4..v7]; the split indices double
  // as the store indices.
  const __m512i u = idx8(0, 1, 2, 3, 8, 9, 10, 11);
  const __m512i v = idx8(4, 5, 6, 7, 12, 13, 14, 15);
  return {u, v, u, v};
}
inline StageIdx idx_t2() {
  return {idx8(0, 1, 4, 5, 8, 9, 12, 13), idx8(2, 3, 6, 7, 10, 11, 14, 15),
          idx8(0, 1, 8, 9, 2, 3, 10, 11), idx8(4, 5, 12, 13, 6, 7, 14, 15)};
}
inline StageIdx idx_t1() {
  return {idx8(0, 2, 4, 6, 8, 10, 12, 14), idx8(1, 3, 5, 7, 9, 11, 13, 15),
          idx8(0, 8, 1, 9, 2, 10, 3, 11), idx8(4, 12, 5, 13, 6, 14, 7, 15)};
}

// Twiddle expansion per stride: 8/len consecutive stage twiddles, each
// repeated `len` times in the split lane order.
inline __m512i expand_tw_t4(const u64* w) {
  const __m128i two = _mm_loadu_si128(reinterpret_cast<const __m128i*>(w));
  return _mm512_permutexvar_epi64(idx8(0, 0, 0, 0, 1, 1, 1, 1),
                                  _mm512_castsi128_si512(two));
}
inline __m512i expand_tw_t2(const u64* w) {
  const __m256i four = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w));
  return _mm512_permutexvar_epi64(idx8(0, 0, 1, 1, 2, 2, 3, 3),
                                  _mm512_castsi256_si512(four));
}
inline __m512i expand_tw_t1(const u64* w) { return loadu(w); }

template <typename Butterfly>
inline void short_stage(u64* a, const u64* w_op, const u64* w_quot,
                        std::size_t pairs, std::size_t len, const StageIdx& ix,
                        __m512i q, __m512i two_q, Butterfly&& bf) {
  // `pairs` butterflies of stride `len` (len in {4, 2, 1}), 8 per sweep.
  const std::size_t per = 8 / len;  // stage twiddles consumed per sweep
  for (std::size_t i = 0; i < pairs; i += per) {
    u64* p = a + 2 * i * len;
    const __m512i A = loadu(p);
    const __m512i B = loadu(p + 8);
    __m512i u = _mm512_permutex2var_epi64(A, ix.split_u, B);
    __m512i v = _mm512_permutex2var_epi64(A, ix.split_v, B);
    __m512i top, tq;
    if (len == 4) {
      top = expand_tw_t4(w_op + i);
      tq = expand_tw_t4(w_quot + i);
    } else if (len == 2) {
      top = expand_tw_t2(w_op + i);
      tq = expand_tw_t2(w_quot + i);
    } else {
      top = expand_tw_t1(w_op + i);
      tq = expand_tw_t1(w_quot + i);
    }
    const Twiddle w = twiddle_vec(top, tq);
    bf(u, v, w, q, two_q);
    storeu(p, _mm512_permutex2var_epi64(u, ix.store_a, v));
    storeu(p + 8, _mm512_permutex2var_epi64(u, ix.store_b, v));
  }
}

}  // namespace

void ntt_forward_lazy_avx512(const NttTables& t, u64* a) {
  const u64 q64 = t.q;
  const u64 two_q64 = 2 * q64;
  const __m512i q = _mm512_set1_epi64(static_cast<long long>(q64));
  const __m512i two_q = _mm512_set1_epi64(static_cast<long long>(two_q64));
  const auto bf = [](__m512i& u, __m512i& v, const Twiddle& w, __m512i qq,
                     __m512i tq) { ct_butterfly(u, v, w, qq, tq); };

  std::size_t len = t.n;
  for (std::size_t m = 1; m < t.n; m <<= 1) {
    len >>= 1;
    if (len >= 8) {
      for (std::size_t i = 0; i < m; ++i) {
        const std::size_t j1 = 2 * i * len;
        const Twiddle w = twiddle_broadcast(t.w_op[m + i], t.w_quot[m + i]);
        for (std::size_t j = j1; j < j1 + len; j += 8) {
          __m512i u = loadu(a + j);
          __m512i x = loadu(a + j + len);
          ct_butterfly(u, x, w, q, two_q);
          storeu(a + j, u);
          storeu(a + j + len, x);
        }
      }
    } else if (t.n >= 16) {
      const StageIdx ix = len == 4 ? idx_t4() : len == 2 ? idx_t2() : idx_t1();
      short_stage(a, t.w_op + m, t.w_quot + m, m, len, ix, q, two_q, bf);
    } else {
      // n == 8 tail stages: scalar butterflies (bit-identical either way).
      for (std::size_t i = 0; i < m; ++i) {
        const std::size_t j1 = 2 * i * len;
        const u64 op = t.w_op[m + i];
        const u64 quot = t.w_quot[m + i];
        for (std::size_t j = j1; j < j1 + len; ++j) {
          u64 u = a[j];
          u -= two_q64 & (u >= two_q64 ? ~u64{0} : 0);
          const u64 x = a[j + len];
          const u64 hi = static_cast<u64>((u128{quot} * x) >> 64);
          const u64 v = op * x - hi * q64;
          a[j] = u + v;
          a[j + len] = u + two_q64 - v;
        }
      }
    }
  }

  std::size_t j = 0;
  for (; j + 8 <= t.n; j += 8) {
    storeu(a + j, fold(fold(loadu(a + j), two_q), q));
  }
  for (; j < t.n; ++j) {
    u64 x = a[j];
    x -= two_q64 & (x >= two_q64 ? ~u64{0} : 0);
    x -= q64 & (x >= q64 ? ~u64{0} : 0);
    a[j] = x;
  }
}

void ntt_inverse_lazy_avx512(const NttTables& t, u64* a, u64 ninv_op, u64 ninv_quot) {
  const u64 q64 = t.q;
  const u64 two_q64 = 2 * q64;
  const __m512i q = _mm512_set1_epi64(static_cast<long long>(q64));
  const __m512i two_q = _mm512_set1_epi64(static_cast<long long>(two_q64));
  const auto bf = [](__m512i& u, __m512i& v, const Twiddle& w, __m512i qq,
                     __m512i tq) { gs_butterfly(u, v, w, qq, tq); };

  std::size_t len = 1;
  for (std::size_t m = t.n; m > 1; m >>= 1) {
    const std::size_t h = m >> 1;
    if (len >= 8) {
      std::size_t j1 = 0;
      for (std::size_t i = 0; i < h; ++i) {
        const Twiddle w = twiddle_broadcast(t.w_op[h + i], t.w_quot[h + i]);
        for (std::size_t j = j1; j < j1 + len; j += 8) {
          __m512i u = loadu(a + j);
          __m512i v = loadu(a + j + len);
          gs_butterfly(u, v, w, q, two_q);
          storeu(a + j, u);
          storeu(a + j + len, v);
        }
        j1 += 2 * len;
      }
    } else if (t.n >= 16) {
      const StageIdx ix = len == 4 ? idx_t4() : len == 2 ? idx_t2() : idx_t1();
      short_stage(a, t.w_op + h, t.w_quot + h, h, len, ix, q, two_q, bf);
    } else {
      std::size_t j1 = 0;
      for (std::size_t i = 0; i < h; ++i) {
        const u64 op = t.w_op[h + i];
        const u64 quot = t.w_quot[h + i];
        for (std::size_t j = j1; j < j1 + len; ++j) {
          const u64 u = a[j];
          const u64 v = a[j + len];
          u64 sum = u + v;
          sum -= two_q64 & (sum >= two_q64 ? ~u64{0} : 0);
          a[j] = sum;
          const u64 x = u + two_q64 - v;
          const u64 hi = static_cast<u64>((u128{quot} * x) >> 64);
          a[j + len] = op * x - hi * q64;
        }
        j1 += 2 * len;
      }
    }
    len <<= 1;
  }

  const Twiddle ninv = twiddle_broadcast(ninv_op, ninv_quot);
  std::size_t j = 0;
  for (; j + 8 <= t.n; j += 8) {
    storeu(a + j, fold(shoup_mul_lazy(loadu(a + j), ninv, q), q));
  }
  for (; j < t.n; ++j) {
    const u64 x = a[j];
    const u64 hi = static_cast<u64>((u128{ninv_quot} * x) >> 64);
    u64 r = ninv_op * x - hi * q64;
    if (r >= q64) r -= q64;
    a[j] = r;
  }
}

void dot_accumulate_avx512(const u64* a, const u64* b, std::size_t n, u64& hi, u64& lo) {
  __m512i acc_lo = _mm512_setzero_si512();
  __m512i acc_hi = _mm512_setzero_si512();
  const __m512i one = _mm512_set1_epi64(1);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i va = loadu(a + i);
    const __m512i vb = loadu(b + i);
    const __m512i va_hi = _mm512_srli_epi64(va, 32);
    const __m512i vb_hi = _mm512_srli_epi64(vb, 32);
    const __m512i plo = _mm512_mullo_epi64(va, vb);
    const __m512i phi = mulhi64(va, vb, va_hi, vb_hi);
    const __m512i nlo = _mm512_add_epi64(acc_lo, plo);
    const __mmask8 carry = _mm512_cmplt_epu64_mask(nlo, plo);
    acc_lo = nlo;
    acc_hi = _mm512_add_epi64(acc_hi, phi);
    acc_hi = _mm512_mask_add_epi64(acc_hi, carry, acc_hi, one);
  }
  alignas(64) u64 lo8[8], hi8[8];
  _mm512_store_si512(lo8, acc_lo);
  _mm512_store_si512(hi8, acc_hi);
  u128 total = 0;
  for (int k = 0; k < 8; ++k) total += (u128{hi8[k]} << 64) | lo8[k];
  for (; i < n; ++i) total += u128{a[i]} * b[i];
  hi = static_cast<u64>(total >> 64);
  lo = static_cast<u64>(total);
}

void weighted_accumulate_avx512(const u64* x, u64 w, std::size_t n,
                                u64* acc_lo, u64* acc_hi) {
  const __m512i vw = _mm512_set1_epi64(static_cast<long long>(w));
  const __m512i vw_hi = _mm512_srli_epi64(vw, 32);
  const __m512i one = _mm512_set1_epi64(1);
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m512i vx = loadu(x + k);
    const __m512i vx_hi = _mm512_srli_epi64(vx, 32);
    const __m512i plo = _mm512_mullo_epi64(vw, vx);
    const __m512i phi = mulhi64(vw, vx, vw_hi, vx_hi);
    const __m512i nlo = _mm512_add_epi64(loadu(acc_lo + k), plo);
    const __mmask8 carry = _mm512_cmplt_epu64_mask(nlo, plo);
    __m512i nhi = _mm512_add_epi64(loadu(acc_hi + k), phi);
    nhi = _mm512_mask_add_epi64(nhi, carry, nhi, one);
    storeu(acc_lo + k, nlo);
    storeu(acc_hi + k, nhi);
  }
  for (; k < n; ++k) {
    const u128 p = u128{w} * x[k];
    const u64 plo = static_cast<u64>(p);
    const u64 nlo = acc_lo[k] + plo;
    acc_hi[k] += static_cast<u64>(p >> 64) + (nlo < plo ? 1 : 0);
    acc_lo[k] = nlo;
  }
}

}  // namespace alchemist::simd::detail

#endif  // ALCHEMIST_SIMD_AVX512
