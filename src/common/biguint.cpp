#include "common/biguint.h"

#include <algorithm>
#include <stdexcept>

namespace alchemist {

BigUInt::BigUInt(u64 value) {
  if (value != 0) limbs_.push_back(value);
}

BigUInt BigUInt::product(const std::vector<u64>& factors) {
  BigUInt result(1);
  for (u64 f : factors) result.mul_u64(f);
  return result;
}

void BigUInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

std::size_t BigUInt::bit_length() const {
  if (limbs_.empty()) return 0;
  u64 top = limbs_.back();
  std::size_t bits = (limbs_.size() - 1) * 64;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

BigUInt& BigUInt::operator+=(const BigUInt& other) {
  if (limbs_.size() < other.limbs_.size()) limbs_.resize(other.limbs_.size(), 0);
  u64 carry = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    u128 sum = u128{limbs_[i]} + (i < other.limbs_.size() ? other.limbs_[i] : 0) + carry;
    limbs_[i] = static_cast<u64>(sum);
    carry = static_cast<u64>(sum >> 64);
  }
  if (carry != 0) limbs_.push_back(carry);
  return *this;
}

BigUInt& BigUInt::operator-=(const BigUInt& other) {
  if (compare(other) < 0) throw std::invalid_argument("BigUInt: negative subtraction");
  u64 borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const u64 rhs = i < other.limbs_.size() ? other.limbs_[i] : 0;
    const u128 lhs = u128{limbs_[i]};
    const u128 sub = u128{rhs} + borrow;
    if (lhs >= sub) {
      limbs_[i] = static_cast<u64>(lhs - sub);
      borrow = 0;
    } else {
      limbs_[i] = static_cast<u64>((u128{1} << 64) + lhs - sub);
      borrow = 1;
    }
  }
  trim();
  return *this;
}

BigUInt& BigUInt::mul_u64(u64 factor) {
  if (factor == 0) {
    limbs_.clear();
    return *this;
  }
  u64 carry = 0;
  for (u64& limb : limbs_) {
    u128 prod = u128{limb} * factor + carry;
    limb = static_cast<u64>(prod);
    carry = static_cast<u64>(prod >> 64);
  }
  if (carry != 0) limbs_.push_back(carry);
  return *this;
}

BigUInt& BigUInt::add_u64(u64 value) {
  return *this += BigUInt(value);
}

BigUInt BigUInt::operator*(const BigUInt& other) const {
  if (is_zero() || other.is_zero()) return BigUInt();
  BigUInt result;
  result.limbs_.assign(limbs_.size() + other.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    u64 carry = 0;
    for (std::size_t j = 0; j < other.limbs_.size(); ++j) {
      u128 cur = u128{limbs_[i]} * other.limbs_[j] + result.limbs_[i + j] + carry;
      result.limbs_[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    std::size_t k = i + other.limbs_.size();
    while (carry != 0) {
      u128 cur = u128{result.limbs_[k]} + carry;
      result.limbs_[k] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
      ++k;
    }
  }
  result.trim();
  return result;
}

u64 BigUInt::mod_u64(u64 divisor) const {
  if (divisor == 0) throw std::invalid_argument("BigUInt: mod by zero");
  u128 rem = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    rem = ((rem << 64) | limbs_[i]) % divisor;
  }
  return static_cast<u64>(rem);
}

BigUInt BigUInt::div_u64(u64 divisor, bool require_exact) const {
  if (divisor == 0) throw std::invalid_argument("BigUInt: div by zero");
  BigUInt quotient;
  quotient.limbs_.assign(limbs_.size(), 0);
  u128 rem = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    rem = (rem << 64) | limbs_[i];
    quotient.limbs_[i] = static_cast<u64>(rem / divisor);
    rem %= divisor;
  }
  if (require_exact && rem != 0) throw std::logic_error("BigUInt: inexact division");
  quotient.trim();
  return quotient;
}

int BigUInt::compare(const BigUInt& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) return limbs_[i] < other.limbs_[i] ? -1 : 1;
  }
  return 0;
}

std::string BigUInt::to_hex() const {
  if (limbs_.empty()) return "0x0";
  static const char* digits = "0123456789abcdef";
  std::string out = "0x";
  bool leading = true;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      const int nibble = static_cast<int>((limbs_[i] >> shift) & 0xF);
      if (leading && nibble == 0 && !(i == 0 && shift == 0)) continue;
      leading = false;
      out.push_back(digits[nibble]);
    }
  }
  return out;
}

double BigUInt::to_double() const {
  double value = 0.0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    value = value * 0x1.0p64 + static_cast<double>(limbs_[i]);
  }
  return value;
}

BigUInt crt_compose(const std::vector<u64>& residues, const std::vector<u64>& moduli) {
  if (residues.size() != moduli.size()) {
    throw std::invalid_argument("crt_compose: size mismatch");
  }
  // Garner-style incremental reconstruction: maintain x and M = prod of the
  // moduli handled so far; fold in one congruence at a time.
  BigUInt x(0);
  BigUInt m_acc(1);
  for (std::size_t i = 0; i < moduli.size(); ++i) {
    const u64 qi = moduli[i];
    const u64 x_mod = x.mod_u64(qi);
    const u64 m_mod = m_acc.mod_u64(qi);
    const u64 delta = sub_mod(residues[i] % qi, x_mod, qi);
    const u64 t = mul_mod(delta, inv_mod(m_mod, qi), qi);
    BigUInt step = m_acc;
    step.mul_u64(t);
    x += step;
    m_acc.mul_u64(qi);
  }
  return x;
}

}  // namespace alchemist
