// Deterministic randomness for key generation, encryption noise and test
// workload synthesis. xoshiro256** core with helpers for the samplers every
// lattice scheme needs: uniform mod q, ternary secrets, centered-binomial and
// rounded-Gaussian errors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/modarith.h"

namespace alchemist {

class Rng {
 public:
  explicit Rng(u64 seed = 0x5eed'a1c4'e815'7ULL);

  u64 next();

  // Uniform in [0, bound) by rejection (bound > 0).
  u64 uniform(u64 bound);

  // Uniform double in [0, 1).
  double uniform_real();

  // Ternary value in {-1, 0, 1} represented mod q.
  u64 ternary(u64 q);

  // Centered binomial with parameter `eta` (variance eta/2), mod q.
  u64 cbd(int eta, u64 q);

  // Rounded Gaussian with standard deviation sigma, mod q.
  u64 gaussian(double sigma, u64 q);

  // Signed rounded Gaussian (for torus schemes), as a plain integer.
  i64 gaussian_signed(double sigma);

  std::vector<u64> uniform_vector(std::size_t count, u64 bound);

 private:
  u64 state_[4];
};

}  // namespace alchemist
