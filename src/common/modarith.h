// Modular arithmetic over word-sized prime moduli.
//
// All FHE substrates in this repository (NTT, RNS base conversion, CKKS, TFHE)
// are built on arithmetic modulo primes q < 2^62. Products are formed in
// unsigned 128-bit arithmetic and reduced with Barrett reduction; hot paths
// with a fixed operand (NTT twiddle factors) use Shoup multiplication, which
// needs no 128-bit division at all.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace alchemist {

using u64 = std::uint64_t;
using u128 = unsigned __int128;
using i64 = std::int64_t;
using i128 = __int128;

// Maximum supported modulus: products of two operands must fit the Barrett
// reduction's headroom (q < 2^62 keeps the final conditional subtraction to
// at most one step).
inline constexpr u64 kMaxModulus = (u64{1} << 62) - 1;

constexpr bool is_power_of_two(u64 x) { return x != 0 && (x & (x - 1)) == 0; }

constexpr u64 add_mod(u64 a, u64 b, u64 q) {
  u64 s = a + b;  // no overflow: a, b < q < 2^62
  return s >= q ? s - q : s;
}

constexpr u64 sub_mod(u64 a, u64 b, u64 q) { return a >= b ? a - b : a + q - b; }

constexpr u64 neg_mod(u64 a, u64 q) { return a == 0 ? 0 : q - a; }

inline u64 mul_mod(u64 a, u64 b, u64 q) {
  return static_cast<u64>((u128{a} * b) % q);
}

inline u64 pow_mod(u64 base, u64 exp, u64 q) {
  u64 result = 1 % q;
  base %= q;
  while (exp != 0) {
    if (exp & 1) result = mul_mod(result, base, q);
    base = mul_mod(base, base, q);
    exp >>= 1;
  }
  return result;
}

// Modular inverse via extended Euclid. Throws if gcd(a, q) != 1.
inline u64 inv_mod(u64 a, u64 q) {
  i64 t = 0, new_t = 1;
  i64 r = static_cast<i64>(q), new_r = static_cast<i64>(a % q);
  while (new_r != 0) {
    i64 quotient = r / new_r;
    t -= quotient * new_t;
    std::swap(t, new_t);
    r -= quotient * new_r;
    std::swap(r, new_r);
  }
  if (r != 1) {
    throw std::invalid_argument("inv_mod: " + std::to_string(a) +
                                " is not invertible mod " + std::to_string(q));
  }
  return static_cast<u64>(t < 0 ? t + static_cast<i64>(q) : t);
}

// Prime modulus with the Barrett constant floor(2^128 / q) precomputed, so a
// 128-bit product reduces with three 64x64 multiplies and one correction.
class Modulus {
 public:
  Modulus() = default;

  explicit Modulus(u64 q) : q_(q) {
    if (q < 2 || q > kMaxModulus) {
      throw std::invalid_argument("Modulus: q out of range: " + std::to_string(q));
    }
    // floor((2^128 - 1) / q) == floor(2^128 / q) for any q that does not
    // divide 2^128, i.e. any q that is not a power of two; NTT primes are odd.
    u128 ratio = ~u128{0} / q;
    ratio_hi_ = static_cast<u64>(ratio >> 64);
    ratio_lo_ = static_cast<u64>(ratio);
  }

  u64 value() const { return q_; }

  // Barrett reduction of a full 128-bit value into [0, q).
  u64 reduce(u128 z) const {
    const u64 zlo = static_cast<u64>(z);
    const u64 zhi = static_cast<u64>(z >> 64);
    // Estimate the quotient: top 64 bits of z * floor(2^128/q) / 2^128.
    const u64 carry = static_cast<u64>((u128{zlo} * ratio_lo_) >> 64);
    const u128 mid = u128{zlo} * ratio_hi_ + carry;
    const u128 mid2 = u128{zhi} * ratio_lo_ + static_cast<u64>(mid);
    const u64 q_hat = zhi * ratio_hi_ + static_cast<u64>(mid >> 64) +
                      static_cast<u64>(mid2 >> 64);
    u64 r = zlo - q_hat * q_;
    if (r >= q_) r -= q_;
    return r;
  }

  u64 reduce(u64 z) const { return reduce(u128{z}); }

  u64 mul(u64 a, u64 b) const { return reduce(u128{a} * b); }
  u64 add(u64 a, u64 b) const { return add_mod(a, b, q_); }
  u64 sub(u64 a, u64 b) const { return sub_mod(a, b, q_); }
  u64 neg(u64 a) const { return neg_mod(a, q_); }
  u64 pow(u64 base, u64 exp) const { return pow_mod(base, exp, q_); }
  u64 inv(u64 a) const { return inv_mod(a, q_); }

  friend bool operator==(const Modulus& a, const Modulus& b) { return a.q_ == b.q_; }

 private:
  u64 q_ = 0;
  u64 ratio_hi_ = 0;  // floor(2^128 / q) >> 64
  u64 ratio_lo_ = 0;  // floor(2^128 / q) & (2^64 - 1)
};

// Shoup multiplication: multiply by a *fixed* operand w modulo q using a
// precomputed quotient floor(w * 2^64 / q). The result of mul(x) is in [0, q).
// This is the workhorse of every NTT butterfly.
class MulModShoup {
 public:
  MulModShoup() = default;

  MulModShoup(u64 operand, u64 q) : operand_(operand), q_(q) {
    quotient_ = static_cast<u64>((u128{operand} << 64) / q);
  }

  u64 operand() const { return operand_; }
  u64 quotient() const { return quotient_; }

  u64 mul(u64 x) const {
    const u64 hi = static_cast<u64>((u128{quotient_} * x) >> 64);
    u64 r = operand_ * x - hi * q_;
    if (r >= q_) r -= q_;
    return r;
  }

  // Lazy (Harvey) variant: skips the final conditional subtraction, so the
  // result lives in [0, 2q). Valid for any 64-bit x — the butterflies feed it
  // values up to 4q, which stays below 2^64 because q <= kMaxModulus < 2^62.
  u64 mul_lazy(u64 x) const {
    const u64 hi = static_cast<u64>((u128{quotient_} * x) >> 64);
    return operand_ * x - hi * q_;
  }

 private:
  u64 operand_ = 0;
  u64 quotient_ = 0;
  u64 q_ = 2;
};

}  // namespace alchemist
