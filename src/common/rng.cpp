#include "common/rng.h"

#include <cmath>

namespace alchemist {

namespace {

constexpr u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64: expands a single seed word into the xoshiro state.
u64 splitmix64(u64& state) {
  state += 0x9e3779b97f4a7c15ULL;
  u64 z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(u64 seed) {
  u64 sm = seed;
  for (u64& s : state_) s = splitmix64(sm);
}

u64 Rng::next() {
  const u64 result = rotl(state_[1] * 5, 7) * 9;
  const u64 t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

u64 Rng::uniform(u64 bound) {
  // Rejection sampling keeps the distribution exactly uniform.
  const u64 threshold = -bound % bound;  // 2^64 mod bound
  for (;;) {
    const u64 r = next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::uniform_real() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

u64 Rng::ternary(u64 q) {
  switch (uniform(3)) {
    case 0: return 0;
    case 1: return 1;
    default: return q - 1;
  }
}

u64 Rng::cbd(int eta, u64 q) {
  int acc = 0;
  for (int i = 0; i < eta; ++i) {
    acc += static_cast<int>(next() & 1);
    acc -= static_cast<int>(next() & 1);
  }
  return acc >= 0 ? static_cast<u64>(acc) : q - static_cast<u64>(-acc);
}

i64 Rng::gaussian_signed(double sigma) {
  // Box-Muller, rounded to the nearest integer. Not constant-time — this is a
  // research reproduction, not a hardened crypto library.
  double u1 = uniform_real();
  while (u1 <= 0.0) u1 = uniform_real();
  const double u2 = uniform_real();
  const double g = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return static_cast<i64>(std::llround(g * sigma));
}

u64 Rng::gaussian(double sigma, u64 q) {
  const i64 g = gaussian_signed(sigma);
  return g >= 0 ? static_cast<u64>(g) % q : q - (static_cast<u64>(-g) % q);
}

std::vector<u64> Rng::uniform_vector(std::size_t count, u64 bound) {
  std::vector<u64> v(count);
  for (u64& x : v) x = uniform(bound);
  return v;
}

}  // namespace alchemist
