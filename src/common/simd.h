// SIMD substrate for the modular-arithmetic hot path.
//
// Every kernel here exists in three variants — portable scalar, AVX2 and
// AVX-512 — that are *bit-identical*: the lazy Harvey butterfly over
// [0, 4q)/[0, 2q), the Shoup twiddle multiply (64x64 high/low products in
// lanes), and the 128-bit lazy accumulators behind dot_mod/weighted_sum.
// All SIMD arithmetic replays the exact scalar operation sequence modulo
// 2^64, so the eager and scalar-lazy paths remain pinned references that
// every vector variant is provable against (tests sweep the (q, N) matrix
// up to near-kMaxModulus moduli).
//
// Dispatch is runtime CPU-feature based and resolved once per process:
// explicit set_isa() (the --isa flag) takes precedence, then the
// ALCHEMIST_ISA environment variable, then the best CPUID-supported variant
// compiled into the binary. An unsupported ISA can never be selected:
// set_isa() throws, and an unsupported/unknown ALCHEMIST_ISA falls back to
// the best supported one with a warning. Per-kernel dispatch counts are
// exported as substrate.isa* telemetry (obs/substrate_metrics.h).
//
// This header is deliberately dependency-free (no modarith.h, no STL
// containers in the API): the AVX2/AVX-512 translation units are compiled
// with per-file -m flags, and must not instantiate header inlines that the
// linker could then pick for non-SIMD hosts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace alchemist::simd {

enum class Isa : std::uint8_t { Scalar = 0, Avx2 = 1, Avx512 = 2 };
inline constexpr std::size_t kNumIsas = 3;

// Kernel families with per-(kernel, isa) dispatch counters.
enum class Kern : std::uint8_t { NttFwd = 0, NttInv, DotMod, WeightedSum, kCount };
inline constexpr std::size_t kNumKerns = 4;

const char* isa_name(Isa isa);    // "scalar" | "avx2" | "avx512"
const char* kern_name(Kern k);    // "ntt_fwd" | "ntt_inv" | "dot_mod" | "weighted_sum"

// Parse "scalar" / "avx2" / "avx512" / "native" (= best supported).
// Throws std::invalid_argument on anything else.
Isa parse_isa(const std::string& name);

bool isa_compiled(Isa isa);   // variant built into this binary
bool isa_supported(Isa isa);  // compiled AND allowed by CPUID
Isa best_supported_isa();     // highest supported variant (>= Scalar)

// The process-wide selection. First call resolves ALCHEMIST_ISA (or CPUID);
// later calls are a relaxed atomic load.
Isa active_isa();
// Override the selection (CLI --isa). Throws std::invalid_argument if the
// variant is not compiled in or not supported by this CPU.
void set_isa(Isa isa);

// Cumulative dispatches of kernel `k` through ISA `isa` since process start.
std::uint64_t dispatch_count(Kern k, Isa isa);
// Record one dispatch (public so composite kernels like weighted_sum count
// once per call, not once per inner accumulation).
void note_dispatch(Kern k, Isa isa);

// SoA view of a Shoup twiddle table in bit-reversed order (index m + i),
// shared by every ISA variant of the transforms. `q` must satisfy
// q <= kMaxModulus < 2^62 so lazy values below 4q never wrap.
struct NttTables {
  const std::uint64_t* w_op;    // twiddle operands
  const std::uint64_t* w_quot;  // floor(w << 64 / q) Shoup quotients
  std::uint64_t q;
  std::size_t n;                // power of two
};

// In-place Harvey lazy forward negacyclic NTT (Cooley-Tukey, natural in,
// bit-reversed out): coefficients in [0, q) in, canonical [0, q) out.
// The dispatching overload records a NttFwd dispatch; the forced-ISA
// overload (tests, per-ISA benches) throws if `isa` is unsupported.
void ntt_forward_lazy(const NttTables& t, std::uint64_t* a);
void ntt_forward_lazy(const NttTables& t, std::uint64_t* a, Isa isa);

// In-place lazy inverse (Gentleman-Sande, bit-reversed in, natural out).
// `t` holds the inverse twiddles; (ninv_op, ninv_quot) is the Shoup pair of
// N^{-1} applied in the canonicalizing final pass.
void ntt_inverse_lazy(const NttTables& t, std::uint64_t* a,
                      std::uint64_t ninv_op, std::uint64_t ninv_quot);
void ntt_inverse_lazy(const NttTables& t, std::uint64_t* a,
                      std::uint64_t ninv_op, std::uint64_t ninv_quot, Isa isa);

// Exact 128-bit accumulation sum_i a[i] * b[i] into hi:lo (overwritten).
// The caller guarantees the true sum fits 128 bits (lazy_accumulation_fits);
// lane-partial sums then commute exactly, so results are bit-identical
// across ISAs and vector widths. Handles any n including non-lane-multiple
// tails. Records a DotMod dispatch only via the dispatching overload.
void dot_accumulate(const std::uint64_t* a, const std::uint64_t* b, std::size_t n,
                    std::uint64_t& hi, std::uint64_t& lo);
void dot_accumulate(const std::uint64_t* a, const std::uint64_t* b, std::size_t n,
                    std::uint64_t& hi, std::uint64_t& lo, Isa isa);

// acc128[k] += w * x[k] for k in [0, n), accumulators split SoA as
// (acc_hi[k], acc_lo[k]). One Bconv/DecompPolyMult input channel folded into
// a blocked accumulator; never records a dispatch itself (weighted_sum
// counts once per kernel call).
void weighted_accumulate(const std::uint64_t* x, std::uint64_t w, std::size_t n,
                         std::uint64_t* acc_lo, std::uint64_t* acc_hi);
void weighted_accumulate(const std::uint64_t* x, std::uint64_t w, std::size_t n,
                         std::uint64_t* acc_lo, std::uint64_t* acc_hi, Isa isa);

namespace detail {
// Per-ISA entry points. The scalar ones always exist; the AVX ones are
// compiled only when the toolchain supports the per-file flags
// (ALCHEMIST_SIMD_AVX2 / ALCHEMIST_SIMD_AVX512) and must only be called
// behind an isa_supported() check.
void ntt_forward_lazy_scalar(const NttTables& t, std::uint64_t* a);
void ntt_inverse_lazy_scalar(const NttTables& t, std::uint64_t* a,
                             std::uint64_t ninv_op, std::uint64_t ninv_quot);
void dot_accumulate_scalar(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t n, std::uint64_t& hi, std::uint64_t& lo);
void weighted_accumulate_scalar(const std::uint64_t* x, std::uint64_t w, std::size_t n,
                                std::uint64_t* acc_lo, std::uint64_t* acc_hi);

void ntt_forward_lazy_avx2(const NttTables& t, std::uint64_t* a);
void ntt_inverse_lazy_avx2(const NttTables& t, std::uint64_t* a,
                           std::uint64_t ninv_op, std::uint64_t ninv_quot);
void dot_accumulate_avx2(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t n, std::uint64_t& hi, std::uint64_t& lo);
void weighted_accumulate_avx2(const std::uint64_t* x, std::uint64_t w, std::size_t n,
                              std::uint64_t* acc_lo, std::uint64_t* acc_hi);

void ntt_forward_lazy_avx512(const NttTables& t, std::uint64_t* a);
void ntt_inverse_lazy_avx512(const NttTables& t, std::uint64_t* a,
                             std::uint64_t ninv_op, std::uint64_t ninv_quot);
void dot_accumulate_avx512(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t n, std::uint64_t& hi, std::uint64_t& lo);
void weighted_accumulate_avx512(const std::uint64_t* x, std::uint64_t w, std::size_t n,
                                std::uint64_t* acc_lo, std::uint64_t* acc_hi);
}  // namespace detail

}  // namespace alchemist::simd
