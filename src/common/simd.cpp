#include "common/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace alchemist::simd {

namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

// CPUID gates. __builtin_cpu_supports is a runtime check on GCC/Clang; on
// other toolchains (or non-x86 targets) the SIMD TUs are not compiled and
// everything resolves to scalar.
bool cpu_has_avx2() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool cpu_has_avx512() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  // The kernels use q-word min/compare/permute (F) and vpmullq (DQ).
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512dq") != 0;
#else
  return false;
#endif
}

// kNumIsas slots; Scalar=0 stays 0 so the enum doubles as an index.
std::atomic<int> g_active{-1};  // -1 = not yet resolved

std::atomic<std::uint64_t> g_dispatch[kNumKerns][kNumIsas] = {};

Isa resolve_from_env() {
  const char* env = std::getenv("ALCHEMIST_ISA");
  if (env == nullptr || env[0] == '\0') return best_supported_isa();
  try {
    const Isa isa = parse_isa(env);
    if (isa_supported(isa)) return isa;
    std::fprintf(stderr,
                 "warning: ALCHEMIST_ISA=%s is not supported on this host "
                 "(compiled=%d, cpuid=%s); falling back to %s\n",
                 env, isa_compiled(isa) ? 1 : 0, isa_name(isa),
                 isa_name(best_supported_isa()));
  } catch (const std::invalid_argument&) {
    std::fprintf(stderr,
                 "warning: unknown ALCHEMIST_ISA=%s (expected scalar|avx2|avx512|"
                 "native); falling back to %s\n",
                 env, isa_name(best_supported_isa()));
  }
  return best_supported_isa();
}

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::Scalar: return "scalar";
    case Isa::Avx2: return "avx2";
    case Isa::Avx512: return "avx512";
  }
  return "unknown";
}

const char* kern_name(Kern k) {
  switch (k) {
    case Kern::NttFwd: return "ntt_fwd";
    case Kern::NttInv: return "ntt_inv";
    case Kern::DotMod: return "dot_mod";
    case Kern::WeightedSum: return "weighted_sum";
    case Kern::kCount: break;
  }
  return "unknown";
}

Isa parse_isa(const std::string& name) {
  if (name == "scalar") return Isa::Scalar;
  if (name == "avx2") return Isa::Avx2;
  if (name == "avx512") return Isa::Avx512;
  if (name == "native") return best_supported_isa();
  throw std::invalid_argument("unknown ISA \"" + name +
                              "\" (expected scalar|avx2|avx512|native)");
}

bool isa_compiled(Isa isa) {
  switch (isa) {
    case Isa::Scalar: return true;
    case Isa::Avx2:
#if ALCHEMIST_SIMD_AVX2
      return true;
#else
      return false;
#endif
    case Isa::Avx512:
#if ALCHEMIST_SIMD_AVX512
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool isa_supported(Isa isa) {
  switch (isa) {
    case Isa::Scalar: return true;
    case Isa::Avx2: return isa_compiled(isa) && cpu_has_avx2();
    case Isa::Avx512: return isa_compiled(isa) && cpu_has_avx512();
  }
  return false;
}

Isa best_supported_isa() {
  if (isa_supported(Isa::Avx512)) return Isa::Avx512;
  if (isa_supported(Isa::Avx2)) return Isa::Avx2;
  return Isa::Scalar;
}

Isa active_isa() {
  int cur = g_active.load(std::memory_order_relaxed);
  if (cur >= 0) return static_cast<Isa>(cur);
  // First resolution. A benign race between concurrent first callers is
  // fine: both compute the same environment-derived answer.
  const Isa resolved = resolve_from_env();
  int expected = -1;
  g_active.compare_exchange_strong(expected, static_cast<int>(resolved),
                                   std::memory_order_relaxed);
  return static_cast<Isa>(g_active.load(std::memory_order_relaxed));
}

void set_isa(Isa isa) {
  if (!isa_supported(isa)) {
    throw std::invalid_argument(std::string("ISA ") + isa_name(isa) +
                                (isa_compiled(isa)
                                     ? " is not supported by this CPU"
                                     : " is not compiled into this binary"));
  }
  g_active.store(static_cast<int>(isa), std::memory_order_relaxed);
}

std::uint64_t dispatch_count(Kern k, Isa isa) {
  return g_dispatch[static_cast<std::size_t>(k)][static_cast<std::size_t>(isa)]
      .load(std::memory_order_relaxed);
}

void note_dispatch(Kern k, Isa isa) {
  g_dispatch[static_cast<std::size_t>(k)][static_cast<std::size_t>(isa)]
      .fetch_add(1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Scalar reference kernels. These mirror the pre-SIMD NttTable butterflies
// exactly (same operation sequence mod 2^64) and stay the pinned baseline
// the vector variants are proved against.

namespace detail {

namespace {

// Shoup lazy multiply: result in [0, 2q) for any 64-bit x with x*w' products
// formed mod 2^64 — identical to MulModShoup::mul_lazy.
inline u64 shoup_mul_lazy(u64 x, u64 op, u64 quot, u64 q) {
  const u64 hi = static_cast<u64>((u128{quot} * x) >> 64);
  return op * x - hi * q;
}

}  // namespace

void ntt_forward_lazy_scalar(const NttTables& t, u64* a) {
  const u64 q = t.q;
  const u64 two_q = 2 * q;
  std::size_t len = t.n;
  for (std::size_t m = 1; m < t.n; m <<= 1) {
    len >>= 1;
    for (std::size_t i = 0; i < m; ++i) {
      const std::size_t j1 = 2 * i * len;
      const u64 op = t.w_op[m + i];
      const u64 quot = t.w_quot[m + i];
      for (std::size_t j = j1; j < j1 + len; ++j) {
        u64 u = a[j];
        // Branchless fold into [0, 2q): u >= 2q half the time on lazy data.
        u -= two_q & (u >= two_q ? ~u64{0} : 0);
        const u64 v = shoup_mul_lazy(a[j + len], op, quot, q);
        a[j] = u + v;
        a[j + len] = u + two_q - v;
      }
    }
  }
  for (std::size_t j = 0; j < t.n; ++j) {
    u64 x = a[j];
    x -= two_q & (x >= two_q ? ~u64{0} : 0);
    x -= q & (x >= q ? ~u64{0} : 0);
    a[j] = x;
  }
}

void ntt_inverse_lazy_scalar(const NttTables& t, u64* a, u64 ninv_op, u64 ninv_quot) {
  const u64 q = t.q;
  const u64 two_q = 2 * q;
  std::size_t len = 1;
  for (std::size_t m = t.n; m > 1; m >>= 1) {
    const std::size_t h = m >> 1;
    std::size_t j1 = 0;
    for (std::size_t i = 0; i < h; ++i) {
      const u64 op = t.w_op[h + i];
      const u64 quot = t.w_quot[h + i];
      for (std::size_t j = j1; j < j1 + len; ++j) {
        const u64 u = a[j];
        const u64 v = a[j + len];
        u64 sum = u + v;
        sum -= two_q & (sum >= two_q ? ~u64{0} : 0);
        a[j] = sum;
        a[j + len] = shoup_mul_lazy(u + two_q - v, op, quot, q);
      }
      j1 += 2 * len;
    }
    len <<= 1;
  }
  // Canonicalizing N^{-1} multiply — full Shoup (with the final correction).
  for (std::size_t j = 0; j < t.n; ++j) {
    const u64 x = a[j];
    const u64 hi = static_cast<u64>((u128{ninv_quot} * x) >> 64);
    u64 r = ninv_op * x - hi * q;
    if (r >= q) r -= q;
    a[j] = r;
  }
}

void dot_accumulate_scalar(const u64* a, const u64* b, std::size_t n,
                           u64& hi, u64& lo) {
  u128 acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc += u128{a[i]} * b[i];
  hi = static_cast<u64>(acc >> 64);
  lo = static_cast<u64>(acc);
}

void weighted_accumulate_scalar(const u64* x, u64 w, std::size_t n,
                                u64* acc_lo, u64* acc_hi) {
  for (std::size_t k = 0; k < n; ++k) {
    const u128 p = u128{w} * x[k];
    const u64 plo = static_cast<u64>(p);
    const u64 nlo = acc_lo[k] + plo;
    acc_hi[k] += static_cast<u64>(p >> 64) + (nlo < plo ? 1 : 0);
    acc_lo[k] = nlo;
  }
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Dispatchers.

namespace {

// Forced-ISA plumbing shared by the public overloads; `isa` has been
// validated (or is active_isa(), which only ever holds supported values).
void forward_with(const NttTables& t, u64* a, Isa isa) {
  switch (isa) {
#if ALCHEMIST_SIMD_AVX512
    case Isa::Avx512: detail::ntt_forward_lazy_avx512(t, a); return;
#endif
#if ALCHEMIST_SIMD_AVX2
    case Isa::Avx2: detail::ntt_forward_lazy_avx2(t, a); return;
#endif
    default: detail::ntt_forward_lazy_scalar(t, a); return;
  }
}

void inverse_with(const NttTables& t, u64* a, u64 ninv_op, u64 ninv_quot, Isa isa) {
  switch (isa) {
#if ALCHEMIST_SIMD_AVX512
    case Isa::Avx512: detail::ntt_inverse_lazy_avx512(t, a, ninv_op, ninv_quot); return;
#endif
#if ALCHEMIST_SIMD_AVX2
    case Isa::Avx2: detail::ntt_inverse_lazy_avx2(t, a, ninv_op, ninv_quot); return;
#endif
    default: detail::ntt_inverse_lazy_scalar(t, a, ninv_op, ninv_quot); return;
  }
}

void dot_with(const u64* a, const u64* b, std::size_t n, u64& hi, u64& lo, Isa isa) {
  switch (isa) {
#if ALCHEMIST_SIMD_AVX512
    case Isa::Avx512: detail::dot_accumulate_avx512(a, b, n, hi, lo); return;
#endif
#if ALCHEMIST_SIMD_AVX2
    case Isa::Avx2: detail::dot_accumulate_avx2(a, b, n, hi, lo); return;
#endif
    default: detail::dot_accumulate_scalar(a, b, n, hi, lo); return;
  }
}

void weighted_with(const u64* x, u64 w, std::size_t n, u64* acc_lo, u64* acc_hi,
                   Isa isa) {
  switch (isa) {
#if ALCHEMIST_SIMD_AVX512
    case Isa::Avx512: detail::weighted_accumulate_avx512(x, w, n, acc_lo, acc_hi); return;
#endif
#if ALCHEMIST_SIMD_AVX2
    case Isa::Avx2: detail::weighted_accumulate_avx2(x, w, n, acc_lo, acc_hi); return;
#endif
    default: detail::weighted_accumulate_scalar(x, w, n, acc_lo, acc_hi); return;
  }
}

Isa checked(Isa isa) {
  if (!isa_supported(isa)) {
    throw std::invalid_argument(std::string("forced ISA ") + isa_name(isa) +
                                " is not supported on this host");
  }
  return isa;
}

}  // namespace

void ntt_forward_lazy(const NttTables& t, u64* a) {
  const Isa isa = active_isa();
  note_dispatch(Kern::NttFwd, isa);
  forward_with(t, a, isa);
}

void ntt_forward_lazy(const NttTables& t, u64* a, Isa isa) {
  note_dispatch(Kern::NttFwd, checked(isa));
  forward_with(t, a, isa);
}

void ntt_inverse_lazy(const NttTables& t, u64* a, u64 ninv_op, u64 ninv_quot) {
  const Isa isa = active_isa();
  note_dispatch(Kern::NttInv, isa);
  inverse_with(t, a, ninv_op, ninv_quot, isa);
}

void ntt_inverse_lazy(const NttTables& t, u64* a, u64 ninv_op, u64 ninv_quot, Isa isa) {
  note_dispatch(Kern::NttInv, checked(isa));
  inverse_with(t, a, ninv_op, ninv_quot, isa);
}

void dot_accumulate(const u64* a, const u64* b, std::size_t n, u64& hi, u64& lo) {
  const Isa isa = active_isa();
  note_dispatch(Kern::DotMod, isa);
  dot_with(a, b, n, hi, lo, isa);
}

void dot_accumulate(const u64* a, const u64* b, std::size_t n, u64& hi, u64& lo,
                    Isa isa) {
  note_dispatch(Kern::DotMod, checked(isa));
  dot_with(a, b, n, hi, lo, isa);
}

void weighted_accumulate(const u64* x, u64 w, std::size_t n, u64* acc_lo, u64* acc_hi) {
  weighted_with(x, w, n, acc_lo, acc_hi, active_isa());
}

void weighted_accumulate(const u64* x, u64 w, std::size_t n, u64* acc_lo, u64* acc_hi,
                         Isa isa) {
  weighted_with(x, w, n, acc_lo, acc_hi, checked(isa));
}

}  // namespace alchemist::simd
