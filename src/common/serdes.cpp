#include "common/serdes.h"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace alchemist {

u64 fnv1a(std::span<const std::uint8_t> bytes) {
  u64 hash = 14695981039346656037ull;
  for (std::uint8_t b : bytes) {
    hash ^= b;
    hash *= 1099511628211ull;
  }
  return hash;
}

u64 BinaryWriter::checksum_since(std::size_t start) const {
  if (start > buffer_.size()) {
    throw std::logic_error("BinaryWriter: checksum start past end of buffer");
  }
  return fnv1a(std::span<const std::uint8_t>(buffer_).subspan(start));
}

u64 BinaryReader::checksum_since(std::size_t start) const {
  if (start > pos_) {
    throw std::logic_error("BinaryReader: checksum start past read position");
  }
  return fnv1a(std::span<const std::uint8_t>(buffer_).subspan(start, pos_ - start));
}

void BinaryWriter::write_u64(u64 v) {
  for (int i = 0; i < 8; ++i) buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void BinaryWriter::write_double(double v) {
  u64 bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  write_u64(bits);
}

void BinaryWriter::write_u64_vector(std::span<const u64> v) {
  write_u64(v.size());
  for (u64 x : v) write_u64(x);
}

void BinaryWriter::write_bytes(std::span<const std::uint8_t> bytes) {
  write_u64(bytes.size());
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void BinaryWriter::write_tag(const std::string& tag) {
  write_u64(tag.size());
  for (char c : tag) buffer_.push_back(static_cast<std::uint8_t>(c));
}

void BinaryWriter::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("BinaryWriter: cannot open " + path);
  out.write(reinterpret_cast<const char*>(buffer_.data()),
            static_cast<std::streamsize>(buffer_.size()));
  if (!out) throw std::runtime_error("BinaryWriter: write failed for " + path);
}

BinaryReader BinaryReader::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("BinaryReader: cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> buffer(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(buffer.data()), size);
  if (!in) throw std::runtime_error("BinaryReader: read failed for " + path);
  return BinaryReader(std::move(buffer));
}

void BinaryReader::need(std::size_t bytes) const {
  if (pos_ + bytes > buffer_.size()) {
    throw std::runtime_error("BinaryReader: truncated input");
  }
}

std::uint8_t BinaryReader::read_u8() {
  need(1);
  return buffer_[pos_++];
}

u64 BinaryReader::read_u64() {
  need(8);
  u64 v = 0;
  for (int i = 0; i < 8; ++i) v |= u64{buffer_[pos_++]} << (8 * i);
  return v;
}

double BinaryReader::read_double() {
  const u64 bits = read_u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::vector<u64> BinaryReader::read_u64_vector() {
  const u64 count = read_u64();
  // Cap the declared count against the bytes actually left before touching
  // the allocator: a tiny file claiming 2^60 elements must throw, not OOM.
  if (count > remaining() / sizeof(u64)) {
    throw std::runtime_error("BinaryReader: vector length exceeds remaining input");
  }
  std::vector<u64> v(static_cast<std::size_t>(count));
  for (u64& x : v) x = read_u64();
  return v;
}

std::vector<std::uint8_t> BinaryReader::read_bytes() {
  const u64 count = read_u64();
  if (count > remaining()) {
    throw std::runtime_error("BinaryReader: blob length exceeds remaining input");
  }
  std::vector<std::uint8_t> v(buffer_.begin() + static_cast<std::ptrdiff_t>(pos_),
                              buffer_.begin() + static_cast<std::ptrdiff_t>(pos_ + count));
  pos_ += static_cast<std::size_t>(count);
  return v;
}

std::string BinaryReader::read_string(std::size_t max_len) {
  const u64 len = read_u64();
  if (len > remaining() || len > max_len) {
    throw std::runtime_error("BinaryReader: string length exceeds remaining input");
  }
  std::string s(reinterpret_cast<const char*>(buffer_.data() + pos_),
                static_cast<std::size_t>(len));
  pos_ += static_cast<std::size_t>(len);
  return s;
}

void BinaryReader::expect_tag(const std::string& tag) {
  const u64 len = read_u64();
  if (len != tag.size()) throw std::runtime_error("BinaryReader: tag mismatch (want " + tag + ")");
  need(len);
  for (char c : tag) {
    if (buffer_[pos_++] != static_cast<std::uint8_t>(c)) {
      throw std::runtime_error("BinaryReader: tag mismatch (want " + tag + ")");
    }
  }
}

}  // namespace alchemist
