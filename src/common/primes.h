// NTT-friendly prime generation and roots of unity.
//
// Negacyclic NTT over Z_q[X]/(X^N + 1) requires q ≡ 1 (mod 2N) so that a
// primitive 2N-th root of unity psi exists in Z_q. RNS moduli chains for CKKS
// are built from such primes at a requested bit width.
#pragma once

#include <cstddef>
#include <vector>

#include "common/modarith.h"

namespace alchemist {

// Deterministic Miller-Rabin for 64-bit integers.
bool is_prime(u64 n);

// Largest prime p < 2^bits with p ≡ 1 (mod 2N). Throws if none exists.
u64 max_ntt_prime(int bits, std::size_t n);

// `count` distinct primes, each ≡ 1 (mod 2N), descending from just below
// 2^bits. Used to build RNS moduli chains (Q = prod q_i, P = prod p_j).
std::vector<u64> generate_ntt_primes(int bits, std::size_t n, std::size_t count);

// As above but skipping any prime present in `exclude` — lets callers draw the
// special moduli P disjoint from the ciphertext moduli Q.
std::vector<u64> generate_ntt_primes(int bits, std::size_t n, std::size_t count,
                                     const std::vector<u64>& exclude);

// A primitive 2N-th root of unity modulo q (q ≡ 1 mod 2N, N a power of two).
// Deterministic for a given q.
u64 primitive_root_2n(u64 q, std::size_t n);

}  // namespace alchemist
