// Minimal arbitrary-precision unsigned integer.
//
// Used where exact multi-word arithmetic is required: composing RNS residues
// back into Z_Q (CRT), verifying Bconv/Modup/Moddown against ground truth, and
// computing moduli products Q = prod q_i. Little-endian 64-bit limbs; only the
// operations the FHE substrate needs are provided.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/modarith.h"

namespace alchemist {

class BigUInt {
 public:
  BigUInt() = default;
  explicit BigUInt(u64 value);

  static BigUInt product(const std::vector<u64>& factors);

  bool is_zero() const { return limbs_.empty(); }
  std::size_t bit_length() const;

  BigUInt& operator+=(const BigUInt& other);
  BigUInt& operator-=(const BigUInt& other);  // requires *this >= other
  BigUInt& mul_u64(u64 factor);
  BigUInt& add_u64(u64 value);

  friend BigUInt operator+(BigUInt a, const BigUInt& b) { return a += b; }
  friend BigUInt operator-(BigUInt a, const BigUInt& b) { return a -= b; }
  BigUInt operator*(const BigUInt& other) const;

  // Remainder modulo a word-sized divisor.
  u64 mod_u64(u64 divisor) const;
  // Exact division by a word-sized divisor; throws if not exact when
  // `require_exact` is set.
  BigUInt div_u64(u64 divisor, bool require_exact = false) const;

  int compare(const BigUInt& other) const;  // -1 / 0 / +1
  friend bool operator==(const BigUInt& a, const BigUInt& b) { return a.compare(b) == 0; }
  friend bool operator<(const BigUInt& a, const BigUInt& b) { return a.compare(b) < 0; }
  friend bool operator<=(const BigUInt& a, const BigUInt& b) { return a.compare(b) <= 0; }
  friend bool operator>(const BigUInt& a, const BigUInt& b) { return a.compare(b) > 0; }
  friend bool operator>=(const BigUInt& a, const BigUInt& b) { return a.compare(b) >= 0; }

  std::string to_hex() const;
  double to_double() const;

  const std::vector<u64>& limbs() const { return limbs_; }

 private:
  void trim();
  std::vector<u64> limbs_;  // little-endian, no trailing zero limbs
};

// CRT composition: the unique x in [0, prod moduli) with x ≡ residues[i]
// (mod moduli[i]). Moduli must be pairwise coprime.
BigUInt crt_compose(const std::vector<u64>& residues, const std::vector<u64>& moduli);

}  // namespace alchemist
