// Process-wide worker pool for the parallel lazy-reduction substrate.
//
// The paper keeps 128 hardware units busy by fanning the Meta-OP out over RNS
// channels; this is the software analogue. One fixed set of worker threads is
// shared by every functional kernel (NTT, elementwise ring ops, Bconv,
// keyswitch digits) *and* by the serving layer's jobs, so intra-job
// parallelism composes with job-level workers without spawning threads per
// call or oversubscribing the machine.
//
// Determinism contract: parallel_for(n, grain, fn) partitions [0, n) into
// contiguous chunks and runs fn(begin, end) on each exactly once. Every
// substrate kernel writes only to slots owned by its index range and all
// arithmetic is exact mod q, so results are bit-identical for every thread
// count (including ALCHEMIST_THREADS=1, which runs everything inline).
// Reductions that are order-sensitive (keyswitch digit accumulation) are
// computed into per-index slots in parallel and folded sequentially.
//
// Nested calls — a kernel invoked from inside another fan-out's chunk, e.g. a
// weighted_sum under a parallelized Bconv target loop — run inline on the
// executing lane instead of re-entering the queue. The caller thread counts
// as a lane while it executes chunks, so nesting behaves identically no
// matter which lane claims a chunk (keeping the substrate.* counters exact
// for a fixed pool width), deadlock is impossible, and the thread count is
// bounded at pool size + concurrent external callers.
//
// Thread-count control, in precedence order: ThreadPool::set_threads() (CLI
// flags), the ALCHEMIST_THREADS environment variable, hardware concurrency.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace alchemist {

// Substrate kernels with a per-kernel wall-time counter (substrate.kernel_ns).
enum class Kernel : std::uint8_t {
  NttFwd,
  NttInv,
  Elementwise,
  WeightedSum,
  BConv,
  Keyswitch,
  kCount,
};

const char* kernel_name(Kernel k);

// Point-in-time copy of the substrate accounting. obs/substrate_metrics.h
// renders this as substrate.* metrics in a PR-1 telemetry Registry.
struct SubstrateStats {
  std::size_t threads = 1;          // pool width incl. the calling thread
  std::uint64_t parallel_fors = 0;  // calls that fanned out to the pool
  std::uint64_t inline_runs = 0;    // calls run sequentially (1 thread, small n, nested)
  std::uint64_t tasks = 0;          // chunks executed across all fan-outs
  // (kernel name, cumulative wall ns) for every kernel that ran.
  std::vector<std::pair<std::string, std::uint64_t>> kernel_ns;
};

class ThreadPool {
 public:
  using RangeFn = std::function<void(std::size_t, std::size_t)>;

  // The process-wide pool. Created on first use with set_threads() /
  // ALCHEMIST_THREADS / hardware-concurrency sizing.
  static ThreadPool& instance();

  // Resize the process-wide pool (0 = hardware concurrency). Joins the old
  // workers; only legal while no parallel_for is in flight.
  static void set_threads(std::size_t n);

  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Pool width including the calling thread: parallel_for(n >= width) keeps
  // `width` chunks in flight at once.
  std::size_t num_threads() const { return workers_.size() + 1; }

  // Run fn over contiguous chunks partitioning [0, n); at most `grain`-ish
  // elements of slack per chunk boundary (chunks are n/chunk_count sized, and
  // never smaller than forced by `grain`). Blocks until every chunk ran; the
  // caller participates. Exceptions from fn are rethrown (first one wins)
  // after all chunks finish.
  void parallel_for(std::size_t n, std::size_t grain, const RangeFn& fn);

  // True on a pool worker thread (nested parallel_for will run inline).
  static bool on_worker_thread();

  void record_kernel_ns(Kernel k, std::uint64_t ns);
  SubstrateStats stats() const;

 private:
  struct Task;
  void worker_loop();
  // Claim and run chunks of t until none remain; returns chunks executed.
  std::uint64_t run_chunks(Task& t);

  mutable std::mutex mu_;  // guards tasks_ and stop_
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Task>> tasks_;
  bool stop_ = false;

  std::atomic<std::uint64_t> parallel_fors_{0};
  std::atomic<std::uint64_t> inline_runs_{0};
  std::atomic<std::uint64_t> tasks_run_{0};
  std::atomic<std::uint64_t> kernel_ns_[static_cast<std::size_t>(Kernel::kCount)] = {};

  std::vector<std::thread> workers_;
};

// Chunked fan-out over [0, n) on the process-wide pool.
inline void parallel_for(std::size_t n, std::size_t grain,
                         const ThreadPool::RangeFn& fn) {
  ThreadPool::instance().parallel_for(n, grain, fn);
}

// RAII wall-clock timer feeding substrate.kernel_ns{kernel=...}. Only the
// outermost timer of a kernel family records (nested kernels would double
// count their parent's time).
class KernelTimer {
 public:
  explicit KernelTimer(Kernel k);
  ~KernelTimer();
  KernelTimer(const KernelTimer&) = delete;
  KernelTimer& operator=(const KernelTimer&) = delete;

 private:
  Kernel kernel_;
  bool active_ = false;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace alchemist
