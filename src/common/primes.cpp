#include "common/primes.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace alchemist {

namespace {

// Witness set proven sufficient for all n < 2^64.
constexpr u64 kWitnesses[] = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37};

}  // namespace

bool is_prime(u64 n) {
  if (n < 2) return false;
  for (u64 p : {u64{2}, u64{3}, u64{5}, u64{7}, u64{11}, u64{13}}) {
    if (n == p) return true;
    if (n % p == 0) return false;
  }
  u64 d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  for (u64 a : kWitnesses) {
    if (a % n == 0) continue;
    u64 x = pow_mod(a, d, n);
    if (x == 1 || x == n - 1) continue;
    bool composite = true;
    for (int i = 0; i < r - 1; ++i) {
      x = mul_mod(x, x, n);
      if (x == n - 1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

u64 max_ntt_prime(int bits, std::size_t n) {
  if (!is_power_of_two(n)) throw std::invalid_argument("max_ntt_prime: N must be a power of two");
  if (bits < 3 || bits > 62) throw std::invalid_argument("max_ntt_prime: bits out of range");
  const u64 two_n = 2 * static_cast<u64>(n);
  // Start from the largest candidate ≡ 1 (mod 2N) below 2^bits.
  u64 candidate = ((u64{1} << bits) - 1) / two_n * two_n + 1;
  while (candidate > two_n) {
    if (is_prime(candidate)) return candidate;
    candidate -= two_n;
  }
  throw std::runtime_error("max_ntt_prime: no prime found for bits=" + std::to_string(bits));
}

std::vector<u64> generate_ntt_primes(int bits, std::size_t n, std::size_t count) {
  return generate_ntt_primes(bits, n, count, {});
}

std::vector<u64> generate_ntt_primes(int bits, std::size_t n, std::size_t count,
                                     const std::vector<u64>& exclude) {
  if (!is_power_of_two(n)) throw std::invalid_argument("generate_ntt_primes: N must be a power of two");
  if (bits < 3 || bits > 62) throw std::invalid_argument("generate_ntt_primes: bits out of range");
  const u64 two_n = 2 * static_cast<u64>(n);
  std::vector<u64> primes;
  primes.reserve(count);
  u64 candidate = ((u64{1} << bits) - 1) / two_n * two_n + 1;
  while (primes.size() < count && candidate > two_n) {
    if (is_prime(candidate) &&
        std::find(exclude.begin(), exclude.end(), candidate) == exclude.end()) {
      primes.push_back(candidate);
    }
    candidate -= two_n;
  }
  if (primes.size() < count) {
    throw std::runtime_error("generate_ntt_primes: not enough primes at bits=" +
                             std::to_string(bits));
  }
  return primes;
}

u64 primitive_root_2n(u64 q, std::size_t n) {
  if (!is_power_of_two(n)) throw std::invalid_argument("primitive_root_2n: N must be a power of two");
  const u64 two_n = 2 * static_cast<u64>(n);
  if ((q - 1) % two_n != 0) {
    throw std::invalid_argument("primitive_root_2n: q != 1 mod 2N");
  }
  const u64 exp = (q - 1) / two_n;
  // Deterministic scan: g = x^((q-1)/2N) has order dividing 2N (a power of
  // two), and order exactly 2N iff g^N = -1.
  for (u64 x = 2; x < q; ++x) {
    const u64 g = pow_mod(x, exp, q);
    if (pow_mod(g, static_cast<u64>(n), q) == q - 1) return g;
  }
  throw std::runtime_error("primitive_root_2n: no generator found (q not prime?)");
}

}  // namespace alchemist
