// Shared exponential-backoff schedule with deterministic, seed-driven jitter.
//
// One implementation serves both retry loops in the codebase: the simulated
// detect-and-retry harness (fault::Retrier, which *accounts* the delays in
// virtual microseconds) and the serving layer's real retry loop
// (svc::JobRunner, which actually sleeps them). Keeping the schedule here
// guarantees the two price a retry storm identically.
//
// The schedule is the classic capped exponential with full-jitter fraction:
//
//   delay_k = min(cap, base * multiplier^k) * (1 + jitter * u_k),
//   u_k ~ Uniform[-1, 1) drawn from an Rng seeded at construction,
//
// so a fixed (config, seed) pair reproduces the exact delay sequence — the
// property every deterministic soak and every bit-identical replay relies on.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "common/rng.h"

namespace alchemist {

struct BackoffConfig {
  std::uint64_t base_us = 100;     // first retry delay
  double multiplier = 2.0;         // growth per attempt (>= 1)
  std::uint64_t cap_us = 100'000;  // ceiling before jitter
  double jitter = 0.1;             // fraction in [0, 1]: delay *= 1 +/- jitter
  u64 seed = 0xbacc'0ffull;        // jitter stream seed
};

class Backoff {
 public:
  explicit Backoff(BackoffConfig cfg = {}) : cfg_(cfg), rng_(cfg.seed) {
    if (cfg_.base_us == 0) throw std::invalid_argument("Backoff: base_us must be > 0");
    if (!(cfg_.multiplier >= 1.0) || !std::isfinite(cfg_.multiplier)) {
      throw std::invalid_argument("Backoff: multiplier must be finite and >= 1");
    }
    if (!(cfg_.jitter >= 0.0 && cfg_.jitter <= 1.0)) {
      throw std::invalid_argument("Backoff: jitter must be in [0, 1]");
    }
    if (cfg_.cap_us < cfg_.base_us) {
      throw std::invalid_argument("Backoff: cap_us must be >= base_us");
    }
  }

  const BackoffConfig& config() const { return cfg_; }

  // Delay before the next retry, advancing the attempt counter and the jitter
  // stream. Never returns 0: a retry always backs off at least 1 us. The
  // exponent saturates: once base * multiplier^k clears the cap the schedule
  // is pinned there and pow() is no longer evaluated, so arbitrarily high
  // attempt numbers can neither overflow the double (multiplier^k -> inf) nor
  // the final integer conversion (llround past 2^63 is undefined — the
  // jittered cap of a 64-bit cap_us can exceed it).
  std::uint64_t next_us() {
    double delay;
    if (capped_) {
      delay = static_cast<double>(cfg_.cap_us);
    } else {
      delay = static_cast<double>(cfg_.base_us) *
              std::pow(cfg_.multiplier, static_cast<double>(attempts_));
      if (!(delay < static_cast<double>(cfg_.cap_us))) {  // also catches inf/nan
        delay = static_cast<double>(cfg_.cap_us);
        capped_ = true;
      }
    }
    if (cfg_.jitter > 0.0) {
      const double u = 2.0 * rng_.uniform_real() - 1.0;  // [-1, 1)
      delay *= 1.0 + cfg_.jitter * u;
    }
    ++attempts_;
    // Saturate before the integer conversion: llround on values >= 2^63 is
    // undefined behaviour, reachable when cap_us is near UINT64_MAX and the
    // jitter draw lands positive.
    constexpr double kMaxRoundable = 9.0e18;  // < 2^63 - 1
    delay = std::min(delay, kMaxRoundable);
    const std::uint64_t us =
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::llround(delay)));
    total_us_ += us;  // unsigned accumulate: wraps rather than overflows
    return us;
  }

  // Re-arm at attempt 0 with the original jitter seed (full reproduction).
  void reset() {
    attempts_ = 0;
    total_us_ = 0;
    capped_ = false;
    rng_ = Rng(cfg_.seed);
  }

  std::size_t attempts() const { return attempts_; }
  std::uint64_t total_us() const { return total_us_; }

 private:
  BackoffConfig cfg_;
  Rng rng_;
  std::size_t attempts_ = 0;
  std::uint64_t total_us_ = 0;
  bool capped_ = false;
};

}  // namespace alchemist
