// AVX2 (4x u64 lane) variants of the lazy NTT butterflies and 128-bit
// accumulators. Compiled with -mavx2 (see src/common/CMakeLists.txt); only
// reachable behind simd::isa_supported(Isa::Avx2), so every helper stays in
// the anonymous namespace — nothing here may be picked by the linker for a
// non-AVX2 host.
//
// AVX2 has no 64x64 multiply, so the Shoup high/low products are synthesized
// from 32x32 vpmuludq partials with exact carry propagation: the arithmetic
// is bit-identical (mod 2^64) to the scalar u128 formulation.
//
// Stage geometry: butterflies with stride t >= 4 iterate contiguous lanes
// under a broadcast twiddle; the short-stride tails (t = 2, 1) batch
// lanes across adjacent blocks with in-register shuffles and a matching
// permutation of the twiddle vector, so every stage of an N >= 8 transform
// runs vectorized.
#include "common/simd.h"

#if ALCHEMIST_SIMD_AVX2

#include <immintrin.h>

namespace alchemist::simd::detail {

namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

inline __m256i loadu(const u64* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}
inline void storeu(u64* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

// Low 64 bits of a*b per lane. *_hi are the operands shifted right 32,
// precomputed by the caller when an operand is loop-invariant.
inline __m256i mullo64(__m256i a, __m256i b, __m256i a_hi, __m256i b_hi) {
  const __m256i lolo = _mm256_mul_epu32(a, b);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(a, b_hi), _mm256_mul_epu32(a_hi, b));
  return _mm256_add_epi64(lolo, _mm256_slli_epi64(cross, 32));
}

// High 64 bits of a*b per lane, exact carries:
//   a*b = hihi<<64 + (lohi + hilo)<<32 + lolo
//   mid  = hilo + (lolo >> 32)                      (fits: < 2^64 - 2^32)
//   mid2 = lohi + (mid & 0xffffffff)                (fits: < 2^64)
//   hi   = hihi + (mid >> 32) + (mid2 >> 32)
inline __m256i mulhi64(__m256i a, __m256i b, __m256i a_hi, __m256i b_hi) {
  const __m256i lo32 = _mm256_set1_epi64x(0xffffffffll);
  const __m256i lolo = _mm256_mul_epu32(a, b);
  const __m256i lohi = _mm256_mul_epu32(a, b_hi);
  const __m256i hilo = _mm256_mul_epu32(a_hi, b);
  const __m256i hihi = _mm256_mul_epu32(a_hi, b_hi);
  const __m256i mid = _mm256_add_epi64(hilo, _mm256_srli_epi64(lolo, 32));
  const __m256i mid2 = _mm256_add_epi64(lohi, _mm256_and_si256(mid, lo32));
  return _mm256_add_epi64(
      hihi, _mm256_add_epi64(_mm256_srli_epi64(mid, 32), _mm256_srli_epi64(mid2, 32)));
}

// x - bound if x >= bound, else x; requires x < 2*bound and bound < 2^63 so
// the signed sign-bit test of (x - bound) is exact.
inline __m256i fold(__m256i x, __m256i bound) {
  const __m256i t = _mm256_sub_epi64(x, bound);
  const __m256i neg = _mm256_cmpgt_epi64(_mm256_setzero_si256(), t);
  return _mm256_add_epi64(t, _mm256_and_si256(bound, neg));
}

// Loop-invariant Shoup twiddle state: (op, quot) plus their >>32 halves.
struct Twiddle {
  __m256i op, op_hi, quot, quot_hi;
};


inline Twiddle twiddle_vec(__m256i op, __m256i quot) {
  return {op, _mm256_srli_epi64(op, 32), quot, _mm256_srli_epi64(quot, 32)};
}

inline Twiddle twiddle_broadcast(u64 op, u64 quot) {
  return twiddle_vec(_mm256_set1_epi64x(static_cast<long long>(op)),
                     _mm256_set1_epi64x(static_cast<long long>(quot)));
}

// Shoup lazy multiply per lane: op*x - mulhi(quot, x)*q, result in [0, 2q).
inline __m256i shoup_mul_lazy(__m256i x, const Twiddle& w, __m256i q, __m256i q_hi) {
  const __m256i x_hi = _mm256_srli_epi64(x, 32);
  const __m256i hi = mulhi64(w.quot, x, w.quot_hi, x_hi);
  const __m256i prod = mullo64(w.op, x, w.op_hi, x_hi);
  const __m256i hq = mullo64(hi, q, _mm256_srli_epi64(hi, 32), q_hi);
  return _mm256_sub_epi64(prod, hq);
}

// One forward CT butterfly over 4 lanes: (u, x) -> (u' + v, u' + 2q - v).
inline void ct_butterfly(__m256i& u, __m256i& x, const Twiddle& w,
                         __m256i q, __m256i q_hi, __m256i two_q) {
  u = fold(u, two_q);
  const __m256i v = shoup_mul_lazy(x, w, q, q_hi);
  const __m256i lo = _mm256_add_epi64(u, v);
  const __m256i hi = _mm256_sub_epi64(_mm256_add_epi64(u, two_q), v);
  u = lo;
  x = hi;
}

// One inverse GS butterfly over 4 lanes: (u, v) -> (fold(u+v), w*(u+2q-v)).
inline void gs_butterfly(__m256i& u, __m256i& v, const Twiddle& w,
                         __m256i q, __m256i q_hi, __m256i two_q) {
  const __m256i sum = fold(_mm256_add_epi64(u, v), two_q);
  const __m256i diff = _mm256_sub_epi64(_mm256_add_epi64(u, two_q), v);
  u = sum;
  v = shoup_mul_lazy(diff, w, q, q_hi);
}

// Deinterleave 2*lanes consecutive elements into (u, v) halves for stride t,
// and the matching twiddle permutation. Layouts (per 8 elements):
//   t == 2: [u0 u1 v0 v1 | u2 u3 v2 v3], twiddles [s0 s0 s1 s1]
//   t == 1: [u0 v0 u1 v1 | u2 v2 u3 v3], twiddles [s0 s2 s1 s3] after the
//           unpack lane order (u = [u0 u2 u1 u3]).
struct Split {
  __m256i u, v;
};

inline Split split_t2(__m256i a, __m256i b) {
  return {_mm256_permute2x128_si256(a, b, 0x20), _mm256_permute2x128_si256(a, b, 0x31)};
}
inline void join_t2(__m256i u, __m256i v, u64* p) {
  storeu(p, _mm256_permute2x128_si256(u, v, 0x20));
  storeu(p + 4, _mm256_permute2x128_si256(u, v, 0x31));
}
inline __m256i twiddles_t2(const u64* w) {
  // [s0 s0 s1 s1] from the 2 consecutive stage twiddles.
  const __m128i two = _mm_loadu_si128(reinterpret_cast<const __m128i*>(w));
  return _mm256_permute4x64_epi64(_mm256_castsi128_si256(two), 0x50);
}

inline Split split_t1(__m256i a, __m256i b) {
  return {_mm256_unpacklo_epi64(a, b), _mm256_unpackhi_epi64(a, b)};
}
inline void join_t1(__m256i u, __m256i v, u64* p) {
  storeu(p, _mm256_unpacklo_epi64(u, v));
  storeu(p + 4, _mm256_unpackhi_epi64(u, v));
}
inline __m256i twiddles_t1(const u64* w) {
  // Natural [s0 s1 s2 s3] -> unpack lane order [s0 s2 s1 s3].
  return _mm256_permute4x64_epi64(loadu(w), 0xd8);
}

}  // namespace

void ntt_forward_lazy_avx2(const NttTables& t, u64* a) {
  const u64 q64 = t.q;
  const __m256i q = _mm256_set1_epi64x(static_cast<long long>(q64));
  const __m256i q_hi = _mm256_srli_epi64(q, 32);
  const __m256i two_q = _mm256_set1_epi64x(static_cast<long long>(2 * q64));
  const u64 two_q64 = 2 * q64;

  std::size_t len = t.n;
  for (std::size_t m = 1; m < t.n; m <<= 1) {
    len >>= 1;
    if (len >= 4) {
      for (std::size_t i = 0; i < m; ++i) {
        const std::size_t j1 = 2 * i * len;
        const Twiddle w = twiddle_broadcast(t.w_op[m + i], t.w_quot[m + i]);
        // Two independent butterfly vectors per iteration: the Shoup chain
        // (mulhi -> mullo -> sub) is long, so interleaving a second chain
        // keeps the multiply ports fed while the first drains.
        std::size_t j = j1;
        for (; j + 8 <= j1 + len; j += 8) {
          __m256i u0 = loadu(a + j);
          __m256i x0 = loadu(a + j + len);
          __m256i u1 = loadu(a + j + 4);
          __m256i x1 = loadu(a + j + 4 + len);
          ct_butterfly(u0, x0, w, q, q_hi, two_q);
          ct_butterfly(u1, x1, w, q, q_hi, two_q);
          storeu(a + j, u0);
          storeu(a + j + len, x0);
          storeu(a + j + 4, u1);
          storeu(a + j + 4 + len, x1);
        }
        for (; j < j1 + len; j += 4) {
          __m256i u = loadu(a + j);
          __m256i x = loadu(a + j + len);
          ct_butterfly(u, x, w, q, q_hi, two_q);
          storeu(a + j, u);
          storeu(a + j + len, x);
        }
      }
    } else if (len == 2 && t.n >= 8) {
      for (std::size_t i = 0; i < m; i += 2) {
        const std::size_t j1 = 4 * i;
        Split s = split_t2(loadu(a + j1), loadu(a + j1 + 4));
        const Twiddle w =
            twiddle_vec(twiddles_t2(t.w_op + m + i), twiddles_t2(t.w_quot + m + i));
        ct_butterfly(s.u, s.v, w, q, q_hi, two_q);
        join_t2(s.u, s.v, a + j1);
      }
    } else if (len == 1 && t.n >= 8) {
      for (std::size_t i = 0; i < m; i += 4) {
        const std::size_t j1 = 2 * i;
        Split s = split_t1(loadu(a + j1), loadu(a + j1 + 4));
        const Twiddle w =
            twiddle_vec(twiddles_t1(t.w_op + m + i), twiddles_t1(t.w_quot + m + i));
        ct_butterfly(s.u, s.v, w, q, q_hi, two_q);
        join_t1(s.u, s.v, a + j1);
      }
    } else {
      // Tiny transforms (n == 4's tail stages): scalar butterflies.
      for (std::size_t i = 0; i < m; ++i) {
        const std::size_t j1 = 2 * i * len;
        const u64 op = t.w_op[m + i];
        const u64 quot = t.w_quot[m + i];
        for (std::size_t j = j1; j < j1 + len; ++j) {
          u64 u = a[j];
          u -= two_q64 & (u >= two_q64 ? ~u64{0} : 0);
          const u64 x = a[j + len];
          const u64 hi = static_cast<u64>((u128{quot} * x) >> 64);
          const u64 v = op * x - hi * q64;
          a[j] = u + v;
          a[j + len] = u + two_q64 - v;
        }
      }
    }
  }

  // Canonicalize [0, 4q) -> [0, q).
  std::size_t j = 0;
  for (; j + 4 <= t.n; j += 4) {
    storeu(a + j, fold(fold(loadu(a + j), two_q), q));
  }
  for (; j < t.n; ++j) {
    u64 x = a[j];
    x -= two_q64 & (x >= two_q64 ? ~u64{0} : 0);
    x -= q64 & (x >= q64 ? ~u64{0} : 0);
    a[j] = x;
  }
}

void ntt_inverse_lazy_avx2(const NttTables& t, u64* a, u64 ninv_op, u64 ninv_quot) {
  const u64 q64 = t.q;
  const __m256i q = _mm256_set1_epi64x(static_cast<long long>(q64));
  const __m256i q_hi = _mm256_srli_epi64(q, 32);
  const __m256i two_q = _mm256_set1_epi64x(static_cast<long long>(2 * q64));
  const u64 two_q64 = 2 * q64;

  std::size_t len = 1;
  for (std::size_t m = t.n; m > 1; m >>= 1) {
    const std::size_t h = m >> 1;
    if (len >= 4) {
      std::size_t j1 = 0;
      for (std::size_t i = 0; i < h; ++i) {
        const Twiddle w = twiddle_broadcast(t.w_op[h + i], t.w_quot[h + i]);
        std::size_t j = j1;
        for (; j + 8 <= j1 + len; j += 8) {
          __m256i u0 = loadu(a + j);
          __m256i v0 = loadu(a + j + len);
          __m256i u1 = loadu(a + j + 4);
          __m256i v1 = loadu(a + j + 4 + len);
          gs_butterfly(u0, v0, w, q, q_hi, two_q);
          gs_butterfly(u1, v1, w, q, q_hi, two_q);
          storeu(a + j, u0);
          storeu(a + j + len, v0);
          storeu(a + j + 4, u1);
          storeu(a + j + 4 + len, v1);
        }
        for (; j < j1 + len; j += 4) {
          __m256i u = loadu(a + j);
          __m256i v = loadu(a + j + len);
          gs_butterfly(u, v, w, q, q_hi, two_q);
          storeu(a + j, u);
          storeu(a + j + len, v);
        }
        j1 += 2 * len;
      }
    } else if (len == 2 && t.n >= 8) {
      for (std::size_t i = 0; i < h; i += 2) {
        const std::size_t j1 = 4 * i;
        Split s = split_t2(loadu(a + j1), loadu(a + j1 + 4));
        const Twiddle w =
            twiddle_vec(twiddles_t2(t.w_op + h + i), twiddles_t2(t.w_quot + h + i));
        gs_butterfly(s.u, s.v, w, q, q_hi, two_q);
        join_t2(s.u, s.v, a + j1);
      }
    } else if (len == 1 && t.n >= 8) {
      for (std::size_t i = 0; i < h; i += 4) {
        const std::size_t j1 = 2 * i;
        Split s = split_t1(loadu(a + j1), loadu(a + j1 + 4));
        const Twiddle w =
            twiddle_vec(twiddles_t1(t.w_op + h + i), twiddles_t1(t.w_quot + h + i));
        gs_butterfly(s.u, s.v, w, q, q_hi, two_q);
        join_t1(s.u, s.v, a + j1);
      }
    } else {
      std::size_t j1 = 0;
      for (std::size_t i = 0; i < h; ++i) {
        const u64 op = t.w_op[h + i];
        const u64 quot = t.w_quot[h + i];
        for (std::size_t j = j1; j < j1 + len; ++j) {
          const u64 u = a[j];
          const u64 v = a[j + len];
          u64 sum = u + v;
          sum -= two_q64 & (sum >= two_q64 ? ~u64{0} : 0);
          a[j] = sum;
          const u64 x = u + two_q64 - v;
          const u64 hi = static_cast<u64>((u128{quot} * x) >> 64);
          a[j + len] = op * x - hi * q64;
        }
        j1 += 2 * len;
      }
    }
    len <<= 1;
  }

  // Canonicalizing N^{-1} multiply: full Shoup, [0, 2q) in -> [0, q) out.
  const Twiddle ninv = twiddle_broadcast(ninv_op, ninv_quot);
  std::size_t j = 0;
  for (; j + 4 <= t.n; j += 4) {
    const __m256i r = shoup_mul_lazy(loadu(a + j), ninv, q, q_hi);
    storeu(a + j, fold(r, q));
  }
  for (; j < t.n; ++j) {
    const u64 x = a[j];
    const u64 hi = static_cast<u64>((u128{ninv_quot} * x) >> 64);
    u64 r = ninv_op * x - hi * q64;
    if (r >= q64) r -= q64;
    a[j] = r;
  }
}

void dot_accumulate_avx2(const u64* a, const u64* b, std::size_t n, u64& hi, u64& lo) {
  const __m256i sign = _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ull));
  __m256i acc_lo = _mm256_setzero_si256();
  __m256i acc_hi = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = loadu(a + i);
    const __m256i vb = loadu(b + i);
    const __m256i va_hi = _mm256_srli_epi64(va, 32);
    const __m256i vb_hi = _mm256_srli_epi64(vb, 32);
    const __m256i plo = mullo64(va, vb, va_hi, vb_hi);
    const __m256i phi = mulhi64(va, vb, va_hi, vb_hi);
    const __m256i nlo = _mm256_add_epi64(acc_lo, plo);
    // Unsigned carry: nlo < plo, tested via sign-bias signed compare.
    const __m256i carry = _mm256_cmpgt_epi64(_mm256_xor_si256(plo, sign),
                                             _mm256_xor_si256(nlo, sign));
    acc_lo = nlo;
    acc_hi = _mm256_add_epi64(acc_hi, phi);
    acc_hi = _mm256_sub_epi64(acc_hi, carry);  // carry mask is -1 per lane
  }
  alignas(32) u64 lo4[4], hi4[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lo4), acc_lo);
  _mm256_store_si256(reinterpret_cast<__m256i*>(hi4), acc_hi);
  u128 total = 0;
  for (int k = 0; k < 4; ++k) total += (u128{hi4[k]} << 64) | lo4[k];
  for (; i < n; ++i) total += u128{a[i]} * b[i];
  hi = static_cast<u64>(total >> 64);
  lo = static_cast<u64>(total);
}

void weighted_accumulate_avx2(const u64* x, u64 w, std::size_t n,
                              u64* acc_lo, u64* acc_hi) {
  const __m256i sign = _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ull));
  const __m256i vw = _mm256_set1_epi64x(static_cast<long long>(w));
  const __m256i vw_hi = _mm256_srli_epi64(vw, 32);
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m256i vx = loadu(x + k);
    const __m256i vx_hi = _mm256_srli_epi64(vx, 32);
    const __m256i plo = mullo64(vw, vx, vw_hi, vx_hi);
    const __m256i phi = mulhi64(vw, vx, vw_hi, vx_hi);
    const __m256i cur_lo = loadu(acc_lo + k);
    const __m256i nlo = _mm256_add_epi64(cur_lo, plo);
    const __m256i carry = _mm256_cmpgt_epi64(_mm256_xor_si256(plo, sign),
                                             _mm256_xor_si256(nlo, sign));
    __m256i nhi = _mm256_add_epi64(loadu(acc_hi + k), phi);
    nhi = _mm256_sub_epi64(nhi, carry);
    storeu(acc_lo + k, nlo);
    storeu(acc_hi + k, nhi);
  }
  for (; k < n; ++k) {
    const u128 p = u128{w} * x[k];
    const u64 plo = static_cast<u64>(p);
    const u64 nlo = acc_lo[k] + plo;
    acc_hi[k] += static_cast<u64>(p >> 64) + (nlo < plo ? 1 : 0);
    acc_lo[k] = nlo;
  }
}

}  // namespace alchemist::simd::detail

#endif  // ALCHEMIST_SIMD_AVX2
