// Minimal binary serialization: little-endian, length-prefixed, magic+version
// header. Used to persist keys and ciphertexts (see src/serdes for the
// FHE-type overloads).
//
// The reader treats every input as adversarial: declared lengths are capped
// against the bytes actually remaining BEFORE any allocation, so a 16-byte
// file claiming 2^60 elements throws std::runtime_error instead of OOM-ing,
// and every malformed stream fails with a typed exception, never UB.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/modarith.h"

namespace alchemist {

// Order-sensitive FNV-1a digest used for the integrity footers of the FHE
// object framing (src/serdes) — detects any bit flip in a stored stream.
u64 fnv1a(std::span<const std::uint8_t> bytes);

class BinaryWriter {
 public:
  void write_u8(std::uint8_t v) { buffer_.push_back(v); }
  void write_u64(u64 v);
  void write_double(double v);
  void write_u64_vector(std::span<const u64> v);
  // Length-prefixed raw byte blob (nested frames, checkpoint cursors).
  void write_bytes(std::span<const std::uint8_t> bytes);
  // Write a tag identifying the following object (checked on read).
  void write_tag(const std::string& tag);

  // Bytes written so far; pairs with checksum_since() for framed objects.
  std::size_t position() const { return buffer_.size(); }
  u64 checksum_since(std::size_t start) const;

  const std::vector<std::uint8_t>& buffer() const { return buffer_; }
  void save(const std::string& path) const;

 private:
  std::vector<std::uint8_t> buffer_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::vector<std::uint8_t> buffer)
      : buffer_(std::move(buffer)) {}
  static BinaryReader load(const std::string& path);

  std::uint8_t read_u8();
  u64 read_u64();
  double read_double();
  // The declared element count is validated against remaining() before the
  // vector is allocated.
  std::vector<u64> read_u64_vector();
  // Length-prefixed blob written by write_bytes; the declared length is
  // validated against remaining() before allocation.
  std::vector<std::uint8_t> read_bytes();
  // Length-prefixed string written by write_tag, with the same length cap and
  // an additional sanity bound (`max_len`) for keys that should be short.
  std::string read_string(std::size_t max_len = 4096);
  // Throws std::runtime_error if the next tag does not match.
  void expect_tag(const std::string& tag);

  bool at_end() const { return pos_ == buffer_.size(); }
  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return buffer_.size() - pos_; }
  // Digest of the bytes consumed since `start`; compared against the stored
  // integrity footer by the FHE object readers.
  u64 checksum_since(std::size_t start) const;

 private:
  void need(std::size_t bytes) const;
  std::vector<std::uint8_t> buffer_;
  std::size_t pos_ = 0;
};

}  // namespace alchemist
