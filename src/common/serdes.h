// Minimal binary serialization: little-endian, length-prefixed, magic+version
// header. Used to persist keys and ciphertexts (see src/serdes for the
// FHE-type overloads).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/modarith.h"

namespace alchemist {

class BinaryWriter {
 public:
  void write_u8(std::uint8_t v) { buffer_.push_back(v); }
  void write_u64(u64 v);
  void write_double(double v);
  void write_u64_vector(std::span<const u64> v);
  // Write a tag identifying the following object (checked on read).
  void write_tag(const std::string& tag);

  const std::vector<std::uint8_t>& buffer() const { return buffer_; }
  void save(const std::string& path) const;

 private:
  std::vector<std::uint8_t> buffer_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::vector<std::uint8_t> buffer)
      : buffer_(std::move(buffer)) {}
  static BinaryReader load(const std::string& path);

  std::uint8_t read_u8();
  u64 read_u64();
  double read_double();
  std::vector<u64> read_u64_vector();
  // Throws std::runtime_error if the next tag does not match.
  void expect_tag(const std::string& tag);

  bool at_end() const { return pos_ == buffer_.size(); }

 private:
  void need(std::size_t bytes) const;
  std::vector<std::uint8_t> buffer_;
  std::size_t pos_ = 0;
};

}  // namespace alchemist
