#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <stdexcept>

// Header-only pieces of the trace substrate (TraceSink::record and the
// ambient thread-local are inline), so adopting the submitting span's context
// adds no link dependency on the obs library.
#include "obs/trace.h"

namespace alchemist {

namespace {

// Workers mark themselves so nested parallel_for calls run inline.
thread_local bool t_on_worker = false;

// Singleton storage: a unique_ptr so set_threads can rebuild the pool, plus
// an atomic fast-path pointer so instance() costs one acquire-load on the
// (hot) kernel paths once the pool exists.
std::mutex g_pool_mu;
std::atomic<ThreadPool*> g_pool{nullptr};
std::unique_ptr<ThreadPool>& pool_slot() {
  static std::unique_ptr<ThreadPool> slot;
  return slot;
}

std::size_t& requested_threads() {
  static std::size_t requested = 0;  // 0 = resolve from env / hardware
  return requested;
}

std::size_t resolve_thread_count(std::size_t requested) {
  if (requested == 0) {
    if (const char* env = std::getenv("ALCHEMIST_THREADS")) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && v >= 1) requested = static_cast<std::size_t>(v);
    }
  }
  if (requested == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    requested = hw == 0 ? 1 : hw;
  }
  return std::min<std::size_t>(requested, 64);
}

}  // namespace

const char* kernel_name(Kernel k) {
  switch (k) {
    case Kernel::NttFwd: return "ntt_fwd";
    case Kernel::NttInv: return "ntt_inv";
    case Kernel::Elementwise: return "elementwise";
    case Kernel::WeightedSum: return "weighted_sum";
    case Kernel::BConv: return "bconv";
    case Kernel::Keyswitch: return "keyswitch";
    case Kernel::kCount: break;
  }
  return "unknown";
}

// One parallel_for fan-out: workers (and the caller) claim chunk indices from
// `next` until exhausted; the last finisher signals `done_cv`.
struct ThreadPool::Task {
  std::size_t n = 0;
  std::size_t chunks = 0;
  const RangeFn* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex done_mu;  // also guards `error`
  std::condition_variable done_cv;
  std::exception_ptr error;
};

ThreadPool& ThreadPool::instance() {
  if (ThreadPool* p = g_pool.load(std::memory_order_acquire)) return *p;
  std::lock_guard<std::mutex> lk(g_pool_mu);
  if (!pool_slot()) {
    pool_slot() = std::make_unique<ThreadPool>(resolve_thread_count(requested_threads()));
    g_pool.store(pool_slot().get(), std::memory_order_release);
  }
  return *pool_slot();
}

void ThreadPool::set_threads(std::size_t n) {
  std::lock_guard<std::mutex> lk(g_pool_mu);
  requested_threads() = n;
  const std::size_t resolved = resolve_thread_count(n);
  if (pool_slot() && pool_slot()->num_threads() == resolved) return;
  // Rebuild, carrying the accumulated substrate counters across so telemetry
  // stays monotonic over a resize.
  SubstrateStats carry;
  if (pool_slot()) carry = pool_slot()->stats();
  g_pool.store(nullptr, std::memory_order_release);
  pool_slot().reset();  // joins the old workers
  pool_slot() = std::make_unique<ThreadPool>(resolved);
  ThreadPool& pool = *pool_slot();
  pool.parallel_fors_.store(carry.parallel_fors, std::memory_order_relaxed);
  pool.inline_runs_.store(carry.inline_runs, std::memory_order_relaxed);
  pool.tasks_run_.store(carry.tasks, std::memory_order_relaxed);
  for (const auto& [name, ns] : carry.kernel_ns) {
    for (std::size_t k = 0; k < static_cast<std::size_t>(Kernel::kCount); ++k) {
      if (name == kernel_name(static_cast<Kernel>(k))) {
        pool.kernel_ns_[k].store(ns, std::memory_order_relaxed);
      }
    }
  }
  g_pool.store(&pool, std::memory_order_release);
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) throw std::invalid_argument("ThreadPool: threads must be >= 1");
  workers_.reserve(threads - 1);  // the caller is the extra lane
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::on_worker_thread() { return t_on_worker; }

void ThreadPool::parallel_for(std::size_t n, std::size_t grain, const RangeFn& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t width = num_threads();
  // Fan-out tracing: top-level calls on a traced thread record one child span
  // of the ambient context (obs/trace.h). Only top-level calls mint spans —
  // nested fan-outs run inline on whichever lane claimed the chunk, so their
  // ordinals would depend on scheduling. The ordinal counter lives in the
  // ambient scope and the owning thread issues fan-outs sequentially, so the
  // k-th fan-out of a job always mints the same span id regardless of pool
  // width (the inline fast path below records the same span).
  obs::AmbientTrace& ambient = obs::ambient_trace();
  const bool span_this = !t_on_worker && ambient.active();
  obs::TraceContext span_ctx;
  double span_start = 0;
  if (span_this) {
    span_ctx = obs::child_context(ambient.ctx, "parallel_for",
                                  ambient.next_ordinal++);
    span_start = ambient.sink->now_us();
  }
  auto record_span = [&](std::size_t chunks) {
    if (!span_this) return;
    obs::SpanRecord s;
    s.trace_id = span_ctx.trace_id;
    s.span_id = span_ctx.span_id;
    s.parent_span = span_ctx.parent_span;
    s.name = "parallel_for";
    s.kind = "pool";
    s.track = "pool";
    s.clock = obs::SpanClock::WallUs;
    s.ts = span_start;
    s.dur = ambient.sink->now_us() - span_start;
    s.num_attrs = {{"n", static_cast<double>(n)},
                   {"chunks", static_cast<double>(chunks)},
                   {"width", static_cast<double>(width)}};
    ambient.sink->record(std::move(s));
  };
  if (width == 1 || n <= grain || t_on_worker) {
    inline_runs_.fetch_add(1, std::memory_order_relaxed);
    fn(0, n);
    record_span(1);
    return;
  }
  auto task = std::make_shared<Task>();
  task->n = n;
  // Chunks: enough for ~4 per lane (work stealing evens out imbalance), but
  // never smaller than `grain` elements each. The chunk boundaries depend
  // only on (n, chunks), never on scheduling.
  task->chunks = std::min((n + grain - 1) / grain, width * 4);
  task->fn = &fn;
  {
    std::lock_guard<std::mutex> lk(mu_);
    tasks_.push_back(task);
  }
  cv_.notify_all();
  parallel_fors_.fetch_add(1, std::memory_order_relaxed);
  // The caller is one of the lanes. Mark it as a worker for the duration so
  // a nested parallel_for inside its chunks runs inline exactly like it does
  // on pool workers — otherwise the substrate counters (and the fan-out
  // shape) would depend on which lane happened to claim which chunk.
  const bool was_worker = t_on_worker;
  t_on_worker = true;
  run_chunks(*task);
  t_on_worker = was_worker;
  {
    std::unique_lock<std::mutex> lk(task->done_mu);
    task->done_cv.wait(lk, [&] { return task->done.load(std::memory_order_acquire) ==
                                        task->chunks; });
  }
  {
    // All chunks claimed and finished: retire the task from the queue.
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = std::find(tasks_.begin(), tasks_.end(), task);
    if (it != tasks_.end()) tasks_.erase(it);
  }
  record_span(task->chunks);
  if (task->error) std::rethrow_exception(task->error);
}

std::uint64_t ThreadPool::run_chunks(Task& t) {
  std::uint64_t ran = 0;
  for (;;) {
    const std::size_t c = t.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= t.chunks) break;
    const std::size_t begin = t.n * c / t.chunks;
    const std::size_t end = t.n * (c + 1) / t.chunks;
    try {
      (*t.fn)(begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lk(t.done_mu);
      if (!t.error) t.error = std::current_exception();
    }
    ++ran;
    if (t.done.fetch_add(1, std::memory_order_acq_rel) + 1 == t.chunks) {
      std::lock_guard<std::mutex> lk(t.done_mu);
      t.done_cv.notify_all();
    }
  }
  if (ran != 0) tasks_run_.fetch_add(ran, std::memory_order_relaxed);
  return ran;
}

void ThreadPool::worker_loop() {
  t_on_worker = true;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    std::shared_ptr<Task> task;
    cv_.wait(lk, [&] {
      if (stop_) return true;
      for (const auto& t : tasks_) {
        if (t->next.load(std::memory_order_relaxed) < t->chunks) {
          task = t;
          return true;
        }
      }
      return false;
    });
    if (stop_) return;
    lk.unlock();
    run_chunks(*task);
    task.reset();
    lk.lock();
  }
}

void ThreadPool::record_kernel_ns(Kernel k, std::uint64_t ns) {
  kernel_ns_[static_cast<std::size_t>(k)].fetch_add(ns, std::memory_order_relaxed);
}

SubstrateStats ThreadPool::stats() const {
  SubstrateStats s;
  s.threads = num_threads();
  s.parallel_fors = parallel_fors_.load(std::memory_order_relaxed);
  s.inline_runs = inline_runs_.load(std::memory_order_relaxed);
  s.tasks = tasks_run_.load(std::memory_order_relaxed);
  for (std::size_t k = 0; k < static_cast<std::size_t>(Kernel::kCount); ++k) {
    const std::uint64_t ns = kernel_ns_[k].load(std::memory_order_relaxed);
    if (ns != 0) s.kernel_ns.emplace_back(kernel_name(static_cast<Kernel>(k)), ns);
  }
  return s;
}

namespace {
thread_local int t_timer_depth = 0;
}  // namespace

KernelTimer::KernelTimer(Kernel k) : kernel_(k) {
  if (t_timer_depth++ != 0) return;  // only the outermost timer records
  active_ = true;
  start_ = std::chrono::steady_clock::now();
}

KernelTimer::~KernelTimer() {
  --t_timer_depth;
  if (!active_) return;
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::steady_clock::now() - start_);
  ThreadPool::instance().record_kernel_ns(kernel_, static_cast<std::uint64_t>(ns.count()));
}

}  // namespace alchemist
