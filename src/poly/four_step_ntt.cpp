#include "poly/four_step_ntt.h"

#include <stdexcept>

#include "common/primes.h"
#include "poly/ntt.h"

namespace alchemist {

namespace {

// Iterative Cooley-Tukey cyclic DFT, natural order in and out (input is
// bit-reverse permuted first). `omega` must have multiplicative order m.
void cyclic_dft(std::span<u64> a, const Modulus& mod, u64 omega) {
  const std::size_t m = a.size();
  int log_m = 0;
  while ((std::size_t{1} << log_m) < m) ++log_m;
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t j = bit_reverse(i, log_m);
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= m; len <<= 1) {
    const u64 wlen = mod.pow(omega, static_cast<u64>(m / len));
    for (std::size_t i = 0; i < m; i += len) {
      u64 w = 1;
      for (std::size_t j = 0; j < len / 2; ++j) {
        const u64 u = a[i + j];
        const u64 v = mod.mul(a[i + j + len / 2], w);
        a[i + j] = mod.add(u, v);
        a[i + j + len / 2] = mod.sub(u, v);
        w = mod.mul(w, wlen);
      }
    }
  }
}

}  // namespace

FourStepNtt::FourStepNtt(u64 q, std::size_t n) : mod_(q), n_(n) {
  if (!is_power_of_two(n) || n < 4) {
    throw std::invalid_argument("FourStepNtt: N must be a power of two >= 4");
  }
  int log_n = 0;
  while ((std::size_t{1} << log_n) < n) ++log_n;
  n1_ = std::size_t{1} << (log_n / 2);
  n2_ = n / n1_;

  psi_ = primitive_root_2n(q, n);
  psi_inv_ = mod_.inv(psi_);
  omega_ = mod_.mul(psi_, psi_);
  omega_inv_ = mod_.inv(omega_);

  twist_.resize(n);
  untwist_.resize(n);
  const u64 n_inv = mod_.inv(static_cast<u64>(n));
  u64 p = 1, pi = n_inv;
  for (std::size_t i = 0; i < n; ++i) {
    twist_[i] = p;
    untwist_[i] = pi;  // psi^{-i} * N^{-1}
    p = mod_.mul(p, psi_);
    pi = mod_.mul(pi, psi_inv_);
  }
}

void FourStepNtt::cyclic_ntt(std::span<u64> a, bool invert) const {
  const u64 w = invert ? omega_inv_ : omega_;
  // Matrix layout: element a[i2 * n1 + i1] is row i1 (of n1 rows), column i2
  // (of n2 columns). Output index: k = k1 * n2 + k2.
  std::vector<u64> row(n2_);
  std::vector<u64> scratch(n_);

  // Phase 1: n1 independent DFTs of size n2 over stride-n1 slices, with root
  // w^{n1} (order n2).
  const u64 w_n1 = mod_.pow(w, static_cast<u64>(n1_));
  for (std::size_t i1 = 0; i1 < n1_; ++i1) {
    for (std::size_t i2 = 0; i2 < n2_; ++i2) row[i2] = a[i2 * n1_ + i1];
    cyclic_dft(row, mod_, w_n1);
    // Phase 2 fused in: per-element twiddle w^(i1 * k2).
    for (std::size_t k2 = 0; k2 < n2_; ++k2) {
      const u64 tw = mod_.pow(w, static_cast<u64>(i1 * k2));
      scratch[k2 * n1_ + i1] = mod_.mul(row[k2], tw);
    }
  }

  // Phase 3 (after the transpose implied by the scratch layout): n2
  // independent DFTs of size n1 over contiguous columns, root w^{n2}.
  const u64 w_n2 = mod_.pow(w, static_cast<u64>(n2_));
  std::vector<u64> col(n1_);
  for (std::size_t k2 = 0; k2 < n2_; ++k2) {
    for (std::size_t i1 = 0; i1 < n1_; ++i1) col[i1] = scratch[k2 * n1_ + i1];
    cyclic_dft(col, mod_, w_n2);
    for (std::size_t k1 = 0; k1 < n1_; ++k1) a[k1 * n2_ + k2] = col[k1];
  }
}

void FourStepNtt::forward(std::span<u64> a) const {
  if (a.size() != n_) throw std::invalid_argument("FourStepNtt::forward: size mismatch");
  for (std::size_t i = 0; i < n_; ++i) a[i] = mod_.mul(a[i], twist_[i]);
  cyclic_ntt(a, /*invert=*/false);
}

void FourStepNtt::inverse(std::span<u64> a) const {
  if (a.size() != n_) throw std::invalid_argument("FourStepNtt::inverse: size mismatch");
  cyclic_ntt(a, /*invert=*/true);
  for (std::size_t i = 0; i < n_; ++i) a[i] = mod_.mul(a[i], untwist_[i]);
}

}  // namespace alchemist
