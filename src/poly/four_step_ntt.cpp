#include "poly/four_step_ntt.h"

#include <algorithm>
#include <stdexcept>

#include "common/primes.h"
#include "poly/ntt.h"

namespace alchemist {

namespace {

inline u64 shoup_mul(u64 x, u64 op, u64 quot, u64 q) {
  const u64 hi = static_cast<u64>((u128{quot} * x) >> 64);
  u64 r = op * x - hi * q;
  if (r >= q) r -= q;
  return r;  // [0, q) for any 64-bit x, including lazy [0, 4q) DFT outputs
}

inline u64 shoup_mul_lazy(u64 x, u64 op, u64 quot, u64 q) {
  const u64 hi = static_cast<u64>((u128{quot} * x) >> 64);
  return op * x - hi * q;  // [0, 2q)
}

}  // namespace

FourStepNtt::FourStepNtt(u64 q, std::size_t n) : mod_(q), n_(n) {
  if (!is_power_of_two(n) || n < 4) {
    throw std::invalid_argument("FourStepNtt: N must be a power of two >= 4");
  }
  int log_n = 0;
  while ((std::size_t{1} << log_n) < n) ++log_n;
  n1_ = std::size_t{1} << (log_n / 2);
  n2_ = n / n1_;

  psi_ = primitive_root_2n(q, n);
  psi_inv_ = mod_.inv(psi_);
  omega_ = mod_.mul(psi_, psi_);
  omega_inv_ = mod_.inv(omega_);
  build_plans();
}

void FourStepNtt::build_plans() {
  const u64 q = mod_.value();
  const auto shoup_pair = [q](u64 w, MulPlan& plan, std::size_t idx) {
    const MulModShoup s(w, q);
    plan.op[idx] = s.operand();
    plan.quot[idx] = s.quotient();
  };
  const auto resize_plan = [](MulPlan& plan, std::size_t m) {
    plan.op.resize(m);
    plan.quot.resize(m);
  };

  // Twist psi^i and untwist psi^{-i} * N^{-1}, indexed by the natural
  // coefficient position (the source index of the first transpose, the
  // destination index of the last).
  resize_plan(twist_, n_);
  resize_plan(untwist_, n_);
  const u64 n_inv = mod_.inv(static_cast<u64>(n_));
  u64 p = 1, pi = n_inv;
  for (std::size_t i = 0; i < n_; ++i) {
    shoup_pair(p, twist_, i);
    shoup_pair(pi, untwist_, i);
    p = mod_.mul(p, psi_);
    pi = mod_.mul(pi, psi_inv_);
  }

  // Mid twiddles omega^{±i1*k2}, laid out row-major with the row-DFT sweep:
  // mid[i1 * n2 + k2]. Row i1 is the running-power sequence of omega^{i1}.
  resize_plan(mid_fwd_, n_);
  resize_plan(mid_inv_, n_);
  for (std::size_t i1 = 0; i1 < n1_; ++i1) {
    const u64 step_f = mod_.pow(omega_, static_cast<u64>(i1));
    const u64 step_i = mod_.pow(omega_inv_, static_cast<u64>(i1));
    u64 wf = 1, wi = 1;
    for (std::size_t k2 = 0; k2 < n2_; ++k2) {
      shoup_pair(wf, mid_fwd_, i1 * n2_ + k2);
      shoup_pair(wi, mid_inv_, i1 * n2_ + k2);
      wf = mod_.mul(wf, step_f);
      wi = mod_.mul(wi, step_i);
    }
  }

  // Sub-DFT stage schedules: tw[len/2 + j] = (w^{m/len})^j flattens every
  // stage of an m-point natural-order CT into one m-word Shoup pair.
  const auto build_dft = [this, &shoup_pair, &resize_plan](u64 w, std::size_t m,
                                                          DftPlan& plan) {
    plan.m = m;
    plan.log_m = 0;
    while ((std::size_t{1} << plan.log_m) < m) ++plan.log_m;
    resize_plan(plan.tw, m);
    for (std::size_t len = 2; len <= m; len <<= 1) {
      const u64 wlen = mod_.pow(w, static_cast<u64>(m / len));
      u64 cur = 1;
      for (std::size_t j = 0; j < len / 2; ++j) {
        shoup_pair(cur, plan.tw, len / 2 + j);
        cur = mod_.mul(cur, wlen);
      }
    }
  };
  build_dft(mod_.pow(omega_, static_cast<u64>(n1_)), n2_, row_fwd_);
  build_dft(mod_.pow(omega_inv_, static_cast<u64>(n1_)), n2_, row_inv_);
  build_dft(mod_.pow(omega_, static_cast<u64>(n2_)), n1_, col_fwd_);
  build_dft(mod_.pow(omega_inv_, static_cast<u64>(n2_)), n1_, col_inv_);
}

namespace {

// In-place m-point cyclic DFT over one contiguous row, natural order in and
// out: bit-reverse permute, then Harvey lazy CT stages against the flattened
// Shoup schedule. Input in [0, q); output lazy in [0, 4q).
void dft_row_lazy(u64* a, std::size_t m, int log_m,
                  const u64* tw_op, const u64* tw_quot, u64 q) {
  const u64 two_q = 2 * q;
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t j = bit_reverse(i, log_m);
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= m; len <<= 1) {
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < m; i += len) {
      for (std::size_t j = 0; j < half; ++j) {
        u64 u = a[i + j];
        u -= two_q & (u >= two_q ? ~u64{0} : 0);
        const u64 v = shoup_mul_lazy(a[i + j + half], tw_op[half + j],
                                     tw_quot[half + j], q);
        a[i + j] = u + v;
        a[i + j + half] = u + two_q - v;
      }
    }
  }
}

}  // namespace

void FourStepNtt::cyclic_ntt(std::span<u64> a, bool invert, Workspace& ws) const {
  // Matrix layout: element a[i2 * n1 + i1] is row i1 (of n1 rows), column i2
  // (of n2 columns). Output index: k = k1 * n2 + k2.
  const u64 q = mod_.value();
  ws.buf_a.resize(n_);
  ws.buf_b.resize(n_);
  u64* rows = ws.buf_a.data();  // i1-major: rows[i1 * n2 + i2]
  u64* cols = ws.buf_b.data();  // k2-major: cols[k2 * n1 + i1]
  const MulPlan& mid = invert ? mid_inv_ : mid_fwd_;
  const DftPlan& row_plan = invert ? row_inv_ : row_fwd_;
  const DftPlan& col_plan = invert ? col_inv_ : col_fwd_;

  // Step 1: tiled transpose a (n2 x n1, i2-major) -> rows (i1-major). The
  // forward negacyclic twist psi^i is fused into this sweep (its index is the
  // source index); the inverse starts untwisted.
  for (std::size_t rb = 0; rb < n2_; rb += kTile) {
    const std::size_t re = std::min(n2_, rb + kTile);
    for (std::size_t cb = 0; cb < n1_; cb += kTile) {
      const std::size_t ce = std::min(n1_, cb + kTile);
      for (std::size_t i2 = rb; i2 < re; ++i2) {
        for (std::size_t i1 = cb; i1 < ce; ++i1) {
          const std::size_t src = i2 * n1_ + i1;
          rows[i1 * n2_ + i2] =
              invert ? a[src] : shoup_mul(a[src], twist_.op[src], twist_.quot[src], q);
        }
      }
    }
  }

  // Step 2: n1 contiguous row DFTs of size n2 (root w^{n1}), each followed by
  // the fused mid-twiddle multiply w^{±i1*k2} that also canonicalizes the
  // lazy DFT output back to [0, q).
  for (std::size_t i1 = 0; i1 < n1_; ++i1) {
    u64* row = rows + i1 * n2_;
    dft_row_lazy(row, n2_, row_plan.log_m, row_plan.tw.op.data(),
                 row_plan.tw.quot.data(), q);
    const u64* mop = mid.op.data() + i1 * n2_;
    const u64* mquot = mid.quot.data() + i1 * n2_;
    for (std::size_t k2 = 0; k2 < n2_; ++k2) {
      row[k2] = shoup_mul(row[k2], mop[k2], mquot[k2], q);
    }
  }

  // Step 3: tiled transpose rows (n1 x n2) -> cols (k2-major).
  for (std::size_t rb = 0; rb < n1_; rb += kTile) {
    const std::size_t re = std::min(n1_, rb + kTile);
    for (std::size_t cb = 0; cb < n2_; cb += kTile) {
      const std::size_t ce = std::min(n2_, cb + kTile);
      for (std::size_t i1 = rb; i1 < re; ++i1) {
        for (std::size_t k2 = cb; k2 < ce; ++k2) {
          cols[k2 * n1_ + i1] = rows[i1 * n2_ + k2];
        }
      }
    }
  }

  // Step 4: n2 contiguous column DFTs of size n1 (root w^{n2}), lazy output.
  for (std::size_t k2 = 0; k2 < n2_; ++k2) {
    dft_row_lazy(cols + k2 * n1_, n1_, col_plan.log_m, col_plan.tw.op.data(),
                 col_plan.tw.quot.data(), q);
  }

  // Step 5: tiled transpose cols (n2 x n1) back to the natural output order
  // a[k1 * n2 + k2]. The inverse fuses untwist psi^{-k} * N^{-1} (indexed by
  // the destination) which canonicalizes; the forward folds [0,4q) -> [0,q).
  const u64 two_q = 2 * q;
  for (std::size_t rb = 0; rb < n2_; rb += kTile) {
    const std::size_t re = std::min(n2_, rb + kTile);
    for (std::size_t cb = 0; cb < n1_; cb += kTile) {
      const std::size_t ce = std::min(n1_, cb + kTile);
      for (std::size_t k2 = rb; k2 < re; ++k2) {
        for (std::size_t k1 = cb; k1 < ce; ++k1) {
          const std::size_t dst = k1 * n2_ + k2;
          u64 x = cols[k2 * n1_ + k1];
          if (invert) {
            x = shoup_mul(x, untwist_.op[dst], untwist_.quot[dst], q);
          } else {
            x -= two_q & (x >= two_q ? ~u64{0} : 0);
            x -= q & (x >= q ? ~u64{0} : 0);
          }
          a[dst] = x;
        }
      }
    }
  }
}

void FourStepNtt::forward(std::span<u64> a) const {
  static thread_local Workspace ws;
  forward(a, ws);
}

void FourStepNtt::inverse(std::span<u64> a) const {
  static thread_local Workspace ws;
  inverse(a, ws);
}

void FourStepNtt::forward(std::span<u64> a, Workspace& ws) const {
  if (a.size() != n_) throw std::invalid_argument("FourStepNtt::forward: size mismatch");
  cyclic_ntt(a, /*invert=*/false, ws);
}

void FourStepNtt::inverse(std::span<u64> a, Workspace& ws) const {
  if (a.size() != n_) throw std::invalid_argument("FourStepNtt::inverse: size mismatch");
  cyclic_ntt(a, /*invert=*/true, ws);
}

}  // namespace alchemist
