// Software analogues of the paper's lazy reduction (Tables 2-3).
//
// The Meta-OP (M_j A_j)_n R_j defers modular reduction until after the n-term
// accumulation. In software the same transformation turns n Barrett
// reductions into one: products are accumulated in 128-bit and reduced once,
// valid while n * max(a) * max(b) stays below 2^128. These kernels are the
// measurable counterpart of the paper's #Mults columns — the eager and lazy
// variants compute identical results (tested), with the lazy ones running
// the fewer-multiplications dataflow.
#pragma once

#include <span>
#include <vector>

#include "common/modarith.h"

namespace alchemist {

// Inner product sum_i a[i] * b[i] mod q — the DecompPolyMult accumulation
// pattern (Table 2).
u64 dot_mod_eager(std::span<const u64> a, std::span<const u64> b, const Modulus& mod);
u64 dot_mod_lazy(std::span<const u64> a, std::span<const u64> b, const Modulus& mod);

// out[k] = sum_i w[i] * x[i][k] mod q — one Bconv output channel (Table 3):
// L input channels combined with per-channel weights.
void weighted_sum_eager(std::span<const std::vector<u64>> x, std::span<const u64> w,
                        const Modulus& mod, std::span<u64> out);
void weighted_sum_lazy(std::span<const std::vector<u64>> x, std::span<const u64> w,
                       const Modulus& mod, std::span<u64> out);

// True iff `terms` products of values below 2^`bits_a` * 2^`bits_b` can be
// accumulated in 128 bits without overflow.
bool lazy_accumulation_fits(std::size_t terms, int bits_a, int bits_b);

}  // namespace alchemist
