#include "poly/rns.h"

#include <stdexcept>

#include "common/biguint.h"
#include "common/thread_pool.h"
#include "poly/lazy_kernels.h"
#include "poly/ntt.h"

namespace alchemist {

namespace {

// Fan one flattened [begin, end) range over per-channel contiguous segments:
// f(channel, i_begin, i_end). Keeps the parallel_for chunking on a single
// (channels * n)-sized axis while the inner loops stay tight per channel.
template <typename F>
void for_channel_segments(std::size_t begin, std::size_t end, std::size_t n, F&& f) {
  std::size_t c = begin / n;
  std::size_t i = begin % n;
  while (begin < end) {
    const std::size_t len = std::min(end - begin, n - i);
    f(c, i, i + len);
    begin += len;
    ++c;
    i = 0;
  }
}

// Elementwise grain: chunks below this many coefficients are not worth a
// handoff to the pool.
constexpr std::size_t kElementwiseGrain = 1 << 13;

}  // namespace

RnsPoly::RnsPoly(std::size_t n, std::vector<u64> moduli, Form form)
    : n_(n), form_(form), moduli_values_(std::move(moduli)) {
  if (!is_power_of_two(n)) throw std::invalid_argument("RnsPoly: N must be a power of two");
  if (moduli_values_.empty()) throw std::invalid_argument("RnsPoly: empty basis");
  moduli_.reserve(moduli_values_.size());
  channels_.reserve(moduli_values_.size());
  for (u64 q : moduli_values_) {
    moduli_.emplace_back(q);
    channels_.emplace_back(n, 0);
  }
}

void RnsPoly::to_ntt() {
  if (form_ == Form::Ntt) return;
  KernelTimer timer(Kernel::NttFwd);
  // One NTT per RNS channel — the paper's embarrassingly-parallel axis.
  parallel_for(channels_.size(), 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      get_ntt_table(moduli_values_[i], n_).forward(channels_[i]);
    }
  });
  form_ = Form::Ntt;
}

void RnsPoly::to_coeff() {
  if (form_ == Form::Coeff) return;
  KernelTimer timer(Kernel::NttInv);
  parallel_for(channels_.size(), 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      get_ntt_table(moduli_values_[i], n_).inverse(channels_[i]);
    }
  });
  form_ = Form::Coeff;
}

void RnsPoly::check_compatible(const RnsPoly& other, const char* op) const {
  if (n_ != other.n_ || moduli_values_ != other.moduli_values_ || form_ != other.form_) {
    throw std::invalid_argument(std::string("RnsPoly::") + op +
                                ": degree/basis/form mismatch");
  }
}

RnsPoly& RnsPoly::operator+=(const RnsPoly& other) {
  check_compatible(other, "+=");
  KernelTimer timer(Kernel::Elementwise);
  parallel_for(channels_.size() * n_, kElementwiseGrain,
               [&](std::size_t b, std::size_t e) {
    for_channel_segments(b, e, n_, [&](std::size_t c, std::size_t i0, std::size_t i1) {
      const u64 q = moduli_values_[c];
      for (std::size_t i = i0; i < i1; ++i) {
        channels_[c][i] = add_mod(channels_[c][i], other.channels_[c][i], q);
      }
    });
  });
  return *this;
}

RnsPoly& RnsPoly::operator-=(const RnsPoly& other) {
  check_compatible(other, "-=");
  KernelTimer timer(Kernel::Elementwise);
  parallel_for(channels_.size() * n_, kElementwiseGrain,
               [&](std::size_t b, std::size_t e) {
    for_channel_segments(b, e, n_, [&](std::size_t c, std::size_t i0, std::size_t i1) {
      const u64 q = moduli_values_[c];
      for (std::size_t i = i0; i < i1; ++i) {
        channels_[c][i] = sub_mod(channels_[c][i], other.channels_[c][i], q);
      }
    });
  });
  return *this;
}

RnsPoly& RnsPoly::operator*=(const RnsPoly& other) {
  check_compatible(other, "*=");
  if (form_ != Form::Ntt) {
    throw std::invalid_argument("RnsPoly::*=: operands must be in NTT form");
  }
  KernelTimer timer(Kernel::Elementwise);
  parallel_for(channels_.size() * n_, kElementwiseGrain,
               [&](std::size_t b, std::size_t e) {
    for_channel_segments(b, e, n_, [&](std::size_t c, std::size_t i0, std::size_t i1) {
      const Modulus& mod = moduli_[c];
      for (std::size_t i = i0; i < i1; ++i) {
        channels_[c][i] = mod.mul(channels_[c][i], other.channels_[c][i]);
      }
    });
  });
  return *this;
}

RnsPoly& RnsPoly::negate() {
  KernelTimer timer(Kernel::Elementwise);
  parallel_for(channels_.size() * n_, kElementwiseGrain,
               [&](std::size_t b, std::size_t e) {
    for_channel_segments(b, e, n_, [&](std::size_t c, std::size_t i0, std::size_t i1) {
      const u64 q = moduli_values_[c];
      for (std::size_t i = i0; i < i1; ++i) {
        channels_[c][i] = neg_mod(channels_[c][i], q);
      }
    });
  });
  return *this;
}

RnsPoly& RnsPoly::mul_scalar(std::span<const u64> scalar_per_channel) {
  if (scalar_per_channel.size() != channels_.size()) {
    throw std::invalid_argument("RnsPoly::mul_scalar: scalar count mismatch");
  }
  KernelTimer timer(Kernel::Elementwise);
  parallel_for(channels_.size() * n_, kElementwiseGrain,
               [&](std::size_t b, std::size_t e) {
    for_channel_segments(b, e, n_, [&](std::size_t c, std::size_t i0, std::size_t i1) {
      const Modulus& mod = moduli_[c];
      const u64 s = mod.reduce(scalar_per_channel[c]);
      for (std::size_t i = i0; i < i1; ++i) {
        channels_[c][i] = mod.mul(channels_[c][i], s);
      }
    });
  });
  return *this;
}

RnsPoly& RnsPoly::mul_scalar(u64 scalar) {
  KernelTimer timer(Kernel::Elementwise);
  parallel_for(channels_.size() * n_, kElementwiseGrain,
               [&](std::size_t b, std::size_t e) {
    for_channel_segments(b, e, n_, [&](std::size_t c, std::size_t i0, std::size_t i1) {
      const Modulus& mod = moduli_[c];
      const u64 s = mod.reduce(scalar);
      for (std::size_t i = i0; i < i1; ++i) {
        channels_[c][i] = mod.mul(channels_[c][i], s);
      }
    });
  });
  return *this;
}

void RnsPoly::drop_channels_to(std::size_t count) {
  if (count == 0 || count > channels_.size()) {
    throw std::invalid_argument("RnsPoly::drop_channels_to: bad count");
  }
  channels_.resize(count);
  moduli_.resize(count);
  moduli_values_.resize(count);
}

RnsPoly RnsPoly::extract_channels(std::size_t first, std::size_t count) const {
  if (first + count > channels_.size()) {
    throw std::invalid_argument("RnsPoly::extract_channels: out of range");
  }
  std::vector<u64> sub(moduli_values_.begin() + first,
                       moduli_values_.begin() + first + count);
  RnsPoly out(n_, std::move(sub), form_);
  for (std::size_t c = 0; c < count; ++c) {
    out.channels_[c] = channels_[first + c];
  }
  return out;
}

void RnsPoly::append_channels(const RnsPoly& other) {
  if (other.n_ != n_ || other.form_ != form_) {
    throw std::invalid_argument("RnsPoly::append_channels: degree/form mismatch");
  }
  for (std::size_t c = 0; c < other.channels_.size(); ++c) {
    moduli_.push_back(other.moduli_[c]);
    moduli_values_.push_back(other.moduli_values_[c]);
    channels_.push_back(other.channels_[c]);
  }
}

RnsPoly RnsPoly::automorphism(u64 galois_elt) const {
  if ((galois_elt & 1) == 0) throw std::invalid_argument("automorphism: element must be odd");
  if (form_ == Form::Ntt) {
    // Round-trip through coefficient form. Functionally exact; the cycle
    // simulator charges the permutation, not this software detour.
    RnsPoly tmp = *this;
    tmp.to_coeff();
    RnsPoly out = tmp.automorphism(galois_elt);
    out.to_ntt();
    return out;
  }
  RnsPoly out(n_, moduli_values_, Form::Coeff);
  const u64 two_n = 2 * static_cast<u64>(n_);
  // Scatter indices hit every output slot of a channel, so the parallel axis
  // is whole channels only.
  parallel_for(channels_.size(), 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t c = b; c < e; ++c) {
      const u64 q = moduli_values_[c];
      for (std::size_t i = 0; i < n_; ++i) {
        const u64 idx = (static_cast<u64>(i) * galois_elt) % two_n;
        const u64 v = channels_[c][i];
        if (idx < n_) {
          out.channels_[c][idx] = add_mod(out.channels_[c][idx], v, q);
        } else {
          out.channels_[c][idx - n_] = sub_mod(out.channels_[c][idx - n_], v, q);
        }
      }
    }
  });
  return out;
}

bool RnsPoly::operator==(const RnsPoly& other) const {
  return n_ == other.n_ && form_ == other.form_ &&
         moduli_values_ == other.moduli_values_ && channels_ == other.channels_;
}

BConv::BConv(std::vector<u64> source_moduli, std::vector<u64> target_moduli)
    : source_(std::move(source_moduli)), target_(std::move(target_moduli)) {
  if (source_.empty() || target_.empty()) {
    throw std::invalid_argument("BConv: empty basis");
  }
  const BigUInt big_q = BigUInt::product(source_);
  qhat_inv_mod_qi_.resize(source_.size());
  qhat_mod_pj_.assign(target_.size(), std::vector<u64>(source_.size()));
  for (std::size_t i = 0; i < source_.size(); ++i) {
    const BigUInt qhat = big_q.div_u64(source_[i], /*require_exact=*/true);
    qhat_inv_mod_qi_[i] = inv_mod(qhat.mod_u64(source_[i]), source_[i]);
    for (std::size_t j = 0; j < target_.size(); ++j) {
      qhat_mod_pj_[j][i] = qhat.mod_u64(target_[j]);
    }
  }
}

RnsPoly BConv::apply(const RnsPoly& x) const {
  if (x.is_ntt()) throw std::invalid_argument("BConv: input must be in coefficient form");
  if (x.moduli() != source_) throw std::invalid_argument("BConv: basis mismatch");
  KernelTimer timer(Kernel::BConv);
  const std::size_t n = x.degree();
  const std::size_t src_count = source_.size();

  // v_i = [x_i * q̂_i^{-1}]_{q_i}, shared across all target channels; each
  // source channel is independent.
  std::vector<std::vector<u64>> v(src_count, std::vector<u64>(n));
  parallel_for(src_count, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      const Modulus& qi = x.channel_modulus(i);
      const std::span<const u64> xi = x.channel(i);
      for (std::size_t k = 0; k < n; ++k) {
        v[i][k] = qi.mul(xi[k], qhat_inv_mod_qi_[i]);
      }
    }
  });

  // The paper's lazy reduction (Table 3): accumulate the L weighted channels
  // in 128-bit and reduce once per output coefficient, instead of reducing
  // every product. Falls back to eager reduction when the 128-bit headroom
  // is insufficient (only possible for very long chains of 62-bit primes).
  // Target channels fan out in parallel; the weighted sum splits its own
  // coefficient range when it runs at top level.
  RnsPoly out(n, target_, RnsPoly::Form::Coeff);
  parallel_for(target_.size(), 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t j = b; j < e; ++j) {
      const Modulus pj(target_[j]);
      weighted_sum_lazy(std::span<const std::vector<u64>>(v),
                        std::span<const u64>(qhat_mod_pj_[j]), pj, out.channel(j));
    }
  });
  return out;
}

RnsPoly modup(const RnsPoly& x, const std::vector<u64>& special_moduli) {
  const BConv conv(x.moduli(), special_moduli);
  RnsPoly out = x;
  out.append_channels(conv.apply(x));
  return out;
}

RnsPoly moddown(const RnsPoly& x, std::size_t num_special) {
  if (x.is_ntt()) throw std::invalid_argument("moddown: input must be in coefficient form");
  if (num_special == 0 || num_special >= x.num_channels()) {
    throw std::invalid_argument("moddown: bad special count");
  }
  const std::size_t num_q = x.num_channels() - num_special;
  const RnsPoly q_part = x.extract_channels(0, num_q);
  const RnsPoly p_part = x.extract_channels(num_q, num_special);

  std::vector<u64> q_moduli(x.moduli().begin(), x.moduli().begin() + num_q);
  std::vector<u64> p_moduli(x.moduli().begin() + num_q, x.moduli().end());

  const BConv conv(p_moduli, q_moduli);
  RnsPoly converted = conv.apply(p_part);

  const BigUInt big_p = BigUInt::product(p_moduli);
  RnsPoly out = q_part;
  parallel_for(num_q, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      const Modulus& qi = out.channel_modulus(i);
      const u64 p_inv = qi.inv(big_p.mod_u64(qi.value()));
      std::span<u64> oi = out.channel(i);
      std::span<const u64> ci = converted.channel(i);
      for (std::size_t k = 0; k < out.degree(); ++k) {
        oi[k] = qi.mul(qi.sub(oi[k], ci[k]), p_inv);
      }
    }
  });
  return out;
}

}  // namespace alchemist
