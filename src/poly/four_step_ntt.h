// Four-step negacyclic NTT — the data-locality algorithm from §5.3 of the
// paper (Alchemist, DAC'24).
//
// An N-point negacyclic transform is computed as: twist by psi^i, then a
// cyclic DFT decomposed into N1 x N2 sub-transforms — N1 row DFTs of size N2,
// a twiddle multiplication, and N2 column DFTs of size N1 — with one global
// transpose between the phases. On the accelerator each computing unit owns
// one slot stripe, runs its sub-NTTs out of its private scratchpad, and the
// only cross-unit traffic is the transpose (through the transpose buffer).
//
// This class is the *functional reference* for that decomposition; the cycle
// simulator (src/sim) charges the corresponding Meta-OPs and transpose traffic
// analytically.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/modarith.h"

namespace alchemist {

class FourStepNtt {
 public:
  // q prime with q ≡ 1 (mod 2N); N a power of two >= 4.
  FourStepNtt(u64 q, std::size_t n);

  std::size_t size() const { return n_; }
  std::size_t n1() const { return n1_; }  // column-transform size
  std::size_t n2() const { return n2_; }  // row-transform size

  // Natural-order negacyclic DFT: out[k] = sum_i a[i] * psi^(i*(2k+1)).
  void forward(std::span<u64> a) const;
  // Exact inverse of forward().
  void inverse(std::span<u64> a) const;

  // Number of independent sub-NTTs per phase — what the paper's "128 sub-NTTs
  // of 128 points" statement counts for N = 16384.
  std::size_t sub_ntts_phase1() const { return n1_; }
  std::size_t sub_ntts_phase2() const { return n2_; }

 private:
  void cyclic_ntt(std::span<u64> a, bool invert) const;

  Modulus mod_;
  std::size_t n_ = 0, n1_ = 0, n2_ = 0;
  u64 psi_ = 0, psi_inv_ = 0;
  u64 omega_ = 0, omega_inv_ = 0;  // psi^2, order-N cyclic root
  std::vector<u64> twist_;         // psi^i
  std::vector<u64> untwist_;       // psi^{-i} / N folded in
};

}  // namespace alchemist
