// Four-step negacyclic NTT — the data-locality algorithm from §5.3 of the
// paper (Alchemist, DAC'24).
//
// An N-point negacyclic transform is computed as: twist by psi^i, then a
// cyclic DFT decomposed into N1 x N2 sub-transforms — N1 row DFTs of size N2,
// a twiddle multiplication, and N2 column DFTs of size N1 — with one global
// transpose between the phases. On the accelerator each computing unit owns
// one slot stripe, runs its sub-NTTs out of its private scratchpad, and the
// only cross-unit traffic is the transpose (through the transpose buffer).
//
// This class is the *functional reference* for that decomposition; the cycle
// simulator (src/sim) charges the corresponding Meta-OPs and transpose traffic
// analytically. The implementation is cache-blocked: both global transposes
// run as kTile x kTile tiles (one tile pair fits L1), the twist / mid-twiddle
// / untwist multiplies are fused into the tile and row sweeps as precomputed
// Shoup multiplications, and the sub-DFTs walk contiguous rows with Harvey
// lazy butterflies. Scratch lives in a reusable Workspace — thread_local by
// default, or caller-provided for pooled reuse — so repeated transforms do
// not allocate.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/modarith.h"

namespace alchemist {

class FourStepNtt {
 public:
  // Transpose tile edge: 32x32 u64 tiles = 8 KiB source + destination
  // footprint, comfortably inside a 32 KiB L1D even with twiddle tables
  // streaming alongside.
  static constexpr std::size_t kTile = 32;

  // Reusable scratch for one transform: two N-word buffers (ping-pong across
  // the transpose phases). Not thread-safe to share; the no-Workspace entry
  // points use a thread_local instance instead.
  struct Workspace {
    std::vector<u64> buf_a, buf_b;
  };

  // q prime with q ≡ 1 (mod 2N); N a power of two >= 4.
  FourStepNtt(u64 q, std::size_t n);

  std::size_t size() const { return n_; }
  std::size_t n1() const { return n1_; }  // column-transform size
  std::size_t n2() const { return n2_; }  // row-transform size

  // Natural-order negacyclic DFT: out[k] = sum_i a[i] * psi^(i*(2k+1)).
  void forward(std::span<u64> a) const;
  // Exact inverse of forward().
  void inverse(std::span<u64> a) const;

  // Same transforms with caller-owned scratch (no thread_local, no
  // allocation after first use of `ws`).
  void forward(std::span<u64> a, Workspace& ws) const;
  void inverse(std::span<u64> a, Workspace& ws) const;

  // Number of independent sub-NTTs per phase — what the paper's "128 sub-NTTs
  // of 128 points" statement counts for N = 16384.
  std::size_t sub_ntts_phase1() const { return n1_; }
  std::size_t sub_ntts_phase2() const { return n2_; }

 private:
  // Shoup pairs for an elementwise multiply fused into a sweep.
  struct MulPlan {
    std::vector<u64> op, quot;
  };

  // Per-stage Shoup twiddle plan for an m-point natural-order cyclic DFT:
  // tw[len/2 + j] = (w^{m/len})^j for each stage len, so the whole schedule
  // flattens into one pair of m-word arrays (index 0 unused).
  struct DftPlan {
    std::size_t m = 0;
    int log_m = 0;
    MulPlan tw;
  };

  void build_plans();
  void cyclic_ntt(std::span<u64> a, bool invert, Workspace& ws) const;

  Modulus mod_;
  std::size_t n_ = 0, n1_ = 0, n2_ = 0;
  u64 psi_ = 0, psi_inv_ = 0;
  u64 omega_ = 0, omega_inv_ = 0;  // psi^2, order-N cyclic root

  MulPlan twist_;       // psi^i, fused into the first transpose
  MulPlan untwist_;     // psi^{-i} * N^{-1}, fused into the last transpose
  MulPlan mid_fwd_;     // omega^{i1*k2}, fused into the row-DFT sweep
  MulPlan mid_inv_;     // omega^{-i1*k2}
  DftPlan row_fwd_, row_inv_;  // n2-point sub-DFT schedules
  DftPlan col_fwd_, col_inv_;  // n1-point sub-DFT schedules
};

}  // namespace alchemist
