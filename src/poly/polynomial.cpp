#include "poly/polynomial.h"

#include <stdexcept>

#include "poly/ntt.h"

namespace alchemist {

Polynomial::Polynomial(std::size_t n, u64 q) : coeffs_(n, 0), mod_(q) {
  if (!is_power_of_two(n)) throw std::invalid_argument("Polynomial: N must be a power of two");
}

Polynomial::Polynomial(std::vector<u64> coeffs, u64 q)
    : coeffs_(std::move(coeffs)), mod_(q) {
  if (!is_power_of_two(coeffs_.size())) {
    throw std::invalid_argument("Polynomial: N must be a power of two");
  }
  for (u64& c : coeffs_) c %= q;
}

Polynomial& Polynomial::operator+=(const Polynomial& other) {
  if (other.degree() != degree() || other.modulus() != modulus()) {
    throw std::invalid_argument("Polynomial::+=: ring mismatch");
  }
  for (std::size_t i = 0; i < coeffs_.size(); ++i) {
    coeffs_[i] = mod_.add(coeffs_[i], other.coeffs_[i]);
  }
  return *this;
}

Polynomial& Polynomial::operator-=(const Polynomial& other) {
  if (other.degree() != degree() || other.modulus() != modulus()) {
    throw std::invalid_argument("Polynomial::-=: ring mismatch");
  }
  for (std::size_t i = 0; i < coeffs_.size(); ++i) {
    coeffs_[i] = mod_.sub(coeffs_[i], other.coeffs_[i]);
  }
  return *this;
}

Polynomial& Polynomial::negate() {
  for (u64& c : coeffs_) c = mod_.neg(c);
  return *this;
}

Polynomial& Polynomial::mul_scalar(u64 scalar) {
  for (u64& c : coeffs_) c = mod_.mul(c, scalar);
  return *this;
}

Polynomial Polynomial::operator*(const Polynomial& other) const {
  if (other.degree() != degree() || other.modulus() != modulus()) {
    throw std::invalid_argument("Polynomial::*: ring mismatch");
  }
  const NttTable& table = get_ntt_table(modulus(), degree());
  std::vector<u64> a = coeffs_;
  std::vector<u64> b = other.coeffs_;
  table.forward(a);
  table.forward(b);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = mod_.mul(a[i], b[i]);
  table.inverse(a);
  Polynomial result;
  result.coeffs_ = std::move(a);
  result.mod_ = mod_;
  return result;
}

Polynomial Polynomial::mul_schoolbook(const Polynomial& other) const {
  if (other.degree() != degree() || other.modulus() != modulus()) {
    throw std::invalid_argument("Polynomial::mul_schoolbook: ring mismatch");
  }
  const std::size_t n = degree();
  Polynomial result(n, modulus());
  for (std::size_t i = 0; i < n; ++i) {
    if (coeffs_[i] == 0) continue;
    for (std::size_t j = 0; j < n; ++j) {
      const u64 prod = mod_.mul(coeffs_[i], other.coeffs_[j]);
      const std::size_t k = i + j;
      if (k < n) {
        result.coeffs_[k] = mod_.add(result.coeffs_[k], prod);
      } else {
        result.coeffs_[k - n] = mod_.sub(result.coeffs_[k - n], prod);
      }
    }
  }
  return result;
}

Polynomial Polynomial::automorphism(u64 galois_elt) const {
  const std::size_t n = degree();
  if ((galois_elt & 1) == 0) throw std::invalid_argument("automorphism: element must be odd");
  Polynomial result(n, modulus());
  const u64 two_n = 2 * static_cast<u64>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const u64 idx = (static_cast<u64>(i) * galois_elt) % two_n;
    if (idx < n) {
      result.coeffs_[idx] = mod_.add(result.coeffs_[idx], coeffs_[i]);
    } else {
      result.coeffs_[idx - n] = mod_.sub(result.coeffs_[idx - n], coeffs_[i]);
    }
  }
  return result;
}

}  // namespace alchemist
