// Negacyclic number-theoretic transform over Z_q[X]/(X^N + 1).
//
// Forward transform: Cooley-Tukey (decimation in time), natural input order,
// bit-reversed output order. Inverse: Gentleman-Sande, bit-reversed input,
// natural output (Longa-Naehrig formulation). Pointwise operations in the NTT
// domain are order-agnostic as long as both operands use the same transform.
//
// The production butterflies are Harvey-style *lazy*: values live in [0, 4q)
// through the forward stages (the inverse keeps [0, 2q)) and are reduced to
// canonical [0, q) once at the end — the software analogue of the paper's
// (M_j A_j)_n R_j deferral, which replaces one conditional correction per
// butterfly with one per coefficient per transform. 4q < 2^64 holds for every
// Modulus (q <= kMaxModulus < 2^62). The *_eager variants keep the classical
// reduce-every-butterfly dataflow as the bit-identical reference for tests
// and the eager-vs-lazy microbenchmarks.
//
// Twiddle factors are applied with Shoup multiplication (precomputed
// quotients), which is why tables are built once per (q, N) pair and cached.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "common/modarith.h"
#include "common/simd.h"

namespace alchemist {

class NttTable {
 public:
  // q must be prime with q ≡ 1 (mod 2N); N a power of two.
  NttTable(u64 q, std::size_t n);

  u64 modulus() const { return mod_.value(); }
  const Modulus& mod() const { return mod_; }
  std::size_t size() const { return n_; }
  // The primitive 2N-th root of unity used by this table.
  u64 psi() const { return psi_; }

  // In-place forward negacyclic NTT: natural order in, bit-reversed out.
  // Input coefficients must be in [0, q); output is canonical [0, q).
  // Dispatches to the best runtime-selected SIMD variant (common/simd.h);
  // all variants are bit-identical to the scalar lazy reference.
  void forward(std::span<u64> a) const;
  // In-place inverse negacyclic NTT: bit-reversed in, natural order out.
  void inverse(std::span<u64> a) const;

  // Forced-ISA variants for tests and per-ISA benchmarks. Throw
  // std::invalid_argument if `isa` is not compiled in / not CPU-supported.
  void forward(std::span<u64> a, simd::Isa isa) const;
  void inverse(std::span<u64> a, simd::Isa isa) const;

  // Classical eagerly-reduced butterflies (pre-lazy dataflow). Bit-identical
  // outputs to forward()/inverse(); roughly one extra conditional subtraction
  // per butterfly. Reference implementation for equivalence tests and the
  // eager-vs-lazy ablation bench.
  void forward_eager(std::span<u64> a) const;
  void inverse_eager(std::span<u64> a) const;

 private:
  simd::NttTables fwd_view() const {
    return {w_op_.data(), w_quot_.data(), mod_.value(), n_};
  }
  simd::NttTables inv_view() const {
    return {inv_w_op_.data(), inv_w_quot_.data(), mod_.value(), n_};
  }

  Modulus mod_;
  std::size_t n_ = 0;
  int log_n_ = 0;
  u64 psi_ = 0;
  std::vector<MulModShoup> root_powers_;      // psi^brev(i)
  std::vector<MulModShoup> inv_root_powers_;  // psi^{-brev(i)}
  // SoA mirrors of the Shoup pairs above: the SIMD kernels read operands and
  // quotients from separate contiguous arrays so lanes load with one vector
  // fetch each instead of a strided gather over MulModShoup structs.
  std::vector<u64> w_op_, w_quot_;
  std::vector<u64> inv_w_op_, inv_w_quot_;
  MulModShoup n_inv_;
};

// Process-wide cache of NTT tables keyed by (q, N). Table construction costs
// O(N) modular exponentiations; every RnsPoly channel shares one table.
// Thread-safe: concurrent lookups take a shared lock, first-time construction
// an exclusive one, so pool workers and svc jobs may race freely.
const NttTable& get_ntt_table(u64 q, std::size_t n);

// Bit reversal of the low `bits` bits of x.
constexpr std::size_t bit_reverse(std::size_t x, int bits) {
  std::size_t r = 0;
  for (int i = 0; i < bits; ++i) {
    r = (r << 1) | (x & 1);
    x >>= 1;
  }
  return r;
}

}  // namespace alchemist
