// Residue number system (RNS) polynomials and base conversion.
//
// Arithmetic FHE splits a big-modulus polynomial ring R_Q (Q hundreds to
// thousands of bits) into parallel channels modulo word-sized primes q_i.
// This file provides:
//   * RnsPoly      — a polynomial held as per-channel residue vectors, with a
//                    coefficient/NTT form flag;
//   * BConv        — fast RNS basis conversion (Eq. 1 of the paper);
//   * modup        — extend [x]_Q to [x]_{Q·P} (Eq. 2);
//   * moddown      — divide-and-round back from Q·P to Q (Eq. 3).
//
// The Bconv here is the standard fast (HPS-style) conversion without the
// gamma-correction: the output can carry a small multiple of Q. CKKS absorbs
// that as keyswitching noise, which is exactly how the accelerator treats it.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/modarith.h"

namespace alchemist {

class RnsPoly {
 public:
  enum class Form { Coeff, Ntt };

  RnsPoly() = default;
  RnsPoly(std::size_t n, std::vector<u64> moduli, Form form = Form::Coeff);

  std::size_t degree() const { return n_; }
  std::size_t num_channels() const { return channels_.size(); }
  Form form() const { return form_; }
  bool is_ntt() const { return form_ == Form::Ntt; }

  const std::vector<u64>& moduli() const { return moduli_values_; }
  const Modulus& channel_modulus(std::size_t i) const { return moduli_[i]; }
  std::span<u64> channel(std::size_t i) { return channels_[i]; }
  std::span<const u64> channel(std::size_t i) const { return channels_[i]; }

  // Form conversions run one (inverse) NTT per channel.
  void to_ntt();
  void to_coeff();

  // Elementwise ring arithmetic. Operands must share degree, basis and form;
  // multiplication additionally requires NTT form.
  RnsPoly& operator+=(const RnsPoly& other);
  RnsPoly& operator-=(const RnsPoly& other);
  RnsPoly& operator*=(const RnsPoly& other);
  friend RnsPoly operator+(RnsPoly a, const RnsPoly& b) { return a += b; }
  friend RnsPoly operator-(RnsPoly a, const RnsPoly& b) { return a -= b; }
  friend RnsPoly operator*(RnsPoly a, const RnsPoly& b) { return a *= b; }
  RnsPoly& negate();

  // Multiply channel i by scalar[i] (one scalar per channel).
  RnsPoly& mul_scalar(std::span<const u64> scalar_per_channel);
  // Multiply every channel by the same small integer (reduced per channel).
  RnsPoly& mul_scalar(u64 scalar);

  // Keep only the first `count` channels (level drop / rescale tail).
  void drop_channels_to(std::size_t count);
  // Extract a sub-poly holding channels [first, first+count).
  RnsPoly extract_channels(std::size_t first, std::size_t count) const;
  // Append the channels of `other` (same degree and form).
  void append_channels(const RnsPoly& other);

  // Galois automorphism X -> X^g. Valid in both forms: coefficient form uses
  // index folding, NTT form uses the standard odd-power permutation.
  RnsPoly automorphism(u64 galois_elt) const;

  bool operator==(const RnsPoly& other) const;

 private:
  void check_compatible(const RnsPoly& other, const char* op) const;

  std::size_t n_ = 0;
  Form form_ = Form::Coeff;
  std::vector<Modulus> moduli_;
  std::vector<u64> moduli_values_;
  std::vector<std::vector<u64>> channels_;
};

// Fast RNS base conversion from a source basis to a target basis (Eq. 1):
//   [x]_{p_j} ≈ sum_i [[x]_{q_i} · q̂_i^{-1}]_{q_i} · q̂_i  (mod p_j)
// where q̂_i = (prod_k q_k) / q_i. Output may exceed the exact value by a
// small multiple of Q (fast conversion, no correction).
class BConv {
 public:
  BConv(std::vector<u64> source_moduli, std::vector<u64> target_moduli);

  const std::vector<u64>& source() const { return source_; }
  const std::vector<u64>& target() const { return target_; }

  // x must be in coefficient form over exactly the source basis.
  RnsPoly apply(const RnsPoly& x) const;

 private:
  std::vector<u64> source_;
  std::vector<u64> target_;
  std::vector<u64> qhat_inv_mod_qi_;          // [L]
  std::vector<std::vector<u64>> qhat_mod_pj_;  // [K][L]
};

// Eq. 2: extend [x]_Q (coeff form) with the channels [x]_{p_j}, j in [0, K).
// Returns a poly over basis Q ∪ P.
RnsPoly modup(const RnsPoly& x, const std::vector<u64>& special_moduli);

// Eq. 3: given [x]_{Q·P} (coeff form, with the K special channels last),
// return ([x] - Bconv([x]_P)) · P^{-1} over Q — i.e. round(x / P) up to the
// fast-conversion error.
RnsPoly moddown(const RnsPoly& x, std::size_t num_special);

}  // namespace alchemist
