#include "poly/lazy_kernels.h"

#include <algorithm>
#include <stdexcept>

#include "common/simd.h"
#include "common/thread_pool.h"

namespace alchemist {

namespace {

int bit_width_u64(u64 x) {
  return x == 0 ? 0 : 64 - __builtin_clzll(x);
}

}  // namespace

bool lazy_accumulation_fits(std::size_t terms, int bits_a, int bits_b) {
  if (terms == 0) return true;
  int log_terms = 0;
  while ((std::size_t{1} << log_terms) < terms) ++log_terms;
  return bits_a + bits_b + log_terms <= 127;
}

u64 dot_mod_eager(std::span<const u64> a, std::span<const u64> b, const Modulus& mod) {
  if (a.size() != b.size()) throw std::invalid_argument("dot_mod: size mismatch");
  u64 acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc = mod.add(acc, mod.mul(a[i], b[i]));  // reduce every term
  }
  return acc;
}

u64 dot_mod_lazy(std::span<const u64> a, std::span<const u64> b, const Modulus& mod) {
  if (a.size() != b.size()) throw std::invalid_argument("dot_mod: size mismatch");
  if (!lazy_accumulation_fits(a.size(), bit_width_u64(mod.value()),
                              bit_width_u64(mod.value()))) {
    // Headroom exhausted: fall back to block-wise accumulation. Each block's
    // exact 128-bit sum fits by construction, so the vectorized accumulator
    // still applies per block.
    u64 acc = 0;
    const std::size_t block = std::size_t{1} << (127 - 2 * bit_width_u64(mod.value()));
    for (std::size_t start = 0; start < a.size(); start += block) {
      const std::size_t end = std::min(a.size(), start + block);
      u64 hi = 0, lo = 0;
      simd::dot_accumulate(a.data() + start, b.data() + start, end - start, hi, lo);
      acc = mod.add(acc, mod.reduce((u128{hi} << 64) | lo));
    }
    return acc;
  }
  u64 hi = 0, lo = 0;
  simd::dot_accumulate(a.data(), b.data(), a.size(), hi, lo);
  return mod.reduce((u128{hi} << 64) | lo);  // one reduction for the whole sum
}

// Output coefficients are independent, so both variants split the k-range
// over the pool (each chunk owns a disjoint slice of `out`). Calls arriving
// from an already-parallel caller — e.g. BConv's target-channel fan-out —
// run inline on that worker.
void weighted_sum_eager(std::span<const std::vector<u64>> x, std::span<const u64> w,
                        const Modulus& mod, std::span<u64> out) {
  if (x.size() != w.size()) throw std::invalid_argument("weighted_sum: size mismatch");
  KernelTimer timer(Kernel::WeightedSum);
  parallel_for(out.size(), 4096, [&](std::size_t kb, std::size_t ke) {
    for (std::size_t k = kb; k < ke; ++k) out[k] = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      for (std::size_t k = kb; k < ke; ++k) {
        out[k] = mod.add(out[k], mod.mul(w[i], x[i][k]));
      }
    }
  });
}

void weighted_sum_lazy(std::span<const std::vector<u64>> x, std::span<const u64> w,
                       const Modulus& mod, std::span<u64> out) {
  if (x.size() != w.size()) throw std::invalid_argument("weighted_sum: size mismatch");
  const int qbits = bit_width_u64(mod.value());
  if (!lazy_accumulation_fits(x.size(), qbits, qbits)) {
    weighted_sum_eager(x, w, mod, out);
    return;
  }
  KernelTimer timer(Kernel::WeightedSum);
  // One dispatch per kernel call; the inner per-block accumulations reuse the
  // same resolved ISA without re-counting.
  simd::note_dispatch(simd::Kern::WeightedSum, simd::active_isa());
  parallel_for(out.size(), 4096, [&](std::size_t kb, std::size_t ke) {
    // Blocked SoA accumulators: for each block of coefficients, fold every
    // input channel in with the vectorized 128-bit accumulator, then reduce.
    // The i-over-k loop order turns the per-coefficient channel walk into
    // contiguous streaming loads of x[i].
    constexpr std::size_t kBlock = 512;
    u64 acc_lo[kBlock], acc_hi[kBlock];
    for (std::size_t b = kb; b < ke; b += kBlock) {
      const std::size_t len = std::min(kBlock, ke - b);
      std::fill_n(acc_lo, len, u64{0});
      std::fill_n(acc_hi, len, u64{0});
      for (std::size_t i = 0; i < x.size(); ++i) {
        simd::weighted_accumulate(x[i].data() + b, w[i], len, acc_lo, acc_hi);
      }
      for (std::size_t k = 0; k < len; ++k) {
        out[b + k] = mod.reduce((u128{acc_hi[k]} << 64) | acc_lo[k]);
      }
    }
  });
}

}  // namespace alchemist
