// Dense polynomial over a single prime modulus in R_q = Z_q[X]/(X^N + 1).
//
// This is the single-channel building block: TFHE's TRLWE rings and test
// references use it directly; CKKS works with the multi-channel RnsPoly.
#pragma once

#include <cstddef>
#include <vector>

#include "common/modarith.h"

namespace alchemist {

class Polynomial {
 public:
  Polynomial() = default;
  Polynomial(std::size_t n, u64 q);
  Polynomial(std::vector<u64> coeffs, u64 q);

  std::size_t degree() const { return coeffs_.size(); }
  u64 modulus() const { return mod_.value(); }
  const Modulus& mod() const { return mod_; }

  u64& operator[](std::size_t i) { return coeffs_[i]; }
  u64 operator[](std::size_t i) const { return coeffs_[i]; }
  const std::vector<u64>& coeffs() const { return coeffs_; }
  std::vector<u64>& coeffs() { return coeffs_; }

  Polynomial& operator+=(const Polynomial& other);
  Polynomial& operator-=(const Polynomial& other);
  Polynomial& negate();
  Polynomial& mul_scalar(u64 scalar);

  friend Polynomial operator+(Polynomial a, const Polynomial& b) { return a += b; }
  friend Polynomial operator-(Polynomial a, const Polynomial& b) { return a -= b; }

  // Negacyclic product via NTT (O(N log N)).
  Polynomial operator*(const Polynomial& other) const;

  // Negacyclic product by schoolbook convolution (O(N^2)) — the ground-truth
  // reference used by tests.
  Polynomial mul_schoolbook(const Polynomial& other) const;

  // X^i -> X^(i*g mod 2N) with sign folding — the Galois automorphism used by
  // CKKS rotations. g must be odd.
  Polynomial automorphism(u64 galois_elt) const;

  bool operator==(const Polynomial& other) const = default;

 private:
  std::vector<u64> coeffs_;
  Modulus mod_;
};

}  // namespace alchemist
