#include "poly/ntt.h"

#include <map>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>

#include "common/primes.h"

namespace alchemist {

namespace {

int log2_exact(std::size_t n) {
  int log = 0;
  while ((std::size_t{1} << log) < n) ++log;
  if ((std::size_t{1} << log) != n) throw std::invalid_argument("NTT size must be a power of two");
  return log;
}

}  // namespace

NttTable::NttTable(u64 q, std::size_t n)
    : mod_(q), n_(n), log_n_(log2_exact(n)), n_inv_() {
  psi_ = primitive_root_2n(q, n);
  const u64 psi_inv = inv_mod(psi_, q);

  root_powers_.resize(n);
  inv_root_powers_.resize(n);
  w_op_.resize(n);
  w_quot_.resize(n);
  inv_w_op_.resize(n);
  inv_w_quot_.resize(n);
  u64 power = 1;
  u64 inv_power = 1;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t rev = bit_reverse(i, log_n_);
    root_powers_[rev] = MulModShoup(power, q);
    inv_root_powers_[rev] = MulModShoup(inv_power, q);
    w_op_[rev] = root_powers_[rev].operand();
    w_quot_[rev] = root_powers_[rev].quotient();
    inv_w_op_[rev] = inv_root_powers_[rev].operand();
    inv_w_quot_[rev] = inv_root_powers_[rev].quotient();
    power = mul_mod(power, psi_, q);
    inv_power = mul_mod(inv_power, psi_inv, q);
  }
  n_inv_ = MulModShoup(inv_mod(static_cast<u64>(n), q), q);
}

void NttTable::forward(std::span<u64> a) const {
  if (a.size() != n_) throw std::invalid_argument("NttTable::forward: size mismatch");
  // Harvey lazy butterflies: values live in [0, 4q) through the stages with
  // one canonicalizing pass at the end. The kernel itself lives in
  // common/simd.* (scalar / AVX2 / AVX-512, runtime-dispatched,
  // bit-identical); this wrapper only validates and hands over the SoA view.
  simd::ntt_forward_lazy(fwd_view(), a.data());
}

void NttTable::inverse(std::span<u64> a) const {
  if (a.size() != n_) throw std::invalid_argument("NttTable::inverse: size mismatch");
  // Gentleman-Sande with lazy values in [0, 2q); the final N^{-1} Shoup
  // multiply canonicalizes to [0, q). Kernel dispatched via common/simd.*.
  simd::ntt_inverse_lazy(inv_view(), a.data(), n_inv_.operand(), n_inv_.quotient());
}

void NttTable::forward(std::span<u64> a, simd::Isa isa) const {
  if (a.size() != n_) throw std::invalid_argument("NttTable::forward: size mismatch");
  simd::ntt_forward_lazy(fwd_view(), a.data(), isa);
}

void NttTable::inverse(std::span<u64> a, simd::Isa isa) const {
  if (a.size() != n_) throw std::invalid_argument("NttTable::inverse: size mismatch");
  simd::ntt_inverse_lazy(inv_view(), a.data(), n_inv_.operand(), n_inv_.quotient(), isa);
}

void NttTable::forward_eager(std::span<u64> a) const {
  if (a.size() != n_) throw std::invalid_argument("NttTable::forward: size mismatch");
  const u64 q = mod_.value();
  std::size_t t = n_;
  for (std::size_t m = 1; m < n_; m <<= 1) {
    t >>= 1;
    for (std::size_t i = 0; i < m; ++i) {
      const std::size_t j1 = 2 * i * t;
      const MulModShoup& s = root_powers_[m + i];
      for (std::size_t j = j1; j < j1 + t; ++j) {
        const u64 u = a[j];
        const u64 v = s.mul(a[j + t]);
        a[j] = add_mod(u, v, q);
        a[j + t] = sub_mod(u, v, q);
      }
    }
  }
}

void NttTable::inverse_eager(std::span<u64> a) const {
  if (a.size() != n_) throw std::invalid_argument("NttTable::inverse: size mismatch");
  const u64 q = mod_.value();
  std::size_t t = 1;
  for (std::size_t m = n_; m > 1; m >>= 1) {
    const std::size_t h = m >> 1;
    std::size_t j1 = 0;
    for (std::size_t i = 0; i < h; ++i) {
      const MulModShoup& s = inv_root_powers_[h + i];
      for (std::size_t j = j1; j < j1 + t; ++j) {
        const u64 u = a[j];
        const u64 v = a[j + t];
        a[j] = add_mod(u, v, q);
        a[j + t] = s.mul(sub_mod(u, v, q));
      }
      j1 += 2 * t;
    }
    t <<= 1;
  }
  for (u64& x : a) x = n_inv_.mul(x);
}

const NttTable& get_ntt_table(u64 q, std::size_t n) {
  // Reachable from concurrent pool workers and svc::JobRunner jobs: reads
  // take a shared lock; a cache miss builds the table outside any lock (O(N)
  // modular exponentiations) and inserts under the exclusive lock, where a
  // losing racer simply adopts the winner's table. std::map nodes are stable,
  // so returned references survive later insertions.
  static std::shared_mutex mu;
  static std::map<std::pair<u64, std::size_t>, std::unique_ptr<NttTable>> cache;
  const auto key = std::make_pair(q, n);
  {
    std::shared_lock<std::shared_mutex> rlk(mu);
    const auto it = cache.find(key);
    if (it != cache.end()) return *it->second;
  }
  auto table = std::make_unique<NttTable>(q, n);
  std::unique_lock<std::shared_mutex> wlk(mu);
  const auto [it, inserted] = cache.emplace(key, std::move(table));
  return *it->second;
}

}  // namespace alchemist
