// Published characteristics of prior FHE accelerators (Table 6) and the
// functional-unit mixes used by the baseline simulators.
//
// Numbers are taken from the respective papers as quoted by the Alchemist
// paper; they parameterize the modularized-baseline model in src/sim so that
// the utilization comparison (Fig. 1, Fig. 7b) emerges from the same workload
// graphs the Alchemist simulator runs.
#pragma once

#include <string>
#include <vector>

namespace alchemist::arch {

struct AcceleratorSpec {
  std::string name;
  bool arithmetic_fhe = false;  // AC column
  bool logic_fhe = false;       // LC column
  double offchip_bw_gb_s = 0;
  double onchip_mem_mb = 0;
  double onchip_bw_tb_s = 0;    // 0 = not reported
  double freq_ghz = 0;
  double area_mm2 = 0;          // native node
  double area_14nm_mm2 = 0;     // 14nm-scaled
  // Modular FU mix: fraction of compute throughput hard-wired per class
  // {NTT, Bconv, DecompPolyMult/elementwise-MAC}; unified designs use {0,0,0}
  // to mean "fully fungible".
  double fu_ntt_frac = 0;
  double fu_bconv_frac = 0;
  double fu_mac_frac = 0;
  // Peak modular multiplications per cycle (model calibration).
  double peak_mults_per_cycle = 0;
};

// Table 6 rows.
std::vector<AcceleratorSpec> table6_specs();

// Lookup by name ("Matcha", "Strix", "CraterLake", "SHARP", "Alchemist").
AcceleratorSpec spec_by_name(const std::string& name);

}  // namespace alchemist::arch
