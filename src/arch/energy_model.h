// Energy model: converts simulated activity into joules.
//
// Calibrated against the paper's published 77.9 W average at the 181 mm²
// reference design running at ~0.86 utilization: the dynamic share scales
// with delivered lane-cycles, the static share with area and wall time.
#pragma once

#include "arch/config.h"
#include "sim/result.h"

namespace alchemist::arch {

struct EnergyBreakdown {
  double dynamic_joules = 0;  // compute + on-chip data movement
  double hbm_joules = 0;      // off-chip traffic
  double static_joules = 0;   // leakage + clocking, proportional to area*time
  double total_joules = 0;
  double average_watts = 0;
};

// Fraction of the reference average power that is activity-proportional.
inline constexpr double kDynamicShare = 0.7;
// HBM energy per byte (typical HBM2: ~4 pJ/bit).
inline constexpr double kHbmPicojoulesPerByte = 32.0;

EnergyBreakdown energy_model(const ArchConfig& config, const sim::SimResult& result);

}  // namespace alchemist::arch
