// Slot-based data layout model (§5.3, Fig. 5b).
//
// Polynomial slots are striped across the computing units: unit u owns slots
// [u*N/U, (u+1)*N/U) of *every* channel of *every* dnum group. This module
// checks, per Meta-OP access pattern (Table 4), which unit each operand of an
// access lives in — quantifying the paper's claim that DecompPolyMult and
// Modup/Moddown touch only unit-private data, and that the 4-step NTT's only
// cross-unit traffic is the matrix transpose between its two phases.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "arch/config.h"
#include "metaop/metaop.h"

namespace alchemist::arch {

class SlotLayout {
 public:
  // N slots striped over `units` computing units (N divisible by units).
  SlotLayout(std::size_t n, std::size_t units);

  std::size_t slots_per_unit() const { return n_ / units_; }
  // The unit owning a slot (any channel, any dnum group — the stripe is the
  // same for all of them by construction).
  std::size_t unit_of_slot(std::size_t slot) const { return slot / slots_per_unit(); }

  // Access-pattern audits: each returns the number of operand fetches that
  // would cross a unit boundary.
  //
  // Channel pattern (Bconv/Modup/Moddown): output channel slot k gathers the
  // same slot k from L input channels.
  std::uint64_t cross_unit_accesses_channel(std::size_t l_channels) const;
  // Dnum-group pattern (DecompPolyMult): slot k accumulates slot k of every
  // decomposition group and the matching evk slots.
  std::uint64_t cross_unit_accesses_dnum(std::size_t dnum) const;
  // Slots pattern, classical single-pass NTT: butterfly partners are slot
  // pairs at stride 2^s — most strides cross units.
  std::uint64_t cross_unit_accesses_classic_ntt() const;
  // Slots pattern, 4-step NTT: sub-NTTs are unit-local; the only cross-unit
  // movement is the transpose (counted in words).
  std::uint64_t cross_unit_accesses_four_step_ntt() const;
  std::uint64_t four_step_transpose_words() const;

 private:
  std::size_t n_;
  std::size_t units_;
};

// Slot striping after permanent unit failures: the N slots of every channel
// are re-partitioned over the surviving units only. Because N is generally
// not divisible by the healthy count, the stripe rounds up to
// ceil(N / healthy) slots per unit and the last unit's stripe is padded —
// the padding is dead lanes the degraded machine still has to clock through,
// quantified by padding_factor().
class DegradedSlotLayout {
 public:
  // N slots over `total_units` physical units of which `masked_units` (ids in
  // [0, total_units), duplicates ignored) have permanently failed. Throws
  // std::invalid_argument if no healthy unit remains or an id is out of range.
  DegradedSlotLayout(std::size_t n, std::size_t total_units,
                     const std::vector<std::size_t>& masked_units);

  std::size_t total_units() const { return total_units_; }
  std::size_t healthy_units() const { return healthy_.size(); }
  std::size_t masked_units() const { return total_units_ - healthy_.size(); }
  bool is_healthy(std::size_t unit) const;

  // Stripe geometry of the degraded layout: total slots the machine clocks
  // through (real + dead padding), always >= N.
  std::size_t slots_per_unit() const { return slots_per_unit_; }
  std::size_t padded_slots() const { return slots_per_unit_ * healthy_.size(); }
  // (real + padded slots) / real slots >= 1: the work inflation every
  // slot-partitioned operator pays on the degraded geometry.
  double padding_factor() const;

  // Physical id of the healthy unit owning `slot` (slot < N).
  std::size_t unit_of_slot(std::size_t slot) const;

 private:
  std::size_t n_;
  std::size_t total_units_;
  std::size_t slots_per_unit_;
  std::vector<std::size_t> healthy_;  // sorted physical ids
};

}  // namespace alchemist::arch
