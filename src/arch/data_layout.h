// Slot-based data layout model (§5.3, Fig. 5b).
//
// Polynomial slots are striped across the computing units: unit u owns slots
// [u*N/U, (u+1)*N/U) of *every* channel of *every* dnum group. This module
// checks, per Meta-OP access pattern (Table 4), which unit each operand of an
// access lives in — quantifying the paper's claim that DecompPolyMult and
// Modup/Moddown touch only unit-private data, and that the 4-step NTT's only
// cross-unit traffic is the matrix transpose between its two phases.
#pragma once

#include <cstddef>
#include <cstdint>

#include "arch/config.h"
#include "metaop/metaop.h"

namespace alchemist::arch {

class SlotLayout {
 public:
  // N slots striped over `units` computing units (N divisible by units).
  SlotLayout(std::size_t n, std::size_t units);

  std::size_t slots_per_unit() const { return n_ / units_; }
  // The unit owning a slot (any channel, any dnum group — the stripe is the
  // same for all of them by construction).
  std::size_t unit_of_slot(std::size_t slot) const { return slot / slots_per_unit(); }

  // Access-pattern audits: each returns the number of operand fetches that
  // would cross a unit boundary.
  //
  // Channel pattern (Bconv/Modup/Moddown): output channel slot k gathers the
  // same slot k from L input channels.
  std::uint64_t cross_unit_accesses_channel(std::size_t l_channels) const;
  // Dnum-group pattern (DecompPolyMult): slot k accumulates slot k of every
  // decomposition group and the matching evk slots.
  std::uint64_t cross_unit_accesses_dnum(std::size_t dnum) const;
  // Slots pattern, classical single-pass NTT: butterfly partners are slot
  // pairs at stride 2^s — most strides cross units.
  std::uint64_t cross_unit_accesses_classic_ntt() const;
  // Slots pattern, 4-step NTT: sub-NTTs are unit-local; the only cross-unit
  // movement is the transpose (counted in words).
  std::uint64_t cross_unit_accesses_four_step_ntt() const;
  std::uint64_t four_step_transpose_words() const;

 private:
  std::size_t n_;
  std::size_t units_;
};

}  // namespace alchemist::arch
