#include "arch/area_model.h"

namespace alchemist::arch {

AreaBreakdown area_model(const ArchConfig& config) {
  AreaBreakdown a;
  a.core_mm2 = kCoreMm2;
  a.core_cluster_mm2 = kCoreMm2 * static_cast<double>(config.cores_per_unit);
  a.local_sram_mm2 =
      kLocalSramMm2Per512Kb * static_cast<double>(config.local_sram_kb) / 512.0;
  a.computing_unit_mm2 = a.core_cluster_mm2 + a.local_sram_mm2 + kComputingUnitGlueMm2;
  a.all_units_mm2 = a.computing_unit_mm2 * static_cast<double>(config.num_units);
  // The transpose register file is an all-to-all permutation network across
  // the computing units: its area grows quadratically with the unit count.
  const double unit_ratio = static_cast<double>(config.num_units) / 128.0;
  a.transpose_rf_mm2 = kTransposeRfMm2Per128Units * unit_ratio * unit_ratio;
  a.shared_mem_mm2 =
      kSharedMemMm2Per2Mb * static_cast<double>(config.shared_sram_kb) / 2048.0;
  a.hbm_phy_mm2 = kHbmPhyMm2PerStack * 2.0;  // two stacks, fixed interface
  a.total_mm2 =
      a.all_units_mm2 + a.transpose_rf_mm2 + a.shared_mem_mm2 + a.hbm_phy_mm2;
  return a;
}

double average_power_watts(const ArchConfig& config) {
  const double reference_area = 181.086;
  return kAvgPowerWattsAt181mm2 * area_model(config).total_mm2 / reference_area;
}

}  // namespace alchemist::arch
