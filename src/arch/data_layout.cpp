#include "arch/data_layout.h"

#include <stdexcept>

#include "metaop/lowering.h"

namespace alchemist::arch {

SlotLayout::SlotLayout(std::size_t n, std::size_t units) : n_(n), units_(units) {
  if (units == 0 || n % units != 0) {
    throw std::invalid_argument("SlotLayout: N must be divisible by the unit count");
  }
}

std::uint64_t SlotLayout::cross_unit_accesses_channel(std::size_t l_channels) const {
  // Every channel stores slot k in the same stripe, so the gather for output
  // slot k touches L operands that all live in unit_of_slot(k).
  std::uint64_t crossings = 0;
  for (std::size_t k = 0; k < n_; ++k) {
    const std::size_t home = unit_of_slot(k);
    for (std::size_t c = 0; c < l_channels; ++c) {
      crossings += unit_of_slot(k) != home ? 1 : 0;  // structurally zero
    }
  }
  return crossings;
}

std::uint64_t SlotLayout::cross_unit_accesses_dnum(std::size_t dnum) const {
  // Identical argument: all dnum groups share the stripe.
  std::uint64_t crossings = 0;
  for (std::size_t k = 0; k < n_; ++k) {
    const std::size_t home = unit_of_slot(k);
    for (std::size_t d = 0; d < dnum; ++d) {
      crossings += unit_of_slot(k) != home ? 1 : 0;
    }
  }
  return crossings;
}

std::uint64_t SlotLayout::cross_unit_accesses_classic_ntt() const {
  // Iterative radix-2 NTT: stage s pairs slot k with k ± 2^s-stride partner.
  std::uint64_t crossings = 0;
  for (std::size_t stride = n_ / 2; stride >= 1; stride /= 2) {
    for (std::size_t k = 0; k < n_; ++k) {
      const std::size_t partner = k ^ stride;  // butterfly partner
      if (partner > k && unit_of_slot(k) != unit_of_slot(partner)) {
        crossings += 2;  // both operands move
      }
    }
    if (stride == 1) break;
  }
  return crossings;
}

std::uint64_t SlotLayout::cross_unit_accesses_four_step_ntt() const {
  // Phase 1 works on rows of the n1 x n2 matrix, phase 2 on columns; with the
  // stripe equal to whole rows (n2 >= slots_per_unit divides evenly), every
  // sub-NTT is unit-local. The transpose between phases is accounted
  // separately (it flows through the dedicated transpose register file).
  const metaop::NttStagePlan plan = metaop::plan_ntt_stages(n_);
  (void)plan;
  std::size_t n1 = 1;
  while (n1 * n1 < n_) n1 <<= 1;
  const std::size_t n2 = n_ / n1;
  // Rows are contiguous stripes of n2 slots; a unit owns whole rows iff
  // slots_per_unit is a multiple of n2 (or rows span units evenly).
  if (slots_per_unit() % n2 == 0 || n2 % slots_per_unit() == 0) {
    return 0;
  }
  // Misaligned configuration: every row boundary crossing is a remote access.
  std::uint64_t crossings = 0;
  for (std::size_t row = 0; row < n1; ++row) {
    const std::size_t first = row * n2;
    if (unit_of_slot(first) != unit_of_slot(first + n2 - 1)) crossings += n2;
  }
  return crossings;
}

std::uint64_t SlotLayout::four_step_transpose_words() const {
  return n_;  // the full polynomial crosses the transpose buffer once
}

DegradedSlotLayout::DegradedSlotLayout(std::size_t n, std::size_t total_units,
                                       const std::vector<std::size_t>& masked_units)
    : n_(n), total_units_(total_units) {
  if (n == 0 || total_units == 0) {
    throw std::invalid_argument("DegradedSlotLayout: empty geometry");
  }
  std::vector<bool> masked(total_units, false);
  for (std::size_t id : masked_units) {
    if (id >= total_units) {
      throw std::invalid_argument("DegradedSlotLayout: masked unit id out of range");
    }
    masked[id] = true;
  }
  for (std::size_t u = 0; u < total_units; ++u) {
    if (!masked[u]) healthy_.push_back(u);
  }
  if (healthy_.empty()) {
    throw std::invalid_argument("DegradedSlotLayout: all units masked out");
  }
  slots_per_unit_ = (n_ + healthy_.size() - 1) / healthy_.size();
}

bool DegradedSlotLayout::is_healthy(std::size_t unit) const {
  for (std::size_t id : healthy_) {
    if (id == unit) return true;
    if (id > unit) break;
  }
  return false;
}

double DegradedSlotLayout::padding_factor() const {
  return static_cast<double>(slots_per_unit_ * healthy_.size()) /
         static_cast<double>(n_);
}

std::size_t DegradedSlotLayout::unit_of_slot(std::size_t slot) const {
  if (slot >= n_) throw std::out_of_range("DegradedSlotLayout: slot out of range");
  return healthy_[slot / slots_per_unit_];
}

}  // namespace alchemist::arch
