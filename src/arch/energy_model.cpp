#include "arch/energy_model.h"

#include "arch/area_model.h"

namespace alchemist::arch {

EnergyBreakdown energy_model(const ArchConfig& config, const sim::SimResult& result) {
  EnergyBreakdown e;
  const double seconds = result.time_us * 1e-6;
  if (seconds <= 0) return e;

  // Reference calibration: 77.9 W at 181.086 mm^2, utilization ~0.86.
  const double reference_area = 181.086;
  const double reference_util = 0.86;
  const double area = area_model(config).total_mm2;

  const double dynamic_power_at_ref_util = kAvgPowerWattsAt181mm2 * kDynamicShare;
  const double static_power_ref = kAvgPowerWattsAt181mm2 * (1.0 - kDynamicShare);

  // Dynamic: proportional to delivered activity (utilization) and compute area.
  const double compute_area_ratio =
      (area_model(config).all_units_mm2 + area_model(config).transpose_rf_mm2) /
      (area_model(ArchConfig::alchemist()).all_units_mm2 + 6.380);
  e.dynamic_joules = dynamic_power_at_ref_util * (result.utilization / reference_util) *
                     compute_area_ratio * seconds;

  // HBM: energy per byte actually moved. Approximate traffic from the stall
  // accounting: bytes = stall-free streaming at full bandwidth is not
  // observable here, so charge the configured bandwidth for the memory-bound
  // share plus a floor for operand refill.
  const double hbm_bytes =
      static_cast<double>(result.mem_stall_cycles) * config.hbm_bytes_per_cycle() +
      0.05 * config.hbm_bw_gb_s * 1e9 * seconds;
  e.hbm_joules = hbm_bytes * kHbmPicojoulesPerByte * 1e-12;

  // Static: leakage scales with total area and wall time.
  e.static_joules = static_power_ref * (area / reference_area) * seconds;

  e.total_joules = e.dynamic_joules + e.hbm_joules + e.static_joules;
  e.average_watts = e.total_joules / seconds;
  return e;
}

}  // namespace alchemist::arch
