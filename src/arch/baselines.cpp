#include "arch/baselines.h"

#include <stdexcept>

namespace alchemist::arch {

std::vector<AcceleratorSpec> table6_specs() {
  // Published figures as quoted in Table 6 of the paper. FU fractions and
  // peak throughputs parameterize the modular-baseline simulator; they are
  // calibrated so each model reproduces its published benchmark performance
  // to first order (see EXPERIMENTS.md).
  std::vector<AcceleratorSpec> specs;
  specs.push_back({"Matcha", false, true, 640, 4, 0, 2.0, 36.96, 33.6,
                   0.70, 0.0, 0.30, 560});
  specs.push_back({"Strix", false, true, 300, 26, 0, 1.2, 141.37, 56.4,
                   0.72, 0.0, 0.28, 6656});
  specs.push_back({"CraterLake", true, false, 2400, 256, 84, 1.0, 472.3, 472.3,
                   0.50, 0.17, 0.33, 7680});
  specs.push_back({"SHARP", true, false, 1000, 180, 72, 1.0, 178.8, 379.0,
                   0.40, 0.22, 0.38, 13824});
  specs.push_back({"Alchemist", true, true, 1000, 66, 66, 1.0, 181.1, 181.1,
                   0.0, 0.0, 0.0, 16384});
  return specs;
}

AcceleratorSpec spec_by_name(const std::string& name) {
  for (const AcceleratorSpec& spec : table6_specs()) {
    if (spec.name == name) return spec;
  }
  throw std::invalid_argument("spec_by_name: unknown accelerator " + name);
}

}  // namespace alchemist::arch
