// Alchemist architecture configuration (§5, Fig. 5a).
//
// 128 independent computing units (each: one 512 KB local scratchpad + a
// cluster of 16 unified cores), a 2 MB shared memory, a transpose buffer,
// 2 HBM2 stacks at 1 TB/s, 1 GHz, 36-bit word (from SHARP [11]).
#pragma once

#include <cstddef>
#include <cstdint>

namespace alchemist::arch {

struct ArchConfig {
  std::size_t num_units = 128;
  std::size_t cores_per_unit = 16;
  std::size_t lanes = 8;             // j of the Meta-OP
  double freq_ghz = 1.0;
  std::size_t local_sram_kb = 512;   // per computing unit
  std::size_t shared_sram_kb = 2048; // 2 MB
  double hbm_bw_gb_s = 1000.0;       // 2x HBM2
  int word_bits = 36;
  // Master telemetry toggle: when true AND a simulator is handed an
  // obs::Timeline sink, per-op timeline events are recorded. Off by default —
  // the simulators skip all event construction, so disabled telemetry costs
  // nothing and reported results are bit-identical either way (pinned by
  // tests/test_obs.cpp).
  bool telemetry = false;

  std::size_t total_cores() const { return num_units * cores_per_unit; }
  // Peak multiply-accumulate lanes per cycle across the chip.
  std::size_t peak_lanes() const { return total_cores() * lanes; }
  std::size_t total_sram_kb() const {
    return num_units * local_sram_kb + shared_sram_kb;
  }
  double cycles_per_second() const { return freq_ghz * 1e9; }
  // Bytes deliverable from HBM per cycle.
  double hbm_bytes_per_cycle() const { return hbm_bw_gb_s * 1e9 / cycles_per_second(); }
  // Aggregate on-chip scratchpad bandwidth (bytes/cycle): each unit reads one
  // word per lane per core per cycle. 128 units * 16 cores * 8 lanes *
  // 4.5 bytes ~ 66 TB/s at 1 GHz — the paper's Table 6 on-chip BW figure.
  double onchip_bytes_per_cycle() const {
    return static_cast<double>(peak_lanes()) * word_bits / 8.0;
  }

  static ArchConfig alchemist() { return ArchConfig{}; }
};

}  // namespace alchemist::arch
