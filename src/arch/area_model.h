// Analytical area/power model reproducing Table 5 of the paper.
//
// The paper synthesized RTL in a commercial 14nm process (Design Compiler,
// CACTI for SRAM). We reproduce the published per-component densities and
// scale them with the configuration, so the default config reproduces the
// published breakdown exactly and design-space sweeps scale sensibly.
#pragma once

#include "arch/config.h"

namespace alchemist::arch {

struct AreaBreakdown {
  double core_mm2 = 0;            // one unified core
  double core_cluster_mm2 = 0;    // cores_per_unit cores
  double local_sram_mm2 = 0;      // one local scratchpad
  double computing_unit_mm2 = 0;  // cluster + scratchpad (+ glue)
  double all_units_mm2 = 0;
  double transpose_rf_mm2 = 0;
  double shared_mem_mm2 = 0;
  double hbm_phy_mm2 = 0;
  double total_mm2 = 0;
};

// Published 14nm densities (Table 5).
inline constexpr double kCoreMm2 = 0.043;
inline constexpr double kLocalSramMm2Per512Kb = 0.427;
inline constexpr double kComputingUnitGlueMm2 = 1.118 - 16 * 0.043 - 0.427;
inline constexpr double kTransposeRfMm2Per128Units = 6.380;
inline constexpr double kSharedMemMm2Per2Mb = 1.801;
inline constexpr double kHbmPhyMm2PerStack = 29.801 / 2.0;
inline constexpr double kAvgPowerWattsAt181mm2 = 77.9;

AreaBreakdown area_model(const ArchConfig& config);

// Average power, scaled with active area relative to the published design.
double average_power_watts(const ArchConfig& config);

}  // namespace alchemist::arch
