// Serialization of FHE objects: keys, ciphertexts and polynomials for both
// schemes. Every object is framed with a type tag, a format version and an
// FNV-1a integrity footer covering the full frame (header included), so
// corrupted, truncated or mismatched files fail loudly with a typed
// std::runtime_error instead of decrypting garbage. All declared lengths are
// capped against the bytes remaining in the stream before any allocation.
#pragma once

#include "ckks/ciphertext.h"
#include "ckks/keys.h"
#include "common/serdes.h"
#include "tfhe/integer.h"
#include "tfhe/trlwe.h"

namespace alchemist::serdes {

// v2 added the per-frame FNV-1a integrity footer; v1 streams are rejected.
inline constexpr u64 kFormatVersion = 2;

// --- polynomials ---
void write(BinaryWriter& w, const RnsPoly& poly);
RnsPoly read_rns_poly(BinaryReader& r);
void write(BinaryWriter& w, const tfhe::TorusPoly& poly);
tfhe::TorusPoly read_torus_poly(BinaryReader& r);

// --- CKKS ---
void write(BinaryWriter& w, const ckks::Ciphertext& ct);
ckks::Ciphertext read_ckks_ciphertext(BinaryReader& r);
void write(BinaryWriter& w, const ckks::SecretKey& key);
ckks::SecretKey read_ckks_secret_key(BinaryReader& r);
void write(BinaryWriter& w, const ckks::PublicKey& key);
ckks::PublicKey read_ckks_public_key(BinaryReader& r);
void write(BinaryWriter& w, const ckks::KSwitchKey& key);
ckks::KSwitchKey read_kswitch_key(BinaryReader& r);
void write(BinaryWriter& w, const ckks::RelinKeys& key);
ckks::RelinKeys read_relin_keys(BinaryReader& r);
void write(BinaryWriter& w, const ckks::GaloisKeys& keys);
ckks::GaloisKeys read_galois_keys(BinaryReader& r);

// --- TFHE ---
void write(BinaryWriter& w, const tfhe::LweSample& sample);
tfhe::LweSample read_lwe_sample(BinaryReader& r);
void write(BinaryWriter& w, const tfhe::LweKey& key);
tfhe::LweKey read_lwe_key(BinaryReader& r);
void write(BinaryWriter& w, const tfhe::TrlweSample& sample);
tfhe::TrlweSample read_trlwe_sample(BinaryReader& r);
void write(BinaryWriter& w, const tfhe::EncInt& value);
tfhe::EncInt read_enc_int(BinaryReader& r);

}  // namespace alchemist::serdes
