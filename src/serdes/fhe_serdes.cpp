#include "serdes/fhe_serdes.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace alchemist::serdes {

namespace {

// Largest ring degree any deployment of this stack uses (paper configs top
// out at 2^16); anything bigger in a stream is hostile, not a key.
constexpr u64 kMaxDegree = u64{1} << 26;

std::size_t write_header(BinaryWriter& w, const char* tag) {
  const std::size_t start = w.position();
  w.write_tag(tag);
  w.write_u64(kFormatVersion);
  return start;
}

// Footer: FNV-1a over the whole frame [header start, footer). Nested objects
// carry their own footers, which the enclosing digest simply covers too.
void write_footer(BinaryWriter& w, std::size_t start) {
  w.write_u64(w.checksum_since(start));
}

std::size_t read_header(BinaryReader& r, const char* tag) {
  const std::size_t start = r.position();
  r.expect_tag(tag);
  const u64 version = r.read_u64();
  if (version != kFormatVersion) {
    throw std::runtime_error("fhe_serdes: unsupported format version " +
                             std::to_string(version));
  }
  return start;
}

void read_footer(BinaryReader& r, std::size_t start) {
  const u64 computed = r.checksum_since(start);
  const u64 stored = r.read_u64();
  if (stored != computed) {
    throw std::runtime_error("fhe_serdes: checksum mismatch (corrupted stream)");
  }
}

// Reject a declared element count that cannot fit in the remaining bytes
// (each element serializes to at least `min_bytes_each`) BEFORE any
// reserve/resize, so adversarial prefixes throw instead of OOM-ing.
void check_count(const BinaryReader& r, u64 count, std::size_t min_bytes_each,
                 const char* what) {
  if (count > r.remaining() / min_bytes_each) {
    throw std::runtime_error(std::string("fhe_serdes: declared ") + what +
                             " count exceeds remaining input");
  }
}

}  // namespace

void write(BinaryWriter& w, const RnsPoly& poly) {
  const std::size_t start = write_header(w, "rns");
  w.write_u64(poly.degree());
  w.write_u8(poly.is_ntt() ? 1 : 0);
  w.write_u64_vector(poly.moduli());
  for (std::size_t c = 0; c < poly.num_channels(); ++c) {
    w.write_u64_vector(poly.channel(c));
  }
  write_footer(w, start);
}

RnsPoly read_rns_poly(BinaryReader& r) {
  const std::size_t start = read_header(r, "rns");
  const u64 degree = r.read_u64();
  if (degree == 0 || (degree & (degree - 1)) != 0 || degree > kMaxDegree) {
    throw std::runtime_error("fhe_serdes: bad polynomial degree");
  }
  const bool ntt = r.read_u8() != 0;
  const std::vector<u64> moduli = r.read_u64_vector();
  if (moduli.empty()) throw std::runtime_error("fhe_serdes: empty modulus basis");
  for (u64 q : moduli) {
    if (q < 2) throw std::runtime_error("fhe_serdes: bad modulus value");
  }
  // Each channel still owes 8 bytes of length prefix plus 8*degree of
  // residues; check that before allocating channels worth of zeros.
  check_count(r, moduli.size(), 8 + 8 * static_cast<std::size_t>(degree), "channel");
  RnsPoly poly(degree, moduli, ntt ? RnsPoly::Form::Ntt : RnsPoly::Form::Coeff);
  for (std::size_t c = 0; c < moduli.size(); ++c) {
    const std::vector<u64> data = r.read_u64_vector();
    if (data.size() != degree) throw std::runtime_error("fhe_serdes: bad channel size");
    for (std::size_t i = 0; i < degree; ++i) {
      if (data[i] >= moduli[c]) throw std::runtime_error("fhe_serdes: residue out of range");
      poly.channel(c)[i] = data[i];
    }
  }
  read_footer(r, start);
  return poly;
}

void write(BinaryWriter& w, const tfhe::TorusPoly& poly) {
  const std::size_t start = write_header(w, "tpoly");
  w.write_u64_vector(poly.coeffs());
  write_footer(w, start);
}

tfhe::TorusPoly read_torus_poly(BinaryReader& r) {
  const std::size_t start = read_header(r, "tpoly");
  tfhe::TorusPoly poly(r.read_u64_vector());
  read_footer(r, start);
  return poly;
}

void write(BinaryWriter& w, const ckks::Ciphertext& ct) {
  const std::size_t start = write_header(w, "ckks_ct");
  w.write_u64(ct.level);
  w.write_double(ct.scale);
  write(w, ct.c0);
  write(w, ct.c1);
  write_footer(w, start);
}

ckks::Ciphertext read_ckks_ciphertext(BinaryReader& r) {
  const std::size_t start = read_header(r, "ckks_ct");
  ckks::Ciphertext ct;
  ct.level = r.read_u64();
  ct.scale = r.read_double();
  ct.c0 = read_rns_poly(r);
  ct.c1 = read_rns_poly(r);
  if (ct.scale <= 0 || !std::isfinite(ct.scale)) {
    throw std::runtime_error("fhe_serdes: bad ciphertext scale");
  }
  read_footer(r, start);
  return ct;
}

void write(BinaryWriter& w, const ckks::SecretKey& key) {
  const std::size_t start = write_header(w, "ckks_sk");
  write(w, key.s);
  write_footer(w, start);
}

ckks::SecretKey read_ckks_secret_key(BinaryReader& r) {
  const std::size_t start = read_header(r, "ckks_sk");
  ckks::SecretKey key{read_rns_poly(r)};
  read_footer(r, start);
  return key;
}

void write(BinaryWriter& w, const ckks::PublicKey& key) {
  const std::size_t start = write_header(w, "ckks_pk");
  write(w, key.b);
  write(w, key.a);
  write_footer(w, start);
}

ckks::PublicKey read_ckks_public_key(BinaryReader& r) {
  const std::size_t start = read_header(r, "ckks_pk");
  ckks::PublicKey key;
  key.b = read_rns_poly(r);
  key.a = read_rns_poly(r);
  read_footer(r, start);
  return key;
}

void write(BinaryWriter& w, const ckks::KSwitchKey& key) {
  const std::size_t start = write_header(w, "ckks_ksk");
  w.write_u64(key.digits.size());
  for (const auto& [b, a] : key.digits) {
    write(w, b);
    write(w, a);
  }
  write_footer(w, start);
}

ckks::KSwitchKey read_kswitch_key(BinaryReader& r) {
  const std::size_t start = read_header(r, "ckks_ksk");
  const u64 digits = r.read_u64();
  // Each digit is two serialized polys; even an empty poly frame takes well
  // over 40 bytes, so 80 per digit is a safe floor.
  check_count(r, digits, 80, "keyswitch digit");
  ckks::KSwitchKey key;
  key.digits.reserve(digits);
  for (u64 i = 0; i < digits; ++i) {
    RnsPoly b = read_rns_poly(r);
    RnsPoly a = read_rns_poly(r);
    key.digits.emplace_back(std::move(b), std::move(a));
  }
  read_footer(r, start);
  return key;
}

void write(BinaryWriter& w, const ckks::RelinKeys& key) {
  const std::size_t start = write_header(w, "ckks_rlk");
  write(w, key.key);
  write_footer(w, start);
}

ckks::RelinKeys read_relin_keys(BinaryReader& r) {
  const std::size_t start = read_header(r, "ckks_rlk");
  ckks::RelinKeys key{read_kswitch_key(r)};
  read_footer(r, start);
  return key;
}

void write(BinaryWriter& w, const ckks::GaloisKeys& keys) {
  const std::size_t start = write_header(w, "ckks_glk");
  w.write_u64(keys.keys.size());
  for (const auto& [elt, key] : keys.keys) {
    w.write_u64(elt);
    write(w, key);
  }
  write_footer(w, start);
}

ckks::GaloisKeys read_galois_keys(BinaryReader& r) {
  const std::size_t start = read_header(r, "ckks_glk");
  const u64 count = r.read_u64();
  // Each entry: 8-byte Galois element + a keyswitch key frame (>= 40 bytes).
  check_count(r, count, 48, "galois key");
  ckks::GaloisKeys keys;
  for (u64 i = 0; i < count; ++i) {
    const u64 elt = r.read_u64();
    keys.keys.emplace(elt, read_kswitch_key(r));
  }
  read_footer(r, start);
  return keys;
}

void write(BinaryWriter& w, const tfhe::LweSample& sample) {
  const std::size_t start = write_header(w, "lwe");
  w.write_u64_vector(sample.a);
  w.write_u64(sample.b);
  write_footer(w, start);
}

tfhe::LweSample read_lwe_sample(BinaryReader& r) {
  const std::size_t start = read_header(r, "lwe");
  tfhe::LweSample out;
  out.a = r.read_u64_vector();
  out.b = r.read_u64();
  read_footer(r, start);
  return out;
}

void write(BinaryWriter& w, const tfhe::LweKey& key) {
  const std::size_t start = write_header(w, "lwe_key");
  w.write_u64(key.s.size());
  for (int bit : key.s) w.write_u8(static_cast<std::uint8_t>(bit));
  write_footer(w, start);
}

tfhe::LweKey read_lwe_key(BinaryReader& r) {
  const std::size_t start = read_header(r, "lwe_key");
  const u64 n = r.read_u64();
  check_count(r, n, 1, "key bit");
  tfhe::LweKey key;
  key.s.resize(n);
  for (u64 i = 0; i < n; ++i) {
    const std::uint8_t bit = r.read_u8();
    if (bit > 1) throw std::runtime_error("fhe_serdes: bad key bit");
    key.s[i] = bit;
  }
  read_footer(r, start);
  return key;
}

void write(BinaryWriter& w, const tfhe::TrlweSample& sample) {
  const std::size_t start = write_header(w, "trlwe");
  w.write_u64(sample.k());
  for (const auto& aj : sample.a) write(w, aj);
  write(w, sample.b);
  write_footer(w, start);
}

tfhe::TrlweSample read_trlwe_sample(BinaryReader& r) {
  const std::size_t start = read_header(r, "trlwe");
  const u64 k = r.read_u64();
  // Each mask poly is a torus-poly frame: tag + version + length + footer.
  check_count(r, k, 32, "trlwe mask poly");
  tfhe::TrlweSample out;
  out.a.reserve(k);
  for (u64 i = 0; i < k; ++i) out.a.push_back(read_torus_poly(r));
  out.b = read_torus_poly(r);
  read_footer(r, start);
  return out;
}

void write(BinaryWriter& w, const tfhe::EncInt& value) {
  const std::size_t start = write_header(w, "encint");
  w.write_u64(value.width());
  for (const auto& bit : value.bits) write(w, bit);
  write_footer(w, start);
}

tfhe::EncInt read_enc_int(BinaryReader& r) {
  const std::size_t start = read_header(r, "encint");
  const u64 width = r.read_u64();
  // Each bit is an LWE sample frame (tag + version + vector + b + footer).
  check_count(r, width, 40, "encrypted-int bit");
  tfhe::EncInt out;
  out.bits.reserve(width);
  for (u64 i = 0; i < width; ++i) out.bits.push_back(read_lwe_sample(r));
  read_footer(r, start);
  return out;
}

}  // namespace alchemist::serdes
