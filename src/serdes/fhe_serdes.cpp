#include "serdes/fhe_serdes.h"

#include <stdexcept>

namespace alchemist::serdes {

namespace {

void write_header(BinaryWriter& w, const char* tag) {
  w.write_tag(tag);
  w.write_u64(kFormatVersion);
}

void read_header(BinaryReader& r, const char* tag) {
  r.expect_tag(tag);
  const u64 version = r.read_u64();
  if (version != kFormatVersion) {
    throw std::runtime_error("fhe_serdes: unsupported format version");
  }
}

}  // namespace

void write(BinaryWriter& w, const RnsPoly& poly) {
  write_header(w, "rns");
  w.write_u64(poly.degree());
  w.write_u8(poly.is_ntt() ? 1 : 0);
  w.write_u64_vector(poly.moduli());
  for (std::size_t c = 0; c < poly.num_channels(); ++c) {
    w.write_u64_vector(poly.channel(c));
  }
}

RnsPoly read_rns_poly(BinaryReader& r) {
  read_header(r, "rns");
  const u64 degree = r.read_u64();
  const bool ntt = r.read_u8() != 0;
  const std::vector<u64> moduli = r.read_u64_vector();
  RnsPoly poly(degree, moduli, ntt ? RnsPoly::Form::Ntt : RnsPoly::Form::Coeff);
  for (std::size_t c = 0; c < moduli.size(); ++c) {
    const std::vector<u64> data = r.read_u64_vector();
    if (data.size() != degree) throw std::runtime_error("fhe_serdes: bad channel size");
    for (std::size_t i = 0; i < degree; ++i) {
      if (data[i] >= moduli[c]) throw std::runtime_error("fhe_serdes: residue out of range");
      poly.channel(c)[i] = data[i];
    }
  }
  return poly;
}

void write(BinaryWriter& w, const tfhe::TorusPoly& poly) {
  write_header(w, "tpoly");
  w.write_u64_vector(poly.coeffs());
}

tfhe::TorusPoly read_torus_poly(BinaryReader& r) {
  read_header(r, "tpoly");
  return tfhe::TorusPoly(r.read_u64_vector());
}

void write(BinaryWriter& w, const ckks::Ciphertext& ct) {
  write_header(w, "ckks_ct");
  w.write_u64(ct.level);
  w.write_double(ct.scale);
  write(w, ct.c0);
  write(w, ct.c1);
}

ckks::Ciphertext read_ckks_ciphertext(BinaryReader& r) {
  read_header(r, "ckks_ct");
  ckks::Ciphertext ct;
  ct.level = r.read_u64();
  ct.scale = r.read_double();
  ct.c0 = read_rns_poly(r);
  ct.c1 = read_rns_poly(r);
  if (ct.scale <= 0) throw std::runtime_error("fhe_serdes: bad ciphertext scale");
  return ct;
}

void write(BinaryWriter& w, const ckks::SecretKey& key) {
  write_header(w, "ckks_sk");
  write(w, key.s);
}

ckks::SecretKey read_ckks_secret_key(BinaryReader& r) {
  read_header(r, "ckks_sk");
  return ckks::SecretKey{read_rns_poly(r)};
}

void write(BinaryWriter& w, const ckks::PublicKey& key) {
  write_header(w, "ckks_pk");
  write(w, key.b);
  write(w, key.a);
}

ckks::PublicKey read_ckks_public_key(BinaryReader& r) {
  read_header(r, "ckks_pk");
  ckks::PublicKey key;
  key.b = read_rns_poly(r);
  key.a = read_rns_poly(r);
  return key;
}

void write(BinaryWriter& w, const ckks::KSwitchKey& key) {
  write_header(w, "ckks_ksk");
  w.write_u64(key.digits.size());
  for (const auto& [b, a] : key.digits) {
    write(w, b);
    write(w, a);
  }
}

ckks::KSwitchKey read_kswitch_key(BinaryReader& r) {
  read_header(r, "ckks_ksk");
  const u64 digits = r.read_u64();
  ckks::KSwitchKey key;
  key.digits.reserve(digits);
  for (u64 i = 0; i < digits; ++i) {
    RnsPoly b = read_rns_poly(r);
    RnsPoly a = read_rns_poly(r);
    key.digits.emplace_back(std::move(b), std::move(a));
  }
  return key;
}

void write(BinaryWriter& w, const ckks::RelinKeys& key) {
  write_header(w, "ckks_rlk");
  write(w, key.key);
}

ckks::RelinKeys read_relin_keys(BinaryReader& r) {
  read_header(r, "ckks_rlk");
  return ckks::RelinKeys{read_kswitch_key(r)};
}

void write(BinaryWriter& w, const ckks::GaloisKeys& keys) {
  write_header(w, "ckks_glk");
  w.write_u64(keys.keys.size());
  for (const auto& [elt, key] : keys.keys) {
    w.write_u64(elt);
    write(w, key);
  }
}

ckks::GaloisKeys read_galois_keys(BinaryReader& r) {
  read_header(r, "ckks_glk");
  const u64 count = r.read_u64();
  ckks::GaloisKeys keys;
  for (u64 i = 0; i < count; ++i) {
    const u64 elt = r.read_u64();
    keys.keys.emplace(elt, read_kswitch_key(r));
  }
  return keys;
}

void write(BinaryWriter& w, const tfhe::LweSample& sample) {
  write_header(w, "lwe");
  w.write_u64_vector(sample.a);
  w.write_u64(sample.b);
}

tfhe::LweSample read_lwe_sample(BinaryReader& r) {
  read_header(r, "lwe");
  tfhe::LweSample out;
  out.a = r.read_u64_vector();
  out.b = r.read_u64();
  return out;
}

void write(BinaryWriter& w, const tfhe::LweKey& key) {
  write_header(w, "lwe_key");
  w.write_u64(key.s.size());
  for (int bit : key.s) w.write_u8(static_cast<std::uint8_t>(bit));
}

tfhe::LweKey read_lwe_key(BinaryReader& r) {
  read_header(r, "lwe_key");
  const u64 n = r.read_u64();
  tfhe::LweKey key;
  key.s.resize(n);
  for (u64 i = 0; i < n; ++i) {
    const std::uint8_t bit = r.read_u8();
    if (bit > 1) throw std::runtime_error("fhe_serdes: bad key bit");
    key.s[i] = bit;
  }
  return key;
}

void write(BinaryWriter& w, const tfhe::TrlweSample& sample) {
  write_header(w, "trlwe");
  w.write_u64(sample.k());
  for (const auto& aj : sample.a) write(w, aj);
  write(w, sample.b);
}

tfhe::TrlweSample read_trlwe_sample(BinaryReader& r) {
  read_header(r, "trlwe");
  const u64 k = r.read_u64();
  tfhe::TrlweSample out;
  out.a.reserve(k);
  for (u64 i = 0; i < k; ++i) out.a.push_back(read_torus_poly(r));
  out.b = read_torus_poly(r);
  return out;
}

void write(BinaryWriter& w, const tfhe::EncInt& value) {
  write_header(w, "encint");
  w.write_u64(value.width());
  for (const auto& bit : value.bits) write(w, bit);
}

tfhe::EncInt read_enc_int(BinaryReader& r) {
  read_header(r, "encint");
  const u64 width = r.read_u64();
  tfhe::EncInt out;
  out.bits.reserve(width);
  for (u64 i = 0; i < width; ++i) out.bits.push_back(read_lwe_sample(r));
  return out;
}

}  // namespace alchemist::serdes
