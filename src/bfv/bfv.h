// BFV: exact integer arithmetic FHE (the paper's other arithmetic scheme).
//
// Textbook single-modulus BFV over R_q = Z_q[X]/(X^N+1) with plaintext ring
// R_t, t prime and t ≡ 1 (mod 2N) so the plaintext ring splits into N SIMD
// slots (batching via the negacyclic NTT mod t). Messages are scaled by
// Delta = floor(q/t); multiplication computes the exact integer tensor
// product (double-prime NTT + CRT, no floating point) and rescales by t/q
// with exact rounding. Relinearization uses base-2^w digit decomposition.
//
// Unlike CKKS the arithmetic is exact: decrypt(enc(a) * enc(b)) == a*b mod t,
// bit for bit, while noise stays under Delta/2.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/modarith.h"
#include "common/rng.h"

namespace alchemist::bfv {

struct BfvParams {
  std::size_t n = 1024;
  int q_bits = 55;      // ciphertext modulus (single NTT prime)
  u64 t = 65537;        // plaintext modulus, prime, t ≡ 1 (mod 2N)
  int relin_window = 16;  // base-2^w decomposition for relinearization
  double noise_sigma = 3.2;

  static BfvParams toy(std::size_t n = 1024) {
    BfvParams p;
    p.n = n;
    return p;
  }
};

class BfvContext {
 public:
  explicit BfvContext(const BfvParams& params);

  const BfvParams& params() const { return params_; }
  std::size_t degree() const { return params_.n; }
  u64 q() const { return q_; }
  u64 t() const { return params_.t; }
  u64 delta() const { return q_ / params_.t; }
  std::size_t relin_digits() const { return relin_digits_; }

 private:
  BfvParams params_;
  u64 q_;
  std::size_t relin_digits_;
};

using BfvContextPtr = std::shared_ptr<const BfvContext>;

// Coefficient vectors mod q (c0, c1): c0 + c1*s = Delta*m + e.
struct BfvCiphertext {
  std::vector<u64> c0;
  std::vector<u64> c1;
};

struct BfvSecretKey {
  std::vector<u64> s;  // ternary, mod q
};

struct BfvPublicKey {
  std::vector<u64> b;  // -(a*s + e)
  std::vector<u64> a;
};

struct BfvRelinKey {
  // digit i: (b_i, a_i) with b_i = -(a_i s + e_i) + 2^(w*i) s^2.
  std::vector<std::pair<std::vector<u64>, std::vector<u64>>> digits;
};

// SIMD batching: vector of N values mod t <-> plaintext polynomial.
class BfvEncoder {
 public:
  explicit BfvEncoder(BfvContextPtr ctx);
  // values.size() <= N; the rest is zero-filled.
  std::vector<u64> encode(std::span<const u64> values) const;
  std::vector<u64> decode(std::span<const u64> plain) const;

 private:
  BfvContextPtr ctx_;
};

class BfvKeyGenerator {
 public:
  BfvKeyGenerator(BfvContextPtr ctx, u64 seed = 1);
  const BfvSecretKey& secret_key() const { return secret_; }
  BfvPublicKey make_public_key();
  BfvRelinKey make_relin_key();

 private:
  BfvContextPtr ctx_;
  Rng rng_;
  BfvSecretKey secret_;
};

class BfvEncryptor {
 public:
  BfvEncryptor(BfvContextPtr ctx, BfvPublicKey pk, u64 seed = 2);
  BfvCiphertext encrypt(std::span<const u64> plain);

 private:
  BfvContextPtr ctx_;
  BfvPublicKey pk_;
  Rng rng_;
};

class BfvDecryptor {
 public:
  BfvDecryptor(BfvContextPtr ctx, BfvSecretKey sk);
  std::vector<u64> decrypt(const BfvCiphertext& ct) const;
  // Infinity norm of the noise, in bits (for budget tests).
  double noise_bits(const BfvCiphertext& ct, std::span<const u64> plain) const;

 private:
  BfvContextPtr ctx_;
  BfvSecretKey sk_;
};

class BfvEvaluator {
 public:
  explicit BfvEvaluator(BfvContextPtr ctx);
  BfvCiphertext add(const BfvCiphertext& x, const BfvCiphertext& y) const;
  BfvCiphertext sub(const BfvCiphertext& x, const BfvCiphertext& y) const;
  BfvCiphertext negate(const BfvCiphertext& x) const;
  BfvCiphertext add_plain(const BfvCiphertext& x, std::span<const u64> plain) const;
  BfvCiphertext mul_plain(const BfvCiphertext& x, std::span<const u64> plain) const;
  // Full multiply: exact tensor, t/q rescale, relinearize.
  BfvCiphertext multiply(const BfvCiphertext& x, const BfvCiphertext& y,
                         const BfvRelinKey& rk) const;

 private:
  BfvContextPtr ctx_;
};

}  // namespace alchemist::bfv
