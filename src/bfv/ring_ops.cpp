#include "bfv/ring_ops.h"

#include <array>
#include <map>
#include <memory>
#include <stdexcept>

#include "common/primes.h"
#include "poly/ntt.h"

namespace alchemist::bfv::detail {

namespace {

class ExactConv {
 public:
  ExactConv(std::size_t n, u64 q) : n_(n), q_(q) {
    const auto primes = generate_ntt_primes(62, n, 2);
    p_[0] = primes[0];
    p_[1] = primes[1];
    p1_inv_mod_p2_ = inv_mod(p_[0] % p_[1], p_[1]);
  }

  std::vector<i128> multiply(std::span<const u64> a, std::span<const u64> b) const {
    std::array<std::vector<u64>, 2> ra, rb;
    for (int k = 0; k < 2; ++k) {
      ra[k] = lift(a, p_[k]);
      rb[k] = lift(b, p_[k]);
      const NttTable& table = get_ntt_table(p_[k], n_);
      table.forward(ra[k]);
      table.forward(rb[k]);
      const Modulus& mod = table.mod();
      for (std::size_t i = 0; i < n_; ++i) ra[k][i] = mod.mul(ra[k][i], rb[k][i]);
      table.inverse(ra[k]);
    }
    std::vector<i128> out(n_);
    const u128 big_p = u128{p_[0]} * p_[1];
    const u128 half_p = big_p >> 1;
    for (std::size_t i = 0; i < n_; ++i) {
      const u64 x1 = ra[0][i];
      const u64 x2 = ra[1][i];
      const u64 g = mul_mod(sub_mod(x2, x1 % p_[1], p_[1]), p1_inv_mod_p2_, p_[1]);
      const u128 x = u128{x1} + u128{p_[0]} * g;
      out[i] = x > half_p ? -static_cast<i128>(big_p - x) : static_cast<i128>(x);
    }
    return out;
  }

 private:
  std::vector<u64> lift(std::span<const u64> x, u64 p) const {
    std::vector<u64> out(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      out[i] = x[i] <= q_ / 2 ? x[i] % p : p - (q_ - x[i]) % p;
    }
    return out;
  }

  std::size_t n_;
  u64 q_;
  std::array<u64, 2> p_;
  u64 p1_inv_mod_p2_;
};

const ExactConv& conv_for(std::size_t n, u64 q) {
  static std::map<std::pair<std::size_t, u64>, std::unique_ptr<ExactConv>> cache;
  auto key = std::make_pair(n, q);
  auto it = cache.find(key);
  if (it == cache.end()) it = cache.emplace(key, std::make_unique<ExactConv>(n, q)).first;
  return *it->second;
}

}  // namespace

std::vector<i128> exact_negacyclic_mul(std::span<const u64> a,
                                       std::span<const u64> b, u64 q) {
  return conv_for(a.size(), q).multiply(a, b);
}

std::vector<u64> ring_mul(std::span<const u64> a, std::span<const u64> b, u64 q) {
  const NttTable& table = get_ntt_table(q, a.size());
  std::vector<u64> ra(a.begin(), a.end()), rb(b.begin(), b.end());
  table.forward(ra);
  table.forward(rb);
  const Modulus& mod = table.mod();
  for (std::size_t i = 0; i < ra.size(); ++i) ra[i] = mod.mul(ra[i], rb[i]);
  table.inverse(ra);
  return ra;
}

std::vector<u64> add_vec(std::span<const u64> a, std::span<const u64> b, u64 q) {
  std::vector<u64> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = add_mod(a[i], b[i], q);
  return out;
}

std::vector<u64> sample_small(std::size_t n, u64 q, double sigma, Rng& rng,
                              bool ternary) {
  std::vector<u64> out(n);
  for (u64& x : out) x = ternary ? rng.ternary(q) : rng.gaussian(sigma, q);
  return out;
}

u64 find_prime_1mod(int bits, u64 step) {
  u64 candidate = ((u64{1} << bits) - 1) / step * step + 1;
  while (candidate > step && !is_prime(candidate)) candidate -= step;
  if (candidate <= step) throw std::runtime_error("find_prime_1mod: no prime found");
  return candidate;
}

std::vector<u64> batch_encode(std::size_t n, u64 t, std::span<const u64> values) {
  if (values.size() > n) throw std::invalid_argument("batch_encode: too many values");
  const NttTable& table = get_ntt_table(t, n);
  int log_n = 0;
  while ((std::size_t{1} << log_n) < n) ++log_n;
  std::vector<u64> slots(n, 0);
  for (std::size_t i = 0; i < values.size(); ++i) {
    slots[bit_reverse(i, log_n)] = values[i] % t;
  }
  table.inverse(slots);
  return slots;
}

std::vector<u64> batch_decode(std::size_t n, u64 t, std::span<const u64> plain) {
  if (plain.size() != n) throw std::invalid_argument("batch_decode: bad plaintext size");
  const NttTable& table = get_ntt_table(t, n);
  int log_n = 0;
  while ((std::size_t{1} << log_n) < n) ++log_n;
  std::vector<u64> slots(plain.begin(), plain.end());
  table.forward(slots);
  std::vector<u64> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = slots[bit_reverse(i, log_n)];
  return out;
}

u64 center_mod(i128 d, u64 q) {
  const i128 r = d % static_cast<i128>(q);
  return r >= 0 ? static_cast<u64>(r) : static_cast<u64>(r + static_cast<i128>(q));
}

}  // namespace alchemist::bfv::detail
