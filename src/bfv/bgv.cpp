#include "bfv/bgv.h"

#include <stdexcept>

#include "bfv/ring_ops.h"
#include "common/primes.h"

namespace alchemist::bgv {

namespace detail = bfv::detail;

BgvContext::BgvContext(const BfvParams& params) : params_(params) {
  if (!is_power_of_two(params.n)) {
    throw std::invalid_argument("BgvContext: N must be a power of two");
  }
  if (!is_prime(params.t) || (params.t - 1) % (2 * params.n) != 0) {
    throw std::invalid_argument("BgvContext: t must be prime with t = 1 mod 2N");
  }
  q_ = detail::find_prime_1mod(params.q_bits,
                               2 * static_cast<u64>(params.n) * params.t);
  relin_digits_ =
      (static_cast<std::size_t>(params.q_bits) + params.relin_window - 1) /
      params.relin_window;
}

std::vector<u64> bgv_encode(const BgvContext& ctx, std::span<const u64> values) {
  return detail::batch_encode(ctx.degree(), ctx.t(), values);
}

std::vector<u64> bgv_decode(const BgvContext& ctx, std::span<const u64> plain) {
  return detail::batch_decode(ctx.degree(), ctx.t(), plain);
}

BgvKeyGenerator::BgvKeyGenerator(BgvContextPtr ctx, u64 seed)
    : ctx_(std::move(ctx)), rng_(seed) {
  secret_.s = detail::sample_small(ctx_->degree(), ctx_->q(), 0, rng_, true);
}

BgvPublicKey BgvKeyGenerator::make_public_key() {
  const std::size_t n = ctx_->degree();
  const u64 q = ctx_->q();
  const u64 t = ctx_->t();
  BgvPublicKey pk;
  pk.a = rng_.uniform_vector(n, q);
  const auto e = detail::sample_small(n, q, ctx_->params().noise_sigma, rng_, false);
  const auto as = detail::ring_mul(pk.a, secret_.s, q);
  pk.b.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    // -(a*s + t*e): the noise rides at t-multiples so it vanishes mod t.
    pk.b[i] = neg_mod(add_mod(as[i], mul_mod(t, e[i], q), q), q);
  }
  return pk;
}

BgvRelinKey BgvKeyGenerator::make_relin_key() {
  const std::size_t n = ctx_->degree();
  const u64 q = ctx_->q();
  const u64 t = ctx_->t();
  const auto s2 = detail::ring_mul(secret_.s, secret_.s, q);
  BgvRelinKey rk;
  u64 power = 1;
  for (std::size_t i = 0; i < ctx_->relin_digits(); ++i) {
    std::vector<u64> a = rng_.uniform_vector(n, q);
    const auto e = detail::sample_small(n, q, ctx_->params().noise_sigma, rng_, false);
    const auto as = detail::ring_mul(a, secret_.s, q);
    std::vector<u64> b(n);
    for (std::size_t k = 0; k < n; ++k) {
      const u64 noisy = add_mod(as[k], mul_mod(t, e[k], q), q);
      b[k] = add_mod(neg_mod(noisy, q), mul_mod(power, s2[k], q), q);
    }
    rk.digits.emplace_back(std::move(b), std::move(a));
    for (int w = 0; w < ctx_->params().relin_window; ++w) power = add_mod(power, power, q);
  }
  return rk;
}

BgvEncryptor::BgvEncryptor(BgvContextPtr ctx, BgvPublicKey pk, u64 seed)
    : ctx_(std::move(ctx)), pk_(std::move(pk)), rng_(seed) {}

BgvCiphertext BgvEncryptor::encrypt(std::span<const u64> plain) {
  const std::size_t n = ctx_->degree();
  if (plain.size() != n) throw std::invalid_argument("BgvEncryptor: bad plaintext size");
  const u64 q = ctx_->q();
  const u64 t = ctx_->t();
  const auto u = detail::sample_small(n, q, 0, rng_, true);
  const auto e1 = detail::sample_small(n, q, ctx_->params().noise_sigma, rng_, false);
  const auto e2 = detail::sample_small(n, q, ctx_->params().noise_sigma, rng_, false);
  BgvCiphertext ct;
  ct.c0 = detail::ring_mul(pk_.b, u, q);
  ct.c1 = detail::ring_mul(pk_.a, u, q);
  for (std::size_t i = 0; i < n; ++i) {
    ct.c0[i] = add_mod(ct.c0[i],
                       add_mod(mul_mod(t, e1[i], q), plain[i] % t, q), q);
    ct.c1[i] = add_mod(ct.c1[i], mul_mod(t, e2[i], q), q);
  }
  return ct;
}

BgvDecryptor::BgvDecryptor(BgvContextPtr ctx, BgvSecretKey sk)
    : ctx_(std::move(ctx)), sk_(std::move(sk)) {}

std::vector<u64> BgvDecryptor::decrypt(const BgvCiphertext& ct) const {
  const std::size_t n = ctx_->degree();
  const u64 q = ctx_->q();
  const u64 t = ctx_->t();
  const auto c1s = detail::ring_mul(ct.c1, sk_.s, q);
  std::vector<u64> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const u64 v = add_mod(ct.c0[i], c1s[i], q);
    // Centered lift, then mod t: the message sits in the low bits.
    if (v <= q / 2) {
      out[i] = v % t;
    } else {
      const u64 neg = (q - v) % t;  // |centered| mod t
      out[i] = neg == 0 ? 0 : t - neg;
    }
  }
  return out;
}

BgvEvaluator::BgvEvaluator(BgvContextPtr ctx) : ctx_(std::move(ctx)) {}

BgvCiphertext BgvEvaluator::add(const BgvCiphertext& x, const BgvCiphertext& y) const {
  return {detail::add_vec(x.c0, y.c0, ctx_->q()), detail::add_vec(x.c1, y.c1, ctx_->q())};
}

BgvCiphertext BgvEvaluator::sub(const BgvCiphertext& x, const BgvCiphertext& y) const {
  const u64 q = ctx_->q();
  BgvCiphertext neg = y;
  for (u64& v : neg.c0) v = neg_mod(v, q);
  for (u64& v : neg.c1) v = neg_mod(v, q);
  return add(x, neg);
}

BgvCiphertext BgvEvaluator::add_plain(const BgvCiphertext& x,
                                      std::span<const u64> plain) const {
  const u64 q = ctx_->q();
  BgvCiphertext out = x;
  for (std::size_t i = 0; i < out.c0.size(); ++i) {
    out.c0[i] = add_mod(out.c0[i], plain[i] % ctx_->t(), q);
  }
  return out;
}

BgvCiphertext BgvEvaluator::mul_plain(const BgvCiphertext& x,
                                      std::span<const u64> plain) const {
  const u64 q = ctx_->q();
  std::vector<u64> p(plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) p[i] = plain[i] % ctx_->t();
  return {detail::ring_mul(x.c0, p, q), detail::ring_mul(x.c1, p, q)};
}

BgvCiphertext BgvEvaluator::multiply(const BgvCiphertext& x, const BgvCiphertext& y,
                                     const BgvRelinKey& rk) const {
  const std::size_t n = ctx_->degree();
  const u64 q = ctx_->q();

  // Exact centered tensor, reduced straight back into [0, q) — no rescaling
  // in BGV; the t*e noise multiplies instead.
  const auto d0 = detail::exact_negacyclic_mul(x.c0, y.c0, q);
  auto d1 = detail::exact_negacyclic_mul(x.c0, y.c1, q);
  const auto d1b = detail::exact_negacyclic_mul(x.c1, y.c0, q);
  const auto d2 = detail::exact_negacyclic_mul(x.c1, y.c1, q);

  std::vector<u64> e0(n), e1(n), e2(n);
  for (std::size_t i = 0; i < n; ++i) {
    e0[i] = detail::center_mod(d0[i], q);
    e1[i] = detail::center_mod(d1[i] + d1b[i], q);
    e2[i] = detail::center_mod(d2[i], q);
  }

  const int w = ctx_->params().relin_window;
  const u64 mask = (u64{1} << w) - 1;
  BgvCiphertext out{std::move(e0), std::move(e1)};
  std::vector<u64> digit(n);
  for (std::size_t i = 0; i < ctx_->relin_digits(); ++i) {
    for (std::size_t k = 0; k < n; ++k) {
      digit[k] = (e2[k] >> (w * static_cast<int>(i))) & mask;
    }
    out.c0 = detail::add_vec(out.c0, detail::ring_mul(rk.digits[i].first, digit, q), q);
    out.c1 = detail::add_vec(out.c1, detail::ring_mul(rk.digits[i].second, digit, q), q);
  }
  return out;
}

}  // namespace alchemist::bgv
