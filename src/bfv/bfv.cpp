#include "bfv/bfv.h"

#include "bfv/ring_ops.h"

#include <cmath>
#include <map>
#include <memory>
#include <stdexcept>

#include "common/primes.h"
#include "poly/ntt.h"

namespace alchemist::bfv {

namespace {
// (shared ring helpers live in bfv/ring_ops.h)

// round(t * d / q) mod q for a signed exact tensor coefficient.
u64 scale_round(i128 d, u64 t, u64 q) {
  const bool negative = d < 0;
  const u128 mag = negative ? static_cast<u128>(-d) : static_cast<u128>(d);
  const u128 k = mag / q;
  const u64 r = static_cast<u64>(mag % q);
  // t*k can exceed 64 bits; reduce mod q as we go.
  const u64 whole = mul_mod(static_cast<u64>(k % q), t % q, q);
  const u64 frac = static_cast<u64>((u128{t} * r + q / 2) / q) % q;
  const u64 val = add_mod(whole, frac, q);
  return negative ? neg_mod(val, q) : val;
}

}  // namespace

BfvContext::BfvContext(const BfvParams& params) : params_(params) {
  if (!is_power_of_two(params.n)) {
    throw std::invalid_argument("BfvContext: N must be a power of two");
  }
  if (!is_prime(params.t) || (params.t - 1) % (2 * params.n) != 0) {
    throw std::invalid_argument("BfvContext: t must be prime with t = 1 mod 2N");
  }
  if (params.q_bits < 40 || params.q_bits > 55) {
    throw std::invalid_argument("BfvContext: q_bits must be in [40, 55]");
  }
  // q ≡ 1 (mod 2N) for the NTT *and* q ≡ 1 (mod t) so that q mod t = 1:
  // the Delta*w wrap term alpha*(q mod t) then stays tiny, which is what
  // keeps plain and ciphertext multiplication exact.
  q_ = detail::find_prime_1mod(params.q_bits,
                               2 * static_cast<u64>(params.n) * params.t);
  relin_digits_ =
      (static_cast<std::size_t>(params.q_bits) + params.relin_window - 1) /
      params.relin_window;
}

BfvEncoder::BfvEncoder(BfvContextPtr ctx) : ctx_(std::move(ctx)) {}

std::vector<u64> BfvEncoder::encode(std::span<const u64> values) const {
  return detail::batch_encode(ctx_->degree(), ctx_->t(), values);
}

std::vector<u64> BfvEncoder::decode(std::span<const u64> plain) const {
  return detail::batch_decode(ctx_->degree(), ctx_->t(), plain);
}

BfvKeyGenerator::BfvKeyGenerator(BfvContextPtr ctx, u64 seed)
    : ctx_(std::move(ctx)), rng_(seed) {
  secret_.s = detail::sample_small(ctx_->degree(), ctx_->q(), 0, rng_, /*ternary=*/true);
}

BfvPublicKey BfvKeyGenerator::make_public_key() {
  const std::size_t n = ctx_->degree();
  const u64 q = ctx_->q();
  BfvPublicKey pk;
  pk.a = rng_.uniform_vector(n, q);
  const auto e = detail::sample_small(n, q, ctx_->params().noise_sigma, rng_, false);
  const auto as = detail::ring_mul(pk.a, secret_.s, q);
  pk.b.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    pk.b[i] = neg_mod(add_mod(as[i], e[i], q), q);
  }
  return pk;
}

BfvRelinKey BfvKeyGenerator::make_relin_key() {
  const std::size_t n = ctx_->degree();
  const u64 q = ctx_->q();
  const auto s2 = detail::ring_mul(secret_.s, secret_.s, q);
  BfvRelinKey rk;
  u64 power = 1;  // 2^(w*i) mod q
  for (std::size_t i = 0; i < ctx_->relin_digits(); ++i) {
    std::vector<u64> a = rng_.uniform_vector(n, q);
    const auto e = detail::sample_small(n, q, ctx_->params().noise_sigma, rng_, false);
    const auto as = detail::ring_mul(a, secret_.s, q);
    std::vector<u64> b(n);
    for (std::size_t k = 0; k < n; ++k) {
      b[k] = add_mod(neg_mod(add_mod(as[k], e[k], q), q), mul_mod(power, s2[k], q), q);
    }
    rk.digits.emplace_back(std::move(b), std::move(a));
    for (int w = 0; w < ctx_->params().relin_window; ++w) power = add_mod(power, power, q);
  }
  return rk;
}

BfvEncryptor::BfvEncryptor(BfvContextPtr ctx, BfvPublicKey pk, u64 seed)
    : ctx_(std::move(ctx)), pk_(std::move(pk)), rng_(seed) {}

BfvCiphertext BfvEncryptor::encrypt(std::span<const u64> plain) {
  const std::size_t n = ctx_->degree();
  if (plain.size() != n) throw std::invalid_argument("BfvEncryptor: bad plaintext size");
  const u64 q = ctx_->q();
  const u64 delta = ctx_->delta();
  const auto u = detail::sample_small(n, q, 0, rng_, true);
  const auto e1 = detail::sample_small(n, q, ctx_->params().noise_sigma, rng_, false);
  const auto e2 = detail::sample_small(n, q, ctx_->params().noise_sigma, rng_, false);
  BfvCiphertext ct;
  ct.c0 = detail::ring_mul(pk_.b, u, q);
  ct.c1 = detail::ring_mul(pk_.a, u, q);
  for (std::size_t i = 0; i < n; ++i) {
    ct.c0[i] = add_mod(add_mod(ct.c0[i], e1[i], q),
                       mul_mod(delta, plain[i] % ctx_->t(), q), q);
    ct.c1[i] = add_mod(ct.c1[i], e2[i], q);
  }
  return ct;
}

BfvDecryptor::BfvDecryptor(BfvContextPtr ctx, BfvSecretKey sk)
    : ctx_(std::move(ctx)), sk_(std::move(sk)) {}

std::vector<u64> BfvDecryptor::decrypt(const BfvCiphertext& ct) const {
  const std::size_t n = ctx_->degree();
  const u64 q = ctx_->q();
  const u64 t = ctx_->t();
  const auto c1s = detail::ring_mul(ct.c1, sk_.s, q);
  std::vector<u64> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const u64 v = add_mod(ct.c0[i], c1s[i], q);
    out[i] = static_cast<u64>((u128{t} * v + q / 2) / q) % t;
  }
  return out;
}

double BfvDecryptor::noise_bits(const BfvCiphertext& ct,
                                std::span<const u64> plain) const {
  const std::size_t n = ctx_->degree();
  const u64 q = ctx_->q();
  const u64 delta = ctx_->delta();
  const auto c1s = detail::ring_mul(ct.c1, sk_.s, q);
  double max_noise = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const u64 v = add_mod(ct.c0[i], c1s[i], q);
    const u64 clean = mul_mod(delta, plain[i] % ctx_->t(), q);
    const u64 diff = sub_mod(v, clean, q);
    const double centered = diff <= q / 2 ? static_cast<double>(diff)
                                          : -static_cast<double>(q - diff);
    max_noise = std::max(max_noise, std::abs(centered));
  }
  return max_noise > 0 ? std::log2(max_noise) : 0.0;
}

BfvEvaluator::BfvEvaluator(BfvContextPtr ctx) : ctx_(std::move(ctx)) {}

BfvCiphertext BfvEvaluator::add(const BfvCiphertext& x, const BfvCiphertext& y) const {
  return {detail::add_vec(x.c0, y.c0, ctx_->q()), detail::add_vec(x.c1, y.c1, ctx_->q())};
}

BfvCiphertext BfvEvaluator::negate(const BfvCiphertext& x) const {
  const u64 q = ctx_->q();
  BfvCiphertext out = x;
  for (u64& v : out.c0) v = neg_mod(v, q);
  for (u64& v : out.c1) v = neg_mod(v, q);
  return out;
}

BfvCiphertext BfvEvaluator::sub(const BfvCiphertext& x, const BfvCiphertext& y) const {
  return add(x, negate(y));
}

BfvCiphertext BfvEvaluator::add_plain(const BfvCiphertext& x,
                                      std::span<const u64> plain) const {
  const u64 q = ctx_->q();
  const u64 delta = ctx_->delta();
  BfvCiphertext out = x;
  for (std::size_t i = 0; i < out.c0.size(); ++i) {
    out.c0[i] = add_mod(out.c0[i], mul_mod(delta, plain[i] % ctx_->t(), q), q);
  }
  return out;
}

BfvCiphertext BfvEvaluator::mul_plain(const BfvCiphertext& x,
                                      std::span<const u64> plain) const {
  // Multiply by the *unscaled* plaintext polynomial: Delta*m1*m2 stays at one
  // Delta factor, so no rescale is needed.
  const u64 q = ctx_->q();
  std::vector<u64> p(plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) p[i] = (plain[i] % ctx_->t()) % q;
  return {detail::ring_mul(x.c0, p, q), detail::ring_mul(x.c1, p, q)};
}

BfvCiphertext BfvEvaluator::multiply(const BfvCiphertext& x, const BfvCiphertext& y,
                                     const BfvRelinKey& rk) const {
  const std::size_t n = ctx_->degree();
  const u64 q = ctx_->q();
  const u64 t = ctx_->t();
  

  // Exact signed tensor product.
  const auto d0 = detail::exact_negacyclic_mul(x.c0, y.c0, q);
  auto d1 = detail::exact_negacyclic_mul(x.c0, y.c1, q);
  const auto d1b = detail::exact_negacyclic_mul(x.c1, y.c0, q);
  const auto d2 = detail::exact_negacyclic_mul(x.c1, y.c1, q);
  for (std::size_t i = 0; i < n; ++i) d1[i] += d1b[i];

  // Rescale by t/q with exact rounding.
  std::vector<u64> e0(n), e1(n), e2(n);
  for (std::size_t i = 0; i < n; ++i) {
    e0[i] = scale_round(d0[i], t, q);
    e1[i] = scale_round(d1[i], t, q);
    e2[i] = scale_round(d2[i], t, q);
  }

  // Relinearize e2 with the base-2^w key.
  const int w = ctx_->params().relin_window;
  const u64 mask = (u64{1} << w) - 1;
  BfvCiphertext out{std::move(e0), std::move(e1)};
  std::vector<u64> digit(n);
  for (std::size_t i = 0; i < ctx_->relin_digits(); ++i) {
    for (std::size_t k = 0; k < n; ++k) digit[k] = (e2[k] >> (w * static_cast<int>(i))) & mask;
    out.c0 = detail::add_vec(out.c0, detail::ring_mul(rk.digits[i].first, digit, q), q);
    out.c1 = detail::add_vec(out.c1, detail::ring_mul(rk.digits[i].second, digit, q), q);
  }
  return out;
}

}  // namespace alchemist::bfv
