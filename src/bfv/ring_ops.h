// Shared ring arithmetic for the integer FHE schemes (BFV and BGV):
// mod-q negacyclic products, exact centered tensor products, samplers,
// prime selection and Z_t SIMD batching.
#pragma once

#include <span>
#include <vector>

#include "common/modarith.h"
#include "common/rng.h"

namespace alchemist::bfv::detail {

// Exact negacyclic convolution of centered mod-q polynomials as signed
// 128-bit integers (double-prime NTT + CRT; |result| <= N*(q/2)^2 < 2^118).
std::vector<i128> exact_negacyclic_mul(std::span<const u64> a,
                                       std::span<const u64> b, u64 q);

// In-ring negacyclic product mod q via the single-prime NTT.
std::vector<u64> ring_mul(std::span<const u64> a, std::span<const u64> b, u64 q);

std::vector<u64> add_vec(std::span<const u64> a, std::span<const u64> b, u64 q);

std::vector<u64> sample_small(std::size_t n, u64 q, double sigma, Rng& rng,
                              bool ternary);

// Largest prime below 2^bits with p ≡ 1 (mod step). Throws if none.
u64 find_prime_1mod(int bits, u64 step);

// SIMD batching over Z_t (t prime, t ≡ 1 mod 2N): slot values <-> plaintext
// polynomial coefficients, via the negacyclic NTT mod t.
std::vector<u64> batch_encode(std::size_t n, u64 t, std::span<const u64> values);
std::vector<u64> batch_decode(std::size_t n, u64 t, std::span<const u64> plain);

// Centered reduction of a signed tensor coefficient into [0, q).
u64 center_mod(i128 d, u64 q);

}  // namespace alchemist::bfv::detail
