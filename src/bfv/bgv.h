// BGV: the third classic arithmetic FHE scheme (LSB message encoding).
//
// Where BFV stores the message in the high bits (Delta * m) and rescales
// products by t/q, BGV stores it in the low bits: c0 + c1*s = m + t*e. Adds
// and multiplies act on the message directly modulo t; the tensor product
// needs no scaling (the noise t*e grows instead — this single-modulus
// implementation supports one multiplicative level; production BGV adds
// modulus switching). Batching reuses the negacyclic NTT over Z_t, exactly
// as in BFV.
#pragma once

#include "bfv/bfv.h"

namespace alchemist::bgv {

using bfv::BfvParams;

class BgvContext {
 public:
  explicit BgvContext(const BfvParams& params);
  const BfvParams& params() const { return params_; }
  std::size_t degree() const { return params_.n; }
  u64 q() const { return q_; }
  u64 t() const { return params_.t; }
  std::size_t relin_digits() const { return relin_digits_; }

 private:
  BfvParams params_;
  u64 q_;
  std::size_t relin_digits_;
};

using BgvContextPtr = std::shared_ptr<const BgvContext>;

struct BgvCiphertext {
  std::vector<u64> c0;
  std::vector<u64> c1;
};

struct BgvSecretKey {
  std::vector<u64> s;
};

struct BgvPublicKey {
  std::vector<u64> b;  // -(a*s + t*e)
  std::vector<u64> a;
};

struct BgvRelinKey {
  // digit i: (b_i, a_i) with b_i = -(a_i s + t e_i) + 2^(w*i) s^2.
  std::vector<std::pair<std::vector<u64>, std::vector<u64>>> digits;
};

// Batching: identical plaintext ring to BFV — reuse bfv::BfvEncoder with a
// BfvContext of the same (n, t), or the helpers below.
std::vector<u64> bgv_encode(const BgvContext& ctx, std::span<const u64> values);
std::vector<u64> bgv_decode(const BgvContext& ctx, std::span<const u64> plain);

class BgvKeyGenerator {
 public:
  BgvKeyGenerator(BgvContextPtr ctx, u64 seed = 1);
  const BgvSecretKey& secret_key() const { return secret_; }
  BgvPublicKey make_public_key();
  BgvRelinKey make_relin_key();

 private:
  BgvContextPtr ctx_;
  Rng rng_;
  BgvSecretKey secret_;
};

class BgvEncryptor {
 public:
  BgvEncryptor(BgvContextPtr ctx, BgvPublicKey pk, u64 seed = 2);
  BgvCiphertext encrypt(std::span<const u64> plain);

 private:
  BgvContextPtr ctx_;
  BgvPublicKey pk_;
  Rng rng_;
};

class BgvDecryptor {
 public:
  BgvDecryptor(BgvContextPtr ctx, BgvSecretKey sk);
  std::vector<u64> decrypt(const BgvCiphertext& ct) const;

 private:
  BgvContextPtr ctx_;
  BgvSecretKey sk_;
};

class BgvEvaluator {
 public:
  explicit BgvEvaluator(BgvContextPtr ctx);
  BgvCiphertext add(const BgvCiphertext& x, const BgvCiphertext& y) const;
  BgvCiphertext sub(const BgvCiphertext& x, const BgvCiphertext& y) const;
  BgvCiphertext add_plain(const BgvCiphertext& x, std::span<const u64> plain) const;
  BgvCiphertext mul_plain(const BgvCiphertext& x, std::span<const u64> plain) const;
  // Tensor + relinearize: one multiplicative level at these parameters.
  BgvCiphertext multiply(const BgvCiphertext& x, const BgvCiphertext& y,
                         const BgvRelinKey& rk) const;

 private:
  BgvContextPtr ctx_;
};

}  // namespace alchemist::bgv
