#include "tfhe/lut.h"

#include <stdexcept>

namespace alchemist::tfhe {

namespace {

constexpr u64 kEighth = u64{1} << 61;

void check_width(const EncInt& value, const BootstrapContext& ctx) {
  const std::size_t w = value.width();
  if (w == 0) throw std::invalid_argument("lut: empty integer");
  if ((u64{2} << w) > ctx.params.degree) {
    throw std::invalid_argument(
        "lut: need 2^(width+1) <= N for the test-vector resolution");
  }
}

}  // namespace

LweSample pack_bits(const EncInt& value, const BootstrapContext& ctx) {
  check_width(value, ctx);
  const std::size_t w = value.width();
  const std::size_t dim = value.bits[0].dimension();

  LweSample packed = lwe_trivial(dim, 0);
  for (std::size_t i = 0; i < w; ++i) {
    // PBS the gate bit (phase ±1/8) onto amplitude ±2^(62-w+i), then shift
    // by the same amount: contribution b_i * 2^(63-w+i).
    const Torus amp = u64{1} << (62 - w + i);
    const TorusPoly tv = make_constant_test_poly(ctx.params.degree, amp);
    LweSample scaled = programmable_bootstrap(value.bits[i], tv, ctx);
    scaled.b += amp;
    packed += scaled;
  }
  return packed;
}

EncInt apply_lut(const EncInt& value, const std::function<u64(u64)>& f,
                 const BootstrapContext& ctx) {
  check_width(value, ctx);
  const std::size_t w = value.width();
  const u64 space = u64{2} << w;  // 2^(w+1): messages occupy the lower half
  const u64 mask = (u64{1} << w) - 1;

  const LweSample packed = pack_bits(value, ctx);
  EncInt out;
  out.bits.reserve(w);
  for (std::size_t j = 0; j < w; ++j) {
    const TorusPoly tv = make_lut_test_poly(
        ctx.params.degree, space, [&](u64 m) -> Torus {
          const u64 bit = (f(m & mask) >> j) & 1;
          return bit ? kEighth : ~kEighth + 1;  // ±1/8 gate encoding
        });
    out.bits.push_back(programmable_bootstrap(packed, tv, ctx));
  }
  return out;
}

}  // namespace alchemist::tfhe
