#include "tfhe/torus_poly.h"

#include <map>
#include <memory>
#include <stdexcept>

#include "common/primes.h"
#include "poly/ntt.h"

namespace alchemist::tfhe {

TorusPoly& TorusPoly::operator+=(const TorusPoly& other) {
  if (other.degree() != degree()) throw std::invalid_argument("TorusPoly::+=: size mismatch");
  for (std::size_t i = 0; i < coeffs_.size(); ++i) coeffs_[i] += other.coeffs_[i];
  return *this;
}

TorusPoly& TorusPoly::operator-=(const TorusPoly& other) {
  if (other.degree() != degree()) throw std::invalid_argument("TorusPoly::-=: size mismatch");
  for (std::size_t i = 0; i < coeffs_.size(); ++i) coeffs_[i] -= other.coeffs_[i];
  return *this;
}

TorusPoly& TorusPoly::negate() {
  for (Torus& c : coeffs_) c = ~c + 1;
  return *this;
}

TorusPoly TorusPoly::rotate(u64 e) const {
  const std::size_t n = degree();
  const u64 two_n = 2 * static_cast<u64>(n);
  e %= two_n;
  TorusPoly out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const u64 idx = (static_cast<u64>(i) + e) % two_n;
    if (idx < n) {
      out[idx] += coeffs_[i];
    } else {
      out[idx - n] -= coeffs_[i];
    }
  }
  return out;
}

TorusPoly negacyclic_mul_schoolbook(const std::vector<i64>& a, const TorusPoly& b) {
  const std::size_t n = b.degree();
  if (a.size() != n) throw std::invalid_argument("negacyclic_mul_schoolbook: size mismatch");
  TorusPoly out(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] == 0) continue;
    const u64 ai = static_cast<u64>(a[i]);  // wrap-around signed -> mod 2^64
    for (std::size_t j = 0; j < n; ++j) {
      const u64 prod = ai * b[j];  // exact mod 2^64
      if (i + j < n) {
        out[i + j] += prod;
      } else {
        out[i + j - n] -= prod;
      }
    }
  }
  return out;
}

TorusNttContext::TorusNttContext(std::size_t n) : n_(n) {
  if (!is_power_of_two(n)) {
    throw std::invalid_argument("TorusNttContext: N must be a power of two");
  }
  const auto primes = generate_ntt_primes(62, n, 2);
  primes_ = {primes[0], primes[1]};
  p1_inv_mod_p2_ = inv_mod(primes_[0] % primes_[1], primes_[1]);
  // Warm the NTT table cache.
  get_ntt_table(primes_[0], n);
  get_ntt_table(primes_[1], n);
}

TorusNttContext::DomainPoly TorusNttContext::forward_int(const std::vector<i64>& a) const {
  if (a.size() != n_) throw std::invalid_argument("forward_int: size mismatch");
  DomainPoly out;
  for (int p = 0; p < 2; ++p) {
    const u64 q = primes_[p];
    out.residues[p].resize(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      out.residues[p][i] = a[i] >= 0 ? static_cast<u64>(a[i]) % q
                                     : q - static_cast<u64>(-a[i]) % q;
    }
    get_ntt_table(q, n_).forward(out.residues[p]);
  }
  return out;
}

TorusNttContext::DomainPoly TorusNttContext::forward_torus(const TorusPoly& b) const {
  if (b.degree() != n_) throw std::invalid_argument("forward_torus: size mismatch");
  DomainPoly out;
  for (int p = 0; p < 2; ++p) {
    const u64 q = primes_[p];
    out.residues[p].resize(n_);
    for (std::size_t i = 0; i < n_; ++i) out.residues[p][i] = b[i] % q;
    get_ntt_table(q, n_).forward(out.residues[p]);
  }
  return out;
}

TorusNttContext::DomainPoly TorusNttContext::zero() const {
  DomainPoly out;
  out.residues[0].assign(n_, 0);
  out.residues[1].assign(n_, 0);
  return out;
}

void TorusNttContext::mul_accumulate(DomainPoly& acc, const DomainPoly& a,
                                     const DomainPoly& b) const {
  for (int p = 0; p < 2; ++p) {
    const Modulus& mod = get_ntt_table(primes_[p], n_).mod();
    const u64 q = primes_[p];
    for (std::size_t i = 0; i < n_; ++i) {
      acc.residues[p][i] =
          add_mod(acc.residues[p][i], mod.mul(a.residues[p][i], b.residues[p][i]), q);
    }
  }
}

TorusPoly TorusNttContext::inverse(const DomainPoly& acc) const {
  std::array<std::vector<u64>, 2> res = acc.residues;
  for (int p = 0; p < 2; ++p) get_ntt_table(primes_[p], n_).inverse(res[p]);

  const u128 big_p = u128{primes_[0]} * primes_[1];
  const u128 half_p = big_p >> 1;
  TorusPoly out(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    // Garner: x = x1 + p1 * t, t = (x2 - x1) p1^{-1} mod p2; x in [0, p1*p2).
    const u64 x1 = res[0][i];
    const u64 x2 = res[1][i];
    const u64 t = mul_mod(sub_mod(x2, x1 % primes_[1], primes_[1]), p1_inv_mod_p2_,
                          primes_[1]);
    const u128 x = u128{x1} + u128{primes_[0]} * t;
    // Center at p1*p2/2, then reduce mod 2^64 (wrap-around handles the sign).
    if (x > half_p) {
      out[i] = static_cast<u64>(x) - static_cast<u64>(big_p);
    } else {
      out[i] = static_cast<u64>(x);
    }
  }
  return out;
}

const TorusNttContext& TorusNttContext::get(std::size_t n) {
  static std::map<std::size_t, std::unique_ptr<TorusNttContext>> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    it = cache.emplace(n, std::make_unique<TorusNttContext>(n)).first;
  }
  return *it->second;
}

}  // namespace alchemist::tfhe
