// Multi-bit programmable lookup tables over encrypted integers.
//
// This is the "programmable" in programmable bootstrapping: an arbitrary
// w-bit -> w-bit function evaluated under encryption. Each input bit is
// first re-amplituded by one PBS so the bits sum into a single LWE sample
// whose phase encodes the integer in the lower half-torus (the negacyclic
// constraint), then one PBS per output bit reads f(x) out of a lookup-table
// test polynomial — 2w bootstraps total, independent of f's complexity.
//
// Requires 2^(w+1) <= N (each message needs at least one test-vector slot).
#pragma once

#include <functional>

#include "tfhe/integer.h"

namespace alchemist::tfhe {

// One LWE sample with phase value / 2^(w+1): bit i is rescaled to amplitude
// 2^(63-w+i) by a constant-test-vector PBS, then the shifted bits sum.
LweSample pack_bits(const EncInt& value, const BootstrapContext& ctx);

// f: [0, 2^w) -> [0, 2^w), arbitrary. Returns Enc(f(x)).
EncInt apply_lut(const EncInt& value, const std::function<u64(u64)>& f,
                 const BootstrapContext& ctx);

}  // namespace alchemist::tfhe
