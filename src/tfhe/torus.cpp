#include "tfhe/torus.h"

#include <stdexcept>

namespace alchemist::tfhe {

std::vector<i64> gadget_decompose(Torus t, int bg_bits, std::size_t l) {
  if (bg_bits <= 0 || l == 0 || static_cast<std::size_t>(bg_bits) * l > 63) {
    throw std::invalid_argument("gadget_decompose: bad base/length");
  }
  const u64 bg = u64{1} << bg_bits;
  const u64 half_bg = bg >> 1;
  const u64 mask = bg - 1;

  // Offset trick (TFHE-lib): adding half the base at every level plus the
  // rounding offset turns truncation into centered rounding.
  u64 offset = u64{1} << (63 - l * static_cast<std::size_t>(bg_bits));  // rounding
  for (std::size_t i = 1; i <= l; ++i) {
    offset += half_bg << (64 - i * static_cast<std::size_t>(bg_bits));
  }
  const u64 shifted = t + offset;

  std::vector<i64> digits(l);
  for (std::size_t i = 1; i <= l; ++i) {
    const u64 raw = (shifted >> (64 - i * static_cast<std::size_t>(bg_bits))) & mask;
    digits[i - 1] = static_cast<i64>(raw) - static_cast<i64>(half_bg);
  }
  return digits;
}

std::vector<Torus> gadget_scales(int bg_bits, std::size_t l) {
  std::vector<Torus> scales(l);
  for (std::size_t i = 1; i <= l; ++i) {
    scales[i - 1] = u64{1} << (64 - i * static_cast<std::size_t>(bg_bits));
  }
  return scales;
}

}  // namespace alchemist::tfhe
