#include "tfhe/lwe.h"

#include <stdexcept>

namespace alchemist::tfhe {

LweSample& LweSample::operator+=(const LweSample& other) {
  if (other.dimension() != dimension()) throw std::invalid_argument("LweSample::+=: dim mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += other.a[i];
  b += other.b;
  return *this;
}

LweSample& LweSample::operator-=(const LweSample& other) {
  if (other.dimension() != dimension()) throw std::invalid_argument("LweSample::-=: dim mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] -= other.a[i];
  b -= other.b;
  return *this;
}

LweSample& LweSample::negate() {
  for (Torus& x : a) x = ~x + 1;
  b = ~b + 1;
  return *this;
}

LweSample& LweSample::mul_int(i64 c) {
  const u64 cw = static_cast<u64>(c);
  for (Torus& x : a) x *= cw;
  b *= cw;
  return *this;
}

LweKey lwe_keygen(std::size_t n, Rng& rng) {
  LweKey key;
  key.s.resize(n);
  for (int& bit : key.s) bit = static_cast<int>(rng.next() & 1);
  return key;
}

LweSample lwe_trivial(std::size_t n, Torus mu) {
  LweSample out;
  out.a.assign(n, 0);
  out.b = mu;
  return out;
}

LweSample lwe_encrypt(Torus mu, const LweKey& key, double sigma, Rng& rng) {
  LweSample out;
  out.a.resize(key.s.size());
  Torus dot = 0;
  for (std::size_t i = 0; i < out.a.size(); ++i) {
    out.a[i] = rng.next();
    dot += static_cast<u64>(static_cast<i64>(key.s[i])) * out.a[i];
  }
  const i64 noise = rng.gaussian_signed(sigma * 0x1.0p64);
  out.b = dot + mu + static_cast<u64>(noise);
  return out;
}

Torus lwe_phase(const LweSample& sample, const LweKey& key) {
  if (sample.dimension() != key.s.size()) {
    throw std::invalid_argument("lwe_phase: dimension mismatch");
  }
  Torus dot = 0;
  for (std::size_t i = 0; i < sample.a.size(); ++i) {
    dot += static_cast<u64>(static_cast<i64>(key.s[i])) * sample.a[i];
  }
  return sample.b - dot;
}

u64 lwe_decrypt(const LweSample& sample, const LweKey& key, u64 space) {
  return torus_to_message(lwe_phase(sample, key), space);
}

}  // namespace alchemist::tfhe
