#include "tfhe/trlwe.h"

#include <stdexcept>

namespace alchemist::tfhe {

TrlweSample& TrlweSample::operator+=(const TrlweSample& other) {
  if (other.k() != k() || other.degree() != degree()) {
    throw std::invalid_argument("TrlweSample::+=: shape mismatch");
  }
  for (std::size_t j = 0; j < a.size(); ++j) a[j] += other.a[j];
  b += other.b;
  return *this;
}

TrlweSample& TrlweSample::operator-=(const TrlweSample& other) {
  if (other.k() != k() || other.degree() != degree()) {
    throw std::invalid_argument("TrlweSample::-=: shape mismatch");
  }
  for (std::size_t j = 0; j < a.size(); ++j) a[j] -= other.a[j];
  b -= other.b;
  return *this;
}

TrlweSample TrlweSample::rotate(u64 e) const {
  TrlweSample out;
  out.a.reserve(a.size());
  for (const TorusPoly& aj : a) out.a.push_back(aj.rotate(e));
  out.b = b.rotate(e);
  return out;
}

TrlweKey trlwe_keygen(const TfheParams& params, Rng& rng) {
  TrlweKey key;
  key.s.resize(params.k);
  for (auto& poly : key.s) {
    poly.resize(params.degree);
    for (i64& bit : poly) bit = static_cast<i64>(rng.next() & 1);
  }
  return key;
}

TrlweSample trlwe_trivial(const TfheParams& params, TorusPoly message) {
  TrlweSample out;
  out.a.assign(params.k, TorusPoly(params.degree));
  out.b = std::move(message);
  return out;
}

TrlweSample trlwe_encrypt_zero(const TfheParams& params, const TrlweKey& key,
                               Rng& rng) {
  const std::size_t n = params.degree;
  const TorusNttContext& ctx = TorusNttContext::get(n);
  TrlweSample out;
  out.a.resize(params.k);
  TorusPoly acc(n);
  for (std::size_t j = 0; j < params.k; ++j) {
    out.a[j] = TorusPoly(n);
    for (std::size_t i = 0; i < n; ++i) out.a[j][i] = rng.next();
    auto dom = ctx.zero();
    ctx.mul_accumulate(dom, ctx.forward_int(key.s[j]), ctx.forward_torus(out.a[j]));
    acc += ctx.inverse(dom);
  }
  out.b = TorusPoly(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.b[i] = acc[i] + static_cast<u64>(rng.gaussian_signed(params.trlwe_sigma * 0x1.0p64));
  }
  return out;
}

TrlweSample trlwe_encrypt(const TfheParams& params, const TrlweKey& key,
                          const TorusPoly& message, Rng& rng) {
  TrlweSample out = trlwe_encrypt_zero(params, key, rng);
  out.b += message;
  return out;
}

TorusPoly trlwe_phase(const TrlweSample& sample, const TrlweKey& key) {
  const std::size_t n = sample.degree();
  if (key.degree() != n || key.s.size() != sample.k()) {
    throw std::invalid_argument("trlwe_phase: shape mismatch");
  }
  const TorusNttContext& ctx = TorusNttContext::get(n);
  TorusPoly phase = sample.b;
  for (std::size_t j = 0; j < sample.k(); ++j) {
    auto dom = ctx.zero();
    ctx.mul_accumulate(dom, ctx.forward_int(key.s[j]), ctx.forward_torus(sample.a[j]));
    phase -= ctx.inverse(dom);
  }
  return phase;
}

TgswNtt tgsw_encrypt(const TfheParams& params, const TrlweKey& key, i64 message,
                     Rng& rng) {
  const std::size_t n = params.degree;
  const TorusNttContext& ctx = TorusNttContext::get(n);
  const auto scales = gadget_scales(params.bg_bits, params.l);

  TgswNtt out;
  out.k = params.k;
  out.l = params.l;
  out.bg_bits = params.bg_bits;
  out.degree = n;
  out.rows.resize((params.k + 1) * params.l);

  for (std::size_t p = 0; p <= params.k; ++p) {
    for (std::size_t i = 0; i < params.l; ++i) {
      TrlweSample row = trlwe_encrypt_zero(params, key, rng);
      const Torus payload = static_cast<u64>(message) * scales[i];
      if (p < params.k) {
        row.a[p][0] += payload;
      } else {
        row.b[0] += payload;
      }
      auto& domain_row = out.rows[p * params.l + i];
      domain_row.reserve(params.k + 1);
      for (std::size_t c = 0; c < params.k; ++c) {
        domain_row.push_back(ctx.forward_torus(row.a[c]));
      }
      domain_row.push_back(ctx.forward_torus(row.b));
    }
  }
  return out;
}

TrlweSample external_product(const TgswNtt& g, const TrlweSample& c) {
  const std::size_t n = c.degree();
  if (g.degree != n || g.k != c.k()) {
    throw std::invalid_argument("external_product: shape mismatch");
  }
  const TorusNttContext& ctx = TorusNttContext::get(n);

  std::vector<TorusNttContext::DomainPoly> acc(g.k + 1, ctx.zero());
  std::vector<i64> digit_poly(n);
  for (std::size_t p = 0; p <= g.k; ++p) {
    const TorusPoly& comp = p < g.k ? c.a[p] : c.b;
    // Decompose the whole component coefficient-wise, one digit layer at a
    // time, so each layer forms an integer polynomial.
    std::vector<std::vector<i64>> layers(g.l, std::vector<i64>(n));
    for (std::size_t t = 0; t < n; ++t) {
      const auto digits = gadget_decompose(comp[t], g.bg_bits, g.l);
      for (std::size_t i = 0; i < g.l; ++i) layers[i][t] = digits[i];
    }
    for (std::size_t i = 0; i < g.l; ++i) {
      const auto dom = ctx.forward_int(layers[i]);
      const auto& row = g.rows[p * g.l + i];
      for (std::size_t c2 = 0; c2 <= g.k; ++c2) {
        ctx.mul_accumulate(acc[c2], dom, row[c2]);
      }
    }
  }

  TrlweSample out;
  out.a.reserve(g.k);
  for (std::size_t c2 = 0; c2 < g.k; ++c2) out.a.push_back(ctx.inverse(acc[c2]));
  out.b = ctx.inverse(acc[g.k]);
  return out;
}

TrlweSample cmux(const TgswNtt& bit, const TrlweSample& c0, const TrlweSample& c1) {
  TrlweSample diff = c1;
  diff -= c0;
  TrlweSample out = external_product(bit, diff);
  out += c0;
  return out;
}

LweSample sample_extract(const TrlweSample& c) {
  const std::size_t n = c.degree();
  LweSample out;
  out.a.resize(c.k() * n);
  for (std::size_t j = 0; j < c.k(); ++j) {
    out.a[j * n] = c.a[j][0];
    for (std::size_t i = 1; i < n; ++i) {
      out.a[j * n + i] = ~c.a[j][n - i] + 1;  // -a_j[N-i] mod 2^64
    }
  }
  out.b = c.b[0];
  return out;
}

LweKey extract_key(const TrlweKey& key) {
  LweKey out;
  out.s.reserve(key.s.size() * key.degree());
  for (const auto& poly : key.s) {
    for (i64 bit : poly) out.s.push_back(static_cast<int>(bit));
  }
  return out;
}

}  // namespace alchemist::tfhe
