// TRLWE (ring-LWE over the torus) and TGSW with exact NTT-domain products.
#pragma once

#include <vector>

#include "common/rng.h"
#include "tfhe/lwe.h"
#include "tfhe/params.h"
#include "tfhe/torus_poly.h"

namespace alchemist::tfhe {

struct TrlweKey {
  std::vector<std::vector<i64>> s;  // k binary polynomials
  std::size_t degree() const { return s.empty() ? 0 : s[0].size(); }
};

// b = sum_j a_j * s_j + m + e.
struct TrlweSample {
  std::vector<TorusPoly> a;  // k mask polynomials
  TorusPoly b;

  std::size_t k() const { return a.size(); }
  std::size_t degree() const { return b.degree(); }

  TrlweSample& operator+=(const TrlweSample& other);
  TrlweSample& operator-=(const TrlweSample& other);
  // Negacyclic rotation of every component by X^e.
  TrlweSample rotate(u64 e) const;
};

TrlweKey trlwe_keygen(const TfheParams& params, Rng& rng);

TrlweSample trlwe_trivial(const TfheParams& params, TorusPoly message);
TrlweSample trlwe_encrypt_zero(const TfheParams& params, const TrlweKey& key, Rng& rng);
TrlweSample trlwe_encrypt(const TfheParams& params, const TrlweKey& key,
                          const TorusPoly& message, Rng& rng);

// b - sum_j a_j * s_j (exact).
TorusPoly trlwe_phase(const TrlweSample& sample, const TrlweKey& key);

// TGSW ciphertext of a small integer scalar, stored directly in the NTT
// domain for the external product. Rows (p, i) for p in [0, k], i in [1, l]:
// TRLWE(0) + m * 2^(64 - i*bg_bits) on component p.
struct TgswNtt {
  // rows[p*l + (i-1)][component]
  std::vector<std::vector<TorusNttContext::DomainPoly>> rows;
  std::size_t k = 1;
  std::size_t l = 3;
  int bg_bits = 7;
  std::size_t degree = 0;
};

TgswNtt tgsw_encrypt(const TfheParams& params, const TrlweKey& key, i64 message,
                     Rng& rng);

// External product: TGSW(m) ⊡ TRLWE(mu) = TRLWE(m * mu) (plus gadget noise).
TrlweSample external_product(const TgswNtt& g, const TrlweSample& c);

// CMux: selects c0 if the TGSW encrypts 0, c1 if it encrypts 1.
TrlweSample cmux(const TgswNtt& bit, const TrlweSample& c0, const TrlweSample& c1);

// Extract the constant coefficient as an LWE sample of dimension k*N.
LweSample sample_extract(const TrlweSample& c);
// The LWE key the extraction decrypts under.
LweKey extract_key(const TrlweKey& key);

}  // namespace alchemist::tfhe
