#include "tfhe/bootstrap.h"

#include <stdexcept>

namespace alchemist::tfhe {

KeySwitchKey make_keyswitch_key(const LweKey& from, const LweKey& to,
                                int base_bits, std::size_t length, double sigma,
                                Rng& rng) {
  KeySwitchKey out;
  out.base_bits = base_bits;
  out.length = length;
  const auto scales = gadget_scales(base_bits, length);
  out.ks.resize(from.s.size());
  for (std::size_t i = 0; i < from.s.size(); ++i) {
    out.ks[i].reserve(length);
    for (std::size_t j = 0; j < length; ++j) {
      // Signed source bits (ternary CKKS secrets) flip the payload sign.
      const Torus payload =
          static_cast<u64>(static_cast<i64>(from.s[i])) * scales[j];
      out.ks[i].push_back(lwe_encrypt(payload, to, sigma, rng));
    }
  }
  return out;
}

LweSample keyswitch(const LweSample& in, const KeySwitchKey& ksk) {
  if (in.dimension() != ksk.ks.size()) {
    throw std::invalid_argument("keyswitch: dimension mismatch");
  }
  const std::size_t target_dim = ksk.ks[0][0].dimension();
  LweSample out = lwe_trivial(target_dim, in.b);
  for (std::size_t i = 0; i < in.dimension(); ++i) {
    const auto digits = gadget_decompose(in.a[i], ksk.base_bits, ksk.length);
    for (std::size_t j = 0; j < ksk.length; ++j) {
      if (digits[j] == 0) continue;
      LweSample scaled = ksk.ks[i][j];
      scaled.mul_int(digits[j]);
      out -= scaled;
    }
  }
  return out;
}

BootstrapContext make_bootstrap_context(const TfheParams& params,
                                        const LweKey& lwe_key,
                                        const TrlweKey& trlwe_key, Rng& rng) {
  BootstrapContext ctx;
  ctx.params = params;
  ctx.bk.reserve(params.n_lwe);
  for (std::size_t i = 0; i < params.n_lwe; ++i) {
    ctx.bk.push_back(tgsw_encrypt(params, trlwe_key, lwe_key.s[i], rng));
  }
  ctx.ksk = make_keyswitch_key(extract_key(trlwe_key), lwe_key, params.ks_base_bits,
                               params.ks_length, params.lwe_sigma, rng);
  return ctx;
}

TrlweSample blind_rotate(const TrlweSample& test_vector,
                         const std::vector<u64>& bara, u64 barb,
                         const std::vector<TgswNtt>& bk) {
  const u64 two_n = 2 * static_cast<u64>(test_vector.degree());
  TrlweSample acc = test_vector.rotate((two_n - barb % two_n) % two_n);
  for (std::size_t i = 0; i < bara.size(); ++i) {
    const u64 shift = bara[i] % two_n;
    if (shift == 0) continue;
    acc = cmux(bk[i], acc, acc.rotate(shift));
  }
  return acc;
}

LweSample programmable_bootstrap(const LweSample& in, const TorusPoly& test_poly,
                                 const BootstrapContext& ctx) {
  const std::size_t n = ctx.params.degree;
  if (in.dimension() != ctx.params.n_lwe) {
    throw std::invalid_argument("programmable_bootstrap: dimension mismatch");
  }
  // Modulus switch to Z_2N.
  std::vector<u64> bara(in.dimension());
  for (std::size_t i = 0; i < in.dimension(); ++i) bara[i] = torus_to_z2n(in.a[i], n);
  const u64 barb = torus_to_z2n(in.b, n);

  const TrlweSample rotated =
      blind_rotate(trlwe_trivial(ctx.params, test_poly), bara, barb, ctx.bk);
  return keyswitch(sample_extract(rotated), ctx.ksk);
}

TorusPoly make_constant_test_poly(std::size_t degree, Torus mu) {
  TorusPoly v(degree);
  for (std::size_t i = 0; i < degree; ++i) v[i] = mu;
  return v;
}

TorusPoly make_lut_test_poly(std::size_t degree, u64 space,
                             const std::function<Torus(u64)>& f) {
  TorusPoly v(degree);
  for (std::size_t j = 0; j < degree; ++j) {
    // Slot j covers phases around j; map to the message whose switched phase
    // lands here: m ≈ j * space / 2N.
    const u64 m = (j * space + degree) / (2 * degree);  // rounded
    v[j] = f(m % space);
  }
  return v;
}

namespace {

constexpr u64 kEighth = u64{1} << 61;  // 1/8 on the torus

LweSample bool_bootstrap(LweSample linear, const BootstrapContext& ctx) {
  const TorusPoly tv = make_constant_test_poly(ctx.params.degree, kEighth);
  return programmable_bootstrap(linear, tv, ctx);
}

}  // namespace

LweSample encrypt_bit(bool bit, const LweKey& key, double sigma, Rng& rng) {
  return lwe_encrypt(bit ? kEighth : ~kEighth + 1, key, sigma, rng);
}

bool decrypt_bit(const LweSample& sample, const LweKey& key) {
  return static_cast<i64>(lwe_phase(sample, key)) > 0;
}

LweSample gate_nand(const LweSample& a, const LweSample& b, const BootstrapContext& ctx) {
  LweSample linear = lwe_trivial(a.dimension(), kEighth);
  linear -= a;
  linear -= b;
  return bool_bootstrap(std::move(linear), ctx);
}

LweSample gate_and(const LweSample& a, const LweSample& b, const BootstrapContext& ctx) {
  LweSample linear = lwe_trivial(a.dimension(), ~kEighth + 1);
  linear += a;
  linear += b;
  return bool_bootstrap(std::move(linear), ctx);
}

LweSample gate_or(const LweSample& a, const LweSample& b, const BootstrapContext& ctx) {
  LweSample linear = lwe_trivial(a.dimension(), kEighth);
  linear += a;
  linear += b;
  return bool_bootstrap(std::move(linear), ctx);
}

LweSample gate_nor(const LweSample& a, const LweSample& b, const BootstrapContext& ctx) {
  LweSample linear = lwe_trivial(a.dimension(), ~kEighth + 1);
  linear -= a;
  linear -= b;
  return bool_bootstrap(std::move(linear), ctx);
}

LweSample gate_xor(const LweSample& a, const LweSample& b, const BootstrapContext& ctx) {
  LweSample linear = lwe_trivial(a.dimension(), u64{1} << 62);  // 1/4
  LweSample sum = a;
  sum += b;
  sum.mul_int(2);
  linear += sum;
  return bool_bootstrap(std::move(linear), ctx);
}

LweSample gate_xnor(const LweSample& a, const LweSample& b, const BootstrapContext& ctx) {
  LweSample linear = lwe_trivial(a.dimension(), ~(u64{1} << 62) + 1);  // -1/4
  LweSample sum = a;
  sum += b;
  sum.mul_int(2);
  linear -= sum;  // -2(a+b) - 1/4
  return bool_bootstrap(std::move(linear), ctx);
}

LweSample gate_not(const LweSample& a) {
  LweSample out = a;
  out.negate();
  return out;
}

LweSample gate_mux(const LweSample& sel, const LweSample& t, const LweSample& f,
                   const BootstrapContext& ctx) {
  const LweSample picked_t = gate_and(sel, t, ctx);
  const LweSample picked_f = gate_and(gate_not(sel), f, ctx);
  return gate_or(picked_t, picked_f, ctx);
}

}  // namespace alchemist::tfhe
