#include "tfhe/integer.h"

#include <stdexcept>

namespace alchemist::tfhe {

namespace {

constexpr u64 kEighth = u64{1} << 61;  // +1/8: encrypted "true"

void check_widths(const EncInt& a, const EncInt& b, const char* op) {
  if (a.width() != b.width() || a.width() == 0) {
    throw std::invalid_argument(std::string("EncInt ") + op + ": width mismatch");
  }
}

// Full adder on encrypted bits: (sum, carry).
std::pair<LweSample, LweSample> full_add(const LweSample& a, const LweSample& b,
                                         const LweSample& carry,
                                         const BootstrapContext& ctx) {
  const LweSample axb = gate_xor(a, b, ctx);
  LweSample sum = gate_xor(axb, carry, ctx);
  LweSample cout = gate_or(gate_and(a, b, ctx), gate_and(carry, axb, ctx), ctx);
  return {std::move(sum), std::move(cout)};
}

LweSample false_bit(std::size_t lwe_dim) {
  return lwe_trivial(lwe_dim, ~kEighth + 1);
}

LweSample true_bit(std::size_t lwe_dim) { return lwe_trivial(lwe_dim, kEighth); }

}  // namespace

EncInt encrypt_int(u64 value, std::size_t width, const LweKey& key, double sigma,
                   Rng& rng) {
  EncInt out;
  out.bits.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    out.bits.push_back(encrypt_bit((value >> i) & 1, key, sigma, rng));
  }
  return out;
}

u64 decrypt_int(const EncInt& value, const LweKey& key) {
  u64 out = 0;
  for (std::size_t i = 0; i < value.width(); ++i) {
    if (decrypt_bit(value.bits[i], key)) out |= u64{1} << i;
  }
  return out;
}

EncInt trivial_int(u64 value, std::size_t width, std::size_t lwe_dim) {
  EncInt out;
  out.bits.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    out.bits.push_back((value >> i) & 1 ? true_bit(lwe_dim) : false_bit(lwe_dim));
  }
  return out;
}

EncInt add(const EncInt& a, const EncInt& b, const BootstrapContext& ctx) {
  check_widths(a, b, "add");
  EncInt out;
  out.bits.reserve(a.width());
  LweSample carry = false_bit(a.bits[0].dimension());
  for (std::size_t i = 0; i < a.width(); ++i) {
    auto [sum, cout] = full_add(a.bits[i], b.bits[i], carry, ctx);
    out.bits.push_back(std::move(sum));
    carry = std::move(cout);
  }
  return out;
}

EncInt sub(const EncInt& a, const EncInt& b, const BootstrapContext& ctx) {
  check_widths(a, b, "sub");
  // a - b = a + ~b + 1 (two's complement): seed the carry with 1.
  EncInt out;
  out.bits.reserve(a.width());
  LweSample carry = true_bit(a.bits[0].dimension());
  for (std::size_t i = 0; i < a.width(); ++i) {
    auto [sum, cout] = full_add(a.bits[i], gate_not(b.bits[i]), carry, ctx);
    out.bits.push_back(std::move(sum));
    carry = std::move(cout);
  }
  return out;
}

LweSample less_than(const EncInt& a, const EncInt& b, const BootstrapContext& ctx) {
  check_widths(a, b, "less_than");
  // Scan from LSB: lt = (a_i < b_i) or (a_i == b_i and lt_so_far).
  LweSample lt = false_bit(a.bits[0].dimension());
  for (std::size_t i = 0; i < a.width(); ++i) {
    const LweSample ai_lt = gate_and(gate_not(a.bits[i]), b.bits[i], ctx);
    const LweSample eq = gate_xnor(a.bits[i], b.bits[i], ctx);
    lt = gate_or(ai_lt, gate_and(eq, lt, ctx), ctx);
  }
  return lt;
}

LweSample equal(const EncInt& a, const EncInt& b, const BootstrapContext& ctx) {
  check_widths(a, b, "equal");
  LweSample eq = true_bit(a.bits[0].dimension());
  for (std::size_t i = 0; i < a.width(); ++i) {
    eq = gate_and(eq, gate_xnor(a.bits[i], b.bits[i], ctx), ctx);
  }
  return eq;
}

EncInt select(const LweSample& sel, const EncInt& t, const EncInt& f,
              const BootstrapContext& ctx) {
  check_widths(t, f, "select");
  EncInt out;
  out.bits.reserve(t.width());
  for (std::size_t i = 0; i < t.width(); ++i) {
    out.bits.push_back(gate_mux(sel, t.bits[i], f.bits[i], ctx));
  }
  return out;
}

EncInt max_int(const EncInt& a, const EncInt& b, const BootstrapContext& ctx) {
  return select(less_than(a, b, ctx), b, a, ctx);
}

EncInt mul(const EncInt& a, const EncInt& b, const BootstrapContext& ctx) {
  check_widths(a, b, "mul");
  const std::size_t w = a.width();
  const std::size_t dim = a.bits[0].dimension();
  // Shift-and-add: acc += (b_i ? a << i : 0) for each bit of b.
  EncInt acc = trivial_int(0, w, dim);
  for (std::size_t i = 0; i < w; ++i) {
    EncInt partial = trivial_int(0, w, dim);
    for (std::size_t j = 0; i + j < w; ++j) {
      partial.bits[i + j] = gate_and(a.bits[j], b.bits[i], ctx);
    }
    acc = add(acc, partial, ctx);
  }
  return acc;
}

}  // namespace alchemist::tfhe
