// Torus64 scalar helpers: encoding, modulus switching, gadget decomposition.
#pragma once

#include <cstdint>
#include <vector>

#include "common/modarith.h"

namespace alchemist::tfhe {

using Torus = u64;  // t represents t / 2^64 in R/Z

// Encode x in [-0.5, 0.5) (or any real, taken mod 1) on the torus.
inline Torus torus_from_double(double x) {
  x -= std::int64_t(x);  // into (-1, 1)
  return static_cast<Torus>(static_cast<i64>(x * 0x1.0p64));
}

// Decode to the centered representative in [-0.5, 0.5).
inline double torus_to_double(Torus t) {
  return static_cast<double>(static_cast<i64>(t)) * 0x1.0p-64;
}

// Encode message m out of `space` equidistant torus points: m / space.
inline Torus torus_from_message(u64 m, u64 space) {
  // (m / space) * 2^64, exact when space is a power of two.
  return static_cast<Torus>((u128{m % space} << 64) / space);
}

// Nearest of `space` equidistant points.
inline u64 torus_to_message(Torus t, u64 space) {
  const u128 scaled = u128{t} * space + (u128{1} << 63);
  return static_cast<u64>(scaled >> 64) % space;
}

// Round a torus element to Z_{2N} (the blind-rotation modulus switch).
inline u64 torus_to_z2n(Torus t, std::size_t n) {
  const u64 two_n = 2 * static_cast<u64>(n);
  // round(t * 2N / 2^64)
  const u128 scaled = u128{t} * two_n + (u128{1} << 63);
  return static_cast<u64>(scaled >> 64) % two_n;
}

// Signed gadget decomposition of a torus value: digits d_1..d_l with
// d_i in [-Bg/2, Bg/2) and sum_i d_i * 2^(64 - i*bg_bits) = t - eps,
// |eps| <= 2^(64 - l*bg_bits - 1).
std::vector<i64> gadget_decompose(Torus t, int bg_bits, std::size_t l);

// The gadget scale factors 2^(64 - i*bg_bits) for i = 1..l.
std::vector<Torus> gadget_scales(int bg_bits, std::size_t l);

}  // namespace alchemist::tfhe
