// Torus polynomials (coefficients mod 2^64) and exact negacyclic products.
//
// TFHE's blind rotation multiplies small-integer gadget digits with torus
// polynomials in Z_{2^64}[X]/(X^N+1). We compute these products *exactly*:
// either by wrap-around schoolbook convolution (reference), or by a
// double-prime NTT with CRT reconstruction (fast path). With digit bound
// 2^7, N <= 2^11 and 2^64 torus values, true coefficients stay below 2^83,
// far under p1*p2/2 ~ 2^123, so the centered CRT lift is exact and the
// result matches schoolbook bit for bit (no FFT rounding anywhere).
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "common/modarith.h"
#include "tfhe/torus.h"

namespace alchemist::tfhe {

class TorusPoly {
 public:
  TorusPoly() = default;
  explicit TorusPoly(std::size_t n) : coeffs_(n, 0) {}
  explicit TorusPoly(std::vector<Torus> coeffs) : coeffs_(std::move(coeffs)) {}

  std::size_t degree() const { return coeffs_.size(); }
  Torus& operator[](std::size_t i) { return coeffs_[i]; }
  Torus operator[](std::size_t i) const { return coeffs_[i]; }
  const std::vector<Torus>& coeffs() const { return coeffs_; }

  TorusPoly& operator+=(const TorusPoly& other);
  TorusPoly& operator-=(const TorusPoly& other);
  TorusPoly& negate();
  friend TorusPoly operator+(TorusPoly a, const TorusPoly& b) { return a += b; }
  friend TorusPoly operator-(TorusPoly a, const TorusPoly& b) { return a -= b; }

  // Negacyclic multiplication by the monomial X^e, e in [0, 2N).
  TorusPoly rotate(u64 e) const;

  bool operator==(const TorusPoly& other) const = default;

 private:
  std::vector<Torus> coeffs_;
};

// Exact reference: negacyclic convolution of small-int a with torus b,
// wrap-around arithmetic mod 2^64. O(N^2).
TorusPoly negacyclic_mul_schoolbook(const std::vector<i64>& a, const TorusPoly& b);

// Fast exact path: two-prime NTT domain.
class TorusNttContext {
 public:
  explicit TorusNttContext(std::size_t n);

  struct DomainPoly {
    std::array<std::vector<u64>, 2> residues;  // NTT domain per prime
  };

  std::size_t degree() const { return n_; }

  DomainPoly forward_int(const std::vector<i64>& a) const;
  DomainPoly forward_torus(const TorusPoly& b) const;
  DomainPoly zero() const;
  // acc += a * b, pointwise per prime.
  void mul_accumulate(DomainPoly& acc, const DomainPoly& a, const DomainPoly& b) const;
  // Inverse NTT, CRT-lift to the centered integer, reduce mod 2^64.
  TorusPoly inverse(const DomainPoly& acc) const;

  // Process-wide cache, one context per degree.
  static const TorusNttContext& get(std::size_t n);

 private:
  std::size_t n_;
  std::array<u64, 2> primes_;
  u64 p1_inv_mod_p2_;  // for CRT: x = x1 + p1 * ((x2-x1) * p1^{-1} mod p2)
};

}  // namespace alchemist::tfhe
