// TFHE programmable bootstrapping (PBS) and the boolean gate library.
//
// The PBS pipeline is the paper's logic-FHE benchmark (§6.2.2):
//   modulus switch -> blind rotation (n_lwe CMux external products)
//   -> sample extract -> LWE keyswitch.
#pragma once

#include <functional>

#include "tfhe/trlwe.h"

namespace alchemist::tfhe {

// LWE keyswitch key from the extracted (k*N)-dim key back to the n_lwe key.
struct KeySwitchKey {
  // ks[i][j] = LWE_target( src_bit_i * 2^(64 - (j+1)*base_bits) )
  std::vector<std::vector<LweSample>> ks;
  int base_bits = 2;
  std::size_t length = 8;
};

KeySwitchKey make_keyswitch_key(const LweKey& from, const LweKey& to,
                                int base_bits, std::size_t length, double sigma,
                                Rng& rng);
LweSample keyswitch(const LweSample& in, const KeySwitchKey& ksk);

// Everything the evaluator needs: bootstrapping key (TGSW of each LWE secret
// bit) and the keyswitch key.
struct BootstrapContext {
  TfheParams params;
  std::vector<TgswNtt> bk;  // n_lwe entries
  KeySwitchKey ksk;
};

BootstrapContext make_bootstrap_context(const TfheParams& params,
                                        const LweKey& lwe_key,
                                        const TrlweKey& trlwe_key, Rng& rng);

// Blind rotation: returns TRLWE(X^-(barb - sum bara_i s_i) * v).
TrlweSample blind_rotate(const TrlweSample& test_vector,
                         const std::vector<u64>& bara, u64 barb,
                         const std::vector<TgswNtt>& bk);

// Full PBS: the result encrypts test_poly[phase] (negacyclically signed)
// under the original n_lwe key.
LweSample programmable_bootstrap(const LweSample& in, const TorusPoly& test_poly,
                                 const BootstrapContext& ctx);

// Constant test polynomial (gate bootstrapping): every slot = mu.
TorusPoly make_constant_test_poly(std::size_t degree, Torus mu);

// Test polynomial from a lookup table over `space` message points. Only the
// first half of the message space maps to slots directly; the second half is
// the negacyclic mirror (-f), the standard PBS constraint.
TorusPoly make_lut_test_poly(std::size_t degree, u64 space,
                             const std::function<Torus(u64)>& f);

// --- Gate bootstrapping (binary API; true = +1/8, false = -1/8) ---

LweSample encrypt_bit(bool bit, const LweKey& key, double sigma, Rng& rng);
bool decrypt_bit(const LweSample& sample, const LweKey& key);

LweSample gate_nand(const LweSample& a, const LweSample& b, const BootstrapContext& ctx);
LweSample gate_and(const LweSample& a, const LweSample& b, const BootstrapContext& ctx);
LweSample gate_or(const LweSample& a, const LweSample& b, const BootstrapContext& ctx);
LweSample gate_nor(const LweSample& a, const LweSample& b, const BootstrapContext& ctx);
LweSample gate_xor(const LweSample& a, const LweSample& b, const BootstrapContext& ctx);
LweSample gate_xnor(const LweSample& a, const LweSample& b, const BootstrapContext& ctx);
// NOT is noise-free (no bootstrap).
LweSample gate_not(const LweSample& a);
// MUX(sel, t, f): composed from AND/OR gates (3 bootstraps).
LweSample gate_mux(const LweSample& sel, const LweSample& t, const LweSample& f,
                   const BootstrapContext& ctx);

}  // namespace alchemist::tfhe
