// LWE samples over Torus64.
#pragma once

#include <vector>

#include "common/rng.h"
#include "tfhe/torus.h"

namespace alchemist::tfhe {

struct LweKey {
  // Usually binary; ternary (-1/0/1) keys appear when switching from CKKS
  // secrets (see src/bridge). All operations honor the sign.
  std::vector<int> s;
};

// b = <a, s> + mu + e.
struct LweSample {
  std::vector<Torus> a;
  Torus b = 0;

  std::size_t dimension() const { return a.size(); }

  LweSample& operator+=(const LweSample& other);
  LweSample& operator-=(const LweSample& other);
  LweSample& negate();
  // Multiply by a small signed integer (noise scales with |c|).
  LweSample& mul_int(i64 c);
  friend LweSample operator+(LweSample x, const LweSample& y) { return x += y; }
  friend LweSample operator-(LweSample x, const LweSample& y) { return x -= y; }
};

LweKey lwe_keygen(std::size_t n, Rng& rng);

// Noiseless sample of a public constant: a = 0, b = mu.
LweSample lwe_trivial(std::size_t n, Torus mu);

LweSample lwe_encrypt(Torus mu, const LweKey& key, double sigma, Rng& rng);

// b - <a, s>: message plus noise.
Torus lwe_phase(const LweSample& sample, const LweKey& key);

// Round the phase to the nearest of `space` equidistant torus points.
u64 lwe_decrypt(const LweSample& sample, const LweKey& key, u64 space);

}  // namespace alchemist::tfhe
