// Encrypted fixed-width integers over TFHE gate bootstrapping.
//
// An EncInt is a little-endian vector of gate-bootstrapped bit ciphertexts.
// Arithmetic circuits (ripple-carry add/sub, comparison, min/max, small
// multiply) are built from the boolean gate library; every gate refreshes its
// output noise, so circuits compose indefinitely — the logic-FHE working
// style the paper contrasts with CKKS.
#pragma once

#include <cstdint>
#include <vector>

#include "tfhe/bootstrap.h"

namespace alchemist::tfhe {

struct EncInt {
  std::vector<LweSample> bits;  // little-endian

  std::size_t width() const { return bits.size(); }
};

// Encrypt / decrypt a value as a `width`-bit unsigned integer (two's
// complement semantics for subtraction and signed comparison helpers).
EncInt encrypt_int(u64 value, std::size_t width, const LweKey& key, double sigma,
                   Rng& rng);
u64 decrypt_int(const EncInt& value, const LweKey& key);

// A noiseless public constant.
EncInt trivial_int(u64 value, std::size_t width, std::size_t lwe_dim);

// value + other (mod 2^width).
EncInt add(const EncInt& a, const EncInt& b, const BootstrapContext& ctx);
// value - other (mod 2^width, two's complement).
EncInt sub(const EncInt& a, const EncInt& b, const BootstrapContext& ctx);
// Unsigned comparison a < b (single encrypted bit).
LweSample less_than(const EncInt& a, const EncInt& b, const BootstrapContext& ctx);
// Equality a == b.
LweSample equal(const EncInt& a, const EncInt& b, const BootstrapContext& ctx);
// Bitwise select: sel ? t : f (per-bit MUX).
EncInt select(const LweSample& sel, const EncInt& t, const EncInt& f,
              const BootstrapContext& ctx);
// max(a, b) via comparison + select.
EncInt max_int(const EncInt& a, const EncInt& b, const BootstrapContext& ctx);
// a * b truncated to width(a) bits (shift-and-add; O(w^2) gates).
EncInt mul(const EncInt& a, const EncInt& b, const BootstrapContext& ctx);

}  // namespace alchemist::tfhe
