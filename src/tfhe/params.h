// TFHE parameter sets (Torus64 discretization).
//
// The torus T = R/Z is represented by 64-bit integers: t in [0, 2^64)
// stands for t / 2^64. Noise standard deviations are given as fractions of
// the torus and scaled by 2^64 when sampling.
#pragma once

#include <cstddef>

#include "common/modarith.h"

namespace alchemist::tfhe {

struct TfheParams {
  std::size_t n_lwe = 630;    // LWE dimension
  std::size_t degree = 1024;  // TRLWE polynomial degree N
  std::size_t k = 1;          // TRLWE mask polynomials
  int bg_bits = 7;            // gadget base log2 (Bg = 2^bg_bits)
  std::size_t l = 3;          // gadget length (decomposition digits, paper's l_b)
  int ks_base_bits = 2;       // LWE keyswitch base log2
  std::size_t ks_length = 8;  // LWE keyswitch digits
  double lwe_sigma = 3.05e-5;    // fresh LWE noise (fraction of torus)
  double trlwe_sigma = 9.6e-11;  // TRLWE / bootstrapping key noise

  u64 bg() const { return u64{1} << bg_bits; }

  // Parameter set I — gate-bootstrapping grade (TFHE-lib style, as used by
  // the Matcha/Strix comparisons: N=1024, l_b in {2,3,4} per Fig. 1).
  static TfheParams set_i() { return TfheParams{}; }

  // Parameter set II — larger precision PBS (N=2048), the second set of the
  // paper's §6.2.2 evaluation.
  static TfheParams set_ii() {
    TfheParams p;
    p.n_lwe = 742;
    p.degree = 2048;
    p.bg_bits = 8;
    p.l = 2;
    p.ks_base_bits = 3;
    p.ks_length = 6;
    p.lwe_sigma = 1.0e-5;
    p.trlwe_sigma = 3.0e-12;
    return p;
  }

  // Tiny insecure parameters with near-zero noise for fast unit tests.
  static TfheParams toy() {
    TfheParams p;
    p.n_lwe = 16;
    p.degree = 64;
    p.bg_bits = 8;
    p.l = 4;
    p.ks_base_bits = 4;
    p.ks_length = 8;
    p.lwe_sigma = 1e-15;
    p.trlwe_sigma = 1e-17;
    return p;
  }
};

}  // namespace alchemist::tfhe
