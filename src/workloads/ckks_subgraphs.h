// Reusable CKKS operator subgraphs: the building blocks behind the workload
// generators, exposed so tools (the tracing evaluator in src/sim) can append
// ops to a graph under construction with correct dependency wiring.
#pragma once

#include <cstdint>
#include <vector>

#include "metaop/op_graph.h"
#include "workloads/ckks_workloads.h"

namespace alchemist::workloads {

// Well-known key ids used by the CKKS generators' transfer descriptors (the
// MemProfiler's reuse ledger is keyed by these). There is one relinearization
// key per scheme instance; rotation keys are per-step, so call sites pass
// kRotationKeyBase + step. Ids only need to be stable within one graph.
inline constexpr std::uint64_t kRelinKeyId = 1;
inline constexpr std::uint64_t kRotationKeyBase = 100;

// Thin convenience wrapper for wiring DAG nodes.
struct GraphBuilder {
  metaop::OpGraph g;

  std::size_t add(metaop::OpKind kind, std::size_t n, std::size_t channels,
                  std::vector<std::size_t> deps, std::size_t pa = 0,
                  std::size_t pb = 0, std::uint64_t hbm_bytes = 0,
                  std::vector<metaop::TransferDesc> transfers = {}) {
    metaop::HighOp op;
    op.kind = kind;
    op.n = n;
    op.channels = channels;
    op.param_a = pa;
    op.param_b = pb;
    op.deps = std::move(deps);
    op.hbm_bytes = hbm_bytes;
    op.transfers = std::move(transfers);
    return g.add(std::move(op));
  }
};

// Evaluation-key traffic of one keyswitch at the given digit count.
std::uint64_t evk_stream_bytes(const CkksWl& w, std::size_t digits);

// Each appender wires a complete operator pipeline into `b`, depending on
// `input` (node indices), and returns the index of its final op.
//
// The keyswitch-bearing appenders take the identity of the key their
// DecompPolyMult streams (`key_id` + operand class), defaulting to the
// relinearization key; rotation appenders default to kRotationKeyBase (an
// "unspecified rotation") so legacy call sites keep building valid graphs,
// while the workload builders pass per-step ids for an honest reuse ledger.
std::size_t append_keyswitch_coeff(
    GraphBuilder& b, const CkksWl& w, std::vector<std::size_t> input,
    std::uint64_t key_id = kRelinKeyId,
    metaop::OperandClass key_class = metaop::OperandClass::Evk);
std::size_t append_keyswitch(
    GraphBuilder& b, const CkksWl& w, std::vector<std::size_t> input,
    std::uint64_t key_id = kRelinKeyId,
    metaop::OperandClass key_class = metaop::OperandClass::Evk);
std::size_t append_rescale(GraphBuilder& b, const CkksWl& w,
                           std::vector<std::size_t> input);
std::size_t append_cmult_rescale(GraphBuilder& b, const CkksWl& w,
                                 std::vector<std::size_t> input);
std::size_t append_rotation(GraphBuilder& b, const CkksWl& w,
                            std::vector<std::size_t> input,
                            std::uint64_t rot_key_id = kRotationKeyBase);
std::size_t append_hoisted_rotations(GraphBuilder& b, const CkksWl& w,
                                     std::size_t count,
                                     std::vector<std::size_t> input,
                                     std::uint64_t rot_key_base = kRotationKeyBase);

}  // namespace alchemist::workloads
