// BFV operator graphs — our extension beyond the paper's Fig. 1 set (the
// paper names BFV as the other arithmetic scheme; its op mix maps onto the
// same Meta-OP classes).
#pragma once

#include "metaop/op_graph.h"

namespace alchemist::workloads {

struct BfvWl {
  std::size_t n = 16384;
  std::size_t level = 12;      // RNS channels of q
  std::size_t ext = 14;        // extended-basis channels for the tensor
  std::size_t dnum = 3;        // relinearization digits
  int word_bits = 36;
  double hbm_stream_fraction = 1.0;
};

// RNS-BFV ciphertext multiplication (BEHZ-style): base extension of both
// inputs, NTT tensor product, scale-and-round back to q, relinearization.
metaop::OpGraph build_bfv_cmult(const BfvWl& w);

}  // namespace alchemist::workloads
