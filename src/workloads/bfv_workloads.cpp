#include "workloads/bfv_workloads.h"

namespace alchemist::workloads {

namespace {

using metaop::HighOp;
using metaop::OpGraph;
using metaop::OpKind;

std::size_t add_op(OpGraph& g, OpKind kind, std::size_t n, std::size_t channels,
                   std::vector<std::size_t> deps, std::size_t pa = 0,
                   std::size_t pb = 0, std::uint64_t hbm = 0,
                   std::vector<metaop::TransferDesc> transfers = {}) {
  HighOp op;
  op.kind = kind;
  op.n = n;
  op.channels = channels;
  op.param_a = pa;
  op.param_b = pb;
  op.deps = std::move(deps);
  op.hbm_bytes = hbm;
  op.transfers = std::move(transfers);
  return g.add(std::move(op));
}

// BFV relinearization key id: one key per scheme instance (cf. the CKKS
// generators' kRelinKeyId).
constexpr std::uint64_t kBfvRelinKeyId = 1;

}  // namespace

OpGraph build_bfv_cmult(const BfvWl& w) {
  OpGraph g;
  g.name = "BFV-Cmult";
  const std::size_t total = w.level + w.ext;

  // Base extension of both ciphertexts (4 polynomials) to q ∪ B.
  std::vector<std::size_t> extended;
  for (int poly = 0; poly < 4; ++poly) {
    extended.push_back(add_op(g, OpKind::Bconv, w.n, 1, {}, w.level, w.ext));
  }
  // Tensor in the NTT domain: 4 forward NTTs over all channels, 4 pointwise
  // products (d0, 2x d1, d2), 3 inverse NTTs.
  std::vector<std::size_t> ntts;
  for (int poly = 0; poly < 4; ++poly) {
    ntts.push_back(add_op(g, OpKind::Ntt, w.n, total, {extended[static_cast<std::size_t>(poly)]}));
  }
  const std::size_t tensor = add_op(g, OpKind::PointwiseMult, w.n, 4 * total, ntts);
  const std::size_t intt = add_op(g, OpKind::Intt, w.n, 3 * total, {tensor});

  // Scale-and-round t/q back to the q basis (Bconv + elementwise fix).
  const std::size_t down0 = add_op(g, OpKind::Bconv, w.n, 3, {intt}, w.ext, w.level);
  const std::size_t fix = add_op(g, OpKind::PointwiseMult, w.n, 3 * w.level, {down0});

  // Relinearize d2: digit decomposition + key inner product + NTTs.
  const std::size_t evk_bytes = static_cast<std::size_t>(
      static_cast<double>(w.dnum) * 2 * w.level * w.n * (w.word_bits / 8.0) *
      w.hbm_stream_fraction);
  std::vector<std::size_t> digit_ntts;
  for (std::size_t d = 0; d < w.dnum; ++d) {
    digit_ntts.push_back(add_op(g, OpKind::Ntt, w.n, w.level, {fix}));
  }
  const std::size_t dpm =
      add_op(g, OpKind::DecompPolyMult, w.n, 2 * w.level, digit_ntts, w.dnum,
             0, evk_bytes,
             {{metaop::OperandClass::Evk, kBfvRelinKeyId,
               static_cast<std::uint64_t>(evk_bytes)}});
  add_op(g, OpKind::Intt, w.n, 2 * w.level, {dpm});
  return g;
}

}  // namespace alchemist::workloads
