#include "workloads/ckks_workloads.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "workloads/ckks_subgraphs.h"

namespace alchemist::workloads {

namespace {

using metaop::HighOp;
using metaop::OpGraph;
using metaop::OpKind;

using Deps = std::vector<std::size_t>;
using Builder = GraphBuilder;

}  // namespace

std::uint64_t evk_stream_bytes(const CkksWl& w, std::size_t digits) {
  const std::size_t ext = w.level + w.num_special();
  const double bytes = static_cast<double>(digits) * 2.0 * ext * w.n *
                       (w.word_bits / 8.0) * w.hbm_stream_fraction;
  return static_cast<std::uint64_t>(bytes);
}

// Hybrid keyswitch core of one polynomial already in NTT form; the returned
// node leaves the switched pair in *coefficient* form over Q (callers fuse a
// rescale or append the final NTT).
std::size_t append_keyswitch_coeff(Builder& b, const CkksWl& w, Deps input,
                                   std::uint64_t key_id,
                                   metaop::OperandClass key_class) {
  const std::size_t l = w.level;
  const std::size_t a = w.alpha();
  const std::size_t K = w.num_special();
  const std::size_t digits = w.active_digits();

  // Decompose: back to coefficient form.
  const std::size_t intt = b.add(OpKind::Intt, w.n, l, std::move(input));

  // Per digit: fast base conversion (Modup) to the missing channels of Q·P,
  // then NTT of those channels.
  Deps digit_ntts;
  for (std::size_t j = 0; j < digits; ++j) {
    const std::size_t gj = std::min(a, l - j * a);
    const std::size_t conv = b.add(OpKind::Bconv, w.n, 1, {intt}, gj, l - gj + K);
    digit_ntts.push_back(b.add(OpKind::Ntt, w.n, l - gj + K, {conv}));
  }

  // DecompPolyMult: accumulate digit * evk over both output components; the
  // evaluation key streams from HBM (double-buffered by the simulator). The
  // descriptor attributes the full stream to the key so the MemProfiler can
  // split key traffic from limb traffic and track per-key reuse.
  const std::uint64_t evk_bytes = evk_stream_bytes(w, digits);
  const std::size_t dpm = b.add(OpKind::DecompPolyMult, w.n, 2 * (l + K),
                                std::move(digit_ntts), digits, 0, evk_bytes,
                                {{key_class, key_id, evk_bytes}});

  // Moddown both components: INTT, Bconv P->Q, subtract + scale, NTT.
  const std::size_t intt2 = b.add(OpKind::Intt, w.n, 2 * (l + K), {dpm});
  const std::size_t conv0 = b.add(OpKind::Bconv, w.n, 1, {intt2}, K, l);
  const std::size_t conv1 = b.add(OpKind::Bconv, w.n, 1, {intt2}, K, l);
  return b.add(OpKind::PointwiseMult, w.n, 2 * l, {conv0, conv1});
}

std::size_t append_keyswitch(Builder& b, const CkksWl& w, Deps input,
                             std::uint64_t key_id,
                             metaop::OperandClass key_class) {
  const std::size_t fix =
      append_keyswitch_coeff(b, w, std::move(input), key_id, key_class);
  return b.add(OpKind::Ntt, w.n, 2 * w.level, {fix});
}

// Rescale of a ciphertext (2 polys): exact RNS divide by the last prime.
std::size_t append_rescale(Builder& b, const CkksWl& w, Deps input) {
  const std::size_t l = w.level;
  const std::size_t intt = b.add(OpKind::Intt, w.n, 2 * l, std::move(input));
  const std::size_t conv = b.add(OpKind::Bconv, w.n, 2, {intt}, 1, l - 1);
  const std::size_t fix = b.add(OpKind::PointwiseMult, w.n, 2 * (l - 1), {conv});
  return b.add(OpKind::Ntt, w.n, 2 * (l - 1), {fix});
}

// Full ciphertext multiply with fused rescale: tensor + relinearize, combine
// in coefficient form, divide by the last prime, one final NTT. Fusing avoids
// the redundant NTT/INTT pair at the keyswitch/rescale boundary (the double-
// domain-residency trick of the SOTA accelerators).
std::size_t append_cmult_rescale(Builder& b, const CkksWl& w, Deps input) {
  const std::size_t l = w.level;
  const std::size_t tensor =
      b.add(OpKind::PointwiseMult, w.n, 4 * l, std::move(input));
  const std::size_t ks = append_keyswitch_coeff(b, w, {tensor});
  const std::size_t d01 = b.add(OpKind::Intt, w.n, 2 * l, {tensor});
  const std::size_t sum = b.add(OpKind::PointwiseAdd, w.n, 2 * l, {ks, d01});
  const std::size_t conv = b.add(OpKind::Bconv, w.n, 2, {sum}, 1, l - 1);
  const std::size_t fix = b.add(OpKind::PointwiseMult, w.n, 2 * (l - 1), {conv});
  return b.add(OpKind::Ntt, w.n, 2 * (l - 1), {fix});
}

std::size_t append_rotation(Builder& b, const CkksWl& w, Deps input,
                            std::uint64_t rot_key_id) {
  const std::size_t l = w.level;
  const std::size_t rot = b.add(OpKind::Automorphism, w.n, 2 * l, std::move(input));
  const std::size_t ks = append_keyswitch(b, w, {rot}, rot_key_id,
                                          metaop::OperandClass::RotationKey);
  return b.add(OpKind::PointwiseAdd, w.n, l, {rot, ks});
}

// `count` rotations sharing a single decomposition + Modup (hoisting).
std::size_t append_hoisted_rotations(Builder& b, const CkksWl& w, std::size_t count,
                                     Deps input, std::uint64_t rot_key_base) {
  const std::size_t l = w.level;
  const std::size_t a = w.alpha();
  const std::size_t K = w.num_special();
  const std::size_t digits = w.active_digits();

  const std::size_t intt = b.add(OpKind::Intt, w.n, l, std::move(input));
  Deps digit_ntts;
  for (std::size_t j = 0; j < digits; ++j) {
    const std::size_t gj = std::min(a, l - j * a);
    const std::size_t conv = b.add(OpKind::Bconv, w.n, 1, {intt}, gj, l - gj + K);
    digit_ntts.push_back(b.add(OpKind::Ntt, w.n, l - gj + K, {conv}));
  }
  // Per rotation: permute the shared decomposition and run DecompPolyMult
  // with the rotation's key — the Modup above is paid once, and the rotated
  // results are accumulated *in the extended basis* so the Moddown below is
  // also paid once (lazy hoisting, as in the BSGS linear transforms of
  // ARK/SHARP bootstrapping).
  Deps rot_outputs;
  const std::uint64_t evk_bytes = evk_stream_bytes(w, digits);
  for (std::size_t r = 0; r < count; ++r) {
    const std::size_t perm =
        b.add(OpKind::Automorphism, w.n, digits * (l + K), digit_ntts);
    rot_outputs.push_back(
        b.add(OpKind::DecompPolyMult, w.n, 2 * (l + K), {perm}, digits, 0,
              evk_bytes,
              {{metaop::OperandClass::RotationKey, rot_key_base + r, evk_bytes}}));
  }
  const std::size_t sum =
      b.add(OpKind::PointwiseAdd, w.n, 2 * (l + K), std::move(rot_outputs));
  const std::size_t intt2 = b.add(OpKind::Intt, w.n, 2 * (l + K), {sum});
  const std::size_t conv = b.add(OpKind::Bconv, w.n, 2, {intt2}, K, l);
  const std::size_t fix = b.add(OpKind::PointwiseMult, w.n, 2 * l, {conv});
  return b.add(OpKind::Ntt, w.n, 2 * l, {fix});
}

// One BSGS linear-transform level of CoeffToSlot/SlotToCoeff over `slots`
// slots: ~2*sqrt(slots) rotations and sqrt(slots) plaintext multiplies.
std::size_t append_linear_transform(Builder& b, const CkksWl& w, std::size_t slots,
                                    bool hoisting, Deps input) {
  const auto root = static_cast<std::size_t>(std::ceil(std::sqrt(
      static_cast<double>(slots))));
  std::size_t last;
  // BSGS rotation keys are per-step and shared by every linear-transform
  // stage of a schedule (baby steps at kRotationKeyBase + r, giant steps at
  // kRotationKeyBase + 64 + i), so the later CoeffToSlot/SlotToCoeff stages
  // re-fetch them — the reuse headroom the ledger is meant to expose.
  if (hoisting) {
    const std::size_t baby =
        append_hoisted_rotations(b, w, root, input, kRotationKeyBase);
    const std::size_t mults = b.add(OpKind::PointwiseMult, w.n, 2 * w.level * root
                                    / std::max<std::size_t>(root, 1), {baby});
    // Giant steps stay un-hoisted (different decompositions).
    Deps g = {mults};
    for (std::size_t i = 0; i < root; ++i) {
      g = {append_rotation(b, w, g, kRotationKeyBase + 64 + i)};
    }
    last = g[0];
  } else {
    Deps cur = std::move(input);
    for (std::size_t i = 0; i < 2 * root; ++i) {
      cur = {append_rotation(b, w, cur, kRotationKeyBase + i)};
    }
    last = b.add(OpKind::PointwiseMult, w.n, 2 * w.level, cur);
  }
  return last;
}

OpGraph build_hadd(const CkksWl& w) {
  Builder b;
  b.g.name = "Hadd";
  b.add(OpKind::PointwiseAdd, w.n, 2 * w.level, {});
  return std::move(b.g);
}

OpGraph build_pmult(const CkksWl& w) {
  Builder b;
  b.g.name = "Pmult";
  b.add(OpKind::PointwiseMult, w.n, 2 * w.level, {});
  return std::move(b.g);
}

OpGraph build_rescale(const CkksWl& w) {
  Builder b;
  b.g.name = "Rescale";
  append_rescale(b, w, {});
  return std::move(b.g);
}

OpGraph build_keyswitch(const CkksWl& w) {
  Builder b;
  b.g.name = "Keyswitch";
  append_keyswitch(b, w, {});
  return std::move(b.g);
}

OpGraph build_cmult(const CkksWl& w) {
  Builder b;
  b.g.name = "Cmult";
  append_cmult_rescale(b, w, {});
  return std::move(b.g);
}

OpGraph build_rotation(const CkksWl& w) {
  Builder b;
  b.g.name = "Rotation";
  append_rotation(b, w, {});
  return std::move(b.g);
}

OpGraph build_hoisted_rotations(const CkksWl& w, std::size_t count) {
  Builder b;
  b.g.name = "HoistedRotations";
  append_hoisted_rotations(b, w, count, {});
  return std::move(b.g);
}

OpGraph build_bootstrapping(const CkksWl& w, bool hoisting) {
  Builder b;
  b.g.name = hoisting ? "Bootstrapping(hoisted)" : "Bootstrapping";
  CkksWl cur = w;
  const std::size_t slots = w.n / 2;

  // ModRaise: base conversion of both polynomials up to the full chain.
  Deps last = {b.add(OpKind::Bconv, w.n, 2, {}, 1, cur.level)};

  // CoeffToSlot: 3 BSGS linear-transform levels, each consuming one level.
  for (int stage = 0; stage < 3; ++stage) {
    last = {append_linear_transform(b, cur, slots, hoisting, last)};
    last = {append_rescale(b, cur, last)};
    cur.level -= 1;
  }

  // EvalMod: degree-63 polynomial of the modular-reduction approximation via
  // BSGS — ~16 ciphertext multiplies over ~8 levels.
  for (int depth = 0; depth < 8 && cur.level > 4; ++depth) {
    last = {append_cmult_rescale(b, cur, last)};
    cur.level -= 1;
    last = {append_cmult_rescale(b, cur, last)};
    cur.level -= 1;
  }

  // SlotToCoeff: 3 more linear-transform levels.
  for (int stage = 0; stage < 3 && cur.level > 1; ++stage) {
    last = {append_linear_transform(b, cur, slots, hoisting, last)};
    last = {append_rescale(b, cur, last)};
    cur.level -= 1;
  }
  return std::move(b.g);
}

OpGraph build_helr_iteration(const CkksWl& w, std::size_t /*iters_per_bootstrap*/) {
  Builder b;
  b.g.name = "HELR-iteration";
  CkksWl cur = w;

  // Batched dot product: one plaintext multiply plus a rotate-and-add tree
  // over the 256 features packed per ciphertext.
  Deps last = {b.add(OpKind::PointwiseMult, w.n, 2 * cur.level, {})};
  for (int step = 0; step < 8; ++step) {
    // Power-of-two rotation tree: one distinct key per step.
    last = {append_rotation(b, cur, last,
                            kRotationKeyBase + static_cast<std::uint64_t>(step))};
    last = {b.add(OpKind::PointwiseAdd, w.n, 2 * cur.level, last)};
  }
  // Degree-3 sigmoid approximation: two multiplies and rescales.
  for (int m = 0; m < 2 && cur.level > 2; ++m) {
    last = {append_cmult_rescale(b, cur, last)};
    cur.level -= 1;
  }
  // Gradient update: weighted accumulation into the model ciphertext.
  last = {append_cmult_rescale(b, cur, last)};
  cur.level -= 1;
  b.add(OpKind::PointwiseAdd, w.n, 2 * cur.level, last);
  return std::move(b.g);
}

OpGraph build_lola_mnist(bool encrypted_weights) {
  Builder b;
  b.g.name = encrypted_weights ? "LoLa-MNIST(enc-weights)" : "LoLa-MNIST";
  CkksWl wl;
  wl.n = 16384;
  wl.level = 6;
  wl.max_level = 6;
  wl.dnum = 3;

  // Weighted taps: plaintext weights multiply elementwise; encrypted weights
  // need a full relinearizing multiply (rescale handled by the layer).
  auto weight_mult = [&](CkksWl& cur, Deps deps) -> std::size_t {
    if (encrypted_weights) {
      const std::size_t l = cur.level;
      const std::size_t tensor =
          b.add(OpKind::PointwiseMult, wl.n, 4 * l, std::move(deps));
      const std::size_t ks = append_keyswitch(b, cur, {tensor});
      return b.add(OpKind::PointwiseAdd, wl.n, 2 * l, {tensor, ks});
    }
    return b.add(OpKind::PointwiseMult, wl.n, 2 * cur.level, std::move(deps));
  };

  CkksWl cur = wl;
  // Conv 5x5 (stride 2): 25 rotated weighted taps accumulated. Tap rotations
  // use distinct per-layer key ranges (conv at base, dense1 at base+32,
  // dense2 at base+64).
  Deps taps;
  for (int t = 0; t < 25; ++t) {
    const std::size_t rot = append_rotation(
        b, cur, {}, kRotationKeyBase + static_cast<std::uint64_t>(t));
    taps.push_back(weight_mult(cur, {rot}));
  }
  Deps last = {b.add(OpKind::PointwiseAdd, wl.n, 2 * cur.level, std::move(taps))};
  last = {append_rescale(b, cur, last)};
  cur.level -= 1;

  // Square activation.
  last = {append_cmult_rescale(b, cur, last)};
  cur.level -= 1;

  // Dense 100: BSGS-style rotations + weighted sums.
  Deps dense1;
  for (int t = 0; t < 12; ++t) {
    const std::size_t rot = append_rotation(
        b, cur, last, kRotationKeyBase + 32 + static_cast<std::uint64_t>(t));
    dense1.push_back(weight_mult(cur, {rot}));
  }
  last = {b.add(OpKind::PointwiseAdd, wl.n, 2 * cur.level, std::move(dense1))};
  last = {append_rescale(b, cur, last)};
  cur.level -= 1;

  // Square activation.
  last = {append_cmult_rescale(b, cur, last)};
  cur.level -= 1;

  // Final dense 10.
  Deps dense2;
  for (int t = 0; t < 4; ++t) {
    const std::size_t rot = append_rotation(
        b, cur, last, kRotationKeyBase + 64 + static_cast<std::uint64_t>(t));
    dense2.push_back(weight_mult(cur, {rot}));
  }
  b.add(OpKind::PointwiseAdd, wl.n, 2 * cur.level, std::move(dense2));
  return std::move(b.g);
}

}  // namespace alchemist::workloads
