// TFHE operator-graph builders (the paper's logic-FHE benchmark, §6.2.2).
#pragma once

#include "metaop/op_graph.h"

namespace alchemist::workloads {

// Key-id range for the per-step bootstrapping-key slices in the transfer
// descriptors (step s streams key kTfheBkKeyBase + s). Disjoint from the CKKS
// relin/rotation ids so merged cross-scheme graphs keep distinct ledgers.
inline constexpr std::uint64_t kTfheBkKeyBase = 1000;

struct TfheWl {
  std::size_t n_lwe = 630;    // blind-rotation steps
  std::size_t degree = 1024;  // TRLWE polynomial degree N
  std::size_t k = 1;
  std::size_t l = 3;          // gadget length (paper's l_b)
  int word_bits = 36;
  std::size_t batch = 16;     // independent PBS evaluated together
  // Fraction of the bootstrapping key streamed from HBM (rest cached).
  double hbm_stream_fraction = 1.0;

  // Parameter set I / II of §6.2.2 (matching the Strix comparison).
  static TfheWl set_i() { return TfheWl{}; }
  static TfheWl set_ii() {
    TfheWl w;
    w.n_lwe = 742;
    w.degree = 2048;
    w.l = 2;
    return w;
  }

  // Bootstrapping key size in bytes: n_lwe TGSW samples, each (k+1)*l rows of
  // (k+1) degree-N torus polynomials.
  double bk_bytes() const {
    return static_cast<double>(n_lwe) * (k + 1) * l * (k + 1) * degree *
           (word_bits / 8.0);
  }
};

// One batch of programmable bootstrappings: n_lwe sequential CMux steps, each
// an external product (gadget decompose, NTT, DecompPolyMult accumulation,
// inverse NTT), followed by the LWE keyswitch.
metaop::OpGraph build_pbs(const TfheWl& w);

}  // namespace alchemist::workloads
