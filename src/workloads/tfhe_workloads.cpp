#include "workloads/tfhe_workloads.h"

namespace alchemist::workloads {

namespace {

using metaop::HighOp;
using metaop::OpGraph;
using metaop::OpKind;

}  // namespace

OpGraph build_pbs(const TfheWl& w) {
  OpGraph g;
  g.name = "TFHE-PBS";
  const std::size_t rows = (w.k + 1) * w.l;   // decomposed digit polynomials
  const std::size_t comps = w.k + 1;          // TRLWE components
  // Per-step bootstrapping-key slice that must stream from off-chip.
  const auto bk_step_bytes = static_cast<std::uint64_t>(
      w.bk_bytes() / static_cast<double>(w.n_lwe) * w.hbm_stream_fraction);

  std::size_t prev = static_cast<std::size_t>(-1);
  for (std::size_t step = 0; step < w.n_lwe; ++step) {
    std::vector<std::size_t> deps;
    if (prev != static_cast<std::size_t>(-1)) deps.push_back(prev);

    // Gadget decomposition of the accumulator (elementwise digit extraction)
    // for the whole batch.
    HighOp decomp;
    decomp.kind = OpKind::PointwiseAdd;  // shifts/masks: no multiplies
    decomp.n = w.degree;
    decomp.channels = rows * w.batch;
    decomp.deps = deps;
    const std::size_t d = g.add(decomp);

    // Forward NTT of the digit polynomials.
    HighOp fwd;
    fwd.kind = OpKind::Ntt;
    fwd.n = w.degree;
    fwd.channels = rows * w.batch;
    fwd.deps = {d};
    const std::size_t f = g.add(fwd);

    // DecompPolyMult: each output component accumulates rows products with
    // the TGSW row polynomials (this is where the BK streams in). Each step
    // uses its own bootstrapping-key slice, so key ids are per-step and the
    // reuse ledger correctly shows no re-fetches within one PBS.
    HighOp dpm;
    dpm.kind = OpKind::DecompPolyMult;
    dpm.n = w.degree;
    dpm.channels = comps * w.batch;
    dpm.param_a = rows;
    dpm.deps = {f};
    dpm.hbm_bytes = bk_step_bytes;
    dpm.transfers = {{metaop::OperandClass::Evk,
                      kTfheBkKeyBase + static_cast<std::uint64_t>(step),
                      bk_step_bytes}};
    const std::size_t m = g.add(dpm);

    // Inverse NTT back to the torus accumulator.
    HighOp inv;
    inv.kind = OpKind::Intt;
    inv.n = w.degree;
    inv.channels = comps * w.batch;
    inv.deps = {m};
    prev = g.add(inv);
  }

  // Sample extract is free (indexing); the LWE keyswitch is an elementwise
  // multiply-accumulate over N * ks_length digits per output coefficient —
  // model as one DecompPolyMult-like accumulation over the LWE dimension.
  HighOp ks;
  ks.kind = OpKind::PointwiseMult;
  ks.n = w.degree;
  ks.channels = 8 * w.batch;  // ks_length digits
  ks.deps = {prev};
  g.add(ks);
  return g;
}

}  // namespace alchemist::workloads
