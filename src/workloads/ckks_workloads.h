// CKKS operator-graph builders for the paper's arithmetic-FHE benchmarks.
//
// The graphs describe the polynomial-level work of each homomorphic
// operation (Table 7 basic ops, Fig. 6a applications) at full paper-scale
// parameters (N = 2^16, L = 44, dnum = 4), independent of the functional
// library — performance in FHE is data-independent, so the cycle simulator
// only needs the op schedule.
#pragma once

#include "metaop/op_graph.h"

namespace alchemist::workloads {

struct CkksWl {
  std::size_t n = 65536;       // ring degree
  std::size_t level = 44;      // active ciphertext primes L
  std::size_t max_level = 44;  // top of the moduli chain (fixes the digit size)
  std::size_t dnum = 4;        // keyswitch digits
  int word_bits = 36;
  // Fraction of evaluation-key traffic that must stream from HBM (the rest is
  // resident on chip or regenerated on the fly, as in ARK/SHARP). Benches set
  // this per accelerator; 1.0 = stream everything (fresh-key worst case).
  double hbm_stream_fraction = 1.0;

  // The digit width is fixed by the key structure at the top of the chain;
  // at lower levels the tail digit truncates (ceil(level/alpha) digits live).
  std::size_t alpha() const { return (max_level + dnum - 1) / dnum; }
  std::size_t num_special() const { return alpha(); }
  std::size_t active_digits() const { return (level + alpha() - 1) / alpha(); }

  static CkksWl paper(std::size_t level = 44) {
    CkksWl w;
    w.level = level;
    return w;
  }
};

// Basic operators (Table 7; parameters N=65536, L=44, dnum=4).
metaop::OpGraph build_hadd(const CkksWl& w);
metaop::OpGraph build_pmult(const CkksWl& w);
metaop::OpGraph build_rescale(const CkksWl& w);
// The hybrid keyswitch core: decompose + Modup + DecompPolyMult + Moddown.
metaop::OpGraph build_keyswitch(const CkksWl& w);
metaop::OpGraph build_cmult(const CkksWl& w);
metaop::OpGraph build_rotation(const CkksWl& w);
// `count` rotations sharing one decomposition/Modup (the hoisting of [9,11]
// that the paper's "BSP-L=n+" variant uses).
metaop::OpGraph build_hoisted_rotations(const CkksWl& w, std::size_t count);

// Fully-packed CKKS bootstrapping (ModRaise -> CoeffToSlot -> EvalMod ->
// SlotToCoeff), optionally with Modup hoisting in the linear transforms.
metaop::OpGraph build_bootstrapping(const CkksWl& w, bool hoisting);

// One iteration of 1024-batch HELR logistic-regression training (dot
// products, sigmoid polynomial, update), amortizing one bootstrap over
// `iters_per_bootstrap` iterations.
metaop::OpGraph build_helr_iteration(const CkksWl& w,
                                     std::size_t iters_per_bootstrap = 5);

// LoLa-MNIST inference (conv -> square -> dense -> square -> dense) at the
// shallow parameter set of F1/CraterLake; `encrypted_weights` turns the
// weight multiplications into ciphertext-ciphertext products.
metaop::OpGraph build_lola_mnist(bool encrypted_weights);

}  // namespace alchemist::workloads
