// Shared POSIX socket plumbing for the loopback serving stack.
//
// Both network front ends — the HTTP introspection window
// (svc::IntrospectionServer) and the binary job-submission server
// (net::Server) — need the same handful of hardened primitives, so they live
// here once instead of being re-derived per server:
//
//   * EINTR-safe, SIGPIPE-safe I/O: send_all() loops partial writes with
//     MSG_NOSIGNAL (a client that closed mid-response must surface as an
//     error return, never kill the process), recv_some() retries EINTR and
//     reports timeouts distinctly from peer closes.
//   * Deadline plumbing: set_recv_timeout()/set_send_timeout() arm the
//     kernel SO_RCVTIMEO/SO_SNDTIMEO clocks that bound every blocking call;
//     a trickling client can stretch one recv() but the callers also check
//     total elapsed wall time.
//   * Listener lifecycle: bind/listen on loopback (optionally port 0 for an
//     ephemeral port, resolved via port()), accept with EINTR retry, and a
//     shutdown() that provably wakes a blocked accept() — close() alone is
//     not guaranteed to on Linux.
//
// Header-only by design: svc depends on these helpers while net's server
// library depends on svc, so a net -> svc -> net library cycle is avoided by
// keeping this layer free of a .cpp.
#pragma once

#include <cerrno>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace alchemist::net {

// Outcome of one recv_some() call, disambiguating the three non-data cases
// callers must treat differently.
enum class RecvStatus : std::uint8_t {
  Data,      // >= 1 byte read
  Closed,    // orderly peer shutdown (recv returned 0)
  TimedOut,  // SO_RCVTIMEO expired (EAGAIN/EWOULDBLOCK)
  Error,     // hard socket error
};

// Arm the kernel receive timeout; a zero duration disables it (blocking).
inline void set_recv_timeout(int fd, std::chrono::microseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1'000'000);
  tv.tv_usec = static_cast<suseconds_t>(timeout.count() % 1'000'000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

inline void set_send_timeout(int fd, std::chrono::microseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1'000'000);
  tv.tv_usec = static_cast<suseconds_t>(timeout.count() % 1'000'000);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

// One bounded read. Retries EINTR; never raises SIGPIPE (reads cannot).
inline RecvStatus recv_some(int fd, void* buf, std::size_t cap,
                            std::size_t& got) {
  got = 0;
  for (;;) {
    const ssize_t n = ::recv(fd, buf, cap, 0);
    if (n > 0) {
      got = static_cast<std::size_t>(n);
      return RecvStatus::Data;
    }
    if (n == 0) return RecvStatus::Closed;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return RecvStatus::TimedOut;
    return RecvStatus::Error;
  }
}

// Write the whole buffer or fail. MSG_NOSIGNAL turns a peer that closed
// mid-response into EPIPE (false return) instead of a process-killing
// SIGPIPE; EINTR retries; partial writes loop.
inline bool send_all(int fd, const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, p + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // EPIPE, timeout, reset — the caller drops the connection
  }
  return true;
}

// Loopback TCP listener with the shutdown-to-wake-accept idiom. Non-copyable;
// close() (or destruction) is idempotent.
class Listener {
 public:
  Listener() = default;
  ~Listener() { close(); }
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  // Bind 127.0.0.1:port (0 = ephemeral) and listen. On failure ok() is false
  // and error() holds the errno message; the caller decides whether that is
  // fatal (a serving binary may keep running without its operator window).
  bool open(int port, int backlog = 16) {
    close();
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      error_ = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
        ::listen(fd, backlog) < 0) {
      error_ = std::string("bind/listen: ") + std::strerror(errno);
      ::close(fd);
      return false;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
      port_ = ntohs(addr.sin_port);
    }
    fd_ = fd;
    return true;
  }

  // Blocking accept with EINTR retry. Returns the client fd, or -1 once the
  // listener was shut down (or on a hard error).
  int accept() const {
    for (;;) {
      const int client = ::accept(fd_, nullptr, nullptr);
      if (client >= 0) return client;
      if (errno == EINTR) continue;
      return -1;
    }
  }

  // Wake any thread blocked in accept() without closing the fd (the owner
  // thread still needs it to observe the shutdown and exit cleanly).
  void shutdown() const {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  }

  void close() {
    if (fd_ >= 0) {
      ::shutdown(fd_, SHUT_RDWR);
      ::close(fd_);
      fd_ = -1;
    }
  }

  bool ok() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  // Bound port (resolves 0 to the ephemeral port actually bound).
  int port() const { return port_; }
  const std::string& error() const { return error_; }

 private:
  int fd_ = -1;
  int port_ = 0;
  std::string error_;
};

// Blocking loopback connect with a wall-clock timeout (non-blocking connect +
// poll-free wait via SO_SNDTIMEO is unreliable across platforms; a plain
// blocking connect to loopback resolves immediately, so the timeout only
// guards a listener whose backlog is full). Returns the fd or -1.
inline int connect_loopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  for (;;) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      return fd;
    }
    if (errno == EINTR) continue;
    ::close(fd);
    return -1;
  }
}

// RAII wrapper for an accepted/connected socket.
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ~ScopedFd() { reset(); }
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;
  ScopedFd(ScopedFd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  ScopedFd& operator=(ScopedFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void reset(int fd = -1) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
  }

 private:
  int fd_ = -1;
};

}  // namespace alchemist::net
