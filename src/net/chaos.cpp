#include "net/chaos.h"

#include <array>
#include <memory>

namespace alchemist::net {

namespace {

// splitmix64: the per-connection fault plan must be a pure function of
// (seed, index) so chaos runs replay exactly.
std::uint64_t mix(std::uint64_t& x) {
  x += 0x9e37'79b9'7f4a'7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58'476d'1ce4'e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d0'49bb'1331'11ebull;
  return z ^ (z >> 31);
}

double u01(std::uint64_t v) {
  return static_cast<double>(v >> 11) * (1.0 / 9007199254740992.0);
}

// Both ends of one proxied connection; shared by its two pump threads so the
// fds stay open until the slower pump is done with them.
struct Link {
  ScopedFd client;
  ScopedFd server;
  void sever() {
    if (client.valid()) ::shutdown(client.get(), SHUT_RDWR);
    if (server.valid()) ::shutdown(server.get(), SHUT_RDWR);
  }
};

}  // namespace

FaultPlan plan_for(const ChaosOptions& opts, std::uint64_t conn_index) {
  std::uint64_t x = opts.seed ^ (0xd1b5'4a32'd192'ed03ull * (conn_index + 1));
  FaultPlan plan;
  const double u = u01(mix(x));
  if (u < opts.kill_prob) {
    plan.kind = FaultPlan::Kind::Kill;
  } else if (u < opts.kill_prob + opts.corrupt_prob) {
    plan.kind = FaultPlan::Kind::Corrupt;
  } else if (u < opts.kill_prob + opts.corrupt_prob + opts.delay_prob) {
    plan.kind = FaultPlan::Kind::Delay;
  } else {
    return plan;
  }
  plan.downstream = (mix(x) & 1) != 0;
  const std::uint32_t span = opts.max_offset == 0 ? 1 : opts.max_offset;
  plan.offset = 1 + mix(x) % span;
  return plan;
}

bool ChaosProxy::start() {
  if (started_) return true;
  if (!listener_.open(opts_.listen_port)) return false;
  started_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void ChaosProxy::stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_release);
  listener_.shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> pumps;
  {
    std::lock_guard<std::mutex> lk(mu_);
    pumps.swap(pumps_);
  }
  for (auto& t : pumps) {
    if (t.joinable()) t.join();
  }
  listener_.close();
  started_ = false;
}

void ChaosProxy::accept_loop() {
  for (;;) {
    const int client = listener_.accept();
    if (client < 0) return;
    const std::uint64_t idx = connections_.fetch_add(1);
    const int server = connect_loopback(opts_.target_port);
    if (server < 0) {
      ::close(client);
      continue;
    }
    FaultPlan plan = plan_for(opts_, idx);
    if (opts_.max_faults != 0 && plan.kind != FaultPlan::Kind::None &&
        faulted() >= opts_.max_faults) {
      plan = FaultPlan{};  // fault budget spent: pass through clean
    }
    switch (plan.kind) {
      case FaultPlan::Kind::Kill: kills_.fetch_add(1); break;
      case FaultPlan::Kind::Corrupt: corruptions_.fetch_add(1); break;
      case FaultPlan::Kind::Delay: delays_.fetch_add(1); break;
      case FaultPlan::Kind::None: break;
    }

    auto link = std::make_shared<Link>();
    link->client.reset(client);
    link->server.reset(server);
    for (int fd : {client, server}) {
      set_recv_timeout(fd, std::chrono::milliseconds(100));
      set_send_timeout(fd, std::chrono::seconds(5));
    }
    std::lock_guard<std::mutex> lk(mu_);
    pumps_.emplace_back([this, link, plan] {
      pump(link->client.get(), link->server.get(), plan, false);
      link->sever();
    });
    pumps_.emplace_back([this, link, plan] {
      pump(link->server.get(), link->client.get(), plan, true);
      link->sever();
    });
  }
}

void ChaosProxy::pump(int from, int to, FaultPlan plan, bool is_downstream) {
  const bool armed =
      plan.kind != FaultPlan::Kind::None && plan.downstream == is_downstream;
  std::uint64_t offset = 0;   // bytes forwarded in this direction
  bool fault_done = false;
  std::array<std::uint8_t, 2048> buf;
  while (!stopping_.load(std::memory_order_acquire)) {
    std::size_t got = 0;
    const RecvStatus rs = recv_some(from, buf.data(), buf.size(), got);
    if (rs == RecvStatus::TimedOut) continue;
    if (rs != RecvStatus::Data) return;

    std::size_t send_len = got;
    bool kill_after = false;
    if (armed && !fault_done && offset + got >= plan.offset) {
      switch (plan.kind) {
        case FaultPlan::Kind::Kill:
          // Forward exactly up to the offset, then tear the link: the bytes
          // before the cut arrive, everything after is lost — a torn frame.
          send_len = static_cast<std::size_t>(plan.offset - offset);
          kill_after = true;
          break;
        case FaultPlan::Kind::Corrupt:
          // Flip one byte at the exact offset; the FNV-1a frame footer on
          // the receiving side turns this into a typed BadChecksum.
          buf[static_cast<std::size_t>(plan.offset - offset - 1)] ^= 0x40;
          break;
        case FaultPlan::Kind::Delay:
          std::this_thread::sleep_for(opts_.delay);
          break;
        case FaultPlan::Kind::None:
          break;
      }
      fault_done = true;
    }
    if (send_len > 0 && !send_all(to, buf.data(), send_len)) return;
    offset += send_len;
    if (kill_after) return;  // pump exit severs both fds via the Link
  }
}

}  // namespace alchemist::net
