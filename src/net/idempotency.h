// Exactly-once resubmission for the TCP job protocol.
//
// A client whose connection died after the server accepted a Submit cannot
// tell whether the job ran: the TCP ack is not an application ack. Its only
// safe move is to resubmit — and the server must make that resubmission
// idempotent. This table is the mechanism: it maps the client-supplied key
// (tenant, client_job_id) to the job handle the first submission produced,
// so a duplicate either re-attaches to the live job (the client streams the
// same terminal it would have seen) or replays the cached terminal state —
// never a second run, never a second admission charge.
//
// Bounding: keys are caller-controlled, so the table must not grow without
// limit (the same posture svc takes with tenant label cardinality). At
// capacity, the least-recently-touched *terminal* entry is evicted — its
// exactly-once window closes, which is the standard at-most-once-cache
// compromise. If every entry is live (capacity genuinely in use by running
// jobs), the submission is refused with Busy rather than evicting a live
// handle, because evicting a live entry would let a retry double-run it.
//
// Admission rejections (Shed / CircuitOpen / QuotaExceeded) are deliberately
// NOT cached: the job never ran, the rejection is retryable by design, and
// caching it would pin a transient "try later" into a permanent "no". The
// server calls forget() for those.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "svc/job.h"

namespace alchemist::net {

class IdempotencyTable {
 public:
  enum class Outcome : std::uint8_t {
    Fresh,     // first sighting of the key: `make` ran, handle inserted
    Attached,  // key maps to a live job: caller streams its transitions
    Replayed,  // key maps to a terminal job: caller replays the cached state
    Busy,      // table full of live entries: typed retryable refusal
  };

  struct Lookup {
    Outcome outcome = Outcome::Busy;
    svc::JobPtr job;  // null only for Busy
  };

  explicit IdempotencyTable(std::size_t capacity) : capacity_(capacity) {}

  // Atomic lookup-or-submit. On a miss, `make` (typically a bound
  // JobRunner::submit) runs under the table lock so a concurrent duplicate
  // cannot slip between the capacity check and the insert; the runner never
  // calls back into the table, so the lock order is acyclic.
  Lookup submit(const std::string& tenant, const std::string& id,
                const std::function<svc::JobPtr()>& make) {
    const Key key{tenant, id};
    std::lock_guard<std::mutex> lk(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second.touch = ++clock_;
      const bool terminal = it->second.job->terminal();
      return {terminal ? Outcome::Replayed : Outcome::Attached, it->second.job};
    }
    if (entries_.size() >= capacity_ && !evict_locked()) {
      return {Outcome::Busy, nullptr};
    }
    svc::JobPtr job = make();
    entries_.emplace(key, Entry{job, ++clock_});
    return {Outcome::Fresh, std::move(job)};
  }

  // Drop the entry for `job` (and only if it still maps to `job`): used when
  // admission rejected the submission, so the retryable rejection is not
  // pinned as this key's forever-answer.
  void forget(const std::string& tenant, const std::string& id,
              const svc::JobPtr& job) {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = entries_.find(Key{tenant, id});
    if (it != entries_.end() && it->second.job == job) entries_.erase(it);
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return entries_.size();
  }
  std::uint64_t evictions() const {
    std::lock_guard<std::mutex> lk(mu_);
    return evictions_;
  }
  std::size_t capacity() const { return capacity_; }

 private:
  using Key = std::pair<std::string, std::string>;  // (tenant, client_job_id)
  struct Entry {
    svc::JobPtr job;
    std::uint64_t touch = 0;  // logical LRU clock
  };

  // Evict the least-recently-touched terminal entry; false if all are live.
  // Caller holds mu_.
  bool evict_locked() {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (!it->second.job->terminal()) continue;
      if (victim == entries_.end() || it->second.touch < victim->second.touch) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return false;
    entries_.erase(victim);
    ++evictions_;
    return true;
  }

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::map<Key, Entry> entries_;
  std::uint64_t clock_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace alchemist::net
