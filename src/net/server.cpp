#include "net/server.h"

#include <algorithm>
#include <array>
#include <utility>

namespace alchemist::net {

namespace {

// Map a sticky frame-parser failure to the typed rejection the client sees
// before the connection is dropped. The specific non-retryable codes apply
// only before the Hello exchange: once the peer has proven it speaks this
// version within the frame cap, a later bad version byte or hostile length
// prefix can only be corruption in flight (a chaos kill/flip, a middlebox),
// and answering it with a fatal VersionMismatch/FrameTooLarge would make the
// client abandon a job one retry away from success. Post-handshake, every
// parse failure is the retryable BadFrame: drop the stream, let the
// idempotency key make the resubmission safe.
ErrorCode frame_error_code(FrameError e, bool hello_done) {
  if (hello_done) return ErrorCode::BadFrame;
  switch (e) {
    case FrameError::BadVersion: return ErrorCode::VersionMismatch;
    case FrameError::Oversize: return ErrorCode::FrameTooLarge;
    default: return ErrorCode::BadFrame;
  }
}

}  // namespace

Server::Server(svc::JobRunner& runner, WorkloadCatalog catalog,
               ServerOptions opts)
    : runner_(runner),
      catalog_(std::move(catalog)),
      opts_(opts),
      idem_(opts.idempotency_capacity) {}

Server::~Server() { stop(); }

bool Server::start() {
  if (started_) return true;
  if (!listener_.open(opts_.port)) return false;
  started_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void Server::drain(const std::string& message) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (drain_message_.empty()) drain_message_ = message;
  }
  draining_.store(true, std::memory_order_release);
  // Wake the accept thread; connection loops observe the flag on their next
  // tick and emit the Draining frame themselves.
  listener_.shutdown();
}

void Server::stop() {
  std::lock_guard<std::mutex> stop_lk(stop_mu_);
  if (!started_ || joined_) return;
  drain();
  stopping_.store(true, std::memory_order_release);
  // Join the accept thread first: after it exits no new connection thread
  // can be created, so the swap below captures every live one.
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lk(mu_);
    threads.swap(conn_threads_);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
  joined_ = true;
  listener_.close();
}

obs::Registry Server::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  obs::Registry copy = reg_;
  return copy;
}

std::size_t Server::active_connections() const {
  std::lock_guard<std::mutex> lk(mu_);
  return active_;
}

void Server::accept_loop() {
  for (;;) {
    const int client = listener_.accept();
    if (client < 0) return;  // listener shut down (drain/stop)
    std::uint64_t conn_id = 0;
    bool refused = false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (active_ >= opts_.max_connections) {
        refused = true;
        reg_.add(metrics::kRefused, 1);
      } else {
        conn_id = next_conn_id_++;
        ++active_;
        reg_.add(metrics::kAccepted, 1);
      }
    }
    if (refused) {
      // Best-effort typed refusal; the frame may not fit in the socket
      // buffer of a hostile peer, which is fine — we close either way.
      const auto payload =
          encode(ErrorPayload{static_cast<std::uint16_t>(ErrorCode::Busy),
                              "connection limit reached"});
      const auto frame = encode_frame(FrameType::Error, payload);
      send_all(client, frame.data(), frame.size());
      ::close(client);
      continue;
    }
    std::lock_guard<std::mutex> lk(mu_);
    conn_threads_.emplace_back(
        [this, client, conn_id] { handle_connection(client, conn_id); });
  }
}

void Server::handle_connection(int fd, std::uint64_t conn_id) {
  ScopedFd sock(fd);
  set_recv_timeout(fd, std::chrono::duration_cast<std::chrono::microseconds>(
                           opts_.tick));
  set_send_timeout(fd, std::chrono::seconds(5));

  FrameParser parser(opts_.max_payload);
  bool hello_done = false;
  bool drain_sent = false;
  bool closing = false;

  struct Pending {
    std::string id;
    svc::JobPtr job;
    svc::JobState last_sent = svc::JobState::Queued;
    double accept_ts = 0;  // trace-clock stamp of the submit frame
  };
  std::vector<Pending> pending;

  const auto track = "net/conn" + std::to_string(conn_id);

  auto count = [this](const char* name, obs::TagList tags = {}) {
    std::lock_guard<std::mutex> lk(mu_);
    reg_.add(name, 1, tags);
  };

  auto send_frame = [&](FrameType type, std::span<const std::uint8_t> payload) {
    const auto frame = encode_frame(type, payload);
    if (!send_all(fd, frame.data(), frame.size())) {
      closing = true;  // peer gone; EPIPE surfaced as a bool, never a signal
      return false;
    }
    count(metrics::kFramesOut);
    return true;
  };

  auto send_error = [&](ErrorCode code, const std::string& msg) {
    count(metrics::kErrors, {{"code", to_string(code)}});
    send_frame(FrameType::Error,
               encode(ErrorPayload{static_cast<std::uint16_t>(code), msg}));
  };

  // Record a wire-hop span as a *root* of the job's trace: the net hop
  // brackets the whole server-side job interval, so parenting it under the
  // runner's job span would break parent-contains-child; a sibling root on
  // its own net/ track keeps the trace well-formed and the reattach visible.
  auto record_net_span = [&](const char* name, std::uint64_t trace_id,
                             double start_ts) {
    if (opts_.trace == nullptr || trace_id == 0) return;
    obs::SpanRecord s;
    s.trace_id = trace_id;
    s.span_id = obs::mint_span_id(trace_id, 0, name, conn_id);
    s.parent_span = 0;
    s.name = name;
    s.kind = "net";
    s.track = track;
    s.ts = start_ts;
    s.dur = opts_.trace->now_us() - start_ts;
    opts_.trace->record(std::move(s));
  };

  auto log_event = [&](obs::Severity sev, std::string msg,
                       std::uint64_t trace_id = 0) {
    if (opts_.log == nullptr) return;
    obs::LogEvent ev;
    ev.severity = sev;
    ev.component = "net";
    ev.message = std::move(msg);
    ev.trace_id = trace_id;
    ev.fields.emplace_back("conn", std::to_string(conn_id));
    opts_.log->record(std::move(ev));
  };

  auto result_payload = [](const std::string& id, const svc::JobPtr& job,
                           bool replayed) {
    ResultPayload rp;
    rp.client_job_id = id;
    rp.state = static_cast<std::uint8_t>(job->state());
    rp.error = job->error();
    rp.attempts = job->attempts();
    rp.degraded = job->degraded();
    rp.replayed = replayed;
    rp.trace_id = job->trace_context().trace_id;
    if (job->state() == svc::JobState::Completed) {
      const sim::SimResult res = job->result();
      rp.has_result = true;
      rp.workload = res.workload;
      rp.accelerator = res.accelerator;
      rp.registry = res.registry;
      rp.sim_time_us = res.time_us;
    }
    return rp;
  };

  auto handle_submit = [&](const Frame& f) {
    SubmitPayload sub;
    try {
      sub = decode_submit(f.payload);
    } catch (const std::exception& e) {
      // The frame itself was intact (checksum passed); a malformed document
      // is a request-level error, not a stream desync — keep the connection.
      send_error(ErrorCode::BadRequest, e.what());
      return;
    }
    if (draining()) {
      send_error(ErrorCode::Draining, "server is draining");
      return;
    }
    if (pending.size() >= opts_.max_in_flight) {
      send_error(ErrorCode::TooManyInFlight,
                 "per-connection in-flight limit reached");
      return;
    }
    const auto cat = catalog_.find(sub.workload);
    if (cat == catalog_.end()) {
      send_error(ErrorCode::UnknownWorkload,
                 "unknown workload: " + sub.workload);
      return;
    }
    const double t0 = opts_.trace != nullptr ? opts_.trace->now_us() : 0.0;

    const auto lookup = idem_.submit(sub.tenant, sub.client_job_id, [&] {
      svc::JobSpec spec;
      spec.name = sub.client_job_id;
      spec.workload_class = sub.workload;
      spec.tenant = sub.tenant;
      spec.degradable = sub.degradable;
      spec.graph = cat->second;
      spec.config = opts_.config;
      spec.mem_profile = opts_.mem_profile;
      spec.engine = sub.engine == kEngineEvent ? svc::Engine::Event
                                               : svc::Engine::Level;
      if (sub.fault_rate > 0.0) {
        spec.fault_enabled = true;
        spec.fault.seed = sub.fault_seed;
        spec.fault.compute_fault_rate = sub.fault_rate;
        spec.fault.sram_fault_rate = sub.fault_rate;
        spec.fault.hbm_fault_rate = sub.fault_rate;
      }
      spec.deadline = std::chrono::microseconds(sub.deadline_us);
      spec.max_steps = sub.max_steps;
      spec.max_attempts = std::max<std::uint64_t>(1, sub.max_attempts);
      spec.checkpoint_interval = sub.checkpoint_interval;
      return runner_.submit(std::move(spec));
    });

    switch (lookup.outcome) {
      case IdempotencyTable::Outcome::Busy:
        send_error(ErrorCode::Busy, "idempotency table full of live jobs");
        return;
      case IdempotencyTable::Outcome::Replayed: {
        count(metrics::kReplayed);
        count(metrics::kResults);
        const std::uint64_t tid = lookup.job->trace_context().trace_id;
        log_event(obs::Severity::Info, "replayed " + sub.client_job_id, tid);
        send_frame(FrameType::Result,
                   encode(result_payload(sub.client_job_id, lookup.job, true)));
        record_net_span("net.replay", tid, t0);
        return;
      }
      case IdempotencyTable::Outcome::Attached: {
        count(metrics::kAttached);
        const std::uint64_t tid = lookup.job->trace_context().trace_id;
        log_event(obs::Severity::Info, "reattached " + sub.client_job_id, tid);
        StatusPayload st;
        st.client_job_id = sub.client_job_id;
        st.state = static_cast<std::uint8_t>(lookup.job->state());
        st.attached = true;
        st.trace_id = tid;
        if (send_frame(FrameType::Status, encode(st))) {
          pending.push_back(Pending{sub.client_job_id, lookup.job,
                                    lookup.job->state(), t0});
        }
        record_net_span("net.reattach", tid, t0);
        return;
      }
      case IdempotencyTable::Outcome::Fresh:
        break;
    }

    count(metrics::kSubmitted);
    const std::uint64_t tid = lookup.job->trace_context().trace_id;
    const svc::JobState st0 = lookup.job->state();
    if (st0 == svc::JobState::Shed || st0 == svc::JobState::CircuitOpen ||
        st0 == svc::JobState::QuotaExceeded) {
      // Rejected at admission: the job never ran and the refusal is
      // retryable by design, so the key must not be pinned to it. (A job
      // that merely *finished* before this check stays cached — a tiny job
      // can legally turn terminal between submit() and here, and evicting
      // it would break the replay guarantee.)
      idem_.forget(sub.tenant, sub.client_job_id, lookup.job);
      count(metrics::kResults);
      log_event(obs::Severity::Warn,
                "rejected " + sub.client_job_id + ": " + svc::to_string(st0),
                tid);
      send_frame(FrameType::Result,
                 encode(result_payload(sub.client_job_id, lookup.job, false)));
      record_net_span("net.submit", tid, t0);
      return;
    }
    log_event(obs::Severity::Info, "admitted " + sub.client_job_id, tid);
    StatusPayload st;
    st.client_job_id = sub.client_job_id;
    st.state = static_cast<std::uint8_t>(lookup.job->state());
    st.attached = false;
    st.trace_id = tid;
    if (send_frame(FrameType::Status, encode(st))) {
      pending.push_back(
          Pending{sub.client_job_id, lookup.job, lookup.job->state(), t0});
    }
    record_net_span("net.submit", tid, t0);
  };

  auto handle_frame = [&](const Frame& f) {
    count(metrics::kFramesIn);
    if (!hello_done && f.type != FrameType::Hello) {
      send_error(ErrorCode::ProtocolViolation, "expected hello first");
      closing = true;
      return;
    }
    switch (f.type) {
      case FrameType::Hello: {
        HelloPayload hello;
        try {
          hello = decode_hello(f.payload);
        } catch (const std::exception& e) {
          send_error(ErrorCode::BadRequest, e.what());
          closing = true;
          return;
        }
        if (hello.protocol != kProtocolVersion) {
          send_error(ErrorCode::VersionMismatch,
                     "unsupported protocol version");
          closing = true;
          return;
        }
        hello_done = true;
        HelloAckPayload ack;
        ack.server = opts_.name;
        ack.max_payload_bytes = opts_.max_payload;
        ack.max_in_flight = opts_.max_in_flight;
        send_frame(FrameType::HelloAck, encode(ack));
        return;
      }
      case FrameType::Submit:
        handle_submit(f);
        return;
      case FrameType::Ping:
        send_frame(FrameType::Pong, f.payload);
        return;
      case FrameType::Pong:
        return;  // tolerated: reply to a server Ping
      case FrameType::Bye:
        closing = true;
        return;
      default:
        // Server-to-client frame types arriving here are a protocol breach.
        send_error(ErrorCode::ProtocolViolation,
                   std::string("unexpected frame: ") + to_string(f.type));
        closing = true;
        return;
    }
  };

  std::array<std::uint8_t, 4096> buf;
  auto last_activity = std::chrono::steady_clock::now();
  auto partial_since = last_activity;
  bool partial = false;

  while (!closing && !stopping_.load(std::memory_order_acquire)) {
    if (draining() && !drain_sent) {
      drain_sent = true;
      count(metrics::kDrainNotices);
      std::string msg;
      {
        std::lock_guard<std::mutex> lk(mu_);
        msg = drain_message_;
      }
      send_frame(FrameType::Drain, encode(DrainPayload{msg}));
    }

    std::size_t got = 0;
    const RecvStatus rs = recv_some(fd, buf.data(), buf.size(), got);
    const auto now = std::chrono::steady_clock::now();
    if (rs == RecvStatus::Data) {
      parser.feed(std::span<const std::uint8_t>(buf.data(), got));
      last_activity = now;
    } else if (rs == RecvStatus::Closed || rs == RecvStatus::Error) {
      break;
    }

    Frame f;
    while (!closing) {
      const FrameError fe = parser.next(f);
      if (fe == FrameError::None) {
        handle_frame(f);
        continue;
      }
      if (fe == FrameError::NeedMore) break;
      count(metrics::kBadFrames, {{"error", to_string(fe)}});
      log_event(obs::Severity::Warn,
                std::string("bad frame: ") + to_string(fe));
      send_error(frame_error_code(fe, hello_done), to_string(fe));
      closing = true;
    }
    if (closing) break;

    // Partial-frame read deadline: a peer that started a frame must finish
    // it within read_deadline (the 408 analogue for binary framing).
    if (parser.buffered() > 0) {
      if (!partial) {
        partial = true;
        partial_since = now;
      } else if (now - partial_since > opts_.read_deadline) {
        send_error(ErrorCode::ReadTimeout, "partial frame read deadline");
        break;
      }
    } else {
      partial = false;
    }

    // Stream pending job transitions; deliver terminal Results.
    for (auto it = pending.begin(); it != pending.end();) {
      const svc::JobState st = it->job->state();
      if (svc::is_terminal(st)) {
        count(metrics::kResults);
        send_frame(FrameType::Result,
                   encode(result_payload(it->id, it->job, false)));
        record_net_span("net.submit.done", it->job->trace_context().trace_id,
                        it->accept_ts);
        it = pending.erase(it);
        continue;
      }
      if (st != it->last_sent) {
        StatusPayload sp;
        sp.client_job_id = it->id;
        sp.state = static_cast<std::uint8_t>(st);
        sp.trace_id = it->job->trace_context().trace_id;
        send_frame(FrameType::Status, encode(sp));
        it->last_sent = st;
      }
      ++it;
    }

    if (pending.empty()) {
      if (draining() && drain_sent) break;  // drained and nothing owed
      if (now - last_activity > opts_.idle_timeout) {
        send_error(ErrorCode::IdleTimeout, "idle connection");
        break;
      }
    }
  }

  {
    std::lock_guard<std::mutex> lk(mu_);
    reg_.add(metrics::kClosed, 1);
    --active_;
  }
  log_event(obs::Severity::Debug, "connection closed");
}

}  // namespace alchemist::net
