// Retrying protocol client for the TCP job server.
//
// Client::run() owns the whole reliability dance a remote submitter needs:
// connect, handshake, submit, stream status, collect the terminal Result —
// and on any transport failure (torn connection, corrupted frame, server
// drain, typed retryable rejection) reconnect with deterministic exponential
// backoff (common/backoff.h) and resubmit the SAME idempotency key. The
// server's IdempotencyTable turns that resubmission into a re-attach or a
// cached replay, so from the caller's perspective the job runs exactly once
// no matter how many times the wire failed underneath.
//
// Non-retryable rejections (BadRequest, UnknownWorkload, VersionMismatch, a
// non-retryable ErrorCode in general) surface immediately in the outcome.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "common/backoff.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "sim/result.h"

namespace alchemist::net {

struct ClientOptions {
  int port = 0;
  std::string name = "alchemist-client";
  std::size_t max_payload = kDefaultMaxPayload;
  // Recv poll slice while waiting for frames.
  std::chrono::milliseconds tick{20};
  // Bound on one connection's silent wait for the next frame (covers both the
  // handshake and the job's run time; status frames reset the clock).
  std::chrono::milliseconds response_timeout{30000};
  // Transport retry budget: total connection attempts per run() call, paced
  // by deterministic exponential backoff.
  std::size_t max_attempts = 16;
  BackoffConfig backoff{};
  // Injected sleep, overridable by tests/chaos harnesses that want virtual
  // time; null = real sleep.
  void (*sleep_us)(std::uint64_t) = nullptr;
};

// What one run() call observed end to end.
struct RunOutcome {
  bool delivered = false;  // a terminal Result frame arrived
  std::uint8_t state = 0;  // svc::JobState when delivered
  std::string error;       // job error text, or transport diagnosis
  bool replayed = false;   // served from the server's idempotency cache
  bool attached = false;   // some submission re-attached to the live job
  bool degraded = false;
  std::uint64_t trace_id = 0;
  std::uint16_t last_error_code = 0;  // last typed ErrorCode seen (0 = none)
  std::size_t connections = 0;        // transport attempts used
  bool has_result = false;
  sim::SimResult result;  // finalized; valid when has_result
};

class Client {
 public:
  explicit Client(ClientOptions opts) : opts_(opts) {}

  // Submit and wait for a terminal state, retrying the transport as needed.
  // Blocking; returns delivered=false only when the retry budget is spent.
  RunOutcome run(const SubmitPayload& submit);

  const ClientOptions& options() const { return opts_; }

 private:
  ClientOptions opts_;
};

}  // namespace alchemist::net
