// Payload schemas of the TCP job protocol, encoded through the hardened
// common/serdes layer (tagged, length-capped, typed failures) inside the
// FNV-1a-checksummed frames of net/frame.h.
//
// The submit payload is the JobSpec-equivalent a remote client can express:
// instead of shipping an operator graph, it *names* a workload from the
// server's catalog (the graphs are server-resident, the way evaluation keys
// are accelerator-resident in ARK — expensive state is reconstructible, not
// re-shipped) and carries the robustness envelope (deadline, retry budget,
// fault model) plus the client-supplied idempotency key that makes
// resubmission after a torn connection exactly-once.
//
// Every decode_* throws std::runtime_error on malformed input (truncated
// documents, wrong tags, oversized strings) — the serdes reader's contract —
// and the server maps that to ErrorCode::BadRequest rather than crashing.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/frame.h"
#include "obs/registry.h"

namespace alchemist::net {

// Typed rejection codes carried by Error frames — the protocol's analogue of
// the introspection server's 408/431 responses. Transport-class codes
// (Draining, Busy, ...) invite a retry on a fresh connection; request-class
// codes (BadRequest, UnknownWorkload, ...) will fail identically on retry
// and the client surfaces them to the caller.
enum class ErrorCode : std::uint16_t {
  BadFrame = 1,         // unparseable/corrupt frame; stream is poisoned
  VersionMismatch = 2,  // frame or hello protocol version not supported
  FrameTooLarge = 3,    // declared payload exceeds the server cap (431-style)
  ReadTimeout = 4,      // partial frame older than the read deadline (408-style)
  IdleTimeout = 5,      // no traffic and nothing in flight
  TooManyInFlight = 6,  // per-connection request cap exceeded
  Busy = 7,             // server at connection/idempotency capacity; retry later
  Draining = 8,         // graceful shutdown in progress; resubmit elsewhere
  BadRequest = 9,       // malformed submit payload
  UnknownWorkload = 10, // workload name not in the server catalog
  ProtocolViolation = 11,  // e.g. Submit before Hello
};

const char* to_string(ErrorCode c);
// Retry guidance: true for transport-class codes where a fresh connection
// (possibly after backoff) can succeed.
bool is_retryable(ErrorCode c);

struct HelloPayload {
  std::uint64_t protocol = kProtocolVersion;
  std::string client;  // display name, for logs
};

struct HelloAckPayload {
  std::uint64_t protocol = kProtocolVersion;
  std::string server;
  std::uint64_t max_payload_bytes = 0;  // server frame cap
  std::uint64_t max_in_flight = 0;      // per-connection request cap
};

// Engine selector on the wire (matches svc::Engine values).
inline constexpr std::uint8_t kEngineLevel = 0;
inline constexpr std::uint8_t kEngineEvent = 1;

struct SubmitPayload {
  // Idempotency key, scoped per tenant: a resubmission of the same
  // (tenant, client_job_id) re-attaches to the live job or replays its
  // cached terminal state instead of re-running. Required, 1..256 bytes.
  std::string client_job_id;
  std::string tenant;    // admission identity ("" = untenanted)
  std::string workload;  // catalog name (server-resident graph)
  std::uint8_t engine = kEngineLevel;
  bool degradable = false;
  // Fault-injection envelope (0 rate = no fault model).
  std::uint64_t fault_seed = 0;
  double fault_rate = 0.0;
  // Robustness envelope, mirroring JobSpec.
  std::uint64_t deadline_us = 0;
  std::uint64_t max_steps = 0;
  std::uint64_t max_attempts = 1;
  std::uint64_t checkpoint_interval = 0;
};

// Non-terminal transition notice (also the submit acknowledgement): tells
// the client its job's current state and the trace id to chase in /tracez.
struct StatusPayload {
  std::string client_job_id;
  std::uint8_t state = 0;  // svc::JobState
  bool attached = false;   // this submission re-attached to a live job
  std::uint64_t trace_id = 0;
};

// Terminal frame. For Completed jobs the deterministic SimResult registry
// rides along (the caller reconstructs aggregates via SimResult::finalize);
// rejected/failed jobs carry the state and error text only.
struct ResultPayload {
  std::string client_job_id;
  std::uint8_t state = 0;  // svc::JobState, always terminal
  std::string error;
  std::uint64_t attempts = 0;
  bool degraded = false;
  bool replayed = false;  // served from the idempotency cache, not a fresh run
  std::uint64_t trace_id = 0;
  bool has_result = false;
  std::string workload;
  std::string accelerator;
  obs::Registry registry;  // sim.* counters/gauges of the completed run
  double sim_time_us = 0.0;
};

struct ErrorPayload {
  std::uint16_t code = 0;  // ErrorCode
  std::string message;
};

struct DrainPayload {
  std::string message;
};

std::vector<std::uint8_t> encode(const HelloPayload& p);
std::vector<std::uint8_t> encode(const HelloAckPayload& p);
std::vector<std::uint8_t> encode(const SubmitPayload& p);
std::vector<std::uint8_t> encode(const StatusPayload& p);
std::vector<std::uint8_t> encode(const ResultPayload& p);
std::vector<std::uint8_t> encode(const ErrorPayload& p);
std::vector<std::uint8_t> encode(const DrainPayload& p);

HelloPayload decode_hello(std::span<const std::uint8_t> bytes);
HelloAckPayload decode_hello_ack(std::span<const std::uint8_t> bytes);
SubmitPayload decode_submit(std::span<const std::uint8_t> bytes);
StatusPayload decode_status(std::span<const std::uint8_t> bytes);
ResultPayload decode_result(std::span<const std::uint8_t> bytes);
ErrorPayload decode_error(std::span<const std::uint8_t> bytes);
DrainPayload decode_drain(std::span<const std::uint8_t> bytes);

}  // namespace alchemist::net
