#include "net/client.h"

#include <array>
#include <thread>

#include "net/socket.h"
#include "obs/trace.h"
#include "svc/job.h"

namespace alchemist::net {

namespace {

// One connection's attempt at the submit -> terminal conversation.
enum class AttemptStatus {
  Delivered,  // terminal Result frame received
  Retry,      // transport-class failure: reconnect and resubmit
  Fatal,      // typed non-retryable rejection: surface it
};

void default_sleep(std::uint64_t us) {
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

AttemptStatus attempt(const ClientOptions& opts, const SubmitPayload& submit,
                      RunOutcome& out) {
  ScopedFd fd(connect_loopback(opts.port));
  if (!fd.valid()) {
    out.error = "connect failed";
    return AttemptStatus::Retry;
  }
  set_recv_timeout(fd.get(),
                   std::chrono::duration_cast<std::chrono::microseconds>(
                       opts.tick));
  set_send_timeout(fd.get(), std::chrono::seconds(5));

  FrameParser parser(opts.max_payload);
  auto send = [&](FrameType type, std::span<const std::uint8_t> payload) {
    const auto frame = encode_frame(type, payload);
    return send_all(fd.get(), frame.data(), frame.size());
  };

  HelloPayload hello;
  hello.client = opts.name;
  if (!send(FrameType::Hello, encode(hello))) {
    out.error = "send hello failed";
    return AttemptStatus::Retry;
  }
  bool submitted = false;

  std::array<std::uint8_t, 4096> buf;
  auto last_frame = std::chrono::steady_clock::now();
  for (;;) {
    std::size_t got = 0;
    const RecvStatus rs = recv_some(fd.get(), buf.data(), buf.size(), got);
    const auto now = std::chrono::steady_clock::now();
    if (rs == RecvStatus::Data) {
      parser.feed(std::span<const std::uint8_t>(buf.data(), got));
    } else if (rs == RecvStatus::Closed || rs == RecvStatus::Error) {
      out.error = rs == RecvStatus::Closed ? "connection closed"
                                           : "connection error";
      return AttemptStatus::Retry;
    } else if (now - last_frame > opts.response_timeout) {
      out.error = "response timeout";
      return AttemptStatus::Retry;
    }

    Frame f;
    for (;;) {
      const FrameError fe = parser.next(f);
      if (fe == FrameError::NeedMore) break;
      if (fe != FrameError::None) {
        // Corrupted or desynchronized stream: the parser is poisoned, drop
        // the connection and retry through the idempotency key.
        out.error = std::string("frame error: ") + to_string(fe);
        return AttemptStatus::Retry;
      }
      last_frame = now;
      switch (f.type) {
        case FrameType::HelloAck: {
          try {
            (void)decode_hello_ack(f.payload);
          } catch (const std::exception& e) {
            out.error = e.what();
            return AttemptStatus::Retry;
          }
          if (!submitted) {
            if (!send(FrameType::Submit, encode(submit))) {
              out.error = "send submit failed";
              return AttemptStatus::Retry;
            }
            submitted = true;
          }
          break;
        }
        case FrameType::Status: {
          StatusPayload st;
          try {
            st = decode_status(f.payload);
          } catch (const std::exception& e) {
            out.error = e.what();
            return AttemptStatus::Retry;
          }
          if (st.attached) out.attached = true;
          if (st.trace_id != 0) out.trace_id = st.trace_id;
          break;
        }
        case FrameType::Result: {
          ResultPayload rp;
          try {
            rp = decode_result(f.payload);
          } catch (const std::exception& e) {
            out.error = e.what();
            return AttemptStatus::Retry;
          }
          out.delivered = true;
          out.state = rp.state;
          out.error = rp.error;
          out.replayed = out.replayed || rp.replayed;
          out.degraded = rp.degraded;
          if (rp.trace_id != 0) out.trace_id = rp.trace_id;
          out.has_result = rp.has_result;
          if (rp.has_result) {
            out.result = sim::SimResult{};
            out.result.workload = rp.workload;
            out.result.accelerator = rp.accelerator;
            out.result.registry = rp.registry;
            out.result.finalize();
          }
          return AttemptStatus::Delivered;
        }
        case FrameType::Error: {
          ErrorPayload ep;
          try {
            ep = decode_error(f.payload);
          } catch (const std::exception& e) {
            out.error = e.what();
            return AttemptStatus::Retry;
          }
          out.last_error_code = ep.code;
          out.error = ep.message;
          return is_retryable(static_cast<ErrorCode>(ep.code))
                     ? AttemptStatus::Retry
                     : AttemptStatus::Fatal;
        }
        case FrameType::Drain:
          // Server is going away; in-flight Results may still follow, but a
          // conservative client reconnects elsewhere/later via the key.
          out.error = "server draining";
          return AttemptStatus::Retry;
        case FrameType::Ping:
          if (!send(FrameType::Pong, f.payload)) {
            out.error = "send pong failed";
            return AttemptStatus::Retry;
          }
          break;
        default:
          out.error = std::string("unexpected frame: ") + to_string(f.type);
          return AttemptStatus::Retry;
      }
    }
  }
}

}  // namespace

RunOutcome Client::run(const SubmitPayload& submit) {
  RunOutcome out;
  // Deterministic per-key jitter stream: two clients hammering the same
  // server spread their retries without sharing RNG state.
  BackoffConfig cfg = opts_.backoff;
  cfg.seed ^= obs::trace_fnv1a(submit.tenant + "\x1f" + submit.client_job_id);
  Backoff backoff(cfg);
  auto sleep_us = opts_.sleep_us != nullptr ? opts_.sleep_us : &default_sleep;

  for (std::size_t i = 0; i < opts_.max_attempts; ++i) {
    ++out.connections;
    switch (attempt(opts_, submit, out)) {
      case AttemptStatus::Delivered:
      case AttemptStatus::Fatal:
        return out;
      case AttemptStatus::Retry:
        break;
    }
    if (i + 1 < opts_.max_attempts) sleep_us(backoff.next_us());
  }
  return out;  // delivered == false: transport budget exhausted
}

}  // namespace alchemist::net
