// Deterministic in-process fault proxy for the TCP job protocol.
//
// The chaos harness (bench/net_soak) puts this proxy between net::Client and
// net::Server: every byte of every connection flows through it, and a
// seed-driven per-connection fault plan decides — at exact byte offsets, so
// the outcome is independent of TCP chunking — whether to
//
//   * kill the connection after N forwarded bytes (torn submit, torn
//     response: the two halves of the exactly-once problem),
//   * corrupt one byte (XOR) so the receiver's FNV-1a frame footer trips and
//     the stream is dropped as BadChecksum,
//   * delay forwarding at an offset (exercises read deadlines / slow peers),
//   * truncate: kill immediately after the client's submit bytes pass, which
//     is the worst case — the server got the job, the client got nothing.
//
// Connection index -> plan is a pure function of the seed, so a soak run is
// reproducible: same seed, same faults, same recovery path. The proxy never
// inspects frames; it faults the transport exactly where a real network
// would.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "net/socket.h"

namespace alchemist::net {

struct ChaosOptions {
  int target_port = 0;    // real server
  int listen_port = 0;    // 0 = ephemeral
  std::uint64_t seed = 1;
  // Per-connection fault probabilities (evaluated once per connection, from
  // the seeded plan). A connection draws at most one fault kind.
  double kill_prob = 0.25;
  double corrupt_prob = 0.25;
  double delay_prob = 0.25;
  // Fault offsets are drawn in [1, max_offset] forwarded bytes.
  std::uint32_t max_offset = 512;
  std::chrono::milliseconds delay{30};
  // Stop injecting after this many faulted connections (0 = unlimited): lets
  // a soak guarantee forward progress within the client retry budget.
  std::uint64_t max_faults = 0;
};

// What the plan decided for one connection.
struct FaultPlan {
  enum class Kind : std::uint8_t { None, Kill, Corrupt, Delay };
  Kind kind = Kind::None;
  bool downstream = false;  // fault the server->client direction
  std::uint64_t offset = 0;
};

// Pure function of (seed, connection index); exposed for tests.
FaultPlan plan_for(const ChaosOptions& opts, std::uint64_t conn_index);

class ChaosProxy {
 public:
  explicit ChaosProxy(ChaosOptions opts) : opts_(opts) {}
  ~ChaosProxy() { stop(); }
  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  bool start();
  void stop();

  int port() const { return listener_.port(); }
  const std::string& error() const { return listener_.error(); }

  std::uint64_t connections() const { return connections_.load(); }
  std::uint64_t kills() const { return kills_.load(); }
  std::uint64_t corruptions() const { return corruptions_.load(); }
  std::uint64_t delays() const { return delays_.load(); }
  std::uint64_t faulted() const {
    return kills_.load() + corruptions_.load() + delays_.load();
  }

 private:
  void accept_loop();
  void pump(int from, int to, FaultPlan plan, bool is_downstream);

  ChaosOptions opts_;
  Listener listener_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> kills_{0};
  std::atomic<std::uint64_t> corruptions_{0};
  std::atomic<std::uint64_t> delays_{0};

  std::mutex mu_;
  std::thread accept_thread_;
  std::vector<std::thread> pumps_;
};

}  // namespace alchemist::net
