#include "net/frame.h"

#include <cstring>

#include "common/serdes.h"  // fnv1a

namespace alchemist::net {

namespace {

constexpr std::uint8_t kMagic[4] = {'A', 'L', 'C', 'H'};

std::uint32_t read_u32le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t read_u64le(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

void append_u32le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void append_u64le(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

}  // namespace

const char* to_string(FrameType t) {
  switch (t) {
    case FrameType::Hello: return "hello";
    case FrameType::HelloAck: return "hello-ack";
    case FrameType::Submit: return "submit";
    case FrameType::Status: return "status";
    case FrameType::Result: return "result";
    case FrameType::Error: return "error";
    case FrameType::Drain: return "drain";
    case FrameType::Ping: return "ping";
    case FrameType::Pong: return "pong";
    case FrameType::Bye: return "bye";
  }
  return "?";
}

bool is_known_frame_type(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(FrameType::Hello) &&
         t <= static_cast<std::uint8_t>(FrameType::Bye);
}

const char* to_string(FrameError e) {
  switch (e) {
    case FrameError::None: return "none";
    case FrameError::NeedMore: return "need-more";
    case FrameError::BadMagic: return "bad-magic";
    case FrameError::BadVersion: return "bad-version";
    case FrameError::BadType: return "bad-type";
    case FrameError::BadReserved: return "bad-reserved";
    case FrameError::Oversize: return "oversize";
    case FrameError::BadChecksum: return "bad-checksum";
  }
  return "?";
}

std::vector<std::uint8_t> encode_frame(FrameType type,
                                       std::span<const std::uint8_t> payload,
                                       std::uint8_t version) {
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderSize + payload.size() + kFrameFooterSize);
  for (std::uint8_t m : kMagic) out.push_back(m);
  out.push_back(version);
  out.push_back(static_cast<std::uint8_t>(type));
  out.push_back(0);  // reserved
  out.push_back(0);
  append_u32le(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  const u64 digest = fnv1a(std::span<const std::uint8_t>(out.data(), out.size()));
  append_u64le(out, digest);
  return out;
}

FrameError FrameParser::next(Frame& out) {
  if (sticky_ != FrameError::None) return sticky_;
  if (buf_.size() < kFrameHeaderSize) return FrameError::NeedMore;

  // Header validation happens as soon as the 12 header bytes exist, before
  // any payload accumulates: the cheap checks reject a garbage or hostile
  // stream without buffering what it claims to carry.
  if (std::memcmp(buf_.data(), kMagic, 4) != 0) {
    return sticky_ = FrameError::BadMagic;
  }
  if (buf_[4] != kProtocolVersion) return sticky_ = FrameError::BadVersion;
  if (!is_known_frame_type(buf_[5])) return sticky_ = FrameError::BadType;
  if (buf_[6] != 0 || buf_[7] != 0) return sticky_ = FrameError::BadReserved;
  const std::uint32_t payload_len = read_u32le(buf_.data() + 8);
  if (payload_len > max_payload_) return sticky_ = FrameError::Oversize;

  const std::size_t frame_size =
      kFrameHeaderSize + payload_len + kFrameFooterSize;
  if (buf_.size() < frame_size) return FrameError::NeedMore;

  const std::size_t body = kFrameHeaderSize + payload_len;
  const u64 want = read_u64le(buf_.data() + body);
  const u64 got = fnv1a(std::span<const std::uint8_t>(buf_.data(), body));
  if (want != got) return sticky_ = FrameError::BadChecksum;

  out.type = static_cast<FrameType>(buf_[5]);
  out.payload.assign(buf_.begin() + static_cast<std::ptrdiff_t>(kFrameHeaderSize),
                     buf_.begin() + static_cast<std::ptrdiff_t>(body));
  buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(frame_size));
  return FrameError::None;
}

}  // namespace alchemist::net
