#include "net/protocol.h"

#include <stdexcept>

#include "common/serdes.h"
#include "sim/checkpoint.h"  // write_registry/read_registry

namespace alchemist::net {

namespace {

// Sanity bounds on wire strings, enforced on decode before allocation (the
// serdes reader additionally caps every declared length against the bytes
// remaining). Idempotency keys and tenant names are caller-controlled, so
// they get the tightest caps.
constexpr std::size_t kMaxKeyLen = 256;
constexpr std::size_t kMaxNameLen = 1024;
constexpr std::size_t kMaxErrorLen = 4096;

BinaryReader make_reader(std::span<const std::uint8_t> bytes) {
  return BinaryReader(std::vector<std::uint8_t>(bytes.begin(), bytes.end()));
}

void check_consumed(const BinaryReader& r, const char* what) {
  if (!r.at_end()) {
    throw std::runtime_error(std::string("net: trailing bytes after ") + what);
  }
}

}  // namespace

const char* to_string(ErrorCode c) {
  switch (c) {
    case ErrorCode::BadFrame: return "bad-frame";
    case ErrorCode::VersionMismatch: return "version-mismatch";
    case ErrorCode::FrameTooLarge: return "frame-too-large";
    case ErrorCode::ReadTimeout: return "read-timeout";
    case ErrorCode::IdleTimeout: return "idle-timeout";
    case ErrorCode::TooManyInFlight: return "too-many-in-flight";
    case ErrorCode::Busy: return "busy";
    case ErrorCode::Draining: return "draining";
    case ErrorCode::BadRequest: return "bad-request";
    case ErrorCode::UnknownWorkload: return "unknown-workload";
    case ErrorCode::ProtocolViolation: return "protocol-violation";
  }
  return "?";
}

bool is_retryable(ErrorCode c) {
  switch (c) {
    case ErrorCode::Busy:
    case ErrorCode::Draining:
    case ErrorCode::IdleTimeout:
    case ErrorCode::ReadTimeout:
    case ErrorCode::BadFrame:  // corruption in flight, not a bad request
      return true;
    default:
      return false;
  }
}

std::vector<std::uint8_t> encode(const HelloPayload& p) {
  BinaryWriter w;
  w.write_tag("net.hello.v1");
  w.write_u64(p.protocol);
  w.write_tag(p.client);
  return w.buffer();
}

HelloPayload decode_hello(std::span<const std::uint8_t> bytes) {
  BinaryReader r = make_reader(bytes);
  r.expect_tag("net.hello.v1");
  HelloPayload p;
  p.protocol = r.read_u64();
  p.client = r.read_string(kMaxNameLen);
  check_consumed(r, "hello");
  return p;
}

std::vector<std::uint8_t> encode(const HelloAckPayload& p) {
  BinaryWriter w;
  w.write_tag("net.helloack.v1");
  w.write_u64(p.protocol);
  w.write_tag(p.server);
  w.write_u64(p.max_payload_bytes);
  w.write_u64(p.max_in_flight);
  return w.buffer();
}

HelloAckPayload decode_hello_ack(std::span<const std::uint8_t> bytes) {
  BinaryReader r = make_reader(bytes);
  r.expect_tag("net.helloack.v1");
  HelloAckPayload p;
  p.protocol = r.read_u64();
  p.server = r.read_string(kMaxNameLen);
  p.max_payload_bytes = r.read_u64();
  p.max_in_flight = r.read_u64();
  check_consumed(r, "hello-ack");
  return p;
}

std::vector<std::uint8_t> encode(const SubmitPayload& p) {
  BinaryWriter w;
  w.write_tag("net.submit.v1");
  w.write_tag(p.client_job_id);
  w.write_tag(p.tenant);
  w.write_tag(p.workload);
  w.write_u8(p.engine);
  w.write_u8(p.degradable ? 1 : 0);
  w.write_u64(p.fault_seed);
  w.write_double(p.fault_rate);
  w.write_u64(p.deadline_us);
  w.write_u64(p.max_steps);
  w.write_u64(p.max_attempts);
  w.write_u64(p.checkpoint_interval);
  return w.buffer();
}

SubmitPayload decode_submit(std::span<const std::uint8_t> bytes) {
  BinaryReader r = make_reader(bytes);
  r.expect_tag("net.submit.v1");
  SubmitPayload p;
  p.client_job_id = r.read_string(kMaxKeyLen);
  p.tenant = r.read_string(kMaxKeyLen);
  p.workload = r.read_string(kMaxNameLen);
  p.engine = r.read_u8();
  p.degradable = r.read_u8() != 0;
  p.fault_seed = r.read_u64();
  p.fault_rate = r.read_double();
  p.deadline_us = r.read_u64();
  p.max_steps = r.read_u64();
  p.max_attempts = r.read_u64();
  p.checkpoint_interval = r.read_u64();
  check_consumed(r, "submit");
  if (p.client_job_id.empty()) {
    throw std::runtime_error("net: submit requires a client_job_id");
  }
  if (p.engine != kEngineLevel && p.engine != kEngineEvent) {
    throw std::runtime_error("net: unknown engine selector");
  }
  return p;
}

std::vector<std::uint8_t> encode(const StatusPayload& p) {
  BinaryWriter w;
  w.write_tag("net.status.v1");
  w.write_tag(p.client_job_id);
  w.write_u8(p.state);
  w.write_u8(p.attached ? 1 : 0);
  w.write_u64(p.trace_id);
  return w.buffer();
}

StatusPayload decode_status(std::span<const std::uint8_t> bytes) {
  BinaryReader r = make_reader(bytes);
  r.expect_tag("net.status.v1");
  StatusPayload p;
  p.client_job_id = r.read_string(kMaxKeyLen);
  p.state = r.read_u8();
  p.attached = r.read_u8() != 0;
  p.trace_id = r.read_u64();
  check_consumed(r, "status");
  return p;
}

std::vector<std::uint8_t> encode(const ResultPayload& p) {
  BinaryWriter w;
  w.write_tag("net.result.v1");
  w.write_tag(p.client_job_id);
  w.write_u8(p.state);
  w.write_tag(p.error);
  w.write_u64(p.attempts);
  w.write_u8(p.degraded ? 1 : 0);
  w.write_u8(p.replayed ? 1 : 0);
  w.write_u64(p.trace_id);
  w.write_u8(p.has_result ? 1 : 0);
  if (p.has_result) {
    w.write_tag(p.workload);
    w.write_tag(p.accelerator);
    w.write_double(p.sim_time_us);
    sim::write_registry(w, p.registry);
  }
  return w.buffer();
}

ResultPayload decode_result(std::span<const std::uint8_t> bytes) {
  BinaryReader r = make_reader(bytes);
  r.expect_tag("net.result.v1");
  ResultPayload p;
  p.client_job_id = r.read_string(kMaxKeyLen);
  p.state = r.read_u8();
  p.error = r.read_string(kMaxErrorLen);
  p.attempts = r.read_u64();
  p.degraded = r.read_u8() != 0;
  p.replayed = r.read_u8() != 0;
  p.trace_id = r.read_u64();
  p.has_result = r.read_u8() != 0;
  if (p.has_result) {
    p.workload = r.read_string(kMaxNameLen);
    p.accelerator = r.read_string(kMaxNameLen);
    p.sim_time_us = r.read_double();
    sim::read_registry(r, p.registry);
  }
  check_consumed(r, "result");
  return p;
}

std::vector<std::uint8_t> encode(const ErrorPayload& p) {
  BinaryWriter w;
  w.write_tag("net.error.v1");
  w.write_u64(p.code);
  w.write_tag(p.message);
  return w.buffer();
}

ErrorPayload decode_error(std::span<const std::uint8_t> bytes) {
  BinaryReader r = make_reader(bytes);
  r.expect_tag("net.error.v1");
  ErrorPayload p;
  p.code = static_cast<std::uint16_t>(r.read_u64());
  p.message = r.read_string(kMaxErrorLen);
  check_consumed(r, "error");
  return p;
}

std::vector<std::uint8_t> encode(const DrainPayload& p) {
  BinaryWriter w;
  w.write_tag("net.drain.v1");
  w.write_tag(p.message);
  return w.buffer();
}

DrainPayload decode_drain(std::span<const std::uint8_t> bytes) {
  BinaryReader r = make_reader(bytes);
  r.expect_tag("net.drain.v1");
  DrainPayload p;
  p.message = r.read_string(kMaxErrorLen);
  check_consumed(r, "drain");
  return p;
}

}  // namespace alchemist::net
