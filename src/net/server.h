// TCP job-submission server: the network front door of the serving layer.
//
// One accept thread plus one thread per connection (bounded by
// ServerOptions::max_connections) speak the framed protocol of net/frame.h /
// net/protocol.h in front of a svc::JobRunner the embedder owns. The server
// adds three things the in-process submit() path does not need:
//
//   * Connection lifecycle hardening. Every blocking read is bounded: a
//     partial frame older than `read_deadline` is answered with a typed
//     ReadTimeout error (the introspection server's 408 analogue), a
//     connection with no traffic and nothing in flight longer than
//     `idle_timeout` is closed with IdleTimeout, a frame whose declared
//     payload exceeds `max_payload` is refused as FrameTooLarge before any
//     buffering (the 431 analogue), and per-connection in-flight requests are
//     capped. All I/O goes through net/socket.h: EINTR-safe, SIGPIPE-free.
//
//   * Exactly-once resubmission. Submissions carry a client idempotency key;
//     the IdempotencyTable maps (tenant, client_job_id) to the job handle so
//     a retry after a torn connection re-attaches to the live job or replays
//     the cached terminal state — the job never runs twice and admission is
//     never charged twice. Admission rejections are not cached (retryable).
//
//   * Graceful drain. drain() stops the listener, notifies every connection
//     with a typed Draining frame, refuses new submissions (ErrorCode::
//     Draining) and lets in-flight jobs run to terminal — their Result frames
//     still deliver. stop() then force-closes whatever remains.
//
// Clients name workloads from a server-resident catalog instead of shipping
// graphs: expensive state stays on the server the way evaluation keys stay
// accelerator-resident in ARK, and the wire payload stays small.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "arch/config.h"
#include "metaop/op_graph.h"
#include "net/frame.h"
#include "net/idempotency.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "obs/log.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "svc/job_runner.h"

namespace alchemist::net {

// net.* metric names exported by Server::snapshot().
namespace metrics {
inline constexpr const char* kAccepted = "net.accepted";
inline constexpr const char* kRefused = "net.refused";  // at-capacity accepts
inline constexpr const char* kClosed = "net.closed";
inline constexpr const char* kFramesIn = "net.frames_in";
inline constexpr const char* kFramesOut = "net.frames_out";
inline constexpr const char* kBadFrames = "net.bad_frames";  // + {error=}
inline constexpr const char* kErrors = "net.errors";         // + {code=}
inline constexpr const char* kSubmitted = "net.submitted";   // fresh submits
inline constexpr const char* kAttached = "net.attached";
inline constexpr const char* kReplayed = "net.replayed";
inline constexpr const char* kResults = "net.results";
inline constexpr const char* kDrainNotices = "net.drain_notices";
}  // namespace metrics

// Server-resident graphs a remote submission may name.
using WorkloadCatalog =
    std::map<std::string, std::shared_ptr<const metaop::OpGraph>>;

struct ServerOptions {
  int port = 0;  // 0 = ephemeral; resolved via Server::port()
  std::string name = "alchemist-net";
  std::size_t max_connections = 32;
  std::size_t max_in_flight = 8;  // per-connection pending submissions
  std::size_t max_payload = kDefaultMaxPayload;
  // Partial-frame read deadline (408-style) and no-traffic idle timeout.
  std::chrono::milliseconds read_deadline{2000};
  std::chrono::milliseconds idle_timeout{30000};
  // Poll granularity of the per-connection loop (recv timeout slice; also
  // bounds how stale a pending job's streamed Status can be).
  std::chrono::milliseconds tick{20};
  std::size_t idempotency_capacity = 1024;
  // Machine configuration applied to every remote job.
  arch::ArchConfig config = arch::ArchConfig::alchemist();
  // Run every remote job with the memory profiler attached (memory.v1):
  // completed jobs fold sim.mem.* series into the runner snapshot and the
  // /statusz memory section. Simulated results stay bit-identical.
  bool mem_profile = false;
  // Optional observability taps, not owned; must outlive the server. Net
  // spans are recorded as trace *roots* sharing the job's trace id, so the
  // wire hop is visible in the same trace without perturbing the runner's
  // span tree.
  obs::TraceSink* trace = nullptr;
  obs::EventLog* log = nullptr;
};

class Server {
 public:
  Server(svc::JobRunner& runner, WorkloadCatalog catalog, ServerOptions opts);
  ~Server();  // stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Bind + listen + start the accept thread. False (with error()) on failure.
  bool start();

  // Graceful drain: stop accepting connections, send every live connection a
  // Draining frame, refuse new submissions. In-flight jobs keep running and
  // their Result frames still deliver. Idempotent.
  void drain(const std::string& message = "server draining");

  // drain() + force-close remaining connections + join all threads. After
  // stop() the runner still owns any jobs that were admitted. Idempotent.
  void stop();

  bool started() const { return started_; }
  bool draining() const { return draining_.load(std::memory_order_acquire); }
  int port() const { return listener_.port(); }
  const std::string& error() const { return listener_.error(); }

  // Point-in-time copy of the net.* registry.
  obs::Registry snapshot() const;
  std::size_t active_connections() const;
  const IdempotencyTable& idempotency() const { return idem_; }

 private:
  void accept_loop();
  void handle_connection(int fd, std::uint64_t conn_id);

  svc::JobRunner& runner_;
  WorkloadCatalog catalog_;
  ServerOptions opts_;
  IdempotencyTable idem_;
  Listener listener_;

  std::atomic<bool> draining_{false};
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::mutex stop_mu_;   // serializes the one-time join in stop()
  bool joined_ = false;  // guarded by stop_mu_

  mutable std::mutex mu_;  // registry, thread bookkeeping, drain message
  std::string drain_message_;
  obs::Registry reg_;
  std::size_t active_ = 0;
  std::uint64_t next_conn_id_ = 0;
  std::thread accept_thread_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace alchemist::net
