// Wire framing for the TCP job-submission protocol.
//
// Every message on a job-protocol connection is one frame:
//
//   offset  size  field
//   0       4     magic "ALCH"
//   4       1     protocol version (kProtocolVersion)
//   5       1     frame type (FrameType)
//   6       2     reserved, must be 0
//   8       4     payload length (little-endian u32)
//   12      len   payload (a common/serdes-encoded document, see protocol.h)
//   12+len  8     FNV-1a footer over bytes [0, 12+len) (little-endian u64)
//
// The parser applies the serdes reader's discipline to a byte *stream*: the
// declared payload length is checked against the configured frame cap the
// moment the header is complete — before any payload is buffered — so a
// 12-byte header claiming 2^31 bytes is a typed FrameError::Oversize, not an
// allocation. Corruption anywhere in the frame fails the footer check
// (FrameError::BadChecksum). All hard errors are sticky: a stream that has
// desynchronized cannot be trusted to resynchronize, so the owner must close
// the connection — exactly the posture src/serdes takes with files.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <span>
#include <vector>

namespace alchemist::net {

inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderSize = 12;
inline constexpr std::size_t kFrameFooterSize = 8;
// Default per-frame payload cap: job requests and serialized SimResult
// registries are a few KiB; 1 MiB leaves headroom for future key material
// without letting one frame buffer unbounded memory.
inline constexpr std::size_t kDefaultMaxPayload = 1u << 20;

enum class FrameType : std::uint8_t {
  Hello = 1,     // client -> server: version handshake, client name
  HelloAck = 2,  // server -> client: negotiated limits
  Submit = 3,    // client -> server: job request with idempotency key
  Status = 4,    // server -> client: non-terminal state transition
  Result = 5,    // server -> client: terminal state (+ SimResult payload)
  Error = 6,     // server -> client: typed rejection (see ErrorCode)
  Drain = 7,     // server -> client: graceful shutdown notice, then close
  Ping = 8,      // either direction: liveness probe
  Pong = 9,      // reply to Ping
  Bye = 10,      // client -> server: orderly goodbye
};

const char* to_string(FrameType t);
bool is_known_frame_type(std::uint8_t t);

// Typed parse outcome. NeedMore is not an error — the stream is mid-frame.
// Everything from BadMagic down is sticky and terminal for the connection.
enum class FrameError : std::uint8_t {
  None = 0,
  NeedMore,
  BadMagic,
  BadVersion,   // distinguished so the server can answer VersionMismatch
  BadType,      // unknown frame type byte
  BadReserved,  // nonzero reserved field
  Oversize,     // declared payload exceeds the cap (431-style rejection)
  BadChecksum,  // FNV-1a footer mismatch: corruption in flight
};

const char* to_string(FrameError e);

struct Frame {
  FrameType type = FrameType::Error;
  std::vector<std::uint8_t> payload;
};

// Serialize one frame (header + payload + footer), ready for send_all().
std::vector<std::uint8_t> encode_frame(FrameType type,
                                       std::span<const std::uint8_t> payload,
                                       std::uint8_t version = kProtocolVersion);

// Incremental frame parser over a byte stream. feed() appends received
// bytes; next() pops at most one complete frame per call. After any hard
// error the parser is poisoned (failed() == true) and next() keeps returning
// the same error — the owner must drop the connection.
class FrameParser {
 public:
  explicit FrameParser(std::size_t max_payload = kDefaultMaxPayload)
      : max_payload_(max_payload) {}

  void feed(std::span<const std::uint8_t> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  // Returns None and fills `out` when one full, verified frame was consumed;
  // NeedMore when the buffer holds only a partial frame; a sticky hard error
  // otherwise.
  FrameError next(Frame& out);

  bool failed() const { return sticky_ != FrameError::None; }
  FrameError error() const { return sticky_; }
  // Bytes currently buffered (a nonzero value after next() == NeedMore means
  // a frame is in flight — the owner's read-deadline clock applies).
  std::size_t buffered() const { return buf_.size(); }
  std::size_t max_payload() const { return max_payload_; }

 private:
  std::size_t max_payload_;
  std::vector<std::uint8_t> buf_;
  FrameError sticky_ = FrameError::None;
};

}  // namespace alchemist::net
