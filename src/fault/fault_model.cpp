#include "fault/fault_model.h"

#include <cmath>
#include <stdexcept>

#include "arch/data_layout.h"

namespace alchemist::fault {

const char* to_string(Policy p) {
  switch (p) {
    case Policy::None: return "none";
    case Policy::DetectRetry: return "detect-retry";
    case Policy::Dmr: return "dmr";
  }
  return "?";
}

Policy policy_from_string(std::string_view s) {
  if (s == "none") return Policy::None;
  if (s == "detect-retry") return Policy::DetectRetry;
  if (s == "dmr") return Policy::Dmr;
  throw std::invalid_argument("fault policy must be none, detect-retry or dmr; got \"" +
                              std::string(s) + "\"");
}

namespace {

void check_rate(double rate, const char* name) {
  if (!(rate >= 0.0) || !(rate <= 1.0) || !std::isfinite(rate)) {
    throw std::invalid_argument(std::string("FaultModel: ") + name +
                                " must be a finite rate in [0, 1]");
  }
}

}  // namespace

FaultModel::FaultModel(FaultConfig config, std::size_t num_units)
    : cfg_(std::move(config)), num_units_(num_units), rng_(cfg_.seed) {
  check_rate(cfg_.compute_fault_rate, "compute_fault_rate");
  check_rate(cfg_.sram_fault_rate, "sram_fault_rate");
  check_rate(cfg_.hbm_fault_rate, "hbm_fault_rate");
  std::vector<bool> masked(num_units, false);
  for (std::size_t id : cfg_.masked_units) {
    if (id >= num_units) {
      throw std::invalid_argument("FaultModel: masked unit id out of range");
    }
    masked[id] = true;
  }
  masked_count_ = 0;
  for (bool m : masked) masked_count_ += m ? 1 : 0;
  if (masked_count_ == num_units) {
    throw std::invalid_argument("FaultModel: all units masked out");
  }
}

bool FaultModel::transient_active() const {
  return cfg_.compute_fault_rate > 0 || cfg_.sram_fault_rate > 0 ||
         cfg_.hbm_fault_rate > 0;
}

bool FaultModel::enabled() const {
  return transient_active() || masked_count_ > 0 || cfg_.policy == Policy::Dmr;
}

arch::ArchConfig FaultModel::degraded(const arch::ArchConfig& base) const {
  arch::ArchConfig cfg = base;
  cfg.num_units = healthy_units();
  if (cfg_.policy == Policy::Dmr) {
    cfg.cores_per_unit = (cfg.cores_per_unit + 1) / 2;
  }
  return cfg;
}

double FaultModel::slot_padding_factor(std::size_t n) const {
  if (masked_count_ == 0 || n == 0) return 1.0;
  return arch::DegradedSlotLayout(n, num_units_, cfg_.masked_units).padding_factor();
}

std::uint64_t FaultModel::draw(double expected) {
  if (expected <= 0.0) return 0;
  const double base = std::floor(expected);
  const double frac = expected - base;
  std::uint64_t count = static_cast<std::uint64_t>(base);
  // Bernoulli on the fractional part keeps the draw unbiased while consuming
  // exactly one RNG word per domain per op (reproducibility contract).
  if (rng_.uniform_real() < frac) ++count;
  return count;
}

OpFaults FaultModel::sample_op(std::uint64_t core_cycles, std::uint64_t lane_cycles,
                               std::uint64_t hbm_bytes) {
  OpFaults f;
  if (cfg_.compute_fault_rate > 0) {
    f.compute = draw(cfg_.compute_fault_rate * static_cast<double>(core_cycles));
  }
  if (cfg_.sram_fault_rate > 0) {
    f.sram = draw(cfg_.sram_fault_rate * static_cast<double>(lane_cycles));
  }
  if (cfg_.hbm_fault_rate > 0) {
    f.hbm = draw(cfg_.hbm_fault_rate * static_cast<double>(hbm_bytes));
  }
  return f;
}

}  // namespace alchemist::fault
