// Deterministic fault model for the Alchemist simulators.
//
// A production-scale part is never fully healthy: compute lanes take
// transient upsets, local SRAM words flip, HBM bursts arrive corrupted, and
// whole computing units fail permanently at manufacturing or in the field.
// The FaultModel captures all four as configuration:
//
//   * per-exposure transient rates for the three fault domains
//     (compute: per core-cycle; SRAM: per lane-cycle, i.e. per word access;
//      HBM: per byte streamed), sampled with a seed-driven RNG so a run is
//     exactly reproducible;
//   * a permanent unit-failure mask, which shrinks the machine geometry —
//     the slot layout re-partitions over the healthy units
//     (arch::DegradedSlotLayout) and both simulators recompute cycle and
//     bandwidth costs for the degraded chip;
//   * a mitigation policy deciding what a transient fault costs:
//       none          faults silently corrupt the affected op's output,
//       detect-retry  ECC/checksum detection re-executes the affected
//                     Meta-OP batch, cost doubling per successive retry,
//                     bounded by max_retries (beyond that: unrecoverable),
//       dmr           dual-modular redundancy: every core is paired with a
//                     shadow core (halving effective cores); mismatches are
//                     corrected with a single batch re-execution.
//
// The model is consulted by both simulate_alchemist engines; with all rates
// zero, no mask and a non-DMR policy it is inert (enabled() == false) and the
// simulators are bit-identical to a run without a fault model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "arch/config.h"
#include "common/rng.h"

namespace alchemist::fault {

// Metric names the fault-aware simulators emit into the obs::Registry
// (and therefore into alchemist.metrics.v1 reports).
namespace metrics {
inline constexpr const char* kInjected = "fault.injected";  // + {domain=}
inline constexpr const char* kRetries = "fault.retries";
inline constexpr const char* kRetryCycles = "fault.retry_cycles";
inline constexpr const char* kBackoffUs = "fault.backoff_us";  // Retrier pacing
inline constexpr const char* kCorruptedOps = "fault.corrupted_ops";
inline constexpr const char* kDmrCorrections = "fault.dmr_corrections";
inline constexpr const char* kMaskedUnits = "fault.masked_units";
}  // namespace metrics

enum class Policy { None, DetectRetry, Dmr };

const char* to_string(Policy p);
// Parses "none" | "detect-retry" | "dmr"; throws std::invalid_argument.
Policy policy_from_string(std::string_view s);

struct FaultConfig {
  u64 seed = 0xfa117u;
  double compute_fault_rate = 0.0;  // transient upsets per core-cycle
  double sram_fault_rate = 0.0;     // word flips per lane-cycle (word access)
  double hbm_fault_rate = 0.0;      // corrupted bytes per byte streamed
  std::vector<std::size_t> masked_units;  // permanently failed unit ids
  Policy policy = Policy::None;
  std::size_t max_retries = 4;      // per-op retry bound under detect-retry
};

// Transient faults one op attracted, split by domain.
struct OpFaults {
  std::uint64_t compute = 0;
  std::uint64_t sram = 0;
  std::uint64_t hbm = 0;
  std::uint64_t total() const { return compute + sram + hbm; }
};

class FaultModel {
 public:
  // Validates the config against the machine's unit count: masked ids must be
  // in range and at least one unit must survive; rates must be finite and in
  // [0, 1]. Duplicated masked ids are tolerated.
  FaultModel(FaultConfig config, std::size_t num_units);

  const FaultConfig& config() const { return cfg_; }

  // True when the model can change anything at all: a transient rate is
  // positive, units are masked, or the policy reserves redundant hardware.
  bool enabled() const;
  bool transient_active() const;

  std::size_t masked_count() const { return masked_count_; }
  std::size_t healthy_units() const { return num_units_ - masked_count_; }

  // The machine geometry after permanent failures and policy overhead:
  // masked units disappear (with their local SRAM); DMR pairs each remaining
  // core with a shadow, halving effective cores per unit.
  arch::ArchConfig degraded(const arch::ArchConfig& base) const;

  // Work inflation a slot-partitioned N-point operator pays on the degraded
  // stripe (arch::DegradedSlotLayout::padding_factor); 1.0 with no mask.
  double slot_padding_factor(std::size_t n) const;

  // Draw the transient faults for one op given its exposure in each domain.
  // Deterministic for a fixed seed and call sequence; both simulators sample
  // ops in graph index order, so a (seed, graph, config) triple fully
  // reproduces a faulty run.
  OpFaults sample_op(std::uint64_t core_cycles, std::uint64_t lane_cycles,
                     std::uint64_t hbm_bytes);

  // Re-arm the RNG at the configured seed (for back-to-back reproductions).
  void reset() { rng_ = Rng(cfg_.seed); }

 private:
  std::uint64_t draw(double expected);

  FaultConfig cfg_;
  std::size_t num_units_;
  std::size_t masked_count_;
  Rng rng_;
};

}  // namespace alchemist::fault
