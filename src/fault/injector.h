// Functional-layer fault injection and bounded detect-and-retry execution.
//
// The FaultModel (fault_model.h) prices faults in simulated cycles; this file
// makes them *happen* to real data, so corruption can be chased end-to-end
// through the FHE library: a residue flipped under an NTT or a lazy kernel
// propagates into a ciphertext, which the ckks::NoiseGuard must then flag
// before decryption.
//
//   Injector   seeded corruptor for RnsPoly data (uniform residue
//              replacement — the post-reduction image of any SRAM/lane upset)
//   poly_checksum
//              cheap per-channel detection code (the software stand-in for
//              the ECC/checksum hardware detect-retry relies on)
//   Retrier    run-compute / validate / re-execute loop, bounded, counting
//              retries into an obs::Registry
#pragma once

#include <cstdint>
#include <stdexcept>
#include <utility>

#include "common/backoff.h"
#include "common/rng.h"
#include "fault/fault_model.h"
#include "obs/registry.h"
#include "poly/rns.h"

namespace alchemist::fault {

// Thrown by Retrier when max_retries consecutive re-executions still fail
// validation (a persistent fault detect-retry cannot mask).
class UnrecoverableFaultError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Injector {
 public:
  // `rate` is the per-call corruption probability of maybe_corrupt().
  explicit Injector(u64 seed, double rate = 1.0);

  // Replace one uniformly-chosen residue of one channel with a fresh uniform
  // value mod that channel's prime. Returns the (channel, index) hit.
  std::pair<std::size_t, std::size_t> corrupt(RnsPoly& poly);

  // Corrupt with probability `rate`; returns true when a fault was injected.
  bool maybe_corrupt(RnsPoly& poly);

  std::uint64_t injected() const { return injected_; }

 private:
  Rng rng_;
  double rate_;
  std::uint64_t injected_ = 0;
};

// Order-sensitive FNV-1a digest over every residue of every channel (plus the
// basis and form), so any single corrupted word changes the checksum.
std::uint64_t poly_checksum(const RnsPoly& poly);

// Bounded detect-and-retry harness: run `compute`, check `valid(result)`,
// re-execute on failure. Attempt counts and successes land in the registry
// (fault.retries) when one is attached; exhausting max_retries throws
// UnrecoverableFaultError.
//
// Each re-execution is paced by the shared exponential-backoff policy
// (common/backoff.h, deterministic seed-driven jitter — the same policy the
// svc::JobRunner uses for job-level retries). The delay is accounted, not
// slept: backoff_us() and the fault.backoff_us counter report the pacing a
// deployment would have inserted between attempts.
class Retrier {
 public:
  explicit Retrier(std::size_t max_retries = 4, obs::Registry* registry = nullptr,
                   BackoffConfig backoff = {})
      : max_retries_(max_retries), registry_(registry), backoff_(backoff) {}

  template <typename Compute, typename Valid>
  auto run(Compute&& compute, Valid&& valid) -> decltype(compute()) {
    for (std::size_t attempt = 0;; ++attempt) {
      auto result = compute();
      if (valid(result)) return result;
      if (attempt >= max_retries_) {
        throw UnrecoverableFaultError(
            "detect-retry: validation still failing after " +
            std::to_string(max_retries_) + " retries");
      }
      ++retries_;
      const std::uint64_t delay_us = backoff_.next_us();
      if (registry_) {
        registry_->add(metrics::kRetries, 1);
        registry_->add(metrics::kBackoffUs, delay_us);
      }
    }
  }

  std::uint64_t retries() const { return retries_; }
  // Total pacing delay the backoff policy charged across all retries.
  std::uint64_t backoff_us() const { return backoff_.total_us(); }

 private:
  std::size_t max_retries_;
  obs::Registry* registry_;
  Backoff backoff_;
  std::uint64_t retries_ = 0;
};

}  // namespace alchemist::fault
