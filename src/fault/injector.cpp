#include "fault/injector.h"

#include <stdexcept>

namespace alchemist::fault {

Injector::Injector(u64 seed, double rate) : rng_(seed), rate_(rate) {
  if (!(rate >= 0.0) || !(rate <= 1.0)) {
    throw std::invalid_argument("Injector: rate must be in [0, 1]");
  }
}

std::pair<std::size_t, std::size_t> Injector::corrupt(RnsPoly& poly) {
  if (poly.num_channels() == 0 || poly.degree() == 0) {
    throw std::invalid_argument("Injector: cannot corrupt an empty polynomial");
  }
  const std::size_t channel = rng_.uniform(poly.num_channels());
  const std::size_t index = rng_.uniform(poly.degree());
  const u64 q = poly.moduli()[channel];
  auto ch = poly.channel(channel);
  const u64 old = ch[index];
  u64 fresh = rng_.uniform(q);
  if (fresh == old) fresh = (fresh + 1) % q;  // guarantee a visible fault
  ch[index] = fresh;
  ++injected_;
  return {channel, index};
}

bool Injector::maybe_corrupt(RnsPoly& poly) {
  if (rng_.uniform_real() >= rate_) return false;
  corrupt(poly);
  return true;
}

std::uint64_t poly_checksum(const RnsPoly& poly) {
  // FNV-1a over the structural fields and every residue, in order.
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(poly.degree());
  mix(poly.is_ntt() ? 1 : 0);
  for (u64 q : poly.moduli()) mix(q);
  for (std::size_t c = 0; c < poly.num_channels(); ++c) {
    for (u64 v : poly.channel(c)) mix(v);
  }
  return h;
}

}  // namespace alchemist::fault
