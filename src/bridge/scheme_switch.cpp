#include "bridge/scheme_switch.h"

#include <stdexcept>

namespace alchemist::bridge {

namespace {

using tfhe::Torus;

// Round x in [0, q0) to the 2^64 torus: round(x * 2^64 / q0).
Torus to_torus(u64 x, u64 q0) {
  const u128 scaled = (u128{x} << 64) + q0 / 2;
  return static_cast<Torus>(scaled / q0);
}

}  // namespace

tfhe::LweKey ckks_lwe_secret(const ckks::CkksContext& ctx, const ckks::SecretKey& sk) {
  RnsPoly s = sk.s;
  s.to_coeff();
  const u64 q = s.moduli()[0];
  tfhe::LweKey key;
  key.s.resize(ctx.degree());
  for (std::size_t i = 0; i < ctx.degree(); ++i) {
    const u64 v = s.channel(0)[i];
    if (v == 0) {
      key.s[i] = 0;
    } else if (v == 1) {
      key.s[i] = 1;
    } else if (v == q - 1) {
      key.s[i] = -1;
    } else {
      throw std::invalid_argument("ckks_lwe_secret: secret is not ternary");
    }
  }
  return key;
}

tfhe::KeySwitchKey make_bridge_key(const ckks::CkksContext& ctx,
                                   const ckks::SecretKey& ckks_sk,
                                   const tfhe::LweKey& tfhe_key,
                                   const tfhe::TfheParams& params, Rng& rng) {
  return tfhe::make_keyswitch_key(ckks_lwe_secret(ctx, ckks_sk), tfhe_key,
                                  params.ks_base_bits, params.ks_length,
                                  params.lwe_sigma, rng);
}

tfhe::LweSample extract_lwe(const ckks::CkksContext& ctx, const ckks::Ciphertext& ct,
                            std::size_t k) {
  if (ct.level != 1) {
    throw std::invalid_argument("extract_lwe: ciphertext must be at level 1");
  }
  const std::size_t n = ctx.degree();
  if (k >= n) throw std::invalid_argument("extract_lwe: coefficient out of range");
  const u64 q0 = ctx.q_moduli()[0];

  RnsPoly c0 = ct.c0;
  RnsPoly c1 = ct.c1;
  c0.to_coeff();
  c1.to_coeff();
  const auto a1 = c1.channel(0);

  // Decryption is m_k = c0[k] + (c1 * s)[k]; TFHE's phase convention is
  // b - <a, s>, so the mask is the *negated* negacyclic gather of c1.
  tfhe::LweSample out;
  out.a.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    const u64 coeff = j <= k ? a1[k - j] : q0 - a1[n + k - j];  // +c1[k-j] / -c1[...]
    out.a[j] = to_torus(coeff == q0 ? 0 : q0 - coeff, q0);      // negate mod q0
  }
  out.b = to_torus(c0.channel(0)[k], q0);
  return out;
}

tfhe::LweSample switch_to_tfhe(const ckks::CkksContext& ctx,
                               const ckks::Ciphertext& ct, std::size_t k,
                               const tfhe::KeySwitchKey& bridge_key) {
  return tfhe::keyswitch(extract_lwe(ctx, ct, k), bridge_key);
}

}  // namespace alchemist::bridge
