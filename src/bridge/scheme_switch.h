// Cross-scheme ciphertext bridge: CKKS -> TFHE (Pegasus-style [6], reduced).
//
// The workloads that motivate Alchemist evaluate the *linear* part of a
// computation under arithmetic FHE and the *non-linear* part (comparison,
// sign, LUT) under logic FHE. This module implements the switch without
// decryption:
//
//   1. extract   A CKKS ciphertext at level 1 (single prime q0) in
//                coefficient form is, per coefficient k, an LWE encryption of
//                m_k under the CKKS secret: b = c0[k], a = "rotated" c1.
//   2. modswitch Rescale the (a, b) pair from Z_q0 to the 2^64 torus.
//   3. keyswitch From the N-dimensional ternary CKKS key to the TFHE binary
//                LWE key (standard digit-decomposed LWE keyswitch; ternary
//                source bits just flip the payload sign).
//
// The resulting LWE sample encrypts m_k / q0 on the torus and feeds directly
// into programmable bootstrapping (sign, threshold, arbitrary LUT). Messages
// must be scaled so m/q0 clears the PBS noise margin (use Delta close to q0).
#pragma once

#include "ckks/ciphertext.h"
#include "ckks/keys.h"
#include "ckks/params.h"
#include "tfhe/bootstrap.h"

namespace alchemist::bridge {

// The LWE secret hidden inside a CKKS secret key (its coefficient vector),
// needed to generate the bridge keyswitch key.
tfhe::LweKey ckks_lwe_secret(const ckks::CkksContext& ctx,
                             const ckks::SecretKey& sk);

// Keyswitch key from the CKKS coefficient secret to a TFHE LWE key.
tfhe::KeySwitchKey make_bridge_key(const ckks::CkksContext& ctx,
                                   const ckks::SecretKey& ckks_sk,
                                   const tfhe::LweKey& tfhe_key,
                                   const tfhe::TfheParams& params, Rng& rng);

// Extract coefficient k of a level-1 CKKS ciphertext as a torus LWE sample
// under the CKKS coefficient secret. The sample encrypts m_k / q0 (where the
// CKKS plaintext polynomial has integer coefficients m_k = Delta * value).
tfhe::LweSample extract_lwe(const ckks::CkksContext& ctx,
                            const ckks::Ciphertext& ct, std::size_t k);

// Full bridge: extract + keyswitch to the TFHE key. The output is ready for
// programmable bootstrapping.
tfhe::LweSample switch_to_tfhe(const ckks::CkksContext& ctx,
                               const ckks::Ciphertext& ct, std::size_t k,
                               const tfhe::KeySwitchKey& bridge_key);

}  // namespace alchemist::bridge
