// Noise measurement and ciphertext invariant checks for CKKS.
//
// CKKS noise is only observable with the secret key; the NoiseOracle wraps a
// decryptor to report how many bits of the scale the error has consumed —
// the quantity that decides when a ciphertext must be bootstrapped.
#pragma once

#include <complex>
#include <span>

#include "ckks/ciphertext.h"
#include "ckks/encoder.h"
#include "ckks/encryptor.h"
#include "ckks/params.h"

namespace alchemist::ckks {

class NoiseOracle {
 public:
  NoiseOracle(ContextPtr ctx, const CkksEncoder& encoder, const Decryptor& decryptor);

  // log2 of the largest slot error against the expected values. Returns a
  // negative number for sub-unit errors (e.g. -20 means max error 2^-20).
  double error_bits(const Ciphertext& ct,
                    std::span<const std::complex<double>> expected) const;

  // Remaining precision headroom in bits: log2(scale) - error-magnitude bits
  // relative to the message. Bootstrapping is due when this approaches 0.
  double precision_bits(const Ciphertext& ct,
                        std::span<const std::complex<double>> expected) const;

 private:
  ContextPtr ctx_;
  const CkksEncoder& encoder_;
  const Decryptor& decryptor_;
};

// Structural invariants every well-formed ciphertext satisfies; throws
// std::logic_error with a description on violation. Useful in tests and as a
// debug assertion after evaluator pipelines.
void check_ciphertext_invariants(const CkksContext& ctx, const Ciphertext& ct);

}  // namespace alchemist::ckks
