// Noise measurement, ciphertext invariant checks and the pre-decryption
// health guard for CKKS.
//
// CKKS noise is only observable with the secret key; the NoiseOracle wraps a
// decryptor to report how many bits of the scale the error has consumed —
// the quantity that decides when a ciphertext must be bootstrapped. The
// NoiseGuard turns the same observability into a boundary defense: a
// corrupted ciphertext (a flipped residue under an NTT, a bad HBM burst, a
// hostile serialized blob) is flagged with a structured error *before* its
// garbage plaintext escapes into application code.
#pragma once

#include <complex>
#include <span>
#include <stdexcept>
#include <string>

#include "ckks/ciphertext.h"
#include "ckks/encoder.h"
#include "ckks/encryptor.h"
#include "ckks/params.h"

namespace alchemist::ckks {

class NoiseOracle {
 public:
  NoiseOracle(ContextPtr ctx, const CkksEncoder& encoder, const Decryptor& decryptor);

  // log2 of the largest slot error against the expected values. Returns a
  // negative number for sub-unit errors (e.g. -20 means max error 2^-20).
  double error_bits(const Ciphertext& ct,
                    std::span<const std::complex<double>> expected) const;

  // Remaining precision headroom in bits: log2(scale) - error-magnitude bits
  // relative to the message. Bootstrapping is due when this approaches 0.
  double precision_bits(const Ciphertext& ct,
                        std::span<const std::complex<double>> expected) const;

 private:
  ContextPtr ctx_;
  const CkksEncoder& encoder_;
  const Decryptor& decryptor_;
};

// Structural invariants every well-formed ciphertext satisfies; throws
// std::logic_error with a description on violation. Useful in tests and as a
// debug assertion after evaluator pipelines.
void check_ciphertext_invariants(const CkksContext& ctx, const Ciphertext& ct);

// Structured error a health check raises for a ciphertext that must not be
// decrypted (corrupted in transit, in memory, or by a faulty kernel).
class CorruptCiphertextError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// The guard's verdict, with enough numbers to log why.
struct HealthReport {
  bool healthy = true;
  std::string reason;      // empty when healthy
  double coeff_bits = 0;   // log2 max |coefficient| of the decrypted poly
  double budget_bits = 0;  // log2 of the corruption threshold (~ Q_level / 4)
};

// Pre-decryption health check built on the decryptor's view:
//  1. the structural invariants above (levels, scale, basis, residue ranges);
//  2. a magnitude test — a transient fault anywhere in the evaluation
//     pipeline decorrelates c0 + c1*s from the small message+noise
//     polynomial, so the decrypted coefficients jump from ~scale*message to
//     uniform in ±Q/2. Any coefficient above Q_level/4 (the CKKS decryption
//     correctness bound) flags the ciphertext.
// check() reports; require_healthy() throws CorruptCiphertextError, so
// callers can gate decryption with one line.
class NoiseGuard {
 public:
  NoiseGuard(ContextPtr ctx, const Decryptor& decryptor);

  HealthReport check(const Ciphertext& ct) const;
  void require_healthy(const Ciphertext& ct) const;

 private:
  ContextPtr ctx_;
  const Decryptor& decryptor_;
};

}  // namespace alchemist::ckks
