#include "ckks/encryptor.h"

#include <stdexcept>

#include "ckks/noise.h"

namespace alchemist::ckks {

Encryptor::Encryptor(ContextPtr ctx, PublicKey pk, u64 seed)
    : ctx_(std::move(ctx)), pk_(std::move(pk)), rng_(seed) {}

RnsPoly Encryptor::sample_small_ntt(const std::vector<u64>& basis, bool ternary) {
  const std::size_t n = ctx_->degree();
  std::vector<i64> small(n);
  for (i64& v : small) {
    v = ternary ? static_cast<i64>(rng_.uniform(3)) - 1
                : rng_.gaussian_signed(ctx_->params().noise_sigma);
  }
  RnsPoly p(n, basis);
  for (std::size_t c = 0; c < basis.size(); ++c) {
    const u64 q = basis[c];
    auto ch = p.channel(c);
    for (std::size_t i = 0; i < n; ++i) {
      ch[i] = small[i] >= 0 ? static_cast<u64>(small[i]) % q
                            : q - static_cast<u64>(-small[i]) % q;
    }
  }
  p.to_ntt();
  return p;
}

Ciphertext Encryptor::encrypt(const Plaintext& pt) {
  const std::size_t top = ctx_->params().num_levels;
  const auto top_basis = ctx_->basis_at(top);

  // (c0, c1) = (v*b + e0 + m, v*a + e1) over the full basis, then drop to the
  // plaintext's level.
  const RnsPoly v = sample_small_ntt(top_basis, /*ternary=*/true);
  RnsPoly c0 = pk_.b;
  c0 *= v;
  c0 += sample_small_ntt(top_basis, /*ternary=*/false);
  RnsPoly c1 = pk_.a;
  c1 *= v;
  c1 += sample_small_ntt(top_basis, /*ternary=*/false);

  if (pt.level > top) throw std::invalid_argument("Encryptor: bad plaintext level");
  c0.drop_channels_to(pt.level);
  c1.drop_channels_to(pt.level);
  c0 += pt.poly;
  return Ciphertext{std::move(c0), std::move(c1), pt.level, pt.scale};
}

Decryptor::Decryptor(ContextPtr ctx, SecretKey sk, bool validate)
    : ctx_(std::move(ctx)), sk_(std::move(sk)), validate_(validate) {}

std::vector<double> Decryptor::decrypt_coeffs(const Ciphertext& ct) const {
  if (validate_) check_ciphertext_invariants(*ctx_, ct);
  RnsPoly m = ct.c1;
  m *= sk_.s.extract_channels(0, ct.level);
  m += ct.c0;
  m.to_coeff();
  return to_centered_doubles(m);
}

std::vector<std::complex<double>> Decryptor::decrypt(const Ciphertext& ct,
                                                     const CkksEncoder& encoder) const {
  return encoder.decode_centered(decrypt_coeffs(ct), ct.scale);
}

}  // namespace alchemist::ckks
