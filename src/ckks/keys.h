// Key material for RNS-CKKS with hybrid keyswitching.
//
// The keyswitching key for a source secret s_from (s^2 for relinearization,
// s(X^g) for rotations) holds one pair per digit group j:
//   evk_j = ( -a_j * s + e_j + g_j * s_from ,  a_j )  over the basis Q·P,
// where the RNS gadget element g_j has residue P on the group-j channels and
// 0 everywhere else. That residue pattern is level-independent, so a single
// key generated at the top level serves every level — lower levels simply
// drop the missing q-channels when multiplying.
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "poly/rns.h"

namespace alchemist::ckks {

struct SecretKey {
  // Ternary secret, NTT form over the full key basis Q·P.
  RnsPoly s;
};

struct PublicKey {
  // (b, a) = (-a*s + e, a) over the full ciphertext basis Q, NTT form.
  RnsPoly b;
  RnsPoly a;
};

struct KSwitchKey {
  // digits[j] = (b_j, a_j) over the key basis Q·P, NTT form.
  std::vector<std::pair<RnsPoly, RnsPoly>> digits;
};

struct RelinKeys {
  KSwitchKey key;  // switches s^2 -> s
};

struct GaloisKeys {
  // galois element -> key switching s(X^g) -> s
  std::map<u64, KSwitchKey> keys;

  bool has(u64 galois_elt) const { return keys.count(galois_elt) != 0; }
  const KSwitchKey& at(u64 galois_elt) const { return keys.at(galois_elt); }
};

}  // namespace alchemist::ckks
