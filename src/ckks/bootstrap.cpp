#include "ckks/bootstrap.h"

#include <cmath>
#include <stdexcept>

namespace alchemist::ckks {

namespace {

using Complex = std::complex<double>;

std::size_t ceil_log2(std::size_t x) {
  std::size_t k = 0;
  while ((std::size_t{1} << k) < x) ++k;
  return k;
}

}  // namespace

Bootstrapper::Bootstrapper(ContextPtr ctx, const CkksEncoder& encoder,
                           const Evaluator& evaluator, const RelinKeys& relin,
                           const GaloisKeys& galois, BootstrapConfig config)
    : ctx_(std::move(ctx)),
      encoder_(encoder),
      evaluator_(evaluator),
      relin_(relin),
      galois_(galois),
      config_(config),
      poly_(ctx_, encoder_, evaluator_, relin_) {
  const double delta = ctx_->params().scale();
  const double q0 = static_cast<double>(ctx_->q_moduli()[0]);

  // CtS matrix: (Delta / 2 q0) * A^{-1}; the factor turns the conjugation
  // *sum* (no 1/2) directly into t = (m + q0 I) / q0.
  LinearTransform::Matrix cts = coeff_to_slot_matrix(*ctx_);
  const double gamma = delta / (2.0 * q0);
  for (auto& row : cts) {
    for (Complex& v : row) v *= gamma;
  }
  cts_ = std::make_unique<LinearTransform>(ctx_, std::move(cts));
  stc_ = std::make_unique<LinearTransform>(ctx_, slot_to_coeff_matrix(*ctx_));

  // f(t) = (q0 / (2 pi Delta)) * sin(2 pi t) on [-B, B].
  const double b = config_.i_bound + 0.5;
  const double amp = q0 / (2.0 * M_PI * delta);
  sine_cheb_ = chebyshev_fit(
      [amp](double t) { return amp * std::sin(2.0 * M_PI * t); }, -b, b,
      config_.sine_degree);
}

std::vector<int> Bootstrapper::required_rotations(const CkksContext& ctx) {
  // Both transforms are dense over the slot group; collect the BSGS steps of
  // each (they coincide for square dense matrices, but stay general).
  LinearTransform a(std::make_shared<CkksContext>(ctx.params()),
                    slot_to_coeff_matrix(ctx));
  return a.required_rotations(/*bsgs=*/true);
}

std::size_t Bootstrapper::depth() const {
  // CtS: 1 (transform) + 1 (v extraction; u stays a level higher but aligns).
  // EvalMod (Paterson-Stockmeyer over Chebyshev): 1 affine + ceil(log2 k)
  // baby ladder + g giant squarings + 1 direct rescale + g+? recursive
  // combines, with k ~ sqrt(degree) and g = floor(log2(degree/k)).
  // StC: 1 (i*v) + 1 (transform).
  const std::size_t d = config_.sine_degree;
  const std::size_t k = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(d + 1)))));
  std::size_t g = 0;
  for (std::size_t m = k; 2 * m <= d; m *= 2) ++g;
  const std::size_t eval_mod_depth = 2 + ceil_log2(k) + 2 * g;
  return 2 + eval_mod_depth + 2;
}

Ciphertext Bootstrapper::mod_raise(const Ciphertext& ct) const {
  if (ct.level != 1) {
    throw std::invalid_argument("Bootstrapper::mod_raise: expected a level-1 ciphertext");
  }
  const std::size_t top = ctx_->params().num_levels;
  const auto target = ctx_->basis_at(top);
  const u64 q0 = ctx_->q_moduli()[0];

  auto lift = [&](const RnsPoly& in) {
    RnsPoly coeff = in;
    coeff.to_coeff();
    RnsPoly out(coeff.degree(), target, RnsPoly::Form::Coeff);
    for (std::size_t c = 0; c < target.size(); ++c) {
      const u64 q = target[c];
      auto dst = out.channel(c);
      auto src = coeff.channel(0);
      for (std::size_t k = 0; k < coeff.degree(); ++k) {
        const u64 v = src[k];
        // Centered lift of the q0 residue into each channel.
        dst[k] = v <= q0 / 2 ? v % q : q - (q0 - v) % q;
      }
    }
    out.to_ntt();
    return out;
  };

  return Ciphertext{lift(ct.c0), lift(ct.c1), top, ct.scale};
}

std::pair<Ciphertext, Ciphertext> Bootstrapper::coeff_to_slot(const Ciphertext& ct) const {
  // w = (Delta / 2 q0) * A^{-1} z: slots hold gamma * (u + i v).
  Ciphertext w = cts_->apply(evaluator_, encoder_, ct, galois_, ct.scale);
  w = evaluator_.rescale(w);
  const Ciphertext w_conj = evaluator_.conjugate(w, galois_);

  // u-part: w + conj(w) -> slots 2*gamma*u = (m + q0 I)_low / q0.
  const Ciphertext t_u = evaluator_.add(w, w_conj);
  // v-part: (conj(w) - w) * i -> slots 2*gamma*v (one extra level).
  Ciphertext diff = evaluator_.sub(w_conj, w);
  Ciphertext t_v =
      evaluator_.rescale(evaluator_.mul_scalar(diff, Complex{0.0, 1.0}, encoder_,
                                               diff.scale));
  return {t_u, t_v};
}

Ciphertext Bootstrapper::eval_mod(const Ciphertext& ct) const {
  const double b = config_.i_bound + 0.5;
  return poly_.evaluate_chebyshev_stable(ct, sine_cheb_, -b, b);
}

Ciphertext Bootstrapper::slot_to_coeff(const Ciphertext& u, const Ciphertext& v) const {
  // w' = u + i v, then A w' puts the cleaned coefficients back in place.
  Ciphertext iv = evaluator_.rescale(
      evaluator_.mul_scalar(v, Complex{0.0, 1.0}, encoder_, v.scale));
  Ciphertext w = evaluator_.add_aligned(u, iv);
  Ciphertext out = stc_->apply(evaluator_, encoder_, w, galois_, w.scale);
  return evaluator_.rescale(out);
}

Ciphertext Bootstrapper::bootstrap(const Ciphertext& ct) const {
  const Ciphertext raised = mod_raise(ct);
  auto [t_u, t_v] = coeff_to_slot(raised);
  const Ciphertext m_u = eval_mod(t_u);
  const Ciphertext m_v = eval_mod(t_v);
  return slot_to_coeff(m_u, m_v);
}

}  // namespace alchemist::ckks
