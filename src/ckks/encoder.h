// CKKS canonical-embedding encoder.
//
// A message vector z in C^(N/2) is mapped to the real polynomial m(X) with
// m(zeta_j) = z_j at the evaluation points zeta_j = omega^(5^j mod 2N)
// (omega = exp(i*pi/N), the primitive 2N-th root), then scaled by Delta and
// rounded. The orbit of 5 orders the slots so that the Galois automorphism
// X -> X^(5^r) is exactly a cyclic rotation of the slot vector by r.
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "ckks/params.h"
#include "poly/rns.h"

namespace alchemist::ckks {

// Scaled, encoded message over the RNS basis of some level. NTT form.
struct Plaintext {
  RnsPoly poly;       // NTT form over basis_at(level)
  std::size_t level;  // number of active q primes
  double scale;
};

class CkksEncoder {
 public:
  explicit CkksEncoder(ContextPtr ctx);

  std::size_t slots() const { return ctx_->params().slots(); }

  // Values beyond `values.size()` are zero-padded; values.size() must not
  // exceed slots().
  Plaintext encode(std::span<const std::complex<double>> values,
                   std::size_t level, double scale) const;
  Plaintext encode(std::span<const double> values, std::size_t level,
                   double scale) const;
  // Broadcast a single scalar to every slot.
  Plaintext encode_scalar(std::complex<double> value, std::size_t level,
                          double scale) const;

  // Fast path for the same broadcast: a + b*i in every slot equals the
  // two-coefficient polynomial a + b*X^(N/2) (since 5^j ≡ 1 mod 4, the
  // embedding sends X^(N/2) to +i in every slot). O(N) instead of O(N^2/2).
  Plaintext encode_constant(std::complex<double> value, std::size_t level,
                            double scale) const;

  // Exact decode: CRT-composes the RNS residues, centers mod Q, divides by
  // the scale and evaluates the embedding.
  std::vector<std::complex<double>> decode(const Plaintext& pt) const;

  // Decode pre-centered coefficients (used by the decryptor).
  std::vector<std::complex<double>> decode_centered(
      std::span<const double> centered_coeffs, double scale) const;

 private:
  ContextPtr ctx_;
  std::vector<std::complex<double>> omega_powers_;  // omega^t, t in [0, 2N)
  std::vector<std::size_t> rot_group_;              // 5^j mod 2N, j in [0, N/2)
};

// CRT-compose each coefficient of a coefficient-form RnsPoly and center it
// into (-Q/2, Q/2], returned as doubles. Values must be small enough for a
// double (|x| < 2^1000 trivially, precision loss beyond 2^53 is the caller's
// concern — decrypted CKKS coefficients are Delta-scaled messages, far below).
std::vector<double> to_centered_doubles(const RnsPoly& coeff_form);

}  // namespace alchemist::ckks
