#include "ckks/encoder.h"

#include <cmath>
#include <stdexcept>

#include "common/biguint.h"

namespace alchemist::ckks {

CkksEncoder::CkksEncoder(ContextPtr ctx) : ctx_(std::move(ctx)) {
  const std::size_t n = ctx_->degree();
  const std::size_t two_n = 2 * n;
  omega_powers_.resize(two_n);
  for (std::size_t t = 0; t < two_n; ++t) {
    const double angle = M_PI * static_cast<double>(t) / static_cast<double>(n);
    omega_powers_[t] = {std::cos(angle), std::sin(angle)};
  }
  rot_group_.resize(n / 2);
  std::size_t g = 1;
  for (std::size_t j = 0; j < n / 2; ++j) {
    rot_group_[j] = g;
    g = (g * 5) % two_n;
  }
}

Plaintext CkksEncoder::encode(std::span<const std::complex<double>> values,
                              std::size_t level, double scale) const {
  const std::size_t n = ctx_->degree();
  const std::size_t num_slots = n / 2;
  const std::size_t two_n = 2 * n;
  if (values.size() > num_slots) {
    throw std::invalid_argument("CkksEncoder::encode: too many values");
  }
  if (scale <= 0) throw std::invalid_argument("CkksEncoder::encode: scale must be positive");

  // Inverse embedding: m_k = (2/N) * sum_j Re(z_j * conj(zeta_j^k)).
  std::vector<double> m(n, 0.0);
  for (std::size_t j = 0; j < values.size(); ++j) {
    const std::complex<double> z = values[j];
    if (z == std::complex<double>{0.0, 0.0}) continue;
    const std::size_t sigma = rot_group_[j];
    for (std::size_t k = 0; k < n; ++k) {
      // conj(zeta_j^k) = conj(omega^(sigma*k)) = omega^(2N - sigma*k mod 2N)
      const std::size_t t = (sigma * k) % two_n;
      const std::complex<double>& w = omega_powers_[t];
      m[k] += z.real() * w.real() + z.imag() * w.imag();  // Re(z * conj(w))
    }
  }
  const double norm = 2.0 / static_cast<double>(n);

  RnsPoly poly(n, ctx_->basis_at(level));
  const auto& moduli = poly.moduli();
  for (std::size_t k = 0; k < n; ++k) {
    const double scaled = m[k] * norm * scale;
    if (std::abs(scaled) >= 0x1.0p62) {
      throw std::invalid_argument("CkksEncoder::encode: scaled coefficient exceeds 2^62");
    }
    const i64 rounded = std::llround(scaled);
    for (std::size_t c = 0; c < moduli.size(); ++c) {
      const u64 q = moduli[c];
      poly.channel(c)[k] = rounded >= 0 ? static_cast<u64>(rounded) % q
                                        : q - (static_cast<u64>(-rounded) % q);
    }
  }
  poly.to_ntt();
  return Plaintext{std::move(poly), level, scale};
}

Plaintext CkksEncoder::encode(std::span<const double> values, std::size_t level,
                              double scale) const {
  std::vector<std::complex<double>> complex_values(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) complex_values[i] = values[i];
  return encode(std::span<const std::complex<double>>(complex_values), level, scale);
}

Plaintext CkksEncoder::encode_scalar(std::complex<double> value, std::size_t level,
                                     double scale) const {
  std::vector<std::complex<double>> all(slots(), value);
  return encode(std::span<const std::complex<double>>(all), level, scale);
}

Plaintext CkksEncoder::encode_constant(std::complex<double> value, std::size_t level,
                                       double scale) const {
  const std::size_t n = ctx_->degree();
  if (scale <= 0) throw std::invalid_argument("encode_constant: scale must be positive");
  // Scaled constants can exceed 64 bits (e.g. a constant added at scale
  // Delta^2 during polynomial evaluation); form them in 128-bit and reduce
  // per channel. long double keeps ~64 mantissa bits, so the rounding error
  // is below 2^-60 relative — far under the CKKS noise floor.
  const long double re = static_cast<long double>(value.real()) * scale;
  const long double im = static_cast<long double>(value.imag()) * scale;
  if (std::abs(static_cast<double>(re)) >= 0x1.0p120 ||
      std::abs(static_cast<double>(im)) >= 0x1.0p120) {
    throw std::invalid_argument("encode_constant: scaled value exceeds 2^120");
  }
  const i128 re_r = static_cast<i128>(re);
  const i128 im_r = static_cast<i128>(im);

  RnsPoly poly(n, ctx_->basis_at(level));
  const auto& moduli = poly.moduli();
  for (std::size_t c = 0; c < moduli.size(); ++c) {
    const u64 q = moduli[c];
    auto embed = [q](i128 v) {
      return v >= 0 ? static_cast<u64>(static_cast<u128>(v) % q)
                    : q - static_cast<u64>(static_cast<u128>(-v) % q);
    };
    poly.channel(c)[0] = embed(re_r);
    poly.channel(c)[n / 2] = embed(im_r);
  }
  poly.to_ntt();
  return Plaintext{std::move(poly), level, scale};
}

std::vector<std::complex<double>> CkksEncoder::decode_centered(
    std::span<const double> centered_coeffs, double scale) const {
  const std::size_t n = ctx_->degree();
  const std::size_t num_slots = n / 2;
  const std::size_t two_n = 2 * n;
  if (centered_coeffs.size() != n) {
    throw std::invalid_argument("CkksEncoder::decode_centered: size mismatch");
  }
  std::vector<std::complex<double>> out(num_slots);
  for (std::size_t j = 0; j < num_slots; ++j) {
    const std::size_t sigma = rot_group_[j];
    std::complex<double> acc{0.0, 0.0};
    for (std::size_t k = 0; k < n; ++k) {
      acc += centered_coeffs[k] * omega_powers_[(sigma * k) % two_n];
    }
    out[j] = acc / scale;
  }
  return out;
}

std::vector<std::complex<double>> CkksEncoder::decode(const Plaintext& pt) const {
  RnsPoly coeff = pt.poly;
  coeff.to_coeff();
  const std::vector<double> centered = to_centered_doubles(coeff);
  return decode_centered(centered, pt.scale);
}

std::vector<double> to_centered_doubles(const RnsPoly& coeff_form) {
  if (coeff_form.is_ntt()) {
    throw std::invalid_argument("to_centered_doubles: expected coefficient form");
  }
  const std::size_t n = coeff_form.degree();
  const std::size_t channels = coeff_form.num_channels();
  const BigUInt big_q = BigUInt::product(coeff_form.moduli());
  const BigUInt half_q = big_q.div_u64(2);

  std::vector<double> out(n);
  std::vector<u64> residues(channels);
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t c = 0; c < channels; ++c) residues[c] = coeff_form.channel(c)[k];
    BigUInt x = crt_compose(residues, coeff_form.moduli());
    if (x > half_q) {
      out[k] = -(big_q - x).to_double();
    } else {
      out[k] = x.to_double();
    }
  }
  return out;
}

}  // namespace alchemist::ckks
