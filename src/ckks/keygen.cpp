#include "ckks/keygen.h"

#include "common/biguint.h"

namespace alchemist::ckks {

KeyGenerator::KeyGenerator(ContextPtr ctx, u64 seed)
    : ctx_(std::move(ctx)), rng_(seed) {
  const std::size_t n = ctx_->degree();
  const auto key_basis = ctx_->key_basis();

  // Ternary secret sampled once as signed values, then embedded per channel
  // so every residue channel holds the same integer polynomial. A sparse
  // secret (fixed Hamming weight) is used for bootstrapping parameter sets.
  std::vector<int> s_signed(n, 0);
  const std::size_t h = ctx_->params().secret_hamming_weight;
  if (h == 0) {
    for (int& v : s_signed) v = static_cast<int>(rng_.uniform(3)) - 1;
  } else {
    std::size_t placed = 0;
    while (placed < std::min(h, n)) {
      const std::size_t pos = static_cast<std::size_t>(rng_.uniform(n));
      if (s_signed[pos] != 0) continue;
      s_signed[pos] = rng_.next() & 1 ? 1 : -1;
      ++placed;
    }
  }
  RnsPoly s(n, key_basis);
  for (std::size_t c = 0; c < key_basis.size(); ++c) {
    const u64 q = key_basis[c];
    auto ch = s.channel(c);
    for (std::size_t i = 0; i < n; ++i) {
      ch[i] = s_signed[i] >= 0 ? static_cast<u64>(s_signed[i])
                               : q - static_cast<u64>(-s_signed[i]);
    }
  }
  s.to_ntt();
  secret_ = SecretKey{std::move(s)};
}

RnsPoly KeyGenerator::sample_uniform(const std::vector<u64>& basis) {
  RnsPoly a(ctx_->degree(), basis, RnsPoly::Form::Ntt);
  for (std::size_t c = 0; c < basis.size(); ++c) {
    auto ch = a.channel(c);
    for (u64& x : ch) x = rng_.uniform(basis[c]);
  }
  return a;
}

RnsPoly KeyGenerator::sample_error_ntt(const std::vector<u64>& basis) {
  const std::size_t n = ctx_->degree();
  std::vector<i64> e_signed(n);
  for (i64& v : e_signed) v = rng_.gaussian_signed(ctx_->params().noise_sigma);
  RnsPoly e(n, basis);
  for (std::size_t c = 0; c < basis.size(); ++c) {
    const u64 q = basis[c];
    auto ch = e.channel(c);
    for (std::size_t i = 0; i < n; ++i) {
      ch[i] = e_signed[i] >= 0 ? static_cast<u64>(e_signed[i]) % q
                               : q - static_cast<u64>(-e_signed[i]) % q;
    }
  }
  e.to_ntt();
  return e;
}

PublicKey KeyGenerator::make_public_key() {
  const std::size_t levels = ctx_->params().num_levels;
  const auto basis = ctx_->basis_at(levels);
  // Restrict the key-basis secret to the ciphertext basis (q channels lead).
  const RnsPoly s_q = secret_.s.extract_channels(0, levels);
  RnsPoly a = sample_uniform(basis);
  RnsPoly e = sample_error_ntt(basis);
  RnsPoly b = a;
  b *= s_q;
  b.negate();
  b += e;
  return PublicKey{std::move(b), std::move(a)};
}

KSwitchKey KeyGenerator::make_kswitch_key(const RnsPoly& s_from) {
  const auto& params = ctx_->params();
  const std::size_t levels = params.num_levels;
  const auto key_basis = ctx_->key_basis();
  const BigUInt big_p = BigUInt::product(ctx_->p_moduli());

  KSwitchKey result;
  result.digits.reserve(params.dnum);
  for (std::size_t j = 0; j < ctx_->num_digits_at(levels); ++j) {
    const auto [first, count] = ctx_->digit_range(j, levels);
    RnsPoly a = sample_uniform(key_basis);
    RnsPoly b = a;
    b *= secret_.s;
    b.negate();
    b += sample_error_ntt(key_basis);
    // Gadget payload: residue P * s_from on group-j channels, 0 elsewhere.
    // NTT form is per-channel, so scaling channels of NTT(s_from) by the
    // scalar [P]_{q_i} yields NTT(g_j * s_from) directly.
    std::vector<u64> gadget(key_basis.size(), 0);
    for (std::size_t c = first; c < first + count; ++c) {
      gadget[c] = big_p.mod_u64(key_basis[c]);
    }
    RnsPoly payload = s_from;
    payload.mul_scalar(std::span<const u64>(gadget));
    b += payload;
    result.digits.emplace_back(std::move(b), std::move(a));
  }
  return result;
}

RelinKeys KeyGenerator::make_relin_keys() {
  RnsPoly s_squared = secret_.s;
  s_squared *= secret_.s;
  return RelinKeys{make_kswitch_key(s_squared)};
}

GaloisKeys KeyGenerator::make_galois_keys(const std::vector<int>& steps,
                                          bool include_conjugate) {
  GaloisKeys keys;
  for (int step : steps) {
    const u64 g = ctx_->galois_elt_for_rotation(step);
    if (keys.has(g)) continue;
    keys.keys.emplace(g, make_kswitch_key(secret_.s.automorphism(g)));
  }
  if (include_conjugate) {
    const u64 g = ctx_->galois_elt_conjugate();
    keys.keys.emplace(g, make_kswitch_key(secret_.s.automorphism(g)));
  }
  return keys;
}

}  // namespace alchemist::ckks
