#include "ckks/packed_ops.h"

namespace alchemist::ckks {

std::vector<int> power_of_two_rotations(std::size_t slots) {
  std::vector<int> steps;
  for (std::size_t s = 1; s < slots; s <<= 1) steps.push_back(static_cast<int>(s));
  return steps;
}

Ciphertext rotate_and_sum_all(const Evaluator& evaluator, const Ciphertext& ct,
                              const GaloisKeys& gk, std::size_t slots) {
  Ciphertext acc = ct;
  for (std::size_t step = 1; step < slots; step <<= 1) {
    acc = evaluator.add(acc, evaluator.rotate(acc, static_cast<int>(step), gk));
  }
  return acc;
}

Ciphertext inner_product_plain(const Evaluator& evaluator, const CkksEncoder& encoder,
                               const Ciphertext& ct, std::span<const double> weights,
                               const GaloisKeys& gk) {
  const Plaintext pw = encoder.encode(weights, ct.level, ct.scale);
  const Ciphertext weighted = evaluator.rescale(evaluator.mul_plain(ct, pw));
  return rotate_and_sum_all(evaluator, weighted, gk, encoder.slots());
}

Ciphertext inner_product(const Evaluator& evaluator, const Ciphertext& a,
                         const Ciphertext& b, const RelinKeys& rk,
                         const GaloisKeys& gk) {
  const Ciphertext prod = evaluator.mul_aligned(a, b, rk);
  // Sum over all slots of the (aligned) product.
  std::size_t slots = a.c0.degree() / 2;
  return rotate_and_sum_all(evaluator, prod, gk, slots);
}

}  // namespace alchemist::ckks
