// Homomorphic evaluation for RNS-CKKS.
//
// The operator set matches the paper's basic-op benchmark (Table 7):
//   Hadd      -> add / sub
//   Pmult     -> mul_plain (+ rescale)
//   Cmult     -> multiply + relinearize (+ rescale)
//   Keyswitch -> the hybrid keyswitch core (decompose, Modup, DecompPolyMult,
//                Moddown) — Eqs. (1)-(3) and the DecompPolyMult of §2.2
//   Rotation  -> rotate (automorphism + keyswitch)
#pragma once

#include "ckks/ciphertext.h"
#include "ckks/encoder.h"
#include "ckks/keys.h"
#include "ckks/params.h"

namespace alchemist::ckks {

class Evaluator {
 public:
  explicit Evaluator(ContextPtr ctx);

  Ciphertext add(const Ciphertext& a, const Ciphertext& b) const;
  Ciphertext sub(const Ciphertext& a, const Ciphertext& b) const;
  Ciphertext negate(const Ciphertext& a) const;

  Ciphertext add_plain(const Ciphertext& a, const Plaintext& pt) const;
  // Result scale = ct.scale * pt.scale; rescale afterwards.
  Ciphertext mul_plain(const Ciphertext& a, const Plaintext& pt) const;

  // Full ciphertext multiplication with relinearization; result scale is the
  // product of the operand scales. Rescale afterwards.
  Ciphertext multiply(const Ciphertext& a, const Ciphertext& b,
                      const RelinKeys& rk) const;

  // Exact RNS rescale: divide by the last prime of the current basis and drop
  // it. Scale is divided by that prime.
  Ciphertext rescale(const Ciphertext& a) const;

  // Drop to `level` without dividing (modulus switch for level alignment).
  Ciphertext mod_drop(const Ciphertext& a, std::size_t level) const;

  // Scalar convenience ops (O(N) constant encoding, no full embedding).
  // add_scalar keeps the ciphertext scale; mul_scalar multiplies scales.
  Ciphertext add_scalar(const Ciphertext& a, std::complex<double> value,
                        const CkksEncoder& encoder) const;
  Ciphertext mul_scalar(const Ciphertext& a, std::complex<double> value,
                        const CkksEncoder& encoder, double scalar_scale) const;

  // Override a scale that drifted from the nominal ladder value. CKKS primes
  // track the scale to within ~2^-20, so forcing the bookkeeping value only
  // injects a relative error of that order; throws if the relative gap
  // exceeds `tolerance` (protecting against real mistakes).
  Ciphertext normalize_scale(const Ciphertext& a, double target,
                             double tolerance = 1e-3) const;

  // Bring both operands to the lower of the two levels, normalize scales to
  // match, then multiply + relinearize + rescale. The workhorse of
  // polynomial evaluation and linear transforms.
  Ciphertext mul_aligned(const Ciphertext& a, const Ciphertext& b,
                         const RelinKeys& rk) const;
  // Level-aligned addition (scales must already agree up to normalize).
  Ciphertext add_aligned(const Ciphertext& a, const Ciphertext& b) const;

  // Cyclic left-rotation of the slot vector by `steps`.
  Ciphertext rotate(const Ciphertext& a, int steps, const GaloisKeys& gk) const;
  // Many rotations of the same ciphertext with ONE shared decomposition +
  // Modup (the paper's "Modup hoisting", BSP-L=n+): the per-rotation cost
  // drops to an automorphism + DecompPolyMult + Moddown.
  std::vector<Ciphertext> rotate_hoisted(const Ciphertext& a,
                                         std::span<const int> steps,
                                         const GaloisKeys& gk) const;
  // Complex conjugation of every slot.
  Ciphertext conjugate(const Ciphertext& a, const GaloisKeys& gk) const;

  // Hybrid keyswitch core: given a polynomial d (NTT form, basis of `level`)
  // encrypted under s_from, return the (ks0, ks1) pair under s such that
  // ks0 + ks1*s ≈ d*s_from. Exposed publicly because it *is* the paper's
  // benchmark operator.
  std::pair<RnsPoly, RnsPoly> keyswitch(const RnsPoly& d, std::size_t level,
                                        const KSwitchKey& key) const;

 private:
  void check_compatible(const Ciphertext& a, const Ciphertext& b,
                        const char* op) const;
  Ciphertext apply_galois(const Ciphertext& a, u64 galois_elt,
                          const KSwitchKey& key) const;

  ContextPtr ctx_;
};

}  // namespace alchemist::ckks
