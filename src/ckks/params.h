// CKKS parameter set and context (moduli chains, digit partition).
//
// RNS-CKKS with hybrid keyswitching: the ciphertext modulus Q = prod q_i is a
// chain of NTT primes; rescaling drops primes from the tail. Keyswitching
// decomposes over `dnum` digit groups of alpha = ceil(L/dnum) primes each and
// temporarily raises to Q·P with K = alpha special primes (the paper's
// Modup/Moddown, Eqs. 2-3).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/modarith.h"

namespace alchemist::ckks {

struct CkksParams {
  std::size_t n = 4096;          // ring degree; slots = n/2
  std::size_t num_levels = 4;    // L: ciphertext primes q_0..q_{L-1}
  std::size_t dnum = 2;          // decomposition number (digits)
  int first_prime_bits = 50;     // q_0: holds the final message magnitude
  int prime_bits = 40;           // q_1..q_{L-1}: rescaling primes (paper: 36)
  int special_prime_bits = 50;   // p_0..p_{K-1}
  int log_scale = 40;            // Delta = 2^log_scale
  double noise_sigma = 3.2;
  // 0 = dense ternary secret; h > 0 = sparse ternary with h nonzero
  // coefficients (standard for bootstrapping: bounds the ModRaise overflow
  // I by ~sqrt(h)).
  std::size_t secret_hamming_weight = 0;

  std::size_t slots() const { return n / 2; }
  std::size_t alpha() const { return (num_levels + dnum - 1) / dnum; }
  std::size_t num_special() const { return alpha(); }
  double scale() const { return static_cast<double>(u64{1} << log_scale); }

  // The paper's arithmetic-FHE benchmark setting (Table 7 / Fig. 6): SHARP's
  // 36-bit word, N=2^16, L=44, dnum=4. Too large to run functionally in test
  // time; used by the workload generators and the cycle simulator.
  static CkksParams paper_benchmark() {
    CkksParams p;
    p.n = 65536;
    p.num_levels = 44;
    p.dnum = 4;
    p.first_prime_bits = 36;
    p.prime_bits = 36;
    p.special_prime_bits = 36;
    p.log_scale = 30;
    return p;
  }

  // A small parameter set for functional tests and examples.
  static CkksParams toy(std::size_t n = 2048, std::size_t levels = 4,
                        std::size_t dnum_ = 2) {
    CkksParams p;
    p.n = n;
    p.num_levels = levels;
    p.dnum = dnum_;
    p.first_prime_bits = 50;
    p.prime_bits = 40;
    p.special_prime_bits = 50;
    p.log_scale = 40;
    return p;
  }
};

// Derived data shared by every actor of the scheme: the moduli chain and the
// digit partition. Immutable after construction; pass by shared_ptr.
class CkksContext {
 public:
  explicit CkksContext(const CkksParams& params);

  const CkksParams& params() const { return params_; }
  std::size_t degree() const { return params_.n; }

  // Ciphertext primes, level L first dropped last: q_moduli()[0..level).
  const std::vector<u64>& q_moduli() const { return q_moduli_; }
  const std::vector<u64>& p_moduli() const { return p_moduli_; }

  // Basis {q_0..q_{level-1}} for a ciphertext at `level` (level in [1, L]).
  std::vector<u64> basis_at(std::size_t level) const;
  // Basis {q_0..q_{level-1}, p_0..p_{K-1}} used during keyswitching.
  std::vector<u64> extended_basis_at(std::size_t level) const;
  // Full key basis Q·P (level = L).
  std::vector<u64> key_basis() const { return extended_basis_at(params_.num_levels); }

  // Digit group j covers prime indices [j*alpha, min((j+1)*alpha, level)).
  std::size_t num_digits_at(std::size_t level) const;
  std::pair<std::size_t, std::size_t> digit_range(std::size_t digit,
                                                  std::size_t level) const;

  // Galois element for a rotation by `steps` slots (5^steps mod 2N), and for
  // complex conjugation (2N - 1).
  u64 galois_elt_for_rotation(int steps) const;
  u64 galois_elt_conjugate() const { return 2 * params_.n - 1; }

 private:
  CkksParams params_;
  std::vector<u64> q_moduli_;
  std::vector<u64> p_moduli_;
};

using ContextPtr = std::shared_ptr<const CkksContext>;

}  // namespace alchemist::ckks
