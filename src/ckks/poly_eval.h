// Homomorphic polynomial evaluation (baby-step/giant-step power basis).
//
// Evaluates p(x) = sum_i c_i x^i on a CKKS ciphertext in O(sqrt(deg))
// ciphertext multiplications and O(log deg) multiplicative depth. This is the
// engine behind the EvalMod stage of CKKS bootstrapping and any non-linear
// approximation (sigmoid, exp, sine, ...).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "ckks/encoder.h"
#include "ckks/evaluator.h"
#include "ckks/keys.h"
#include "ckks/params.h"

namespace alchemist::ckks {

class PolyEvaluator {
 public:
  PolyEvaluator(ContextPtr ctx, const CkksEncoder& encoder,
                const Evaluator& evaluator, const RelinKeys& relin);

  // p(x) with real coefficients coeffs[0..deg]. Consumes roughly
  // 2 + ceil(log2(deg)) levels; throws if the ciphertext is too shallow.
  Ciphertext evaluate(const Ciphertext& x, std::span<const double> coeffs) const;

  // Chebyshev form: sum_i c_i T_i(2(x-a)/(b-a) - 1) on the interval [a, b].
  // Converts to the power basis internally (fine for the degrees <= 63 used
  // here) and calls evaluate().
  Ciphertext evaluate_chebyshev(const Ciphertext& x,
                                std::span<const double> cheb_coeffs, double a,
                                double b) const;

  // Multiplicative depth evaluate() will consume for a given degree.
  static std::size_t depth_for_degree(std::size_t degree);

  // Chebyshev-basis Paterson-Stockmeyer evaluation: sum_i c_i T_i(y) with
  // y = 2(x-a)/(b-a) - 1, computed directly in the Chebyshev basis with
  // T_{a+b} = 2 T_a T_b - T_{|a-b|}. Coefficients stay O(1), so this is the
  // numerically stable path for the high degrees of EvalMod (the monomial
  // conversion in evaluate_chebyshev() overflows beyond degree ~30).
  Ciphertext evaluate_chebyshev_stable(const Ciphertext& x,
                                       std::span<const double> cheb_coeffs,
                                       double a, double b) const;

 private:
  // Recursive Paterson-Stockmeyer over the Chebyshev basis.
  Ciphertext eval_cheb_recursive(std::vector<double> coeffs,
                                 const std::vector<Ciphertext>& babies,
                                 const std::vector<Ciphertext>& giants,
                                 std::size_t baby_count,
                                 std::size_t common_level) const;
  // Direct sum c_i T_i for degree < baby_count.
  Ciphertext eval_cheb_direct(std::span<const double> coeffs,
                              const std::vector<Ciphertext>& babies,
                              std::size_t common_level) const;
  // x^1..x^count, each at scale ~Delta; built with log-depth squaring.
  std::vector<Ciphertext> build_powers(const Ciphertext& x,
                                       std::size_t count) const;

  ContextPtr ctx_;
  const CkksEncoder& encoder_;
  const Evaluator& evaluator_;
  const RelinKeys& relin_;
};

// Coefficients of sum c_i T_i(y) expanded into the monomial basis of y.
std::vector<double> chebyshev_to_monomial(std::span<const double> cheb_coeffs);

// Chebyshev interpolation of f on [a, b] at `degree`+1 Chebyshev-Gauss nodes;
// returns the Chebyshev-basis coefficients c_0..c_degree.
std::vector<double> chebyshev_fit(const std::function<double(double)>& f, double a,
                                  double b, std::size_t degree);

// Map p(y) with y = alpha*x + beta into coefficients in x.
std::vector<double> compose_affine(std::span<const double> coeffs, double alpha,
                                   double beta);

}  // namespace alchemist::ckks
