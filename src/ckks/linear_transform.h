// Homomorphic linear transforms (matrix-vector products over the slots).
//
// A slots x slots complex matrix M is applied to an encrypted vector with the
// diagonal method:  M z = sum_d diag_d ⊙ rot(z, d),  where diag_d[k] =
// M[k][(k+d) mod slots]. Only nonzero diagonals cost work. With the
// baby-step/giant-step split d = g*i + j the rotation count drops from
// #diagonals to ~2*sqrt(#diagonals) — the structure of the CoeffToSlot /
// SlotToCoeff stages of bootstrapping and of the dense layers in LoLa.
#pragma once

#include <complex>
#include <map>
#include <vector>

#include "ckks/encoder.h"
#include "ckks/evaluator.h"
#include "ckks/keys.h"
#include "ckks/params.h"

namespace alchemist::ckks {

class LinearTransform {
 public:
  using Matrix = std::vector<std::vector<std::complex<double>>>;

  // Build from a dense slots x slots matrix; zero diagonals are skipped.
  LinearTransform(ContextPtr ctx, Matrix matrix);

  std::size_t num_diagonals() const { return diagonals_.size(); }
  // Rotation steps needed by apply() (generate Galois keys for these).
  std::vector<int> required_rotations(bool bsgs) const;

  // y = M x. The result's scale is x.scale * pt_scale; the caller rescales.
  // With bsgs=true, uses the baby-step/giant-step schedule.
  Ciphertext apply(const Evaluator& evaluator, const CkksEncoder& encoder,
                   const Ciphertext& x, const GaloisKeys& gk, double pt_scale,
                   bool bsgs = true) const;

 private:
  std::size_t giant_step() const;

  ContextPtr ctx_;
  std::size_t slots_;
  std::map<std::size_t, std::vector<std::complex<double>>> diagonals_;
};

// The slots x slots DFT-like matrices of CKKS bootstrapping: encode_matrix
// (SlotToCoeff direction, entries zeta_j^k restricted to the slot group) and
// its inverse decode_matrix (CoeffToSlot). Exposed for tests and the
// bootstrap pipeline.
LinearTransform::Matrix slot_to_coeff_matrix(const CkksContext& ctx);
LinearTransform::Matrix coeff_to_slot_matrix(const CkksContext& ctx);

}  // namespace alchemist::ckks
