#include "ckks/poly_eval.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace alchemist::ckks {

namespace {

// Smallest k with 2^k >= x.
std::size_t ceil_log2(std::size_t x) {
  std::size_t k = 0;
  while ((std::size_t{1} << k) < x) ++k;
  return k;
}

}  // namespace

PolyEvaluator::PolyEvaluator(ContextPtr ctx, const CkksEncoder& encoder,
                             const Evaluator& evaluator, const RelinKeys& relin)
    : ctx_(std::move(ctx)), encoder_(encoder), evaluator_(evaluator), relin_(relin) {}

std::size_t PolyEvaluator::depth_for_degree(std::size_t degree) {
  if (degree <= 1) return 1;
  return ceil_log2(degree) + 2;  // powers + inner rescale + giant combine
}

std::vector<Ciphertext> PolyEvaluator::build_powers(const Ciphertext& x,
                                                    std::size_t count) const {
  // powers[j-1] holds x^j. x^j = x^(j/2) * x^(j - j/2): log-depth, each power
  // ends at scale ~Delta after its rescale chain.
  std::vector<Ciphertext> powers;
  powers.reserve(count);
  powers.push_back(x);
  for (std::size_t j = 2; j <= count; ++j) {
    const Ciphertext& lo = powers[j / 2 - 1];
    const Ciphertext& hi = powers[j - j / 2 - 1];
    powers.push_back(evaluator_.mul_aligned(lo, hi, relin_));
  }
  return powers;
}

Ciphertext PolyEvaluator::evaluate(const Ciphertext& x,
                                   std::span<const double> coeffs) const {
  if (coeffs.empty()) throw std::invalid_argument("PolyEvaluator: empty coefficients");
  std::size_t degree = coeffs.size() - 1;
  while (degree > 0 && coeffs[degree] == 0.0) --degree;
  if (degree == 0) {
    // Constant polynomial: c0 * 1 at the input's level and scale.
    Ciphertext out = evaluator_.mul_scalar(x, 0.0, encoder_, x.scale);
    out = evaluator_.rescale(out);
    return evaluator_.add_scalar(out, coeffs[0], encoder_);
  }
  if (degree == 1) {
    Ciphertext out = evaluator_.rescale(
        evaluator_.mul_scalar(x, coeffs[1], encoder_, x.scale));
    return evaluator_.add_scalar(out, coeffs[0], encoder_);
  }

  // Baby-step/giant-step split: i = g*k + j, 0 <= j < k.
  const std::size_t k =
      static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(degree + 1))));
  const std::size_t m = (degree + k) / k;  // number of giant groups

  const std::vector<Ciphertext> baby = build_powers(x, k);
  // Giants: x^k, x^2k, ..., x^(m-1)k built log-depth from x^k.
  std::vector<Ciphertext> giants;
  if (m > 1) {
    giants.reserve(m - 1);
    giants.push_back(baby[k - 1]);  // x^k
    for (std::size_t i = 2; i < m; ++i) {
      const Ciphertext& lo = giants[i / 2 - 1];
      const Ciphertext& hi = giants[i - i / 2 - 1];
      giants.push_back(evaluator_.mul_aligned(lo, hi, relin_));
    }
  }

  // Common working level: the deepest of all precomputed powers.
  std::size_t work_level = baby[0].level;
  for (const Ciphertext& c : baby) work_level = std::min(work_level, c.level);
  for (const Ciphertext& c : giants) work_level = std::min(work_level, c.level);
  const double delta = baby[0].scale;

  // Inner sums: s_g(x) = sum_{j<k} c_{gk+j} x^j, evaluated at work_level with
  // scalar multiplies, rescaled once to scale ~Delta.
  auto inner_sum = [&](std::size_t g) -> Ciphertext {
    Ciphertext acc = evaluator_.mod_drop(baby[0], work_level);
    acc = evaluator_.mul_scalar(acc, 0.0, encoder_, delta);  // zero at Delta^2
    for (std::size_t j = 1; j < k; ++j) {
      const std::size_t idx = g * k + j;
      if (idx > degree || coeffs[idx] == 0.0) continue;
      Ciphertext term = evaluator_.mod_drop(baby[j - 1], work_level);
      term = evaluator_.normalize_scale(term, delta);
      term = evaluator_.mul_scalar(term, coeffs[idx], encoder_, delta);
      acc = evaluator_.add_aligned(acc, term);
    }
    // Constant of the group rides at the accumulated Delta^2 scale.
    const std::size_t c0 = g * k;
    if (c0 <= degree && coeffs[c0] != 0.0) {
      acc = evaluator_.add_scalar(acc, coeffs[c0], encoder_);
    }
    return evaluator_.rescale(acc);  // scale ~Delta, level work_level - 1
  };

  Ciphertext result = inner_sum(0);
  for (std::size_t g = 1; g < m; ++g) {
    // Skip empty groups entirely.
    bool any = false;
    for (std::size_t j = 0; j < k && g * k + j <= degree; ++j) {
      any |= coeffs[g * k + j] != 0.0;
    }
    if (!any) continue;
    const Ciphertext product = evaluator_.mul_aligned(inner_sum(g), giants[g - 1], relin_);
    result = evaluator_.add_aligned(result, product);
  }
  return result;
}

Ciphertext PolyEvaluator::evaluate_chebyshev(const Ciphertext& x,
                                             std::span<const double> cheb_coeffs,
                                             double a, double b) const {
  const std::vector<double> monomial_y = chebyshev_to_monomial(cheb_coeffs);
  // y = 2(x - a)/(b - a) - 1 = alpha*x + beta.
  const double alpha = 2.0 / (b - a);
  const double beta = -2.0 * a / (b - a) - 1.0;
  const std::vector<double> monomial_x = compose_affine(monomial_y, alpha, beta);
  return evaluate(x, monomial_x);
}

Ciphertext PolyEvaluator::eval_cheb_direct(std::span<const double> coeffs,
                                           const std::vector<Ciphertext>& babies,
                                           std::size_t common_level) const {
  const double delta = babies[0].scale;
  // acc accumulates at scale Delta^2 (terms are T_i * scalar at Delta each).
  Ciphertext acc = evaluator_.mod_drop(babies[0], common_level);
  acc = evaluator_.normalize_scale(acc, delta);
  acc = evaluator_.mul_scalar(acc, 0.0, encoder_, delta);
  for (std::size_t i = 1; i < coeffs.size(); ++i) {
    if (coeffs[i] == 0.0) continue;
    Ciphertext term = evaluator_.mod_drop(babies[i - 1], common_level);
    term = evaluator_.normalize_scale(term, delta);
    term = evaluator_.mul_scalar(term, coeffs[i], encoder_, delta);
    acc = evaluator_.add_aligned(acc, term);
  }
  if (!coeffs.empty() && coeffs[0] != 0.0) {
    acc = evaluator_.add_scalar(acc, coeffs[0], encoder_);
  }
  return evaluator_.rescale(acc);
}

Ciphertext PolyEvaluator::eval_cheb_recursive(std::vector<double> coeffs,
                                              const std::vector<Ciphertext>& babies,
                                              const std::vector<Ciphertext>& giants,
                                              std::size_t baby_count,
                                              std::size_t common_level) const {
  std::size_t degree = coeffs.empty() ? 0 : coeffs.size() - 1;
  while (degree > 0 && coeffs[degree] == 0.0) --degree;
  coeffs.resize(degree + 1);
  if (degree < baby_count) {
    return eval_cheb_direct(coeffs, babies, common_level);
  }

  // Split at the largest giant m = 2^r * baby_count with m <= degree < 2m:
  //   sum_{i>=m} c_i T_i = T_m * q(T) + s(T)
  // with q_{i-m} = 2 c_i (i > m), q_0 = c_m, and s_j = -c_{2m-j} folded into
  // the low part (T_a T_b = (T_{a+b} + T_{|a-b|}) / 2).
  std::size_t giant_idx = 0;
  std::size_t m = baby_count;
  while (2 * m <= degree) {
    m *= 2;
    ++giant_idx;
  }
  if (giant_idx >= giants.size()) {
    throw std::logic_error("eval_cheb_recursive: missing giant step");
  }

  std::vector<double> quotient(degree - m + 1, 0.0);
  quotient[0] = coeffs[m];
  for (std::size_t i = m + 1; i <= degree; ++i) quotient[i - m] = 2.0 * coeffs[i];

  std::vector<double> remainder(coeffs.begin(), coeffs.begin() + m);
  for (std::size_t i = m + 1; i <= degree; ++i) {
    remainder[2 * m - i] -= coeffs[i];
  }

  const Ciphertext q_ct =
      eval_cheb_recursive(std::move(quotient), babies, giants, baby_count, common_level);
  const Ciphertext r_ct =
      eval_cheb_recursive(std::move(remainder), babies, giants, baby_count, common_level);
  const Ciphertext product = evaluator_.mul_aligned(q_ct, giants[giant_idx], relin_);
  return evaluator_.add_aligned(product, r_ct);
}

Ciphertext PolyEvaluator::evaluate_chebyshev_stable(const Ciphertext& x,
                                                    std::span<const double> cheb_coeffs,
                                                    double a, double b) const {
  if (cheb_coeffs.empty()) {
    throw std::invalid_argument("evaluate_chebyshev_stable: empty coefficients");
  }
  std::size_t degree = cheb_coeffs.size() - 1;
  while (degree > 0 && cheb_coeffs[degree] == 0.0) --degree;

  // y = 2(x - a)/(b - a) - 1 in [-1, 1].
  const double alpha = 2.0 / (b - a);
  const double beta = -2.0 * a / (b - a) - 1.0;
  Ciphertext y = evaluator_.rescale(evaluator_.mul_scalar(x, alpha, encoder_, x.scale));
  y = evaluator_.add_scalar(y, beta, encoder_);

  if (degree <= 1) {
    Ciphertext out = evaluator_.rescale(evaluator_.mul_scalar(
        y, degree == 1 ? cheb_coeffs[1] : 0.0, encoder_, y.scale));
    return evaluator_.add_scalar(out, cheb_coeffs[0], encoder_);
  }

  // Babies T_1..T_k with k ~ sqrt(degree); T_j = 2 T_ceil T_floor - T_{0|1}.
  const std::size_t k = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(degree + 1)))));
  std::vector<Ciphertext> babies;
  babies.reserve(k);
  babies.push_back(y);  // T_1
  for (std::size_t j = 2; j <= k; ++j) {
    const std::size_t hi = (j + 1) / 2, lo = j / 2;
    Ciphertext prod = evaluator_.mul_aligned(babies[hi - 1], babies[lo - 1], relin_);
    prod = evaluator_.add_aligned(prod, prod);  // 2 T_hi T_lo
    if (hi == lo) {
      prod = evaluator_.add_scalar(prod, -1.0, encoder_);  // - T_0
    } else {
      Ciphertext t1 = evaluator_.mod_drop(babies[0], prod.level);
      t1 = evaluator_.normalize_scale(t1, prod.scale);
      prod = evaluator_.sub(prod, t1);  // - T_1
    }
    babies.push_back(std::move(prod));
  }

  // Giants T_k, T_2k, T_4k, ... up to degree (T_2m = 2 T_m^2 - 1).
  std::vector<Ciphertext> giants;
  giants.push_back(babies[k - 1]);
  for (std::size_t m = k; 2 * m <= degree; m *= 2) {
    Ciphertext sq = evaluator_.mul_aligned(giants.back(), giants.back(), relin_);
    sq = evaluator_.add_aligned(sq, sq);
    sq = evaluator_.add_scalar(sq, -1.0, encoder_);
    giants.push_back(std::move(sq));
  }

  std::size_t common_level = babies[0].level;
  for (const Ciphertext& c : babies) common_level = std::min(common_level, c.level);
  for (const Ciphertext& c : giants) common_level = std::min(common_level, c.level);

  std::vector<double> coeffs(cheb_coeffs.begin(), cheb_coeffs.begin() + degree + 1);
  return eval_cheb_recursive(std::move(coeffs), babies, giants, k, common_level);
}

std::vector<double> chebyshev_fit(const std::function<double(double)>& f, double a,
                                  double b, std::size_t degree) {
  const std::size_t nodes = degree + 1;
  std::vector<double> fx(nodes);
  for (std::size_t m = 0; m < nodes; ++m) {
    const double theta = M_PI * (static_cast<double>(m) + 0.5) / nodes;
    const double y = std::cos(theta);
    fx[m] = f(0.5 * (b - a) * y + 0.5 * (a + b));
  }
  std::vector<double> coeffs(nodes);
  for (std::size_t n = 0; n < nodes; ++n) {
    double sum = 0;
    for (std::size_t m = 0; m < nodes; ++m) {
      const double theta = M_PI * (static_cast<double>(m) + 0.5) / nodes;
      sum += fx[m] * std::cos(n * theta);
    }
    coeffs[n] = (n == 0 ? 1.0 : 2.0) * sum / nodes;
  }
  return coeffs;
}

std::vector<double> chebyshev_to_monomial(std::span<const double> cheb_coeffs) {
  if (cheb_coeffs.empty()) return {};
  const std::size_t d = cheb_coeffs.size() - 1;
  // T_0 = 1, T_1 = y, T_{n+1} = 2y T_n - T_{n-1}, accumulated in monomials.
  std::vector<std::vector<double>> t(d + 1);
  t[0] = {1.0};
  if (d >= 1) t[1] = {0.0, 1.0};
  for (std::size_t n = 2; n <= d; ++n) {
    t[n].assign(n + 1, 0.0);
    for (std::size_t i = 0; i < t[n - 1].size(); ++i) t[n][i + 1] += 2.0 * t[n - 1][i];
    for (std::size_t i = 0; i < t[n - 2].size(); ++i) t[n][i] -= t[n - 2][i];
  }
  std::vector<double> out(d + 1, 0.0);
  for (std::size_t n = 0; n <= d; ++n) {
    for (std::size_t i = 0; i < t[n].size(); ++i) out[i] += cheb_coeffs[n] * t[n][i];
  }
  return out;
}

std::vector<double> compose_affine(std::span<const double> coeffs, double alpha,
                                   double beta) {
  // p(alpha x + beta): expand via Horner in the transformed variable.
  // result := c_d; repeat result := result*(alpha x + beta) + c_i.
  std::vector<double> result = {0.0};
  for (std::size_t i = coeffs.size(); i-- > 0;) {
    std::vector<double> next(result.size() + 1, 0.0);
    for (std::size_t j = 0; j < result.size(); ++j) {
      next[j + 1] += result[j] * alpha;
      next[j] += result[j] * beta;
    }
    next[0] += coeffs[i];
    result = std::move(next);
  }
  while (result.size() > 1 && result.back() == 0.0) result.pop_back();
  return result;
}

}  // namespace alchemist::ckks
