// Public-key encryption and secret-key decryption for CKKS.
#pragma once

#include <complex>
#include <vector>

#include "ckks/ciphertext.h"
#include "ckks/encoder.h"
#include "ckks/keys.h"
#include "ckks/params.h"
#include "common/rng.h"

namespace alchemist::ckks {

class Encryptor {
 public:
  Encryptor(ContextPtr ctx, PublicKey pk, u64 seed = 2);

  // Encrypt an encoded plaintext; the ciphertext starts at the plaintext's
  // level with the plaintext's scale.
  Ciphertext encrypt(const Plaintext& pt);

 private:
  RnsPoly sample_small_ntt(const std::vector<u64>& basis, bool ternary);

  ContextPtr ctx_;
  PublicKey pk_;
  Rng rng_;
};

class Decryptor {
 public:
  Decryptor(ContextPtr ctx, SecretKey sk);

  // Raw decryption: centered coefficients of c0 + c1*s.
  std::vector<double> decrypt_coeffs(const Ciphertext& ct) const;
  // Full pipeline: decrypt then decode through `encoder`.
  std::vector<std::complex<double>> decrypt(const Ciphertext& ct,
                                            const CkksEncoder& encoder) const;

 private:
  ContextPtr ctx_;
  SecretKey sk_;
};

}  // namespace alchemist::ckks
