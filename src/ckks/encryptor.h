// Public-key encryption and secret-key decryption for CKKS.
#pragma once

#include <complex>
#include <vector>

#include "ckks/ciphertext.h"
#include "ckks/encoder.h"
#include "ckks/keys.h"
#include "ckks/params.h"
#include "common/rng.h"

namespace alchemist::ckks {

class Encryptor {
 public:
  Encryptor(ContextPtr ctx, PublicKey pk, u64 seed = 2);

  // Encrypt an encoded plaintext; the ciphertext starts at the plaintext's
  // level with the plaintext's scale.
  Ciphertext encrypt(const Plaintext& pt);

 private:
  RnsPoly sample_small_ntt(const std::vector<u64>& basis, bool ternary);

  ContextPtr ctx_;
  PublicKey pk_;
  Rng rng_;
};

class Decryptor {
 public:
  // `validate` runs check_ciphertext_invariants (ckks/noise.h) on every
  // ciphertext before decrypting, so evaluator-pipeline bugs and corrupted
  // inputs surface as std::logic_error at the trust boundary instead of as
  // garbage plaintexts. Defaults on in debug builds; opt in elsewhere.
  Decryptor(ContextPtr ctx, SecretKey sk, bool validate = kValidateByDefault);

  // Raw decryption: centered coefficients of c0 + c1*s.
  std::vector<double> decrypt_coeffs(const Ciphertext& ct) const;
  // Full pipeline: decrypt then decode through `encoder`.
  std::vector<std::complex<double>> decrypt(const Ciphertext& ct,
                                            const CkksEncoder& encoder) const;

  void set_validate(bool validate) { validate_ = validate; }
  bool validate() const { return validate_; }

 private:
#ifdef NDEBUG
  static constexpr bool kValidateByDefault = false;
#else
  static constexpr bool kValidateByDefault = true;
#endif

  ContextPtr ctx_;
  SecretKey sk_;
  bool validate_;
};

}  // namespace alchemist::ckks
