#include "ckks/params.h"

#include <stdexcept>

#include "common/primes.h"

namespace alchemist::ckks {

CkksContext::CkksContext(const CkksParams& params) : params_(params) {
  if (!is_power_of_two(params.n)) {
    throw std::invalid_argument("CkksContext: N must be a power of two");
  }
  if (params.num_levels == 0 || params.dnum == 0 || params.dnum > params.num_levels) {
    throw std::invalid_argument("CkksContext: need 1 <= dnum <= L");
  }

  // q_0 at first_prime_bits, the rest at prime_bits; all distinct.
  q_moduli_ = generate_ntt_primes(params.first_prime_bits, params.n, 1);
  if (params.num_levels > 1) {
    auto rest = generate_ntt_primes(params.prime_bits, params.n,
                                    params.num_levels - 1, q_moduli_);
    q_moduli_.insert(q_moduli_.end(), rest.begin(), rest.end());
  }
  p_moduli_ = generate_ntt_primes(params.special_prime_bits, params.n,
                                  params.num_special(), q_moduli_);
}

std::vector<u64> CkksContext::basis_at(std::size_t level) const {
  if (level == 0 || level > params_.num_levels) {
    throw std::invalid_argument("CkksContext::basis_at: level out of range");
  }
  return {q_moduli_.begin(), q_moduli_.begin() + level};
}

std::vector<u64> CkksContext::extended_basis_at(std::size_t level) const {
  std::vector<u64> basis = basis_at(level);
  basis.insert(basis.end(), p_moduli_.begin(), p_moduli_.end());
  return basis;
}

std::size_t CkksContext::num_digits_at(std::size_t level) const {
  const std::size_t alpha = params_.alpha();
  return (level + alpha - 1) / alpha;
}

std::pair<std::size_t, std::size_t> CkksContext::digit_range(std::size_t digit,
                                                             std::size_t level) const {
  const std::size_t alpha = params_.alpha();
  const std::size_t first = digit * alpha;
  if (first >= level) {
    throw std::invalid_argument("CkksContext::digit_range: digit out of range");
  }
  const std::size_t last = std::min(first + alpha, level);
  return {first, last - first};
}

u64 CkksContext::galois_elt_for_rotation(int steps) const {
  const u64 two_n = 2 * params_.n;
  const std::size_t slots = params_.slots();
  // Normalize steps into [0, slots) — rotations are cyclic over the slots.
  long long s = steps % static_cast<long long>(slots);
  if (s < 0) s += static_cast<long long>(slots);
  u64 g = 1;
  for (long long i = 0; i < s; ++i) g = (g * 5) % two_n;
  return g;
}

}  // namespace alchemist::ckks
