// Functional CKKS bootstrapping (reduced-scale, full pipeline).
//
// Refreshes an exhausted ciphertext (level 1) back to a computable level:
//
//   ModRaise     lift the q_0 residues to the full chain: the result
//                decrypts to m + q_0*I(X) with small integer I.
//   CoeffToSlot  one homomorphic linear transform (A^{-1}, the square
//                slot-group Vandermonde) plus a conjugation puts the
//                *coefficients* (m_k + q_0 I_k)/q_0 into the slots, split
//                into two ciphertexts (low/high coefficient halves).
//   EvalMod      evaluates (q_0 / (2*pi*Delta)) * sin(2*pi*t) with a
//                Chebyshev/Paterson-Stockmeyer polynomial, collapsing
//                t = m/q_0 + I to m/Delta (removing the q_0*I term).
//   SlotToCoeff  the inverse transform (A) returns the cleaned coefficients
//                to coefficient positions.
//
// This is the evaluation pipeline of [8-11] at laptop scale: every stage is
// the real algorithm (the cycle simulator covers the paper-scale cost side;
// see workloads::build_bootstrapping).
#pragma once

#include <memory>

#include "ckks/linear_transform.h"
#include "ckks/poly_eval.h"

namespace alchemist::ckks {

struct BootstrapConfig {
  // Chebyshev degree of the sine approximation. Convergence for sin over
  // [-B, B] starts around e*pi*B; degree 200 gives ~1e-6 on B = 13.5 and
  // costs the same multiplicative depth as 119 (same baby/giant structure).
  std::size_t sine_degree = 200;
  // Bound on |I| (dense ternary secret: ~3.5 sigma of sqrt(N*2/3/12)-ish).
  double i_bound = 13.0;
};

class Bootstrapper {
 public:
  Bootstrapper(ContextPtr ctx, const CkksEncoder& encoder,
               const Evaluator& evaluator, const RelinKeys& relin,
               const GaloisKeys& galois, BootstrapConfig config = {});

  // Rotations the Galois keys must contain (plus conjugation).
  static std::vector<int> required_rotations(const CkksContext& ctx);

  // Multiplicative depth of the whole pipeline.
  std::size_t depth() const;

  // ct must sit at level 1 with the context's nominal scale. The result
  // encrypts the same message at level (L - depth()).
  Ciphertext bootstrap(const Ciphertext& ct) const;

  // Pipeline stages, exposed for tests.
  Ciphertext mod_raise(const Ciphertext& ct) const;
  // Returns (u, v): slots hold t-values of the low / high coefficient halves.
  std::pair<Ciphertext, Ciphertext> coeff_to_slot(const Ciphertext& ct) const;
  // (q0 / (2 pi Delta)) * sin(2 pi t) per slot.
  Ciphertext eval_mod(const Ciphertext& ct) const;
  Ciphertext slot_to_coeff(const Ciphertext& u, const Ciphertext& v) const;

 private:
  ContextPtr ctx_;
  const CkksEncoder& encoder_;
  const Evaluator& evaluator_;
  const RelinKeys& relin_;
  const GaloisKeys& galois_;
  BootstrapConfig config_;
  PolyEvaluator poly_;
  std::unique_ptr<LinearTransform> cts_;  // (Delta / 2 q0) * A^{-1}
  std::unique_ptr<LinearTransform> stc_;  // A
  std::vector<double> sine_cheb_;
};

}  // namespace alchemist::ckks
