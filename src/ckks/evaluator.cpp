#include "ckks/evaluator.h"

#include <cmath>
#include <stdexcept>

#include "common/thread_pool.h"

namespace alchemist::ckks {

namespace {

bool scales_close(double a, double b) {
  return std::abs(a - b) <= 1e-9 * std::max(std::abs(a), std::abs(b));
}

}  // namespace

Evaluator::Evaluator(ContextPtr ctx) : ctx_(std::move(ctx)) {}

void Evaluator::check_compatible(const Ciphertext& a, const Ciphertext& b,
                                 const char* op) const {
  if (a.level != b.level) {
    throw std::invalid_argument(std::string("Evaluator::") + op + ": level mismatch");
  }
  if (!scales_close(a.scale, b.scale)) {
    throw std::invalid_argument(std::string("Evaluator::") + op + ": scale mismatch");
  }
}

Ciphertext Evaluator::add(const Ciphertext& a, const Ciphertext& b) const {
  check_compatible(a, b, "add");
  Ciphertext out = a;
  out.c0 += b.c0;
  out.c1 += b.c1;
  return out;
}

Ciphertext Evaluator::sub(const Ciphertext& a, const Ciphertext& b) const {
  check_compatible(a, b, "sub");
  Ciphertext out = a;
  out.c0 -= b.c0;
  out.c1 -= b.c1;
  return out;
}

Ciphertext Evaluator::negate(const Ciphertext& a) const {
  Ciphertext out = a;
  out.c0.negate();
  out.c1.negate();
  return out;
}

Ciphertext Evaluator::add_plain(const Ciphertext& a, const Plaintext& pt) const {
  if (a.level != pt.level || !scales_close(a.scale, pt.scale)) {
    throw std::invalid_argument("Evaluator::add_plain: level/scale mismatch");
  }
  Ciphertext out = a;
  out.c0 += pt.poly;
  return out;
}

Ciphertext Evaluator::mul_plain(const Ciphertext& a, const Plaintext& pt) const {
  if (a.level != pt.level) {
    throw std::invalid_argument("Evaluator::mul_plain: level mismatch");
  }
  Ciphertext out = a;
  out.c0 *= pt.poly;
  out.c1 *= pt.poly;
  out.scale = a.scale * pt.scale;
  return out;
}

std::pair<RnsPoly, RnsPoly> Evaluator::keyswitch(const RnsPoly& d, std::size_t level,
                                                 const KSwitchKey& key) const {
  const std::size_t num_special = ctx_->params().num_special();
  const std::size_t top = ctx_->params().num_levels;
  const auto ext_basis = ctx_->extended_basis_at(level);

  RnsPoly d_coeff = d;
  d_coeff.to_coeff();

  RnsPoly acc0(ctx_->degree(), ext_basis, RnsPoly::Form::Ntt);
  RnsPoly acc1(ctx_->degree(), ext_basis, RnsPoly::Form::Ntt);

  const std::size_t digits = ctx_->num_digits_at(level);
  if (digits > key.digits.size()) {
    throw std::invalid_argument("Evaluator::keyswitch: key has too few digits");
  }
  // dnum-group fan-out: every digit's Modup + DecompPolyMult is independent,
  // so compute them into per-digit slots on the pool (nested kernels run
  // inline on the worker) and fold sequentially below — the fixed fold order
  // keeps the accumulation deterministic regardless of scheduling.
  KernelTimer timer(Kernel::Keyswitch);
  std::vector<std::pair<RnsPoly, RnsPoly>> parts(digits);
  parallel_for(digits, 1, [&](std::size_t jb, std::size_t je) {
    for (std::size_t j = jb; j < je; ++j) {
      const auto [first, count] = ctx_->digit_range(j, level);

      // Digit j: residues on its own channels, fast base conversion (Modup)
      // to every other channel of Q·P.
      const RnsPoly raw = d_coeff.extract_channels(first, count);
      std::vector<u64> group(ext_basis.begin() + first,
                             ext_basis.begin() + first + count);
      std::vector<u64> others;
      others.reserve(ext_basis.size() - count);
      for (std::size_t c = 0; c < ext_basis.size(); ++c) {
        if (c < first || c >= first + count) others.push_back(ext_basis[c]);
      }
      const BConv conv(group, others);
      const RnsPoly converted = conv.apply(raw);

      RnsPoly ext(ctx_->degree(), ext_basis, RnsPoly::Form::Coeff);
      std::size_t other_idx = 0;
      for (std::size_t c = 0; c < ext_basis.size(); ++c) {
        std::span<const u64> src = (c >= first && c < first + count)
                                       ? raw.channel(c - first)
                                       : converted.channel(other_idx++);
        std::copy(src.begin(), src.end(), ext.channel(c).begin());
      }
      ext.to_ntt();

      // DecompPolyMult: digit * evk_j over Q·P. The key lives on the full
      // basis [q_0..q_{L-1}, p...]; select the channels alive at `level`.
      RnsPoly evk_b = key.digits[j].first.extract_channels(0, level);
      evk_b.append_channels(key.digits[j].first.extract_channels(top, num_special));
      RnsPoly evk_a = key.digits[j].second.extract_channels(0, level);
      evk_a.append_channels(key.digits[j].second.extract_channels(top, num_special));

      evk_b *= ext;
      evk_a *= ext;
      parts[j] = {std::move(evk_b), std::move(evk_a)};
    }
  });
  for (std::size_t j = 0; j < digits; ++j) {
    acc0 += parts[j].first;
    acc1 += parts[j].second;
  }

  // Moddown: divide by P and return to the Q basis.
  acc0.to_coeff();
  acc1.to_coeff();
  RnsPoly ks0 = moddown(acc0, num_special);
  RnsPoly ks1 = moddown(acc1, num_special);
  ks0.to_ntt();
  ks1.to_ntt();
  return {std::move(ks0), std::move(ks1)};
}

Ciphertext Evaluator::multiply(const Ciphertext& a, const Ciphertext& b,
                               const RelinKeys& rk) const {
  if (a.level != b.level) {
    throw std::invalid_argument("Evaluator::multiply: level mismatch");
  }
  // Tensor product: (d0, d1, d2) = (c0*c0', c0*c1' + c1*c0', c1*c1').
  RnsPoly d0 = a.c0;
  d0 *= b.c0;
  RnsPoly d1 = a.c0;
  d1 *= b.c1;
  RnsPoly d1b = a.c1;
  d1b *= b.c0;
  d1 += d1b;
  RnsPoly d2 = a.c1;
  d2 *= b.c1;

  auto [ks0, ks1] = keyswitch(d2, a.level, rk.key);
  d0 += ks0;
  d1 += ks1;
  return Ciphertext{std::move(d0), std::move(d1), a.level, a.scale * b.scale};
}

Ciphertext Evaluator::rescale(const Ciphertext& a) const {
  if (a.level < 2) {
    throw std::invalid_argument("Evaluator::rescale: no prime left to drop");
  }
  const u64 dropped = ctx_->q_moduli()[a.level - 1];

  // Exact RNS rescale is a Moddown with the last ciphertext prime playing the
  // special modulus (Eq. 3 with P = q_{l-1}).
  RnsPoly c0 = a.c0;
  RnsPoly c1 = a.c1;
  c0.to_coeff();
  c1.to_coeff();
  RnsPoly r0 = moddown(c0, 1);
  RnsPoly r1 = moddown(c1, 1);
  r0.to_ntt();
  r1.to_ntt();
  return Ciphertext{std::move(r0), std::move(r1), a.level - 1,
                    a.scale / static_cast<double>(dropped)};
}

Ciphertext Evaluator::mod_drop(const Ciphertext& a, std::size_t level) const {
  if (level == 0 || level > a.level) {
    throw std::invalid_argument("Evaluator::mod_drop: bad target level");
  }
  Ciphertext out = a;
  out.c0.drop_channels_to(level);
  out.c1.drop_channels_to(level);
  out.level = level;
  return out;
}

Ciphertext Evaluator::add_scalar(const Ciphertext& a, std::complex<double> value,
                                 const CkksEncoder& encoder) const {
  return add_plain(a, encoder.encode_constant(value, a.level, a.scale));
}

Ciphertext Evaluator::mul_scalar(const Ciphertext& a, std::complex<double> value,
                                 const CkksEncoder& encoder,
                                 double scalar_scale) const {
  return mul_plain(a, encoder.encode_constant(value, a.level, scalar_scale));
}

Ciphertext Evaluator::normalize_scale(const Ciphertext& a, double target,
                                      double tolerance) const {
  const double rel = std::abs(a.scale - target) / target;
  if (rel > tolerance) {
    throw std::invalid_argument("Evaluator::normalize_scale: scale " +
                                std::to_string(a.scale) + " too far from target " +
                                std::to_string(target));
  }
  Ciphertext out = a;
  out.scale = target;
  return out;
}

Ciphertext Evaluator::mul_aligned(const Ciphertext& a, const Ciphertext& b,
                                  const RelinKeys& rk) const {
  const std::size_t level = std::min(a.level, b.level);
  Ciphertext aa = a.level == level ? a : mod_drop(a, level);
  Ciphertext bb = b.level == level ? b : mod_drop(b, level);
  // The prime ladder keeps both scales within ~2^-20 of each other; force
  // them equal so the product's bookkeeping stays exact.
  bb = normalize_scale(bb, aa.scale);
  return rescale(multiply(aa, bb, rk));
}

Ciphertext Evaluator::add_aligned(const Ciphertext& a, const Ciphertext& b) const {
  const std::size_t level = std::min(a.level, b.level);
  Ciphertext aa = a.level == level ? a : mod_drop(a, level);
  Ciphertext bb = b.level == level ? b : mod_drop(b, level);
  bb = normalize_scale(bb, aa.scale);
  return add(aa, bb);
}

Ciphertext Evaluator::apply_galois(const Ciphertext& a, u64 galois_elt,
                                   const KSwitchKey& key) const {
  // (c0(X^g), c1(X^g)) decrypts under s(X^g); keyswitch c1 back to s.
  RnsPoly rot_c0 = a.c0.automorphism(galois_elt);
  RnsPoly rot_c1 = a.c1.automorphism(galois_elt);
  auto [ks0, ks1] = keyswitch(rot_c1, a.level, key);
  ks0 += rot_c0;
  return Ciphertext{std::move(ks0), std::move(ks1), a.level, a.scale};
}

std::vector<Ciphertext> Evaluator::rotate_hoisted(const Ciphertext& a,
                                                  std::span<const int> steps,
                                                  const GaloisKeys& gk) const {
  const std::size_t level = a.level;
  const std::size_t num_special = ctx_->params().num_special();
  const std::size_t top = ctx_->params().num_levels;
  const auto ext_basis = ctx_->extended_basis_at(level);
  const std::size_t digits = ctx_->num_digits_at(level);

  // Hoisted part, paid once: decompose c1 and Modup every digit to Q·P.
  // (Automorphisms commute with the RNS decomposition: the digit residues
  // are just coefficient permutations, so rotating the *extended* digits is
  // exactly the decomposition of the rotated c1.)
  RnsPoly c1_coeff = a.c1;
  c1_coeff.to_coeff();
  std::vector<RnsPoly> ext_digits(digits);
  parallel_for(digits, 1, [&](std::size_t jb, std::size_t je) {
    for (std::size_t j = jb; j < je; ++j) {
      const auto [first, count] = ctx_->digit_range(j, level);
      const RnsPoly raw = c1_coeff.extract_channels(first, count);
      std::vector<u64> group(ext_basis.begin() + first,
                             ext_basis.begin() + first + count);
      std::vector<u64> others;
      others.reserve(ext_basis.size() - count);
      for (std::size_t c = 0; c < ext_basis.size(); ++c) {
        if (c < first || c >= first + count) others.push_back(ext_basis[c]);
      }
      const BConv conv(group, others);
      const RnsPoly converted = conv.apply(raw);
      RnsPoly ext(ctx_->degree(), ext_basis, RnsPoly::Form::Coeff);
      std::size_t other_idx = 0;
      for (std::size_t c = 0; c < ext_basis.size(); ++c) {
        std::span<const u64> src = (c >= first && c < first + count)
                                       ? raw.channel(c - first)
                                       : converted.channel(other_idx++);
        std::copy(src.begin(), src.end(), ext.channel(c).begin());
      }
      ext_digits[j] = std::move(ext);
    }
  });

  // Per rotation: permute the shared digits, inner-product with that
  // rotation's key, Moddown, and add the rotated c0.
  std::vector<Ciphertext> out;
  out.reserve(steps.size());
  for (int step : steps) {
    const u64 g = ctx_->galois_elt_for_rotation(step);
    if (g == 1) {
      out.push_back(a);
      continue;
    }
    if (!gk.has(g)) {
      throw std::invalid_argument("rotate_hoisted: missing galois key for step");
    }
    const KSwitchKey& key = gk.at(g);
    RnsPoly acc0(ctx_->degree(), ext_basis, RnsPoly::Form::Ntt);
    RnsPoly acc1(ctx_->degree(), ext_basis, RnsPoly::Form::Ntt);
    // Same per-digit slot + sequential fold as keyswitch().
    std::vector<std::pair<RnsPoly, RnsPoly>> parts(digits);
    parallel_for(digits, 1, [&](std::size_t jb, std::size_t je) {
      for (std::size_t j = jb; j < je; ++j) {
        RnsPoly rotated = ext_digits[j].automorphism(g);
        rotated.to_ntt();
        RnsPoly evk_b = key.digits[j].first.extract_channels(0, level);
        evk_b.append_channels(key.digits[j].first.extract_channels(top, num_special));
        RnsPoly evk_a = key.digits[j].second.extract_channels(0, level);
        evk_a.append_channels(key.digits[j].second.extract_channels(top, num_special));
        evk_b *= rotated;
        evk_a *= rotated;
        parts[j] = {std::move(evk_b), std::move(evk_a)};
      }
    });
    for (std::size_t j = 0; j < digits; ++j) {
      acc0 += parts[j].first;
      acc1 += parts[j].second;
    }
    acc0.to_coeff();
    acc1.to_coeff();
    RnsPoly ks0 = moddown(acc0, num_special);
    RnsPoly ks1 = moddown(acc1, num_special);
    ks0.to_ntt();
    ks1.to_ntt();
    ks0 += a.c0.automorphism(g);
    out.push_back(Ciphertext{std::move(ks0), std::move(ks1), level, a.scale});
  }
  return out;
}

Ciphertext Evaluator::rotate(const Ciphertext& a, int steps,
                             const GaloisKeys& gk) const {
  const u64 g = ctx_->galois_elt_for_rotation(steps);
  if (g == 1) return a;
  if (!gk.has(g)) {
    throw std::invalid_argument("Evaluator::rotate: missing galois key for step");
  }
  return apply_galois(a, g, gk.at(g));
}

Ciphertext Evaluator::conjugate(const Ciphertext& a, const GaloisKeys& gk) const {
  const u64 g = ctx_->galois_elt_conjugate();
  if (!gk.has(g)) {
    throw std::invalid_argument("Evaluator::conjugate: missing conjugation key");
  }
  return apply_galois(a, g, gk.at(g));
}

}  // namespace alchemist::ckks
