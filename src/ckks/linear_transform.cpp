#include "ckks/linear_transform.h"

#include <cmath>
#include <stdexcept>

namespace alchemist::ckks {

namespace {

using Complex = std::complex<double>;

bool diagonal_is_zero(const std::vector<Complex>& diag) {
  for (const Complex& v : diag) {
    if (std::abs(v) > 1e-300) return false;
  }
  return true;
}

}  // namespace

LinearTransform::LinearTransform(ContextPtr ctx, Matrix matrix)
    : ctx_(std::move(ctx)), slots_(ctx_->params().slots()) {
  if (matrix.size() != slots_) {
    throw std::invalid_argument("LinearTransform: matrix must be slots x slots");
  }
  for (const auto& row : matrix) {
    if (row.size() != slots_) {
      throw std::invalid_argument("LinearTransform: matrix must be slots x slots");
    }
  }
  for (std::size_t d = 0; d < slots_; ++d) {
    std::vector<Complex> diag(slots_);
    for (std::size_t k = 0; k < slots_; ++k) {
      diag[k] = matrix[k][(k + d) % slots_];
    }
    if (!diagonal_is_zero(diag)) diagonals_.emplace(d, std::move(diag));
  }
}

std::size_t LinearTransform::giant_step() const {
  return static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(std::max<std::size_t>(diagonals_.size(), 1)))));
}

std::vector<int> LinearTransform::required_rotations(bool bsgs) const {
  std::vector<int> steps;
  if (!bsgs) {
    for (const auto& [d, diag] : diagonals_) {
      if (d != 0) steps.push_back(static_cast<int>(d));
    }
    return steps;
  }
  const std::size_t g = giant_step();
  // Baby rotations j in [0, g) and giant rotations g*i that actually occur.
  std::vector<bool> baby(g, false), giant(slots_ / g + 2, false);
  for (const auto& [d, diag] : diagonals_) {
    baby[d % g] = true;
    giant[d / g] = true;
  }
  for (std::size_t j = 1; j < g; ++j) {
    if (baby[j]) steps.push_back(static_cast<int>(j));
  }
  for (std::size_t i = 1; i < giant.size(); ++i) {
    if (giant[i]) steps.push_back(static_cast<int>(i * g));
  }
  return steps;
}

Ciphertext LinearTransform::apply(const Evaluator& evaluator,
                                  const CkksEncoder& encoder, const Ciphertext& x,
                                  const GaloisKeys& gk, double pt_scale,
                                  bool bsgs) const {
  if (diagonals_.empty()) {
    throw std::invalid_argument("LinearTransform: zero matrix");
  }
  auto encode_diag = [&](const std::vector<Complex>& diag) {
    return encoder.encode(std::span<const Complex>(diag), x.level, pt_scale);
  };

  if (!bsgs) {
    // One rotation per diagonal.
    bool first = true;
    Ciphertext acc;
    for (const auto& [d, diag] : diagonals_) {
      const Ciphertext rotated =
          d == 0 ? x : evaluator.rotate(x, static_cast<int>(d), gk);
      Ciphertext term = evaluator.mul_plain(rotated, encode_diag(diag));
      if (first) {
        acc = std::move(term);
        first = false;
      } else {
        acc = evaluator.add(acc, term);
      }
    }
    return acc;
  }

  // BSGS: d = g*i + j. M z = sum_i rot( sum_j diag'_{gi+j} ⊙ rot(z, j), g*i )
  // with diag'_{gi+j} = rot(diag_{gi+j}, -g*i) folded into the plaintext.
  // All baby rotations share one decomposition + Modup (the paper's hoisting).
  const std::size_t g = giant_step();
  std::vector<bool> baby_needed(g, false);
  for (const auto& [d, diag] : diagonals_) baby_needed[d % g] = true;
  std::vector<int> baby_steps;
  for (std::size_t j = 1; j < g; ++j) {
    if (baby_needed[j]) baby_steps.push_back(static_cast<int>(j));
  }
  const std::vector<Ciphertext> hoisted =
      evaluator.rotate_hoisted(x, baby_steps, gk);
  std::map<std::size_t, const Ciphertext*> baby_rotations;
  baby_rotations.emplace(0, &x);
  for (std::size_t i = 0; i < baby_steps.size(); ++i) {
    baby_rotations.emplace(static_cast<std::size_t>(baby_steps[i]), &hoisted[i]);
  }
  auto baby = [&](std::size_t j) -> const Ciphertext& { return *baby_rotations.at(j); };

  bool first_total = true;
  Ciphertext total;
  for (std::size_t i = 0; i * g < slots_; ++i) {
    bool first_inner = true;
    Ciphertext inner;
    for (std::size_t j = 0; j < g; ++j) {
      const auto it = diagonals_.find(i * g + j);
      if (it == diagonals_.end()) continue;
      // Pre-rotate the diagonal by -g*i so the single giant rotation at the
      // end lands every term correctly.
      std::vector<Complex> shifted(slots_);
      for (std::size_t k = 0; k < slots_; ++k) {
        shifted[k] = it->second[(k + slots_ - (i * g) % slots_) % slots_];
      }
      Ciphertext term = evaluator.mul_plain(baby(j), encode_diag(shifted));
      if (first_inner) {
        inner = std::move(term);
        first_inner = false;
      } else {
        inner = evaluator.add(inner, term);
      }
    }
    if (first_inner) continue;  // no diagonals in this giant group
    if (i != 0) {
      inner = evaluator.rotate(inner, static_cast<int>(i * g), gk);
    }
    if (first_total) {
      total = std::move(inner);
      first_total = false;
    } else {
      total = evaluator.add(total, inner);
    }
  }
  return total;
}

LinearTransform::Matrix slot_to_coeff_matrix(const CkksContext& ctx) {
  // A[j][k] = zeta_j^k with zeta_j = omega^(5^j mod 2N), k < N/2: the square
  // matrix with z = A (u + i v) for coefficient halves u, v.
  const std::size_t n = ctx.degree();
  const std::size_t slots = ctx.params().slots();
  LinearTransform::Matrix m(slots, std::vector<Complex>(slots));
  std::size_t sigma = 1;
  for (std::size_t j = 0; j < slots; ++j) {
    for (std::size_t k = 0; k < slots; ++k) {
      const double angle =
          M_PI * static_cast<double>((sigma * k) % (2 * n)) / static_cast<double>(n);
      m[j][k] = {std::cos(angle), std::sin(angle)};
    }
    sigma = (sigma * 5) % (2 * n);
  }
  return m;
}

LinearTransform::Matrix coeff_to_slot_matrix(const CkksContext& ctx) {
  // Inverse of slot_to_coeff_matrix. A is a scaled-unitary Vandermonde-like
  // matrix over the rotation group: A^{-1} = (1/slots) * conj(A)^T.
  const std::size_t slots = ctx.params().slots();
  const LinearTransform::Matrix a = slot_to_coeff_matrix(ctx);
  LinearTransform::Matrix inv(slots, std::vector<Complex>(slots));
  for (std::size_t r = 0; r < slots; ++r) {
    for (std::size_t c = 0; c < slots; ++c) {
      inv[r][c] = std::conj(a[c][r]) / static_cast<double>(slots);
    }
  }
  return inv;
}

}  // namespace alchemist::ckks
