#include "ckks/noise.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

namespace alchemist::ckks {

NoiseOracle::NoiseOracle(ContextPtr ctx, const CkksEncoder& encoder,
                         const Decryptor& decryptor)
    : ctx_(std::move(ctx)), encoder_(encoder), decryptor_(decryptor) {}

double NoiseOracle::error_bits(const Ciphertext& ct,
                               std::span<const std::complex<double>> expected) const {
  const auto decrypted = decryptor_.decrypt(ct, encoder_);
  double max_err = 0;
  for (std::size_t i = 0; i < expected.size() && i < decrypted.size(); ++i) {
    max_err = std::max(max_err, std::abs(decrypted[i] - expected[i]));
  }
  return max_err > 0 ? std::log2(max_err) : -1074.0;
}

double NoiseOracle::precision_bits(const Ciphertext& ct,
                                   std::span<const std::complex<double>> expected) const {
  double max_mag = 0;
  for (const auto& v : expected) max_mag = std::max(max_mag, std::abs(v));
  const double signal_bits = max_mag > 0 ? std::log2(max_mag) : 0.0;
  return signal_bits - error_bits(ct, expected);
}

void check_ciphertext_invariants(const CkksContext& ctx, const Ciphertext& ct) {
  const auto fail = [](const std::string& what) {
    throw std::logic_error("ciphertext invariant violated: " + what);
  };
  if (ct.level == 0 || ct.level > ctx.params().num_levels) fail("level out of range");
  if (ct.scale <= 0 || !std::isfinite(ct.scale)) fail("non-positive scale");
  if (ct.c0.degree() != ctx.degree() || ct.c1.degree() != ctx.degree()) {
    fail("degree mismatch");
  }
  if (!ct.c0.is_ntt() || !ct.c1.is_ntt()) fail("components must be in NTT form");
  const auto expected_basis = ctx.basis_at(ct.level);
  if (ct.c0.moduli() != expected_basis || ct.c1.moduli() != expected_basis) {
    fail("basis does not match the level");
  }
  for (std::size_t c = 0; c < ct.c0.num_channels(); ++c) {
    const u64 q = expected_basis[c];
    for (std::size_t i = 0; i < ctx.degree(); ++i) {
      if (ct.c0.channel(c)[i] >= q || ct.c1.channel(c)[i] >= q) {
        fail("residue out of range");
      }
    }
  }
}

NoiseGuard::NoiseGuard(ContextPtr ctx, const Decryptor& decryptor)
    : ctx_(std::move(ctx)), decryptor_(decryptor) {}

HealthReport NoiseGuard::check(const Ciphertext& ct) const {
  HealthReport report;
  try {
    check_ciphertext_invariants(*ctx_, ct);
  } catch (const std::logic_error& e) {
    report.healthy = false;
    report.reason = e.what();
    return report;
  }
  // Magnitude test against the decryption correctness bound: Q_level / 4.
  // Any valid CKKS ciphertext keeps |m + e| well under it (otherwise the
  // message would already wrap); a corrupted one decrypts to coefficients
  // essentially uniform in ±Q/2, blowing past the bound in every channel.
  double log2_q = 0;
  const auto basis = ctx_->basis_at(ct.level);
  for (u64 q : basis) log2_q += std::log2(static_cast<double>(q));
  report.budget_bits = log2_q - 2.0;
  const std::vector<double> coeffs = decryptor_.decrypt_coeffs(ct);
  double max_mag = 0;
  for (double c : coeffs) max_mag = std::max(max_mag, std::abs(c));
  report.coeff_bits = max_mag > 0 ? std::log2(max_mag) : -1074.0;
  if (!std::isfinite(max_mag) || report.coeff_bits > report.budget_bits) {
    report.healthy = false;
    report.reason = "decrypted magnitude 2^" + std::to_string(report.coeff_bits) +
                    " exceeds the correctness bound 2^" +
                    std::to_string(report.budget_bits) +
                    " (corrupted ciphertext)";
  }
  return report;
}

void NoiseGuard::require_healthy(const Ciphertext& ct) const {
  const HealthReport report = check(ct);
  if (!report.healthy) {
    throw CorruptCiphertextError("NoiseGuard: " + report.reason);
  }
}

}  // namespace alchemist::ckks
