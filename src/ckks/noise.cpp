#include "ckks/noise.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace alchemist::ckks {

NoiseOracle::NoiseOracle(ContextPtr ctx, const CkksEncoder& encoder,
                         const Decryptor& decryptor)
    : ctx_(std::move(ctx)), encoder_(encoder), decryptor_(decryptor) {}

double NoiseOracle::error_bits(const Ciphertext& ct,
                               std::span<const std::complex<double>> expected) const {
  const auto decrypted = decryptor_.decrypt(ct, encoder_);
  double max_err = 0;
  for (std::size_t i = 0; i < expected.size() && i < decrypted.size(); ++i) {
    max_err = std::max(max_err, std::abs(decrypted[i] - expected[i]));
  }
  return max_err > 0 ? std::log2(max_err) : -1074.0;
}

double NoiseOracle::precision_bits(const Ciphertext& ct,
                                   std::span<const std::complex<double>> expected) const {
  double max_mag = 0;
  for (const auto& v : expected) max_mag = std::max(max_mag, std::abs(v));
  const double signal_bits = max_mag > 0 ? std::log2(max_mag) : 0.0;
  return signal_bits - error_bits(ct, expected);
}

void check_ciphertext_invariants(const CkksContext& ctx, const Ciphertext& ct) {
  const auto fail = [](const std::string& what) {
    throw std::logic_error("ciphertext invariant violated: " + what);
  };
  if (ct.level == 0 || ct.level > ctx.params().num_levels) fail("level out of range");
  if (ct.scale <= 0 || !std::isfinite(ct.scale)) fail("non-positive scale");
  if (ct.c0.degree() != ctx.degree() || ct.c1.degree() != ctx.degree()) {
    fail("degree mismatch");
  }
  if (!ct.c0.is_ntt() || !ct.c1.is_ntt()) fail("components must be in NTT form");
  const auto expected_basis = ctx.basis_at(ct.level);
  if (ct.c0.moduli() != expected_basis || ct.c1.moduli() != expected_basis) {
    fail("basis does not match the level");
  }
  for (std::size_t c = 0; c < ct.c0.num_channels(); ++c) {
    const u64 q = expected_basis[c];
    for (std::size_t i = 0; i < ctx.degree(); ++i) {
      if (ct.c0.channel(c)[i] >= q || ct.c1.channel(c)[i] >= q) {
        fail("residue out of range");
      }
    }
  }
}

}  // namespace alchemist::ckks
