// Key generation for RNS-CKKS.
#pragma once

#include "ckks/keys.h"
#include "ckks/params.h"
#include "common/rng.h"

namespace alchemist::ckks {

class KeyGenerator {
 public:
  KeyGenerator(ContextPtr ctx, u64 seed = 1);

  const SecretKey& secret_key() const { return secret_; }
  PublicKey make_public_key();
  RelinKeys make_relin_keys();
  // One keyswitching key per requested rotation step (plus conjugation via
  // make_galois_keys with include_conjugate).
  GaloisKeys make_galois_keys(const std::vector<int>& steps,
                              bool include_conjugate = false);

 private:
  RnsPoly sample_uniform(const std::vector<u64>& basis);
  RnsPoly sample_error_ntt(const std::vector<u64>& basis);
  // Core: keyswitching key from `s_from` (NTT, key basis) to the secret.
  KSwitchKey make_kswitch_key(const RnsPoly& s_from);

  ContextPtr ctx_;
  Rng rng_;
  SecretKey secret_;
};

}  // namespace alchemist::ckks
