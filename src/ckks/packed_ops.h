// Packed-vector helpers on CKKS ciphertexts: the reductions and products
// every application layer rebuilds (LoLa's dense layers, HELR's batched dot
// products, the bridge's coefficient folding).
#pragma once

#include "ckks/encoder.h"
#include "ckks/evaluator.h"
#include "ckks/keys.h"
#include "ckks/params.h"

namespace alchemist::ckks {

// The power-of-two rotation steps rotate_and_sum_all needs for `slots` slots
// (generate Galois keys for these).
std::vector<int> power_of_two_rotations(std::size_t slots);

// Rotate-and-add tree: afterwards *every* slot holds the sum of all slots.
// log2(slots) rotations.
Ciphertext rotate_and_sum_all(const Evaluator& evaluator, const Ciphertext& ct,
                              const GaloisKeys& gk, std::size_t slots);

// Elementwise ct * plaintext-vector followed by the all-slot reduction:
// every slot ends up holding <ct, weights>. Consumes one level.
Ciphertext inner_product_plain(const Evaluator& evaluator, const CkksEncoder& encoder,
                               const Ciphertext& ct, std::span<const double> weights,
                               const GaloisKeys& gk);

// Encrypted-encrypted inner product: every slot holds <a, b>. One level +
// relinearization.
Ciphertext inner_product(const Evaluator& evaluator, const Ciphertext& a,
                         const Ciphertext& b, const RelinKeys& rk,
                         const GaloisKeys& gk);

}  // namespace alchemist::ckks
