// CKKS ciphertext: a degree-1 RLWE pair (c0, c1) with c0 + c1*s ≈ Delta*m.
#pragma once

#include <cstddef>

#include "poly/rns.h"

namespace alchemist::ckks {

struct Ciphertext {
  RnsPoly c0;         // NTT form over basis_at(level)
  RnsPoly c1;
  std::size_t level;  // number of active q primes, in [1, L]
  double scale;
};

}  // namespace alchemist::ckks
