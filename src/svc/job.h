// Simulation jobs: the unit of work the serving layer schedules.
//
// A JobSpec bundles everything one simulation needs — workload graph, machine
// configuration, optional fault model, engine choice — plus the robustness
// envelope the JobRunner enforces around it: a deadline (wall-clock and/or a
// deterministic step budget), a bounded retry budget for fault-corrupted
// runs, a checkpoint cadence, and an optional checkpoint to resume from.
//
// The Job handle is the caller's view of a submitted job: thread-safe state
// queries, cooperative cancellation, blocking wait, and access to the result
// or the last captured checkpoint once the job reaches a terminal state.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "arch/config.h"
#include "fault/fault_model.h"
#include "metaop/op_graph.h"
#include "obs/trace.h"
#include "sim/result.h"
#include "sim/sim_control.h"

namespace alchemist::svc {

// Metric names the JobRunner exports through its obs::Registry snapshot. The
// terminal-state counters partition svc.submitted: completed + failed +
// cancelled + deadline_expired + rejected == submitted at every quiescent
// point (asserted by bench/svc_soak). Rejection reasons: queue_full,
// tenant_queue_full, shutdown, overload (all JobState::Shed), circuit_open,
// quota_rate and quota_concurrency (JobState::QuotaExceeded).
namespace metrics {
inline constexpr const char* kSubmitted = "svc.submitted";
inline constexpr const char* kAdmitted = "svc.admitted";
inline constexpr const char* kCompleted = "svc.completed";  // + {retried=true}
inline constexpr const char* kFailed = "svc.failed";
inline constexpr const char* kCancelled = "svc.cancelled";
inline constexpr const char* kDeadlineExpired = "svc.deadline_expired";
inline constexpr const char* kRejected = "svc.rejected";  // + {reason=}
inline constexpr const char* kRetries = "svc.retries";
inline constexpr const char* kCheckpoints = "svc.checkpoints";
inline constexpr const char* kResumed = "svc.resumed";
inline constexpr const char* kQueueDepth = "svc.queue_depth";  // gauge + {stat=peak}
inline constexpr const char* kLatencyUs = "svc.latency_us";    // gauge {p=50|99}
inline constexpr const char* kWorkers = "svc.workers";         // gauge
// Degraded completions (overload ladder ran the job at reduced detail).
inline constexpr const char* kDegraded = "svc.degraded";
// Per-tenant accounting, recorded only for jobs that name a tenant so an
// untenanted deployment's snapshot is byte-identical to pre-tenancy output.
// Each carries a {tenant=} tag; rejected adds {reason=}. The per-tenant
// terminal split partitions svc.tenant.submitted{tenant=} the same way the
// global counters partition svc.submitted. Tenant names absent from
// RunnerOptions::tenants share the reserved label value "_other": label
// cardinality is bounded by configuration, so a client cycling invented
// tenant names cannot grow the registry or /metrics without bound.
inline constexpr const char* kTenantSubmitted = "svc.tenant.submitted";
inline constexpr const char* kTenantAdmitted = "svc.tenant.admitted";
inline constexpr const char* kTenantTerminal = "svc.tenant.terminal";  // + {state=}
inline constexpr const char* kTenantRejected = "svc.tenant.rejected";  // + {reason=}
inline constexpr const char* kTenantDegraded = "svc.tenant.degraded";
inline constexpr const char* kTenantInFlight = "svc.tenant.in_flight";  // gauge
inline constexpr const char* kTenantBacklog = "svc.tenant.backlog";     // gauge
// Overload ladder level in force (0 normal, 1 degrade, 2 shed); only set in
// snapshots when RunnerOptions::overload.enabled.
inline constexpr const char* kOverloadLevel = "svc.overload_level";  // gauge
// Latency histograms (obs::Histogram, microsecond ticks), recorded for every
// admitted job both untagged and per {class=}. queue/run/total are wall-clock
// (machine-dependent); sim_us is the *simulated* time of completed jobs and
// therefore deterministic — the cross-worker bit-identity tests pin it.
// Snapshots derive `<name>.p50/.p95/.p99` gauges from each histogram.
inline constexpr const char* kLatencyQueueUs = "svc.latency.queue_us";
inline constexpr const char* kLatencyRunUs = "svc.latency.run_us";
inline constexpr const char* kLatencyTotalUs = "svc.latency.total_us";
inline constexpr const char* kLatencySimUs = "svc.latency.sim_us";
}  // namespace metrics

enum class Engine : std::uint8_t { Level, Event };

// Every job ends in exactly one of the terminal states below Queued/Running.
enum class JobState : std::uint8_t {
  Queued,           // admitted, waiting for a worker
  Running,          // on a worker thread
  Completed,        // SimResult available (attempts() > 1 means retried)
  Failed,           // retries exhausted or non-retryable error
  Cancelled,        // CancelToken fired (caller or shutdown)
  DeadlineExpired,  // wall-clock deadline or step budget hit
  Shed,             // rejected at admission: queue full, overload, shutdown
  CircuitOpen,      // rejected at admission: (tenant, class) breaker open
  QuotaExceeded,    // rejected at admission: tenant rate/concurrency quota
};

const char* to_string(JobState s);
bool is_terminal(JobState s);

// Per-attempt fault seed: attempt 1 reproduces the configured seed exactly
// (a retry-free job equals a plain simulator call bit for bit); later
// attempts re-roll the transient faults through a splitmix64 finalizer, the
// way independent re-executions see independent upsets on real hardware.
inline u64 attempt_seed(u64 base, std::size_t attempt) {
  if (attempt <= 1) return base;
  u64 x = base + 0x9e37'79b9'7f4a'7c15ull * static_cast<u64>(attempt - 1);
  x ^= x >> 30;
  x *= 0xbf58'476d'1ce4'e5b9ull;
  x ^= x >> 27;
  x *= 0x94d0'49bb'1331'11ebull;
  x ^= x >> 31;
  return x;
}

struct JobSpec {
  std::string name;            // display / debugging
  std::string workload_class;  // circuit-breaker key; defaults to graph name
  // Admission/fairness identity. Empty (the default) means untenanted: no
  // quotas, one shared fair-queue lane, no per-tenant metrics — exactly the
  // pre-tenancy behavior, even when the deployment configures a restrictive
  // TenantPolicyTable::fallback (the fallback governs unknown *named*
  // tenants only). Non-empty selects the TenantPolicy from
  // RunnerOptions::tenants and keys the breaker as "tenant/class".
  std::string tenant;
  // Overload consent: under OverloadController Degrade/Shed pressure this
  // job may run at sim::SimDetail::Reduced with its retry budget trimmed to
  // one attempt; the handle reports it via Job::degraded(). Jobs without the
  // tag always run at full fidelity.
  bool degradable = false;
  std::shared_ptr<const metaop::OpGraph> graph;
  arch::ArchConfig config = arch::ArchConfig::alchemist();
  Engine engine = Engine::Level;

  // Fault model (applied only when fault_enabled; the seed is re-rolled per
  // attempt via attempt_seed).
  bool fault_enabled = false;
  fault::FaultConfig fault;

  // Deadline envelope: wall-clock from admission (0 = none) and/or a
  // deterministic per-attempt simulator step budget (0 = none). Both end the
  // job in DeadlineExpired with its last checkpoint captured.
  std::chrono::microseconds deadline{0};
  std::uint64_t max_steps = 0;

  // Retry budget for fault-corrupted runs (total attempts incl. the first).
  std::size_t max_attempts = 1;

  // Checkpoint cadence in simulator steps (0 = snapshot only when stopped);
  // a valid resume_from continues an earlier interrupted run.
  std::uint64_t checkpoint_interval = 0;
  sim::Checkpoint resume_from;

  // Attach a UnitProfiler to every attempt: the completed result carries the
  // per-unit utilization.v1 profile (SimResult.profile). The simulated
  // outcome is bit-identical either way; resumed runs come back unprofiled.
  bool profile = false;

  // Attach a MemProfiler to every attempt: the completed result carries the
  // memory.v1 attribution (SimResult.mem_profile) and the runner folds
  // sim.mem.* series into its snapshot/statusz. Bit-identical outcome either
  // way; unlike `profile`, the memory profile survives checkpoint/resume.
  bool mem_profile = false;

  // Propagated trace context (obs/trace.h). Invalid (the default) means the
  // runner mints a fresh trace id from its trace seed and the submission
  // sequence; a valid context joins an existing trace — the resume path sets
  // this to the interrupted job's context so both halves of the run share one
  // trace id, and a future network front door will set it from the wire.
  obs::TraceContext trace{};
};

// Where a finished job spent its wall time, plus its provenance — the
// per-job digest of the span tree, available from Job::trace_summary() once
// the job is terminal and surfaced by alchemist_serve / svc_soak output.
struct TraceSummary {
  std::uint64_t trace_id = 0;  // 0 when the runner traced nothing
  std::uint64_t root_span = 0;
  double queue_us = 0;    // admission -> dequeue
  double run_us = 0;      // dequeue -> terminal (includes retries + backoff)
  double backoff_us = 0;  // total retry backoff sleep inside run_us
  double total_us = 0;    // admission -> terminal
  double sim_us = 0;      // simulated time of the completed result (0 else)
  std::size_t attempts = 0;
  std::size_t retries = 0;           // attempts - 1 for jobs that ran
  std::uint64_t checkpoint_bytes = 0;  // size of the last captured checkpoint
  bool degraded = false;  // ran at reduced detail under overload pressure
};

class JobRunner;

class Job {
 public:
  explicit Job(JobSpec spec) : spec_(std::move(spec)) {}

  const JobSpec& spec() const { return spec_; }

  JobState state() const {
    std::lock_guard<std::mutex> lk(mu_);
    return state_;
  }
  bool terminal() const { return is_terminal(state()); }
  std::size_t attempts() const {
    std::lock_guard<std::mutex> lk(mu_);
    return attempts_;
  }
  std::string error() const {
    std::lock_guard<std::mutex> lk(mu_);
    return error_;
  }
  // Only meaningful once state() == Completed.
  sim::SimResult result() const {
    std::lock_guard<std::mutex> lk(mu_);
    return result_;
  }
  // True when the overload ladder ran this job at reduced detail (see
  // JobSpec::degradable): interval checkpoints and engine spans suppressed,
  // no profiler, retry budget trimmed to one attempt. The simulated outcome
  // itself is bit-identical to a full-fidelity run.
  bool degraded() const {
    std::lock_guard<std::mutex> lk(mu_);
    return degraded_;
  }
  // Last captured cursor (valid() only if the job checkpointed before it was
  // stopped); feed it back through JobSpec::resume_from to continue the run.
  sim::Checkpoint checkpoint() const {
    std::lock_guard<std::mutex> lk(mu_);
    return checkpoint_;
  }

  // Root trace context the runner minted (or adopted) for this job at
  // admission; pass it through JobSpec::trace to continue the same trace
  // (the checkpoint/resume path). Invalid when the runner was not tracing.
  obs::TraceContext trace_context() const {
    std::lock_guard<std::mutex> lk(mu_);
    return trace_ctx_;
  }
  // Per-stage wall-time digest; fully populated once terminal() is true.
  TraceSummary trace_summary() const {
    std::lock_guard<std::mutex> lk(mu_);
    return summary_;
  }

  // Cooperative cancellation: takes effect at the next simulator step (or at
  // dequeue, if still queued).
  void cancel() { token_.request_cancel(); }

  void wait() const {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return is_terminal(state_); });
  }

 private:
  friend class JobRunner;

  JobSpec spec_;
  sim::CancelToken token_;
  std::uint64_t seq_ = 0;  // submission order, seeds per-job backoff jitter
  std::chrono::steady_clock::time_point submit_time_{};
  std::chrono::steady_clock::time_point run_start_time_{};  // set at dequeue
  // Trace-clock stamps of the same instants (TraceSink::now_us, so runner
  // spans share one clock with the ThreadPool's fan-out spans) and the total
  // backoff sleep, accumulated by the owning worker before finish().
  double trace_submit_us_ = 0;
  double trace_run_start_us_ = 0;
  double backoff_us_ = 0;

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  JobState state_ = JobState::Queued;
  bool degraded_ = false;  // set at dequeue under overload pressure
  std::size_t attempts_ = 0;
  std::string error_;
  sim::SimResult result_;
  sim::Checkpoint checkpoint_;
  obs::TraceContext trace_ctx_;  // root context, minted at admission
  TraceSummary summary_;         // filled when the job turns terminal
};

using JobPtr = std::shared_ptr<Job>;

inline const char* to_string(JobState s) {
  switch (s) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Completed: return "completed";
    case JobState::Failed: return "failed";
    case JobState::Cancelled: return "cancelled";
    case JobState::DeadlineExpired: return "deadline-expired";
    case JobState::Shed: return "shed";
    case JobState::CircuitOpen: return "circuit-open";
    case JobState::QuotaExceeded: return "quota-exceeded";
  }
  return "?";
}

inline bool is_terminal(JobState s) {
  return s != JobState::Queued && s != JobState::Running;
}

}  // namespace alchemist::svc
