// Per-tenant admission control: token-bucket rate limits + concurrency quotas.
//
// The serving layer multiplexes many tenants onto one bounded worker pool; a
// tenant that submits faster than its contract must be rejected with a typed
// verdict (JobState::QuotaExceeded) *before* it can displace anyone else's
// work in the queue. Two independent limits per tenant:
//
//   * rate:        a token bucket (burst capacity, refill rate). Every
//                  admission takes one token; an empty bucket rejects with
//                  Verdict::RateLimited. burst == 0 disables the bucket —
//                  the default, so untenanted deployments are unchanged.
//   * concurrency: max jobs simultaneously queued or running (in flight).
//                  max_in_flight == 0 disables the limit.
//
// Like svc::CircuitBreaker, everything here is pure logic over
// caller-supplied time points — no clock reads, no locks (the JobRunner
// serializes access under its own mutex) — so the deterministic soak
// scenarios and the unit tests drive it with a manual clock. A refill rate
// of 0 makes the bucket a pure burst budget, which is what the adversarial
// soak uses to keep admission verdicts bit-reproducible.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>

namespace alchemist::svc {

// Admission and scheduling contract of one tenant. The zero-initialized
// policy is "unlimited": no rate limit, no concurrency cap, no backlog cap,
// weight 1 — identical to the pre-tenancy serving behavior.
struct TenantPolicy {
  // Token bucket: capacity `burst` tokens, refilled at `rate_per_sec`.
  // burst == 0 disables rate limiting for the tenant; rate_per_sec == 0
  // makes the bucket a non-replenishing burst budget (deterministic).
  double burst = 0.0;
  double rate_per_sec = 0.0;
  // Max jobs queued + running at once; 0 = unlimited.
  std::size_t max_in_flight = 0;
  // Max jobs waiting in the tenant's fair-queue backlog; 0 = unlimited.
  // Enforced by the JobRunner at enqueue (Shed{tenant_queue_full}), kept
  // here so one table describes the whole contract.
  std::size_t max_backlog = 0;
  // Deficit-round-robin weight (jobs served per scheduling round relative to
  // other backlogged tenants). Clamped to >= 1.
  std::uint32_t weight = 1;
};

// Tenant -> policy, with a fallback for *named* tenants not explicitly
// configured. The default fallback is the unlimited policy, so enabling
// tenancy is strictly opt-in per tenant. Untenanted submissions (empty
// tenant) never consult the fallback: job.h's contract is that an empty
// tenant means no quotas at all — exactly the pre-tenancy behavior — even
// when a deployment caps unknown tenants with a restrictive fallback.
struct TenantPolicyTable {
  std::map<std::string, TenantPolicy> policies;
  TenantPolicy fallback{};

  const TenantPolicy& resolve(const std::string& tenant) const {
    if (tenant.empty()) {
      static const TenantPolicy unlimited{};
      return unlimited;
    }
    const auto it = policies.find(tenant);
    return it == policies.end() ? fallback : it->second;
  }
};

class TokenBucket {
 public:
  using Clock = std::chrono::steady_clock;

  TokenBucket() = default;
  TokenBucket(double burst, double rate_per_sec)
      : burst_(burst), rate_per_sec_(rate_per_sec), tokens_(burst) {}

  // Take one token, refilling for the elapsed time first. A disabled bucket
  // (burst == 0) always admits. `now` must be monotone across calls.
  bool try_take(Clock::time_point now) {
    if (burst_ <= 0.0) return true;
    refill(now);
    if (tokens_ >= 1.0) {
      tokens_ -= 1.0;
      return true;
    }
    return false;
  }

  // Return a token taken by an admission that was rolled back by a later
  // admission stage (queue full, breaker): the tenant must not be charged
  // for a job that never entered the system.
  void refund() {
    if (burst_ <= 0.0) return;
    tokens_ = std::min(burst_, tokens_ + 1.0);
  }

  double tokens(Clock::time_point now) {
    if (burst_ <= 0.0) return 0.0;
    refill(now);
    return tokens_;
  }

  // Back at full capacity (or disabled): the bucket holds no state worth
  // keeping, so its owner is indistinguishable from a never-seen tenant.
  bool full(Clock::time_point now) {
    if (burst_ <= 0.0) return true;
    refill(now);
    return tokens_ >= burst_;
  }

 private:
  void refill(Clock::time_point now) {
    if (last_ == Clock::time_point{}) {
      last_ = now;
      return;
    }
    if (now <= last_) return;
    const double dt = std::chrono::duration<double>(now - last_).count();
    tokens_ = std::min(burst_, tokens_ + rate_per_sec_ * dt);
    last_ = now;
  }

  double burst_ = 0.0;
  double rate_per_sec_ = 0.0;
  double tokens_ = 0.0;
  Clock::time_point last_{};
};

// Per-tenant admission state: one bucket + one in-flight counter per tenant,
// created lazily on first submission.
//
// Tenant names are caller-controlled, so lazily-created state must not
// accumulate forever: a state is evicted once it is indistinguishable from a
// fresh one (nothing in flight, bucket back at full capacity) — but only for
// tenants the policy table does not name. Explicitly configured tenants are
// bounded by configuration and stay resident so introspection keeps listing
// them; a non-replenishing (rate 0) bucket never refills, so a spent burst
// budget is likewise never forgotten. Eviction runs at the natural touch
// points (release/rollback) plus an amortized two-probe sweep per admission,
// which reclaims states whose buckets refilled while the tenant was idle.
class Admission {
 public:
  using Clock = std::chrono::steady_clock;

  enum class Verdict { Admit, RateLimited, ConcurrencyLimited };

  explicit Admission(TenantPolicyTable table) : table_(std::move(table)) {}

  const TenantPolicyTable& table() const { return table_; }

  // Admission check for one submission. On Admit the tenant is charged: one
  // token taken, in-flight incremented. The caller must pair every Admit
  // with exactly one release() (job reached a terminal state) or rollback()
  // (a later admission stage rejected the job after all).
  Verdict admit(const std::string& tenant, Clock::time_point now) {
    sweep(now);
    State& st = state_for(tenant);
    if (!st.bucket.try_take(now)) return Verdict::RateLimited;
    if (st.policy->max_in_flight != 0 &&
        st.in_flight >= st.policy->max_in_flight) {
      st.bucket.refund();
      return Verdict::ConcurrencyLimited;
    }
    ++st.in_flight;
    return Verdict::Admit;
  }

  // The admitted job reached a terminal state: free its concurrency slot.
  void release(const std::string& tenant, Clock::time_point now) {
    State& st = state_for(tenant);
    if (st.in_flight > 0) --st.in_flight;
    maybe_evict(tenant, now);
  }

  // A later admission stage rejected an already-admitted job: free the slot
  // and refund the token.
  void rollback(const std::string& tenant, Clock::time_point now) {
    State& st = state_for(tenant);
    if (st.in_flight > 0) --st.in_flight;
    st.bucket.refund();
    maybe_evict(tenant, now);
  }

  std::size_t in_flight(const std::string& tenant) const {
    const auto it = states_.find(tenant);
    return it == states_.end() ? 0 : it->second.in_flight;
  }

  double tokens(const std::string& tenant, Clock::time_point now) {
    return state_for(tenant).bucket.tokens(now);
  }

  const TenantPolicy& policy(const std::string& tenant) {
    return *state_for(tenant).policy;
  }

  // Tenants that have submitted at least once, for introspection.
  template <typename Fn>  // Fn(const std::string&, std::size_t in_flight)
  void for_each(Fn&& fn) const {
    for (const auto& [tenant, st] : states_) fn(tenant, st.in_flight);
  }

 private:
  struct State {
    const TenantPolicy* policy = nullptr;  // borrowed from table_
    TokenBucket bucket;
    std::size_t in_flight = 0;
    // Resolved through TenantPolicyTable::fallback (a named tenant absent
    // from the table): the only states eligible for eviction.
    bool fallback = false;
  };

  State& state_for(const std::string& tenant) {
    const auto it = states_.find(tenant);
    if (it != states_.end()) return it->second;
    State st;
    st.policy = &table_.resolve(tenant);
    st.bucket = TokenBucket(st.policy->burst, st.policy->rate_per_sec);
    st.fallback =
        !tenant.empty() && table_.policies.find(tenant) == table_.policies.end();
    return states_.emplace(tenant, std::move(st)).first->second;
  }

  static bool evictable(State& st, Clock::time_point now) {
    return st.fallback && st.in_flight == 0 && st.bucket.full(now);
  }

  void maybe_evict(const std::string& tenant, Clock::time_point now) {
    const auto it = states_.find(tenant);
    if (it != states_.end() && evictable(it->second, now)) states_.erase(it);
  }

  // Amortized reclamation of idle fallback-tenant states whose buckets have
  // refilled since their last event (rejected probes never release, so their
  // states would otherwise only ever be touched again by the same tenant).
  // Two probes per admission retire garbage at least as fast as admissions
  // can mint it.
  void sweep(Clock::time_point now) {
    for (int probes = 0; probes < 2 && !states_.empty(); ++probes) {
      auto it = states_.upper_bound(cursor_);
      if (it == states_.end()) it = states_.begin();
      cursor_ = it->first;
      if (evictable(it->second, now)) states_.erase(it);
    }
  }

  TenantPolicyTable table_;
  std::map<std::string, State> states_;
  std::string cursor_;  // sweep position (last probed tenant)
};

}  // namespace alchemist::svc
