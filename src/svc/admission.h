// Per-tenant admission control: token-bucket rate limits + concurrency quotas.
//
// The serving layer multiplexes many tenants onto one bounded worker pool; a
// tenant that submits faster than its contract must be rejected with a typed
// verdict (JobState::QuotaExceeded) *before* it can displace anyone else's
// work in the queue. Two independent limits per tenant:
//
//   * rate:        a token bucket (burst capacity, refill rate). Every
//                  admission takes one token; an empty bucket rejects with
//                  Verdict::RateLimited. burst == 0 disables the bucket —
//                  the default, so untenanted deployments are unchanged.
//   * concurrency: max jobs simultaneously queued or running (in flight).
//                  max_in_flight == 0 disables the limit.
//
// Like svc::CircuitBreaker, everything here is pure logic over
// caller-supplied time points — no clock reads, no locks (the JobRunner
// serializes access under its own mutex) — so the deterministic soak
// scenarios and the unit tests drive it with a manual clock. A refill rate
// of 0 makes the bucket a pure burst budget, which is what the adversarial
// soak uses to keep admission verdicts bit-reproducible.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>

namespace alchemist::svc {

// Admission and scheduling contract of one tenant. The zero-initialized
// policy is "unlimited": no rate limit, no concurrency cap, no backlog cap,
// weight 1 — identical to the pre-tenancy serving behavior.
struct TenantPolicy {
  // Token bucket: capacity `burst` tokens, refilled at `rate_per_sec`.
  // burst == 0 disables rate limiting for the tenant; rate_per_sec == 0
  // makes the bucket a non-replenishing burst budget (deterministic).
  double burst = 0.0;
  double rate_per_sec = 0.0;
  // Max jobs queued + running at once; 0 = unlimited.
  std::size_t max_in_flight = 0;
  // Max jobs waiting in the tenant's fair-queue backlog; 0 = unlimited.
  // Enforced by the JobRunner at enqueue (Shed{tenant_queue_full}), kept
  // here so one table describes the whole contract.
  std::size_t max_backlog = 0;
  // Deficit-round-robin weight (jobs served per scheduling round relative to
  // other backlogged tenants). Clamped to >= 1.
  std::uint32_t weight = 1;
};

// Tenant -> policy, with a fallback for tenants not explicitly configured.
// The default fallback is the unlimited policy, so enabling tenancy is
// strictly opt-in per tenant.
struct TenantPolicyTable {
  std::map<std::string, TenantPolicy> policies;
  TenantPolicy fallback{};

  const TenantPolicy& resolve(const std::string& tenant) const {
    const auto it = policies.find(tenant);
    return it == policies.end() ? fallback : it->second;
  }
};

class TokenBucket {
 public:
  using Clock = std::chrono::steady_clock;

  TokenBucket() = default;
  TokenBucket(double burst, double rate_per_sec)
      : burst_(burst), rate_per_sec_(rate_per_sec), tokens_(burst) {}

  // Take one token, refilling for the elapsed time first. A disabled bucket
  // (burst == 0) always admits. `now` must be monotone across calls.
  bool try_take(Clock::time_point now) {
    if (burst_ <= 0.0) return true;
    refill(now);
    if (tokens_ >= 1.0) {
      tokens_ -= 1.0;
      return true;
    }
    return false;
  }

  // Return a token taken by an admission that was rolled back by a later
  // admission stage (queue full, breaker): the tenant must not be charged
  // for a job that never entered the system.
  void refund() {
    if (burst_ <= 0.0) return;
    tokens_ = std::min(burst_, tokens_ + 1.0);
  }

  double tokens(Clock::time_point now) {
    if (burst_ <= 0.0) return 0.0;
    refill(now);
    return tokens_;
  }

 private:
  void refill(Clock::time_point now) {
    if (last_ == Clock::time_point{}) {
      last_ = now;
      return;
    }
    if (now <= last_) return;
    const double dt = std::chrono::duration<double>(now - last_).count();
    tokens_ = std::min(burst_, tokens_ + rate_per_sec_ * dt);
    last_ = now;
  }

  double burst_ = 0.0;
  double rate_per_sec_ = 0.0;
  double tokens_ = 0.0;
  Clock::time_point last_{};
};

// Per-tenant admission state: one bucket + one in-flight counter per tenant,
// created lazily on first submission.
class Admission {
 public:
  using Clock = std::chrono::steady_clock;

  enum class Verdict { Admit, RateLimited, ConcurrencyLimited };

  explicit Admission(TenantPolicyTable table) : table_(std::move(table)) {}

  const TenantPolicyTable& table() const { return table_; }

  // Admission check for one submission. On Admit the tenant is charged: one
  // token taken, in-flight incremented. The caller must pair every Admit
  // with exactly one release() (job reached a terminal state) or rollback()
  // (a later admission stage rejected the job after all).
  Verdict admit(const std::string& tenant, Clock::time_point now) {
    State& st = state_for(tenant);
    if (!st.bucket.try_take(now)) return Verdict::RateLimited;
    if (st.policy->max_in_flight != 0 &&
        st.in_flight >= st.policy->max_in_flight) {
      st.bucket.refund();
      return Verdict::ConcurrencyLimited;
    }
    ++st.in_flight;
    return Verdict::Admit;
  }

  // The admitted job reached a terminal state: free its concurrency slot.
  void release(const std::string& tenant) {
    State& st = state_for(tenant);
    if (st.in_flight > 0) --st.in_flight;
  }

  // A later admission stage rejected an already-admitted job: free the slot
  // and refund the token.
  void rollback(const std::string& tenant) {
    State& st = state_for(tenant);
    if (st.in_flight > 0) --st.in_flight;
    st.bucket.refund();
  }

  std::size_t in_flight(const std::string& tenant) const {
    const auto it = states_.find(tenant);
    return it == states_.end() ? 0 : it->second.in_flight;
  }

  double tokens(const std::string& tenant, Clock::time_point now) {
    return state_for(tenant).bucket.tokens(now);
  }

  const TenantPolicy& policy(const std::string& tenant) {
    return *state_for(tenant).policy;
  }

  // Tenants that have submitted at least once, for introspection.
  template <typename Fn>  // Fn(const std::string&, std::size_t in_flight)
  void for_each(Fn&& fn) const {
    for (const auto& [tenant, st] : states_) fn(tenant, st.in_flight);
  }

 private:
  struct State {
    const TenantPolicy* policy = nullptr;  // borrowed from table_
    TokenBucket bucket;
    std::size_t in_flight = 0;
  };

  State& state_for(const std::string& tenant) {
    const auto it = states_.find(tenant);
    if (it != states_.end()) return it->second;
    State st;
    st.policy = &table_.resolve(tenant);
    st.bucket = TokenBucket(st.policy->burst, st.policy->rate_per_sec);
    return states_.emplace(tenant, std::move(st)).first->second;
  }

  TenantPolicyTable table_;
  std::map<std::string, State> states_;
};

}  // namespace alchemist::svc
