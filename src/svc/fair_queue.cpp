#include "svc/fair_queue.h"

#include <algorithm>

namespace alchemist::svc {

FairQueue::PushResult FairQueue::push(const std::string& tenant,
                                      std::uint32_t weight,
                                      std::size_t max_backlog, JobPtr job) {
  if (size_ >= capacity_) return PushResult::Full;
  SubQueue& sq = queues_[tenant];
  if (max_backlog != 0 && sq.jobs.size() >= max_backlog) {
    return PushResult::TenantFull;
  }
  sq.weight = std::max<std::uint32_t>(1, weight);
  sq.jobs.push_back(std::move(job));
  ++size_;
  if (!sq.active) {
    sq.active = true;
    // A newly-backlogged tenant joins the ring with an empty deficit: its
    // first service happens on its first visit, after the tenants already in
    // the ring have had theirs — arrival order breaks ties deterministically.
    sq.deficit = 0.0;
    active_.push_back(tenant);
  }
  return PushResult::Ok;
}

JobPtr FairQueue::pop() {
  if (size_ == 0) return nullptr;
  // Deficit round robin with unit job cost. The head tenant is credited its
  // weight when its deficit cannot cover a job; with weight >= 1 one credit
  // always suffices, so the loop visits at most two ring nodes per pop.
  for (;;) {
    const std::string& tenant = active_.front();
    const auto qit = queues_.find(tenant);
    SubQueue& sq = qit->second;
    if (sq.deficit < 1.0) sq.deficit += static_cast<double>(sq.weight);
    if (sq.deficit >= 1.0) {
      sq.deficit -= 1.0;
      JobPtr job = std::move(sq.jobs.front());
      sq.jobs.pop_front();
      --size_;
      if (sq.jobs.empty()) {
        // A drained tenant is evicted outright, not just parked: tenant
        // names are caller-controlled, so per-tenant state must not outlive
        // the backlog that created it. (This also enforces the classic DRR
        // anti-burst rule — an idle tenant accumulates no deficit.) The map
        // node goes first; `tenant` aliases the ring node, which goes last.
        queues_.erase(qit);
        active_.pop_front();
      } else if (sq.deficit < 1.0) {
        // Quantum exhausted: rotate to the back of the ring for next round.
        active_.splice(active_.end(), active_, active_.begin());
      }
      return job;
    }
    // Unreachable with weight >= 1, but keep the ring moving if it ever is.
    active_.splice(active_.end(), active_, active_.begin());
  }
}

std::vector<JobPtr> FairQueue::drain() {
  std::vector<JobPtr> out;
  out.reserve(size_);
  // Drain in DRR order so shutdown cancellation reports the same ordering a
  // worker would have seen.
  while (JobPtr job = pop()) out.push_back(std::move(job));
  return out;
}

std::size_t FairQueue::backlog(const std::string& tenant) const {
  const auto it = queues_.find(tenant);
  return it == queues_.end() ? 0 : it->second.jobs.size();
}

}  // namespace alchemist::svc
