// Thread-pool simulation service: the host-side robustness layer the
// accelerator serving stacks (ARK, BASALISC) assume, reproduced in software.
//
// N worker threads drain per-tenant fair queues behind a typed admission
// pipeline:
//
//   submit() ─▶ [breaker?] ─▶ [quota?] ─▶ [overload?] ─▶ fair queue ─▶ worker ─▶ attempt loop
//               │ open         │ over       │ shedding     (DRR over           │
//               ▼              ▼            ▼            per-tenant lanes)     ├─ Completed [Degraded]
//           CircuitOpen   QuotaExceeded    Shed                                ├─ retry (backoff,
//                                                                              │   re-rolled fault seed)
//                                                                              ├─ Failed (budget exhausted)
//                                                                              ├─ Cancelled      ┐ checkpoint
//                                                                              └─ DeadlineExpired┘ captured
//
// * Backpressure: the queue never grows past `queue_capacity`; overload is a
//   typed Shed rejection, not latency collapse.
// * Multi-tenant admission (svc/admission.h): JobSpec::tenant selects a
//   TenantPolicy (token-bucket rate limit, concurrency quota, backlog cap,
//   DRR weight) from RunnerOptions::tenants; quota violations terminate in
//   QuotaExceeded, distinct from capacity Shed, so clients can tell "slow
//   down" from "service is full".
// * Fair queueing (svc/fair_queue.h): per-tenant sub-queues drained by
//   deficit round robin — a bursty tenant queues behind its own backlog
//   instead of everyone's. Untenanted jobs share one lane, which degenerates
//   to the old FIFO.
// * Overload ladder (svc/overload.h): CoDel-style queue-sojourn tracking.
//   Past the target delay, degradable jobs run at reduced detail (Degraded
//   flag on the handle, bit-identical simulated outcome); past the shed
//   threshold, new arrivals shed (reason "overload") until the standing
//   queue drains. Queued work is never dropped, and Shed never outlives the
//   backlog: an arrival that finds the queue empty counts as a zero-delay
//   observation and resets the ladder, so recovery does not depend on a
//   further dequeue.
// * Deadlines: wall-clock deadlines ride the job's CancelToken; deterministic
//   step budgets (JobSpec::max_steps) expire the same way. Both leave the
//   job's last checkpoint on the handle for resumption.
// * Retries: fault-corrupted runs are re-executed up to max_attempts with
//   exponential backoff (common/backoff.h, deterministic per-job jitter) and
//   a fresh per-attempt fault seed.
// * Circuit breaking: consecutive failures of one workload class fast-fail
//   subsequent submissions of that class until a cooldown + half-open probe
//   (svc/circuit_breaker.h).
// * Observability: svc.* counters and gauges (queue depth, terminal-state
//   partition, p50/p99 latency) exported as an obs::Registry snapshot,
//   together with the substrate.* counters of the shared compute pool.
//   Admitted jobs additionally record svc.latency.{queue,run,total,sim}_us
//   histograms (aggregate and per workload class); snapshots derive
//   .p50/.p95/.p99 gauges from them. With RunnerOptions::timeline attached,
//   the runner emits span-style lifecycle events — submit instants, per-job
//   run spans with queue-wait/terminal-state args, nested retry-backoff
//   spans — on one track per worker. status_json() is the machine-readable
//   live view (/statusz): breaker states, queue occupancy, pool width,
//   substrate.* activity.
// * Intra-job parallelism: functional kernels running inside a job fan out on
//   the process-wide ThreadPool (common/thread_pool.h), which all workers
//   share. Nested fan-outs run inline on their worker and callers lend their
//   own thread, so J job workers over a P-thread pool never run more than
//   J + P - 1 compute threads — job-level and kernel-level parallelism
//   compose without oversubscription. ALCHEMIST_THREADS=1 (or
//   ThreadPool::set_threads(1)) collapses every kernel to the sequential
//   path; results are bit-identical either way.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/backoff.h"
#include "obs/log.h"
#include "obs/registry.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "svc/admission.h"
#include "svc/circuit_breaker.h"
#include "svc/fair_queue.h"
#include "svc/job.h"
#include "svc/overload.h"

namespace alchemist::svc {

struct RunnerOptions {
  std::size_t workers = 4;
  std::size_t queue_capacity = 64;
  // Retry pacing; each job derives a deterministic jitter stream from
  // backoff.seed and its submission sequence number.
  BackoffConfig backoff{};
  // Circuit breaker per (tenant, workload class): consecutive failures to
  // open, and the open period before a half-open probe. threshold 0 disables
  // breaking. Untenanted jobs key the breaker by class alone, so one
  // tenant's failing workload never fast-fails another tenant's.
  std::size_t breaker_threshold = 5;
  std::chrono::milliseconds breaker_cooldown{100};
  // Per-tenant admission quotas and fair-queue weights (svc/admission.h).
  // The default table is unlimited for every tenant — tenancy is opt-in.
  TenantPolicyTable tenants{};
  // Adaptive overload control (svc/overload.h). Disabled by default.
  OverloadConfig overload{};
  // Start with workers parked (submissions queue up but nothing runs) until
  // set_paused(false) — deterministic queue-pressure tests rely on this.
  bool start_paused = false;
  // Optional job-lifecycle span sink (submit -> run -> retry -> terminal),
  // not owned; must outlive the runner. Timestamps are wall microseconds
  // since runner construction. Access is serialized under the runner mutex.
  // With a TraceSink also attached, the runner adds per-trace flow arrows
  // (submit instant -> run slice) so Perfetto draws the queue->run handoff.
  obs::Timeline* timeline = nullptr;
  // Distributed tracing (obs/trace.h): with a sink attached the runner mints
  // a TraceContext per submitted job (trace_seed ^ submission sequence, so
  // ids are reproducible across runs and worker counts) and records job /
  // queue / attempt / backoff spans, propagates the context into both
  // simulator engines (trace_detail bounds their span volume) and exposes it
  // to ThreadPool fan-outs via the ambient thread-local. Null = tracing off:
  // the whole path reduces to pointer tests, no allocation. Not owned; must
  // outlive the runner.
  obs::TraceSink* trace = nullptr;
  obs::TraceDetail trace_detail = obs::TraceDetail::Phases;
  std::uint64_t trace_seed = 0xa1c4'e015'7f1a'6e57ull;
  // Structured flight recorder (obs/log.h): job lifecycle events (admitted /
  // shed / retry / terminal) with the job's trace id attached. Null = off.
  obs::EventLog* log = nullptr;
};

class JobRunner {
 public:
  explicit JobRunner(RunnerOptions opts = {});
  // Equivalent to shutdown().
  ~JobRunner();

  // Stops accepting (subsequent submissions shed with reason "shutdown"),
  // cancels queued and running jobs, joins the workers. Every job still
  // reaches a terminal state. Idempotent and safe to race with concurrent
  // submit() calls from other threads — the accounting invariant
  // (terminal-state counters partition svc.submitted) holds throughout.
  void shutdown();

  JobRunner(const JobRunner&) = delete;
  JobRunner& operator=(const JobRunner&) = delete;

  // Admission control; never blocks and never throws on overload. The
  // returned handle is already terminal (Shed / CircuitOpen) when the job
  // was rejected. Throws std::invalid_argument only for malformed specs
  // (null graph).
  JobPtr submit(JobSpec spec);

  // Block until every admitted job has reached a terminal state.
  void drain();

  // Park/unpark the worker threads (see RunnerOptions::start_paused).
  void set_paused(bool paused);

  // Point-in-time copy of the svc.* registry, including queue-depth gauges,
  // p50/p99 latency over all terminal jobs so far, the latency histograms
  // and their derived .p50/.p95/.p99 gauges.
  obs::Registry snapshot() const;

  // Live JSON for the /statusz introspection endpoint: worker-pool and queue
  // occupancy, per-class breaker states, svc.* counters and substrate.*
  // activity. Thread-safe; poll-driven (computed on call, nothing cached).
  std::string status_json() const;

  // Per-(tenant, class) breaker states, for introspection and tests. Keys
  // are "class" for untenanted jobs and "tenant/class" otherwise.
  std::map<std::string, CircuitBreaker::State> breaker_states() const;

  // Overload ladder level currently in force (svc/overload.h).
  OverloadController::Level overload_level() const;

  const RunnerOptions& options() const { return opts_; }

 private:
  void worker_loop(std::size_t worker_id);
  void run_job(const JobPtr& job, bool degraded);
  // Terminal transition: updates the svc.* counters, latency record and
  // workload-class breaker first, then publishes the state to the handle (so
  // a caller woken by Job::wait() always sees itself accounted).
  void finish(const JobPtr& job, JobState state, std::string error,
              sim::SimResult result, sim::Checkpoint checkpoint,
              std::size_t attempts);
  // The accounting half of finish(); caller holds mu_.
  void record_terminal(const Job& job, JobState state, std::size_t attempts,
                       bool has_checkpoint,
                       std::chrono::steady_clock::time_point now,
                       double sim_us);
  // Fold a completed job's memory.v1 profile into the runner registry as
  // sim.mem.* series; caller holds mu_. Only ever called for mem-profiled
  // jobs, so an unprofiled deployment's snapshot stays byte-identical.
  void fold_mem_profile(const obs::MemoryProfile& m);
  // Wall microseconds since runner construction (timeline timestamp base).
  double ts_us(std::chrono::steady_clock::time_point t) const {
    return std::chrono::duration<double, std::micro>(t - epoch_).count();
  }

  // Breaker key: "class" untenanted, "tenant/class" otherwise.
  static std::string breaker_key(const std::string& tenant,
                                 const std::string& workload_class) {
    return tenant.empty() ? workload_class : tenant + "/" + workload_class;
  }

  // Metric label for a tenant: names absent from the policy table coalesce
  // to "_other", so per-tenant series cardinality is bounded by
  // configuration, never by the tenant strings clients invent. Caller holds
  // mu_ (reads only immutable opts_, but keeps the discipline uniform).
  const std::string& metric_tenant(const std::string& tenant) const;
  // Drop a (tenant x class) breaker again when it is indistinguishable from
  // a fresh one and its tenant is not in the policy table; caller holds mu_.
  void maybe_evict_breaker(
      const std::map<std::string, CircuitBreaker>::iterator& it,
      const std::string& tenant);

  RunnerOptions opts_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;  // queue, breakers, admission, stats, flags, timeline
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  FairQueue queue_;
  Admission admission_;
  OverloadController overload_;
  std::vector<Job*> running_;  // jobs currently on a worker (for shutdown cancel)
  std::map<std::string, CircuitBreaker> breakers_;
  obs::Registry reg_;
  std::vector<double> latencies_us_;
  std::size_t peak_depth_ = 0;
  std::uint64_t seq_ = 0;
  bool paused_ = false;
  bool stopping_ = false;

  std::mutex join_mu_;  // serializes the one-time worker join in shutdown()
  bool joined_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace alchemist::svc
