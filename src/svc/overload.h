// Adaptive overload control: CoDel-style queue-sojourn tracking with a
// degrade-before-shed escalation ladder.
//
// Queue *length* is a poor overload signal (a deep queue of microsecond jobs
// is healthy; a shallow queue of minute-long jobs is not). Following CoDel
// (Nichols & Jacobson, CACM 2012) the controller watches queue *delay*: the
// sojourn time of each job between admission and dequeue, fed by the workers
// as they pick jobs up. The minimum sojourn over the current interval-long
// window is the standing-queue estimate — bursts that drain within one
// interval never raise it. After each decision the window re-arms (CoDel
// re-arms its interval the same way), so the level tracks the delay standing
// *now*, not a minimum from the start of the congestion epoch.
//
// Escalation, in order (the graceful-degradation ladder the serving layer
// applies):
//
//   Normal   min sojourn <= target: full-fidelity service.
//   Degrade  min sojourn has stayed above `target` for a full `interval`:
//            jobs tagged degradable run at reduced detail (sim::SimDetail::
//            Reduced — no interval checkpoints, lifecycle-only spans, no
//            profiler) with their retry budget trimmed to one attempt, and
//            their results are flagged Degraded. Simulated outcomes stay
//            bit-identical; only wall-clock cost and observability drop.
//   Shed     min sojourn has additionally been above shed_factor * target
//            for a full interval: new arrivals are shed (typed Shed with
//            reason "overload") until the standing queue drains. Queued work
//            is never dropped — admission is the only shed point, so the
//            terminal-state accounting stays exact.
//
// One sojourn at or below target resets the ladder to Normal (the standing
// queue has drained). Observations normally arrive at dequeue, but the
// JobRunner also feeds a zero-delay observation when a submission finds the
// queue empty: an empty queue *is* a zero standing delay, and without that
// feed a Shed level reached just as the backlog drained would reject every
// arrival before it could be queued — no dequeue, no observation, no reset,
// a permanent lockout. Pure logic over caller-supplied time points, like
// CircuitBreaker and Admission: no clock reads, no locks, unit-testable with
// a manual clock. Disabled (the default) it never leaves Normal, so pre-PR
// deployments are untouched.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>

namespace alchemist::svc {

struct OverloadConfig {
  bool enabled = false;
  // Acceptable standing queue delay (CoDel "target").
  std::chrono::microseconds target{5'000};
  // How long the delay must stand above target before escalating (CoDel
  // "interval"). Zero escalates on the first above-target sojourn — the
  // deterministic soak scenarios use that.
  std::chrono::microseconds interval{100'000};
  // Shed once the standing delay exceeds target * shed_factor (and has been
  // above target for an interval).
  double shed_factor = 8.0;
};

class OverloadController {
 public:
  using Clock = std::chrono::steady_clock;

  enum class Level : std::uint8_t { Normal, Degrade, Shed };

  explicit OverloadController(OverloadConfig cfg = {}) : cfg_(cfg) {}

  const OverloadConfig& config() const { return cfg_; }

  // Feed one queue-sojourn observation (admission -> dequeue) made at `now`.
  // Returns the level in force *after* the observation.
  Level observe(std::chrono::microseconds sojourn, Clock::time_point now) {
    if (!cfg_.enabled) return Level::Normal;
    if (sojourn <= cfg_.target) {
      // Standing queue drained: reset the ladder and the window.
      above_since_ = Clock::time_point{};
      window_min_ = kNoMin;
      level_ = Level::Normal;
      return level_;
    }
    if (above_since_ == Clock::time_point{}) {
      above_since_ = now;
      window_min_ = sojourn;
      return level_;  // first above-target sample starts the window
    }
    window_min_ = std::min(window_min_, sojourn);
    if (now - above_since_ >= cfg_.interval) {
      const auto shed_at = std::chrono::microseconds(static_cast<std::int64_t>(
          static_cast<double>(cfg_.target.count()) * cfg_.shed_factor));
      level_ = window_min_ > shed_at ? Level::Shed : Level::Degrade;
      // Re-arm: the next decision measures a fresh window. A running minimum
      // over the whole congestion epoch would let one early barely-above-
      // target sample pin the estimate below the shed threshold forever,
      // no matter how bad the standing delay later got.
      above_since_ = now;
      window_min_ = kNoMin;
    }
    return level_;
  }

  Level level() const { return level_; }

  static const char* to_string(Level l) {
    switch (l) {
      case Level::Normal: return "normal";
      case Level::Degrade: return "degrade";
      case Level::Shed: return "shed";
    }
    return "?";
  }

 private:
  static constexpr std::chrono::microseconds kNoMin{
      std::chrono::microseconds::max()};

  OverloadConfig cfg_;
  Level level_ = Level::Normal;
  Clock::time_point above_since_{};
  std::chrono::microseconds window_min_{kNoMin};
};

}  // namespace alchemist::svc
