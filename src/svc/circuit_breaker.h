// Per-workload-class circuit breaker (closed -> open -> half-open).
//
// A class whose jobs keep failing (fault-corrupted outputs, blown deadlines)
// is fast-failed at admission instead of burning worker time: after
// `threshold` consecutive failures the breaker opens and every submission is
// rejected with JobState::CircuitOpen until the cooldown elapses. The first
// admission after the cooldown runs as a half-open probe — its outcome alone
// decides whether the breaker closes again or re-opens for another cooldown.
//
// The class is pure logic over caller-supplied time points (no clock reads,
// no locks — the JobRunner serializes access under its own mutex), which is
// what makes it unit-testable with a manual clock.
#pragma once

#include <chrono>
#include <cstddef>

namespace alchemist::svc {

class CircuitBreaker {
 public:
  using Clock = std::chrono::steady_clock;

  enum class State { Closed, Open, HalfOpen };

  // `threshold` consecutive failures trip the breaker; 0 disables it (always
  // closed). `cooldown` is the open period before a half-open probe.
  CircuitBreaker(std::size_t threshold, Clock::duration cooldown)
      : threshold_(threshold), cooldown_(cooldown) {}

  // May this job be admitted now? Transitions Open -> HalfOpen when the
  // cooldown has elapsed, admitting exactly one probe.
  bool allow(Clock::time_point now) {
    switch (state_) {
      case State::Closed:
        return true;
      case State::Open:
        if (now >= open_until_) {
          state_ = State::HalfOpen;
          return true;
        }
        return false;
      case State::HalfOpen:
        return false;  // one probe in flight at a time
    }
    return false;
  }

  void on_success() {
    state_ = State::Closed;
    consecutive_failures_ = 0;
  }

  void on_failure(Clock::time_point now) {
    if (threshold_ == 0) return;
    if (state_ == State::HalfOpen) {
      trip(now);
      return;
    }
    if (++consecutive_failures_ >= threshold_) trip(now);
  }

  // The in-flight job resolved without a verdict (cancelled): a half-open
  // probe re-opens with no additional cooldown so the next admission probes
  // again immediately.
  void on_neutral(Clock::time_point now) {
    if (state_ == State::HalfOpen) {
      state_ = State::Open;
      open_until_ = now;
    }
  }

  State state() const { return state_; }
  std::size_t consecutive_failures() const { return consecutive_failures_; }

 private:
  void trip(Clock::time_point now) {
    state_ = State::Open;
    open_until_ = now + cooldown_;
    consecutive_failures_ = 0;
  }

  std::size_t threshold_;
  Clock::duration cooldown_;
  State state_ = State::Closed;
  std::size_t consecutive_failures_ = 0;
  Clock::time_point open_until_{};
};

}  // namespace alchemist::svc
