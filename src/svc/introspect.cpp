#include "svc/introspect.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/prometheus.h"

namespace alchemist::svc {

namespace {

std::string http_response(const char* status, const char* content_type,
                          const std::string& body) {
  std::string out = "HTTP/1.1 ";
  out += status;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

// First line of "GET /path HTTP/1.1" -> "/path"; empty on anything else.
std::string request_path(const std::string& request) {
  if (request.rfind("GET ", 0) != 0) return {};
  const std::size_t start = 4;
  const std::size_t end = request.find(' ', start);
  if (end == std::string::npos) return {};
  return request.substr(start, end - start);
}

}  // namespace

IntrospectionServer::IntrospectionServer(int port, MetricsFn metrics,
                                         StatusFn status)
    : metrics_(std::move(metrics)), status_(std::move(status)) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 8) < 0) {
    error_ = std::string("bind/listen: ") + std::strerror(errno);
    ::close(fd);
    return;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  listen_fd_ = fd;
  thread_ = std::thread([this] { serve_loop(); });
}

IntrospectionServer::~IntrospectionServer() {
  if (listen_fd_ < 0) return;
  stopping_.store(true);
  // shutdown() wakes the blocked accept(); close() alone is not guaranteed to.
  ::shutdown(listen_fd_, SHUT_RDWR);
  thread_.join();
  ::close(listen_fd_);
}

void IntrospectionServer::serve_loop() {
  for (;;) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (stopping_.load()) return;
      if (errno == EINTR) continue;
      return;  // listener broken; introspection goes dark, service lives on
    }
    // Bounded read: headers only, no bodies; a stuck client times out.
    timeval tv{};
    tv.tv_sec = 2;
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    std::string request;
    char buf[1024];
    while (request.size() < 8192 &&
           request.find("\r\n\r\n") == std::string::npos) {
      const ssize_t n = ::recv(client, buf, sizeof(buf), 0);
      if (n <= 0) break;
      request.append(buf, static_cast<std::size_t>(n));
    }
    const std::string response = handle(request_path(request));
    std::size_t sent = 0;
    while (sent < response.size()) {
      const ssize_t n =
          ::send(client, response.data() + sent, response.size() - sent, 0);
      if (n <= 0) break;
      sent += static_cast<std::size_t>(n);
    }
    ::close(client);
    if (stopping_.load()) return;
  }
}

std::string IntrospectionServer::handle(const std::string& path) const {
  if (path == "/healthz") {
    return http_response("200 OK", "text/plain; charset=utf-8", "ok\n");
  }
  if (path == "/metrics") {
    return http_response("200 OK",
                         "text/plain; version=0.0.4; charset=utf-8",
                         prometheus_exposition(metrics_()));
  }
  if (path == "/statusz") {
    return http_response("200 OK", "application/json; charset=utf-8",
                         status_());
  }
  if (path.empty()) {
    return http_response("400 Bad Request", "text/plain; charset=utf-8",
                         "bad request\n");
  }
  return http_response("404 Not Found", "text/plain; charset=utf-8",
                       "not found; try /healthz /metrics /statusz\n");
}

}  // namespace alchemist::svc
