#include "svc/introspect.h"

#include <chrono>
#include <cstdlib>
#include <map>
#include <sstream>

#include "obs/json.h"
#include "obs/prometheus.h"

namespace alchemist::svc {

namespace {

std::string http_response(const char* status, const char* content_type,
                          const std::string& body) {
  std::string out = "HTTP/1.1 ";
  out += status;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

// First line of "GET /path?query HTTP/1.1" -> "/path?query"; empty on
// anything else.
std::string request_target(const std::string& request) {
  if (request.rfind("GET ", 0) != 0) return {};
  const std::size_t start = 4;
  const std::size_t end = request.find(' ', start);
  if (end == std::string::npos) return {};
  return request.substr(start, end - start);
}

// "k1=v1&k2=v2" -> {k1: v1, k2: v2}; keys without '=' map to "".
std::map<std::string, std::string> parse_query(const std::string& query) {
  std::map<std::string, std::string> params;
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string pair = query.substr(pos, amp - pos);
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      if (!pair.empty()) params[pair] = "";
    } else {
      params[pair.substr(0, eq)] = pair.substr(eq + 1);
    }
    pos = amp + 1;
  }
  return params;
}

std::size_t param_size(const std::map<std::string, std::string>& params,
                       const char* key, std::size_t fallback) {
  const auto it = params.find(key);
  if (it == params.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  const unsigned long v = std::strtoul(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') return fallback;
  return static_cast<std::size_t>(v);
}

}  // namespace

std::string build_info_json() {
  using obs::json_string;
  std::ostringstream out;
  out << "{\n";
#ifdef ALCHEMIST_VERSION
  out << "  \"version\": " << json_string(ALCHEMIST_VERSION) << ",\n";
#else
  out << "  \"version\": \"unknown\",\n";
#endif
#ifdef ALCHEMIST_BUILD_TYPE
  out << "  \"build_type\": " << json_string(ALCHEMIST_BUILD_TYPE) << ",\n";
#elif defined(NDEBUG)
  out << "  \"build_type\": \"release\",\n";
#else
  out << "  \"build_type\": \"debug\",\n";
#endif
#if defined(__clang__)
  out << "  \"compiler\": " << json_string(std::string("clang ") + __VERSION__)
      << ",\n";
#elif defined(__GNUC__)
  out << "  \"compiler\": " << json_string(std::string("gcc ") + __VERSION__)
      << ",\n";
#else
  out << "  \"compiler\": \"unknown\",\n";
#endif
  out << "  \"standard\": " << static_cast<long>(__cplusplus) << ",\n";
  out << "  \"sanitizers\": [";
  bool first = true;
  auto add = [&](const char* name) {
    out << (first ? "" : ", ") << obs::json_string(name);
    first = false;
  };
#if defined(__SANITIZE_ADDRESS__)
  add("address");
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  add("address");
#endif
#endif
#if defined(__SANITIZE_THREAD__)
  add("thread");
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  add("thread");
#endif
#endif
#if defined(__SANITIZE_UNDEFINED__)
  add("undefined");
#endif
  (void)add;
  out << "]\n";
  out << "}\n";
  return out.str();
}

IntrospectionServer::IntrospectionServer(int port, MetricsFn metrics,
                                         StatusFn status,
                                         IntrospectionOptions opts)
    : metrics_(std::move(metrics)), status_(std::move(status)), opts_(opts) {
  if (!listener_.open(port, /*backlog=*/8)) return;
  thread_ = std::thread([this] { serve_loop(); });
}

IntrospectionServer::~IntrospectionServer() {
  if (!listener_.ok()) return;
  stopping_.store(true);
  // Listener::shutdown() wakes the blocked accept(); close() alone is not
  // guaranteed to.
  listener_.shutdown();
  thread_.join();
  listener_.close();
}

void IntrospectionServer::serve_loop() {
  for (;;) {
    const int fd = listener_.accept();
    if (fd < 0) {
      // Shut down, or listener broken; introspection goes dark, service
      // lives on (accept() already retried EINTR).
      return;
    }
    net::ScopedFd client(fd);
    // Bounded read: headers only, no bodies. The kernel receive timeout is
    // the whole-request deadline — a client trickling bytes can stretch it
    // per recv(), so the loop also checks total elapsed wall time.
    net::set_recv_timeout(
        client.get(), std::chrono::duration_cast<std::chrono::microseconds>(
                          opts_.read_deadline));
    const auto start = std::chrono::steady_clock::now();
    std::string request;
    char buf[1024];
    bool timed_out = false;
    bool too_large = false;
    while (request.find("\r\n\r\n") == std::string::npos) {
      if (request.size() >= opts_.max_request_bytes) {
        too_large = true;
        break;
      }
      // A request line that never terminates is oversize even before the
      // headers finish.
      if (const std::size_t eol = request.find("\r\n");
          (eol == std::string::npos ? request.size() : eol) >
          opts_.max_request_line) {
        too_large = true;
        break;
      }
      std::size_t got = 0;
      const net::RecvStatus rs =
          net::recv_some(client.get(), buf, sizeof(buf), got);
      if (rs == net::RecvStatus::TimedOut) {
        timed_out = true;
        break;
      }
      if (rs != net::RecvStatus::Data) break;
      request.append(buf, got);
      if (std::chrono::steady_clock::now() - start >= opts_.read_deadline) {
        timed_out = request.find("\r\n\r\n") == std::string::npos;
        break;
      }
    }
    std::string response;
    if (too_large) {
      response = http_response("431 Request Header Fields Too Large",
                               "text/plain; charset=utf-8",
                               "request header fields too large\n");
    } else if (timed_out) {
      response = http_response("408 Request Timeout",
                               "text/plain; charset=utf-8", "request timeout\n");
    } else {
      response = handle(request_target(request));
    }
    // send_all: SIGPIPE-free (MSG_NOSIGNAL) with EINTR retry — a client that
    // closed mid-response must not kill the process. The old inline loop
    // lacked both guards.
    net::send_all(client.get(), response.data(), response.size());
    if (stopping_.load()) return;
  }
}

std::string IntrospectionServer::handle(const std::string& target) const {
  const std::size_t qmark = target.find('?');
  const std::string path = target.substr(0, qmark);
  const std::map<std::string, std::string> params =
      qmark == std::string::npos
          ? std::map<std::string, std::string>{}
          : parse_query(target.substr(qmark + 1));
  if (path == "/healthz") {
    return http_response("200 OK", "text/plain; charset=utf-8", "ok\n");
  }
  if (path == "/metrics") {
    return http_response("200 OK",
                         "text/plain; version=0.0.4; charset=utf-8",
                         prometheus_exposition(metrics_()));
  }
  if (path == "/statusz") {
    return http_response("200 OK", "application/json; charset=utf-8",
                         status_());
  }
  if (path == "/buildz") {
    return http_response("200 OK", "application/json; charset=utf-8",
                         build_info_json());
  }
  if (path == "/tracez" && opts_.trace != nullptr) {
    const std::size_t recent_n = param_size(params, "n", 50);
    const std::size_t slowest_n = param_size(params, "slowest", 5);
    const auto cls = params.find("class");
    return http_response(
        "200 OK", "application/json; charset=utf-8",
        obs::tracez_json(*opts_.trace, recent_n, slowest_n,
                         cls == params.end() ? std::string() : cls->second));
  }
  if (path == "/logz" && opts_.log != nullptr) {
    const std::size_t n = param_size(params, "n", 100);
    obs::Severity min_sev = obs::Severity::Debug;
    if (const auto it = params.find("min"); it != params.end()) {
      min_sev = obs::parse_severity(it->second, obs::Severity::Debug);
    }
    return http_response("200 OK", "application/x-ndjson; charset=utf-8",
                         obs::log_jsonl(opts_.log->tail(n, min_sev)));
  }
  if (path.empty()) {
    return http_response("400 Bad Request", "text/plain; charset=utf-8",
                         "bad request\n");
  }
  return http_response(
      "404 Not Found", "text/plain; charset=utf-8",
      "not found; try /healthz /metrics /statusz /buildz /tracez /logz\n");
}

}  // namespace alchemist::svc
