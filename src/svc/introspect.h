// Minimal embedded HTTP introspection server for the serving layer.
//
// Serves three poll-driven endpoints over plain HTTP/1.1 on a loopback
// socket (no third-party deps, one accept thread, one request at a time —
// this is an operator window, not a data plane):
//
//   /healthz   200 "ok" while the server is up (liveness probe)
//   /metrics   Prometheus text exposition (obs/prometheus.h) of the Registry
//              returned by the metrics callback — counters, gauges, latency
//              histograms with cumulative buckets
//   /statusz   the status callback's JSON (JobRunner::status_json():
//              breaker states, queue occupancy, pool width, substrate.*)
//
// Both callbacks are invoked per request on the server thread and must be
// thread-safe against the running JobRunner — snapshot() and status_json()
// are, by design. Nothing is cached; every poll sees live state.
//
// Port 0 binds an ephemeral port (see port() after construction); CI smoke
// uses a fixed one. Construction failure (port in use) is reported through
// ok()/error(), not an exception, so a serving binary can keep running
// without its introspection window.
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <thread>

#include "obs/registry.h"

namespace alchemist::svc {

class IntrospectionServer {
 public:
  using MetricsFn = std::function<obs::Registry()>;
  using StatusFn = std::function<std::string()>;

  IntrospectionServer(int port, MetricsFn metrics, StatusFn status);
  ~IntrospectionServer();

  IntrospectionServer(const IntrospectionServer&) = delete;
  IntrospectionServer& operator=(const IntrospectionServer&) = delete;

  bool ok() const { return listen_fd_ >= 0; }
  // Bound port (resolves 0 to the ephemeral port actually bound).
  int port() const { return port_; }
  const std::string& error() const { return error_; }

 private:
  void serve_loop();
  std::string handle(const std::string& path) const;

  MetricsFn metrics_;
  StatusFn status_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::string error_;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace alchemist::svc
