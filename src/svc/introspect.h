// Minimal embedded HTTP introspection server for the serving layer.
//
// Serves poll-driven endpoints over plain HTTP/1.1 on a loopback socket (no
// third-party deps, one accept thread, one request at a time — this is an
// operator window, not a data plane):
//
//   /healthz   200 "ok" while the server is up (liveness probe)
//   /metrics   Prometheus text exposition (obs/prometheus.h) of the Registry
//              returned by the metrics callback — counters, gauges, latency
//              histograms with cumulative buckets
//   /statusz   the status callback's JSON (JobRunner::status_json():
//              breaker states, queue occupancy, pool width, substrate.*)
//   /buildz    build provenance JSON: version, build type, compiler,
//              enabled sanitizers (build_info_json(), always available)
//   /tracez    recent-span table + slowest-roots-per-class from the attached
//              TraceSink (obs::tracez_json); ?n= recent rows, ?slowest= roots
//              per class, ?class= filter. 404 unless a sink is attached.
//   /logz      flight-recorder tail as JSON lines from the attached
//              EventLog; ?n= rows, ?min=debug|info|warn|error severity
//              floor. 404 unless a log is attached.
//
// The callbacks are invoked per request on the server thread and must be
// thread-safe against the running JobRunner — snapshot() and status_json()
// are, by design; TraceSink and EventLog snapshots take the ring mutex.
// Nothing is cached; every poll sees live state.
//
// Port 0 binds an ephemeral port (see port() after construction) — serving
// binaries print the resolved port so harnesses can scrape it. Construction
// failure (port in use) is reported through ok()/error(), not an exception,
// so a serving binary can keep running without its introspection window.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <string>
#include <thread>

#include "net/socket.h"
#include "obs/log.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace alchemist::svc {

// Build provenance served at /buildz: {"version","build_type","compiler",
// "standard","sanitizers":[...]} — exposed standalone so tests can validate
// the JSON without binding a socket.
std::string build_info_json();

// Optional data sources for the trace/log endpoints; pointers are borrowed
// and must outlive the server. Null members disable their endpoint (404).
struct IntrospectionOptions {
  obs::TraceSink* trace = nullptr;  // enables /tracez
  obs::EventLog* log = nullptr;     // enables /logz
  // Per-connection hardening. One stuck or abusive client must not wedge the
  // single accept thread: a client that has not produced complete request
  // headers within `read_deadline` gets 408 Request Timeout; one whose
  // request line exceeds `max_request_line` bytes or whose headers exceed
  // `max_request_bytes` gets 431 Request Header Fields Too Large. Either way
  // the connection closes and the loop moves on.
  std::chrono::milliseconds read_deadline{2000};
  std::size_t max_request_line = 2048;
  std::size_t max_request_bytes = 8192;
};

class IntrospectionServer {
 public:
  using MetricsFn = std::function<obs::Registry()>;
  using StatusFn = std::function<std::string()>;

  IntrospectionServer(int port, MetricsFn metrics, StatusFn status,
                      IntrospectionOptions opts = {});
  ~IntrospectionServer();

  IntrospectionServer(const IntrospectionServer&) = delete;
  IntrospectionServer& operator=(const IntrospectionServer&) = delete;

  bool ok() const { return listener_.ok(); }
  // Bound port (resolves 0 to the ephemeral port actually bound).
  int port() const { return listener_.port(); }
  const std::string& error() const { return listener_.error(); }

 private:
  void serve_loop();
  std::string handle(const std::string& target) const;

  MetricsFn metrics_;
  StatusFn status_;
  IntrospectionOptions opts_;
  // Shared loopback socket plumbing (net/socket.h): EINTR-safe accept with
  // the shutdown-to-wake idiom, deadline-bounded recv, SIGPIPE-free send.
  net::Listener listener_;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace alchemist::svc
