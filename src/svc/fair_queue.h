// Per-tenant fair queueing: deficit-round-robin over per-tenant sub-queues.
//
// The JobRunner's single FIFO let one bursty tenant park its whole backlog in
// front of everyone else's first job. Here every tenant gets its own FIFO
// sub-queue and the workers drain them with deficit round robin (Shreedhar &
// Varghese): backlogged tenants sit in an active ring; each visit credits the
// tenant's deficit counter with its weight and serves jobs while the deficit
// covers them (every job costs 1), so a tenant with weight w receives w jobs
// per scheduling round regardless of how deep its own backlog is. A bursty
// tenant therefore queues behind *its own* backlog while everyone else keeps
// their share of the workers.
//
// Properties the serving layer relies on (pinned by tests/test_svc.cpp):
//   * single-tenant degeneracy: with one tenant the pop order is exactly
//     FIFO, bit-identical to the old deque — tenancy defaults change nothing;
//   * determinism: pop order depends only on the push sequence and the
//     weights, never on time or thread identity (the caller holds one lock);
//   * bounded capacity: the global capacity bounds the sum of all sub-queues
//     (overload stays a typed Shed at admission), and per-tenant backlog caps
//     bound any one tenant's slice of it;
//   * bounded state: a sub-queue is erased the moment it drains, so the
//     tenant map never outgrows the queued jobs themselves — a client
//     cycling through fresh tenant names leaves nothing behind.
//
// Not thread-safe by design: the JobRunner serializes access under its mutex,
// the same discipline as the circuit breakers and the admission table.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <string>
#include <vector>

#include "svc/job.h"

namespace alchemist::svc {

class FairQueue {
 public:
  explicit FairQueue(std::size_t capacity) : capacity_(capacity) {}

  enum class PushResult { Ok, Full, TenantFull };

  // Append to the tenant's sub-queue. `weight` is the tenant's DRR weight
  // (clamped to >= 1, refreshed on every push; a tenant whose sub-queue
  // drained re-enters with a fresh one); `max_backlog` == 0 means no
  // per-tenant cap.
  PushResult push(const std::string& tenant, std::uint32_t weight,
                  std::size_t max_backlog, JobPtr job);

  // Next job under deficit round robin; nullptr when empty.
  JobPtr pop();

  // Remove and return every queued job (shutdown path). Tenant rings reset.
  std::vector<JobPtr> drain();

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return capacity_; }

  // Queued jobs of one tenant, and the per-tenant view for introspection.
  // Only currently-backlogged tenants appear (drained ones are evicted).
  std::size_t backlog(const std::string& tenant) const;
  template <typename Fn>  // Fn(const std::string&, std::size_t backlog)
  void for_each(Fn&& fn) const {
    for (const auto& [tenant, sq] : queues_) fn(tenant, sq.jobs.size());
  }

 private:
  struct SubQueue {
    std::deque<JobPtr> jobs;
    std::uint32_t weight = 1;
    double deficit = 0.0;
    bool active = false;  // member of active_ (has queued jobs)
  };

  std::map<std::string, SubQueue> queues_;
  // Round-robin ring of tenants with a non-empty sub-queue, in the order
  // they became backlogged. std::list so rotation never invalidates
  // iterators held in queues_.
  std::list<std::string> active_;
  std::size_t size_ = 0;
  std::size_t capacity_;
};

}  // namespace alchemist::svc
