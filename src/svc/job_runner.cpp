#include "svc/job_runner.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "obs/json.h"
#include "obs/substrate_metrics.h"
#include "sim/alchemist_sim.h"
#include "sim/event_sim.h"

namespace alchemist::svc {

namespace {

using Clock = std::chrono::steady_clock;

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(v.size())));
  rank = std::min(std::max<std::size_t>(rank, 1), v.size());
  return v[rank - 1];
}

// Lifecycle-span track ids: submissions land on the admission track, each
// worker gets its own run-span track.
constexpr std::uint32_t kAdmissionTid = 0;
constexpr std::uint32_t kWorkerTidBase = 1;

// Which worker this thread is, for routing finish() spans; -1 off-pool
// (destructor-orphaned jobs, rejected submissions).
thread_local int tls_worker = -1;

const char* to_string(CircuitBreaker::State s) {
  switch (s) {
    case CircuitBreaker::State::Closed: return "closed";
    case CircuitBreaker::State::Open: return "open";
    case CircuitBreaker::State::HalfOpen: return "half-open";
  }
  return "?";
}

std::string label_of(const JobSpec& spec, std::uint64_t seq) {
  return (spec.name.empty() ? spec.workload_class : spec.name) + "#" +
         std::to_string(seq);
}

}  // namespace

JobRunner::JobRunner(RunnerOptions opts)
    : opts_(std::move(opts)),
      epoch_(Clock::now()),
      queue_(opts_.queue_capacity),
      admission_(opts_.tenants),
      overload_(opts_.overload) {
  if (opts_.workers == 0) throw std::invalid_argument("svc: workers must be >= 1");
  if (opts_.queue_capacity == 0) {
    throw std::invalid_argument("svc: queue_capacity must be >= 1");
  }
  paused_ = opts_.start_paused;
  if (opts_.timeline != nullptr) {
    opts_.timeline->set_process_name("alchemist-svc");
    opts_.timeline->set_track_name(kAdmissionTid, "svc/jobs");
    for (std::size_t i = 0; i < opts_.workers; ++i) {
      opts_.timeline->set_track_name(
          kWorkerTidBase + static_cast<std::uint32_t>(i),
          "svc/worker" + std::to_string(i));
    }
  }
  workers_.reserve(opts_.workers);
  for (std::size_t i = 0; i < opts_.workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

JobRunner::~JobRunner() { shutdown(); }

void JobRunner::shutdown() {
  std::vector<JobPtr> orphans;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!stopping_) {
      stopping_ = true;
      paused_ = false;
      orphans = queue_.drain();
      // Running jobs stop cooperatively at their next simulator step.
      for (Job* j : running_) j->token_.request_cancel();
    }
  }
  work_cv_.notify_all();
  for (const JobPtr& job : orphans) {
    job->token_.request_cancel();
    finish(job, JobState::Cancelled, "cancelled: runner shutdown",
           sim::SimResult{}, job->spec_.resume_from, 0);
  }
  // Exactly one caller joins; late callers (including the destructor after
  // an explicit shutdown) block here until the workers are gone, so
  // shutdown() returning always means no worker thread is still running.
  std::lock_guard<std::mutex> jl(join_mu_);
  if (!joined_) {
    for (std::thread& t : workers_) t.join();
    joined_ = true;
  }
}

const std::string& JobRunner::metric_tenant(const std::string& tenant) const {
  static const std::string kOther = "_other";
  if (tenant.empty() || opts_.tenants.policies.count(tenant) != 0) return tenant;
  return kOther;
}

JobPtr JobRunner::submit(JobSpec spec) {
  if (!spec.graph) throw std::invalid_argument("svc: JobSpec.graph is null");
  if (spec.workload_class.empty()) spec.workload_class = spec.graph->name;
  if (spec.max_attempts == 0) spec.max_attempts = 1;
  auto job = std::make_shared<Job>(std::move(spec));
  const Clock::time_point now = Clock::now();
  job->submit_time_ = now;

  JobState rejected = JobState::Queued;  // sentinel: admitted
  const char* reason = nullptr;
  const std::string& tenant = job->spec_.tenant;
  const bool tenanted = !tenant.empty();
  {
    std::lock_guard<std::mutex> lk(mu_);
    const std::string& mtenant = metric_tenant(tenant);
    reg_.add(metrics::kSubmitted, 1);
    if (tenanted) reg_.add(metrics::kTenantSubmitted, 1, {{"tenant", mtenant}});
    job->seq_ = ++seq_;
    if (opts_.trace != nullptr) {
      // Mint (or join) the job's trace. Ids depend only on the trace seed and
      // the submission sequence, so the same submission order reproduces the
      // same trace ids for any worker count; a valid spec.trace joins an
      // existing trace instead (the checkpoint/resume continuation path).
      const std::uint64_t trace_id =
          job->spec_.trace.valid() ? job->spec_.trace.trace_id
                                   : obs::mint_trace_id(opts_.trace_seed ^ job->seq_);
      const std::uint64_t parent =
          job->spec_.trace.valid() ? job->spec_.trace.span_id : 0;
      job->trace_ctx_.trace_id = trace_id;
      job->trace_ctx_.parent_span = parent;
      job->trace_ctx_.span_id =
          obs::mint_span_id(trace_id, parent, "job", job->seq_);
      job->trace_submit_us_ = opts_.trace->now_us();
    }
    if (stopping_) {
      rejected = JobState::Shed;
      reason = "shutdown";
    } else {
      // Admission pipeline: breaker -> tenant quotas -> overload -> queue.
      // Each later rejection rolls back the side effects of earlier stages
      // (half-open probe slot, rate-limit token, in-flight count).
      //
      // Shed recovery must not depend on another dequeue: sojourn
      // observations are fed by workers picking jobs up, but at Level::Shed
      // every arrival is rejected before it can be queued, so once the
      // backlog drains no observation would ever arrive again and Shed
      // would be permanent. An empty queue *is* a zero standing delay —
      // feed that observation here, before consulting the level.
      if (queue_.empty()) overload_.observe(std::chrono::microseconds{0}, now);
      auto [it, inserted] = breakers_.try_emplace(
          breaker_key(tenant, job->spec_.workload_class),
          opts_.breaker_threshold, opts_.breaker_cooldown);
      (void)inserted;
      if (!it->second.allow(now)) {
        rejected = JobState::CircuitOpen;
        reason = "circuit_open";
      } else {
        const Admission::Verdict verdict = admission_.admit(tenant, now);
        if (verdict == Admission::Verdict::RateLimited) {
          rejected = JobState::QuotaExceeded;
          reason = "quota_rate";
          it->second.on_neutral(now);
        } else if (verdict == Admission::Verdict::ConcurrencyLimited) {
          rejected = JobState::QuotaExceeded;
          reason = "quota_concurrency";
          it->second.on_neutral(now);
        } else if (overload_.level() == OverloadController::Level::Shed) {
          rejected = JobState::Shed;
          reason = "overload";
          it->second.on_neutral(now);
          admission_.rollback(tenant, now);
        } else {
          const TenantPolicy& pol = admission_.policy(tenant);
          const FairQueue::PushResult pr =
              queue_.push(tenant, pol.weight, pol.max_backlog, job);
          if (pr != FairQueue::PushResult::Ok) {
            rejected = JobState::Shed;
            reason = pr == FairQueue::PushResult::TenantFull ? "tenant_queue_full"
                                                             : "queue_full";
            // allow() may have admitted this job as the half-open probe; it
            // will never run, so let the next submission probe instead.
            it->second.on_neutral(now);
            admission_.rollback(tenant, now);
          } else {
            reg_.add(metrics::kAdmitted, 1);
            if (tenanted) {
              reg_.add(metrics::kTenantAdmitted, 1, {{"tenant", mtenant}});
            }
            if (job->spec_.resume_from.valid()) reg_.add(metrics::kResumed, 1);
            if (job->spec_.deadline.count() > 0) {
              job->token_.set_deadline(now + job->spec_.deadline);
            }
            peak_depth_ = std::max(peak_depth_, queue_.size());
          }
        }
      }
      // A rejection must not leave behind a breaker minted for a tenant the
      // policy table does not name (the name is caller-controlled): if the
      // breaker is indistinguishable from a fresh one, drop it again.
      // Admitted jobs keep theirs — record_terminal() needs it for the
      // verdict, and re-evicts it there.
      if (rejected != JobState::Queued) maybe_evict_breaker(it, tenant);
    }
    if (rejected != JobState::Queued) {
      reg_.add(metrics::kRejected, 1, {{"reason", reason}});
      if (tenanted) {
        reg_.add(metrics::kTenantRejected, 1,
                 {{"reason", reason}, {"tenant", mtenant}});
      }
    }
    if (opts_.timeline != nullptr) {
      obs::TraceEvent ev;
      ev.name = "submit " + label_of(job->spec_, job->seq_);
      ev.cat = "svc";
      ev.tid = kAdmissionTid;
      ev.ts = ts_us(now);
      ev.dur = 0;
      ev.str_args = {{"outcome", reason == nullptr ? "admitted" : reason},
                     {"class", job->spec_.workload_class}};
      opts_.timeline->record(std::move(ev));
    }
  }
  if (rejected != JobState::Queued) {
    {
      // Not yet visible to any worker; safe to finalize directly.
      std::lock_guard<std::mutex> jl(job->mu_);
      job->state_ = rejected;
      job->error_ = std::string("rejected: ") + reason;
      job->summary_.trace_id = job->trace_ctx_.trace_id;
      job->summary_.root_span = job->trace_ctx_.span_id;
      job->cv_.notify_all();
    }
    if (opts_.trace != nullptr && job->trace_ctx_.valid()) {
      // Rejected jobs still leave a (zero-length) root span so shed storms
      // are visible in /tracez next to the work that did run.
      obs::SpanRecord s;
      s.trace_id = job->trace_ctx_.trace_id;
      s.span_id = job->trace_ctx_.span_id;
      s.parent_span = job->trace_ctx_.parent_span;
      s.name = "job";
      s.kind = "svc";
      s.track = "svc/job";
      s.ts = job->trace_submit_us_;
      s.dur = 0;
      s.attrs = {{"class", job->spec_.workload_class},
                 {"state", svc::to_string(rejected)},
                 {"reason", reason}};
      s.num_attrs = {{"seq", static_cast<double>(job->seq_)}};
      opts_.trace->record(std::move(s));
    }
    if (opts_.log != nullptr) {
      obs::LogEvent ev;
      ev.severity = obs::Severity::Warn;
      ev.component = "svc";
      ev.message = std::string("job rejected: ") + reason;
      ev.trace_id = job->trace_ctx_.trace_id;
      ev.span_id = job->trace_ctx_.span_id;
      ev.fields = {{"class", job->spec_.workload_class},
                   {"name", label_of(job->spec_, job->seq_)}};
      ev.num_fields = {{"seq", static_cast<double>(job->seq_)}};
      opts_.log->record(std::move(ev));
    }
  } else {
    if (opts_.log != nullptr) {
      obs::LogEvent ev;
      ev.severity = obs::Severity::Debug;
      ev.component = "svc";
      ev.message = "job admitted";
      ev.trace_id = job->trace_ctx_.trace_id;
      ev.span_id = job->trace_ctx_.span_id;
      ev.fields = {{"class", job->spec_.workload_class},
                   {"name", label_of(job->spec_, job->seq_)}};
      ev.num_fields = {{"seq", static_cast<double>(job->seq_)}};
      opts_.log->record(std::move(ev));
    }
    work_cv_.notify_one();
  }
  return job;
}

void JobRunner::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [&] { return queue_.empty() && running_.empty(); });
}

void JobRunner::set_paused(bool paused) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    paused_ = paused;
  }
  work_cv_.notify_all();
}

obs::Registry JobRunner::snapshot() const {
  // Substrate counters are read outside mu_ (they have their own atomics) so
  // the svc.* snapshot carries the pool's substrate.* activity alongside it.
  obs::Registry substrate = obs::substrate_registry();
  std::lock_guard<std::mutex> lk(mu_);
  obs::Registry reg = reg_;
  reg.merge(substrate);
  reg.set_gauge(metrics::kQueueDepth, static_cast<double>(queue_.size()));
  reg.set_gauge(metrics::kQueueDepth, static_cast<double>(peak_depth_),
                {{"stat", "peak"}});
  reg.set_gauge(metrics::kWorkers, static_cast<double>(workers_.size()));
  admission_.for_each([&](const std::string& tenant, std::size_t in_flight) {
    if (tenant.empty()) return;
    reg.set_gauge(metrics::kTenantInFlight, static_cast<double>(in_flight),
                  {{"tenant", tenant}});
    reg.set_gauge(metrics::kTenantBacklog,
                  static_cast<double>(queue_.backlog(tenant)),
                  {{"tenant", tenant}});
  });
  if (opts_.overload.enabled) {
    reg.set_gauge(metrics::kOverloadLevel,
                  static_cast<double>(static_cast<int>(overload_.level())));
  }
  reg.set_gauge(metrics::kLatencyUs, percentile(latencies_us_, 50.0), {{"p", "50"}});
  reg.set_gauge(metrics::kLatencyUs, percentile(latencies_us_, 99.0), {{"p", "99"}});
  // Percentile gauges derived from every latency histogram, named
  // `<name>.pNN[{tags}]` per the registry naming rules so the Prometheus
  // families stay distinct from the histograms themselves.
  for (const auto& [key, hist] : reg.histograms()) {
    const std::size_t brace = key.find('{');
    const std::string name = key.substr(0, brace);
    const std::string tags =
        brace == std::string::npos ? std::string() : key.substr(brace);
    for (const auto& [suffix, p] :
         {std::pair<const char*, double>{".p50", 50.0},
          {".p95", 95.0},
          {".p99", 99.0}}) {
      reg.set_gauge_by_key(name + suffix + tags, hist.percentile(p));
    }
  }
  return reg;
}

OverloadController::Level JobRunner::overload_level() const {
  std::lock_guard<std::mutex> lk(mu_);
  return overload_.level();
}

std::map<std::string, CircuitBreaker::State> JobRunner::breaker_states() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::map<std::string, CircuitBreaker::State> out;
  for (const auto& [cls, breaker] : breakers_) out.emplace(cls, breaker.state());
  return out;
}

std::string JobRunner::status_json() const {
  using obs::json_number;
  using obs::json_string;
  // Substrate counters have their own atomics; read them outside mu_.
  const obs::Registry substrate = obs::substrate_registry();
  std::ostringstream out;
  std::lock_guard<std::mutex> lk(mu_);
  out << "{\n";
  out << "  \"workers\": " << json_number(static_cast<std::uint64_t>(workers_.size()))
      << ",\n";
  out << "  \"paused\": " << (paused_ ? "true" : "false") << ",\n";
  out << "  \"stopping\": " << (stopping_ ? "true" : "false") << ",\n";
  out << "  \"queue_depth\": "
      << json_number(static_cast<std::uint64_t>(queue_.size())) << ",\n";
  out << "  \"queue_capacity\": "
      << json_number(static_cast<std::uint64_t>(opts_.queue_capacity)) << ",\n";
  out << "  \"queue_peak\": "
      << json_number(static_cast<std::uint64_t>(peak_depth_)) << ",\n";
  out << "  \"running\": "
      << json_number(static_cast<std::uint64_t>(running_.size())) << ",\n";
  out << "  \"overload\": "
      << json_string(OverloadController::to_string(overload_.level())) << ",\n";
  out << "  \"tenants\": {";
  bool first_tenant = true;
  admission_.for_each([&](const std::string& tenant, std::size_t in_flight) {
    if (tenant.empty()) return;
    out << (first_tenant ? "\n" : ",\n");
    first_tenant = false;
    out << "    " << json_string(tenant) << ": {\"in_flight\": "
        << json_number(static_cast<std::uint64_t>(in_flight))
        << ", \"backlog\": "
        << json_number(static_cast<std::uint64_t>(queue_.backlog(tenant)))
        << "}";
  });
  out << (first_tenant ? "},\n" : "\n  },\n");
  out << "  \"breakers\": {";
  bool first = true;
  for (const auto& [cls, breaker] : breakers_) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    " << json_string(cls) << ": " << json_string(to_string(breaker.state()));
  }
  out << (first ? "},\n" : "\n  },\n");
  // Memory-observability summary, present only once a mem-profiled job has
  // completed — unprofiled deployments keep their pre-existing /statusz shape.
  if (reg_.counters().count(sim::metrics::kMemBytes) != 0) {
    out << "  \"memory\": {\n";
    out << "    \"bytes\": "
        << json_number(reg_.counter(sim::metrics::kMemBytes)) << ",\n";
    out << "    \"key_fetches\": "
        << json_number(reg_.counter(sim::metrics::kMemKeyFetches)) << ",\n";
    out << "    \"key_bytes\": "
        << json_number(reg_.counter(sim::metrics::kMemKeyBytes)) << ",\n";
    out << "    \"key_refetch_bytes\": "
        << json_number(reg_.counter(sim::metrics::kMemKeyRefetchBytes))
        << ",\n";
    out << "    \"evictions\": "
        << json_number(reg_.counter(sim::metrics::kMemEvictions)) << ",\n";
    out << "    \"scratch_peak_bytes\": "
        << json_number(reg_.gauge(sim::metrics::kMemScratchPeak)) << ",\n";
    out << "    \"scratch_capacity_bytes\": "
        << json_number(reg_.gauge(sim::metrics::kMemScratchCapacity)) << "\n";
    out << "  },\n";
  }
  out << "  \"counters\": {";
  first = true;
  for (const auto& [key, value] : reg_.counters()) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    " << json_string(key) << ": " << json_number(value);
  }
  out << (first ? "},\n" : "\n  },\n");
  out << "  \"substrate\": {";
  first = true;
  for (const auto& [key, value] : substrate.counters()) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    " << json_string(key) << ": " << json_number(value);
  }
  for (const auto& [key, value] : substrate.gauges()) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    " << json_string(key) << ": " << json_number(value);
  }
  out << (first ? "}\n" : "\n  }\n");
  out << "}\n";
  return out.str();
}

void JobRunner::worker_loop(std::size_t worker_id) {
  tls_worker = static_cast<int>(worker_id);
  for (;;) {
    JobPtr job;
    bool degrade = false;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return stopping_ || (!paused_ && !queue_.empty()); });
      if (stopping_) return;  // shutdown() already drained the queue
      job = queue_.pop();
      running_.push_back(job.get());
      job->run_start_time_ = Clock::now();
      // Feed the overload ladder this job's queue sojourn; the level decided
      // here rides the job out of the lock as its degrade flag.
      const auto sojourn = std::chrono::duration_cast<std::chrono::microseconds>(
          job->run_start_time_ - job->submit_time_);
      const OverloadController::Level level =
          overload_.observe(sojourn, job->run_start_time_);
      degrade =
          job->spec_.degradable && level != OverloadController::Level::Normal;
      if (opts_.trace != nullptr && job->trace_ctx_.valid()) {
        job->trace_run_start_us_ = opts_.trace->now_us();
      }
    }
    if (opts_.trace != nullptr && job->trace_ctx_.valid()) {
      // Queue-wait span: admission stamp -> this dequeue, one per job.
      obs::TraceContext qc = obs::child_context(job->trace_ctx_, "queue", 0);
      obs::SpanRecord s;
      s.trace_id = qc.trace_id;
      s.span_id = qc.span_id;
      s.parent_span = qc.parent_span;
      s.name = "queue";
      s.kind = "svc";
      s.track = "svc/queue";
      s.ts = job->trace_submit_us_;
      s.dur = job->trace_run_start_us_ - job->trace_submit_us_;
      s.attrs = {{"class", job->spec_.workload_class}};
      s.num_attrs = {{"seq", static_cast<double>(job->seq_)}};
      opts_.trace->record(std::move(s));
    }
    run_job(job, degrade);
    {
      std::lock_guard<std::mutex> lk(mu_);
      running_.erase(std::find(running_.begin(), running_.end(), job.get()));
      if (queue_.empty() && running_.empty()) idle_cv_.notify_all();
    }
  }
}

void JobRunner::run_job(const JobPtr& job, bool degraded) {
  const JobSpec& spec = job->spec_;
  {
    std::lock_guard<std::mutex> lk(job->mu_);
    job->state_ = JobState::Running;
    job->degraded_ = degraded;
  }
  // Degraded service trims the retry budget to one attempt; the simulated
  // outcome of the attempt itself stays bit-identical (see sim::SimDetail).
  const std::size_t max_attempts = degraded ? 1 : spec.max_attempts;
  // The deadline (or a cancel) may have fired while the job sat in the queue.
  if (const sim::StopReason pre = job->token_.should_stop();
      pre != sim::StopReason::None) {
    finish(job,
           pre == sim::StopReason::Cancelled ? JobState::Cancelled
                                             : JobState::DeadlineExpired,
           std::string("stopped while queued: ") + sim::to_string(pre),
           sim::SimResult{}, spec.resume_from, 0);
    return;
  }

  BackoffConfig bc = opts_.backoff;
  bc.seed ^= 0x9e37'79b9'7f4a'7c15ull * job->seq_;  // per-job jitter stream
  Backoff backoff(bc);
  sim::Checkpoint cp = spec.resume_from;
  const bool tracing = opts_.trace != nullptr && job->trace_ctx_.valid();
  const std::string worker_track =
      "svc/worker" + std::to_string(tls_worker >= 0 ? tls_worker : 0);

  for (std::size_t attempt = 1;; ++attempt) {
    // Per-attempt span: minted from the attempt number, so the span tree is
    // identical however the attempts land on workers; only the track (which
    // worker ran it) and the wall timestamps vary.
    obs::TraceContext attempt_ctx;
    double attempt_start_us = 0;
    if (tracing) {
      attempt_ctx = obs::child_context(job->trace_ctx_, "attempt", attempt);
      attempt_start_us = opts_.trace->now_us();
    }
    auto record_attempt = [&](const char* outcome) {
      if (!tracing) return;
      obs::SpanRecord s;
      s.trace_id = attempt_ctx.trace_id;
      s.span_id = attempt_ctx.span_id;
      s.parent_span = attempt_ctx.parent_span;
      s.name = "attempt";
      s.kind = "svc";
      s.track = worker_track;
      s.ts = attempt_start_us;
      s.dur = opts_.trace->now_us() - attempt_start_us;
      s.attrs = {{"outcome", outcome}, {"class", spec.workload_class}};
      s.num_attrs = {{"attempt", static_cast<double>(attempt)},
                     {"seq", static_cast<double>(job->seq_)}};
      opts_.trace->record(std::move(s));
    };
    std::unique_ptr<fault::FaultModel> fault_model;
    fault::FaultModel* fault = nullptr;
    if (spec.fault_enabled) {
      fault::FaultConfig fc = spec.fault;
      fc.seed = attempt_seed(spec.fault.seed, attempt);
      try {
        fault_model = std::make_unique<fault::FaultModel>(fc, spec.config.num_units);
      } catch (const std::exception& e) {
        record_attempt("bad-fault-config");
        finish(job, JobState::Failed,
               std::string("bad fault configuration: ") + e.what(),
               sim::SimResult{}, sim::Checkpoint{}, attempt);
        return;
      }
      fault = fault_model.get();
    }
    sim::SimControl ctl;
    ctl.cancel = &job->token_;
    ctl.max_steps = spec.max_steps;
    ctl.checkpoint_interval = spec.checkpoint_interval;
    ctl.checkpoint = &cp;
    ctl.trace = tracing ? opts_.trace : nullptr;
    ctl.trace_ctx = attempt_ctx;
    ctl.trace_detail = opts_.trace_detail;
    ctl.detail = degraded ? sim::SimDetail::Reduced : sim::SimDetail::Full;
    sim::UnitProfiler prof;
    sim::UnitProfiler* profiler = spec.profile && !degraded ? &prof : nullptr;
    sim::MemProfiler mem_prof;
    sim::MemProfiler* mem_profiler =
        spec.mem_profile && !degraded ? &mem_prof : nullptr;
    try {
      sim::SimResult result;
      {
        // Expose the attempt's context to the compute substrate: ThreadPool
        // fan-outs issued by the engine adopt it as their parent span.
        obs::ScopedTraceContext ambient(tracing ? opts_.trace : nullptr,
                                        attempt_ctx);
        result = spec.engine == Engine::Event
                     ? sim::simulate_alchemist_events(*spec.graph, spec.config,
                                                      nullptr, fault, &ctl,
                                                      profiler, mem_profiler)
                     : sim::simulate_alchemist(*spec.graph, spec.config, nullptr,
                                               fault, &ctl, profiler,
                                               mem_profiler);
      }
      if (result.registry.counter(fault::metrics::kCorruptedOps) == 0) {
        record_attempt("completed");
        finish(job, JobState::Completed, std::string(), std::move(result),
               sim::Checkpoint{}, attempt);
        return;
      }
      record_attempt("corrupted");
      // Injected faults corrupted the output: the run is useless. Retry with
      // a re-rolled seed (independent transients) or give up.
      if (attempt >= max_attempts) {
        finish(job, JobState::Failed,
               "output corrupted by injected faults after " +
                   std::to_string(attempt) + " attempt(s)",
               sim::SimResult{}, sim::Checkpoint{}, attempt);
        return;
      }
      {
        std::lock_guard<std::mutex> lk(mu_);
        reg_.add(metrics::kRetries, 1);
      }
      if (opts_.log != nullptr) {
        obs::LogEvent ev;
        ev.severity = obs::Severity::Info;
        ev.component = "svc";
        ev.message = "job retrying after fault-corrupted attempt";
        ev.trace_id = job->trace_ctx_.trace_id;
        ev.span_id = attempt_ctx.span_id;
        ev.fields = {{"class", spec.workload_class},
                     {"name", label_of(spec, job->seq_)}};
        ev.num_fields = {{"attempt", static_cast<double>(attempt)}};
        opts_.log->record(std::move(ev));
      }
      // Exponential backoff, sliced so cancellation stays responsive.
      const Clock::time_point backoff_start = Clock::now();
      const double backoff_start_us = tracing ? opts_.trace->now_us() : 0;
      std::uint64_t delay_us = backoff.next_us();
      while (delay_us > 0 && job->token_.should_stop() == sim::StopReason::None) {
        const std::uint64_t slice = std::min<std::uint64_t>(delay_us, 1000);
        std::this_thread::sleep_for(std::chrono::microseconds(slice));
        delay_us -= slice;
      }
      job->backoff_us_ += std::chrono::duration<double, std::micro>(
                              Clock::now() - backoff_start)
                              .count();
      if (tracing) {
        const obs::TraceContext bctx =
            obs::child_context(job->trace_ctx_, "backoff", attempt);
        obs::SpanRecord s;
        s.trace_id = bctx.trace_id;
        s.span_id = bctx.span_id;
        s.parent_span = bctx.parent_span;
        s.name = "backoff";
        s.kind = "svc";
        s.track = worker_track;
        s.ts = backoff_start_us;
        s.dur = opts_.trace->now_us() - backoff_start_us;
        s.attrs = {{"class", spec.workload_class}};
        s.num_attrs = {{"attempt", static_cast<double>(attempt)}};
        opts_.trace->record(std::move(s));
      }
      if (opts_.timeline != nullptr) {
        // Nests inside this job's run span on the worker's track.
        std::lock_guard<std::mutex> lk(mu_);
        obs::TraceEvent ev;
        ev.name = "retry " + label_of(spec, job->seq_);
        ev.cat = "svc.retry";
        ev.tid = tls_worker >= 0
                     ? kWorkerTidBase + static_cast<std::uint32_t>(tls_worker)
                     : kAdmissionTid;
        ev.ts = ts_us(backoff_start);
        ev.dur = ts_us(Clock::now()) - ev.ts;
        ev.num_args = {{"attempt", static_cast<double>(attempt)}};
        opts_.timeline->record(std::move(ev));
      }
      if (const sim::StopReason stop = job->token_.should_stop();
          stop != sim::StopReason::None) {
        finish(job,
               stop == sim::StopReason::Cancelled ? JobState::Cancelled
                                                  : JobState::DeadlineExpired,
               std::string("stopped during retry backoff: ") + sim::to_string(stop),
               sim::SimResult{}, std::move(cp), attempt);
        return;
      }
      // The next attempt re-rolls the fault seed, so any checkpoint from this
      // attempt (interval snapshots) no longer matches — restart clean.
      cp.clear();
    } catch (const sim::CancelledError& e) {
      const JobState st = e.reason() == sim::StopReason::Cancelled
                              ? JobState::Cancelled
                              : JobState::DeadlineExpired;
      record_attempt(st == JobState::Cancelled ? "cancelled" : "deadline-expired");
      finish(job, st, e.what(), sim::SimResult{}, std::move(cp), attempt);
      return;
    } catch (const sim::CheckpointError& e) {
      record_attempt("resume-failed");
      finish(job, JobState::Failed, std::string("resume failed: ") + e.what(),
             sim::SimResult{}, sim::Checkpoint{}, attempt);
      return;
    } catch (const std::exception& e) {
      // Malformed graphs and engine invariant violations are not retryable.
      record_attempt("error");
      finish(job, JobState::Failed, e.what(), sim::SimResult{}, sim::Checkpoint{},
             attempt);
      return;
    }
  }
}

void JobRunner::finish(const JobPtr& job, JobState state, std::string error,
                       sim::SimResult result, sim::Checkpoint checkpoint,
                       std::size_t attempts) {
  const Clock::time_point now = Clock::now();
  const bool has_checkpoint = checkpoint.valid();
  const double sim_us = state == JobState::Completed ? result.time_us : 0.0;
  const bool tracing = opts_.trace != nullptr && job->trace_ctx_.valid();
  const double end_us = tracing ? opts_.trace->now_us() : 0.0;
  // Account first, publish second: a caller woken by wait() must already see
  // this job in the svc.* counters when it snapshots the registry.
  {
    std::lock_guard<std::mutex> lk(mu_);
    record_terminal(*job, state, attempts, has_checkpoint, now, sim_us);
    if (state == JobState::Completed && result.mem_profile.enabled()) {
      fold_mem_profile(result.mem_profile);
    }
  }

  // Per-job digest of where the wall time went, published with the terminal
  // state so trace_summary() is complete the moment wait() returns.
  const bool ran = job->run_start_time_ != Clock::time_point{};
  TraceSummary summary;
  summary.trace_id = job->trace_ctx_.trace_id;
  summary.root_span = job->trace_ctx_.span_id;
  summary.total_us =
      std::chrono::duration<double, std::micro>(now - job->submit_time_).count();
  summary.queue_us =
      ran ? std::chrono::duration<double, std::micro>(job->run_start_time_ -
                                                      job->submit_time_)
                .count()
          : summary.total_us;
  summary.run_us =
      ran ? std::chrono::duration<double, std::micro>(now - job->run_start_time_)
                .count()
          : 0.0;
  summary.backoff_us = job->backoff_us_;
  summary.sim_us = sim_us;
  summary.attempts = attempts;
  summary.retries = attempts > 1 ? attempts - 1 : 0;
  summary.checkpoint_bytes = checkpoint.state.size();
  summary.degraded = job->degraded_;  // written by this worker in run_job()

  if (tracing) {
    // Root span: admission -> terminal, parent of queue/attempt/backoff.
    obs::SpanRecord s;
    s.trace_id = job->trace_ctx_.trace_id;
    s.span_id = job->trace_ctx_.span_id;
    s.parent_span = job->trace_ctx_.parent_span;
    s.name = "job";
    s.kind = "svc";
    s.track = "svc/job";
    s.ts = job->trace_submit_us_;
    s.dur = end_us - job->trace_submit_us_;
    s.attrs = {{"name", label_of(job->spec_, job->seq_)},
               {"class", job->spec_.workload_class},
               {"state", svc::to_string(state)},
               {"engine", job->spec_.engine == Engine::Event ? "event" : "level"}};
    s.num_attrs = {{"seq", static_cast<double>(job->seq_)},
                   {"attempts", static_cast<double>(attempts)},
                   {"checkpoint_bytes",
                    static_cast<double>(summary.checkpoint_bytes)}};
    opts_.trace->record(std::move(s));
  }
  if (opts_.log != nullptr) {
    obs::LogEvent ev;
    ev.severity = state == JobState::Completed ? obs::Severity::Info
                  : state == JobState::Failed  ? obs::Severity::Error
                                               : obs::Severity::Warn;
    ev.component = "svc";
    ev.message = std::string("job ") + svc::to_string(state);
    ev.trace_id = job->trace_ctx_.trace_id;
    ev.span_id = job->trace_ctx_.span_id;
    ev.fields = {{"class", job->spec_.workload_class},
                 {"name", label_of(job->spec_, job->seq_)}};
    if (!error.empty()) ev.fields.emplace_back("error", error);
    ev.num_fields = {{"attempts", static_cast<double>(attempts)},
                     {"total_us", summary.total_us},
                     {"sim_us", sim_us}};
    opts_.log->record(std::move(ev));
  }

  std::lock_guard<std::mutex> lk(job->mu_);
  job->state_ = state;
  job->error_ = std::move(error);
  job->result_ = std::move(result);
  job->checkpoint_ = std::move(checkpoint);
  job->attempts_ = attempts;
  job->summary_ = summary;
  job->cv_.notify_all();
}

void JobRunner::record_terminal(const Job& job, JobState state,
                                std::size_t attempts, bool has_checkpoint,
                                Clock::time_point now, double sim_us) {
  const Clock::time_point submit_time = job.submit_time_;
  const std::string& workload_class = job.spec_.workload_class;
  const std::string& tenant = job.spec_.tenant;
  const std::string& mtenant = metric_tenant(tenant);
  const bool tenanted = !tenant.empty();
  switch (state) {
    case JobState::Completed:
      reg_.add(metrics::kCompleted, 1);
      if (attempts > 1) reg_.add(metrics::kCompleted, 1, {{"retried", "true"}});
      break;
    case JobState::Failed:
      reg_.add(metrics::kFailed, 1);
      break;
    case JobState::Cancelled:
      reg_.add(metrics::kCancelled, 1);
      break;
    case JobState::DeadlineExpired:
      reg_.add(metrics::kDeadlineExpired, 1);
      break;
    default:
      break;  // Shed/CircuitOpen/QuotaExceeded are accounted at admission
  }
  if (tenanted) {
    reg_.add(metrics::kTenantTerminal, 1,
             {{"state", svc::to_string(state)}, {"tenant", mtenant}});
  }
  if (job.degraded_) {
    reg_.add(metrics::kDegraded, 1);
    if (tenanted) reg_.add(metrics::kTenantDegraded, 1, {{"tenant", mtenant}});
  }
  // Every job reaching record_terminal() was admitted (rejections finalize
  // inline in submit()), so its concurrency-quota slot is released here.
  admission_.release(tenant, now);
  if (has_checkpoint) reg_.add(metrics::kCheckpoints, 1);
  const double total_us =
      std::chrono::duration<double, std::micro>(now - submit_time).count();
  latencies_us_.push_back(total_us);

  // Latency histograms: wall-clock queue/run/total for every admitted job,
  // plus the deterministic simulated time of completed runs.
  const bool ran = job.run_start_time_ != Clock::time_point{};
  const double queue_us =
      ran ? std::chrono::duration<double, std::micro>(job.run_start_time_ -
                                                      submit_time)
                .count()
          : total_us;
  const double run_us =
      ran ? std::chrono::duration<double, std::micro>(now - job.run_start_time_)
                .count()
          : 0.0;
  const std::string_view cls = workload_class;
  reg_.observe(metrics::kLatencyQueueUs, queue_us);
  reg_.observe(metrics::kLatencyQueueUs, queue_us, {{"class", cls}});
  reg_.observe(metrics::kLatencyRunUs, run_us);
  reg_.observe(metrics::kLatencyRunUs, run_us, {{"class", cls}});
  reg_.observe(metrics::kLatencyTotalUs, total_us);
  reg_.observe(metrics::kLatencyTotalUs, total_us, {{"class", cls}});
  if (tenanted) {
    reg_.observe(metrics::kLatencyQueueUs, queue_us, {{"tenant", mtenant}});
    reg_.observe(metrics::kLatencyTotalUs, total_us, {{"tenant", mtenant}});
  }
  if (state == JobState::Completed) {
    reg_.observe(metrics::kLatencySimUs, sim_us);
    reg_.observe(metrics::kLatencySimUs, sim_us, {{"class", cls}});
  }

  if (opts_.timeline != nullptr && ran) {
    const std::uint32_t tid =
        tls_worker >= 0 ? kWorkerTidBase + static_cast<std::uint32_t>(tls_worker)
                        : kAdmissionTid;
    const double run_ts = ts_us(job.run_start_time_);
    const double run_dur = ts_us(now) - run_ts;
    obs::TraceEvent ev;
    ev.name = "run " + label_of(job.spec_, job.seq_);
    ev.cat = "svc.run";
    ev.tid = tid;
    ev.ts = run_ts;
    ev.dur = run_dur;
    ev.num_args = {{"queue_us", queue_us},
                   {"attempts", static_cast<double>(attempts)},
                   {"sim_us", sim_us}};
    ev.str_args = {{"state", svc::to_string(state)},
                   {"class", workload_class}};
    opts_.timeline->record(std::move(ev));
    if (job.trace_ctx_.valid()) {
      // Flow arrow keyed by the trace id: submit instant on the admission
      // track -> midpoint of the run slice on whichever worker ran the job,
      // so Perfetto draws the queue -> run handoff.
      obs::FlowEvent fs;
      fs.name = "job";
      fs.cat = "svc.flow";
      fs.id = job.trace_ctx_.trace_id;
      fs.tid = kAdmissionTid;
      fs.ts = ts_us(job.submit_time_);
      fs.phase = 's';
      obs::FlowEvent ff = fs;
      ff.tid = tid;
      ff.ts = run_ts + run_dur * 0.5;
      ff.phase = 'f';
      opts_.timeline->record_flow(std::move(fs));
      opts_.timeline->record_flow(std::move(ff));
    }
  }

  const auto it = breakers_.find(breaker_key(tenant, workload_class));
  if (it != breakers_.end()) {
    if (state == JobState::Completed) {
      it->second.on_success();
    } else if (state == JobState::Failed || state == JobState::DeadlineExpired) {
      it->second.on_failure(now);
    } else {
      it->second.on_neutral(now);
    }
    maybe_evict_breaker(it, tenant);
  }
}

void JobRunner::fold_mem_profile(const obs::MemoryProfile& m) {
  reg_.add(sim::metrics::kMemBytes, m.total_bytes);
  for (const auto& [operand, classes] : m.attributed) {
    for (const auto& [cls, bytes] : classes) {
      reg_.add(sim::metrics::kMemBytes, bytes,
               {{"class", cls}, {"operand", operand}});
    }
  }
  std::uint64_t fetches = 0;
  for (const auto& [id, k] : m.keys) fetches += k.fetches;
  reg_.add(sim::metrics::kMemKeyFetches, fetches);
  reg_.add(sim::metrics::kMemKeyBytes, m.key_fetch_bytes());
  reg_.add(sim::metrics::kMemKeyRefetchBytes, m.key_refetch_bytes());
  reg_.add(sim::metrics::kMemEvictions, m.evictions);
  // Peak is a high-water mark across every profiled job; capacity is a fixed
  // property of the arch config and last-write-wins is fine.
  const double peak = static_cast<double>(m.scratch_peak_bytes);
  if (peak > reg_.gauge(sim::metrics::kMemScratchPeak)) {
    reg_.set_gauge(sim::metrics::kMemScratchPeak, peak);
  }
  reg_.set_gauge(sim::metrics::kMemScratchCapacity,
                 static_cast<double>(m.scratch_capacity_bytes));
}

void JobRunner::maybe_evict_breaker(
    const std::map<std::string, CircuitBreaker>::iterator& it,
    const std::string& tenant) {
  // Breakers of tenants named in the policy table are bounded by
  // configuration and stay resident (introspection keeps listing them), as
  // do untenanted per-class breakers — the pre-tenancy dimension. For any
  // other tenant the key is caller-controlled, so a breaker that is
  // indistinguishable from a fresh one (closed, no failure streak) is
  // dropped rather than kept per historical tenant name forever.
  if (tenant.empty() || opts_.tenants.policies.count(tenant) != 0) return;
  if (it->second.state() == CircuitBreaker::State::Closed &&
      it->second.consecutive_failures() == 0) {
    breakers_.erase(it);
  }
}

}  // namespace alchemist::svc
