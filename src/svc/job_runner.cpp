#include "svc/job_runner.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "obs/json.h"
#include "obs/substrate_metrics.h"
#include "sim/alchemist_sim.h"
#include "sim/event_sim.h"

namespace alchemist::svc {

namespace {

using Clock = std::chrono::steady_clock;

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(v.size())));
  rank = std::min(std::max<std::size_t>(rank, 1), v.size());
  return v[rank - 1];
}

// Lifecycle-span track ids: submissions land on the admission track, each
// worker gets its own run-span track.
constexpr std::uint32_t kAdmissionTid = 0;
constexpr std::uint32_t kWorkerTidBase = 1;

// Which worker this thread is, for routing finish() spans; -1 off-pool
// (destructor-orphaned jobs, rejected submissions).
thread_local int tls_worker = -1;

const char* to_string(CircuitBreaker::State s) {
  switch (s) {
    case CircuitBreaker::State::Closed: return "closed";
    case CircuitBreaker::State::Open: return "open";
    case CircuitBreaker::State::HalfOpen: return "half-open";
  }
  return "?";
}

std::string label_of(const JobSpec& spec, std::uint64_t seq) {
  return (spec.name.empty() ? spec.workload_class : spec.name) + "#" +
         std::to_string(seq);
}

}  // namespace

JobRunner::JobRunner(RunnerOptions opts) : opts_(opts), epoch_(Clock::now()) {
  if (opts_.workers == 0) throw std::invalid_argument("svc: workers must be >= 1");
  if (opts_.queue_capacity == 0) {
    throw std::invalid_argument("svc: queue_capacity must be >= 1");
  }
  paused_ = opts_.start_paused;
  if (opts_.timeline != nullptr) {
    opts_.timeline->set_process_name("alchemist-svc");
    opts_.timeline->set_track_name(kAdmissionTid, "svc/jobs");
    for (std::size_t i = 0; i < opts_.workers; ++i) {
      opts_.timeline->set_track_name(
          kWorkerTidBase + static_cast<std::uint32_t>(i),
          "svc/worker" + std::to_string(i));
    }
  }
  workers_.reserve(opts_.workers);
  for (std::size_t i = 0; i < opts_.workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

JobRunner::~JobRunner() {
  std::vector<JobPtr> orphans;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
    paused_ = false;
    orphans.assign(queue_.begin(), queue_.end());
    queue_.clear();
    // Running jobs stop cooperatively at their next simulator step.
    for (Job* j : running_) j->token_.request_cancel();
  }
  work_cv_.notify_all();
  for (const JobPtr& job : orphans) {
    job->token_.request_cancel();
    finish(job, JobState::Cancelled, "cancelled: runner shutdown",
           sim::SimResult{}, job->spec_.resume_from, 0);
  }
  for (std::thread& t : workers_) t.join();
}

JobPtr JobRunner::submit(JobSpec spec) {
  if (!spec.graph) throw std::invalid_argument("svc: JobSpec.graph is null");
  if (spec.workload_class.empty()) spec.workload_class = spec.graph->name;
  if (spec.max_attempts == 0) spec.max_attempts = 1;
  auto job = std::make_shared<Job>(std::move(spec));
  const Clock::time_point now = Clock::now();
  job->submit_time_ = now;

  JobState rejected = JobState::Queued;  // sentinel: admitted
  const char* reason = nullptr;
  {
    std::lock_guard<std::mutex> lk(mu_);
    reg_.add(metrics::kSubmitted, 1);
    job->seq_ = ++seq_;
    if (stopping_) {
      rejected = JobState::Shed;
      reason = "shutdown";
    } else {
      auto [it, inserted] = breakers_.try_emplace(
          job->spec_.workload_class, opts_.breaker_threshold, opts_.breaker_cooldown);
      (void)inserted;
      if (!it->second.allow(now)) {
        rejected = JobState::CircuitOpen;
        reason = "circuit_open";
      } else if (queue_.size() >= opts_.queue_capacity) {
        rejected = JobState::Shed;
        reason = "queue_full";
        // allow() may have admitted this job as the half-open probe; it will
        // never run, so let the next submission probe instead.
        it->second.on_neutral(now);
      } else {
        reg_.add(metrics::kAdmitted, 1);
        if (job->spec_.resume_from.valid()) reg_.add(metrics::kResumed, 1);
        if (job->spec_.deadline.count() > 0) {
          job->token_.set_deadline(now + job->spec_.deadline);
        }
        queue_.push_back(job);
        peak_depth_ = std::max(peak_depth_, queue_.size());
      }
    }
    if (rejected != JobState::Queued) {
      reg_.add(metrics::kRejected, 1, {{"reason", reason}});
    }
    if (opts_.timeline != nullptr) {
      obs::TraceEvent ev;
      ev.name = "submit " + label_of(job->spec_, job->seq_);
      ev.cat = "svc";
      ev.tid = kAdmissionTid;
      ev.ts = ts_us(now);
      ev.dur = 0;
      ev.str_args = {{"outcome", reason == nullptr ? "admitted" : reason},
                     {"class", job->spec_.workload_class}};
      opts_.timeline->record(std::move(ev));
    }
  }
  if (rejected != JobState::Queued) {
    // Not yet visible to any worker; safe to finalize directly.
    std::lock_guard<std::mutex> jl(job->mu_);
    job->state_ = rejected;
    job->error_ = std::string("rejected: ") + reason;
    job->cv_.notify_all();
  } else {
    work_cv_.notify_one();
  }
  return job;
}

void JobRunner::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [&] { return queue_.empty() && running_.empty(); });
}

void JobRunner::set_paused(bool paused) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    paused_ = paused;
  }
  work_cv_.notify_all();
}

obs::Registry JobRunner::snapshot() const {
  // Substrate counters are read outside mu_ (they have their own atomics) so
  // the svc.* snapshot carries the pool's substrate.* activity alongside it.
  obs::Registry substrate = obs::substrate_registry();
  std::lock_guard<std::mutex> lk(mu_);
  obs::Registry reg = reg_;
  reg.merge(substrate);
  reg.set_gauge(metrics::kQueueDepth, static_cast<double>(queue_.size()));
  reg.set_gauge(metrics::kQueueDepth, static_cast<double>(peak_depth_),
                {{"stat", "peak"}});
  reg.set_gauge(metrics::kWorkers, static_cast<double>(workers_.size()));
  reg.set_gauge(metrics::kLatencyUs, percentile(latencies_us_, 50.0), {{"p", "50"}});
  reg.set_gauge(metrics::kLatencyUs, percentile(latencies_us_, 99.0), {{"p", "99"}});
  // Percentile gauges derived from every latency histogram, named
  // `<name>.pNN[{tags}]` per the registry naming rules so the Prometheus
  // families stay distinct from the histograms themselves.
  for (const auto& [key, hist] : reg.histograms()) {
    const std::size_t brace = key.find('{');
    const std::string name = key.substr(0, brace);
    const std::string tags =
        brace == std::string::npos ? std::string() : key.substr(brace);
    for (const auto& [suffix, p] :
         {std::pair<const char*, double>{".p50", 50.0},
          {".p95", 95.0},
          {".p99", 99.0}}) {
      reg.set_gauge_by_key(name + suffix + tags, hist.percentile(p));
    }
  }
  return reg;
}

std::map<std::string, CircuitBreaker::State> JobRunner::breaker_states() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::map<std::string, CircuitBreaker::State> out;
  for (const auto& [cls, breaker] : breakers_) out.emplace(cls, breaker.state());
  return out;
}

std::string JobRunner::status_json() const {
  using obs::json_number;
  using obs::json_string;
  // Substrate counters have their own atomics; read them outside mu_.
  const obs::Registry substrate = obs::substrate_registry();
  std::ostringstream out;
  std::lock_guard<std::mutex> lk(mu_);
  out << "{\n";
  out << "  \"workers\": " << json_number(static_cast<std::uint64_t>(workers_.size()))
      << ",\n";
  out << "  \"paused\": " << (paused_ ? "true" : "false") << ",\n";
  out << "  \"stopping\": " << (stopping_ ? "true" : "false") << ",\n";
  out << "  \"queue_depth\": "
      << json_number(static_cast<std::uint64_t>(queue_.size())) << ",\n";
  out << "  \"queue_capacity\": "
      << json_number(static_cast<std::uint64_t>(opts_.queue_capacity)) << ",\n";
  out << "  \"queue_peak\": "
      << json_number(static_cast<std::uint64_t>(peak_depth_)) << ",\n";
  out << "  \"running\": "
      << json_number(static_cast<std::uint64_t>(running_.size())) << ",\n";
  out << "  \"breakers\": {";
  bool first = true;
  for (const auto& [cls, breaker] : breakers_) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    " << json_string(cls) << ": " << json_string(to_string(breaker.state()));
  }
  out << (first ? "},\n" : "\n  },\n");
  out << "  \"counters\": {";
  first = true;
  for (const auto& [key, value] : reg_.counters()) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    " << json_string(key) << ": " << json_number(value);
  }
  out << (first ? "},\n" : "\n  },\n");
  out << "  \"substrate\": {";
  first = true;
  for (const auto& [key, value] : substrate.counters()) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    " << json_string(key) << ": " << json_number(value);
  }
  for (const auto& [key, value] : substrate.gauges()) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    " << json_string(key) << ": " << json_number(value);
  }
  out << (first ? "}\n" : "\n  }\n");
  out << "}\n";
  return out.str();
}

void JobRunner::worker_loop(std::size_t worker_id) {
  tls_worker = static_cast<int>(worker_id);
  for (;;) {
    JobPtr job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return stopping_ || (!paused_ && !queue_.empty()); });
      if (stopping_) return;  // the destructor already drained the queue
      job = queue_.front();
      queue_.pop_front();
      running_.push_back(job.get());
      job->run_start_time_ = Clock::now();
    }
    run_job(job);
    {
      std::lock_guard<std::mutex> lk(mu_);
      running_.erase(std::find(running_.begin(), running_.end(), job.get()));
      if (queue_.empty() && running_.empty()) idle_cv_.notify_all();
    }
  }
}

void JobRunner::run_job(const JobPtr& job) {
  const JobSpec& spec = job->spec_;
  {
    std::lock_guard<std::mutex> lk(job->mu_);
    job->state_ = JobState::Running;
  }
  // The deadline (or a cancel) may have fired while the job sat in the queue.
  if (const sim::StopReason pre = job->token_.should_stop();
      pre != sim::StopReason::None) {
    finish(job,
           pre == sim::StopReason::Cancelled ? JobState::Cancelled
                                             : JobState::DeadlineExpired,
           std::string("stopped while queued: ") + sim::to_string(pre),
           sim::SimResult{}, spec.resume_from, 0);
    return;
  }

  BackoffConfig bc = opts_.backoff;
  bc.seed ^= 0x9e37'79b9'7f4a'7c15ull * job->seq_;  // per-job jitter stream
  Backoff backoff(bc);
  sim::Checkpoint cp = spec.resume_from;

  for (std::size_t attempt = 1;; ++attempt) {
    std::unique_ptr<fault::FaultModel> fault_model;
    fault::FaultModel* fault = nullptr;
    if (spec.fault_enabled) {
      fault::FaultConfig fc = spec.fault;
      fc.seed = attempt_seed(spec.fault.seed, attempt);
      try {
        fault_model = std::make_unique<fault::FaultModel>(fc, spec.config.num_units);
      } catch (const std::exception& e) {
        finish(job, JobState::Failed,
               std::string("bad fault configuration: ") + e.what(),
               sim::SimResult{}, sim::Checkpoint{}, attempt);
        return;
      }
      fault = fault_model.get();
    }
    sim::SimControl ctl;
    ctl.cancel = &job->token_;
    ctl.max_steps = spec.max_steps;
    ctl.checkpoint_interval = spec.checkpoint_interval;
    ctl.checkpoint = &cp;
    sim::UnitProfiler prof;
    sim::UnitProfiler* profiler = spec.profile ? &prof : nullptr;
    try {
      sim::SimResult result =
          spec.engine == Engine::Event
              ? sim::simulate_alchemist_events(*spec.graph, spec.config, nullptr,
                                               fault, &ctl, profiler)
              : sim::simulate_alchemist(*spec.graph, spec.config, nullptr, fault,
                                        &ctl, profiler);
      if (result.registry.counter(fault::metrics::kCorruptedOps) == 0) {
        finish(job, JobState::Completed, std::string(), std::move(result),
               sim::Checkpoint{}, attempt);
        return;
      }
      // Injected faults corrupted the output: the run is useless. Retry with
      // a re-rolled seed (independent transients) or give up.
      if (attempt >= spec.max_attempts) {
        finish(job, JobState::Failed,
               "output corrupted by injected faults after " +
                   std::to_string(attempt) + " attempt(s)",
               sim::SimResult{}, sim::Checkpoint{}, attempt);
        return;
      }
      {
        std::lock_guard<std::mutex> lk(mu_);
        reg_.add(metrics::kRetries, 1);
      }
      // Exponential backoff, sliced so cancellation stays responsive.
      const Clock::time_point backoff_start = Clock::now();
      std::uint64_t delay_us = backoff.next_us();
      while (delay_us > 0 && job->token_.should_stop() == sim::StopReason::None) {
        const std::uint64_t slice = std::min<std::uint64_t>(delay_us, 1000);
        std::this_thread::sleep_for(std::chrono::microseconds(slice));
        delay_us -= slice;
      }
      if (opts_.timeline != nullptr) {
        // Nests inside this job's run span on the worker's track.
        std::lock_guard<std::mutex> lk(mu_);
        obs::TraceEvent ev;
        ev.name = "retry " + label_of(spec, job->seq_);
        ev.cat = "svc.retry";
        ev.tid = tls_worker >= 0
                     ? kWorkerTidBase + static_cast<std::uint32_t>(tls_worker)
                     : kAdmissionTid;
        ev.ts = ts_us(backoff_start);
        ev.dur = ts_us(Clock::now()) - ev.ts;
        ev.num_args = {{"attempt", static_cast<double>(attempt)}};
        opts_.timeline->record(std::move(ev));
      }
      if (const sim::StopReason stop = job->token_.should_stop();
          stop != sim::StopReason::None) {
        finish(job,
               stop == sim::StopReason::Cancelled ? JobState::Cancelled
                                                  : JobState::DeadlineExpired,
               std::string("stopped during retry backoff: ") + sim::to_string(stop),
               sim::SimResult{}, std::move(cp), attempt);
        return;
      }
      // The next attempt re-rolls the fault seed, so any checkpoint from this
      // attempt (interval snapshots) no longer matches — restart clean.
      cp.clear();
    } catch (const sim::CancelledError& e) {
      const JobState st = e.reason() == sim::StopReason::Cancelled
                              ? JobState::Cancelled
                              : JobState::DeadlineExpired;
      finish(job, st, e.what(), sim::SimResult{}, std::move(cp), attempt);
      return;
    } catch (const sim::CheckpointError& e) {
      finish(job, JobState::Failed, std::string("resume failed: ") + e.what(),
             sim::SimResult{}, sim::Checkpoint{}, attempt);
      return;
    } catch (const std::exception& e) {
      // Malformed graphs and engine invariant violations are not retryable.
      finish(job, JobState::Failed, e.what(), sim::SimResult{}, sim::Checkpoint{},
             attempt);
      return;
    }
  }
}

void JobRunner::finish(const JobPtr& job, JobState state, std::string error,
                       sim::SimResult result, sim::Checkpoint checkpoint,
                       std::size_t attempts) {
  const Clock::time_point now = Clock::now();
  const bool has_checkpoint = checkpoint.valid();
  const double sim_us = state == JobState::Completed ? result.time_us : 0.0;
  // Account first, publish second: a caller woken by wait() must already see
  // this job in the svc.* counters when it snapshots the registry.
  {
    std::lock_guard<std::mutex> lk(mu_);
    record_terminal(*job, state, attempts, has_checkpoint, now, sim_us);
  }
  std::lock_guard<std::mutex> lk(job->mu_);
  job->state_ = state;
  job->error_ = std::move(error);
  job->result_ = std::move(result);
  job->checkpoint_ = std::move(checkpoint);
  job->attempts_ = attempts;
  job->cv_.notify_all();
}

void JobRunner::record_terminal(const Job& job, JobState state,
                                std::size_t attempts, bool has_checkpoint,
                                Clock::time_point now, double sim_us) {
  const Clock::time_point submit_time = job.submit_time_;
  const std::string& workload_class = job.spec_.workload_class;
  switch (state) {
    case JobState::Completed:
      reg_.add(metrics::kCompleted, 1);
      if (attempts > 1) reg_.add(metrics::kCompleted, 1, {{"retried", "true"}});
      break;
    case JobState::Failed:
      reg_.add(metrics::kFailed, 1);
      break;
    case JobState::Cancelled:
      reg_.add(metrics::kCancelled, 1);
      break;
    case JobState::DeadlineExpired:
      reg_.add(metrics::kDeadlineExpired, 1);
      break;
    default:
      break;  // Shed/CircuitOpen are accounted at admission
  }
  if (has_checkpoint) reg_.add(metrics::kCheckpoints, 1);
  const double total_us =
      std::chrono::duration<double, std::micro>(now - submit_time).count();
  latencies_us_.push_back(total_us);

  // Latency histograms: wall-clock queue/run/total for every admitted job,
  // plus the deterministic simulated time of completed runs.
  const bool ran = job.run_start_time_ != Clock::time_point{};
  const double queue_us =
      ran ? std::chrono::duration<double, std::micro>(job.run_start_time_ -
                                                      submit_time)
                .count()
          : total_us;
  const double run_us =
      ran ? std::chrono::duration<double, std::micro>(now - job.run_start_time_)
                .count()
          : 0.0;
  const std::string_view cls = workload_class;
  reg_.observe(metrics::kLatencyQueueUs, queue_us);
  reg_.observe(metrics::kLatencyQueueUs, queue_us, {{"class", cls}});
  reg_.observe(metrics::kLatencyRunUs, run_us);
  reg_.observe(metrics::kLatencyRunUs, run_us, {{"class", cls}});
  reg_.observe(metrics::kLatencyTotalUs, total_us);
  reg_.observe(metrics::kLatencyTotalUs, total_us, {{"class", cls}});
  if (state == JobState::Completed) {
    reg_.observe(metrics::kLatencySimUs, sim_us);
    reg_.observe(metrics::kLatencySimUs, sim_us, {{"class", cls}});
  }

  if (opts_.timeline != nullptr && ran) {
    obs::TraceEvent ev;
    ev.name = "run " + label_of(job.spec_, job.seq_);
    ev.cat = "svc.run";
    ev.tid = tls_worker >= 0
                 ? kWorkerTidBase + static_cast<std::uint32_t>(tls_worker)
                 : kAdmissionTid;
    ev.ts = ts_us(job.run_start_time_);
    ev.dur = ts_us(now) - ev.ts;
    ev.num_args = {{"queue_us", queue_us},
                   {"attempts", static_cast<double>(attempts)},
                   {"sim_us", sim_us}};
    ev.str_args = {{"state", svc::to_string(state)},
                   {"class", workload_class}};
    opts_.timeline->record(std::move(ev));
  }

  const auto it = breakers_.find(workload_class);
  if (it != breakers_.end()) {
    if (state == JobState::Completed) {
      it->second.on_success();
    } else if (state == JobState::Failed || state == JobState::DeadlineExpired) {
      it->second.on_failure(now);
    } else {
      it->second.on_neutral(now);
    }
  }
}

}  // namespace alchemist::svc
