// Shared telemetry plumbing for the two Alchemist simulators: the Chrome
// trace track layout and a row allocator that keeps concurrent slices from
// overlapping on one track (Perfetto renders properly-nested slices only, so
// each operator class gets a small family of rows, filled first-fit).
//
// Track id space:
//   class c, row r  ->  tid = c * kRowsPerClass + r   ("ntt/0", "bconv/1", ...)
//   HBM channel     ->  kHbmTid                        ("hbm")
//   transpose RF    ->  kTransposeTid                  ("transpose")
//   scheduler       ->  kSchedulerTid                  ("scheduler") — level
//                       frames of the analytical model, stall frames
//   fault model     ->  kFaultTid                      ("fault") — injected
//                       transients, retry re-executions, DMR corrections
//   unit profiler   ->  kUtilTidBase + unit            ("util/unit000", ...) —
//                       per-unit occupancy counter tracks ("C" events)
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "metaop/metaop.h"
#include "obs/timeline.h"

namespace alchemist::sim {

inline constexpr std::uint32_t kRowsPerClass = 64;
inline constexpr std::uint32_t kHbmTid =
    static_cast<std::uint32_t>(metaop::kNumOpClasses) * kRowsPerClass;
inline constexpr std::uint32_t kTransposeTid = kHbmTid + 1;
inline constexpr std::uint32_t kSchedulerTid = kHbmTid + 2;
inline constexpr std::uint32_t kFaultTid = kHbmTid + 3;
inline constexpr std::uint32_t kUtilTidBase = kHbmTid + 4;
// Memory-profiler counter tracks (sim::MemProfiler): epoch HBM bandwidth-%
// and scratchpad residency. Offset leaves room for kUtilTidBase + unit tids.
inline constexpr std::uint32_t kMemBwTid = kUtilTidBase + 65536;
inline constexpr std::uint32_t kMemScratchTid = kMemBwTid + 1;

inline void name_fixed_tracks(obs::Timeline& timeline) {
  timeline.set_track_name(kHbmTid, "hbm");
  timeline.set_track_name(kTransposeTid, "transpose");
  timeline.set_track_name(kSchedulerTid, "scheduler");
  timeline.set_track_name(kFaultTid, "fault");
}

// First-fit row allocation for one operator class's unit-group track family.
class ClassTrackRows {
 public:
  ClassTrackRows(obs::Timeline& timeline, metaop::OpClass cls)
      : timeline_(timeline), cls_(cls) {}

  // Reserve a row covering [start, end); returns its tid.
  std::uint32_t reserve(double start, double end) {
    std::size_t row = 0;
    while (row < row_end_.size() && row_end_[row] > start + 1e-9) ++row;
    if (row == row_end_.size()) {
      if (row_end_.size() < kRowsPerClass) {
        row_end_.push_back(0);
        timeline_.set_track_name(tid(row), std::string(metaop::class_tag(cls_)) +
                                               "/" + std::to_string(row));
      } else {
        row = kRowsPerClass - 1;  // saturate: stack on the last row
      }
    }
    row_end_[row] = std::max(row_end_[row], end);
    return tid(row);
  }

 private:
  std::uint32_t tid(std::size_t row) const {
    return static_cast<std::uint32_t>(cls_) * kRowsPerClass +
           static_cast<std::uint32_t>(row);
  }
  obs::Timeline& timeline_;
  metaop::OpClass cls_;
  std::vector<double> row_end_;
};

}  // namespace alchemist::sim
