// Simulation checkpoints: the resumable cursor of an interrupted run.
//
// A Checkpoint captures everything an engine needs to continue a simulation
// from a step boundary: which engine produced it, which workload/graph it
// belongs to, a fingerprint of the machine + fault configuration (resuming on
// a different geometry would silently produce garbage, so it is a typed
// error), the number of completed steps, and an engine-specific cursor blob
// (cycle accumulators, per-op dynamic state, registry snapshot).
//
// Serialization goes through the hardened common/serdes layer: magic +
// version header, length-capped strings/blobs, and an FNV-1a integrity footer
// — a truncated or bit-flipped checkpoint fails with CheckpointError, never
// resumes wrong.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "arch/config.h"
#include "common/serdes.h"
#include "fault/fault_model.h"
#include "obs/registry.h"

namespace alchemist::sim {

// Engine identifiers stored in checkpoints (and checked on resume).
inline constexpr const char* kLevelEngine = "level";
inline constexpr const char* kEventEngine = "event";

// Malformed, corrupted, or mismatched checkpoint (wrong engine, workload,
// geometry or fault configuration).
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct Checkpoint {
  std::string engine;    // kLevelEngine | kEventEngine; empty = no checkpoint
  std::string workload;  // graph name guard
  std::uint64_t op_count = 0;     // graph size guard
  std::uint64_t fingerprint = 0;  // sim_fingerprint() of config + fault model
  std::uint64_t step = 0;         // steps completed at the snapshot
  std::vector<std::uint8_t> state;  // engine-specific cursor

  bool valid() const { return !engine.empty(); }
  void clear() { *this = Checkpoint{}; }

  // Framed binary form (magic, version, integrity footer).
  std::vector<std::uint8_t> serialize() const;
  static Checkpoint deserialize(const std::vector<std::uint8_t>& bytes);
};

// Digest of the simulated machine + fault configuration a checkpoint is only
// valid for: ArchConfig geometry/bandwidth fields plus, when a fault model is
// attached, its seed, rates, mask and policy. Engines refuse to resume a
// checkpoint whose fingerprint differs from the current run's.
std::uint64_t sim_fingerprint(const arch::ArchConfig& config,
                              const fault::FaultModel* fault_model);

// Registry snapshot helpers shared by the engine checkpoint writers: the
// canonical-key counter and gauge maps, length-prefixed.
void write_registry(BinaryWriter& w, const obs::Registry& reg);
void read_registry(BinaryReader& r, obs::Registry& reg);

}  // namespace alchemist::sim
