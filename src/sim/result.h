// Simulation results shared by the Alchemist and baseline simulators.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace alchemist::sim {

struct SimResult {
  std::string workload;
  std::string accelerator;
  std::uint64_t cycles = 0;
  double time_us = 0;
  // Overall compute utilization: busy lane-cycles / (peak lanes * cycles).
  double utilization = 0;
  // Per-operator-class utilization (index = metaop::OpClass): the fraction of
  // that class's wall time during which its compute resources were busy.
  std::array<double, 4> util_by_class = {0, 0, 0, 0};
  // Wall cycles attributed to each class.
  std::array<std::uint64_t, 4> cycles_by_class = {0, 0, 0, 0};
  std::uint64_t mem_stall_cycles = 0;
  std::uint64_t transpose_cycles = 0;
  std::uint64_t total_mults = 0;

  double throughput_per_sec(double ops = 1.0) const {
    return time_us > 0 ? ops * 1e6 / time_us : 0.0;
  }
};

}  // namespace alchemist::sim
