// Simulation results shared by the Alchemist and baseline simulators.
//
// The source of truth is the obs::Registry of named, tagged counters and
// gauges that every simulator populates (sim.cycles, sim.cycles{class=ntt},
// sim.stall{cause=hbm}, sim.mults{lazy=true}, ...). The flat aggregate fields
// below are the legacy view of the same numbers, derived from the registry by
// finalize() so existing callers keep reading result.cycles etc. unchanged.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "metaop/metaop.h"
#include "obs/memory.h"
#include "obs/registry.h"
#include "obs/utilization.h"

namespace alchemist::sim {

// Canonical metric names shared by the simulators, exporters and tests.
namespace metrics {
inline constexpr const char* kCycles = "sim.cycles";            // + {class=}
inline constexpr const char* kStall = "sim.stall";              // {cause=hbm}
inline constexpr const char* kTransposeCycles = "sim.transpose.cycles";
inline constexpr const char* kMults = "sim.mults";              // {lazy=}
inline constexpr const char* kHbmBytes = "sim.hbm.bytes";
inline constexpr const char* kOps = "sim.ops";                  // + {class=}
inline constexpr const char* kMetaOps = "sim.metaops";
inline constexpr const char* kBusyLaneCycles = "sim.busy_lane_cycles";
inline constexpr const char* kTimeUs = "sim.time_us";           // gauge
inline constexpr const char* kUtilization = "sim.utilization";  // + {class=}
// Memory-profiler series (folded into serving-layer snapshots from
// SimResult.mem_profile when a job ran with mem_profile; Prometheus exposes
// them as sim_mem_*). Never written by the engines themselves — the registry
// inside a SimResult must stay bit-identical with profiling on.
inline constexpr const char* kMemBytes = "sim.mem.bytes";  // + {class=,operand=}
inline constexpr const char* kMemKeyFetches = "sim.mem.key.fetches";
inline constexpr const char* kMemKeyBytes = "sim.mem.key.bytes";
inline constexpr const char* kMemKeyRefetchBytes = "sim.mem.key.refetch_bytes";
inline constexpr const char* kMemEvictions = "sim.mem.evictions";
inline constexpr const char* kMemScratchPeak =
    "sim.mem.scratch.peak_bytes";  // gauge (max over jobs)
inline constexpr const char* kMemScratchCapacity =
    "sim.mem.scratch.capacity_bytes";  // gauge
}  // namespace metrics

struct SimResult {
  std::string workload;
  std::string accelerator;

  // Named counters/gauges — the authoritative accounting for this run.
  obs::Registry registry;

  // Per-unit cycle attribution, filled only when a UnitProfiler was passed to
  // the engine. Deliberately OUTSIDE the registry: bit-identity checks and
  // checkpoint frames compare registries, and profiling must never perturb
  // the simulated result.
  obs::UtilizationProfile profile;

  // Memory-system attribution ("memory.v1"), filled only when a MemProfiler
  // was passed to the engine. Outside the registry for the same reason as
  // `profile`: profiling must never perturb the simulated result.
  obs::MemoryProfile mem_profile;

  // Aggregate view derived from the registry (see finalize()). Kept as plain
  // fields so the dozens of existing callers don't change.
  std::uint64_t cycles = 0;
  double time_us = 0;
  // Overall compute utilization: busy lane-cycles / (peak lanes * cycles).
  double utilization = 0;
  // Per-operator-class utilization (index = metaop::OpClass): the fraction of
  // that class's wall time during which its compute resources were busy.
  std::array<double, metaop::kNumOpClasses> util_by_class{};
  // Wall cycles attributed to each class.
  std::array<std::uint64_t, metaop::kNumOpClasses> cycles_by_class{};
  std::uint64_t mem_stall_cycles = 0;
  std::uint64_t transpose_cycles = 0;
  std::uint64_t total_mults = 0;

  // Pull the aggregate fields out of the registry. Simulators call this once
  // after populating the registry; harmless to call again.
  void finalize();

  double throughput_per_sec(double ops = 1.0) const {
    return time_us > 0 ? ops * 1e6 / time_us : 0.0;
  }
};

}  // namespace alchemist::sim
