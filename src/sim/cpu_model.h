// Single-thread CPU cost model — the Table 7 baseline.
//
// The paper measures an Intel Xeon Gold 6234 (3.3 GHz, one thread). We model
// a single-thread software FHE library on *this* machine: the cost of an op
// graph is its eager (origin) modular-multiplication count times the measured
// per-multiplication latency of our own software substrate (Barrett mulmod,
// measured once per process with a short calibration loop). This keeps the
// CPU baseline honest — it is the same software that our functional tests run
// — while allowing Table 7's N=2^16, L=44 operators to be costed without
// hour-long runs.
#pragma once

#include "metaop/op_graph.h"

namespace alchemist::sim {

// Measured nanoseconds per modular multiplication (cached after first call).
double cpu_ns_per_modmul();

// Estimated single-thread CPU microseconds for the graph.
double cpu_time_us(const metaop::OpGraph& graph);

}  // namespace alchemist::sim
