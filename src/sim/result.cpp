#include "sim/result.h"

namespace alchemist::sim {

void SimResult::finalize() {
  using metaop::OpClass;
  cycles = registry.counter(metrics::kCycles);
  time_us = registry.gauge(metrics::kTimeUs);
  utilization = registry.gauge(metrics::kUtilization);
  mem_stall_cycles = registry.counter(metrics::kStall, {{"cause", "hbm"}});
  transpose_cycles = registry.counter(metrics::kTransposeCycles);
  total_mults = registry.counter(metrics::kMults, {{"lazy", "true"}}) +
                registry.counter(metrics::kMults, {{"lazy", "false"}});
  for (std::size_t c = 0; c < metaop::kNumOpClasses; ++c) {
    const char* tag = metaop::class_tag(static_cast<OpClass>(c));
    cycles_by_class[c] = registry.counter(metrics::kCycles, {{"class", tag}});
    util_by_class[c] = registry.gauge(metrics::kUtilization, {{"class", tag}});
  }
}

}  // namespace alchemist::sim
